package workloads

import (
	"strings"
	"testing"
)

const sampleEdgeList = `
# toy graph
0 1 3
0 2
1 3 5
2 3 1
3 4 2
% another comment style
4 1 7
`

func TestParseEdgeList(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader(sampleEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 {
		t.Fatalf("N = %d, want 5", g.N)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
	adj := g.Adj(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 {
		t.Fatalf("adj(0) = %v", adj)
	}
	// Default weight is 1; explicit weights survive.
	if w := g.AdjWeights(0); w[0] != 3 || w[1] != 1 {
		t.Fatalf("weights(0) = %v", w)
	}
	if g.Degree(2) != 1 || g.Adj(2)[0] != 3 {
		t.Fatalf("adj(2) = %v", g.Adj(2))
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                     // no edges
		"0\n",                  // wrong arity
		"a b\n",                // bad source
		"0 b\n",                // bad target
		"0 1 0\n",              // non-positive weight
		"-1 2\n",               // negative id
		"0 1 2 3\n",            // too many fields
		"0 0\njunk here tooal", // arity again
	}
	for _, in := range cases {
		if _, err := ParseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestParseEdgeListGapNodes(t *testing.T) {
	// Sources with gaps: node 1 has no out-edges; rowptr must stay
	// monotone and empty adjacency must work.
	g, err := ParseEdgeList(strings.NewReader("0 3\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Degree(1) != 0 || g.Degree(3) != 0 {
		t.Fatalf("gap degrees: %d, %d", g.Degree(1), g.Degree(3))
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Fatal("real degrees wrong")
	}
}

func TestBFSOnGraph(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader(sampleEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BFSOnGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "bfs" || len(b.Kernels) == 0 {
		t.Fatalf("built: %+v", b)
	}
	if n := drainBuild(t, b); n == 0 {
		t.Fatal("no instructions")
	}
}

func TestSSSPOnGraph(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader(sampleEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SSSPOnGraph(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "sssp" || len(b.Kernels) == 0 {
		t.Fatalf("built: %+v", b)
	}
	if n := drainBuild(t, b); n == 0 {
		t.Fatal("no instructions")
	}
}

func TestOnGraphRejectsEmptyTraversal(t *testing.T) {
	// Node 0 has no out-edges: BFS from it reaches nothing.
	g, err := ParseEdgeList(strings.NewReader("1 2\n2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFSOnGraph(g); err == nil {
		t.Fatal("BFSOnGraph accepted unreachable root")
	}
	if _, err := SSSPOnGraph(g, 5); err == nil {
		t.Fatal("SSSPOnGraph accepted unreachable root")
	}
}
