package workloads

import (
	"testing"

	"uvmsim/internal/gpu"
	"uvmsim/internal/memunits"
)

const testScale = 0.02

// drainWarp runs a warp program to completion, validating that every
// address lies inside an allocation of the build and returning the
// instruction count.
func drainWarp(t *testing.T, b *Built, p gpu.WarpProgram) int {
	t.Helper()
	var in gpu.Instr
	count := 0
	for p.Next(&in) {
		count++
		if count > 5_000_000 {
			t.Fatal("warp program does not terminate")
		}
		if in.NumAddrs < 0 || in.NumAddrs > gpu.MaxLanes {
			t.Fatalf("instr with %d lanes", in.NumAddrs)
		}
		for i := 0; i < in.NumAddrs; i++ {
			a := b.Space.Find(in.Addrs[i])
			if a == nil {
				t.Fatalf("address %#x outside all allocations", in.Addrs[i])
			}
			if off := in.Addrs[i] - a.Base; off >= a.UserSize {
				t.Fatalf("address %#x beyond user size of %s", in.Addrs[i], a.Name)
			}
		}
	}
	return count
}

// drainBuild walks every warp of every kernel.
func drainBuild(t *testing.T, b *Built) (instrs int) {
	t.Helper()
	for _, k := range b.Kernels {
		if err := k.Validate(); err != nil {
			t.Fatalf("kernel invalid: %v", err)
		}
		for cta := 0; cta < k.CTAs; cta++ {
			for w := 0; w < k.WarpsPerCTA; w++ {
				instrs += drainWarp(t, b, k.NewWarp(cta, w))
			}
		}
	}
	return instrs
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"backprop", "fdtd", "hotspot", "srad", "bfs", "nw", "ra", "sssp"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	for _, n := range RegularNames() {
		if !IsRegular(n) {
			t.Errorf("%s should be regular", n)
		}
	}
	for _, n := range IrregularNames() {
		if IsRegular(n) {
			t.Errorf("%s should be irregular", n)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get accepted unknown name")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on unknown name did not panic")
		}
	}()
	MustGet("nope")
}

func TestAllWorkloadsBuildAndDrain(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := MustGet(name)(testScale)
			if b.Name != name {
				t.Fatalf("built name %q", b.Name)
			}
			if b.Regular != IsRegular(name) {
				t.Fatal("regularity mismatch")
			}
			if len(b.Kernels) == 0 {
				t.Fatal("no kernels")
			}
			if len(b.IterOf) != len(b.Kernels) {
				t.Fatalf("IterOf length %d != kernels %d", len(b.IterOf), len(b.Kernels))
			}
			if b.WorkingSet() == 0 {
				t.Fatal("zero working set")
			}
			if n := drainBuild(t, b); n == 0 {
				t.Fatal("no instructions generated")
			}
		})
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, name := range []string{"bfs", "ra", "sssp"} {
		b1 := MustGet(name)(testScale)
		b2 := MustGet(name)(testScale)
		if len(b1.Kernels) != len(b2.Kernels) {
			t.Fatalf("%s: kernel counts differ across builds", name)
		}
		// Compare the first warp's first 100 instructions.
		p1 := b1.Kernels[0].NewWarp(0, 0)
		p2 := b2.Kernels[0].NewWarp(0, 0)
		var i1, i2 gpu.Instr
		for n := 0; n < 100; n++ {
			ok1 := p1.Next(&i1)
			ok2 := p2.Next(&i2)
			if ok1 != ok2 {
				t.Fatalf("%s: stream lengths differ", name)
			}
			if !ok1 {
				break
			}
			if i1.NumAddrs != i2.NumAddrs || i1.Write != i2.Write {
				t.Fatalf("%s: instr %d differs", name, n)
			}
			for k := 0; k < i1.NumAddrs; k++ {
				// Addresses are relative to per-build bases; compare
				// offsets within the first allocation instead.
				o1 := i1.Addrs[k] - b1.Space.Allocations()[0].Base
				o2 := i2.Addrs[k] - b2.Space.Allocations()[0].Base
				if o1 != o2 {
					t.Fatalf("%s: instr %d lane %d offset %#x vs %#x", name, n, k, o1, o2)
				}
			}
		}
	}
}

func TestScaleChangesWorkingSet(t *testing.T) {
	small := FDTD(0.02).WorkingSet()
	large := FDTD(0.08).WorkingSet()
	if large <= small {
		t.Fatalf("scaling did not grow working set: %d vs %d", small, large)
	}
}

func TestStreamProgramAddresses(t *testing.T) {
	b := FDTD(testScale)
	// First kernel, first warp: the first instruction must read the ey
	// array at offset 0 with 32 consecutive lanes.
	p := b.Kernels[0].NewWarp(0, 0)
	var in gpu.Instr
	if !p.Next(&in) {
		t.Fatal("empty program")
	}
	ey := b.Space.Allocations()[1] // ex, ey, hz order: ex=0? Alloc order: ex, ey, hz
	// Find allocation by name instead of position.
	for _, a := range b.Space.Allocations() {
		if a.Name == "ey" {
			ey = a
		}
	}
	if in.Addrs[0] != ey.Base {
		t.Fatalf("first address %#x, want ey base %#x", in.Addrs[0], ey.Base)
	}
	if in.Write {
		t.Fatal("first op should be a read")
	}
	if in.NumAddrs != 32 {
		t.Fatalf("lanes = %d, want 32", in.NumAddrs)
	}
	for i := 1; i < in.NumAddrs; i++ {
		if in.Addrs[i] != in.Addrs[i-1]+elemSize {
			t.Fatal("dense lanes not consecutive")
		}
	}
}

func TestGatherProgramDivergence(t *testing.T) {
	b := RA(testScale)
	p := b.Kernels[0].NewWarp(0, 0)
	var in gpu.Instr
	if !p.Next(&in) {
		t.Fatal("empty program")
	}
	// Random indices: expect addresses in many distinct sectors.
	sectors := map[memunits.Addr]bool{}
	for i := 0; i < in.NumAddrs; i++ {
		sectors[in.Addrs[i]/memunits.SectorSize] = true
	}
	if len(sectors) < 8 {
		t.Fatalf("ra first instr touches only %d sectors; not divergent", len(sectors))
	}
	// Read must be followed by a write to the same addresses (RMW).
	read := in
	if !p.Next(&in) {
		t.Fatal("missing write half of RMW")
	}
	if !in.Write || in.NumAddrs != read.NumAddrs {
		t.Fatalf("second instr not matching write: write=%v lanes=%d", in.Write, in.NumAddrs)
	}
	for i := 0; i < in.NumAddrs; i++ {
		if in.Addrs[i] != read.Addrs[i] {
			t.Fatal("RMW write addresses differ from read")
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	var in gpu.Instr
	if (emptyProgram{}).Next(&in) {
		t.Fatal("empty program produced an instruction")
	}
}

func TestPartitionKernelCoversAllItems(t *testing.T) {
	// With 100 items and 32 per warp, 4 warps must cover [0,100) exactly.
	var covered []bool
	k := partitionKernel("t", 100, 32, func(lo, hi int) gpu.WarpProgram {
		if covered == nil {
			covered = make([]bool, 100)
		}
		for i := lo; i < hi; i++ {
			if covered[i] {
				panic("overlap")
			}
			covered[i] = true
		}
		return emptyProgram{}
	})
	for cta := 0; cta < k.CTAs; cta++ {
		for w := 0; w < k.WarpsPerCTA; w++ {
			k.NewWarp(cta, w)
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("item %d not covered", i)
		}
	}
}

func TestChainPrograms(t *testing.T) {
	b := NW(testScale)
	// Drain one warp of the middle diagonal (longest): must produce
	// instructions from at least one strided block.
	mid := b.Kernels[len(b.Kernels)/2]
	n := drainWarp(t, b, mid.NewWarp(0, 0))
	if n == 0 {
		t.Fatal("nw middle diagonal warp produced nothing")
	}
}
