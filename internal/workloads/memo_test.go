package workloads_test

import (
	"reflect"
	"sync"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/workloads"
)

// The memo must hand out one Built per (name, scale) and distinct
// Builts across keys, including under concurrent first requests.
func TestMemoCachesPerNameAndScale(t *testing.T) {
	m := workloads.NewMemo()
	const workers = 8
	got := make([]*workloads.Built, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = m.Get("bfs", 0.05)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatalf("concurrent Get built %d distinct instances", workers)
		}
	}
	if m.Get("bfs", 0.1) == got[0] {
		t.Fatal("different scale returned the same Built")
	}
	if m.Get("ra", 0.05) == got[0] {
		t.Fatal("different workload returned the same Built")
	}
	if n := m.Len(); n != 3 {
		t.Fatalf("memo holds %d builds, want 3", n)
	}
}

// Proof that concurrent cells can share one memoized Built safely: N
// simulations over the same instance, run under -race in CI, must all
// produce the counters a private build produces. A Built is immutable
// after construction, so sharing cannot change results.
func TestMemoSharedBuiltConcurrentRuns(t *testing.T) {
	const runs = 4
	b := workloads.NewMemo().Get("sssp", 0.05)
	cfg := core.DeriveConfig(b, 1, 125, config.PolicyAdaptive, config.Default())
	results := make([]*core.Result, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = core.Run(b, cfg)
		}(i)
	}
	wg.Wait()
	private := core.Run(workloads.MustGet("sssp")(0.05), cfg)
	for i, r := range results {
		if !reflect.DeepEqual(r.Counters, private.Counters) {
			t.Errorf("shared run %d diverged from private build:\nshared:  %+v\nprivate: %+v",
				i, r.Counters, private.Counters)
		}
	}
}
