package workloads

import (
	"testing"

	"uvmsim/internal/gpu"
)

func TestTraversalGraphValid(t *testing.T) {
	g := GenTraversalGraph(20000, 6, 10, 0.1, 7)
	if err := g.Validate(); err != nil {
		t.Fatalf("traversal graph invalid: %v", err)
	}
	if g.NumEdges() < 20000*6 {
		t.Fatalf("edges = %d, want >= %d", g.NumEdges(), 20000*6)
	}
}

func TestTraversalGraphDeterministic(t *testing.T) {
	a := GenTraversalGraph(5000, 4, 8, 0.1, 3)
	b := GenTraversalGraph(5000, 4, 8, 0.1, 3)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("graphs differ at edge %d", i)
		}
	}
}

func TestTraversalReachableFraction(t *testing.T) {
	n := 50000
	frac := 0.08
	g := GenTraversalGraph(n, 6, 15, frac, 9)
	levels := BFSLevels(g)
	var reached int
	for _, l := range levels {
		reached += len(l)
	}
	lo, hi := int(0.5*frac*float64(n)), int(2*frac*float64(n))
	if reached < lo || reached > hi {
		t.Fatalf("reached %d nodes, want within [%d,%d] (~%.0f%% of %d)",
			reached, lo, hi, frac*100, n)
	}
}

func TestTraversalLevelsAreLayers(t *testing.T) {
	const layers = 12
	g := GenTraversalGraph(30000, 6, layers, 0.1, 5)
	levels := BFSLevels(g)
	if len(levels) != layers+1 {
		t.Fatalf("levels = %d, want %d (root + one per layer)", len(levels), layers+1)
	}
	if len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Fatal("level 0 is not {node 0}")
	}
	// Non-root levels must be thin and roughly uniform: no level may
	// hold more than 3x the mean.
	var total int
	for _, l := range levels[1:] {
		total += len(l)
	}
	mean := total / layers
	for i, l := range levels[1:] {
		if len(l) > 3*mean {
			t.Fatalf("level %d has %d nodes (mean %d); frontier not thin", i+1, len(l), mean)
		}
	}
}

func TestTraversalScatteredFrontiers(t *testing.T) {
	// Frontier node ids must be spread through the id space, not
	// clustered: the span of each level should cover most of [0, n).
	n := 40000
	g := GenTraversalGraph(n, 6, 10, 0.1, 11)
	levels := BFSLevels(g)
	for i, l := range levels[1:] {
		if len(l) < 10 {
			continue
		}
		min, max := l[0], l[0]
		for _, v := range l {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if int(max-min) < n/2 {
			t.Fatalf("level %d spans only [%d,%d] of %d ids", i+1, min, max, n)
		}
	}
}

func TestTraversalSSSPReactivation(t *testing.T) {
	// Backward and same-layer edges must make worklist SSSP re-activate
	// nodes: total work across rounds exceeds the reachable set size.
	g := GenTraversalGraph(30000, 6, 10, 0.1, 13)
	rounds, _ := SSSPRounds(g, 40)
	var work int
	for _, r := range rounds {
		work += len(r)
	}
	levels := BFSLevels(g)
	var reach int
	for _, l := range levels {
		reach += len(l)
	}
	if work <= reach {
		t.Fatalf("SSSP total work %d <= reachable %d; no re-activation", work, reach)
	}
}

func TestTraversalBadArgsPanic(t *testing.T) {
	cases := []struct {
		n, deg, layers int
		frac           float64
	}{
		{1, 6, 5, 0.1},
		{1000, 1, 5, 0.1},
		{1000, 6, 0, 0.1},
		{1000, 6, 5, 0},
		{1000, 6, 5, 1.5},
		{100, 6, 90, 0.1}, // reachable set smaller than layer count
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GenTraversalGraph(%d,%d,%d,%v) did not panic", c.n, c.deg, c.layers, c.frac)
				}
			}()
			GenTraversalGraph(c.n, c.deg, c.layers, c.frac, 1)
		}()
	}
}

func TestMaskedCSRDenseMaskSweep(t *testing.T) {
	// With an empty frontier, the program must still sweep the mask
	// densely (one read instruction per 32-node group) and nothing else.
	g := GenTraversalGraph(2048, 4, 4, 0.1, 1)
	bm := frontierBitmap(2048, nil)
	p := newMaskedCSR(g, 0x100000, 0x200000, 0x300000, 0x400000, 0, bm, 0, 2048, 4)
	var in gpu.Instr
	count := 0
	for p.Next(&in) {
		count++
		if in.Write {
			t.Fatal("mask sweep issued a write")
		}
		if in.NumAddrs != 32 {
			t.Fatalf("group of %d lanes", in.NumAddrs)
		}
		if in.Addrs[0] < 0x100000 || in.Addrs[0] >= 0x100000+2048*4 {
			t.Fatalf("mask read outside mask array: %#x", in.Addrs[0])
		}
	}
	if count != 2048/32 {
		t.Fatalf("mask sweep instrs = %d, want %d", count, 2048/32)
	}
}

func TestMaskedCSRActiveNodesWalkEdges(t *testing.T) {
	g := GenTraversalGraph(2048, 4, 4, 0.2, 1)
	levels := BFSLevels(g)
	bm := frontierBitmap(2048, levels[1])
	const (
		maskB = 0x1000000
		rowB  = 0x2000000
		edgeB = 0x3000000
		distB = 0x4000000
	)
	p := newMaskedCSR(g, maskB, rowB, edgeB, distB, 0, bm, 0, 2048, 4)
	var in gpu.Instr
	var maskReads, rowReads, edgeReads, distWrites int
	for p.Next(&in) {
		switch {
		case in.Addrs[0] >= maskB && in.Addrs[0] < rowB:
			maskReads++
		case in.Addrs[0] >= rowB && in.Addrs[0] < edgeB:
			rowReads++
		case in.Addrs[0] >= edgeB && in.Addrs[0] < distB:
			edgeReads++
			if in.Write {
				t.Fatal("edge read marked as write")
			}
		default:
			distWrites++
			if !in.Write {
				t.Fatal("dist update not marked as write")
			}
		}
	}
	if maskReads != 64 {
		t.Fatalf("mask reads = %d, want 64", maskReads)
	}
	if rowReads == 0 || edgeReads == 0 || distWrites == 0 {
		t.Fatalf("active-node work missing: row=%d edge=%d dist=%d", rowReads, edgeReads, distWrites)
	}
	if edgeReads != distWrites {
		t.Fatalf("edge read groups %d != dist write groups %d", edgeReads, distWrites)
	}
}

func TestMaskedCSRWeightsPhase(t *testing.T) {
	g := GenTraversalGraph(1024, 4, 4, 0.2, 2)
	levels := BFSLevels(g)
	bm := frontierBitmap(1024, levels[1])
	const weightB = 0x5000000
	p := newMaskedCSR(g, 0x1000000, 0x2000000, 0x3000000, 0x4000000, weightB, bm, 0, 1024, 4)
	var in gpu.Instr
	weightReads := 0
	for p.Next(&in) {
		if in.Addrs[0] >= weightB && in.Addrs[0] < weightB+uint64(g.NumEdges())*4 {
			weightReads++
		}
	}
	if weightReads == 0 {
		t.Fatal("weight phase never emitted")
	}
}
