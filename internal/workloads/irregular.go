package workloads

import (
	"fmt"
	"math"

	"uvmsim/internal/alloc"
	"uvmsim/internal/gpu"
)

// nodesPerWarp is the node-range share per warp in graph kernels: one
// thread per node, Rodinia-style, so a warp owns a contiguous slice of
// the node id space.
const nodesPerWarp = 512

// BFS models the Rodinia bfs: every level launches one thread per node,
// so each level's kernel1 densely sweeps the small hot mask array while
// only frontier nodes walk their adjacency — a sparse excursion into the
// large cold edges array with scatter updates of the cost array — and a
// small kernel2 densely updates the masks. Frontiers are computed
// host-side and replayed, making runs deterministic.
func BFS(scale float64) *Built {
	n := scaleElems(1<<20, scale)
	const (
		avgDeg    = 6
		layers    = 25
		reachFrac = 0.08
	)
	g := GenTraversalGraph(n, avgDeg, layers, reachFrac, 0xBF5)
	return buildBFS(g, BFSLevels(g))
}

// buildBFS assembles the bfs workload over any graph and its host-side
// BFS levels (shared by the synthetic factory and BFSOnGraph).
func buildBFS(g *Graph, levels [][]int32) *Built {
	space := alloc.NewSpace()
	n := g.N
	rowPtr := space.Alloc("rowptr", uint64(n+1)*elemSize, true)
	edges := space.Alloc("edges", uint64(g.NumEdges())*elemSize, true)
	mask := space.Alloc("mask", uint64(n)*elemSize, false)
	dist := space.Alloc("cost", uint64(n)*elemSize, false)

	var kernels []gpu.Kernel
	var iterOf []int
	for li, frontier := range levels {
		bm := frontierBitmap(n, frontier)
		kernels = append(kernels,
			partitionKernel(fmt.Sprintf("bfs_k1_l%d", li+1), n, nodesPerWarp,
				func(lo, hi int) gpu.WarpProgram {
					return newMaskedCSR(g, mask.Base, rowPtr.Base, edges.Base, dist.Base, 0, bm, lo, hi, 4)
				}),
			denseKernel(fmt.Sprintf("bfs_k2_l%d", li+1), n,
				[]operand{readOp(mask), writeOp(mask)}, 2),
		)
		iterOf = append(iterOf, li+1, li+1)
	}
	return &Built{Name: "bfs", Regular: false, Space: space, Kernels: kernels, IterOf: iterOf}
}

// SSSP models the paper's sssp characterization (§III-B, Figs. 2b/3c/3d):
// each iteration runs kernel1 — a dense mask sweep with sparse,
// worklist-driven relaxation over the large cold edges/weights arrays —
// followed by kernel2, a dense sequential sweep over two small hot
// arrays (distances and a mask). The skewed graph makes hub nodes
// reactivate across rounds, so hot edge blocks are revisited while the
// long tail stays cold — the input-dependent split of Fig. 2b.
func SSSP(scale float64) *Built {
	n := scaleElems(1<<20, scale)
	const (
		avgDeg    = 3
		layers    = 20
		reachFrac = 0.08
		maxRounds = 2 * layers
	)
	g := GenTraversalGraph(n, avgDeg, layers, reachFrac, 0x55B)
	rounds, _ := SSSPRounds(g, maxRounds)
	return buildSSSP(g, rounds)
}

// buildSSSP assembles the sssp workload over any weighted graph and its
// host-side worklist rounds (shared by the synthetic factory and
// SSSPOnGraph).
func buildSSSP(g *Graph, rounds [][]int32) *Built {
	space := alloc.NewSpace()
	n := g.N
	rowPtr := space.Alloc("rowptr", uint64(n+1)*elemSize, true)
	edges := space.Alloc("edges", uint64(g.NumEdges())*elemSize, true)
	weights := space.Alloc("weights", uint64(g.NumEdges())*elemSize, true)
	dist := space.Alloc("dist", uint64(n)*elemSize, false)
	mask := space.Alloc("mask", uint64(n)*elemSize, false)

	var kernels []gpu.Kernel
	var iterOf []int
	for ri, work := range rounds {
		bm := frontierBitmap(n, work)
		kernels = append(kernels,
			partitionKernel(fmt.Sprintf("sssp_k1_i%d", ri+1), n, nodesPerWarp,
				func(lo, hi int) gpu.WarpProgram {
					return newMaskedCSR(g, mask.Base, rowPtr.Base, edges.Base, dist.Base, weights.Base, bm, lo, hi, 4)
				}),
			denseKernel(fmt.Sprintf("sssp_k2_i%d", ri+1), n,
				[]operand{readOp(dist), readOp(mask), writeOp(mask)}, 6),
		)
		iterOf = append(iterOf, ri+1, ri+1)
	}
	return &Built{Name: "sssp", Regular: false, Space: space, Kernels: kernels, IterOf: iterOf}
}

// RA models the HPC Challenge RandomAccess (GUPS) benchmark: uniformly
// random read-modify-write updates over one huge table, with no reuse —
// the paper's perfect candidate for zero-copy host pinning.
func RA(scale float64) *Built {
	space := alloc.NewSpace()
	tableElems := scaleElems(8<<20, scale) // 32MB at scale 1
	// GUPS-style sparsity: ~2*updates/blocks ≈ 250 accesses per 64KB
	// block over the whole run, matching the "no reuse, seldom access"
	// regime the paper identifies as the perfect zero-copy candidate.
	// The floor gives scaled-down runs enough temporal depth that the
	// update stream outlives the initial cold-start wave (policies only
	// differentiate once counters and round trips accumulate).
	updates := tableElems / 128
	if updates < 16384 {
		updates = 16384
	}

	table := space.Alloc("table", uint64(tableElems)*elemSize, false)

	rng := newRNG(0x4A)
	idx := make([]int32, updates)
	for i := range idx {
		idx[i] = int32(rng.intn(tableElems))
	}
	// 512 updates per warp balances two needs: warps must be numerous
	// enough for multi-GPU splitting, while each warp's stream must be
	// deep enough that the bulk of the updates happen *after* the
	// cold-start wave, when counters and round trips have accumulated
	// and the delayed-migration policies can differentiate.
	k := partitionKernel("ra_update", updates, 512, func(lo, hi int) gpu.WarpProgram {
		return newGather([]operand{readOp(table), writeOp(table)}, idx[lo:hi], 2)
	})
	return &Built{Name: "ra", Regular: false, Space: space, Kernels: []gpu.Kernel{k}, IterOf: []int{1}}
}

// nwBlock is the tile edge of the Needleman-Wunsch wavefront.
const nwBlock = 16

// NW models the Rodinia Needleman-Wunsch sequence alignment: an
// anti-diagonal wavefront of 16x16 tiles over a score matrix (read-write)
// and a reference matrix (read-only). The diagonal traversal revisits
// row pages across many widely-spaced kernel launches, which is what
// thrashes under LRU at oversubscription.
func NW(scale float64) *Built {
	space := alloc.NewSpace()
	// Matrix bytes scale with scale, so the edge scales with sqrt.
	edge := int(2048 * math.Sqrt(scale))
	if edge < 2*nwBlock {
		edge = 2 * nwBlock
	}
	edge = (edge + nwBlock - 1) / nwBlock * nwBlock
	n := edge * edge

	matrix := space.Alloc("matrix", uint64(n)*elemSize, false)
	ref := space.Alloc("reference", uint64(n)*elemSize, true)

	nb := edge / nwBlock
	var kernels []gpu.Kernel
	var iterOf []int
	for d := 0; d < 2*nb-1; d++ {
		iLo := d - nb + 1
		if iLo < 0 {
			iLo = 0
		}
		iHi := d
		if iHi > nb-1 {
			iHi = nb - 1
		}
		blocks := iHi - iLo + 1
		dd := d
		kernels = append(kernels, partitionKernel(
			fmt.Sprintf("nw_diag%d", d+1), blocks, 2,
			func(lo, hi int) gpu.WarpProgram {
				var progs []gpu.WarpProgram
				for b := lo; b < hi; b++ {
					bi := iLo + b
					bj := dd - bi
					rowLo := bi * nwBlock
					colLo := bj * nwBlock
					progs = append(progs, newStrided(
						[]operand{readOp(matrix), readOp(ref), writeOp(matrix)},
						rowLo, rowLo+nwBlock, colLo, colLo+nwBlock, edge, 6))
				}
				return chainPrograms(progs...)
			}))
		iterOf = append(iterOf, 1)
	}
	return &Built{Name: "nw", Regular: false, Space: space, Kernels: kernels, IterOf: iterOf}
}
