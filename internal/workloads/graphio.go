package workloads

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Graph I/O: the bfs and sssp workloads can run on user-supplied inputs
// instead of the synthetic generators. The format is a plain edge list,
// one of the lowest common denominators for graph datasets:
//
//	# comment lines start with '#' or '%'
//	<src> <dst> [weight]
//
// Node ids are 0-based integers; a missing weight defaults to 1. The
// loader infers the node count from the largest id seen.

// ParseEdgeList reads an edge-list graph from r.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	type edge struct {
		src, dst, w int32
	}
	var edges []edge
	maxNode := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graphio: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || src < 0 {
			return nil, fmt.Errorf("graphio: line %d: bad source %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || dst < 0 {
			return nil, fmt.Errorf("graphio: line %d: bad target %q", lineNo, fields[1])
		}
		w := int64(1)
		if len(fields) == 3 {
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("graphio: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		edges = append(edges, edge{int32(src), int32(dst), int32(w)})
		if int32(src) > maxNode {
			maxNode = int32(src)
		}
		if int32(dst) > maxNode {
			maxNode = int32(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graphio: no edges in input")
	}
	n := int(maxNode) + 1
	if n < 2 {
		return nil, fmt.Errorf("graphio: graph needs at least 2 nodes")
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].src != edges[j].src {
			return edges[i].src < edges[j].src
		}
		return edges[i].dst < edges[j].dst
	})
	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	g.Edges = make([]int32, 0, len(edges))
	g.Weights = make([]int32, 0, len(edges))
	cur := int32(0)
	for _, e := range edges {
		for cur < e.src {
			cur++
			g.RowPtr[cur+0] = int32(len(g.Edges))
		}
		g.Edges = append(g.Edges, e.dst)
		g.Weights = append(g.Weights, e.w)
		g.RowPtr[e.src+1] = int32(len(g.Edges))
	}
	for v := int(cur) + 1; v <= n; v++ {
		if g.RowPtr[v] < g.RowPtr[v-1] {
			g.RowPtr[v] = g.RowPtr[v-1]
		}
	}
	// Normalize: rowptr must be monotone even past the last source.
	for v := 1; v <= n; v++ {
		if g.RowPtr[v] < g.RowPtr[v-1] {
			g.RowPtr[v] = g.RowPtr[v-1]
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// BFSOnGraph builds a bfs workload instance over a caller-provided graph
// (e.g. loaded with ParseEdgeList). Levels are computed host-side from
// node 0, exactly as the synthetic factory does.
func BFSOnGraph(g *Graph) (*Built, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	levels := BFSLevels(g)
	if len(levels) < 2 {
		return nil, fmt.Errorf("workloads: node 0 reaches nothing; bfs would be empty")
	}
	return buildBFS(g, levels), nil
}

// SSSPOnGraph builds an sssp workload instance over a caller-provided
// weighted graph.
func SSSPOnGraph(g *Graph, maxRounds int) (*Built, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Weights == nil {
		return nil, fmt.Errorf("workloads: sssp needs edge weights")
	}
	rounds, _ := SSSPRounds(g, maxRounds)
	if len(rounds) < 2 {
		return nil, fmt.Errorf("workloads: node 0 relaxes nothing; sssp would be empty")
	}
	return buildSSSP(g, rounds), nil
}
