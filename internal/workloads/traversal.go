package workloads

import "fmt"

// TraversalGraph generation.
//
// The paper's irregular traversal benchmarks (bfs, sssp) operate on
// inputs whose defining property is *sparse, seldom access to large
// data sets*: only a scattered fraction of the edge array is ever
// touched, and it is touched a few transactions at a time across many
// thin iterations. A uniformly-reachable random graph scaled down to
// simulator-friendly sizes loses exactly that property — any broad
// frontier becomes dense at 64KB-block granularity and every block
// crosses any access threshold immediately.
//
// GenTraversalGraph therefore builds a graph with an explicitly layered
// reachable subgraph:
//
//   - a fraction reachFrac of the nodes, scattered uniformly through the
//     node id space, is reachable from node 0;
//   - the reachable set is partitioned into `layers` equal waves; BFS
//     from node 0 discovers exactly one wave per level, so frontiers are
//     thin and uniform instead of exponentially back-loaded;
//   - reachable nodes also receive a few same-layer and backward edges,
//     which make worklist SSSP re-relax earlier waves (re-touching edge
//     blocks across rounds);
//   - unreachable nodes still own ordinary adjacency lists, so the edge
//     array has its full footprint while most of it is never read —
//     the cold data the Adaptive policy can leave host-pinned.

// GenTraversalGraph builds the layered sparse-traversal graph described
// above: n nodes, about n*avgDeg edges, a reachable subgraph of
// ~reachFrac*n scattered nodes organized into the given number of
// layers. Node 0 is the single root layer.
func GenTraversalGraph(n, avgDeg, layers int, reachFrac float64, seed uint64) *Graph {
	if n < 2 || avgDeg < 2 || layers < 1 || reachFrac <= 0 || reachFrac > 1 {
		panic(fmt.Sprintf("workloads: GenTraversalGraph(n=%d, avgDeg=%d, layers=%d, reach=%v)",
			n, avgDeg, layers, reachFrac))
	}
	rng := newRNG(seed)

	// Scatter the reachable set through the id space.
	cut := uint64(reachFrac * float64(1<<16))
	inS := func(v int) bool {
		if v == 0 {
			return true
		}
		x := uint64(v) * 0x9E3779B97F4A7C15
		return (x>>32)%(1<<16) < cut
	}
	var s []int32
	for v := 0; v < n; v++ {
		if inS(v) {
			s = append(s, int32(v))
		}
	}
	if len(s) < layers+1 {
		panic(fmt.Sprintf("workloads: reachable set %d smaller than %d layers", len(s), layers))
	}

	// Partition: layer 0 = {node 0}; layers 1..layers share the rest.
	// s is in ascending id order, which is already scattered relative to
	// the hash-based membership; interleave round-robin so every layer
	// spreads across the id space.
	layerOf := make([]int32, n) // layer+1; 0 = unreachable
	byLayer := make([][]int32, layers+1)
	byLayer[0] = []int32{0}
	layerOf[0] = 1
	i := 0
	for _, v := range s {
		if v == 0 {
			continue
		}
		l := 1 + i%layers
		byLayer[l] = append(byLayer[l], v)
		layerOf[v] = int32(l) + 1
		i++
	}

	// Edges accumulate as flat (source, target) pairs plus a per-node
	// degree count, then a stable counting sort lays out the CSR — one
	// growing buffer instead of n per-node adjacency slices, which
	// dominated generation time at paper scale.
	type edge struct{ u, t int32 }
	pairs := make([]edge, 0, n*avgDeg+n)
	deg := make([]int32, n)
	addEdge := func(u int, t int32) {
		pairs = append(pairs, edge{int32(u), t})
		deg[u]++
	}

	// Backbone: every node of layer k+1 gets one in-edge from a random
	// node of layer k, making BFS discover exactly one layer per level.
	for l := 1; l <= layers; l++ {
		prev := byLayer[l-1]
		for _, v := range byLayer[l] {
			addEdge(int(prev[rng.intn(len(prev))]), v)
		}
	}
	// Extra reachable-subgraph edges: forward (next layer), same-layer,
	// and backward — the backward ones re-activate earlier waves in
	// worklist SSSP.
	for l := 1; l <= layers; l++ {
		for _, v := range byLayer[l] {
			if l < layers {
				next := byLayer[l+1]
				addEdge(int(v), next[rng.intn(len(next))])
			}
			if rng.intn(2) == 0 {
				same := byLayer[l]
				addEdge(int(v), same[rng.intn(len(same))])
			}
			if l > 1 && rng.intn(4) == 0 {
				back := byLayer[l-1]
				addEdge(int(v), back[rng.intn(len(back))])
			}
		}
	}
	// Fill every node up to avgDeg. Unreachable nodes get uniformly
	// random targets — pure footprint, never read by the traversal.
	// Reachable nodes' fillers target same-or-earlier layers so the
	// reachable set stays exactly S and BFS levels stay one layer wide
	// (an edge into an already-visited wave never re-expands BFS, while
	// it does re-activate waves in worklist SSSP).
	for v := 0; v < n; v++ {
		if lp := layerOf[v]; lp != 0 {
			l := int(lp - 1)
			for int(deg[v]) < avgDeg {
				tgt := byLayer[rng.intn(l+1)]
				addEdge(v, tgt[rng.intn(len(tgt))])
			}
			continue
		}
		for int(deg[v]) < avgDeg {
			addEdge(v, int32(rng.intn(n)))
		}
	}

	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] = g.RowPtr[v] + deg[v]
	}
	total := int(g.RowPtr[n])
	// Stable counting sort of the pairs by source node: per-node
	// insertion order is preserved, so the CSR layout is identical to
	// concatenating per-node adjacency lists in append order.
	g.Edges = make([]int32, total)
	next := make([]int32, n)
	copy(next, g.RowPtr[:n])
	for _, e := range pairs {
		g.Edges[next[e.u]] = e.t
		next[e.u]++
	}
	g.Weights = make([]int32, total)
	for v := 0; v < n; v++ {
		for j := g.RowPtr[v]; j < g.RowPtr[v+1]; j++ {
			g.Weights[j] = int32(rng.intn(15) + 1)
		}
	}
	return g
}
