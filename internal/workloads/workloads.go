// Package workloads implements synthetic equivalents of the paper's
// benchmark suite (§V): four regular applications (backprop, fdtd,
// hotspot, srad) with dense, sequential, repetitive access, and four
// irregular ones (bfs, nw, ra, sssp) with sparse, seldom access to large
// cold data structures plus dense access to hot ones.
//
// Each workload allocates managed data structures and produces the
// ordered list of kernel launches whose warp programs generate the same
// *access pattern taxonomy* the paper characterizes in §III-B. The
// policies under study observe only the address/type/timing stream, so
// matching the pattern preserves the evaluation's shape (see DESIGN.md).
package workloads

import (
	"fmt"
	"sort"

	"uvmsim/internal/alloc"
	"uvmsim/internal/gpu"
)

// Built is an instantiated workload ready to simulate.
type Built struct {
	Name    string
	Regular bool
	// Space holds the managed allocations (sized before the simulator
	// chooses device capacity, so oversubscription can be derived from
	// TotalUserBytes).
	Space *alloc.Space
	// Kernels run in launch order with device synchronization between
	// them.
	Kernels []gpu.Kernel
	// IterOf maps a kernel index to its logical iteration number
	// (1-based), for the Fig. 3 access-pattern traces.
	IterOf []int
}

// WorkingSet returns the user-visible working set in bytes.
func (b *Built) WorkingSet() uint64 { return b.Space.TotalUserBytes() }

// Factory builds a workload at the given scale. Scale 1.0 is the
// "paper" size (tens of MB); tests use much smaller scales.
type Factory func(scale float64) *Built

// registry of all workloads in the paper's plotting order.
var registry = []struct {
	name    string
	regular bool
	f       Factory
}{
	{"backprop", true, Backprop},
	{"fdtd", true, FDTD},
	{"hotspot", true, Hotspot},
	{"srad", true, SRAD},
	{"bfs", false, BFS},
	{"nw", false, NW},
	{"ra", false, RA},
	{"sssp", false, SSSP},
}

// Names returns all workload names in the paper's order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// RegularNames returns the regular workloads in order.
func RegularNames() []string { return Names()[:4] }

// IrregularNames returns the irregular workloads in order.
func IrregularNames() []string { return Names()[4:] }

// Get returns the factory for a workload name, searching the paper
// suite first and then the extras (see extras.go).
func Get(name string) (Factory, bool) {
	for _, r := range registry {
		if r.name == name {
			return r.f, true
		}
	}
	for _, r := range extras {
		if r.name == name {
			return r.f, true
		}
	}
	return nil, false
}

// MustGet is Get or panic.
func MustGet(name string) Factory {
	f, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q (have %v)", name, Names()))
	}
	return f
}

// IsRegular reports the paper's classification for a workload name.
func IsRegular(name string) bool {
	for _, r := range registry {
		if r.name == name {
			return r.regular
		}
	}
	for _, r := range extras {
		if r.name == name {
			return r.regular
		}
	}
	panic(fmt.Sprintf("workloads: unknown workload %q", name))
}

// scaleElems scales an element count, keeping it positive and 32-aligned.
func scaleElems(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1024 {
		n = 1024
	}
	return (n + 31) &^ 31
}

// warpsPerCTA is the CTA shape used by all synthetic kernels.
const warpsPerCTA = 8

// partitionKernel builds a kernel that splits totalItems work items into
// warps of itemsPerWarp contiguous items each; mk builds the program for
// the item range [lo, hi).
func partitionKernel(name string, totalItems, itemsPerWarp int, mk func(lo, hi int) gpu.WarpProgram) gpu.Kernel {
	if totalItems <= 0 {
		panic(fmt.Sprintf("workloads: kernel %q with %d items", name, totalItems))
	}
	if itemsPerWarp <= 0 {
		panic(fmt.Sprintf("workloads: kernel %q with %d items per warp", name, itemsPerWarp))
	}
	warps := (totalItems + itemsPerWarp - 1) / itemsPerWarp
	ctas := (warps + warpsPerCTA - 1) / warpsPerCTA
	return gpu.Kernel{
		Name:        name,
		CTAs:        ctas,
		WarpsPerCTA: warpsPerCTA,
		NewWarp: func(cta, w int) gpu.WarpProgram {
			wi := cta*warpsPerCTA + w
			lo := wi * itemsPerWarp
			hi := lo + itemsPerWarp
			if lo >= totalItems {
				return emptyProgram{}
			}
			if hi > totalItems {
				hi = totalItems
			}
			return mk(lo, hi)
		},
	}
}

// emptyProgram is a warp with no work (tail padding of the last CTA).
type emptyProgram struct{}

// Next reports no instructions.
func (emptyProgram) Next(*gpu.Instr) bool { return false }

// xorshift64 is the deterministic PRNG used by all generators.
type xorshift64 uint64

func newRNG(seed uint64) *xorshift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	x := xorshift64(seed)
	return &x
}

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift64) intn(n int) int {
	if n <= 0 {
		panic("workloads: intn on non-positive bound")
	}
	return int(x.next() % uint64(n))
}

// sortedCopy returns a sorted copy of xs (test helper shared here).
func sortedCopy(xs []int32) []int32 {
	out := make([]int32, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
