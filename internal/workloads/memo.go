package workloads

import "sync"

// Memo caches Built workloads per (name, scale) so a figure sweep
// builds each workload graph/trace once and shares the immutable Built
// across every cell instead of rebuilding per cell.
//
// Sharing is safe because a Built never changes after construction:
// the allocation space is read-only once sized, the kernel closures
// capture only immutable inputs (index slices, bitmaps, CSR arrays),
// and every per-run mutable object (warp state, driver, device memory)
// is created by the simulator, not the workload. Deterministic seeds
// are baked into each factory, so (name, scale) fully identifies the
// build — there is no external seed dimension to key on.
//
// Get is safe for concurrent use by parallel sweep workers. The build
// itself runs under the memo lock: concurrent first requests for the
// same key would otherwise race to build duplicate graphs, and a
// workload build is cheap next to the simulations that share it.
type Memo struct {
	mu sync.Mutex
	m  map[memoKey]*Built
}

type memoKey struct {
	name  string
	scale float64
}

// NewMemo returns an empty workload cache.
func NewMemo() *Memo { return &Memo{m: make(map[memoKey]*Built)} }

// Get returns the cached Built for (name, scale), building and caching
// it on first request. Unknown names panic exactly as MustGet does.
func (m *Memo) Get(name string, scale float64) *Built {
	key := memoKey{name: name, scale: scale}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.m[key]; ok {
		return b
	}
	b := MustGet(name)(scale)
	m.m[key] = b
	return b
}

// Len reports how many distinct (name, scale) builds the memo holds.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
