package workloads

import (
	"fmt"
	"sync"
)

// Memo caches Built workloads per (name, scale) so a figure sweep
// builds each workload graph/trace once and shares the immutable Built
// across every cell instead of rebuilding per cell.
//
// Sharing is safe because a Built never changes after construction:
// the allocation space is read-only once sized, the kernel closures
// capture only immutable inputs (index slices, bitmaps, CSR arrays),
// and every per-run mutable object (warp state, driver, device memory)
// is created by the simulator, not the workload. Deterministic seeds
// are baked into each factory, so (name, scale) fully identifies the
// build — there is no external seed dimension to key on.
//
// Get is safe for concurrent use by parallel sweep workers and by the
// sweep service's job goroutines. Builds are serialized per key, not
// globally: concurrent first requests for the *same* (name, scale)
// share one build, while requests for distinct keys build concurrently
// (a long scale-1.0 build must not stall every unrelated job behind a
// global lock — see TestMemoDistinctKeysBuildConcurrently).
type Memo struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry

	// build constructs a workload; tests override it to observe build
	// concurrency. nil selects the real factories.
	build func(name string, scale float64) *Built
}

type memoKey struct {
	name  string
	scale float64
}

// memoEntry is the per-key future: the once runs the build exactly one
// time while other keys proceed independently.
type memoEntry struct {
	once sync.Once
	b    *Built
}

// NewMemo returns an empty workload cache.
func NewMemo() *Memo { return &Memo{m: make(map[memoKey]*memoEntry)} }

// Get returns the cached Built for (name, scale), building and caching
// it on first request. Unknown names panic exactly as MustGet does.
func (m *Memo) Get(name string, scale float64) *Built {
	// Resolve the factory before touching the entry so an unknown name
	// panics on every caller instead of poisoning the key's once.
	build := m.build
	if build == nil {
		f := MustGet(name)
		build = func(_ string, scale float64) *Built { return f(scale) }
	}
	key := memoKey{name: name, scale: scale}
	m.mu.Lock()
	e := m.m[key]
	if e == nil {
		e = &memoEntry{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.b = build(name, scale) })
	if e.b == nil {
		// A panicking build marks the once done with a nil Built; later
		// callers must not silently receive it.
		panic(fmt.Sprintf("workloads: build of %q (scale %g) previously failed", name, scale))
	}
	return e.b
}

// Len reports how many distinct (name, scale) builds the memo holds.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
