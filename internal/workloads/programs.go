package workloads

import (
	"uvmsim/internal/alloc"
	"uvmsim/internal/gpu"
	"uvmsim/internal/memunits"
)

// elemSize is the element width of every synthetic array (float32/int32).
const elemSize = 4

// lanes is the number of elements one memory instruction covers.
const lanes = gpu.MaxLanes

// operand describes one array touched per element group by a stream
// program.
type operand struct {
	base  memunits.Addr
	write bool
}

// readOp and writeOp build operands from an allocation at an element
// offset.
func readOp(a *alloc.Allocation) operand  { return operand{base: a.Base} }
func writeOp(a *alloc.Allocation) operand { return operand{base: a.Base, write: true} }

// streamProgram is a dense sequential sweep: for each group of 32
// consecutive elements in [lo, hi), it issues one instruction per
// operand (same element indices in each array), with compute cycles
// attached to the first instruction of each group.
type streamProgram struct {
	ops     []operand
	lo, hi  int // element index range
	compute uint64
	pos     int
	opIdx   int
}

// newStream builds a stream over elements [lo, hi).
func newStream(ops []operand, lo, hi int, compute uint64) *streamProgram {
	return &streamProgram{ops: ops, lo: lo, hi: hi, compute: compute, pos: lo}
}

// Next implements gpu.WarpProgram.
func (p *streamProgram) Next(in *gpu.Instr) bool {
	if p.pos >= p.hi {
		return false
	}
	end := p.pos + lanes
	if end > p.hi {
		end = p.hi
	}
	op := p.ops[p.opIdx]
	in.Write = op.write
	in.NumAddrs = end - p.pos
	for i := p.pos; i < end; i++ {
		in.Addrs[i-p.pos] = op.base + uint64(i)*elemSize
	}
	if p.opIdx == 0 {
		in.Compute = p.compute
	} else {
		in.Compute = 0
	}
	p.opIdx++
	if p.opIdx == len(p.ops) {
		p.opIdx = 0
		p.pos = end
	}
	return true
}

// gatherProgram issues gather/scatter instructions: each group of up to
// 32 indices from idx produces one instruction per operand whose lane
// addresses are table[idx[k]]. Used for random access (ra) and
// frontier-driven neighbor updates.
type gatherProgram struct {
	ops     []operand // bases are table bases; indices apply to each
	idx     []int32
	compute uint64
	pos     int
	opIdx   int
}

func newGather(ops []operand, idx []int32, compute uint64) *gatherProgram {
	return &gatherProgram{ops: ops, idx: idx, compute: compute}
}

// Next implements gpu.WarpProgram.
func (p *gatherProgram) Next(in *gpu.Instr) bool {
	if p.pos >= len(p.idx) {
		return false
	}
	end := p.pos + lanes
	if end > len(p.idx) {
		end = len(p.idx)
	}
	op := p.ops[p.opIdx]
	in.Write = op.write
	in.NumAddrs = end - p.pos
	for i := p.pos; i < end; i++ {
		in.Addrs[i-p.pos] = op.base + uint64(p.idx[i])*elemSize
	}
	if p.opIdx == 0 {
		in.Compute = p.compute
	} else {
		in.Compute = 0
	}
	p.opIdx++
	if p.opIdx == len(p.ops) {
		p.opIdx = 0
		p.pos = end
	}
	return true
}

// seqProgram chains several programs, running each to completion.
type seqProgram struct {
	progs []gpu.WarpProgram
	cur   int
}

func chainPrograms(progs ...gpu.WarpProgram) gpu.WarpProgram {
	return &seqProgram{progs: progs}
}

// Next implements gpu.WarpProgram.
func (p *seqProgram) Next(in *gpu.Instr) bool {
	for p.cur < len(p.progs) {
		if p.progs[p.cur].Next(in) {
			return true
		}
		p.cur++
	}
	return false
}

// stridedProgram sweeps rows of a row-major 2D array: for each row in
// [rowLo, rowHi), it covers columns [colLo, colHi) in 32-element groups,
// one instruction per operand. Rows are rowStride elements apart, which
// is what spreads wavefront traversals (nw) across pages.
type stridedProgram struct {
	ops            []operand
	rowLo, rowHi   int
	colLo, colHi   int
	rowStride      int
	compute        uint64
	row, col, opIx int
}

func newStrided(ops []operand, rowLo, rowHi, colLo, colHi, rowStride int, compute uint64) *stridedProgram {
	return &stridedProgram{
		ops: ops, rowLo: rowLo, rowHi: rowHi, colLo: colLo, colHi: colHi,
		rowStride: rowStride, compute: compute, row: rowLo, col: colLo,
	}
}

// Next implements gpu.WarpProgram.
func (p *stridedProgram) Next(in *gpu.Instr) bool {
	if p.row >= p.rowHi || p.colLo >= p.colHi {
		return false
	}
	end := p.col + lanes
	if end > p.colHi {
		end = p.colHi
	}
	op := p.ops[p.opIx]
	in.Write = op.write
	in.NumAddrs = end - p.col
	rowBase := op.base + uint64(p.row*p.rowStride)*elemSize
	for c := p.col; c < end; c++ {
		in.Addrs[c-p.col] = rowBase + uint64(c)*elemSize
	}
	if p.opIx == 0 {
		in.Compute = p.compute
	} else {
		in.Compute = 0
	}
	p.opIx++
	if p.opIx == len(p.ops) {
		p.opIx = 0
		p.col = end
		if p.col >= p.colHi {
			p.col = p.colLo
			p.row++
		}
	}
	return true
}
