package workloads

import (
	"fmt"

	"uvmsim/internal/alloc"
	"uvmsim/internal/gpu"
)

// itemsPerWarpDense is the contiguous element share per warp in dense
// kernels: 512 elements = 2KB per array per warp. Keeping the share
// small keeps the concurrent-warp footprint a sliding window that is
// small relative to the working set, as on real hardware — large shares
// make every resident chunk "in use" at once and turn eviction into
// guaranteed thrash.
const itemsPerWarpDense = 512

// denseKernel builds a full sequential sweep over n elements applying
// ops to every 32-element group.
func denseKernel(name string, n int, ops []operand, compute uint64) gpu.Kernel {
	return partitionKernel(name, n, itemsPerWarpDense, func(lo, hi int) gpu.WarpProgram {
		return newStream(ops, lo, hi, compute)
	})
}

// Backprop models the Rodinia backprop shape the paper reports: a
// single forward and a single backward pass, each scanning its layers
// densely and sequentially with no data reuse across kernels — which is
// why it shows zero thrashing even under oversubscription (Fig. 7).
func Backprop(scale float64) *Built {
	space := alloc.NewSpace()
	nIn := scaleElems(2<<20, scale)  // input units
	nW := scaleElems(3<<20, scale)   // weight matrix elements
	nHid := scaleElems(1<<20, scale) // hidden units
	nDelta := scaleElems(1<<20, scale)

	input := space.Alloc("input", uint64(nIn)*elemSize, true)
	w1 := space.Alloc("w1", uint64(nW)*elemSize, true)
	hidden := space.Alloc("hidden", uint64(nHid)*elemSize, false)
	delta := space.Alloc("delta", uint64(nDelta)*elemSize, true)
	w2 := space.Alloc("w2", uint64(nW)*elemSize, false)

	// Every kernel is a single dense pass over its own arrays; no array
	// is touched by more than one kernel, so there is no cross-kernel
	// reuse to thrash on.
	kernels := []gpu.Kernel{
		denseKernel("backprop_forward_in", nIn, []operand{readOp(input)}, 6),
		denseKernel("backprop_forward_w", nW, []operand{readOp(w1)}, 8),
		denseKernel("backprop_forward_hidden", nHid, []operand{writeOp(hidden)}, 4),
		denseKernel("backprop_backward_delta", nDelta, []operand{readOp(delta)}, 6),
		denseKernel("backprop_backward_w", nW, []operand{writeOp(w2)}, 8),
	}
	return &Built{
		Name: "backprop", Regular: true, Space: space,
		Kernels: kernels,
		IterOf:  []int{1, 1, 1, 1, 1},
	}
}

// FDTD models fdtd-2d (PolyBench): three equal arrays (ex, ey, hz)
// updated by three kernels per iteration, every iteration sweeping all
// arrays densely and sequentially (§III-B, Figs. 2a/3a/3b).
func FDTD(scale float64) *Built {
	space := alloc.NewSpace()
	n := scaleElems(5<<19, scale) // 2.5M elements = 10MB per array at scale 1
	const iters = 4

	ex := space.Alloc("ex", uint64(n)*elemSize, false)
	ey := space.Alloc("ey", uint64(n)*elemSize, false)
	hz := space.Alloc("hz", uint64(n)*elemSize, false)

	var kernels []gpu.Kernel
	var iterOf []int
	for it := 1; it <= iters; it++ {
		kernels = append(kernels,
			denseKernel(fmt.Sprintf("fdtd_ey_i%d", it), n, []operand{readOp(ey), readOp(hz), writeOp(ey)}, 6),
			denseKernel(fmt.Sprintf("fdtd_ex_i%d", it), n, []operand{readOp(ex), readOp(hz), writeOp(ex)}, 6),
			denseKernel(fmt.Sprintf("fdtd_hz_i%d", it), n, []operand{readOp(hz), readOp(ex), readOp(ey), writeOp(hz)}, 8),
		)
		iterOf = append(iterOf, it, it, it)
	}
	return &Built{Name: "fdtd", Regular: true, Space: space, Kernels: kernels, IterOf: iterOf}
}

// Hotspot models the Rodinia hotspot thermal stencil: a read-write
// temperature grid and a read-only power grid swept densely every
// iteration.
func Hotspot(scale float64) *Built {
	space := alloc.NewSpace()
	n := scaleElems(4<<20, scale) // 16MB per grid at scale 1
	const iters = 5

	temp := space.Alloc("temp", uint64(n)*elemSize, false)
	power := space.Alloc("power", uint64(n)*elemSize, true)

	var kernels []gpu.Kernel
	var iterOf []int
	for it := 1; it <= iters; it++ {
		kernels = append(kernels, denseKernel(
			fmt.Sprintf("hotspot_i%d", it), n,
			[]operand{readOp(temp), readOp(power), writeOp(temp)}, 12))
		iterOf = append(iterOf, it)
	}
	return &Built{Name: "hotspot", Regular: true, Space: space, Kernels: kernels, IterOf: iterOf}
}

// SRAD models the Rodinia srad diffusion: an image and a coefficient
// array, two dense kernels per iteration.
func SRAD(scale float64) *Built {
	space := alloc.NewSpace()
	n := scaleElems(3<<20, scale) // 12MB per array at scale 1
	const iters = 4

	img := space.Alloc("image", uint64(n)*elemSize, false)
	coef := space.Alloc("coef", uint64(n)*elemSize, false)

	var kernels []gpu.Kernel
	var iterOf []int
	for it := 1; it <= iters; it++ {
		kernels = append(kernels,
			denseKernel(fmt.Sprintf("srad1_i%d", it), n, []operand{readOp(img), writeOp(coef)}, 10),
			denseKernel(fmt.Sprintf("srad2_i%d", it), n, []operand{readOp(img), readOp(coef), writeOp(img)}, 10),
		)
		iterOf = append(iterOf, it, it)
	}
	return &Built{Name: "srad", Regular: true, Space: space, Kernels: kernels, IterOf: iterOf}
}
