package workloads

import (
	"testing"

	"uvmsim/internal/gpu"
)

func TestExtrasRegistered(t *testing.T) {
	if len(ExtraNames()) != 2 {
		t.Fatalf("ExtraNames = %v", ExtraNames())
	}
	if len(AllNames()) != 10 {
		t.Fatalf("AllNames = %v", AllNames())
	}
	// Paper figure sweeps must not include extras.
	if len(Names()) != 8 {
		t.Fatalf("Names leaked extras: %v", Names())
	}
	for _, n := range ExtraNames() {
		if _, ok := Get(n); !ok {
			t.Errorf("extra %q not resolvable via Get", n)
		}
		if IsRegular(n) {
			t.Errorf("extra %q misclassified as regular", n)
		}
	}
}

func TestExtrasBuildAndDrain(t *testing.T) {
	for _, name := range ExtraNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := MustGet(name)(testScale)
			if b.WorkingSet() == 0 || len(b.Kernels) == 0 {
				t.Fatal("empty build")
			}
			if n := drainBuild(t, b); n == 0 {
				t.Fatal("no instructions")
			}
		})
	}
}

func TestPointerChaseIsDependent(t *testing.T) {
	b := PointerChase(testScale)
	p := b.Kernels[0].NewWarp(0, 0)
	var in gpu.Instr
	var prev uint64
	distinct := map[uint64]bool{}
	for i := 0; p.Next(&in) && i < 64; i++ {
		if in.NumAddrs != 1 {
			t.Fatalf("chase instr has %d lanes, want 1", in.NumAddrs)
		}
		if i > 0 && in.Addrs[0] == prev {
			t.Fatal("chain did not advance")
		}
		prev = in.Addrs[0]
		distinct[in.Addrs[0]] = true
	}
	if len(distinct) < 16 {
		t.Fatalf("chain revisits too quickly: %d distinct addresses", len(distinct))
	}
}

func TestSpatterMixesStridedAndRandom(t *testing.T) {
	b := Spatter(testScale)
	// The second program of the first gather warp reads the buffer at
	// both strided and random offsets; just verify the gather phase
	// produces divergent sectors.
	p := b.Kernels[0].NewWarp(0, 0)
	var in gpu.Instr
	sawGather := false
	buffer := b.Space.Allocations()[0]
	for p.Next(&in) {
		if in.NumAddrs < 2 {
			continue
		}
		if !buffer.Contains(in.Addrs[0]) {
			continue
		}
		// Check divergence in a buffer access group.
		sectors := map[uint64]bool{}
		for i := 0; i < in.NumAddrs; i++ {
			sectors[in.Addrs[i]/128] = true
		}
		if len(sectors) > 4 {
			sawGather = true
			break
		}
	}
	if !sawGather {
		t.Fatal("no divergent gather into the buffer observed")
	}
}

func TestExtrasRunEndToEnd(t *testing.T) {
	// Extras must survive a complete simulation (core is a higher-level
	// package, so run the GPU+driver pair directly via the drain loop in
	// core's integration tests; here a build-level sanity pass is
	// enough: every kernel validates).
	for _, name := range ExtraNames() {
		b := MustGet(name)(testScale)
		for _, k := range b.Kernels {
			if err := k.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}
