package workloads

import (
	"uvmsim/internal/gpu"
	"uvmsim/internal/memunits"
)

// maskedCSRProgram is the warp program of Rodinia-style graph kernels
// (bfs kernel1 and sssp kernel1): every iteration launches one thread
// per node, so the kernel *densely* sweeps the small mask array over the
// whole node range, and only the active (frontier) nodes walk their
// adjacency — a *sparse* excursion into the large edges/weights arrays
// followed by divergent scatter writes into the distance array.
//
// This is exactly the hot/cold split the paper characterizes in §III-B:
// node-sized arrays are dense, repetitive and hot; edge-sized arrays are
// sparse, input-dependent and cold.
type maskedCSRProgram struct {
	g          *Graph
	maskBase   memunits.Addr
	rowPtrBase memunits.Addr
	edgeBase   memunits.Addr
	distBase   memunits.Addr
	weightBase memunits.Addr // zero disables the weight read (bfs)
	active     []uint64      // shared frontier bitmap, one bit per node
	lo, hi     int           // node range of this warp
	compute    uint64

	group    int // start node of the current 32-node group
	phase    int // 0 = dense mask read, 1 = rowptr gather, 2 = edge drain
	node     int // node currently draining edges
	edgePos  int32
	edgeHi   int32
	subPhase int // 0 read edges, 1 read weights, 2 scatter-write dist
	groupLen int
}

// newMaskedCSR builds the program for the contiguous node range [lo,hi).
func newMaskedCSR(g *Graph, mask, rowPtr, edges, dist, weights memunits.Addr, active []uint64, lo, hi int, compute uint64) *maskedCSRProgram {
	return &maskedCSRProgram{
		g: g, maskBase: mask, rowPtrBase: rowPtr, edgeBase: edges,
		distBase: dist, weightBase: weights, active: active,
		lo: lo, hi: hi, compute: compute, group: lo,
	}
}

// frontierBitmap builds the shared active bitmap for a frontier.
func frontierBitmap(n int, frontier []int32) []uint64 {
	bm := make([]uint64, (n+63)/64)
	for _, v := range frontier {
		bm[v/64] |= 1 << (uint(v) % 64)
	}
	return bm
}

func (p *maskedCSRProgram) isActive(v int) bool {
	return p.active[v/64]&(1<<(uint(v)%64)) != 0
}

// nextActive returns the first active node in [from, to), or to.
func (p *maskedCSRProgram) nextActive(from, to int) int {
	for v := from; v < to; v++ {
		if p.isActive(v) {
			return v
		}
	}
	return to
}

// Next implements gpu.WarpProgram.
func (p *maskedCSRProgram) Next(in *gpu.Instr) bool {
	for {
		if p.group >= p.hi {
			return false
		}
		gEnd := p.group + lanes
		if gEnd > p.hi {
			gEnd = p.hi
		}
		switch p.phase {
		case 0:
			// Dense read of the mask for every node of the group: the
			// hot, repetitive component present in every iteration.
			in.Write = false
			in.Compute = p.compute
			in.NumAddrs = gEnd - p.group
			for v := p.group; v < gEnd; v++ {
				in.Addrs[v-p.group] = p.maskBase + uint64(v)*elemSize
			}
			p.phase = 1
			return true
		case 1:
			// Gather the row pointers of the group's active nodes.
			n := 0
			for v := p.group; v < gEnd && n < lanes; v++ {
				if p.isActive(v) {
					in.Addrs[n] = p.rowPtrBase + uint64(v)*elemSize
					n++
				}
			}
			if n == 0 {
				p.group = gEnd
				p.phase = 0
				continue
			}
			in.Write = false
			in.Compute = 1
			in.NumAddrs = n
			p.phase = 2
			p.node = p.group - 1
			p.advanceNode(gEnd)
			return true
		default:
			if p.node >= gEnd {
				p.group = gEnd
				p.phase = 0
				continue
			}
			if p.edgePos >= p.edgeHi {
				p.advanceNode(gEnd)
				continue
			}
			n := int(p.edgeHi - p.edgePos)
			if n > lanes {
				n = lanes
			}
			switch p.subPhase {
			case 0: // dense read of edge targets (the cold array)
				p.groupLen = n
				in.Write = false
				in.Compute = 0
				in.NumAddrs = n
				for i := 0; i < n; i++ {
					in.Addrs[i] = p.edgeBase + uint64(p.edgePos+int32(i))*elemSize
				}
				if p.weightBase != 0 {
					p.subPhase = 1
				} else {
					p.subPhase = 2
				}
				return true
			case 1: // dense read of edge weights (sssp)
				in.Write = false
				in.Compute = 0
				in.NumAddrs = p.groupLen
				for i := 0; i < p.groupLen; i++ {
					in.Addrs[i] = p.weightBase + uint64(p.edgePos+int32(i))*elemSize
				}
				p.subPhase = 2
				return true
			default: // divergent scatter write into the hot dist array
				in.Write = true
				in.Compute = 2
				in.NumAddrs = p.groupLen
				for i := 0; i < p.groupLen; i++ {
					t := p.g.Edges[p.edgePos+int32(i)]
					in.Addrs[i] = p.distBase + uint64(t)*elemSize
				}
				p.edgePos += int32(p.groupLen)
				p.subPhase = 0
				return true
			}
		}
	}
}

// advanceNode positions the edge cursor at the next active node of the
// group, or past gEnd when the group is drained.
func (p *maskedCSRProgram) advanceNode(gEnd int) {
	p.node = p.nextActive(p.node+1, gEnd)
	if p.node < gEnd {
		p.edgePos = p.g.RowPtr[p.node]
		p.edgeHi = p.g.RowPtr[p.node+1]
		p.subPhase = 0
	}
}
