package workloads

import (
	"sync"
	"sync/atomic"
	"testing"
)

// A build for one key must not block first requests for *different*
// keys: the memo serializes builds per key, not globally. The "slow"
// build parks on a channel that is only closed after the "fast" key's
// Get has returned, so under the old global-lock implementation this
// test deadlocks (and times out) instead of passing. Run under -race
// in CI.
func TestMemoDistinctKeysBuildConcurrently(t *testing.T) {
	m := NewMemo()
	release := make(chan struct{})
	slowEntered := make(chan struct{})
	m.build = func(name string, scale float64) *Built {
		if name == "slow" {
			close(slowEntered)
			<-release
		}
		return &Built{Name: name}
	}

	slowDone := make(chan *Built)
	go func() { slowDone <- m.Get("slow", 1.0) }()
	<-slowEntered // the slow build is in progress and holds no global lock

	if b := m.Get("fast", 1.0); b == nil || b.Name != "fast" {
		t.Fatalf("Get(fast) = %+v while another key was building", b)
	}
	close(release)
	if b := <-slowDone; b == nil || b.Name != "slow" {
		t.Fatalf("Get(slow) = %+v", b)
	}
	if n := m.Len(); n != 2 {
		t.Fatalf("memo holds %d builds, want 2", n)
	}
}

// Duplicate concurrent requests for the same key must still share one
// build: the per-key once admits exactly one builder.
func TestMemoConcurrentSameKeyBuildsOnce(t *testing.T) {
	m := NewMemo()
	var builds atomic.Int64
	gate := make(chan struct{})
	m.build = func(name string, scale float64) *Built {
		builds.Add(1)
		<-gate // hold the build so every waiter piles onto this key
		return &Built{Name: name}
	}

	const waiters = 8
	got := make([]*Built, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = m.Get("bfs", 0.5)
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d concurrent Gets ran %d builds, want 1", waiters, n)
	}
	for i := 1; i < waiters; i++ {
		if got[i] != got[0] {
			t.Fatalf("concurrent Gets returned distinct Builts")
		}
	}
}
