package workloads

import (
	"fmt"

	"uvmsim/internal/alloc"
	"uvmsim/internal/gpu"
)

// Extra workloads beyond the paper's eight-benchmark suite. They do not
// participate in the figure sweeps (Names returns only the paper set)
// but are available through Get/MustGet for library users — the paper's
// related work motivates both: Spatter [17] characterizes exactly the
// scatter/gather patterns below, and Vesely et al. [28] study the
// address-translation cost of dependent (pointer-chasing) accesses.
var extras = []struct {
	name    string
	regular bool
	f       Factory
}{
	{"spatter", false, Spatter},
	{"pointerchase", false, PointerChase},
}

// ExtraNames returns the additional workload names.
func ExtraNames() []string {
	out := make([]string, len(extras))
	for i, e := range extras {
		out[i] = e.name
	}
	return out
}

// AllNames returns the paper workloads followed by the extras.
func AllNames() []string { return append(Names(), ExtraNames()...) }

// Spatter models the Spatter benchmark suite's core kernels: a gather
// pass (dense sweep of an index array, sparse reads of a large buffer)
// followed by a scatter pass (sparse writes into the buffer), with a mix
// of strided and uniform-random index patterns.
func Spatter(scale float64) *Built {
	space := alloc.NewSpace()
	bufElems := scaleElems(6<<20, scale) // 24MB buffer at scale 1
	idxElems := scaleElems(1<<20, scale) // 4MB of indices
	const iters = 3

	buf := space.Alloc("buffer", uint64(bufElems)*elemSize, false)
	idxA := space.Alloc("indices", uint64(idxElems)*elemSize, true)

	rng := newRNG(0x59A77E4)
	// Half the indices are strided (stride 17 pages-ish), half random.
	idx := make([]int32, idxElems)
	for i := range idx {
		if i%2 == 0 {
			idx[i] = int32((i * 17 * 1024) % bufElems)
		} else {
			idx[i] = int32(rng.intn(bufElems))
		}
	}

	var kernels []gpu.Kernel
	var iterOf []int
	for it := 1; it <= iters; it++ {
		gather := partitionKernel(fmt.Sprintf("spatter_gather_i%d", it), idxElems, 512,
			func(lo, hi int) gpu.WarpProgram {
				// Dense read of the index array, then the gather itself.
				return chainPrograms(
					newStream([]operand{readOp(idxA)}, lo, hi, 2),
					newGather([]operand{readOp(buf)}, idx[lo:hi], 2),
				)
			})
		scatter := partitionKernel(fmt.Sprintf("spatter_scatter_i%d", it), idxElems, 512,
			func(lo, hi int) gpu.WarpProgram {
				return chainPrograms(
					newStream([]operand{readOp(idxA)}, lo, hi, 2),
					newGather([]operand{writeOp(buf)}, idx[lo:hi], 2),
				)
			})
		kernels = append(kernels, gather, scatter)
		iterOf = append(iterOf, it, it)
	}
	return &Built{Name: "spatter", Regular: false, Space: space, Kernels: kernels, IterOf: iterOf}
}

// chaseProgram follows a pointer chain: every access depends on the
// previous one, so a warp has exactly one outstanding transaction and
// the workload is purely latency-bound — the worst case for any
// prefetcher and a stress test for translation overhead.
type chaseProgram struct {
	base  uint64 // allocation base address
	next  []int32
	cur   int32
	steps int
}

// Next implements gpu.WarpProgram.
func (p *chaseProgram) Next(in *gpu.Instr) bool {
	if p.steps == 0 {
		return false
	}
	p.steps--
	in.Compute = 1
	in.Write = false
	in.NumAddrs = 1
	in.Addrs[0] = p.base + uint64(p.cur)*elemSize
	p.cur = p.next[p.cur]
	return true
}

// PointerChase models dependent irregular access: warps walk a random
// permutation cycle through a large node array, one element at a time.
func PointerChase(scale float64) *Built {
	space := alloc.NewSpace()
	n := scaleElems(4<<20, scale) // 16MB of nodes at scale 1
	nodes := space.Alloc("nodes", uint64(n)*elemSize, true)

	// Sattolo's algorithm: one cycle covering every node.
	rng := newRNG(0xC4A5E)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int32, n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = perm[0]

	const warps = 512
	steps := n / warps / 4 // each warp walks a quarter of its share
	if steps < 16 {
		steps = 16
	}
	k := gpu.Kernel{
		Name:        "pointerchase",
		CTAs:        warps / warpsPerCTA,
		WarpsPerCTA: warpsPerCTA,
		NewWarp: func(cta, w int) gpu.WarpProgram {
			wi := cta*warpsPerCTA + w
			start := perm[(wi*(n/warps))%n]
			return &chaseProgram{base: nodes.Base, next: next, cur: start, steps: steps}
		},
	}
	return &Built{Name: "pointerchase", Regular: false, Space: space, Kernels: []gpu.Kernel{k}, IterOf: []int{1}}
}
