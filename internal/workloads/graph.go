package workloads

import (
	"fmt"
	"math"
	"sort"
)

// Graph is a directed graph in CSR form, the substrate for the bfs and
// sssp workloads. Targets within each adjacency list are sorted, giving
// the intra-node locality real CSR graphs have.
type Graph struct {
	N       int
	RowPtr  []int32 // length N+1
	Edges   []int32 // length E: target node ids
	Weights []int32 // length E: positive edge weights (sssp)
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree returns node v's out-degree.
func (g *Graph) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Adj returns node v's adjacency slice.
func (g *Graph) Adj(v int) []int32 { return g.Edges[g.RowPtr[v]:g.RowPtr[v+1]] }

// AdjWeights returns node v's weight slice.
func (g *Graph) AdjWeights(v int) []int32 { return g.Weights[g.RowPtr[v]:g.RowPtr[v+1]] }

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.RowPtr) != g.N+1 {
		return fmt.Errorf("graph: rowptr length %d, want %d", len(g.RowPtr), g.N+1)
	}
	if g.RowPtr[0] != 0 || int(g.RowPtr[g.N]) != len(g.Edges) {
		return fmt.Errorf("graph: rowptr endpoints %d..%d, want 0..%d", g.RowPtr[0], g.RowPtr[g.N], len(g.Edges))
	}
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v] > g.RowPtr[v+1] {
			return fmt.Errorf("graph: rowptr not monotone at %d", v)
		}
	}
	for _, t := range g.Edges {
		if t < 0 || int(t) >= g.N {
			return fmt.Errorf("graph: edge target %d out of range", t)
		}
	}
	if g.Weights != nil {
		if len(g.Weights) != len(g.Edges) {
			return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Edges))
		}
		for _, w := range g.Weights {
			if w <= 0 {
				return fmt.Errorf("graph: non-positive weight %d", w)
			}
		}
	}
	return nil
}

// GenGraph builds a deterministic skewed random graph with n nodes and
// about avgDeg*n edges. Every node i > 0 receives one backbone edge from
// an earlier node, guaranteeing reachability from node 0; the remaining
// edges use a cubic-skew source distribution so a minority of nodes own
// the majority of edges — the input dependence that makes bfs and sssp
// irregular.
func GenGraph(n, avgDeg int, seed uint64) *Graph {
	if n < 2 || avgDeg < 1 {
		panic(fmt.Sprintf("workloads: GenGraph(n=%d, avgDeg=%d)", n, avgDeg))
	}
	rng := newRNG(seed)
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		src := rng.intn(i)
		adj[src] = append(adj[src], int32(i))
	}
	extra := n*avgDeg - (n - 1)
	for e := 0; e < extra; e++ {
		// Heavy skew: u^6 concentrates sources on low node ids, giving
		// the minority-hot/majority-cold degree split of real scale-free
		// inputs.
		u := float64(rng.next()%(1<<24)) / float64(1<<24)
		src := int(math.Pow(u, 6) * float64(n))
		if src >= n {
			src = n - 1
		}
		adj[src] = append(adj[src], int32(rng.intn(n)))
	}
	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	var total int
	for _, a := range adj {
		total += len(a)
	}
	g.Edges = make([]int32, 0, total)
	g.Weights = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		sort.Slice(adj[v], func(a, b int) bool { return adj[v][a] < adj[v][b] })
		g.RowPtr[v+1] = g.RowPtr[v] + int32(len(adj[v]))
		g.Edges = append(g.Edges, adj[v]...)
		for range adj[v] {
			g.Weights = append(g.Weights, int32(rng.intn(15)+1))
		}
	}
	return g
}

// BFSLevels runs host-side breadth-first search from node 0 and returns
// the frontier node list of every level. The device kernels replay
// these frontiers.
func BFSLevels(g *Graph) [][]int32 {
	visited := make([]bool, g.N)
	visited[0] = true
	frontier := []int32{0}
	var levels [][]int32
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int32
		for _, v := range frontier {
			for _, t := range g.Adj(int(v)) {
				if !visited[t] {
					visited[t] = true
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return levels
}

// SSSPRounds runs host-side Bellman-Ford from node 0 with a worklist and
// returns each round's active node list (capped at maxRounds) plus the
// final distances. Device kernel1 of round r relaxes exactly the edges
// of round r's worklist.
func SSSPRounds(g *Graph, maxRounds int) (rounds [][]int32, dist []int32) {
	const inf = math.MaxInt32
	dist = make([]int32, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	work := []int32{0}
	inNext := make([]bool, g.N)
	for r := 0; r < maxRounds && len(work) > 0; r++ {
		rounds = append(rounds, work)
		var next []int32
		for i := range inNext {
			inNext[i] = false
		}
		for _, v := range work {
			adj := g.Adj(int(v))
			ws := g.AdjWeights(int(v))
			for k, t := range adj {
				if nd := dist[v] + ws[k]; nd < dist[t] {
					dist[t] = nd
					if !inNext[t] {
						inNext[t] = true
						next = append(next, t)
					}
				}
			}
		}
		work = next
	}
	return rounds, dist
}
