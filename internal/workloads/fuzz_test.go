package workloads

import (
	"strings"
	"testing"
)

// FuzzParseEdgeList hardens the graph loader against arbitrary input:
// it must either reject the input or return a structurally valid graph.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("0 1\n1 0\n")
	f.Add("0 1 5\n# comment\n2 3\n")
	f.Add("")
	f.Add("0 0 0")
	f.Add("999999 1\n")
	f.Add("0 1\n\n\n1 2 3\n% x\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		g, err := ParseEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", verr, input)
		}
		if g.N > 1<<22 {
			return // avoid pathological BFS below
		}
		// A valid graph must survive the host algorithms.
		BFSLevels(g)
		SSSPRounds(g, 4)
	})
}
