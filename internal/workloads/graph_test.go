package workloads

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenGraphValid(t *testing.T) {
	g := GenGraph(2000, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if g.N != 2000 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != 2000*8 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 2000*8)
	}
}

func TestGenGraphDeterministic(t *testing.T) {
	a := GenGraph(500, 6, 42)
	b := GenGraph(500, 6, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Weights[i] != b.Weights[i] {
			t.Fatalf("graphs differ at edge %d", i)
		}
	}
	c := GenGraph(500, 6, 43)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenGraphAdjacencySorted(t *testing.T) {
	g := GenGraph(300, 10, 7)
	for v := 0; v < g.N; v++ {
		adj := g.Adj(v)
		sorted := sortedCopy(adj)
		for i := range adj {
			if adj[i] != sorted[i] {
				t.Fatalf("adjacency of %d not sorted", v)
			}
		}
	}
}

func TestGenGraphSkew(t *testing.T) {
	g := GenGraph(10000, 12, 3)
	// The top 10% of nodes by id-order skew must own well over half the
	// edges (cubic source skew).
	var topEdges int
	cut := g.N / 10
	for v := 0; v < cut; v++ {
		topEdges += g.Degree(v)
	}
	if float64(topEdges) < 0.5*float64(g.NumEdges()) {
		t.Fatalf("low-id 10%% owns only %d/%d edges; skew missing", topEdges, g.NumEdges())
	}
}

func TestGenGraphBadArgsPanic(t *testing.T) {
	for _, args := range [][2]int{{1, 4}, {100, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GenGraph(%d,%d) did not panic", args[0], args[1])
				}
			}()
			GenGraph(args[0], args[1], 1)
		}()
	}
}

func TestBFSLevelsReachEverything(t *testing.T) {
	g := GenGraph(3000, 8, 11)
	levels := BFSLevels(g)
	if len(levels) == 0 || len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Fatal("BFS does not start at node 0")
	}
	seen := map[int32]bool{}
	var total int
	for _, l := range levels {
		for _, v := range l {
			if seen[v] {
				t.Fatalf("node %d appears in two levels", v)
			}
			seen[v] = true
		}
		total += len(l)
	}
	// The backbone guarantees full reachability from node 0.
	if total != g.N {
		t.Fatalf("BFS reached %d of %d nodes", total, g.N)
	}
}

// Property: every node in level k>0 is adjacent to some node in level
// k-1 (valid level-synchronous BFS).
func TestBFSLevelsValidityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%500 + 10
		g := GenGraph(n, 6, seed)
		levels := BFSLevels(g)
		prev := map[int32]bool{}
		for li, level := range levels {
			if li == 0 {
				prev[level[0]] = true
				continue
			}
			cur := map[int32]bool{}
			for _, v := range level {
				cur[v] = true
			}
			// Every v in this level must have an in-edge from prev.
			for _, v := range level {
				found := false
				for u := range prev {
					for _, t := range g.Adj(int(u)) {
						if t == v {
							found = true
							break
						}
					}
					if found {
						break
					}
				}
				if !found {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSSSPRoundsDistances(t *testing.T) {
	g := GenGraph(2000, 8, 5)
	rounds, dist := SSSPRounds(g, 50)
	if len(rounds) == 0 || rounds[0][0] != 0 {
		t.Fatal("SSSP does not start at node 0")
	}
	if dist[0] != 0 {
		t.Fatalf("dist[0] = %d", dist[0])
	}
	// Triangle inequality on every edge (converged run).
	for v := 0; v < g.N; v++ {
		if dist[v] == math.MaxInt32 {
			continue
		}
		adj, ws := g.Adj(v), g.AdjWeights(v)
		for k, t2 := range adj {
			if dist[t2] > dist[v]+ws[k] {
				t.Fatalf("edge %d->%d violates relaxation: %d > %d+%d", v, t2, dist[t2], dist[v], ws[k])
			}
		}
	}
}

func TestSSSPRoundsCapped(t *testing.T) {
	g := GenGraph(5000, 6, 9)
	rounds, _ := SSSPRounds(g, 3)
	if len(rounds) > 3 {
		t.Fatalf("rounds = %d, want <= 3", len(rounds))
	}
}
