package counters

import (
	"fmt"

	"uvmsim/internal/satmath"
)

// PerGPU is the CXL page controller's counter file: for every pooled
// block it keeps one read and one write counter per GPU, the state the
// controller arbitrates with — who gets a read-only replica, who (if
// anyone) wins a writable migration. It mirrors the controller sketch
// in SNIPPETS.md's cxl_page_controller: counts are bumped on every pool
// access, halved together on saturation (same relative-hotness
// preservation as File), and cleared when the block leaves the pool.
//
// GPU ids are dense [0, gpus). Blocks are keyed by pool block number
// and stored flat — blocks*gpus counters in one slice — so the bump on
// every access is one multiply away and halving sweeps are linear.
type PerGPU struct {
	gpus   int
	reads  []uint32 // block*gpus + gpu
	writes []uint32
	blocks int

	halvings uint64
	total    uint64 // monotonic accesses, never halved
}

// PerGPUMax saturates the per-GPU counters at the same width as the
// access field of File; a saturating bump halves every counter.
const PerGPUMax = MaxAccess

// NewPerGPU returns an empty counter file for the given GPU count.
func NewPerGPU(gpus int) *PerGPU {
	if gpus <= 0 {
		panic(fmt.Sprintf("counters: %d GPUs", gpus))
	}
	return &PerGPU{gpus: gpus}
}

// GPUs returns the number of GPUs the file arbitrates between.
func (p *PerGPU) GPUs() int { return p.gpus }

// grow extends the flat arrays to cover the block.
//
//sim:hotpath
func (p *PerGPU) grow(block uint64) {
	if block < uint64(p.blocks) {
		return
	}
	n := int(block) + 1
	if m := 2 * p.blocks; m > n {
		n = m
	}
	//simlint:allow hotalloc -- doubling grow path runs O(log n) times, amortized free
	reads := make([]uint32, n*p.gpus)
	copy(reads, p.reads)
	//simlint:allow hotalloc -- doubling grow path runs O(log n) times, amortized free
	writes := make([]uint32, n*p.gpus)
	copy(writes, p.writes)
	p.reads, p.writes, p.blocks = reads, writes, n
}

//sim:hotpath
func (p *PerGPU) idx(block uint64, gpu int) int {
	return int(block)*p.gpus + gpu
}

// NoteRead records one read of the block by the GPU.
//
//sim:hotpath
func (p *PerGPU) NoteRead(block uint64, gpu int) {
	p.total++
	p.grow(block)
	i := p.idx(block, gpu)
	if p.reads[i] == PerGPUMax {
		p.halve()
	}
	p.reads[i]++
}

// NoteWrite records one write of the block by the GPU.
//
//sim:hotpath
func (p *PerGPU) NoteWrite(block uint64, gpu int) {
	p.total++
	p.grow(block)
	i := p.idx(block, gpu)
	if p.writes[i] == PerGPUMax {
		p.halve()
	}
	p.writes[i]++
}

// Reads returns the GPU's read count for the block.
func (p *PerGPU) Reads(block uint64, gpu int) uint64 {
	if block >= uint64(p.blocks) {
		return 0
	}
	return uint64(p.reads[p.idx(block, gpu)])
}

// Writes returns the GPU's write count for the block.
func (p *PerGPU) Writes(block uint64, gpu int) uint64 {
	if block >= uint64(p.blocks) {
		return 0
	}
	return uint64(p.writes[p.idx(block, gpu)])
}

// ReadOnly reports whether the block qualifies for a read-only replica
// on the GPU: its read count exceeds the threshold and no GPU has
// written the block (the controller's read-only migration agreement —
// a replica handed out while writers exist would need immediate
// invalidation).
func (p *PerGPU) ReadOnly(block uint64, gpu int, threshold uint64) bool {
	if block >= uint64(p.blocks) {
		return false
	}
	if p.Reads(block, gpu) <= threshold {
		return false
	}
	base := int(block) * p.gpus
	for g := 0; g < p.gpus; g++ {
		if p.writes[base+g] != 0 {
			return false
		}
	}
	return true
}

// WriteWinner reports whether the GPU has won a writable migration of
// the block: it is the block's sole writer, and its write count exceeds
// every other GPU's read count by more than the threshold — moving the
// page to it costs the other GPUs less than the writer's round trips
// cost it.
func (p *PerGPU) WriteWinner(block uint64, gpu int, threshold uint64) bool {
	if block >= uint64(p.blocks) {
		return false
	}
	base := int(block) * p.gpus
	w := uint64(p.writes[base+gpu])
	if w == 0 {
		return false
	}
	for g := 0; g < p.gpus; g++ {
		if g == gpu {
			continue
		}
		if p.writes[base+g] != 0 {
			return false // not the sole writer
		}
		if w <= satmath.Add(uint64(p.reads[base+g]), threshold) {
			return false
		}
	}
	return true
}

// Hottest returns the GPU with the largest read+write count for the
// block and that count (ties break toward the lower GPU id, keeping
// arbitration deterministic). ok is false when the block is untracked
// or wholly cold.
func (p *PerGPU) Hottest(block uint64) (gpu int, count uint64, ok bool) {
	if block >= uint64(p.blocks) {
		return 0, 0, false
	}
	base := int(block) * p.gpus
	for g := 0; g < p.gpus; g++ {
		c := satmath.Add(uint64(p.reads[base+g]), uint64(p.writes[base+g]))
		if c > count {
			gpu, count, ok = g, c, true
		}
	}
	return gpu, count, ok
}

// Reset clears every counter of the block (the block left the pool).
func (p *PerGPU) Reset(block uint64) {
	if block >= uint64(p.blocks) {
		return
	}
	base := int(block) * p.gpus
	for g := 0; g < p.gpus; g++ {
		p.reads[base+g] = 0
		p.writes[base+g] = 0
	}
}

// halve halves every counter (saturation policy, as in File).
func (p *PerGPU) halve() {
	p.halvings++
	for i := range p.reads {
		p.reads[i] >>= 1
	}
	for i := range p.writes {
		p.writes[i] >>= 1
	}
}

// Halvings reports how many halving sweeps have occurred.
func (p *PerGPU) Halvings() uint64 { return p.halvings }

// TotalAccesses returns the monotonic number of recorded accesses.
func (p *PerGPU) TotalAccesses() uint64 { return p.total }
