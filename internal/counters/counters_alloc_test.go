package counters

import "testing"

// TestCounterUpdateZeroAllocs asserts the hot-path contract of the
// counter file: once the flat register slice has grown to cover the
// touched block range, Access and the batched AccessRun perform zero
// heap allocations — the only allocation in the package is the O(log n)
// doubling grow inside get, which warming removes.
func TestCounterUpdateZeroAllocs(t *testing.T) {
	f := New()
	const blocks = 512
	// Warm: touch the full range so get never grows again.
	for b := uint64(0); b < blocks; b++ {
		f.Access(b)
	}

	allocs := testing.AllocsPerRun(100, func() {
		for b := uint64(0); b < blocks; b++ {
			f.Access(b)
			f.AccessRun(b, 37)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Access/AccessRun allocated %.1f times per run, want 0", allocs)
	}
	if f.TotalAccesses() == 0 {
		t.Fatal("no accesses recorded")
	}
}

// TestAccessRunSaturationZeroAllocs drives the batched path through its
// per-increment saturation fallback (halving sweeps included): the slow
// path must stay allocation-free too, since it runs inside the same
// //sim:hotpath loop.
func TestAccessRunSaturationZeroAllocs(t *testing.T) {
	f := New()
	f.Access(0) // warm the slice
	allocs := testing.AllocsPerRun(100, func() {
		f.get(0).access = MaxAccess - 4
		f.AccessRun(0, 16) // crosses saturation, forces a halving sweep
	})
	if allocs != 0 {
		t.Fatalf("saturating AccessRun allocated %.1f times per run, want 0", allocs)
	}
	if access, _ := f.Halvings(); access == 0 {
		t.Fatal("saturation fallback never fired")
	}
}
