package counters

import "testing"

func TestPerGPUReadOnlyAgreement(t *testing.T) {
	p := NewPerGPU(2)
	for i := 0; i < 5; i++ {
		p.NoteRead(3, 0)
	}
	if !p.ReadOnly(3, 0, 4) {
		t.Fatal("5 reads, threshold 4: replica should be granted")
	}
	if p.ReadOnly(3, 0, 5) {
		t.Fatal("5 reads, threshold 5: replica granted too eagerly")
	}
	if p.ReadOnly(3, 1, 0) {
		t.Fatal("GPU with no reads got a replica")
	}
	// Any writer anywhere vetoes read-only replication.
	p.NoteWrite(3, 1)
	if p.ReadOnly(3, 0, 0) {
		t.Fatal("replica granted with a live writer")
	}
}

func TestPerGPUWriteWinner(t *testing.T) {
	p := NewPerGPU(3)
	for i := 0; i < 10; i++ {
		p.NoteWrite(7, 1)
	}
	for i := 0; i < 4; i++ {
		p.NoteRead(7, 0)
	}
	// writes(1)=10 > reads(0)=4 + threshold 5 → winner.
	if !p.WriteWinner(7, 1, 5) {
		t.Fatal("sole writer with margin lost the arbitration")
	}
	if p.WriteWinner(7, 1, 6) {
		t.Fatal("threshold 6: 10 <= 4+6 must not win")
	}
	if p.WriteWinner(7, 0, 0) {
		t.Fatal("non-writer won a writable migration")
	}
	// A second writer anywhere breaks sole-writer.
	p.NoteWrite(7, 2)
	if p.WriteWinner(7, 1, 0) {
		t.Fatal("winner with a competing writer")
	}
}

func TestPerGPUHottestAndReset(t *testing.T) {
	p := NewPerGPU(2)
	if _, _, ok := p.Hottest(0); ok {
		t.Fatal("untracked block reported a hottest GPU")
	}
	p.NoteRead(0, 1)
	p.NoteRead(0, 1)
	p.NoteWrite(0, 0)
	gpu, count, ok := p.Hottest(0)
	if !ok || gpu != 1 || count != 2 {
		t.Fatalf("hottest = %d,%d,%v want 1,2,true", gpu, count, ok)
	}
	// Ties break toward the lower GPU id.
	p.NoteWrite(0, 0)
	if gpu, _, _ := p.Hottest(0); gpu != 0 {
		t.Fatalf("tie broke to GPU %d, want 0", gpu)
	}
	p.Reset(0)
	if _, _, ok := p.Hottest(0); ok {
		t.Fatal("reset block still hot")
	}
	if p.Reads(0, 1) != 0 || p.Writes(0, 0) != 0 {
		t.Fatal("reset left counts behind")
	}
	p.Reset(99) // out of range: no-op, no panic
}

func TestPerGPUHalvingOnSaturation(t *testing.T) {
	p := NewPerGPU(2)
	p.NoteRead(1, 0)
	i := p.idx(1, 0)
	p.reads[i] = PerGPUMax
	p.NoteWrite(1, 1)
	p.writes[p.idx(1, 1)] = 8
	p.NoteRead(1, 0) // saturates → halve sweep, then bump
	if got := p.Reads(1, 0); got != PerGPUMax/2+1 {
		t.Fatalf("reads after halving = %d, want %d", got, PerGPUMax/2+1)
	}
	if got := p.Writes(1, 1); got != 4 {
		t.Fatalf("writes after halving = %d, want 4", got)
	}
	if p.Halvings() != 1 {
		t.Fatalf("halvings = %d", p.Halvings())
	}
	if p.TotalAccesses() != 3 {
		t.Fatalf("total accesses = %d", p.TotalAccesses())
	}
}

func TestPerGPUGrowthPreservesCounts(t *testing.T) {
	p := NewPerGPU(2)
	p.NoteRead(0, 0)
	p.NoteWrite(1000, 1) // forces growth
	if p.Reads(0, 0) != 1 || p.Writes(1000, 1) != 1 {
		t.Fatal("growth lost counts")
	}
	if p.Reads(500, 0) != 0 || p.ReadOnly(2000, 0, 0) {
		t.Fatal("untracked blocks not zero")
	}
	if p.GPUs() != 2 {
		t.Fatalf("gpus = %d", p.GPUs())
	}
}
