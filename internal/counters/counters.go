// Package counters implements the paper's access-counter file (§IV,
// "Access Counter Maintenance"): one 32-bit register per 64KB basic
// block, with the low 27 bits counting accesses (both device-local and
// remote, unlike Volta's remote-only hardware counters) and the top 5
// bits counting round trips — the number of times the block has been
// evicted from device memory.
//
// When either field of any block saturates, the corresponding field of
// every block is halved rather than reset, preserving the relative view
// of hotness across allocations.
package counters

import "uvmsim/internal/satmath"

// Bit widths of the two fields packed into the 32-bit register.
const (
	AccessBits    = 27
	RoundTripBits = 5

	MaxAccess    = 1<<AccessBits - 1    // 134217727
	MaxRoundTrip = 1<<RoundTripBits - 1 // 31
)

// entry holds one block's unpacked register. present marks blocks that
// have a register at all (Tracked), which a zero count cannot convey.
type entry struct {
	access  uint32
	trips   uint8
	present bool
}

// File is the per-64KB-block counter store maintained by the driver.
// Blocks are keyed by global basic-block number (virtual address / 64KB);
// those numbers are small and dense, so the registers live in a flat
// slice indexed by block number — the counter bump on every near access
// is a single array load away, and the halving sweeps are linear scans.
// The zero value is not usable; call New.
type File struct {
	blocks  []entry
	tracked int

	// Saturation statistics, exposed for tests and reports.
	accessHalvings uint64
	tripHalvings   uint64
	totalAccesses  uint64 // monotonic, never halved
}

// New returns an empty counter file.
func New() *File {
	return &File{}
}

//sim:hotpath
func (f *File) get(block uint64) *entry {
	if block >= uint64(len(f.blocks)) {
		n := satmath.Add(block, 1)
		if m := uint64(2 * len(f.blocks)); m > n {
			n = m
		}
		//simlint:allow hotalloc -- doubling grow path runs O(log n) times, amortized free
		grown := make([]entry, n)
		copy(grown, f.blocks)
		f.blocks = grown
	}
	e := &f.blocks[block]
	if !e.present {
		e.present = true
		f.tracked++
	}
	return e
}

// at returns the block's register or nil when it has none.
func (f *File) at(block uint64) *entry {
	if block < uint64(len(f.blocks)) && f.blocks[block].present {
		return &f.blocks[block]
	}
	return nil
}

// Access records one access to the block and returns the updated count.
// On saturation every block's access count is halved first.
//
//sim:hotpath
func (f *File) Access(block uint64) uint64 {
	f.totalAccesses++
	e := f.get(block)
	if e.access == MaxAccess {
		f.halveAccess()
	}
	e.access++
	return uint64(e.access)
}

// AccessRun records k accesses to the same block and returns the
// updated count, exactly equivalent to k sequential Access calls: when
// the whole run fits below saturation it is a single add, otherwise it
// falls back to per-increment stepping so every halving sweep fires at
// the same access it would have under the unbatched path.
//
//sim:hotpath
func (f *File) AccessRun(block uint64, k uint64) uint64 {
	f.totalAccesses = satmath.Add(f.totalAccesses, k)
	e := f.get(block)
	if satmath.Add(uint64(e.access), k) <= MaxAccess {
		e.access += uint32(k)
		return uint64(e.access)
	}
	for ; k > 0; k-- {
		if e.access == MaxAccess {
			f.halveAccess()
		}
		e.access++
	}
	return uint64(e.access)
}

// Count returns the block's current access count.
func (f *File) Count(block uint64) uint64 {
	if e := f.at(block); e != nil {
		return uint64(e.access)
	}
	return 0
}

// RoundTrips returns the block's eviction count r.
func (f *File) RoundTrips(block uint64) uint64 {
	if e := f.at(block); e != nil {
		return uint64(e.trips)
	}
	return 0
}

// NoteEviction records one round trip for the block. On saturation every
// block's round-trip count is halved first.
func (f *File) NoteEviction(block uint64) {
	e := f.get(block)
	if e.trips == MaxRoundTrip {
		f.halveTrips()
	}
	e.trips++
}

// ResetAccess clears the access count of one block. The driver uses this
// when an allocation is freed.
func (f *File) ResetAccess(block uint64) {
	if e := f.at(block); e != nil {
		e.access = 0
	}
}

// halveAccess halves every block's access count (saturation policy).
func (f *File) halveAccess() {
	f.accessHalvings++
	for i := range f.blocks {
		f.blocks[i].access >>= 1
	}
}

// halveTrips halves every block's round-trip count.
func (f *File) halveTrips() {
	f.tripHalvings++
	for i := range f.blocks {
		f.blocks[i].trips >>= 1
	}
}

// Clone returns an independent deep copy of the counter file, used when
// forking a simulator at a kernel barrier.
func (f *File) Clone() *File {
	c := *f
	c.blocks = make([]entry, len(f.blocks))
	copy(c.blocks, f.blocks)
	return &c
}

// TotalAccesses returns the monotonic number of recorded accesses
// (unaffected by halving).
func (f *File) TotalAccesses() uint64 { return f.totalAccesses }

// Halvings reports how many access-field and trip-field halving sweeps
// have occurred.
func (f *File) Halvings() (access, trips uint64) {
	return f.accessHalvings, f.tripHalvings
}

// Tracked returns the number of blocks with a register.
func (f *File) Tracked() int { return f.tracked }

// SumCounts returns the total access count over a block range
// [first, first+n). The LFU eviction policy uses this to score 2MB
// chunks.
func (f *File) SumCounts(first uint64, n uint64) uint64 {
	var sum uint64
	end := satmath.Add(first, n)
	if lim := uint64(len(f.blocks)); end > lim {
		end = lim
	}
	for b := first; b < end; b++ {
		sum = satmath.Add(sum, uint64(f.blocks[b].access))
	}
	return sum
}

// MaxRoundTrips returns the largest round-trip count over a block range.
// The Adaptive policy pins a whole migration unit as hard as its most
// thrashed block.
func (f *File) MaxRoundTrips(first uint64, n uint64) uint64 {
	var max uint64
	end := satmath.Add(first, n)
	if lim := uint64(len(f.blocks)); end > lim {
		end = lim
	}
	for b := first; b < end; b++ {
		if r := uint64(f.blocks[b].trips); r > max {
			max = r
		}
	}
	return max
}
