package counters

import (
	"testing"
	"testing/quick"
)

func TestFieldWidths(t *testing.T) {
	if AccessBits+RoundTripBits != 32 {
		t.Fatalf("register is %d bits, want 32", AccessBits+RoundTripBits)
	}
	if MaxAccess != 1<<27-1 {
		t.Fatalf("MaxAccess = %d", MaxAccess)
	}
	if MaxRoundTrip != 31 {
		t.Fatalf("MaxRoundTrip = %d", MaxRoundTrip)
	}
}

func TestAccessCounting(t *testing.T) {
	f := New()
	for i := 1; i <= 5; i++ {
		if got := f.Access(7); got != uint64(i) {
			t.Fatalf("Access #%d returned %d", i, got)
		}
	}
	if f.Count(7) != 5 {
		t.Fatalf("Count = %d, want 5", f.Count(7))
	}
	if f.Count(8) != 0 {
		t.Fatal("untouched block has nonzero count")
	}
	if f.TotalAccesses() != 5 {
		t.Fatalf("TotalAccesses = %d, want 5", f.TotalAccesses())
	}
}

func TestRoundTrips(t *testing.T) {
	f := New()
	f.NoteEviction(3)
	f.NoteEviction(3)
	if f.RoundTrips(3) != 2 {
		t.Fatalf("RoundTrips = %d, want 2", f.RoundTrips(3))
	}
	if f.RoundTrips(4) != 0 {
		t.Fatal("untouched block has round trips")
	}
}

func TestAccessSaturationHalvesAll(t *testing.T) {
	f := New()
	// Force block 1 to the cap, give block 2 a known count.
	f.get(1).access = MaxAccess
	f.get(2).access = 100
	f.Access(1) // triggers halving, then increments
	if got := f.Count(1); got != MaxAccess/2+1 {
		t.Fatalf("saturated block count = %d, want %d", got, MaxAccess/2+1)
	}
	if got := f.Count(2); got != 50 {
		t.Fatalf("bystander block count = %d, want 50 (halved)", got)
	}
	a, tr := f.Halvings()
	if a != 1 || tr != 0 {
		t.Fatalf("halvings = %d,%d want 1,0", a, tr)
	}
}

func TestTripSaturationHalvesAll(t *testing.T) {
	f := New()
	f.get(1).trips = MaxRoundTrip
	f.get(2).trips = 10
	f.NoteEviction(1)
	if got := f.RoundTrips(1); got != MaxRoundTrip/2+1 {
		t.Fatalf("saturated trips = %d, want %d", got, MaxRoundTrip/2+1)
	}
	if got := f.RoundTrips(2); got != 5 {
		t.Fatalf("bystander trips = %d, want 5", got)
	}
}

// Property: halving preserves the relative order of access counts.
func TestHalvingPreservesOrderProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		a %= MaxAccess
		b %= MaxAccess
		cf := New()
		cf.get(1).access = a
		cf.get(2).access = b
		cf.get(3).access = MaxAccess
		cf.Access(3) // halve sweep
		x, y := cf.Count(1), cf.Count(2)
		switch {
		case a > b:
			return x >= y
		case a < b:
			return x <= y
		default:
			return x == y
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: access counts never exceed the 27-bit field and trips never
// exceed 5 bits, no matter the access sequence.
func TestFieldBoundsProperty(t *testing.T) {
	f := func(nAccess uint16, nEvict uint8) bool {
		cf := New()
		cf.get(0).access = MaxAccess - 3 // start near the cliff
		cf.get(0).trips = MaxRoundTrip - 1
		for i := 0; i < int(nAccess); i++ {
			cf.Access(0)
		}
		for i := 0; i < int(nEvict); i++ {
			cf.NoteEviction(0)
		}
		return cf.Count(0) <= MaxAccess && cf.RoundTrips(0) <= MaxRoundTrip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumCounts(t *testing.T) {
	f := New()
	f.get(10).access = 3
	f.get(11).access = 4
	f.get(13).access = 100 // outside range
	if got := f.SumCounts(10, 3); got != 7 {
		t.Fatalf("SumCounts = %d, want 7", got)
	}
}

func TestMaxRoundTrips(t *testing.T) {
	f := New()
	f.get(20).trips = 2
	f.get(22).trips = 7
	if got := f.MaxRoundTrips(20, 4); got != 7 {
		t.Fatalf("MaxRoundTrips = %d, want 7", got)
	}
	if got := f.MaxRoundTrips(30, 4); got != 0 {
		t.Fatalf("MaxRoundTrips over empty range = %d, want 0", got)
	}
}

func TestResetAccess(t *testing.T) {
	f := New()
	f.Access(5)
	f.NoteEviction(5)
	f.ResetAccess(5)
	if f.Count(5) != 0 {
		t.Fatal("ResetAccess did not clear count")
	}
	if f.RoundTrips(5) != 1 {
		t.Fatal("ResetAccess clobbered round trips")
	}
	f.ResetAccess(99) // no-op on unknown block must not panic
}

func TestTracked(t *testing.T) {
	f := New()
	f.Access(1)
	f.Access(2)
	f.Access(1)
	if f.Tracked() != 2 {
		t.Fatalf("Tracked = %d, want 2", f.Tracked())
	}
}
