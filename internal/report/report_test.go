package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Figure X",
		Metric:  "Runtime normalized",
		Columns: []string{"A", "B"},
	}
	t.Add("fdtd", 1.0, 0.5)
	t.Add("ra", 1.0, 0.2177)
	return t
}

func TestAddArityPanics(t *testing.T) {
	tab := sample()
	defer func() {
		if recover() == nil {
			t.Error("wrong arity did not panic")
		}
	}()
	tab.Add("bad", 1.0)
}

func TestGet(t *testing.T) {
	tab := sample()
	v, ok := tab.Get("ra", 1)
	if !ok || v != 0.2177 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := tab.Get("none", 0); ok {
		t.Fatal("Get found missing row")
	}
}

func TestFormat(t *testing.T) {
	out := sample().Format()
	for _, frag := range []string{"Figure X", "Runtime normalized", "workload", "A", "B", "fdtd", "50.00%", "21.77%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Format missing %q:\n%s", frag, out)
		}
	}
	// All rows same column count: lines align.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	if !strings.HasPrefix(out, "workload,A,B\n") {
		t.Fatalf("bad header:\n%s", out)
	}
	if !strings.Contains(out, "ra,1.000000,0.217700") {
		t.Fatalf("missing row:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(5, 10) != 0.5 {
		t.Fatal("Ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Fatal("Ratio div-by-zero not 0")
	}
	if Ratio(0, 0) != 0 {
		t.Fatal("Ratio 0/0 not 0")
	}
}
