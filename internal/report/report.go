// Package report renders experiment results as aligned text tables and
// CSV, matching the rows and series of the paper's figures.
package report

import (
	"fmt"
	"strings"
)

// Row is one workload's series in a table.
type Row struct {
	Label  string
	Values []float64
}

// Table is one figure's data: workloads down the rows, schemes or
// parameters across the columns.
type Table struct {
	Title   string
	Metric  string // e.g. "Runtime (normalized to baseline)"
	Columns []string
	Rows    []Row
}

// Add appends a row, enforcing column arity.
func (t *Table) Add(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("report: row %q has %d values for %d columns", label, len(values), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Get returns the value at (rowLabel, column index), with ok=false for a
// missing row.
func (t *Table) Get(rowLabel string, col int) (float64, bool) {
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			return r.Values[col], true
		}
	}
	return 0, false
}

// Format renders the table as aligned text with percentages.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", t.Title, t.Metric)
	width := 10
	for _, c := range t.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*s", width, fmt.Sprintf("%.2f%%", v*100))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (raw ratios).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("workload")
	for _, c := range t.Columns {
		b.WriteString(",")
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%.6f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Ratio safely divides, mapping x/0 to 0 (used for thrash counts where
// the baseline itself can be zero, e.g. backprop in Fig. 7).
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
