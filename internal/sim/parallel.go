// Horizon-bounded stepping primitives for conservative parallel
// discrete-event simulation (PDES).
//
// A PDES coordinator (internal/multigpu) runs one Engine per model
// partition and advances them concurrently up to a safe horizon derived
// from the model's lookahead. The primitives here differ from RunUntil
// in one crucial way: they never pad the clock. RunUntil advances Now to
// the deadline even when no event fires there, which is what a
// standalone simulation wants, but a coordinator must observe each
// partition's *last event time* to reproduce the sequential barrier
// (the max over partitions) exactly. DrainUntil leaves Now at the last
// fired event; AdvanceTo then aligns all partitions on the agreed
// barrier before the next launch.
package sim

// NextEventAt returns the timestamp of the earliest pending event, with
// ok=false when the engine is drained. Canceled entries at the head of
// the queue are discarded without advancing the clock, so the returned
// time is always the timestamp the next Step would fire at. PDES
// coordinators use the minimum across engines to compute the safe
// horizon (min next event + lookahead).
//
//sim:hotpath
func (e *Engine) NextEventAt() (Cycle, bool) { return e.headAt() }

// DrainUntil fires every event with timestamp <= deadline and reports
// whether events remain pending beyond it. Unlike RunUntil it does NOT
// pad the clock to the deadline: Now is left at the last fired event
// (or untouched when nothing fired), preserving the engine's "time of
// last activity" for barrier computation. The deadline may lie in the
// past; nothing fires and nothing changes.
//
//sim:hotpath
func (e *Engine) DrainUntil(deadline Cycle) bool {
	for {
		at, ok := e.headAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	return e.live > 0
}

// AdvanceTo moves the clock forward to at without firing anything; it is
// a no-op when at <= Now. PDES coordinators use it to align every
// partition on the kernel barrier (the max last-event time across
// partitions) before the next bulk-synchronous launch, mirroring how a
// single shared engine's clock already sits at the barrier when the
// launches are scheduled. Scheduling semantics are unaffected: events
// scheduled after AdvanceTo(b) simply may not precede cycle b, exactly
// as on the shared engine.
//
//sim:hotpath
func (e *Engine) AdvanceTo(at Cycle) {
	if at > e.now {
		e.now = at
	}
}
