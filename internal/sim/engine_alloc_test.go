package sim

import "testing"

// TestEngineSteadyStateZeroAllocs asserts the hot-path contract of the
// queue overhaul: once the heap slice, ring and slot arena have reached
// their high-water capacity, Schedule and dispatch perform zero heap
// allocations. (The event closures themselves are allocated by the
// caller; here a single prebound closure is reused.)
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	var fired int
	fn := func() { fired++ }

	// Warm the arena and heap capacity.
	for i := 0; i < 4096; i++ {
		e.After(Cycle(i%97), fn)
	}
	e.Run()

	const batch = 1024
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < batch; i++ {
			e.After(Cycle(i%97), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+dispatch allocated %.1f times per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
}

// TestEngineSameCycleZeroAllocs exercises the same-cycle ring path under
// AllocsPerRun: events rescheduling at the current cycle must not
// allocate either.
func TestEngineSameCycleZeroAllocs(t *testing.T) {
	e := NewEngine()
	var depth int
	var chain func()
	chain = func() {
		if depth > 0 {
			depth--
			e.After(0, chain)
		}
	}
	// Warm.
	depth = 256
	e.After(1, chain)
	e.Run()

	allocs := testing.AllocsPerRun(100, func() {
		depth = 128
		e.After(1, chain)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("same-cycle ring path allocated %.1f times per run, want 0", allocs)
	}
}
