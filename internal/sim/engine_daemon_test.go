package sim

import "testing"

// The daemon must fire only at real event timestamps, at most once per
// period, and never extend the run.
func TestDaemonFiresAtEventBoundaries(t *testing.T) {
	e := NewEngine()
	var fires []Cycle
	e.SetDaemon(10, func() { fires = append(fires, e.Now()) })
	for _, at := range []Cycle{1, 5, 9, 12, 13, 30, 31, 100} {
		e.At(at, func() {})
	}
	end := e.Run()
	if end != 100 {
		t.Fatalf("daemon extended the run: end = %d", end)
	}
	// First fire at the first event with now >= 10 (the event at 12);
	// next threshold 22 -> fires at 30; then 40 -> fires at 100.
	want := []Cycle{12, 30, 100}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestDaemonUninstall(t *testing.T) {
	e := NewEngine()
	count := 0
	e.SetDaemon(1, func() { count++ })
	e.At(5, func() {})
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	e.SetDaemon(0, nil)
	e.At(10, func() {})
	e.Run()
	if count != 1 {
		t.Fatalf("daemon fired after uninstall: count = %d", count)
	}
}

func TestDaemonRejectsHalfConfiguration(t *testing.T) {
	for name, install := range map[string]func(*Engine){
		"period-no-fn": func(e *Engine) { e.SetDaemon(5, nil) },
		"fn-no-period": func(e *Engine) { e.SetDaemon(0, func() {}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			install(NewEngine())
		})
	}
}
