package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at cycle %d, want 0", got)
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported true")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-cycle events fired out of FIFO order: %v", order)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.At(100, func() {
		hits = append(hits, e.Now())
		e.After(50, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 100 || hits[1] != 150 {
		t.Fatalf("hits = %v, want [100 150]", hits)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	NewEngine().At(1, nil)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired int
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	pending := e.RunUntil(20)
	if !pending {
		t.Fatal("RunUntil(20) reported no pending events; event at 30 remains")
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
	if e.RunUntil(100) {
		t.Fatal("RunUntil(100) reported pending events")
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want clock advanced to deadline 100", e.Now())
	}
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine()
	e.SetEventBudget(3)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Error("exceeding event budget did not panic")
		}
	}()
	e.Run()
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the engine ends at the maximum timestamp.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Cycle
		ok := true
		var max Cycle
		for _, d := range delays {
			at := Cycle(d)
			if at > max {
				max = at
			}
			e.At(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		end := e.Run()
		if len(delays) == 0 {
			return end == 0
		}
		return ok && end == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Cycle(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}
