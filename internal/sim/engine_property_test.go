package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refItem / refHeap are the pre-overhaul container/heap event queue,
// kept verbatim as the executable specification of dispatch order: the
// production engine must match it event-for-event under any schedule and
// cancel sequence.
type refItem struct {
	at  Cycle
	seq uint64
	fn  Event
}

type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refEngine mirrors the Engine API over refHeap, with cancellation by
// deleting the item outright (the semantics the lazy tombstones must
// reproduce).
type refEngine struct {
	now   Cycle
	seq   uint64
	queue refHeap
}

func (e *refEngine) schedule(at Cycle, fn Event) uint64 {
	e.seq++
	heap.Push(&e.queue, refItem{at: at, seq: e.seq, fn: fn})
	return e.seq
}

func (e *refEngine) cancel(seq uint64) bool {
	for i := range e.queue {
		if e.queue[i].seq == seq {
			heap.Remove(&e.queue, i)
			return true
		}
	}
	return false
}

func (e *refEngine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(refItem)
	e.now = it.at
	it.fn()
	return true
}

// TestEngineMatchesReference drives the production engine and the
// reference queue through identical randomized schedule/cancel/step
// sequences (including same-cycle bursts that exercise the FIFO ring)
// and asserts the fired event sequences and clocks are identical.
func TestEngineMatchesReference(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		eng := NewEngine()
		ref := &refEngine{}

		var gotOrder, wantOrder []uint64
		var ids []EventID   // engine IDs of not-yet-canceled events
		var refIDs []uint64 // parallel reference seqs

		// Sequence numbers are assigned identically on both sides because
		// both engines allocate them in scheduling order.
		doSchedule := func() {
			var delay Cycle
			switch rng.Intn(4) {
			case 0:
				delay = 0 // same-cycle: must take the ring path mid-run
			case 1:
				delay = Cycle(rng.Intn(4))
			default:
				delay = Cycle(rng.Intn(1000))
			}
			at := eng.Now() + delay
			seq := ref.seq + 1 // the tag both sides will assign
			id := eng.ScheduleAfter(delay, func() { gotOrder = append(gotOrder, seq) })
			rseq := ref.schedule(at, func() { wantOrder = append(wantOrder, seq) })
			if uint64(id) != rseq {
				t.Fatalf("trial %d: sequence numbers diverged: %d vs %d", trial, id, rseq)
			}
			ids = append(ids, id)
			refIDs = append(refIDs, rseq)
		}

		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				doSchedule()
			case r < 7 && len(ids) > 0:
				// Cancel a random remembered event (it may have fired
				// already; both sides must agree it is gone).
				k := rng.Intn(len(ids))
				g := eng.Cancel(ids[k])
				w := ref.cancel(refIDs[k])
				if g != w {
					t.Fatalf("trial %d: Cancel disagreement for seq %d: engine %v ref %v", trial, refIDs[k], g, w)
				}
				ids = append(ids[:k], ids[k+1:]...)
				refIDs = append(refIDs[:k], refIDs[k+1:]...)
			default:
				g := eng.Step()
				w := ref.step()
				if g != w {
					t.Fatalf("trial %d: Step availability diverged: engine %v ref %v", trial, g, w)
				}
				if g && eng.Now() != ref.now {
					t.Fatalf("trial %d: clocks diverged after step: engine %d ref %d", trial, eng.Now(), ref.now)
				}
			}
			if eng.Pending() != len(ref.queue) {
				t.Fatalf("trial %d: pending diverged: engine %d ref %d", trial, eng.Pending(), len(ref.queue))
			}
		}
		// Drain both.
		for eng.Step() {
		}
		for ref.step() {
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: dispatch order diverged at %d: engine fired seq %d, reference seq %d\nengine: %v\nref:    %v",
					trial, i, gotOrder[i], wantOrder[i], gotOrder, wantOrder)
			}
		}
		if eng.Now() != ref.now {
			t.Fatalf("trial %d: final clocks diverged: engine %d ref %d", trial, eng.Now(), ref.now)
		}
	}
}

// TestEngineFIFOAcrossRingAndHeap pins the ordering contract the ring
// optimization must preserve: events already in the heap for cycle T
// fire before events scheduled for T while the clock is at T, in
// scheduling order throughout.
func TestEngineFIFOAcrossRingAndHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	// Two heap entries for cycle 10, scheduled at cycle 0.
	e.At(10, func() {
		order = append(order, 0)
		// Ring entries created while now == 10.
		e.After(0, func() { order = append(order, 2) })
		e.At(10, func() {
			order = append(order, 3)
			e.After(0, func() { order = append(order, 4) })
		})
	})
	e.At(10, func() { order = append(order, 1) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ring/heap interleave broke FIFO order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5: %v", len(order), order)
	}
}

// TestEngineCancel covers the cancellation surface directly.
func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	var fired []string
	a := e.Schedule(10, func() { fired = append(fired, "a") })
	b := e.Schedule(20, func() { fired = append(fired, "b") })
	c := e.Schedule(20, func() { fired = append(fired, "c") })
	if !e.Cancel(b) {
		t.Fatal("cancel of pending event reported false")
	}
	if e.Cancel(b) {
		t.Fatal("double cancel reported true")
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after cancel, want 2", e.Pending())
	}
	if e.Cancel(EventID(0)) || e.Cancel(EventID(999)) {
		t.Fatal("cancel of invalid ID reported true")
	}
	end := e.Run()
	if end != 20 {
		t.Fatalf("Run ended at %d, want 20", end)
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Fatalf("fired = %v, want [a c]", fired)
	}
	if e.Cancel(a) || e.Cancel(c) {
		t.Fatal("cancel of already-fired event reported true")
	}
}

// TestEngineCancelRingEntry cancels an event sitting in the same-cycle
// ring and asserts RunUntil does not overshoot past tombstones.
func TestEngineCancelRingEntry(t *testing.T) {
	e := NewEngine()
	var fired int
	e.At(5, func() {
		id := e.ScheduleAfter(0, func() { t.Error("canceled ring event fired") })
		if !e.Cancel(id) {
			t.Error("cancel of ring event reported false")
		}
	})
	e.At(50, func() { fired++ })
	if pending := e.RunUntil(10); !pending {
		t.Fatal("RunUntil(10) reported no pending events; event at 50 remains")
	}
	if fired != 0 {
		t.Fatalf("RunUntil(10) overshot the deadline: fired %d", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}
