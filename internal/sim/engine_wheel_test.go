package sim

import "testing"

// TestEngineRunUntilPadThenSchedule pins the wheel-window regression the
// EngineRun microbenchmark exposed: RunUntil pads the clock past the
// last fired event WITHOUT firing the next one, and pushes then land at
// cycles between the pad and that next event. Peeking (headAt) must not
// advance the window base past Now — otherwise those pushes underflow
// the window check, fall into the overflow heap below base, and the
// refill that would recover them never runs (a livelock, not a
// misorder).
func TestEngineRunUntilPadThenSchedule(t *testing.T) {
	eng := NewEngine()
	var fired int
	fn := func() { fired++ }
	const total = 2_000_000
	for i := 0; i < total; i++ {
		eng.After(Cycle(i%64), fn)
		if eng.Pending() > 1024 {
			eng.RunUntil(eng.Now() + 32)
		}
	}
	eng.Run()
	if fired != total {
		t.Fatalf("fired %d of %d", fired, total)
	}
}

// TestEngineOverflowRefillOrder drives events across the wheel/overflow
// boundary: bursts scheduled beyond the window must refill into buckets
// in exact (at, seq) order as the clock approaches, interleaved with
// direct pushes at the same cycles.
func TestEngineOverflowRefillOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	record := func(i int) func() { return func() { order = append(order, i) } }
	// Far events: beyond the window, same target cycle, scheduled first.
	far := Cycle(3 * wheelSize)
	eng.At(far, record(0))
	eng.At(far+1, record(2))
	eng.At(far, record(1))
	// A near event whose callback schedules directly at the (by then
	// in-window) far cycle — sequenced after the overflow entries.
	eng.At(far-wheelSize/2, func() { eng.At(far, record(3)) })
	eng.Run()
	// Overflow entries for cycle far fire in seq order (0 then 1), then
	// the direct push (3)... which was sequenced later but at the same
	// cycle, so it fires after 0 and 1 and before the far+1 event? No:
	// (at, seq) order puts it at (far, seq=5) — after (far, 1) and
	// (far, 3), before (far+1, 2).
	want := []int{0, 1, 3, 2}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}
