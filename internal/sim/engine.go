// Package sim provides the discrete-event simulation engine used by every
// timing model in the repository: a cycle-granular clock and a
// deterministic event queue.
//
// All simulated time is expressed in GPU core cycles (uint64). Events
// scheduled for the same cycle fire in FIFO order of scheduling, which
// makes every simulation run bit-for-bit reproducible.
//
// # Performance model
//
// The queue is a hierarchical timing wheel: a power-of-two calendar of
// bucket chains covering the cycles [base, base+wheelSize), backed by a
// three-level occupancy bitmap (find-next-occupied-bucket is a handful
// of word operations), with a 4-ary min-heap of pointer-free 24-byte
// entries as the overflow area for events beyond the window. Event
// closures live in a free-listed slot arena; bucket chains are threaded
// through the arena's next links, so a warmed engine schedules and
// dispatches events with zero heap allocations (asserted by
// engine_alloc_test.go).
//
// Determinism is structural rather than comparison-based:
//
//   - The window start (base) only moves forward, and only up to the
//     earliest chained cycle, so every bucket chain holds events of
//     exactly one cycle at a time, appended in scheduling (seq) order.
//     Draining a chain head-to-tail is therefore exact (at, seq) order.
//   - Overflow entries are moved into the wheel by refill at the moment
//     the window first covers their cycle — before any direct push can
//     target that cycle — and refill pops the heap in (at, seq) order,
//     so a refilled chain is seq-ordered too.
//
// Same-cycle pushes land in the current cycle's bucket chain, which is
// what the pre-wheel engine's FIFO ring provided, without a second
// structure.
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Cycle is a point in simulated time, measured in GPU core cycles.
type Cycle = uint64

// MaxCycle is the largest representable simulation time.
const MaxCycle Cycle = math.MaxUint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// EventID identifies a scheduled event for cancellation. The zero value
// is never a valid ID.
type EventID uint64

// Timing-wheel geometry. The window must comfortably cover the model's
// common latencies (DMA transfers, link round trips, and the ~67k-cycle
// far-fault handling delay) so that steady-state traffic never touches
// the overflow heap; 2^17 cycles does, at a cost of 1MB of bucket
// head/tail indexes per engine, allocated once on first use.
const (
	wheelBits = 17
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	l0Words   = wheelSize / 64 // occupancy words, one bit per bucket
	l1Words   = l0Words / 64   // summary words, one bit per l0 word
)

// entry is one overflow event's heap key. It is deliberately free of
// pointers: heap sifts move entries with plain 24-byte copies and no GC
// write barriers. The closure itself lives in the slot arena.
type entry struct {
	at   Cycle
	seq  uint64
	slot int32
}

// less orders entries by (at, seq); seq is unique, so this is a strict
// total order and heap layout can never influence dispatch order.
func less(a, b entry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// slot holds one pending event in the arena. next doubles as the
// free-list link and the bucket chain link; links are 1-based so that
// the zero value of Engine (free == 0) means "no free slots".
type slot struct {
	fn   Event
	at   Cycle
	seq  uint64
	next int32
}

// arity is the overflow heap fan-out. A 4-ary heap halves the depth of
// the pop-side sift at the cost of three comparisons per level, a net
// win because the children share a cache line pair.
const arity = 4

// Engine is a deterministic discrete-event simulator.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the entire simulation is single-threaded by design so that runs are
// reproducible.
type Engine struct {
	now Cycle
	seq uint64

	// base is the wheel window start: bucket chains cover cycles
	// [base, base+wheelSize), the overflow heap everything beyond. base
	// never decreases and never passes a chained event's cycle.
	base Cycle

	// bhead/btail are 1-based arena indexes of each bucket chain's ends
	// (0 = empty), allocated lazily on the first schedule.
	bhead []int32
	btail []int32
	// occ/occ1/occ2 form the three-level occupancy bitmap over buckets.
	occ  []uint64
	occ1 []uint64
	occ2 uint64

	// heap is the 4-ary min-heap of overflow events ordered by (at, seq).
	heap []entry

	// slots is the closure arena; free is the 1-based free-list head
	// (0 = none).
	slots []slot
	free  int32

	// live counts scheduled-but-unfired events, excluding canceled ones.
	live   int
	fired  uint64
	budget uint64 // optional safety cap on fired events; 0 = unlimited

	// daemon is the optional periodic observer (see SetDaemon): fn runs
	// at event boundaries, at most once per daemonEvery cycles. Because
	// it rides on real events instead of scheduling its own, it can
	// never extend a run or perturb the (at, seq) order.
	daemonEvery Cycle
	daemonNext  Cycle
	daemonFn    func()
}

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventBudget installs a safety limit on the total number of events the
// engine will fire; Run panics when it is exceeded. A budget of 0 disables
// the limit. Simulations use this to turn accidental livelock into a
// loud failure instead of an infinite loop.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// Pending reports the number of scheduled-but-unfired events (canceled
// events are not counted).
func (e *Engine) Pending() int { return e.live }

// Snap is a quiescent-point engine snapshot. With no events pending the
// entire engine state reduces to the clock, the sequence allocator and
// the fired count; the wheel, arena and overflow heap are all empty by
// definition. Restoring a Snap into a fresh engine therefore recreates
// the exact scheduling state: same now, and — because seq is carried
// over — identical (at, seq) tie-break behavior for everything scheduled
// afterwards.
type Snap struct {
	Now   Cycle
	Seq   uint64
	Fired uint64
}

// Snapshot captures the engine state at a quiescent point. It panics if
// events are pending: mid-flight closures cannot be snapshotted, and
// every legitimate fork point in the simulator (kernel barriers, run
// completion) is fully drained.
func (e *Engine) Snapshot() Snap {
	if e.live != 0 {
		panic(fmt.Sprintf("sim: snapshot with %d events pending", e.live))
	}
	return Snap{Now: e.now, Seq: e.seq, Fired: e.fired}
}

// Restore resets the engine to the snapshot's quiescent state, dropping
// any pending events and positioning the wheel window at the restored
// clock. The event budget and daemon configuration are preserved.
func (e *Engine) Restore(s Snap) {
	e.now, e.seq, e.fired = s.Now, s.Seq, s.Fired
	e.base = s.Now
	for i := range e.bhead {
		e.bhead[i], e.btail[i] = 0, 0
	}
	for i := range e.occ {
		e.occ[i] = 0
	}
	for i := range e.occ1 {
		e.occ1[i] = 0
	}
	e.occ2 = 0
	e.heap = e.heap[:0]
	e.slots = e.slots[:0]
	e.free = 0
	e.live = 0
}

// initWheel allocates the bucket arrays on first use, keeping the
// zero-value Engine cheap until it actually schedules something.
func (e *Engine) initWheel() {
	e.bhead = make([]int32, wheelSize)
	e.btail = make([]int32, wheelSize)
	e.occ = make([]uint64, l0Words)
	e.occ1 = make([]uint64, l1Words)
	e.base = e.now
}

// allocSlot stores the event in the arena and returns its index.
//
//sim:hotpath
func (e *Engine) allocSlot(at Cycle, seq uint64, fn Event) int32 {
	if e.free != 0 {
		s := e.free - 1
		e.free = e.slots[s].next
		e.slots[s] = slot{fn: fn, at: at, seq: seq}
		return s
	}
	e.slots = append(e.slots, slot{fn: fn, at: at, seq: seq})
	return int32(len(e.slots) - 1)
}

// freeSlot releases slot s to the free list. The seq is cleared so that
// Cancel can never match a recycled slot against a stale ID.
//
//sim:hotpath
func (e *Engine) freeSlot(s int32) {
	e.slots[s] = slot{next: e.free}
	e.free = s + 1
}

// setOcc marks bucket idx occupied in all bitmap levels.
//
//sim:hotpath
func (e *Engine) setOcc(idx int) {
	w := idx >> 6
	e.occ[w] |= 1 << uint(idx&63)
	e.occ1[w>>6] |= 1 << uint(w&63)
	e.occ2 |= 1 << uint(w>>6)
}

// clearOcc unmarks bucket idx, propagating emptiness up the levels.
//
//sim:hotpath
func (e *Engine) clearOcc(idx int) {
	w := idx >> 6
	e.occ[w] &^= 1 << uint(idx&63)
	if e.occ[w] != 0 {
		return
	}
	e.occ1[w>>6] &^= 1 << uint(w&63)
	if e.occ1[w>>6] == 0 {
		e.occ2 &^= 1 << uint(w>>6)
	}
}

// findOccFrom returns the lowest occupied bucket index >= pos, or -1.
//
//sim:hotpath
func (e *Engine) findOccFrom(pos int) int {
	w := pos >> 6
	if m := e.occ[w] & (^uint64(0) << uint(pos&63)); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	w1 := w >> 6
	// In Go a shift count >= 64 yields 0, so the r == 64 edge (last word
	// of the group) falls out naturally.
	if m := e.occ1[w1] & (^uint64(0) << uint(w&63+1)); m != 0 {
		w = w1<<6 + bits.TrailingZeros64(m)
		return w<<6 + bits.TrailingZeros64(e.occ[w])
	}
	if m := e.occ2 & (^uint64(0) << uint(w1+1)); m != 0 {
		w1 = bits.TrailingZeros64(m)
		w = w1<<6 + bits.TrailingZeros64(e.occ1[w1])
		return w<<6 + bits.TrailingZeros64(e.occ[w])
	}
	return -1
}

// pushBucket appends arena node s (a 0-based index) to its cycle's
// bucket chain. Callers guarantee the cycle is inside the window; the
// single-cycle-per-chain invariant (see the package comment) makes the
// append position exact (at, seq) order.
//
//sim:hotpath
func (e *Engine) pushBucket(at Cycle, s int32) {
	idx := int(at & wheelMask)
	e.slots[s].next = 0
	if t := e.btail[idx]; t != 0 {
		e.slots[t-1].next = s + 1
	} else {
		e.bhead[idx] = s + 1
		e.setOcc(idx)
	}
	e.btail[idx] = s + 1
}

// popBucketHead unlinks and returns the head node of bucket idx.
//
//sim:hotpath
func (e *Engine) popBucketHead(idx int) int32 {
	h := e.bhead[idx] - 1
	nx := e.slots[h].next
	e.bhead[idx] = nx
	if nx == 0 {
		e.btail[idx] = 0
		e.clearOcc(idx)
	}
	return h
}

// refill moves overflow events whose cycle the window now covers into
// their buckets. It runs on every base advance, which is exactly the
// moment the window first covers those cycles — before any direct push
// can target them — and pops the heap in (at, seq) order, so chain
// append order remains seq order.
//
//sim:hotpath
func (e *Engine) refill() {
	for len(e.heap) > 0 && e.heap[0].at-e.base < wheelSize {
		en := e.popHeap()
		e.pushBucket(en.at, en.slot)
	}
}

// advanceBase slides the window forward to at and refills.
//
//sim:hotpath
func (e *Engine) advanceBase(at Cycle) {
	if at > e.base {
		e.base = at
		e.refill()
	}
}

// schedule enqueues fn at absolute cycle at and returns its ID.
//
//sim:hotpath
func (e *Engine) schedule(at Cycle, fn Event) EventID {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (at=%d now=%d)", at, e.now))
	}
	if e.bhead == nil {
		e.initWheel()
	}
	e.seq++
	s := e.allocSlot(at, e.seq, fn)
	if at-e.base < wheelSize {
		e.pushBucket(at, s)
	} else {
		e.pushHeap(entry{at: at, seq: e.seq, slot: s})
	}
	e.live++
	return EventID(e.seq)
}

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) panics: it always indicates a model bug.
func (e *Engine) At(at Cycle, fn Event) { e.schedule(at, fn) }

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) { e.schedule(e.now+delay, fn) }

// Schedule is At returning an EventID usable with Cancel.
func (e *Engine) Schedule(at Cycle, fn Event) EventID { return e.schedule(at, fn) }

// ScheduleAfter is After returning an EventID usable with Cancel.
func (e *Engine) ScheduleAfter(delay Cycle, fn Event) EventID {
	return e.schedule(e.now+delay, fn)
}

// Cancel removes a scheduled event before it fires. It reports whether
// the event was still pending. Cancellation is lazy: the entry is
// tombstoned in place (its closure dropped) and skipped at dispatch, so
// Cancel costs a linear arena scan but adds nothing to the hot path.
func (e *Engine) Cancel(id EventID) bool {
	seq := uint64(id)
	if seq == 0 || seq > e.seq {
		return false
	}
	// Every pending event — chained or in the overflow heap — has its
	// seq in the arena; freed slots have seq 0, so fired or recycled
	// events can never match.
	for i := range e.slots {
		if e.slots[i].seq == seq {
			if e.slots[i].fn == nil {
				return false
			}
			e.slots[i].fn = nil
			e.live--
			return true
		}
	}
	return false
}

// pushHeap inserts en into the overflow heap, sifting up.
//
//sim:hotpath
func (e *Engine) pushHeap(en entry) {
	e.heap = append(e.heap, en)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / arity
		if !less(en, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = en
}

// popHeap removes and returns the minimum overflow entry.
//
//sim:hotpath
func (e *Engine) popHeap() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	en := h[n]
	e.heap = h[:n]
	if n > 0 {
		// Sift the displaced last entry down from the root.
		i := 0
		for {
			first := i*arity + 1
			if first >= n {
				break
			}
			min := first
			last := first + arity
			if last > n {
				last = n
			}
			for c := first + 1; c < last; c++ {
				if less(h[c], h[min]) {
					min = c
				}
			}
			if !less(h[min], en) {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = en
	}
	return top
}

// scanWheel returns the occupied bucket holding the earliest chained
// event, popping tombstoned heads as it goes; ok=false when the wheel
// is empty. It never moves the window: peeking (headAt) must leave base
// <= now so that later pushes at cycles >= now stay inside the window.
//
//sim:hotpath
func (e *Engine) scanWheel() (idx int, at Cycle, ok bool) {
	if e.bhead == nil {
		return 0, 0, false
	}
	for {
		idx = e.findOccFrom(int(e.base & wheelMask))
		if idx < 0 {
			// The window may have wrapped: any occupied bucket below the
			// base position maps to a later cycle in the window.
			idx = e.findOccFrom(0)
		}
		if idx < 0 {
			return 0, 0, false
		}
		h := e.bhead[idx] - 1
		if e.slots[h].fn == nil {
			e.popBucketHead(idx)
			e.freeSlot(h)
			continue
		}
		return idx, e.slots[h].at, true
	}
}

// cleanHeapHead discards tombstoned entries at the overflow heap's root
// so its minimum is a live event.
func (e *Engine) cleanHeapHead() {
	for len(e.heap) > 0 && e.slots[e.heap[0].slot].fn == nil {
		e.freeSlot(e.popHeap().slot)
	}
}

// next dequeues the earliest pending event in (at, seq) order, or
// ok=false when the engine is drained. Tombstoned (canceled) entries are
// discarded without advancing the clock. Every wheel cycle precedes
// every overflow cycle (the heap minimum is >= base+wheelSize by the
// refill invariant), so the wheel head, when present, is the global
// minimum. Advancing base here is safe — unlike in headAt — because the
// caller immediately moves the clock to the returned cycle, so no push
// can land behind the window.
//
//sim:hotpath
func (e *Engine) next() (Cycle, Event, bool) {
	for {
		idx, at, ok := e.scanWheel()
		if !ok {
			e.cleanHeapHead()
			if len(e.heap) == 0 {
				return 0, nil, false
			}
			// The wheel is drained: jump the window to the overflow
			// frontier and refill; the next iteration finds the event in
			// its bucket.
			e.advanceBase(e.heap[0].at)
			continue
		}
		// Pull the window up to the dispatch frontier so pushes reach as
		// far ahead as possible before overflowing. Refill cannot touch
		// this bucket: refilled cycles lie in [oldBase+wheelSize, at+wheelSize),
		// and the only one congruent to at is at+wheelSize itself, which
		// is out of range.
		e.advanceBase(at)
		h := e.popBucketHead(idx)
		fn := e.slots[h].fn
		e.freeSlot(h)
		return at, fn, true
	}
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
//
//sim:hotpath
func (e *Engine) Step() bool {
	at, fn, ok := e.next()
	if !ok {
		return false
	}
	e.now = at
	e.live--
	e.fired++
	if e.budget != 0 && e.fired > e.budget {
		panic(fmt.Sprintf("sim: event budget %d exceeded at cycle %d", e.budget, e.now))
	}
	fn()
	if e.daemonFn != nil && e.now >= e.daemonNext {
		e.daemonNext = e.now + e.daemonEvery
		e.daemonFn()
	}
	return true
}

// SetDaemon installs a periodic observer: fn runs after an event fires
// whenever at least `every` cycles have passed since its previous run
// (so at real event timestamps, never between or beyond them). The
// observer must not schedule events — it exists for invariant sweeps
// and metrics sampling that must leave the simulation untouched.
// SetDaemon(0, nil) uninstalls.
func (e *Engine) SetDaemon(every Cycle, fn func()) {
	if (every == 0) != (fn == nil) {
		panic("sim: SetDaemon needs both a period and a function (or neither)")
	}
	e.daemonEvery, e.daemonFn = every, fn
	e.daemonNext = e.now + every
}

// Run fires events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// headAt returns the timestamp of the earliest live event, discarding
// canceled entries at the front, with ok=false when nothing is pending.
//
//sim:hotpath
func (e *Engine) headAt() (Cycle, bool) {
	if _, at, ok := e.scanWheel(); ok {
		return at, true
	}
	e.cleanHeapHead()
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// RunUntil fires events whose timestamp is <= deadline, then advances the
// clock to deadline (if it is later than the last event). It reports
// whether any events remain pending beyond the deadline.
func (e *Engine) RunUntil(deadline Cycle) bool {
	for {
		at, ok := e.headAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.live > 0
}
