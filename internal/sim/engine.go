// Package sim provides the discrete-event simulation engine used by every
// timing model in the repository: a cycle-granular clock and a
// deterministic min-heap event queue.
//
// All simulated time is expressed in GPU core cycles (uint64). Events
// scheduled for the same cycle fire in FIFO order of scheduling, which
// makes every simulation run bit-for-bit reproducible.
//
// # Performance model
//
// The queue is a hand-rolled 4-ary min-heap over pointer-free 24-byte
// entries (cycle, sequence number, slot index); event closures live in a
// free-listed slot arena beside the heap. Sifting therefore moves small
// scalar values with no write barriers and no interface boxing, and a
// warmed engine schedules and dispatches events with zero heap
// allocations (asserted by engine_alloc_test.go). Events scheduled for
// the current cycle while the queue is hot bypass the heap entirely and
// go to a same-cycle FIFO ring, which preserves global (cycle, seq)
// order because every ring entry was necessarily sequenced after every
// same-cycle heap entry.
package sim

import (
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in GPU core cycles.
type Cycle = uint64

// MaxCycle is the largest representable simulation time.
const MaxCycle Cycle = math.MaxUint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// EventID identifies a scheduled event for cancellation. The zero value
// is never a valid ID.
type EventID uint64

// entry is one scheduled event's heap key. It is deliberately free of
// pointers: heap sifts move entries with plain 24-byte copies and no GC
// write barriers. The closure itself lives in the slot arena.
type entry struct {
	at   Cycle
	seq  uint64
	slot int32
}

// less orders entries by (at, seq); seq is unique, so this is a strict
// total order and heap layout can never influence dispatch order.
func less(a, b entry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// slot holds one pending event closure in the arena. Free slots are
// chained through next; free-list links are 1-based so that the zero
// value of Engine (free == 0) means "no free slots".
type slot struct {
	fn   Event
	next int32
}

// arity is the heap fan-out. A 4-ary heap halves the depth of the
// pop-side sift (the hot operation: the profile is pop-dominated) at the
// cost of three comparisons per level, which is a net win because the
// children share a cache line pair.
const arity = 4

// Engine is a deterministic discrete-event simulator.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the entire simulation is single-threaded by design so that runs are
// reproducible.
type Engine struct {
	now Cycle
	seq uint64

	// heap is the 4-ary min-heap of future events ordered by (at, seq).
	heap []entry
	// ring is the FIFO of events scheduled for the current cycle; see the
	// package comment for why draining it after same-cycle heap entries
	// preserves (at, seq) order. ringHead indexes the first live element.
	ring     []entry
	ringHead int

	// slots is the closure arena; free is the 1-based free-list head
	// (0 = none).
	slots []slot
	free  int32

	// live counts scheduled-but-unfired events, excluding canceled ones.
	live   int
	fired  uint64
	budget uint64 // optional safety cap on fired events; 0 = unlimited

	// daemon is the optional periodic observer (see SetDaemon): fn runs
	// at event boundaries, at most once per daemonEvery cycles. Because
	// it rides on real events instead of scheduling its own, it can
	// never extend a run or perturb the (at, seq) order.
	daemonEvery Cycle
	daemonNext  Cycle
	daemonFn    func()
}

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventBudget installs a safety limit on the total number of events the
// engine will fire; Run panics when it is exceeded. A budget of 0 disables
// the limit. Simulations use this to turn accidental livelock into a
// loud failure instead of an infinite loop.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// Pending reports the number of scheduled-but-unfired events (canceled
// events are not counted).
func (e *Engine) Pending() int { return e.live }

// allocSlot stores fn in the arena and returns its index.
//
//sim:hotpath
func (e *Engine) allocSlot(fn Event) int32 {
	if e.free != 0 {
		s := e.free - 1
		e.free = e.slots[s].next
		e.slots[s].fn = fn
		return s
	}
	e.slots = append(e.slots, slot{fn: fn})
	return int32(len(e.slots) - 1)
}

// takeSlot removes and returns the closure of slot s, releasing it to
// the free list.
//
//sim:hotpath
func (e *Engine) takeSlot(s int32) Event {
	fn := e.slots[s].fn
	e.slots[s].fn = nil
	e.slots[s].next = e.free
	e.free = s + 1
	return fn
}

// schedule enqueues fn at absolute cycle at and returns its ID.
//
//sim:hotpath
func (e *Engine) schedule(at Cycle, fn Event) EventID {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (at=%d now=%d)", at, e.now))
	}
	e.seq++
	en := entry{at: at, seq: e.seq, slot: e.allocSlot(fn)}
	if at == e.now {
		// Same-cycle fast path: FIFO ring instead of the heap. Every heap
		// entry at this cycle was sequenced earlier (pushes require
		// at > now at push time, or went to the ring themselves), so
		// draining heap-then-ring at this cycle is exact (at, seq) order.
		e.ring = append(e.ring, en)
	} else {
		e.pushHeap(en)
	}
	e.live++
	return EventID(e.seq)
}

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) panics: it always indicates a model bug.
func (e *Engine) At(at Cycle, fn Event) { e.schedule(at, fn) }

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) { e.schedule(e.now+delay, fn) }

// Schedule is At returning an EventID usable with Cancel.
func (e *Engine) Schedule(at Cycle, fn Event) EventID { return e.schedule(at, fn) }

// ScheduleAfter is After returning an EventID usable with Cancel.
func (e *Engine) ScheduleAfter(delay Cycle, fn Event) EventID {
	return e.schedule(e.now+delay, fn)
}

// Cancel removes a scheduled event before it fires. It reports whether
// the event was still pending. Cancellation is lazy: the entry is
// tombstoned in place (its closure dropped) and skipped at dispatch, so
// Cancel costs a linear scan but adds nothing to the hot path.
func (e *Engine) Cancel(id EventID) bool {
	seq := uint64(id)
	if seq == 0 || seq > e.seq {
		return false
	}
	for i := range e.heap {
		if e.heap[i].seq == seq {
			return e.tombstone(e.heap[i].slot)
		}
	}
	for i := e.ringHead; i < len(e.ring); i++ {
		if e.ring[i].seq == seq {
			return e.tombstone(e.ring[i].slot)
		}
	}
	return false
}

// tombstone drops the slot's closure so dispatch skips the entry.
func (e *Engine) tombstone(s int32) bool {
	if e.slots[s].fn == nil {
		return false
	}
	e.slots[s].fn = nil
	e.live--
	return true
}

// pushHeap inserts en, sifting up.
//
//sim:hotpath
func (e *Engine) pushHeap(en entry) {
	e.heap = append(e.heap, en)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / arity
		if !less(en, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = en
}

// popHeap removes and returns the minimum entry.
//
//sim:hotpath
func (e *Engine) popHeap() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	en := h[n]
	e.heap = h[:n]
	if n > 0 {
		// Sift the displaced last entry down from the root.
		i := 0
		for {
			first := i*arity + 1
			if first >= n {
				break
			}
			min := first
			last := first + arity
			if last > n {
				last = n
			}
			for c := first + 1; c < last; c++ {
				if less(h[c], h[min]) {
					min = c
				}
			}
			if !less(h[min], en) {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = en
	}
	return top
}

// next dequeues the earliest pending entry in (at, seq) order, or
// ok=false when the engine is drained. Tombstoned (canceled) entries are
// discarded without advancing the clock.
//
//sim:hotpath
func (e *Engine) next() (entry, Event, bool) {
	for {
		var en entry
		switch {
		case len(e.heap) > 0 && e.heap[0].at <= e.now:
			// Same-cycle heap entries precede every ring entry (smaller seq).
			en = e.popHeap()
		case e.ringHead < len(e.ring):
			en = e.ring[e.ringHead]
			e.ringHead++
			if e.ringHead == len(e.ring) {
				e.ring = e.ring[:0]
				e.ringHead = 0
			}
		case len(e.heap) > 0:
			en = e.popHeap()
		default:
			return entry{}, nil, false
		}
		if fn := e.takeSlot(en.slot); fn != nil {
			return en, fn, true
		}
	}
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
//
//sim:hotpath
func (e *Engine) Step() bool {
	en, fn, ok := e.next()
	if !ok {
		return false
	}
	e.now = en.at
	e.live--
	e.fired++
	if e.budget != 0 && e.fired > e.budget {
		panic(fmt.Sprintf("sim: event budget %d exceeded at cycle %d", e.budget, e.now))
	}
	fn()
	if e.daemonFn != nil && e.now >= e.daemonNext {
		e.daemonNext = e.now + e.daemonEvery
		e.daemonFn()
	}
	return true
}

// SetDaemon installs a periodic observer: fn runs after an event fires
// whenever at least `every` cycles have passed since its previous run
// (so at real event timestamps, never between or beyond them). The
// observer must not schedule events — it exists for invariant sweeps
// and metrics sampling that must leave the simulation untouched.
// SetDaemon(0, nil) uninstalls.
func (e *Engine) SetDaemon(every Cycle, fn func()) {
	if (every == 0) != (fn == nil) {
		panic("sim: SetDaemon needs both a period and a function (or neither)")
	}
	e.daemonEvery, e.daemonFn = every, fn
	e.daemonNext = e.now + every
}

// Run fires events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// headAt returns the timestamp of the earliest live event, discarding
// canceled entries at the front, with ok=false when nothing is pending.
//
//sim:hotpath
func (e *Engine) headAt() (Cycle, bool) {
	for len(e.heap) > 0 && e.slots[e.heap[0].slot].fn == nil {
		en := e.popHeap()
		e.takeSlot(en.slot)
	}
	for e.ringHead < len(e.ring) && e.slots[e.ring[e.ringHead].slot].fn == nil {
		e.takeSlot(e.ring[e.ringHead].slot)
		e.ringHead++
	}
	if e.ringHead == len(e.ring) && e.ringHead > 0 {
		e.ring = e.ring[:0]
		e.ringHead = 0
	}
	if e.ringHead < len(e.ring) {
		// Live ring entries are always at the current cycle.
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// RunUntil fires events whose timestamp is <= deadline, then advances the
// clock to deadline (if it is later than the last event). It reports
// whether any events remain pending beyond the deadline.
func (e *Engine) RunUntil(deadline Cycle) bool {
	for {
		at, ok := e.headAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.live > 0
}
