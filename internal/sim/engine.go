// Package sim provides the discrete-event simulation engine used by every
// timing model in the repository: a cycle-granular clock and a
// deterministic min-heap event queue.
//
// All simulated time is expressed in GPU core cycles (uint64). Events
// scheduled for the same cycle fire in FIFO order of scheduling, which
// makes every simulation run bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in GPU core cycles.
type Cycle = uint64

// MaxCycle is the largest representable simulation time.
const MaxCycle Cycle = math.MaxUint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// item is a scheduled event inside the queue.
type item struct {
	at  Cycle
	seq uint64 // FIFO tie-breaker for events at the same cycle
	fn  Event
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the entire simulation is single-threaded by design so that runs are
// reproducible.
type Engine struct {
	now    Cycle
	seq    uint64
	queue  eventHeap
	fired  uint64
	budget uint64 // optional safety cap on fired events; 0 = unlimited
}

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetEventBudget installs a safety limit on the total number of events the
// engine will fire; Run panics when it is exceeded. A budget of 0 disables
// the limit. Simulations use this to turn accidental livelock into a
// loud failure instead of an infinite loop.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// Pending reports the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) panics: it always indicates a model bug.
func (e *Engine) At(at Cycle, fn Event) {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (at=%d now=%d)", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) { e.At(e.now+delay, fn) }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(item)
	e.now = it.at
	e.fired++
	if e.budget != 0 && e.fired > e.budget {
		panic(fmt.Sprintf("sim: event budget %d exceeded at cycle %d", e.budget, e.now))
	}
	it.fn()
	return true
}

// Run fires events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events whose timestamp is <= deadline, then advances the
// clock to deadline (if it is later than the last event). It reports
// whether any events remain pending beyond the deadline.
func (e *Engine) RunUntil(deadline Cycle) bool {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return len(e.queue) > 0
}
