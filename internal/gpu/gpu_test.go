package gpu

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

// stubMem is a controllable memory backend: addresses in slow are served
// asynchronously with slowLatency; everything else completes via the
// fast path after fastLatency.
type stubMem struct {
	eng         *sim.Engine
	fastLatency sim.Cycle
	slowLatency sim.Cycle
	slow        map[memunits.Addr]bool
	accesses    []memunits.Addr
	writes      int
}

func (m *stubMem) TryFastAccess(addr memunits.Addr, write bool) (sim.Cycle, bool) {
	if m.slow[addr] {
		return 0, false
	}
	m.record(addr, write)
	return m.eng.Now() + m.fastLatency, true
}

func (m *stubMem) Access(addr memunits.Addr, write bool, done func()) {
	m.record(addr, write)
	m.eng.After(m.slowLatency, done)
}

func (m *stubMem) record(addr memunits.Addr, write bool) {
	m.accesses = append(m.accesses, addr)
	if write {
		m.writes++
	}
}

// listProgram replays a fixed instruction list.
type listProgram struct {
	instrs []Instr
	pos    int
}

func (p *listProgram) Next(instr *Instr) bool {
	if p.pos >= len(p.instrs) {
		return false
	}
	*instr = p.instrs[p.pos]
	p.pos++
	return true
}

func testCfg() config.Config {
	c := config.Default()
	c.NumSMs = 2
	c.MaxCTAsPerSM = 2
	c.MaxWarpsPerSM = 4
	return c
}

func newGPU(cfg config.Config) (*GPU, *stubMem, *stats.Counters, *sim.Engine) {
	eng := sim.NewEngine()
	eng.SetEventBudget(10_000_000)
	mem := &stubMem{eng: eng, fastLatency: 100, slowLatency: 5000, slow: map[memunits.Addr]bool{}}
	st := &stats.Counters{}
	return New(eng, cfg, mem, st), mem, st, eng
}

func computeKernel(ctas, warps int, cyclesPerWarp uint64) Kernel {
	return Kernel{
		Name: "compute", CTAs: ctas, WarpsPerCTA: warps,
		NewWarp: func(_, _ int) WarpProgram {
			return &listProgram{instrs: []Instr{{Compute: cyclesPerWarp}}}
		},
	}
}

func memInstr(write bool, addrs ...memunits.Addr) Instr {
	in := Instr{Write: write, NumAddrs: len(addrs)}
	copy(in.Addrs[:], addrs)
	return in
}

func TestPureComputeKernel(t *testing.T) {
	g, _, st, _ := newGPU(testCfg())
	finish := g.RunSync(computeKernel(1, 1, 500))
	if finish != 500 {
		t.Fatalf("finish = %d, want 500", finish)
	}
	if st.Instructions != 1 || st.WarpsRetired != 1 || st.MemInstructions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestComputeWarpsShareIssuePort(t *testing.T) {
	// Two warps of 500 cycles on one SM serialize on the issue port.
	cfg := testCfg()
	cfg.NumSMs = 1
	g, _, _, _ := newGPU(cfg)
	finish := g.RunSync(computeKernel(1, 2, 500))
	if finish != 1000 {
		t.Fatalf("finish = %d, want 1000 (serialized issue)", finish)
	}
}

func TestComputeCTAsSpreadAcrossSMs(t *testing.T) {
	// Two 1-warp CTAs on two SMs run in parallel.
	g, _, _, _ := newGPU(testCfg())
	finish := g.RunSync(computeKernel(2, 1, 500))
	if finish != 500 {
		t.Fatalf("finish = %d, want 500 (parallel SMs)", finish)
	}
}

func TestCoalescingMergesSectors(t *testing.T) {
	g, mem, st, _ := newGPU(testCfg())
	base := memunits.Addr(0x10000)
	// 32 lanes within one 128B sector -> one transaction.
	var addrs []memunits.Addr
	for i := 0; i < 32; i++ {
		addrs = append(addrs, base+uint64(i%128)) // all in one sector
	}
	k := Kernel{Name: "coal", CTAs: 1, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram {
		return &listProgram{instrs: []Instr{memInstr(false, addrs...)}}
	}}
	g.RunSync(k)
	if len(mem.accesses) != 1 {
		t.Fatalf("accesses = %d, want 1 (coalesced)", len(mem.accesses))
	}
	if st.MemInstructions != 1 {
		t.Fatalf("MemInstructions = %d, want 1", st.MemInstructions)
	}
}

func TestDivergentLanesFragment(t *testing.T) {
	g, mem, _, _ := newGPU(testCfg())
	var addrs []memunits.Addr
	for i := 0; i < 32; i++ {
		addrs = append(addrs, memunits.Addr(0x10000+i*4096)) // 32 sectors
	}
	k := Kernel{Name: "div", CTAs: 1, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram {
		return &listProgram{instrs: []Instr{memInstr(false, addrs...)}}
	}}
	g.RunSync(k)
	if len(mem.accesses) != 32 {
		t.Fatalf("accesses = %d, want 32 (divergent)", len(mem.accesses))
	}
}

func TestWriteFlagPropagates(t *testing.T) {
	g, mem, _, _ := newGPU(testCfg())
	k := Kernel{Name: "w", CTAs: 1, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram {
		return &listProgram{instrs: []Instr{memInstr(true, 0x20000)}}
	}}
	g.RunSync(k)
	if mem.writes != 1 {
		t.Fatalf("writes = %d, want 1", mem.writes)
	}
}

func TestLatencyHidingAcrossWarps(t *testing.T) {
	// Each warp: 1-cycle issue + 5000-cycle async memory. Eight warps on
	// one SM must overlap their memory latencies: total far below
	// 8 * 5000.
	cfg := testCfg()
	cfg.NumSMs = 1
	cfg.MaxWarpsPerSM = 8
	cfg.MaxCTAsPerSM = 8
	g, mem, _, _ := newGPU(cfg)
	for i := 0; i < 8; i++ {
		mem.slow[memunits.Addr(0x30000+i*128)] = true
	}
	k := Kernel{Name: "hide", CTAs: 8, WarpsPerCTA: 1, NewWarp: func(cta, _ int) WarpProgram {
		return &listProgram{instrs: []Instr{memInstr(false, memunits.Addr(0x30000+cta*128))}}
	}}
	finish := g.RunSync(k)
	if finish >= 2*5000 {
		t.Fatalf("finish = %d; memory latency not hidden (serial would be 40000)", finish)
	}
}

func TestAsyncCompletionResumesWarp(t *testing.T) {
	g, mem, st, _ := newGPU(testCfg())
	addr := memunits.Addr(0x40000)
	mem.slow[addr] = true
	k := Kernel{Name: "async", CTAs: 1, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram {
		return &listProgram{instrs: []Instr{
			memInstr(false, addr),
			{Compute: 10},
		}}
	}}
	finish := g.RunSync(k)
	// 1 cycle issue + 5000 async + 10 trailing compute.
	if finish != 5011 {
		t.Fatalf("finish = %d, want 5011", finish)
	}
	if st.WarpsRetired != 1 || st.Instructions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCTAWaves(t *testing.T) {
	// 8 CTAs of 4 warps with capacity 2 SMs x 4 warps: runs in waves and
	// must still retire everything.
	g, _, st, _ := newGPU(testCfg())
	k := computeKernel(8, 4, 50)
	g.RunSync(k)
	if st.WarpsRetired != 32 {
		t.Fatalf("WarpsRetired = %d, want 32", st.WarpsRetired)
	}
}

func TestManyWarpsManyInstrs(t *testing.T) {
	g, mem, st, _ := newGPU(testCfg())
	_ = mem
	k := Kernel{Name: "mix", CTAs: 4, WarpsPerCTA: 2, NewWarp: func(cta, w int) WarpProgram {
		var instrs []Instr
		for i := 0; i < 10; i++ {
			instrs = append(instrs, Instr{Compute: 5})
			instrs = append(instrs, memInstr(i%2 == 0, memunits.Addr(0x50000+uint64(cta*1024+w*128+i))))
		}
		return &listProgram{instrs: instrs}
	}}
	g.RunSync(k)
	if st.WarpsRetired != 8 {
		t.Fatalf("WarpsRetired = %d, want 8", st.WarpsRetired)
	}
	if st.Instructions != 8*20 || st.MemInstructions != 8*10 {
		t.Fatalf("instr counts: %d/%d", st.Instructions, st.MemInstructions)
	}
}

func TestKernelValidate(t *testing.T) {
	bad := []Kernel{
		{Name: "noctas", CTAs: 0, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram { return nil }},
		{Name: "nowarps", CTAs: 1, WarpsPerCTA: 0, NewWarp: func(_, _ int) WarpProgram { return nil }},
		{Name: "nofunc", CTAs: 1, WarpsPerCTA: 1},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q validated", k.Name)
		}
	}
}

func TestDoubleLaunchPanics(t *testing.T) {
	g, mem, _, _ := newGPU(testCfg())
	mem.slow[0x60000] = true
	k := Kernel{Name: "k", CTAs: 1, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram {
		return &listProgram{instrs: []Instr{memInstr(false, 0x60000)}}
	}}
	g.Launch(k, nil)
	defer func() {
		if recover() == nil {
			t.Error("double launch did not panic")
		}
	}()
	g.Launch(k, nil)
}

func TestOversizedCTAPanics(t *testing.T) {
	g, _, _, _ := newGPU(testCfg())
	defer func() {
		if recover() == nil {
			t.Error("oversized CTA did not panic")
		}
	}()
	g.RunSync(computeKernel(1, 100, 1))
}

func TestSequentialKernelsAccumulateTime(t *testing.T) {
	g, _, _, _ := newGPU(testCfg())
	f1 := g.RunSync(computeKernel(1, 1, 100))
	f2 := g.RunSync(computeKernel(1, 1, 100))
	if f2 <= f1 {
		t.Fatalf("second kernel finish %d not after first %d", f2, f1)
	}
}
