// Package gpu models the GPU's compute side: streaming multiprocessors
// with bounded CTA/warp residency, warp issue with latency hiding, and a
// 32-lane coalescer that merges a warp memory instruction into unique
// 128B sector transactions.
//
// The model is deliberately coarse where the paper's results do not
// depend on detail — there is no SASS pipeline — but it preserves the two
// properties every figure rests on: massive thread-level parallelism
// hides near-access latency, and it cannot hide far-fault latency, which
// stalls warps for tens of thousands of cycles.
package gpu

import (
	"errors"
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

// MaxLanes is the number of threads (lanes) per warp.
const MaxLanes = 32

// Instr is one warp instruction. A zero NumAddrs means pure compute.
type Instr struct {
	// Compute is the number of issue cycles of arithmetic preceding the
	// memory operation (or the whole instruction cost when NumAddrs is
	// zero). Workload generators aggregate arithmetic here.
	Compute uint64
	// Write marks the memory operation as a store.
	Write bool
	// NumAddrs is the number of active lanes; Addrs[:NumAddrs] holds the
	// per-lane byte addresses.
	NumAddrs int
	Addrs    [MaxLanes]memunits.Addr
}

// WarpProgram generates the instruction stream of one warp. Next fills
// in instr and reports whether an instruction was produced; false means
// the warp has retired.
type WarpProgram interface {
	Next(instr *Instr) bool
}

// Kernel describes one kernel launch.
type Kernel struct {
	Name        string
	CTAs        int
	WarpsPerCTA int
	// NewWarp builds the program for warp w (0-based within the CTA) of
	// CTA cta.
	NewWarp func(cta, w int) WarpProgram
}

// Validate checks the kernel description.
func (k Kernel) Validate() error {
	if k.CTAs <= 0 {
		return fmt.Errorf("gpu: kernel %q has %d CTAs", k.Name, k.CTAs)
	}
	if k.WarpsPerCTA <= 0 {
		return fmt.Errorf("gpu: kernel %q has %d warps per CTA", k.Name, k.WarpsPerCTA)
	}
	if k.NewWarp == nil {
		return fmt.Errorf("gpu: kernel %q has nil NewWarp", k.Name)
	}
	return nil
}

// MemoryBackend is the memory subsystem the GPU issues transactions to
// (the UVM driver in full simulations; a stub in unit tests).
type MemoryBackend interface {
	// TryFastAccess serves the access synchronously when possible,
	// returning the completion cycle.
	TryFastAccess(addr memunits.Addr, write bool) (sim.Cycle, bool)
	// Access serves the access asynchronously, invoking done at
	// completion.
	Access(addr memunits.Addr, write bool, done func())
}

// RunBackend is an optional MemoryBackend extension: a backend that can
// serve a dense run of same-block sector accesses in one call. The GPU
// detects it once at construction and uses it for multi-sector runs;
// backends without it (unit-test stubs) see per-sector calls only.
type RunBackend interface {
	// TryFastAccessRun serves sorted same-block sector addresses
	// synchronously when possible, returning the latest completion
	// cycle. ok false means the caller must fall back per sector.
	TryFastAccessRun(addrs []memunits.Addr, write bool) (sim.Cycle, bool)
}

// sm is one streaming multiprocessor's occupancy and issue state.
type sm struct {
	freeAt        sim.Cycle // issue resource: one instruction per cycle
	residentCTAs  int
	residentWarps int
}

// warp is the execution state of one resident warp. Warp objects are
// pooled across CTA dispatches: each carries its event closures, bound
// once at construction, so steady-state execution schedules engine
// events without allocating.
type warp struct {
	prog WarpProgram
	sm   *sm
	cta  *ctaState
	// sectors[:nsec] are the coalesced unique sector addresses of the
	// current memory instruction (a warp has at most MaxLanes of them, so
	// a fixed array doubles as the coalescer's scratch buffer).
	sectors [MaxLanes]memunits.Addr
	nsec    int
	// outstanding async transactions for the current memory op.
	outstanding int
	// readyAt is the max completion cycle among fast-path sectors.
	readyAt sim.Cycle
	// issuedAt is the cycle the current memory op was issued, for warp
	// stall accounting (observability only).
	issuedAt sim.Cycle
	instr    Instr

	// Prebound continuations; a warp has at most one in flight at a time.
	stepFn   sim.Event // resume execution
	memFn    sim.Event // issue the coalesced memory op
	sectorFn func()    // async sector completion
	finishFn sim.Event // retire after trailing compute
}

// ctaState tracks retirement of one CTA. Pooled like warps.
type ctaState struct {
	warpsLeft int
	sm        *sm
}

// GPU is the device compute model.
type GPU struct {
	eng *sim.Engine
	cfg config.Config
	mem MemoryBackend
	// memRun is mem's optional dense-run extension (nil when absent),
	// resolved once at construction to keep issueMemory assertion-free.
	memRun RunBackend
	st     *stats.Counters
	sms    []sm

	// current kernel launch state
	kernel       Kernel
	nextCTA      int
	retiredWarps int
	totalWarps   int
	onDone       func(finish sim.Cycle)
	running      bool

	// free lists recycling warp and CTA state (and their prebound
	// closures) across dispatches.
	warpFree []*warp
	ctaFree  []*ctaState

	// Observability (nil when disabled): total cycles warps spent blocked
	// on asynchronous memory (remote accesses and far-faults), plus the
	// per-memory-op stall distribution.
	stallCycles obs.Counter
	stallHist   *obs.Histogram
	obsOn       bool
}

// New creates a GPU attached to the engine and memory backend; st
// receives instruction/warp counters (typically the driver's stats).
func New(eng *sim.Engine, cfg config.Config, mem MemoryBackend, st *stats.Counters) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("gpu: %v", err))
	}
	memRun, _ := mem.(RunBackend)
	return &GPU{eng: eng, cfg: cfg, mem: mem, memRun: memRun, st: st, sms: make([]sm, cfg.NumSMs)}
}

// SetObs attaches observability instruments (nil detaches). The GPU
// publishes warp stall cycles: the time warps spend blocked on
// asynchronous memory, which thread-level parallelism failed to hide.
func (g *GPU) SetObs(r *obs.Run) {
	g.stallCycles, g.stallHist, g.obsOn = obs.Counter{}, nil, false
	if r == nil || r.Reg == nil {
		return
	}
	g.stallCycles = r.Reg.Counter("gpu.warp_stall_cycles")
	g.stallHist = r.Reg.Histogram("gpu.stall_cycles_per_memop")
	g.obsOn = true
}

// Launch starts a kernel; onDone fires when its last warp retires. Only
// one kernel may be in flight (cudaDeviceSynchronize semantics).
func (g *GPU) Launch(k Kernel, onDone func(finish sim.Cycle)) {
	if err := k.Validate(); err != nil {
		panic(err.Error())
	}
	if g.running {
		panic("gpu: kernel already running")
	}
	if k.WarpsPerCTA > g.cfg.MaxWarpsPerSM {
		panic(fmt.Sprintf("gpu: CTA of %d warps exceeds SM capacity %d", k.WarpsPerCTA, g.cfg.MaxWarpsPerSM))
	}
	g.kernel = k
	g.nextCTA = 0
	g.retiredWarps = 0
	g.totalWarps = k.CTAs * k.WarpsPerCTA
	g.onDone = onDone
	g.running = true
	g.dispatchCTAs()
}

// RunSync launches the kernel and drives the engine until it completes,
// returning the completion cycle.
func (g *GPU) RunSync(k Kernel) sim.Cycle {
	var finish sim.Cycle
	done := false
	g.Launch(k, func(at sim.Cycle) { done = true; finish = at })
	g.eng.Run()
	if !done {
		panic(fmt.Sprintf("gpu: kernel %q did not complete (deadlocked warps?)", k.Name))
	}
	return finish
}

// dispatchCTAs fills SM slots with pending CTAs, round-robin.
func (g *GPU) dispatchCTAs() {
	for g.nextCTA < g.kernel.CTAs {
		s := g.pickSM()
		if s == nil {
			return
		}
		cta := g.nextCTA
		g.nextCTA++
		s.residentCTAs++
		s.residentWarps += g.kernel.WarpsPerCTA
		cs := g.newCTAState(g.kernel.WarpsPerCTA, s)
		for wi := 0; wi < g.kernel.WarpsPerCTA; wi++ {
			g.step(g.newWarp(g.kernel.NewWarp(cta, wi), s, cs))
		}
	}
}

// newCTAState takes a CTA record from the pool (or allocates one).
func (g *GPU) newCTAState(warps int, s *sm) *ctaState {
	if n := len(g.ctaFree); n > 0 {
		cs := g.ctaFree[n-1]
		g.ctaFree = g.ctaFree[:n-1]
		cs.warpsLeft, cs.sm = warps, s
		return cs
	}
	return &ctaState{warpsLeft: warps, sm: s}
}

// newWarp takes a warp from the pool (or allocates one, binding its
// continuation closures exactly once) and resets it for prog.
func (g *GPU) newWarp(prog WarpProgram, s *sm, cs *ctaState) *warp {
	var w *warp
	if n := len(g.warpFree); n > 0 {
		w = g.warpFree[n-1]
		g.warpFree = g.warpFree[:n-1]
		w.instr = Instr{}
		w.nsec = 0
		w.outstanding = 0
		w.readyAt = 0
	} else {
		w = &warp{}
		w.stepFn = func() { g.step(w) }
		w.memFn = func() { g.issueMemory(w) }
		w.sectorFn = func() { g.sectorDone(w) }
		w.finishFn = func() { g.finishWarp(w) }
	}
	w.prog, w.sm, w.cta = prog, s, cs
	return w
}

// pickSM returns the least-loaded SM with room for one more CTA of the
// current kernel, or nil.
func (g *GPU) pickSM() *sm {
	var best *sm
	for i := range g.sms {
		s := &g.sms[i]
		if s.residentCTAs >= g.cfg.MaxCTAsPerSM {
			continue
		}
		if s.residentWarps+g.kernel.WarpsPerCTA > g.cfg.MaxWarpsPerSM {
			continue
		}
		if best == nil || s.residentWarps < best.residentWarps {
			best = s
		}
	}
	return best
}

// step advances a ready warp: it consumes pure-compute instructions in
// bulk, reserves SM issue time, and schedules the next memory issue or
// retirement.
//
//sim:hotpath
func (g *GPU) step(w *warp) {
	var computeCycles uint64
	for {
		if !w.prog.Next(&w.instr) {
			g.retire(w, computeCycles)
			return
		}
		g.st.Instructions++
		computeCycles += w.instr.Compute
		if w.instr.NumAddrs > 0 {
			g.st.MemInstructions++
			break
		}
	}
	// Coalesce lanes into unique 128B sectors now; the issue reservation
	// includes one LSU cycle per sector, so divergent instructions pay
	// for their fragmentation.
	g.coalesce(w)
	issue := computeCycles + uint64(w.nsec)
	end := g.reserve(w.sm, issue)
	g.eng.At(end, w.memFn)
}

// reserve occupies the SM issue port for cycles and returns the end time.
//
//sim:hotpath
func (g *GPU) reserve(s *sm, cycles uint64) sim.Cycle {
	start := g.eng.Now()
	if s.freeAt > start {
		start = s.freeAt
	}
	end := start + sim.Cycle(cycles)
	s.freeAt = end
	return end
}

// coalesce fills w.sectors[:w.nsec] with the unique sector addresses of
// the current instruction, in ascending order. The masking pass writes
// straight into the warp's sectors scratch and tracks whether the lanes
// arrived already sorted — unit-stride and broadcast patterns, the
// overwhelming majority — so the insertion sort runs only for genuinely
// divergent warps. n is at most 32, so even that path beats sort.Slice
// while allocating nothing.
//
//sim:hotpath
func (g *GPU) coalesce(w *warp) {
	n := w.instr.NumAddrs
	if n > MaxLanes {
		panic(fmt.Sprintf("gpu: instruction with %d lanes", n))
	}
	// Single pass: mask each lane to its sector, drop duplicates of the
	// previous kept sector (safe pre-sort: it only removes multiset
	// duplicates), and track whether the kept sequence is ascending. A
	// sorted sequence with adjacent duplicates removed is already the
	// unique sorted set, so the common case finishes here.
	s := w.sectors[:]
	sorted := true
	k := 0
	for i := 0; i < n; i++ {
		b := w.instr.Addrs[i] &^ (memunits.SectorSize - 1)
		if k > 0 {
			if b == s[k-1] {
				continue
			}
			if b < s[k-1] {
				sorted = false
			}
		}
		s[k] = b
		k++
	}
	if !sorted {
		for i := 1; i < k; i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		u := 0
		for i := 0; i < k; i++ {
			if i > 0 && s[i] == s[u-1] {
				continue
			}
			s[u] = s[i]
			u++
		}
		k = u
	}
	w.nsec = k
}

// issueMemory sends the coalesced sectors to the memory backend and
// arranges for the warp to resume when the last one completes. The warp
// does not issue another instruction until then, so reading the write
// flag from w.instr here matches capturing it at schedule time.
//
// Sectors leave the coalescer sorted, so sectors of the same 64KB block
// are consecutive; multi-sector runs go to the backend's dense-run
// entry point in one call when it offers one.
//
//sim:hotpath
func (g *GPU) issueMemory(w *warp) {
	write := w.instr.Write
	w.outstanding = 0
	w.readyAt = g.eng.Now()
	w.issuedAt = w.readyAt
	for i := 0; i < w.nsec; {
		j := i + 1
		if g.memRun != nil {
			b := memunits.BlockOf(w.sectors[i])
			for j < w.nsec && memunits.BlockOf(w.sectors[j]) == b {
				j++
			}
			if j > i+1 {
				if at, ok := g.memRun.TryFastAccessRun(w.sectors[i:j], write); ok {
					if at > w.readyAt {
						w.readyAt = at
					}
					i = j
					continue
				}
			}
		}
		for ; i < j; i++ {
			addr := w.sectors[i]
			if at, ok := g.mem.TryFastAccess(addr, write); ok {
				if at > w.readyAt {
					w.readyAt = at
				}
				continue
			}
			w.outstanding++
			g.mem.Access(addr, write, w.sectorFn)
		}
	}
	if w.outstanding == 0 {
		g.resumeAt(w, w.readyAt)
	}
}

// sectorDone is the completion callback for one async sector.
func (g *GPU) sectorDone(w *warp) {
	w.outstanding--
	if w.outstanding < 0 {
		panic("gpu: sector completion underflow")
	}
	if w.outstanding == 0 {
		at := g.eng.Now()
		if w.readyAt > at {
			at = w.readyAt
		}
		if g.obsOn {
			stall := uint64(at - w.issuedAt)
			g.stallCycles.Add(stall)
			g.stallHist.Observe(stall)
		}
		g.resumeAt(w, at)
	}
}

// resumeAt schedules the warp's next step.
//
//sim:hotpath
func (g *GPU) resumeAt(w *warp, at sim.Cycle) {
	now := g.eng.Now()
	if at <= now {
		g.step(w)
		return
	}
	g.eng.At(at, w.stepFn)
}

// retire finishes a warp after its trailing compute cycles.
func (g *GPU) retire(w *warp, trailingCompute uint64) {
	if trailingCompute == 0 {
		g.finishWarp(w)
		return
	}
	end := g.reserve(w.sm, trailingCompute)
	g.eng.At(end, w.finishFn)
}

// finishWarp performs retirement bookkeeping and recycles the warp (and,
// on last retirement, its CTA record) back to the pools.
func (g *GPU) finishWarp(w *warp) {
	g.st.WarpsRetired++
	g.retiredWarps++
	w.sm.residentWarps--
	cta := w.cta
	w.prog, w.sm, w.cta = nil, nil, nil
	g.warpFree = append(g.warpFree, w)
	cta.warpsLeft--
	if cta.warpsLeft == 0 {
		cta.sm.residentCTAs--
		cta.sm = nil
		g.ctaFree = append(g.ctaFree, cta)
		g.dispatchCTAs()
	}
	if g.retiredWarps == g.totalWarps {
		g.finish()
	}
}

// finish completes the running kernel.
func (g *GPU) finish() {
	g.running = false
	if g.onDone != nil {
		g.onDone(g.eng.Now())
	}
}

// CloneFor returns an independent copy of the GPU attached to eng and
// mem (the forked driver), used when forking a simulator at a kernel
// barrier. Only valid between kernels: with no kernel running every
// warp and CTA has retired, so the pools are cold state and the sole
// surviving execution state is each SM's issue-port horizon (freeAt).
func (g *GPU) CloneFor(eng *sim.Engine, cfg config.Config, mem MemoryBackend, st *stats.Counters) (*GPU, error) {
	if g.running {
		return nil, errors.New("gpu: clone while a kernel is running")
	}
	if g.obsOn {
		return nil, errors.New("gpu: clone with observability attached")
	}
	if cfg.NumSMs != g.cfg.NumSMs {
		return nil, errors.New("gpu: clone must preserve the SM count")
	}
	ng := New(eng, cfg, mem, st)
	for i := range g.sms {
		if g.sms[i].residentCTAs != 0 || g.sms[i].residentWarps != 0 {
			return nil, fmt.Errorf("gpu: clone with SM %d occupied", i)
		}
		ng.sms[i].freeAt = g.sms[i].freeAt
	}
	return ng, nil
}
