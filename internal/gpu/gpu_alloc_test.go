package gpu

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

// allocProg replays a fixed stream of divergent memory instructions;
// resettable by setting left, so one program object serves many kernel
// launches without reallocation.
type allocProg struct {
	left int
	base memunits.Addr
}

func (p *allocProg) Next(instr *Instr) bool {
	if p.left == 0 {
		return false
	}
	p.left--
	instr.Compute = 1
	instr.Write = p.left%3 == 0
	instr.NumAddrs = MaxLanes
	for i := 0; i < MaxLanes; i++ {
		// Scrambled lane order with duplicates: exercises the coalescer's
		// insertion-sort fallback and dedup, not just the pre-sorted fast
		// path.
		lane := (i * 7) % MaxLanes
		instr.Addrs[i] = p.base + memunits.Addr(lane/2)*memunits.SectorSize
	}
	return true
}

// fastBackend serves most sectors synchronously and every eighth one
// asynchronously, so both the fast path and the prebound sector
// completion callback run under the allocation counter.
type fastBackend struct{ eng *sim.Engine }

func (b *fastBackend) TryFastAccess(addr memunits.Addr, write bool) (sim.Cycle, bool) {
	if addr/memunits.SectorSize%8 == 0 {
		return 0, false
	}
	return b.eng.Now() + 4, true
}

func (b *fastBackend) Access(addr memunits.Addr, write bool, done func()) {
	b.eng.After(8, done)
}

// runBackendStub adds the dense-run entry point, steering issueMemory
// through its batched same-block slice path.
type runBackendStub struct{ fastBackend }

func (b *runBackendStub) TryFastAccessRun(addrs []memunits.Addr, write bool) (sim.Cycle, bool) {
	return b.eng.Now() + sim.Cycle(len(addrs)), true
}

// runSteadyState launches the same kernel repeatedly on one GPU and
// asserts that, once the warp/CTA pools and the engine arena are warm,
// a whole kernel — dispatch, batched compute, coalescing, memory issue,
// retirement — allocates nothing.
func runSteadyState(t *testing.T, eng *sim.Engine, mem MemoryBackend) {
	t.Helper()
	var st stats.Counters
	g := New(eng, config.Default(), mem, &st)

	progs := make([]*allocProg, 8)
	for i := range progs {
		progs[i] = &allocProg{base: memunits.Addr(i) << 20}
	}
	k := Kernel{
		Name:        "alloc-steady",
		CTAs:        4,
		WarpsPerCTA: 2,
		NewWarp:     func(cta, w int) WarpProgram { return progs[cta*2+w] },
	}
	kernels := 0
	onDone := func(sim.Cycle) { kernels++ }
	run := func() {
		for _, p := range progs {
			p.left = 32
		}
		g.Launch(k, onDone)
		eng.Run()
	}
	run()
	run() // warm the pools and the engine arena

	allocs := testing.AllocsPerRun(50, run)
	if allocs != 0 {
		t.Fatalf("steady-state kernel allocated %.1f times per run, want 0", allocs)
	}
	if kernels < 52 {
		t.Fatalf("only %d kernels completed", kernels)
	}
	if st.MemInstructions == 0 {
		t.Fatal("no memory instructions issued")
	}
}

// TestKernelSteadyStateZeroAllocsPerSector covers the per-sector
// TryFastAccess/Access issue loop.
func TestKernelSteadyStateZeroAllocsPerSector(t *testing.T) {
	eng := sim.NewEngine()
	runSteadyState(t, eng, &fastBackend{eng: eng})
}

// TestKernelSteadyStateZeroAllocsDenseRun covers the batched
// TryFastAccessRun slice path the coalescer feeds with sorted
// same-block sector runs.
func TestKernelSteadyStateZeroAllocsDenseRun(t *testing.T) {
	eng := sim.NewEngine()
	runSteadyState(t, eng, &runBackendStub{fastBackend{eng: eng}})
}
