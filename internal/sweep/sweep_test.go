package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestParallelOrderPreserved(t *testing.T) {
	jobs := make([]func() int, 100)
	for i := range jobs {
		i := i
		jobs[i] = func() int { return i * i }
	}
	got := Parallel(jobs, 8)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	if got := Parallel[int](nil, 4); len(got) != 0 {
		t.Fatalf("empty jobs returned %v", got)
	}
}

func TestParallelSingleWorker(t *testing.T) {
	var order []int
	jobs := make([]func() int, 10)
	for i := range jobs {
		i := i
		jobs[i] = func() int { order = append(order, i); return i }
	}
	Parallel(jobs, 1)
	for i, v := range order {
		if v != i {
			t.Fatal("single worker did not run sequentially")
		}
	}
}

func TestParallelActuallyConcurrent(t *testing.T) {
	var inFlight, peak int64
	jobs := make([]func() bool, 64)
	gate := make(chan struct{})
	for i := range jobs {
		i := i
		jobs[i] = func() bool {
			n := atomic.AddInt64(&inFlight, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			if i < 4 {
				<-gate // first few jobs block until others run
			}
			atomic.AddInt64(&inFlight, -1)
			return true
		}
	}
	done := make(chan struct{})
	go func() {
		Parallel(jobs, 8)
		close(done)
	}()
	// Unblock after the pool has had a chance to spread out.
	for atomic.LoadInt64(&peak) < 2 {
	}
	close(gate)
	<-done
	if atomic.LoadInt64(&peak) < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak)
	}
}

func TestParallelPanicsPropagate(t *testing.T) {
	jobs := []func() int{
		func() int { return 1 },
		func() int { panic("boom") },
		func() int { return 3 },
	}
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Parallel(jobs, 2)
}

// TestParallelPanicNoDeadlock is the regression test for the abort
// path: panicking jobs scattered through a large sweep must neither
// deadlock the remaining workers nor hang Parallel itself.
func TestParallelPanicNoDeadlock(t *testing.T) {
	jobs := make([]func() int, 256)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i%32 == 5 {
				panic("boom")
			}
			return i
		}
	}
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Parallel(jobs, 8)
	}()
	select {
	case r := <-done:
		if r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Parallel deadlocked after a job panicked")
	}
}

// TestParallelPanicValueIdentity asserts the caller receives the
// original panic value, not a copy or wrapper.
func TestParallelPanicValueIdentity(t *testing.T) {
	val := errors.New("original panic value")
	defer func() {
		if r := recover(); r != error(val) {
			t.Fatalf("recovered %v (%T), want the original error value", r, r)
		}
	}()
	Parallel([]func() int{func() int { panic(val) }}, 2)
}

// TestParallelPanicAbortsClaiming pins the abort semantics: once every
// worker has hit a panic, no further jobs are claimed. Two workers run
// two jobs that rendezvous and then panic together; none of the
// remaining jobs may execute.
func TestParallelPanicAbortsClaiming(t *testing.T) {
	var executed int64
	var barrier sync.WaitGroup
	barrier.Add(2)
	rendezvousPanic := func() int {
		barrier.Done()
		barrier.Wait()
		panic("abort")
	}
	jobs := []func() int{rendezvousPanic, rendezvousPanic}
	for i := 0; i < 100; i++ {
		jobs = append(jobs, func() int {
			atomic.AddInt64(&executed, 1)
			return 0
		})
	}
	func() {
		defer func() {
			if r := recover(); r != "abort" {
				t.Fatalf("recovered %v, want abort", r)
			}
		}()
		Parallel(jobs, 2)
	}()
	if n := atomic.LoadInt64(&executed); n != 0 {
		t.Fatalf("%d jobs ran after every worker aborted, want 0", n)
	}
}

func TestGridIndexing(t *testing.T) {
	got := Grid(3, 4, 4, func(r, c int) int { return r*10 + c })
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if got[r][c] != r*10+c {
				t.Fatalf("grid[%d][%d] = %d", r, c, got[r][c])
			}
		}
	}
}

// Property: Parallel returns exactly the same results as sequential
// execution for pure jobs, regardless of worker count.
func TestParallelEquivalenceProperty(t *testing.T) {
	f := func(values []int32, workersRaw uint8) bool {
		workers := int(workersRaw)%8 + 1
		jobs := make([]func() int32, len(values))
		for i := range jobs {
			i := i
			jobs[i] = func() int32 { return values[i] * 3 }
		}
		got := Parallel(jobs, workers)
		for i := range values {
			if got[i] != values[i]*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
