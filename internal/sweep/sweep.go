// Package sweep runs independent simulation jobs in parallel. Every
// simulation in this repository is single-threaded and deterministic, so
// parameter sweeps (a figure's workload x scheme grid) parallelize
// perfectly across cores without affecting results.
package sweep

import (
	"runtime"
	"sync"
)

// Parallel executes every job and returns their results in job order,
// running up to workers jobs concurrently (workers <= 0 selects
// GOMAXPROCS). A panicking job propagates its panic to the caller.
func Parallel[T any](jobs []func() T, workers int) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 1 {
		for i, job := range jobs {
			results[i] = job()
		}
		return results
	}

	type failure struct{ v any }
	var (
		next     int
		mu       sync.Mutex
		wg       sync.WaitGroup
		panicked *failure
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if panicked != nil || next >= len(jobs) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(v any) {
		mu.Lock()
		defer mu.Unlock()
		if panicked == nil {
			panicked = &failure{v}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							fail(r)
						}
					}()
					results[i] = jobs[i]()
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked.v)
	}
	return results
}

// Grid evaluates f over a rows x cols grid in parallel and returns
// results indexed [row][col].
func Grid[T any](rows, cols int, workers int, f func(row, col int) T) [][]T {
	jobs := make([]func() T, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			r, c := r, c
			jobs = append(jobs, func() T { return f(r, c) })
		}
	}
	flat := Parallel(jobs, workers)
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
