// Package sweep runs independent simulation jobs in parallel. Every
// simulation in this repository is single-threaded and deterministic, so
// parameter sweeps (a figure's workload x scheme grid) parallelize
// perfectly across cores without affecting results.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// failure wraps a recovered panic value so that a nil-adjacent value is
// still distinguishable from "no panic".
type failure struct{ v any }

// Parallel executes every job and returns their results in job order,
// running up to workers jobs concurrently (workers <= 0 selects
// GOMAXPROCS).
//
// Jobs are claimed from a single atomic counter, and each worker
// accumulates its results in a private arena that is merged into the
// ordered result slice only after all workers have joined — workers
// never share a cache line mid-sweep, and the output is invariant to
// worker count and scheduling (see TestParallelEquivalenceProperty).
//
// A panicking job aborts the sweep: remaining workers stop claiming new
// jobs, in-flight jobs finish, and the first recovered panic value is
// re-panicked to the caller once every worker has exited (no goroutine
// is leaked and no worker deadlocks).
func Parallel[T any](jobs []func() T, workers int) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 1 {
		for i, job := range jobs {
			results[i] = job()
		}
		return results
	}

	type indexed struct {
		i int
		v T
	}
	var (
		next     atomic.Int64
		aborted  atomic.Bool
		panicked atomic.Pointer[failure]
		wg       sync.WaitGroup
	)
	arenas := make([][]indexed, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := make([]indexed, 0, len(jobs)/workers+1)
			defer func() { arenas[w] = arena }()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				v, ok := runJob(jobs[i], &aborted, &panicked)
				if !ok {
					return
				}
				arena = append(arena, indexed{i: i, v: v})
			}
		}(w)
	}
	wg.Wait()
	if f := panicked.Load(); f != nil {
		panic(f.v)
	}
	for _, arena := range arenas {
		for _, e := range arena {
			results[e.i] = e.v
		}
	}
	return results
}

// runJob executes one job, converting a panic into a sweep abort that
// preserves the first panic value. ok is false when the job panicked.
func runJob[T any](job func() T, aborted *atomic.Bool, panicked *atomic.Pointer[failure]) (v T, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, &failure{v: r})
			aborted.Store(true)
			ok = false
		}
	}()
	return job(), true
}

// Grid evaluates f over a rows x cols grid in parallel and returns
// results indexed [row][col].
func Grid[T any](rows, cols int, workers int, f func(row, col int) T) [][]T {
	jobs := make([]func() T, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			r, c := r, c
			jobs = append(jobs, func() T { return f(r, c) })
		}
	}
	flat := Parallel(jobs, workers)
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
