package stats

import (
	"strings"
	"testing"
)

func valid() Counters {
	return Counters{
		Cycles:           1000,
		NearAccesses:     500,
		RemoteReads:      10,
		RemoteWrites:     5,
		FarFaults:        20,
		FaultBatches:     4,
		MigratedPages:    320,
		PrefetchedPages:  160,
		ThrashedPages:    32,
		EvictedPages:     64,
		WrittenBackPages: 16,
		Instructions:     100,
		MemInstructions:  60,
	}
}

func TestDerived(t *testing.T) {
	c := valid()
	if c.DemandMigratedPages() != 160 {
		t.Fatalf("DemandMigratedPages = %d", c.DemandMigratedPages())
	}
	if c.RemoteAccesses() != 15 {
		t.Fatalf("RemoteAccesses = %d", c.RemoteAccesses())
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	c := valid()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid counters rejected: %v", err)
	}
	var zero Counters
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero counters rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Counters)
		frag string
	}{
		{"prefetch>migrated", func(c *Counters) { c.PrefetchedPages = c.MigratedPages + 1 }, "prefetched"},
		{"thrash>migrated", func(c *Counters) { c.ThrashedPages = c.MigratedPages + 1 }, "thrashed"},
		{"wb>evicted", func(c *Counters) { c.WrittenBackPages = c.EvictedPages + 1 }, "written-back"},
		{"thrash-no-evict", func(c *Counters) { c.EvictedPages = 0; c.WrittenBackPages = 0 }, "thrashing"},
		{"faults-no-batch", func(c *Counters) { c.FaultBatches = 0 }, "batches"},
		{"batches>faults", func(c *Counters) { c.FaultBatches = c.FarFaults + 1 }, "batches"},
		{"mem>instr", func(c *Counters) { c.MemInstructions = c.Instructions + 1 }, "instructions"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c := valid()
			tt.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("invalid counters accepted")
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Fatalf("error %q missing %q", err, tt.frag)
			}
		})
	}
}

func TestString(t *testing.T) {
	c := valid()
	s := c.String()
	for _, frag := range []string{"cycles=1000", "near=500", "remote=15", "migrated=320", "thrash 32", "h2d="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q: %s", frag, s)
		}
	}
}
