// Package stats defines the metric counters collected by a simulation
// run and the derived report used by the experiment harness.
package stats

import (
	"fmt"
	"strings"
)

// Counters aggregates the raw event counts of one run. The UVM driver
// and GPU model increment these; the simulator fills in Cycles at the
// end.
type Counters struct {
	// Cycles is the total kernel execution time in GPU core cycles
	// (host-side phases are not simulated).
	Cycles uint64

	// NearAccesses counts 128B transactions served from device DRAM.
	NearAccesses uint64
	// RemoteReads and RemoteWrites count zero-copy transactions served
	// from host-pinned memory over the interconnect.
	RemoteReads  uint64
	RemoteWrites uint64

	// FarFaults counts basic-block far-faults raised by the GMMU (a
	// block with multiple concurrent faulting warps counts once).
	FarFaults uint64
	// FaultBatches counts driver fault-processing rounds (each costing
	// the 45us handling latency).
	FaultBatches uint64

	// MigratedPages counts 4KB pages copied host-to-device, including
	// prefetches.
	MigratedPages uint64
	// PrefetchedPages is the subset of MigratedPages that moved due to a
	// prefetch decision rather than a demand fault.
	PrefetchedPages uint64
	// ThrashedPages counts 4KB pages migrated host-to-device that had
	// been evicted earlier in the run (re-migrations). This is the
	// quantity Fig. 7 plots.
	ThrashedPages uint64
	// EvictedPages counts 4KB pages evicted from device memory.
	EvictedPages uint64
	// WrittenBackPages is the subset of EvictedPages that were dirty and
	// paid a device-to-host transfer.
	WrittenBackPages uint64

	// H2DBytes and D2HBytes are payload bytes moved per direction
	// (migrations + remote traffic, excluding transaction headers).
	H2DBytes uint64
	D2HBytes uint64

	// TLBHits and TLBMisses count GMMU translation lookups; misses pay
	// the page-walk latency. TLBShootdowns counts translations dropped
	// by eviction.
	TLBHits       uint64
	TLBMisses     uint64
	TLBShootdowns uint64

	// Instructions counts warp instructions issued (compute + memory).
	Instructions uint64
	// MemInstructions counts memory instructions issued.
	MemInstructions uint64
	// WarpsRetired counts warps that ran to completion.
	WarpsRetired uint64
}

// DemandMigratedPages returns pages migrated due to demand faults.
func (c *Counters) DemandMigratedPages() uint64 {
	return c.MigratedPages - c.PrefetchedPages
}

// RemoteAccesses returns the total zero-copy transaction count.
func (c *Counters) RemoteAccesses() uint64 { return c.RemoteReads + c.RemoteWrites }

// Validate checks cross-counter invariants that every correct run must
// satisfy; integration tests call this after each simulation.
func (c *Counters) Validate() error {
	if c.PrefetchedPages > c.MigratedPages {
		return fmt.Errorf("stats: prefetched pages %d exceed migrated pages %d", c.PrefetchedPages, c.MigratedPages)
	}
	if c.ThrashedPages > c.MigratedPages {
		return fmt.Errorf("stats: thrashed pages %d exceed migrated pages %d", c.ThrashedPages, c.MigratedPages)
	}
	if c.WrittenBackPages > c.EvictedPages {
		return fmt.Errorf("stats: written-back pages %d exceed evicted pages %d", c.WrittenBackPages, c.EvictedPages)
	}
	if c.ThrashedPages > 0 && c.EvictedPages == 0 {
		return fmt.Errorf("stats: thrashing without evictions")
	}
	if c.FarFaults > 0 && c.FaultBatches == 0 {
		return fmt.Errorf("stats: faults without batches")
	}
	if c.FaultBatches > c.FarFaults {
		return fmt.Errorf("stats: more batches %d than faults %d", c.FaultBatches, c.FarFaults)
	}
	if c.MemInstructions > c.Instructions {
		return fmt.Errorf("stats: memory instructions %d exceed instructions %d", c.MemInstructions, c.Instructions)
	}
	if c.TLBShootdowns > c.TLBMisses {
		// Every TLB entry was inserted by a miss, so shootdowns cannot
		// outnumber misses.
		return fmt.Errorf("stats: TLB shootdowns %d exceed misses %d", c.TLBShootdowns, c.TLBMisses)
	}
	return nil
}

// String renders a compact human-readable summary.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d near=%d remote=%d(r%d/w%d) faults=%d batches=%d",
		c.Cycles, c.NearAccesses, c.RemoteAccesses(), c.RemoteReads, c.RemoteWrites, c.FarFaults, c.FaultBatches)
	fmt.Fprintf(&b, " migrated=%d(prefetch %d, thrash %d) evicted=%d(wb %d)",
		c.MigratedPages, c.PrefetchedPages, c.ThrashedPages, c.EvictedPages, c.WrittenBackPages)
	fmt.Fprintf(&b, " h2d=%dB d2h=%dB", c.H2DBytes, c.D2HBytes)
	return b.String()
}
