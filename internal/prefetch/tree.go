// Package prefetch implements the CUDA driver's tree-based neighborhood
// prefetcher (paper §II-B, Ganguly et al. ISCA'19) plus two simpler
// ablation prefetchers.
//
// Every 2MB chunk of a managed allocation is a full binary tree whose
// leaves are 64KB basic blocks (32 leaves for a full chunk; a
// power-of-two count for the trailing partial chunk). When a basic block
// migrates, leaf occupancy propagates toward the root; any non-leaf node
// whose subtree occupancy becomes strictly greater than 50% triggers a
// prefetch of all the empty leaves below it, balancing its two children.
// Walking upward from the faulting leaf makes the effective prefetch size
// adaptive, from 64KB up to 1MB.
package prefetch

import (
	"fmt"
	"math/bits"
	"sort"

	"uvmsim/internal/config"
)

// Tree tracks 64KB-leaf occupancy for one chunk.
type Tree struct {
	n      int    // number of leaves, power of two, >= 1
	leaves uint64 // occupancy bitmap (n <= 64; chunks have at most 32 leaves)
}

// NewTree creates a tree over n leaves; n must be a power of two in
// [1, 64].
func NewTree(n int) *Tree {
	if n < 1 || n > 64 || n&(n-1) != 0 {
		panic(fmt.Sprintf("prefetch: invalid leaf count %d", n))
	}
	return &Tree{n: n}
}

// Leaves returns the leaf count.
func (t *Tree) Leaves() int { return t.n }

// Occupied reports whether leaf i is resident.
func (t *Tree) Occupied(i int) bool {
	t.check(i)
	return t.leaves&(1<<uint(i)) != 0
}

// OccupiedCount returns the number of resident leaves.
func (t *Tree) OccupiedCount() int { return bits.OnesCount64(t.leaves) }

// Full reports whether every leaf is resident. The 2MB eviction policy
// only considers fully populated chunks (paper §II-C).
func (t *Tree) Full() bool {
	if t.n == 64 {
		return t.leaves == ^uint64(0)
	}
	return t.leaves == 1<<uint(t.n)-1
}

// MarkOccupied sets leaf i resident without running the prefetch
// heuristic (used when landing prefetched blocks and by tests).
func (t *Tree) MarkOccupied(i int) {
	t.check(i)
	t.leaves |= 1 << uint(i)
}

// MarkEmpty clears leaf i (64KB-granularity eviction).
func (t *Tree) MarkEmpty(i int) {
	t.check(i)
	t.leaves &^= 1 << uint(i)
}

// Clear empties the whole tree (2MB-granularity eviction).
func (t *Tree) Clear() { t.leaves = 0 }

func (t *Tree) check(i int) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("prefetch: leaf %d out of range [0,%d)", i, t.n))
	}
}

// countRange returns the number of occupied leaves in [lo, lo+span).
func (t *Tree) countRange(lo, span int) int {
	var mask uint64
	if span == 64 {
		mask = ^uint64(0)
	} else {
		mask = (1<<uint(span) - 1) << uint(lo)
	}
	return bits.OnesCount64(t.leaves & mask)
}

// OnMigrate marks leaf i resident and runs the tree heuristic: walking
// from the leaf's parent toward the root, any node whose occupancy is
// strictly greater than half its span prefetches every empty leaf under
// it. The returned slice lists the extra leaves to prefetch (already
// marked occupied, in ascending order); it is empty when no node
// tripped.
func (t *Tree) OnMigrate(i int) []int {
	t.check(i)
	t.leaves |= 1 << uint(i)
	var extra []int
	for span := 2; span <= t.n; span *= 2 {
		lo := i / span * span
		occ := t.countRange(lo, span)
		if occ*2 <= span || occ == span {
			continue
		}
		for j := lo; j < lo+span; j++ {
			if t.leaves&(1<<uint(j)) == 0 {
				t.leaves |= 1 << uint(j)
				extra = append(extra, j)
			}
		}
	}
	// Wider spans append lower-numbered leaves after narrower spans did;
	// callers rely on ascending order.
	sort.Ints(extra)
	return extra
}

// Chunk ties a Tree to the prefetcher kind chosen in the configuration
// and answers the single question the UVM driver asks on a far-fault:
// which basic blocks of this chunk should migrate together?
type Chunk struct {
	kind config.PrefetcherKind
	tree *Tree
}

// NewChunk creates the per-chunk prefetch state for a chunk of n 64KB
// blocks.
func NewChunk(kind config.PrefetcherKind, n int) *Chunk {
	return &Chunk{kind: kind, tree: NewTree(n)}
}

// Tree exposes the underlying occupancy tree (for eviction bookkeeping).
func (c *Chunk) Tree() *Tree { return c.tree }

// Clone returns an independent deep copy of the chunk's prefetch state
// (the tree is a value type; the copy shares nothing with the
// original). Simulator forking uses this to duplicate per-chunk
// occupancy at a kernel barrier.
func (c *Chunk) Clone() *Chunk {
	t := *c.tree
	return &Chunk{kind: c.kind, tree: &t}
}

// OnFault records that block i faulted and must migrate. It returns the
// complete ascending list of block indices to migrate now, always
// including i itself; all returned blocks are marked occupied.
func (c *Chunk) OnFault(i int) []int {
	switch c.kind {
	case config.PrefetchNone:
		c.tree.MarkOccupied(i)
		return []int{i}
	case config.PrefetchSequential:
		c.tree.MarkOccupied(i)
		out := []int{i}
		if j := i + 1; j < c.tree.n && !c.tree.Occupied(j) {
			c.tree.MarkOccupied(j)
			out = append(out, j)
		}
		return out
	case config.PrefetchTree:
		extra := c.tree.OnMigrate(i)
		out := make([]int, 0, len(extra)+1)
		inserted := false
		for _, e := range extra {
			if !inserted && e > i {
				out = append(out, i)
				inserted = true
			}
			out = append(out, e)
		}
		if !inserted {
			out = append(out, i)
		}
		return out
	default:
		panic(fmt.Sprintf("prefetch: unknown kind %v", c.kind))
	}
}
