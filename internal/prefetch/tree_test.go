package prefetch

import (
	"sort"
	"testing"
	"testing/quick"

	"uvmsim/internal/config"
)

func TestNewTreeValidation(t *testing.T) {
	for _, n := range []int{1, 2, 4, 32, 64} {
		if got := NewTree(n).Leaves(); got != n {
			t.Errorf("NewTree(%d).Leaves() = %d", n, got)
		}
	}
	for _, n := range []int{0, 3, 33, 128, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTree(%d) did not panic", n)
				}
			}()
			NewTree(n)
		}()
	}
}

func TestMarkAndClear(t *testing.T) {
	tr := NewTree(32)
	tr.MarkOccupied(5)
	tr.MarkOccupied(31)
	if !tr.Occupied(5) || !tr.Occupied(31) || tr.Occupied(6) {
		t.Fatal("occupancy bits wrong")
	}
	if tr.OccupiedCount() != 2 {
		t.Fatalf("OccupiedCount = %d, want 2", tr.OccupiedCount())
	}
	tr.MarkEmpty(5)
	if tr.Occupied(5) {
		t.Fatal("MarkEmpty did not clear")
	}
	tr.Clear()
	if tr.OccupiedCount() != 0 {
		t.Fatal("Clear left leaves")
	}
}

func TestFull(t *testing.T) {
	tr := NewTree(4)
	for i := 0; i < 4; i++ {
		if tr.Full() {
			t.Fatal("tree full before all leaves marked")
		}
		tr.MarkOccupied(i)
	}
	if !tr.Full() {
		t.Fatal("tree not full with all leaves marked")
	}
	t64 := NewTree(64)
	for i := 0; i < 64; i++ {
		t64.MarkOccupied(i)
	}
	if !t64.Full() {
		t.Fatal("64-leaf tree not full")
	}
}

// First touch on an empty tree must not prefetch: every node is at
// exactly 50% or less.
func TestFirstTouchNoPrefetch(t *testing.T) {
	tr := NewTree(32)
	if extra := tr.OnMigrate(7); len(extra) != 0 {
		t.Fatalf("first touch prefetched %v", extra)
	}
	if tr.OccupiedCount() != 1 {
		t.Fatalf("OccupiedCount = %d, want 1", tr.OccupiedCount())
	}
}

// Second touch within a 2-leaf pair: the pair node reaches 2/2 = 100%,
// never "strictly more than 50%" with an empty sibling, so migrating
// leaf 0 then leaf 1 prefetches nothing, but migrating leaf 0 then leaf 2
// pushes the 4-span node to 2/4 = 50% (no prefetch). Leaf 0,2 then 1:
// 4-span occupancy 3/4 > 50% -> prefetch leaf 3.
func TestTreeTriggerAtStrictMajority(t *testing.T) {
	tr := NewTree(4)
	if extra := tr.OnMigrate(0); len(extra) != 0 {
		t.Fatalf("unexpected prefetch %v", extra)
	}
	if extra := tr.OnMigrate(2); len(extra) != 0 {
		t.Fatalf("2/4 occupancy must not trigger, got %v", extra)
	}
	extra := tr.OnMigrate(1)
	if len(extra) != 1 || extra[0] != 3 {
		t.Fatalf("3/4 occupancy should prefetch leaf 3, got %v", extra)
	}
	if !tr.Full() {
		t.Fatal("tree should be full after balancing prefetch")
	}
}

// Dense sequential migration across a 32-leaf chunk: once strictly more
// than half of a subtree is resident the rest arrives in bulk, so a
// linear sweep fully populates the chunk well before 32 individual
// migrations.
func TestSequentialSweepPopulatesEarly(t *testing.T) {
	tr := NewTree(32)
	faults := 0
	for i := 0; i < 32 && !tr.Full(); i++ {
		if !tr.Occupied(i) {
			tr.OnMigrate(i)
			faults++
		}
	}
	if !tr.Full() {
		t.Fatal("sweep did not fill tree")
	}
	if faults >= 32 {
		t.Fatalf("tree prefetcher did not reduce faults: %d", faults)
	}
}

// Paper: prefetch size ranges from 64KB to 1MB — i.e. at most half the
// chunk (16 leaves) arrives due to one migration.
func TestMaxPrefetchIsHalfChunk(t *testing.T) {
	tr := NewTree(32)
	// Occupy leaves 0..15 (= exactly 50% at the root, no trigger).
	for i := 0; i < 16; i++ {
		tr.MarkOccupied(i)
	}
	extra := tr.OnMigrate(16)
	// Root occupancy 17/32 > 50%: prefetch the remaining 15 leaves.
	if len(extra) != 15 {
		t.Fatalf("prefetched %d leaves, want 15 (<= 1MB)", len(extra))
	}
	if !tr.Full() {
		t.Fatal("tree should be full")
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := NewTree(1)
	if extra := tr.OnMigrate(0); len(extra) != 0 {
		t.Fatalf("1-leaf tree prefetched %v", extra)
	}
	if !tr.Full() {
		t.Fatal("1-leaf tree not full after migration")
	}
}

// Property: OnMigrate returns only leaves that were empty before the
// call, never the faulting leaf, all within range, sorted ascending; and
// occupancy afterwards includes the faulting leaf plus the returned set.
func TestOnMigrateContractProperty(t *testing.T) {
	f := func(seedBits uint32, leaf uint8) bool {
		tr := NewTree(32)
		for i := 0; i < 32; i++ {
			if seedBits&(1<<uint(i)) != 0 {
				tr.MarkOccupied(i)
			}
		}
		i := int(leaf) % 32
		before := tr.leaves
		extra := tr.OnMigrate(i)
		if !sort.IntsAreSorted(extra) {
			return false
		}
		for _, e := range extra {
			if e < 0 || e >= 32 || e == i {
				return false
			}
			if before&(1<<uint(e)) != 0 {
				return false // prefetched an already-resident leaf
			}
			if !tr.Occupied(e) {
				return false
			}
		}
		return tr.Occupied(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after any OnMigrate, no non-leaf node is left strictly above
// 50% and below 100% — the heuristic always balances what it trips.
func TestTreeBalancedInvariantProperty(t *testing.T) {
	f := func(seedBits uint32, leaf uint8) bool {
		tr := NewTree(32)
		for i := 0; i < 32; i++ {
			if seedBits&(1<<uint(i)) != 0 {
				tr.MarkOccupied(i)
			}
		}
		tr.OnMigrate(int(leaf) % 32)
		// Check only ancestors of the migrated leaf: other subtrees may
		// legitimately sit above 50% from MarkOccupied seeding.
		i := int(leaf) % 32
		for span := 2; span <= 32; span *= 2 {
			lo := i / span * span
			occ := tr.countRange(lo, span)
			if occ*2 > span && occ != span {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkKinds(t *testing.T) {
	// None: exactly the faulting block.
	c := NewChunk(config.PrefetchNone, 32)
	if got := c.OnFault(9); len(got) != 1 || got[0] != 9 {
		t.Fatalf("None OnFault = %v", got)
	}
	// Sequential: block + next empty block.
	c = NewChunk(config.PrefetchSequential, 32)
	if got := c.OnFault(9); len(got) != 2 || got[0] != 9 || got[1] != 10 {
		t.Fatalf("Sequential OnFault = %v", got)
	}
	if got := c.OnFault(8); len(got) != 1 || got[0] != 8 {
		t.Fatalf("Sequential OnFault with occupied neighbor = %v", got)
	}
	// Sequential at the last block: no neighbor.
	c2 := NewChunk(config.PrefetchSequential, 32)
	if got := c2.OnFault(31); len(got) != 1 || got[0] != 31 {
		t.Fatalf("Sequential OnFault at edge = %v", got)
	}
	// Tree: includes the faulting block in sorted order.
	c = NewChunk(config.PrefetchTree, 4)
	c.OnFault(0)
	c.OnFault(2)
	got := c.OnFault(1)
	want := []int{1, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Tree OnFault = %v, want %v", got, want)
	}
}

func TestChunkTreeAccessor(t *testing.T) {
	c := NewChunk(config.PrefetchTree, 8)
	c.OnFault(3)
	if !c.Tree().Occupied(3) {
		t.Fatal("Tree() does not reflect OnFault")
	}
}
