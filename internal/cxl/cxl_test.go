package cxl

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/learn"
	"uvmsim/internal/obs"
)

func baseScenario(policy string, workers int, seed uint64) ScenarioConfig {
	cfg := config.Default()
	cfg.CXLPoolBytes = 64 << 20
	cfg.PoolPolicy = policy
	return ScenarioConfig{
		Cfg:  cfg,
		GPUs: 2,
		Tenants: []TenantSpec{
			{Workload: "bfs", GPU: 0, Priority: 1},
			{Workload: "sssp", GPU: 0, Priority: 0},
			{Workload: "backprop", GPU: 1, Priority: 1},
		},
		Seed:    seed,
		Workers: workers,
	}
}

func runScenario(t *testing.T, sc ScenarioConfig) *Result {
	t.Helper()
	s, err := NewScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScenarioRunsAndAccounts(t *testing.T) {
	r := runScenario(t, baseScenario("cxl-repl", 1, 7))
	if r.SimCycles == 0 || len(r.Tenants) != 3 {
		t.Fatalf("result = %+v", r)
	}
	var total uint64
	for _, tn := range r.Tenants {
		if tn.Accesses == 0 {
			t.Fatalf("tenant %s made no accesses", tn.Workload)
		}
		if tn.LocalHits+tn.PoolAccesses+tn.CrossAccess != tn.Accesses {
			t.Fatalf("tenant %s: access kinds do not sum: %+v", tn.Workload, tn)
		}
		total += tn.Accesses
	}
	if r.Replications == 0 {
		t.Fatal("read-mostly shared region produced no replications")
	}
	if r.Fairness <= 0 || r.Fairness > 1 {
		t.Fatalf("fairness = %v out of (0,1]", r.Fairness)
	}
}

func TestScenarioByteIdenticalAcrossWorkers(t *testing.T) {
	for _, policy := range []string{"cxl-repl", "cxl-migrate", "pool-remote"} {
		seq := runScenario(t, baseScenario(policy, 1, 42))
		par := runScenario(t, baseScenario(policy, 2, 42))
		if seq.Checksum != par.Checksum || seq.SimCycles != par.SimCycles {
			t.Fatalf("%s: sequential %d/%d != parallel %d/%d",
				policy, seq.SimCycles, seq.Checksum, par.SimCycles, par.Checksum)
		}
	}
}

// TestScenarioReproducibilityProperty is the acceptance-criterion
// property test: randomized tiered scenarios are byte-reproducible —
// the same seed gives the same checksum at any worker count, repeat
// runs are identical, and the run actually depends on the seed.
func TestScenarioReproducibilityProperty(t *testing.T) {
	metaRNG := learn.NewRNG(99)
	policies := []string{"cxl-repl", "cxl-migrate", "pool-remote"}
	workloadsPool := []string{"bfs", "sssp", "ra", "nw", "backprop", "hotspot"}
	seen := make(map[uint64]int)
	for trial := 0; trial < 6; trial++ {
		seed := uint64(1000*trial + metaRNG.Intn(1000) + 1)
		gpus := 2 + metaRNG.Intn(2) // 2..3
		nTenants := 2 + metaRNG.Intn(3)
		var tenants []TenantSpec
		for i := 0; i < nTenants; i++ {
			tenants = append(tenants, TenantSpec{
				Workload: workloadsPool[metaRNG.Intn(len(workloadsPool))],
				GPU:      metaRNG.Intn(gpus),
				Priority: metaRNG.Intn(3),
				Blocks:   uint64(16 + metaRNG.Intn(64)),
			})
		}
		cfg := config.Default()
		cfg.CXLPoolBytes = 64 << 20
		cfg.PoolPolicy = policies[metaRNG.Intn(len(policies))]
		sc := ScenarioConfig{
			Cfg: cfg, GPUs: gpus, Tenants: tenants,
			SharedBlocks:     uint64(32 + metaRNG.Intn(96)),
			Epochs:           4 + metaRNG.Intn(6),
			AccessesPerEpoch: 100 + metaRNG.Intn(300),
			Seed:             seed,
		}
		seqCfg := sc
		seqCfg.Workers = 1
		parCfg := sc
		parCfg.Workers = 2
		seq1 := runScenario(t, seqCfg)
		seq2 := runScenario(t, seqCfg)
		par := runScenario(t, parCfg)
		if seq1.Checksum != seq2.Checksum {
			t.Fatalf("trial %d: repeat run diverged: %d != %d", trial, seq1.Checksum, seq2.Checksum)
		}
		if seq1.Checksum != par.Checksum {
			t.Fatalf("trial %d (%s, %d GPUs, %d tenants): workers=1 checksum %d != workers=2 %d",
				trial, cfg.PoolPolicy, gpus, nTenants, seq1.Checksum, par.Checksum)
		}
		seen[seq1.Checksum]++
	}
	if len(seen) < 2 {
		t.Fatalf("all %d randomized trials produced one checksum — seed is not reaching the run", len(seen))
	}
}

// TestReplicationBeatsNaiveMigration pins the headline claim of
// BENCH_cxl.json: on a co-location scenario with a read-mostly shared
// region, counter-arbitrated replication finishes in fewer simulated
// cycles than naive migrate-on-touch, because the naive policy
// ping-pongs shared blocks between GPUs and serves the loser over PCIe.
func TestReplicationBeatsNaiveMigration(t *testing.T) {
	repl := runScenario(t, baseScenario("cxl-repl", 1, 3))
	naive := runScenario(t, baseScenario("cxl-migrate", 1, 3))
	if repl.SimCycles >= naive.SimCycles {
		t.Fatalf("cxl-repl %d cycles not better than cxl-migrate %d", repl.SimCycles, naive.SimCycles)
	}
	if naive.Promotions == 0 || repl.Replications == 0 {
		t.Fatalf("policies not exercised: repl=%+v naive=%+v", repl, naive)
	}
}

func TestPriorityShieldsTenant(t *testing.T) {
	// Two tenants on one GPU with a tiny device tier: the
	// low-priority tenant must absorb the evictions.
	cfg := config.Default()
	cfg.CXLPoolBytes = 64 << 20
	sc := ScenarioConfig{
		Cfg:  cfg,
		GPUs: 1,
		Tenants: []TenantSpec{
			{Workload: "bfs", GPU: 0, Priority: 2, Blocks: 48},
			{Workload: "ra", GPU: 0, Priority: 0, Blocks: 48},
		},
		DeviceBlocks: 24,
		Seed:         5,
	}
	r := runScenario(t, sc)
	hi, lo := r.Tenants[0], r.Tenants[1]
	if r.Evictions == 0 {
		t.Fatal("tight device tier produced no evictions")
	}
	if hi.EvictedPages > lo.EvictedPages {
		t.Fatalf("high-priority tenant evicted more (%d) than low (%d)", hi.EvictedPages, lo.EvictedPages)
	}
}

func TestScenarioMetricsPublish(t *testing.T) {
	s, err := NewScenario(baseScenario("cxl-repl", 1, 11))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Observe(reg)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Collect()
	if snap.Counter("cxl.replications") == 0 {
		t.Fatal("cxl.replications not published")
	}
	if snap.Counter("cxl.tenant0.accesses") == 0 {
		t.Fatal("tenant counters not published")
	}
	if _, ok := snap.Gauges["cxl.fairness_jain"]; !ok {
		t.Fatal("fairness gauge not published")
	}
	if snap.Counter("cxl.link.gpu0.cxl.h2d.transfers") == 0 {
		t.Fatal("per-GPU link metrics not published")
	}
}

func TestScenarioValidation(t *testing.T) {
	good := baseScenario("cxl-repl", 1, 1)
	cases := []func(*ScenarioConfig){
		func(sc *ScenarioConfig) { sc.GPUs = 0 },
		func(sc *ScenarioConfig) { sc.GPUs = 65 },
		func(sc *ScenarioConfig) { sc.Tenants = nil },
		func(sc *ScenarioConfig) { sc.Tenants[0].Workload = "nope" },
		func(sc *ScenarioConfig) { sc.Tenants[0].GPU = 9 },
		func(sc *ScenarioConfig) { sc.Cfg.PoolPolicy = "bogus" },
	}
	for i, mut := range cases {
		sc := good
		sc.Tenants = append([]TenantSpec(nil), good.Tenants...)
		mut(&sc)
		if _, err := NewScenario(sc); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := ParseTenants("bfs:0:2,sssp:1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Workload != "bfs" || ts[0].GPU != 0 || ts[0].Priority != 2 {
		t.Fatalf("parsed %+v", ts)
	}
	if ts[1].Workload != "sssp" || ts[1].GPU != 1 || ts[1].Priority != 0 {
		t.Fatalf("parsed %+v", ts)
	}
	for _, bad := range []string{"", "bfs", "bfs:9", "bfs:x", "nope:0", "bfs:0:x", "bfs:0:1:2"} {
		if _, err := ParseTenants(bad, 2); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
	ts = []TenantSpec{{Workload: "sssp", GPU: 1}, {Workload: "bfs", GPU: 0}}
	SortTenantsStable(ts)
	if ts[0].Workload != "bfs" {
		t.Fatalf("sort order %+v", ts)
	}
}
