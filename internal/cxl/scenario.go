package cxl

import (
	"fmt"
	"hash/fnv"
	"sort"

	"uvmsim/internal/config"
	"uvmsim/internal/devmem"
	"uvmsim/internal/interconnect"
	"uvmsim/internal/learn"
	"uvmsim/internal/memunits"
	"uvmsim/internal/mm"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/workloads"
)

// TenantSpec describes one co-scheduled tenant: a catalog workload
// identity (which shapes its synthetic access stream), the GPU its
// compute runs on, an eviction priority (higher = more protected) and
// a private working set in 64KB blocks.
type TenantSpec struct {
	Workload string
	GPU      int
	Priority int
	// Blocks is the tenant's private working set in 64KB blocks
	// (0 selects the default).
	Blocks uint64
}

// DefaultTenantBlocks is the private working set used when a spec
// leaves Blocks zero.
const DefaultTenantBlocks = 64

// ScenarioConfig parameterizes one co-location run.
type ScenarioConfig struct {
	// Cfg supplies the machine model: DRAM latency, PCIe link, the CXL
	// port (CXL* fields) and the pool policy name.
	Cfg config.Config
	// GPUs is the number of GPUs sharing the pool (1..64).
	GPUs int
	// Tenants are the co-scheduled streams. At least one; GPU indices
	// must be in range. Tenant ids are positional.
	Tenants []TenantSpec
	// SharedBlocks is the read-mostly region every tenant also touches
	// (the graph/lookup structure co-located workloads share). It is
	// what read-only replication pays off on. 0 selects the default.
	SharedBlocks uint64
	// DeviceBlocks is each GPU's device-tier capacity in blocks.
	// 0 selects a capacity that forces sharing pressure.
	DeviceBlocks uint64
	// Epochs and AccessesPerEpoch size the run. Zero selects defaults.
	Epochs           int
	AccessesPerEpoch int
	// Seed drives every tenant's stream generator. Equal seeds produce
	// byte-identical runs at any worker count.
	Seed uint64
	// Workers selects execution: 0/1 sequential, >=2 the conservative
	// PDES coordinator (clamped to GPUs).
	Workers int
}

// Scenario defaults.
const (
	DefaultSharedBlocks     = 96
	DefaultEpochs           = 12
	DefaultAccessesPerEpoch = 400
	// computeGap is the fixed issue gap between a tenant's accesses.
	computeGap = 20
)

func (sc *ScenarioConfig) normalize() error {
	if sc.GPUs < 1 || sc.GPUs > 64 {
		return fmt.Errorf("cxl: %d GPUs out of range (1..64)", sc.GPUs)
	}
	if len(sc.Tenants) == 0 {
		return fmt.Errorf("cxl: no tenants")
	}
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		if _, ok := workloads.Get(t.Workload); !ok {
			return fmt.Errorf("cxl: tenant %d: unknown workload %q", i, t.Workload)
		}
		if t.GPU < 0 || t.GPU >= sc.GPUs {
			return fmt.Errorf("cxl: tenant %d: GPU %d out of range (0..%d)", i, t.GPU, sc.GPUs-1)
		}
		if t.Blocks == 0 {
			t.Blocks = DefaultTenantBlocks
		}
	}
	if sc.SharedBlocks == 0 {
		sc.SharedBlocks = DefaultSharedBlocks
	}
	if sc.DeviceBlocks == 0 {
		// Half the per-GPU demand: enough to matter, tight enough to
		// keep eviction pressure on.
		var perGPU uint64
		for _, t := range sc.Tenants {
			if t.GPU == 0 {
				perGPU += t.Blocks
			}
		}
		if perGPU == 0 {
			perGPU = DefaultTenantBlocks
		}
		sc.DeviceBlocks = (perGPU + sc.SharedBlocks) / 2
		if sc.DeviceBlocks == 0 {
			sc.DeviceBlocks = 1
		}
	}
	if sc.Epochs == 0 {
		sc.Epochs = DefaultEpochs
	}
	if sc.AccessesPerEpoch == 0 {
		sc.AccessesPerEpoch = DefaultAccessesPerEpoch
	}
	if sc.Workers > sc.GPUs {
		sc.Workers = sc.GPUs
	}
	return nil
}

// tenant is one stream's runtime state. All of it is private to the
// tenant's GPU during an epoch.
type tenant struct {
	spec    TenantSpec
	id      devmem.TenantID
	regular bool
	rng     *learn.RNG
	// base is the tenant's first private pool block; the shared region
	// is [0, sharedBlocks).
	base   uint64
	cursor uint64 // sequential position for regular streams

	accesses     uint64
	localHits    uint64
	poolAccesses uint64
	crossAccess  uint64 // served from another GPU's tier over PCIe
	totalLatency uint64
}

// TenantResult is one tenant's share of a scenario result.
type TenantResult struct {
	Workload     string  `json:"workload"`
	GPU          int     `json:"gpu"`
	Priority     int     `json:"priority"`
	Accesses     uint64  `json:"accesses"`
	LocalHits    uint64  `json:"local_hits"`
	PoolAccesses uint64  `json:"pool_accesses"`
	CrossAccess  uint64  `json:"cross_accesses"`
	AvgLatency   float64 `json:"avg_latency_cycles"`
	PeakPages    uint64  `json:"peak_pages"`
	EvictedPages uint64  `json:"evicted_pages"`
}

// Result is one scenario run's deterministic outcome.
type Result struct {
	SimCycles     uint64         `json:"sim_cycles"`
	Checksum      uint64         `json:"checksum"`
	Fairness      float64        `json:"fairness"`
	Replications  uint64         `json:"replications"`
	Promotions    uint64         `json:"promotions"`
	Demotions     uint64         `json:"demotions"`
	Invalidations uint64         `json:"invalidations"`
	Evictions     uint64         `json:"evictions"`
	Tenants       []TenantResult `json:"tenants"`
}

// Scenario is one constructed co-location run.
type Scenario struct {
	cfg     ScenarioConfig
	ctl     *Controller
	engines []*sim.Engine
	// Per-GPU private links: PCIe to the host fabric and the CXL port
	// into the pool.
	fabrics []*interconnect.Fabric
	tenants []*tenant
	byGPU   [][]*tenant
	logs    [][]request
	reg     *obs.Registry
}

// NewScenario validates and constructs the run.
func NewScenario(sc ScenarioConfig) (*Scenario, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	if err := sc.Cfg.Validate(); err != nil {
		return nil, err
	}
	// Resolve the pool policy up front so an unknown name is an error,
	// not a construction panic.
	if _, err := mm.NewPoolPolicy(sc.Cfg.PoolPolicy, sc.Cfg); err != nil {
		return nil, err
	}
	prio := make([]int, len(sc.Tenants))
	var totalBlocks uint64 = sc.SharedBlocks
	for i, t := range sc.Tenants {
		prio[i] = t.Priority
		totalBlocks += t.Blocks
	}
	s := &Scenario{
		cfg:     sc,
		ctl:     NewController(sc.Cfg, sc.GPUs, totalBlocks, sc.DeviceBlocks, prio),
		engines: make([]*sim.Engine, sc.GPUs),
		fabrics: make([]*interconnect.Fabric, sc.GPUs),
		byGPU:   make([][]*tenant, sc.GPUs),
		logs:    make([][]request, sc.GPUs),
	}
	for g := 0; g < sc.GPUs; g++ {
		eng := sim.NewEngine()
		s.engines[g] = eng
		f := interconnect.NewFabric()
		f.Add("pcie", interconnect.New(eng, sc.Cfg.PCIeBytesPerCycle, sim.Cycle(sc.Cfg.PCIeLatency), sc.Cfg.PCIeHeaderBytes, sc.Cfg.RemoteWirePenalty))
		f.Add("cxl", interconnect.NewCXL(eng, sc.Cfg.CXLPortBytesPerCycle(), sim.Cycle(sc.Cfg.CXLPortLatency()), 0))
		s.fabrics[g] = f
	}
	base := sc.SharedBlocks
	for i, spec := range sc.Tenants {
		t := &tenant{
			spec:    spec,
			id:      devmem.TenantID(i),
			regular: workloads.IsRegular(spec.Workload),
			rng:     learn.NewRNG(sc.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)),
			base:    base,
		}
		base += spec.Blocks
		s.tenants = append(s.tenants, t)
		s.byGPU[spec.GPU] = append(s.byGPU[spec.GPU], t)
	}
	return s, nil
}

// Observe attaches a metrics registry; the scenario publishes controller
// and per-tenant counters plus the fairness gauge at collection time.
func (s *Scenario) Observe(reg *obs.Registry) {
	s.reg = reg
	if reg == nil {
		return
	}
	reg.RegisterProvider(func(e obs.Emitter) {
		e.Counter("cxl.replications", s.ctl.Replications)
		e.Counter("cxl.promotions", s.ctl.Promotions)
		e.Counter("cxl.demotions", s.ctl.Demotions)
		e.Counter("cxl.invalidations", s.ctl.Invalidations)
		e.Counter("cxl.evictions", s.ctl.Evictions)
		for i, t := range s.tenants {
			p := fmt.Sprintf("cxl.tenant%d.", i)
			e.Counter(p+"accesses", t.accesses)
			e.Counter(p+"local_hits", t.localHits)
			e.Counter(p+"pool_accesses", t.poolAccesses)
			e.Counter(p+"cross_accesses", t.crossAccess)
			e.Counter(p+"latency_cycles", t.totalLatency)
		}
		e.Gauge("cxl.fairness_jain", s.fairness())
	})
	for g, f := range s.fabrics {
		prefix := fmt.Sprintf("gpu%d", g)
		for _, name := range f.Names() {
			interconnect.PublishConnMetrics(reg, "cxl.link."+prefix+"."+name, f.MustLink(name))
		}
	}
}

// nextBlock draws the tenant's next block: regular streams walk their
// private range sequentially with periodic shared-region reads;
// irregular streams mix a hot shared set with uniform private access.
func (t *tenant) nextBlock(shared uint64) (block uint64, write bool) {
	if t.regular {
		// 3 of 4 accesses stream through the private range; the rest
		// read the shared structure.
		if t.rng.Intn(4) != 0 {
			b := t.base + t.cursor%t.spec.Blocks
			t.cursor++
			// Streaming writes: every fourth private access stores.
			return b, t.rng.Intn(4) == 0
		}
		return uint64(t.rng.Intn(int(shared))), false
	}
	// Irregular: half the accesses chase the shared structure (reads,
	// with rare updates), half scatter over the private range.
	if t.rng.Intn(2) == 0 {
		// Zipf-ish: concentrate on the first quarter of the shared set.
		n := int(shared)
		b := t.rng.Intn(n)
		if t.rng.Intn(4) != 0 {
			b = t.rng.Intn((n + 3) / 4)
		}
		return uint64(b), t.rng.Intn(50) == 0
	}
	b := t.base + uint64(t.rng.Intn(int(t.spec.Blocks)))
	return b, t.rng.Intn(3) == 0
}

// runEpochStreams schedules every tenant stream of every GPU and drains
// the engines — sequentially or through the coordinator. During the
// drain, controller state is frozen: accesses read it and append to
// per-GPU logs only.
func (s *Scenario) runEpochStreams(co *multigpu.Coordinator) {
	for g := range s.engines {
		gpu := g
		for _, t := range s.byGPU[g] {
			tn := t
			remaining := s.cfg.AccessesPerEpoch
			var step func()
			step = func() {
				if remaining == 0 {
					return
				}
				remaining--
				done := sim.Cycle(0)
				start := s.engines[gpu].Now()
				block, write := tn.nextBlock(s.cfg.SharedBlocks)
				s.logs[gpu] = append(s.logs[gpu], request{block: block, tenant: tn.id, write: write})
				tn.accesses++
				switch home := s.ctl.Home(block); {
				case home == gpu,
					!write && s.ctl.Replicated(block, gpu):
					// Local DRAM hit: promoted here, or a read served
					// by this GPU's replica.
					tn.localHits++
					done = start + sim.Cycle(s.cfg.Cfg.DRAMLatency)
				case home == NoGPU:
					// Pool-resident (a write through a replica also
					// lands here): one CXL transaction.
					tn.poolAccesses++
					dir := interconnect.HostToDevice
					if write {
						dir = interconnect.DeviceToHost
					}
					done = s.fabrics[gpu].MustLink("cxl").RemoteAccess(dir, memunits.SectorSize, nil)
				default:
					// Promoted to another GPU: routed over PCIe through
					// host — the expensive ping-pong path.
					tn.crossAccess++
					dir := interconnect.HostToDevice
					if write {
						dir = interconnect.DeviceToHost
					}
					done = s.fabrics[gpu].MustLink("pcie").RemoteAccess(dir, memunits.SectorSize, nil)
					done += sim.Cycle(s.cfg.Cfg.RemoteAccessLatency)
				}
				tn.totalLatency += uint64(done - start)
				s.engines[gpu].At(done+computeGap, step)
			}
			s.engines[gpu].At(s.engines[gpu].Now()+computeGap, step)
		}
	}
	s.drain(co)
}

// drain empties every engine, in index order sequentially or
// concurrently under the coordinator, then aligns all clocks to the
// barrier (the max engine clock), exactly like the multigpu kernel
// barrier.
func (s *Scenario) drain(co *multigpu.Coordinator) {
	if co != nil {
		co.Drain()
	} else {
		for _, e := range s.engines {
			e.Run()
		}
	}
	var barrier sim.Cycle
	for _, e := range s.engines {
		if e.Now() > barrier {
			barrier = e.Now()
		}
	}
	for _, e := range s.engines {
		e.AdvanceTo(barrier)
	}
}

// Run executes the scenario and returns its deterministic result.
func (s *Scenario) Run() (*Result, error) {
	var co *multigpu.Coordinator
	if s.cfg.Workers >= 2 {
		la := sim.Cycle(1)
		for _, f := range s.fabrics {
			if l := f.Lookahead(); l > la {
				la = l
			}
		}
		// Streams never interact inside an epoch, so any positive
		// lookahead is safe; 2x the slowest link mirrors multigpu.
		co = multigpu.NewCoordinator(s.engines, s.cfg.Workers, 2*la)
		co.Start()
		defer co.Stop()
	}
	var actions []barrierAction
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		s.runEpochStreams(co)
		// Barrier: apply logs in fixed GPU order, then charge the
		// decided transfers and re-drain so DMA completions settle
		// before the next epoch's streams start.
		actions = actions[:0]
		for g := range s.logs {
			actions = s.ctl.Apply(g, uint64(epoch), s.logs[g], actions)
			s.logs[g] = s.logs[g][:0]
		}
		for _, a := range actions {
			// Replica and promotion fills arrive over the target GPU's
			// CXL port; a demotion rode the port the other way first.
			link := s.fabrics[a.gpu].MustLink("cxl")
			if a.demoted {
				link.Transfer(interconnect.DeviceToHost, memunits.BlockSize, nil)
			}
			link.Transfer(interconnect.HostToDevice, memunits.BlockSize, nil)
		}
		if len(actions) > 0 {
			s.drain(co)
		}
		if err := s.ctl.check(); err != nil {
			return nil, err
		}
	}
	return s.result(), nil
}

// fairness is Jain's index over per-tenant service rates (inverse mean
// access latency): 1.0 when every tenant sees equal service, 1/n when
// one tenant monopolizes.
func (s *Scenario) fairness() float64 {
	var sum, sumSq float64
	n := 0
	for _, t := range s.tenants {
		if t.accesses == 0 {
			continue
		}
		x := float64(t.accesses) / float64(t.totalLatency+1)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// result assembles the Result including the run checksum.
func (s *Scenario) result() *Result {
	r := &Result{
		Fairness:      s.fairness(),
		Replications:  s.ctl.Replications,
		Promotions:    s.ctl.Promotions,
		Demotions:     s.ctl.Demotions,
		Invalidations: s.ctl.Invalidations,
		Evictions:     s.ctl.Evictions,
	}
	for _, e := range s.engines {
		if uint64(e.Now()) > r.SimCycles {
			r.SimCycles = uint64(e.Now())
		}
	}
	for _, t := range s.tenants {
		tr := TenantResult{
			Workload:     t.spec.Workload,
			GPU:          t.spec.GPU,
			Priority:     t.spec.Priority,
			Accesses:     t.accesses,
			LocalHits:    t.localHits,
			PoolAccesses: t.poolAccesses,
			CrossAccess:  t.crossAccess,
			PeakPages:    s.ctl.Accounts(t.spec.GPU).Peak(t.id),
			EvictedPages: s.ctl.Accounts(t.spec.GPU).Evicted(t.id),
		}
		if t.accesses > 0 {
			tr.AvgLatency = float64(t.totalLatency) / float64(t.accesses)
		}
		r.Tenants = append(r.Tenants, tr)
	}
	r.Checksum = r.checksum()
	return r
}

// checksum folds every deterministic field into one FNV-64a digest —
// the byte-reproducibility witness the property tests and the CI
// co-location smoke compare.
func (r *Result) checksum() uint64 {
	h := fnv.New64a()
	w := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w(r.SimCycles)
	w(r.Replications)
	w(r.Promotions)
	w(r.Demotions)
	w(r.Invalidations)
	w(r.Evictions)
	for _, t := range r.Tenants {
		w(t.Accesses)
		w(t.LocalHits)
		w(t.PoolAccesses)
		w(t.CrossAccess)
		w(t.PeakPages)
		w(t.EvictedPages)
	}
	return h.Sum64()
}

// ParseTenants parses a CLI tenant list: comma-separated
// "workload:gpu[:priority]" entries, e.g. "bfs:0:1,sssp:0:0".
func ParseTenants(spec string, gpus int) ([]TenantSpec, error) {
	if spec == "" {
		return nil, fmt.Errorf("cxl: empty tenant spec")
	}
	var out []TenantSpec
	for _, field := range splitComma(spec) {
		parts := splitColon(field)
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("cxl: tenant %q: want workload:gpu[:priority]", field)
		}
		t := TenantSpec{Workload: parts[0]}
		if _, ok := workloads.Get(t.Workload); !ok {
			return nil, fmt.Errorf("cxl: unknown workload %q (want one of %v)", t.Workload, workloads.Names())
		}
		g, err := parseInt(parts[1])
		if err != nil || g < 0 || g >= gpus {
			return nil, fmt.Errorf("cxl: tenant %q: bad GPU %q (0..%d)", field, parts[1], gpus-1)
		}
		t.GPU = g
		if len(parts) == 3 {
			p, err := parseInt(parts[2])
			if err != nil {
				return nil, fmt.Errorf("cxl: tenant %q: bad priority %q", field, parts[2])
			}
			t.Priority = p
		}
		out = append(out, t)
	}
	return out, nil
}

func splitComma(s string) []string { return splitOn(s, ',') }
func splitColon(s string) []string { return splitOn(s, ':') }

func splitOn(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func parseInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("not a number")
		}
		n = n*10 + int(s[i]-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("too large")
		}
	}
	return n, nil
}

// SortTenantsStable orders specs by (GPU, workload, priority) — the
// canonical order CLI layers use so equivalent specs hash identically.
func SortTenantsStable(ts []TenantSpec) {
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].GPU != ts[j].GPU {
			return ts[i].GPU < ts[j].GPU
		}
		if ts[i].Workload != ts[j].Workload {
			return ts[i].Workload < ts[j].Workload
		}
		return ts[i].Priority < ts[j].Priority
	})
}
