// Package cxl models a CXL-attached pooled memory tier shared by
// multiple GPUs, with the page-controller semantics sketched in
// SNIPPETS.md's cxl_page_controller: per-GPU read/write access
// counters, read-only replication of read-hot blocks into GPU device
// tiers with invalidation-on-write, and counter-arbitrated promotion
// of hot pooled blocks to the GPU that wins the agreement. On top of
// the controller it runs co-location scenarios — multiple tenants
// (catalog workloads) sharing GPU device memory with per-tenant page
// accounting, priority-aware eviction and a fairness metric — under
// either a sequential barrier loop or the conservative-PDES
// coordinator from internal/multigpu, byte-identically.
//
// The pool operates at the driver's 64KB basic-block granularity.
// Controller state is mutated only at epoch barriers, in fixed GPU
// order; during an epoch every GPU reads a frozen view and appends to
// its private request log, which is what makes the parallel execution
// race-free and byte-identical to the sequential one.
package cxl

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/counters"
	"uvmsim/internal/devmem"
	"uvmsim/internal/memunits"
	"uvmsim/internal/mm"
	"uvmsim/internal/tier"
)

// NoGPU marks a block as pool-resident (not promoted to any GPU).
const NoGPU = -1

// blockMeta is the controller's per-block state.
type blockMeta struct {
	// home is NoGPU while the block lives in the pool, else the dense
	// id of the GPU holding it exclusively.
	home int
	// replicas is the bitmask of GPUs holding a read-only replica.
	// Non-zero only while home == NoGPU: promotion invalidates.
	replicas uint64
	// lastEpoch stamps the last epoch the block was touched (victim
	// recency for priority-aware eviction).
	lastEpoch uint64
}

// resEntry is one frame of a GPU's device tier as the controller sees
// it: a promoted block or a replica, charged to a tenant.
type resEntry struct {
	block   uint64
	tenant  devmem.TenantID
	replica bool
}

// Controller owns the pooled tier: block residency and replica state,
// the per-GPU counter file, the per-GPU device-tier frame pools with
// tenant accounting, and the pluggable arbitration policy.
type Controller struct {
	gpus   int
	blocks uint64
	meta   []blockMeta
	ctrs   *counters.PerGPU
	policy mm.PoolPolicy

	mem      *devmem.Tiered
	gpuTiers []tier.Index
	poolTier tier.Index
	accounts []*devmem.Accounts // per GPU
	resident [][]resEntry       // per GPU, unordered; scanned for victims
	// prio maps tenant id -> priority (higher = protected).
	prio []int

	// Stats (monotonic, deterministic).
	Replications  uint64 // read-only replicas granted
	Promotions    uint64 // exclusive migrations to a GPU
	Demotions     uint64 // promoted blocks pushed back to the pool
	Invalidations uint64 // replicas dropped by a write
	Evictions     uint64 // frames reclaimed by capacity pressure
}

// NewController builds a controller for gpus GPUs over blocks pool
// blocks, with per-GPU device tiers of devBlocks frames each. prio
// maps tenant ids to priorities. The topology it derives — host, one
// device tier per GPU, one pool tier — is validated by tier.New.
func NewController(cfg config.Config, gpus int, blocks, devBlocks uint64, prio []int) *Controller {
	if gpus < 1 || gpus > 64 {
		panic(fmt.Sprintf("cxl: %d GPUs (replica mask is 64 bits)", gpus))
	}
	if blocks == 0 || devBlocks == 0 {
		panic("cxl: zero pool or device capacity")
	}
	poolBytes := blocks * memunits.BlockSize
	if cfg.CXLPoolBytes > poolBytes {
		poolBytes = cfg.CXLPoolBytes
	}
	specs := []tier.Spec{{Name: "host", Kind: tier.Host}}
	for g := 0; g < gpus; g++ {
		specs = append(specs, tier.Spec{
			Name: fmt.Sprintf("gpu%d", g), Kind: tier.Device,
			CapacityBytes: devBlocks * memunits.BlockSize,
			LatencyCycles: cfg.DRAMLatency,
		})
	}
	specs = append(specs, tier.Spec{
		Name: "cxl-pool", Kind: tier.Pool,
		CapacityBytes: poolBytes,
		LatencyCycles: cfg.CXLPortLatency(),
		BytesPerCycle: cfg.CXLPortBytesPerCycle(),
	})
	topo := tier.MustNew(specs...)
	pol, err := mm.NewPoolPolicy(cfg.PoolPolicy, cfg)
	if err != nil {
		panic(fmt.Sprintf("cxl: %v", err))
	}
	c := &Controller{
		gpus:     gpus,
		blocks:   blocks,
		meta:     make([]blockMeta, blocks),
		ctrs:     counters.NewPerGPU(gpus),
		policy:   pol,
		mem:      devmem.NewTiered(topo),
		gpuTiers: topo.Devices(),
		accounts: make([]*devmem.Accounts, gpus),
		resident: make([][]resEntry, gpus),
		prio:     append([]int(nil), prio...),
	}
	for i := range c.meta {
		c.meta[i].home = NoGPU
	}
	pt, ok := topo.PoolTier()
	if !ok {
		panic("cxl: topology lost its pool tier")
	}
	c.poolTier = pt
	// Every block starts pool-resident.
	c.mem.Pool(pt).Allocate(blocks * memunits.PagesPerBlock)
	for g := 0; g < gpus; g++ {
		c.accounts[g] = devmem.NewAccounts(len(prio))
	}
	return c
}

// Topology returns the controller's derived tier topology.
func (c *Controller) Topology() tier.Topology { return c.mem.Topology() }

// Counters exposes the per-GPU counter file.
func (c *Controller) Counters() *counters.PerGPU { return c.ctrs }

// Accounts returns GPU g's per-tenant page accounting.
func (c *Controller) Accounts(g int) *devmem.Accounts { return c.accounts[g] }

// Policy returns the arbitration policy in use.
func (c *Controller) Policy() mm.PoolPolicy { return c.policy }

// Home returns where the block lives: NoGPU for the pool, else the GPU.
func (c *Controller) Home(block uint64) int { return c.meta[block].home }

// Replicated reports whether the GPU holds a read-only replica.
//
//sim:hotpath
func (c *Controller) Replicated(block uint64, gpu int) bool {
	return c.meta[block].replicas&(1<<uint(gpu)) != 0
}

// request is one logged access, applied at the epoch barrier.
type request struct {
	block  uint64
	tenant devmem.TenantID
	write  bool
}

// barrierAction is what Apply decided for one request — the transfer
// the scenario must charge to a link at the barrier.
type barrierAction struct {
	gpu     int
	block   uint64
	kind    mm.PoolDecision // PoolReplicate or PoolPromote
	demoted bool            // a victim demotion rode along (extra D2H)
}

// Apply processes one GPU's epoch request log at the barrier: bumps the
// per-GPU counters, enforces invalidation-on-write, consults the policy
// and executes its decisions against the frame pools. It returns the
// resulting transfer actions for the scenario to charge. Apply must be
// called with all engines parked, in fixed GPU order — it is the only
// mutation point of controller state.
func (c *Controller) Apply(gpu int, epoch uint64, reqs []request, actions []barrierAction) []barrierAction {
	for _, r := range reqs {
		m := &c.meta[r.block]
		m.lastEpoch = epoch
		if r.write {
			c.ctrs.NoteWrite(r.block, gpu)
			// A write invalidates every read-only replica wherever it
			// is served from (pool write-through or remote store into a
			// promoted block).
			if m.replicas != 0 {
				c.invalidate(r.block)
			}
		} else {
			c.ctrs.NoteRead(r.block, gpu)
		}
		if m.home != NoGPU {
			// Promoted blocks are out of the pool; the policy only
			// arbitrates pool-resident blocks. (A promoted block
			// returns via eviction-demotion.)
			continue
		}
		d := c.policy.Decide(mm.PoolAccess{
			Block: r.block, GPU: gpu, Write: r.write,
			Replicated: c.Replicated(r.block, gpu),
		}, c.ctrs)
		switch d {
		case mm.PoolRemote:
		case mm.PoolReplicate:
			if c.Replicated(r.block, gpu) {
				break // already holding one
			}
			demoted := c.takeFrame(gpu, resEntry{block: r.block, tenant: r.tenant, replica: true})
			m.replicas |= 1 << uint(gpu)
			c.Replications++
			actions = append(actions, barrierAction{gpu: gpu, block: r.block, kind: mm.PoolReplicate, demoted: demoted})
		case mm.PoolPromote:
			// Promotion invalidates replicas everywhere and moves the
			// block out of the pool into the winner's tier.
			if m.replicas != 0 {
				c.invalidate(r.block)
			}
			demoted := c.takeFrame(gpu, resEntry{block: r.block, tenant: r.tenant})
			m.home = gpu
			c.mem.Pool(c.poolTier).Release(memunits.PagesPerBlock)
			c.Promotions++
			actions = append(actions, barrierAction{gpu: gpu, block: r.block, kind: mm.PoolPromote, demoted: demoted})
		}
	}
	return actions
}

// invalidate drops every replica of the block, releasing the frames.
func (c *Controller) invalidate(block uint64) {
	m := &c.meta[block]
	for g := 0; g < c.gpus; g++ {
		if m.replicas&(1<<uint(g)) == 0 {
			continue
		}
		c.dropEntry(g, block, true)
		c.Invalidations++
	}
	m.replicas = 0
}

// takeFrame charges one device-tier frame on the GPU to the entry's
// tenant, evicting victims first when the tier is full. It reports
// whether a promoted block was demoted to make room (an extra
// device-to-pool transfer the barrier must charge).
func (c *Controller) takeFrame(gpu int, e resEntry) (demoted bool) {
	pool := c.mem.Pool(c.gpuTiers[gpu])
	for !pool.CanAllocate(memunits.PagesPerBlock) {
		if c.evictVictim(gpu) {
			demoted = true
		}
	}
	pool.Allocate(memunits.PagesPerBlock)
	c.accounts[gpu].Charge(e.tenant, memunits.PagesPerBlock)
	c.resident[gpu] = append(c.resident[gpu], e)
	return demoted
}

// evictVictim reclaims one frame on the GPU, priority-aware: the victim
// is the entry whose tenant has the lowest priority, breaking ties by
// oldest last-touch epoch, then lowest block number — a deterministic
// total order. Replica victims just drop; promoted victims demote back
// to the pool (the caller charges the transfer). Reports whether the
// victim was a promoted block.
func (c *Controller) evictVictim(gpu int) (wasPromoted bool) {
	res := c.resident[gpu]
	if len(res) == 0 {
		panic(fmt.Sprintf("cxl: gpu%d device tier full with no resident entries", gpu))
	}
	best := 0
	for i := 1; i < len(res); i++ {
		bi, bb := res[i], res[best]
		pi, pb := c.prio[bi.tenant], c.prio[bb.tenant]
		li, lb := c.meta[bi.block].lastEpoch, c.meta[bb.block].lastEpoch
		if pi < pb || (pi == pb && (li < lb || (li == lb && bi.block < bb.block))) {
			best = i
		}
	}
	v := res[best]
	c.Evictions++
	if v.replica {
		c.meta[v.block].replicas &^= 1 << uint(gpu)
		c.removeEntry(gpu, best)
		c.releaseFrame(gpu, v.tenant)
		return false
	}
	// Demote the promoted block back to the pool.
	c.meta[v.block].home = NoGPU
	c.mem.Pool(c.poolTier).Allocate(memunits.PagesPerBlock)
	c.Demotions++
	c.removeEntry(gpu, best)
	c.releaseFrame(gpu, v.tenant)
	return true
}

// dropEntry removes the GPU's entry for the block (replica match only
// when replica is set) and releases its frame.
func (c *Controller) dropEntry(gpu int, block uint64, replica bool) {
	res := c.resident[gpu]
	for i := range res {
		if res[i].block == block && res[i].replica == replica {
			t := res[i].tenant
			c.removeEntry(gpu, i)
			c.releaseFrame(gpu, t)
			return
		}
	}
	panic(fmt.Sprintf("cxl: gpu%d has no entry for block %d (replica=%v)", gpu, block, replica))
}

// removeEntry deletes index i from the GPU's resident list, preserving
// order so victim scans stay deterministic.
func (c *Controller) removeEntry(gpu, i int) {
	res := c.resident[gpu]
	c.resident[gpu] = append(res[:i], res[i+1:]...)
}

func (c *Controller) releaseFrame(gpu int, t devmem.TenantID) {
	c.mem.Pool(c.gpuTiers[gpu]).Release(memunits.PagesPerBlock)
	c.accounts[gpu].Release(t, memunits.PagesPerBlock, true)
}

// check validates frame accounting against the meta table; the
// scenario calls it at barriers when invariants are enabled.
func (c *Controller) check() error {
	var promoted, replicas uint64
	perGPU := make([]uint64, c.gpus)
	for b := range c.meta {
		m := &c.meta[b]
		if m.home != NoGPU {
			if m.replicas != 0 {
				return fmt.Errorf("cxl: block %d promoted with live replicas", b)
			}
			promoted++
			perGPU[m.home]++
		}
		for g := 0; g < c.gpus; g++ {
			if m.replicas&(1<<uint(g)) != 0 {
				replicas++
				perGPU[g]++
			}
		}
	}
	poolPages := (c.blocks - promoted) * memunits.PagesPerBlock
	if got := c.mem.Pool(c.poolTier).AllocatedPages(); got != poolPages {
		return fmt.Errorf("cxl: pool accounts %d pages, meta says %d", got, poolPages)
	}
	for g := 0; g < c.gpus; g++ {
		want := perGPU[g] * memunits.PagesPerBlock
		if got := c.mem.Pool(c.gpuTiers[g]).AllocatedPages(); got != want {
			return fmt.Errorf("cxl: gpu%d accounts %d pages, meta says %d", g, got, want)
		}
		if got := uint64(len(c.resident[g])); got != perGPU[g] {
			return fmt.Errorf("cxl: gpu%d resident list %d entries, meta says %d", g, got, perGPU[g])
		}
	}
	_ = replicas
	return nil
}
