// Package cliutil provides the flag-value parsing shared by the
// command-line tools: policy, replacement, prefetcher, eviction
// granularity and architecture preset names.
package cliutil

import (
	"fmt"
	"strings"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
)

// ParsePolicy maps a user-facing policy name to the enum. "baseline" is
// accepted as an alias for "disabled".
func ParsePolicy(s string) (config.MigrationPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "disabled", "baseline":
		return config.PolicyDisabled, nil
	case "always":
		return config.PolicyAlways, nil
	case "oversub":
		return config.PolicyOversub, nil
	case "adaptive":
		return config.PolicyAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want disabled, always, oversub, adaptive)", s)
	}
}

// ParseReplacement maps a replacement-policy name; empty means "use the
// paper pairing for the chosen migration policy" and returns ok=false.
func ParseReplacement(s string) (config.ReplacementPolicy, bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return 0, false, nil
	case "lru":
		return config.ReplaceLRU, true, nil
	case "lfu":
		return config.ReplaceLFU, true, nil
	default:
		return 0, false, fmt.Errorf("unknown replacement policy %q (want lru, lfu)", s)
	}
}

// ParsePrefetcher maps a prefetcher name.
func ParsePrefetcher(s string) (config.PrefetcherKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tree":
		return config.PrefetchTree, nil
	case "none":
		return config.PrefetchNone, nil
	case "sequential", "seq":
		return config.PrefetchSequential, nil
	default:
		return 0, fmt.Errorf("unknown prefetcher %q (want tree, none, sequential)", s)
	}
}

// ParseGranularity maps an eviction-granularity name.
func ParseGranularity(s string) (uint64, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "2m", "2mb":
		return memunits.ChunkSize, nil
	case "64k", "64kb":
		return memunits.BlockSize, nil
	default:
		return 0, fmt.Errorf("unknown eviction granularity %q (want 2m, 64k)", s)
	}
}

// ParseAdvice maps a cudaMemAdvise-style hint name used by the hints
// tooling.
func ParseAdvice(s string) (string, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	switch v {
	case "none", "preferhost", "pinhost":
		return v, nil
	default:
		return "", fmt.Errorf("unknown advice %q (want none, preferhost, pinhost)", s)
	}
}

// ParseOnOff maps an on/off flag value to a bool. name is the flag
// name used in the error message.
func ParseOnOff(name, s string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "on":
		return true, nil
	case "off":
		return false, nil
	default:
		return false, fmt.Errorf("invalid -%s %q (want on or off)", name, s)
	}
}

// ParseComponentName validates a registry-backed pipeline component
// name (see internal/mm) against the registered set. Empty means "use
// the configuration default" and passes through unchanged; non-empty
// names are case-insensitive and must be registered. kind names the
// flag in the error message.
func ParseComponentName(kind, s string, registered []string) (string, error) {
	if s == "" {
		return "", nil
	}
	v := strings.ToLower(strings.TrimSpace(s))
	for _, n := range registered {
		if v == n {
			return v, nil
		}
	}
	return "", fmt.Errorf("unknown %s %q (have %s)", kind, s, strings.Join(registered, ", "))
}

// SplitList splits a comma-separated list, trimming blanks and dropping
// empty entries.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
