package cliutil

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]config.MigrationPolicy{
		"disabled": config.PolicyDisabled,
		"baseline": config.PolicyDisabled,
		"Always":   config.PolicyAlways,
		" oversub": config.PolicyOversub,
		"ADAPTIVE": config.PolicyAdaptive,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestParseReplacement(t *testing.T) {
	if _, ok, err := ParseReplacement(""); ok || err != nil {
		t.Error("empty replacement should mean default pairing")
	}
	got, ok, err := ParseReplacement("LFU")
	if !ok || err != nil || got != config.ReplaceLFU {
		t.Errorf("ParseReplacement(LFU) = %v, %v, %v", got, ok, err)
	}
	if _, _, err := ParseReplacement("mru"); err == nil {
		t.Error("ParseReplacement accepted garbage")
	}
}

func TestParsePrefetcher(t *testing.T) {
	cases := map[string]config.PrefetcherKind{
		"tree": config.PrefetchTree,
		"none": config.PrefetchNone,
		"seq":  config.PrefetchSequential,
	}
	for in, want := range cases {
		got, err := ParsePrefetcher(in)
		if err != nil || got != want {
			t.Errorf("ParsePrefetcher(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePrefetcher("magic"); err == nil {
		t.Error("ParsePrefetcher accepted garbage")
	}
}

func TestParseGranularity(t *testing.T) {
	if g, err := ParseGranularity("2M"); err != nil || g != memunits.ChunkSize {
		t.Errorf("2M: %d, %v", g, err)
	}
	if g, err := ParseGranularity("64kb"); err != nil || g != memunits.BlockSize {
		t.Errorf("64kb: %d, %v", g, err)
	}
	if _, err := ParseGranularity("4k"); err == nil {
		t.Error("accepted unsupported granularity")
	}
}

func TestParseAdvice(t *testing.T) {
	for _, s := range []string{"none", "PreferHost", " pinhost "} {
		if _, err := ParseAdvice(s); err != nil {
			t.Errorf("ParseAdvice(%q): %v", s, err)
		}
	}
	if _, err := ParseAdvice("evict"); err == nil {
		t.Error("accepted unknown advice")
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList(" a, b ,,c,")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("SplitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitList = %v", got)
		}
	}
	if SplitList("") != nil {
		t.Error("empty input should return nil")
	}
}

// Every enum value must survive the round trip through its own String()
// and back through the CLI parser — a renamed enum constant that the
// parsers no longer recognize is a flag-compatibility break.
func TestEnumStringsRoundTrip(t *testing.T) {
	for _, pol := range config.Policies() {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", pol.String(), got, err, pol)
		}
	}
	for _, rp := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		got, ok, err := ParseReplacement(rp.String())
		if err != nil || !ok || got != rp {
			t.Errorf("ParseReplacement(%q) = %v, %v, %v; want %v", rp.String(), got, ok, err, rp)
		}
	}
	for _, pf := range []config.PrefetcherKind{config.PrefetchTree, config.PrefetchNone, config.PrefetchSequential} {
		got, err := ParsePrefetcher(pf.String())
		if err != nil || got != pf {
			t.Errorf("ParsePrefetcher(%q) = %v, %v; want %v", pf.String(), got, err, pf)
		}
	}
}

func TestParseComponentName(t *testing.T) {
	names := []string{"threshold", "thrash-guard"}
	if got, err := ParseComponentName("planner", "", names); got != "" || err != nil {
		t.Errorf("empty name = %q, %v; want passthrough", got, err)
	}
	if got, err := ParseComponentName("planner", " Thrash-Guard ", names); got != "thrash-guard" || err != nil {
		t.Errorf("case/space fold = %q, %v", got, err)
	}
	if _, err := ParseComponentName("planner", "bogus", names); err == nil {
		t.Error("unknown name accepted")
	}
}
