package policy

import (
	"math"
	"math/big"
	"testing"

	"uvmsim/internal/config"
)

// bigSat mirrors the saturating composition with exact big.Int
// arithmetic: each step caps at MaxUint64, independently of the
// bits.Mul64/Add64 carry tricks inside satmath.
var bigMax = new(big.Int).SetUint64(math.MaxUint64)

func bigCap(x *big.Int) *big.Int {
	if x.Cmp(bigMax) > 0 {
		return new(big.Int).Set(bigMax)
	}
	return x
}

// FuzzAdaptiveThreshold proves the Adaptive threshold products saturate
// instead of wrapping for arbitrary ts, r, p and occupancy. This is the
// generalized form of the PR 2 regression: with the paper's p=2^20
// "effectively infinite" penalty, a wrapped ts*(r+1)*p collapsed to a
// tiny threshold and re-enabled migration for pinned blocks.
func FuzzAdaptiveThreshold(f *testing.F) {
	f.Add(uint64(8), uint64(1<<20), uint64(0), uint64(0), uint64(1<<20), true)
	f.Add(uint64(8), uint64(1<<20), uint64(1<<44), uint64(0), uint64(1<<20), true) // PR 2 wrap case
	f.Add(uint64(8), uint64(2), uint64(3), uint64(512), uint64(1024), false)
	f.Add(uint64(math.MaxUint64), uint64(math.MaxUint64), uint64(math.MaxUint64), uint64(math.MaxUint64), uint64(1), false)
	f.Add(uint64(1), uint64(1), uint64(math.MaxUint64), uint64(0), uint64(0), true)
	f.Add(uint64(1<<40), uint64(1), uint64(0), uint64(1<<40), uint64(1<<30), false)

	f.Fuzz(func(t *testing.T, ts, p, r, alloc, total uint64, oversub bool) {
		if ts == 0 || p == 0 {
			t.Skip("NewDecider rejects zero threshold/penalty")
		}
		d := NewDecider(config.Config{Policy: config.PolicyAdaptive, StaticThreshold: ts, Penalty: p})
		mem := MemState{AllocatedPages: alloc, TotalPages: total, Oversubscribed: oversub}
		got := d.Threshold(mem, r)

		var want uint64
		switch {
		case oversub:
			// Exact oracle: with every factor >= 1, chained saturating
			// multiplication equals min(exact product, MaxUint64).
			exact := new(big.Int).SetUint64(ts)
			rp1 := new(big.Int).Add(new(big.Int).SetUint64(r), big.NewInt(1))
			exact.Mul(exact, rp1)
			exact.Mul(exact, new(big.Int).SetUint64(p))
			want = bigCap(exact).Uint64()
		case total == 0:
			want = 1
		default:
			prod := bigCap(new(big.Int).Mul(new(big.Int).SetUint64(ts), new(big.Int).SetUint64(alloc)))
			q := prod.Quo(prod, new(big.Int).SetUint64(total))
			want = bigCap(q.Add(q, big.NewInt(1))).Uint64()
		}
		if got != want {
			t.Fatalf("Threshold(ts=%d p=%d r=%d alloc=%d total=%d oversub=%v) = %d, want %d",
				ts, p, r, alloc, total, oversub, got, want)
		}
		if got == 0 {
			t.Fatalf("threshold wrapped to zero for ts=%d p=%d r=%d", ts, p, r)
		}
	})
}
