// Package policy implements the delayed-migration threshold schemes the
// paper compares (§VI): the first-touch baseline, the Volta-style static
// access-counter threshold (from the start or only after
// oversubscription), and the paper's contribution — the dynamic threshold
// of Equation 1:
//
//	td = ts * allocatedPages/totalPages + 1   (no oversubscription)
//	td = ts * (r + 1) * p                     (after oversubscription)
//
// A basic block migrates from host to device when its access count
// reaches the threshold; below it, accesses are served remotely over the
// interconnect (zero-copy). A threshold of 1 therefore means first-touch
// migration, and larger thresholds pin the block progressively harder to
// host memory.
package policy

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/satmath"
)

// MemState is the snapshot of device-memory occupancy the threshold
// depends on.
type MemState struct {
	// AllocatedPages is the number of currently resident device pages.
	AllocatedPages uint64
	// TotalPages is the device memory capacity in pages.
	TotalPages uint64
	// Oversubscribed reports whether the run has entered the
	// oversubscription regime (sticky).
	Oversubscribed bool
}

// Decider computes migration thresholds for one configured scheme.
type Decider struct {
	kind config.MigrationPolicy
	ts   uint64 // static access counter threshold
	p    uint64 // multiplicative migration penalty
}

// NewDecider builds a Decider from the simulation configuration.
func NewDecider(cfg config.Config) *Decider {
	if cfg.StaticThreshold == 0 || cfg.Penalty == 0 {
		panic("policy: zero threshold or penalty")
	}
	return &Decider{kind: cfg.Policy, ts: cfg.StaticThreshold, p: cfg.Penalty}
}

// Kind returns the scheme this decider implements.
func (d *Decider) Kind() config.MigrationPolicy { return d.kind }

// Threshold returns the dynamic migration threshold td for a basic block
// with the given round-trip count under the given memory state. It is
// always at least 1.
func (d *Decider) Threshold(mem MemState, roundTrips uint64) uint64 {
	switch d.kind {
	case config.PolicyDisabled:
		return 1
	case config.PolicyAlways:
		return d.ts
	case config.PolicyOversub:
		if mem.Oversubscribed {
			return d.ts
		}
		return 1
	case config.PolicyAdaptive:
		if mem.Oversubscribed {
			// ts*(r+1)*p must saturate, not wrap: with the paper's
			// p=2^20 "effectively infinite" setting the plain product
			// overflows uint64 once r is large enough, and a wrapped
			// threshold can collapse to a tiny value — re-enabling
			// migration for exactly the blocks the penalty was supposed
			// to pin host-side.
			return satmath.Mul(satmath.Mul(d.ts, satmath.Add(roundTrips, 1)), d.p)
		}
		if mem.TotalPages == 0 {
			return 1
		}
		// The occupancy product needs the same saturation care as the
		// penalty product: with an adversarial ts the plain
		// ts*AllocatedPages wraps, and a wrapped quotient (or the +1 on
		// a saturated quotient) collapses the threshold.
		return satmath.Add(satmath.Mul(d.ts, mem.AllocatedPages)/mem.TotalPages, 1)
	default:
		panic(fmt.Sprintf("policy: unknown migration policy %v", d.kind))
	}
}

// ShouldMigrate reports whether a block whose access counter has just
// reached count must now migrate to device memory.
func (d *Decider) ShouldMigrate(count uint64, mem MemState, roundTrips uint64) bool {
	return count >= d.Threshold(mem, roundTrips)
}

// AllowsRemoteAccess reports whether the scheme ever serves accesses
// remotely. The Disabled baseline has no remote path: every miss
// triggers migration.
func (d *Decider) AllowsRemoteAccess() bool {
	return d.kind != config.PolicyDisabled
}
