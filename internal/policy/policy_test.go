package policy

import (
	"math"
	"testing"
	"testing/quick"

	"uvmsim/internal/config"
)

func decider(kind config.MigrationPolicy, ts, p uint64) *Decider {
	cfg := config.Default()
	cfg.Policy = kind
	cfg.StaticThreshold = ts
	cfg.Penalty = p
	return NewDecider(cfg)
}

func TestDisabledAlwaysFirstTouch(t *testing.T) {
	d := decider(config.PolicyDisabled, 8, 2)
	states := []MemState{
		{0, 1000, false},
		{999, 1000, false},
		{1000, 1000, true},
	}
	for _, m := range states {
		if got := d.Threshold(m, 5); got != 1 {
			t.Fatalf("Disabled threshold = %d under %+v, want 1", got, m)
		}
	}
	if d.AllowsRemoteAccess() {
		t.Fatal("Disabled must not allow remote access")
	}
}

func TestAlwaysIsStatic(t *testing.T) {
	d := decider(config.PolicyAlways, 16, 2)
	for _, m := range []MemState{{0, 100, false}, {100, 100, true}} {
		if got := d.Threshold(m, 9); got != 16 {
			t.Fatalf("Always threshold = %d, want 16", got)
		}
	}
	if !d.AllowsRemoteAccess() {
		t.Fatal("Always must allow remote access")
	}
}

func TestOversubSwitches(t *testing.T) {
	d := decider(config.PolicyOversub, 8, 2)
	if got := d.Threshold(MemState{50, 100, false}, 0); got != 1 {
		t.Fatalf("pre-oversub threshold = %d, want 1", got)
	}
	if got := d.Threshold(MemState{100, 100, true}, 0); got != 8 {
		t.Fatalf("post-oversub threshold = %d, want 8", got)
	}
}

// The worked example from §IV: ts=8.
func TestAdaptivePaperExamples(t *testing.T) {
	d := decider(config.PolicyAdaptive, 8, 2)
	// "If currently less than 12.5% of device memory is allocated, then
	// the dynamic threshold is derived as 1."
	if got := d.Threshold(MemState{99, 1000, false}, 0); got != 1 {
		t.Fatalf("threshold at <12.5%% = %d, want 1", got)
	}
	// "the dynamic access counter threshold will be same as the static
	// threshold of 8 just before reaching the full capacity"
	if got := d.Threshold(MemState{999, 1000, false}, 0); got != 8 {
		t.Fatalf("threshold near capacity = %d, want 8", got)
	}
	// "and 9 upon oversubscription" (boundary of the first formula)
	if got := d.Threshold(MemState{1000, 1000, false}, 0); got != 9 {
		t.Fatalf("threshold at exactly full = %d, want 9", got)
	}
	// "With p = 2 and ts = 8, the pages are migrated after 16th access
	// after oversubscription."
	if got := d.Threshold(MemState{1000, 1000, true}, 0); got != 16 {
		t.Fatalf("oversub threshold r=0 = %d, want 16", got)
	}
	// "if a given chunk of memory is evicted twice, then the dynamic
	// threshold of migration for that memory chunk will be derived as 48."
	if got := d.Threshold(MemState{1000, 1000, true}, 2); got != 48 {
		t.Fatalf("oversub threshold r=2 = %d, want 48", got)
	}
}

func TestShouldMigrate(t *testing.T) {
	d := decider(config.PolicyAdaptive, 8, 2)
	over := MemState{1000, 1000, true}
	if d.ShouldMigrate(15, over, 0) {
		t.Fatal("migrated below threshold")
	}
	if !d.ShouldMigrate(16, over, 0) {
		t.Fatal("did not migrate at threshold")
	}
	if !d.ShouldMigrate(17, over, 0) {
		t.Fatal("did not migrate above threshold")
	}
}

func TestNewDeciderValidation(t *testing.T) {
	cfg := config.Default()
	cfg.StaticThreshold = 0
	defer func() {
		if recover() == nil {
			t.Error("zero ts did not panic")
		}
	}()
	NewDecider(cfg)
}

// Property: Adaptive threshold is monotonically nondecreasing in
// occupancy (pre-oversub), in round trips and in p (post-oversub), and
// always >= 1.
func TestAdaptiveMonotonicityProperty(t *testing.T) {
	f := func(a1, a2 uint16, r1, r2 uint8, pRaw uint8) bool {
		total := uint64(4096)
		o1, o2 := uint64(a1)%(total+1), uint64(a2)%(total+1)
		if o1 > o2 {
			o1, o2 = o2, o1
		}
		d := decider(config.PolicyAdaptive, 8, uint64(pRaw)%16+1)
		t1 := d.Threshold(MemState{o1, total, false}, 0)
		t2 := d.Threshold(MemState{o2, total, false}, 0)
		if t1 < 1 || t1 > t2 {
			return false
		}
		rr1, rr2 := uint64(r1), uint64(r2)
		if rr1 > rr2 {
			rr1, rr2 = rr2, rr1
		}
		over := MemState{total, total, true}
		u1 := d.Threshold(over, rr1)
		u2 := d.Threshold(over, rr2)
		return u1 >= 1 && u1 <= u2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: larger penalty never lowers the post-oversubscription
// threshold.
func TestPenaltyMonotonicityProperty(t *testing.T) {
	f := func(p1, p2 uint8, r uint8) bool {
		q1, q2 := uint64(p1)%64+1, uint64(p2)%64+1
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		d1 := decider(config.PolicyAdaptive, 8, q1)
		d2 := decider(config.PolicyAdaptive, 8, q2)
		over := MemState{100, 100, true}
		return d1.Threshold(over, uint64(r)) <= d2.Threshold(over, uint64(r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The giant-penalty configuration from Fig. 8 (p = 2^20) must produce an
// effectively-unreachable threshold, i.e. permanent host pinning.
func TestGiantPenaltyPinsToHost(t *testing.T) {
	d := decider(config.PolicyAdaptive, 8, 1048576)
	got := d.Threshold(MemState{100, 100, true}, 0)
	if got != 8*1048576 {
		t.Fatalf("threshold = %d, want %d", got, 8*1048576)
	}
}

// Regression: the Adaptive post-oversubscription product ts*(r+1)*p must
// saturate at MaxUint64 instead of wrapping. Before the fix, the paper's
// p=2^20 setting wrapped to a tiny (or zero) threshold once the
// round-trip count grew past the wrap boundary, silently re-enabling
// migration for exactly the blocks the penalty was meant to pin.
func TestAdaptiveThresholdSaturatesAtWrapBoundary(t *testing.T) {
	over := MemState{100, 100, true}
	d := decider(config.PolicyAdaptive, 8, 1048576) // ts=2^3, p=2^20

	// ts*p = 2^23, so the plain product wraps at r+1 = 2^41:
	// 2^23 * 2^41 = 2^64 ≡ 0 (mod 2^64).
	wrapR := uint64(1)<<41 - 1
	if got := d.Threshold(over, wrapR); got != math.MaxUint64 {
		t.Fatalf("threshold at wrap boundary = %d, want MaxUint64", got)
	}
	// One step below the boundary the exact product still fits:
	// 2^23 * (2^41 - 1) = 2^64 - 2^23.
	if got := d.Threshold(over, wrapR-1); got != math.MaxUint64-(1<<23)+1 {
		t.Fatalf("threshold below boundary = %d, want 2^64-2^23", got)
	}
	// A saturated threshold must keep pinning blocks host-side.
	if d.ShouldMigrate(1<<40, over, wrapR) {
		t.Fatal("wrapped threshold re-enabled migration")
	}
	// Thresholds stay monotone in r across the boundary.
	if d.Threshold(over, wrapR) < d.Threshold(over, wrapR-1) {
		t.Fatal("threshold decreased across the wrap boundary")
	}

	// The r+1 increment itself must saturate too.
	if got := d.Threshold(over, math.MaxUint64); got != math.MaxUint64 {
		t.Fatalf("threshold at r=MaxUint64 = %d, want MaxUint64", got)
	}
}

// Property: the Adaptive threshold never wraps below ts once
// oversubscribed, for any (ts, p, r).
func TestAdaptiveThresholdNeverBelowTS(t *testing.T) {
	over := MemState{100, 100, true}
	f := func(ts, p, r uint64) bool {
		d := decider(config.PolicyAdaptive, ts%math.MaxUint64+1, p%math.MaxUint64+1)
		return d.Threshold(over, r) >= d.ts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
