// Package trace collects the access-level data behind the paper's
// characterization figures: the per-page access-frequency distribution
// per managed allocation (Fig. 2) and the page-versus-time access
// pattern samples (Fig. 3).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"uvmsim/internal/alloc"
	"uvmsim/internal/memunits"
	"uvmsim/internal/sim"
	"uvmsim/internal/uvm"
)

// PageStat aggregates accesses to one 4KB page.
type PageStat struct {
	Reads  uint64
	Writes uint64
}

// Total returns the page's total access count.
func (p PageStat) Total() uint64 { return p.Reads + p.Writes }

// Sample is one access-pattern data point (Fig. 3).
type Sample struct {
	Cycle sim.Cycle
	Page  memunits.PageNum
	Write bool
}

// Collector observes driver accesses and accumulates both views.
type Collector struct {
	space *alloc.Space
	freq  map[memunits.PageNum]*PageStat

	sampleEvery uint64
	seen        uint64
	samples     []Sample
}

// NewCollector creates a collector. sampleEvery controls Fig. 3 sampling
// density: the 1st access is kept and then one sample per sampleEvery
// accesses (1 = keep all; 0 disables pattern sampling entirely — no
// samples and no access counting toward the sampling period).
func NewCollector(space *alloc.Space, sampleEvery uint64) *Collector {
	return &Collector{
		space:       space,
		freq:        make(map[memunits.PageNum]*PageStat),
		sampleEvery: sampleEvery,
	}
}

// Observer returns the driver hook feeding this collector.
func (c *Collector) Observer() uvm.AccessObserver {
	return func(now sim.Cycle, addr memunits.Addr, write bool, _ uvm.AccessKind) {
		p := memunits.PageOf(addr)
		st := c.freq[p]
		if st == nil {
			st = &PageStat{}
			c.freq[p] = st
		}
		if write {
			st.Writes++
		} else {
			st.Reads++
		}
		if c.sampleEvery > 0 {
			// Keep-then-count: the 1st access is always sampled (then
			// the N+1th, 2N+1th, ...). Counting first would silently
			// drop the first N-1 accesses — the opening of every Fig. 3
			// pattern — and shift every kept sample by one period.
			// When sampling is disabled (sampleEvery == 0) seen stays
			// untouched, so enabling it later starts a fresh period.
			if c.seen%c.sampleEvery == 0 {
				c.samples = append(c.samples, Sample{Cycle: now, Page: p, Write: write})
			}
			c.seen++
		}
	}
}

// Samples returns the collected pattern samples in time order.
func (c *Collector) Samples() []Sample { return c.samples }

// PageFreq is one page's row in the Fig. 2 view.
type PageFreq struct {
	// PageIndex is the page offset within its allocation.
	PageIndex uint64
	Stat      PageStat
}

// AllocFreq is the access-frequency distribution of one allocation.
type AllocFreq struct {
	Name string
	// ReadOnly reports whether no page of the allocation was written.
	ReadOnly bool
	Pages    []PageFreq // touched pages in ascending index order
	// TotalAccesses across all pages.
	TotalAccesses uint64
}

// HotColdRatio summarizes skew: the fraction of total accesses owned by
// the top 10% most-accessed touched pages (1.0 = fully concentrated;
// ~0.1 = uniform).
func (a AllocFreq) HotColdRatio() float64 {
	if a.TotalAccesses == 0 || len(a.Pages) == 0 {
		return 0
	}
	counts := make([]uint64, len(a.Pages))
	for i, p := range a.Pages {
		counts[i] = p.Stat.Total()
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	top := len(counts) / 10
	if top == 0 {
		top = 1
	}
	var sum uint64
	for _, v := range counts[:top] {
		sum += v
	}
	return float64(sum) / float64(a.TotalAccesses)
}

// FrequencyByAllocation builds the Fig. 2 view: per-allocation page
// access distributions in allocation order.
func (c *Collector) FrequencyByAllocation() []AllocFreq {
	var out []AllocFreq
	for _, a := range c.space.Allocations() {
		af := AllocFreq{Name: a.Name, ReadOnly: true}
		first := a.FirstPage()
		for p := first; p < first+a.NumPages(); p++ {
			st := c.freq[p]
			if st == nil {
				continue
			}
			if st.Writes > 0 {
				af.ReadOnly = false
			}
			af.Pages = append(af.Pages, PageFreq{PageIndex: p - first, Stat: *st})
			af.TotalAccesses += st.Total()
		}
		out = append(out, af)
	}
	return out
}

// FormatFrequency renders the Fig. 2 data as a text table: one row per
// allocation with page counts, totals, read-only class and hot/cold
// skew.
func (c *Collector) FormatFrequency() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %9s %8s\n", "allocation", "pages", "accesses", "class", "top10%")
	for _, af := range c.FrequencyByAllocation() {
		class := "RW"
		if af.ReadOnly {
			class = "RO"
		}
		fmt.Fprintf(&b, "%-12s %10d %12d %9s %7.1f%%\n",
			af.Name, len(af.Pages), af.TotalAccesses, class, af.HotColdRatio()*100)
	}
	return b.String()
}

// DumpFrequencyCSV renders per-page rows: allocation,pageIndex,reads,
// writes — the raw series behind Fig. 2's scatter plots.
func (c *Collector) DumpFrequencyCSV() string {
	var b strings.Builder
	b.WriteString("allocation,page,reads,writes\n")
	for _, af := range c.FrequencyByAllocation() {
		for _, p := range af.Pages {
			fmt.Fprintf(&b, "%s,%d,%d,%d\n", af.Name, p.PageIndex, p.Stat.Reads, p.Stat.Writes)
		}
	}
	return b.String()
}

// DumpSamplesCSV renders the Fig. 3 series: cycle,page,write rows,
// optionally restricted to a cycle window (use 0,MaxCycle for all).
func (c *Collector) DumpSamplesCSV(from, to sim.Cycle) string {
	var b strings.Builder
	b.WriteString("cycle,page,write\n")
	for _, s := range c.samples {
		if s.Cycle < from || s.Cycle > to {
			continue
		}
		w := 0
		if s.Write {
			w = 1
		}
		fmt.Fprintf(&b, "%d,%d,%d\n", s.Cycle, s.Page, w)
	}
	return b.String()
}
