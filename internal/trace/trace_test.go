package trace

import (
	"strings"
	"testing"

	"uvmsim/internal/alloc"
	"uvmsim/internal/memunits"
	"uvmsim/internal/uvm"
)

func setup() (*alloc.Space, *alloc.Allocation, *alloc.Allocation) {
	s := alloc.NewSpace()
	a := s.Alloc("hot", 1<<20, false)
	b := s.Alloc("cold", 1<<20, true)
	return s, a, b
}

func TestFrequencyAccumulation(t *testing.T) {
	s, a, b := setup()
	c := NewCollector(s, 0)
	obs := c.Observer()
	obs(10, a.Base, false, uvm.AccessNear)
	obs(20, a.Base, true, uvm.AccessNear)
	obs(30, a.Base+memunits.PageSize, false, uvm.AccessRemote)
	obs(40, b.Base, false, uvm.AccessFault)

	freqs := c.FrequencyByAllocation()
	if len(freqs) != 2 {
		t.Fatalf("allocations = %d, want 2", len(freqs))
	}
	hot := freqs[0]
	if hot.Name != "hot" || len(hot.Pages) != 2 || hot.TotalAccesses != 3 {
		t.Fatalf("hot = %+v", hot)
	}
	if hot.ReadOnly {
		t.Fatal("hot marked read-only despite write")
	}
	if hot.Pages[0].Stat.Reads != 1 || hot.Pages[0].Stat.Writes != 1 {
		t.Fatalf("page0 stat = %+v", hot.Pages[0].Stat)
	}
	cold := freqs[1]
	if !cold.ReadOnly || cold.TotalAccesses != 1 {
		t.Fatalf("cold = %+v", cold)
	}
}

func TestSampling(t *testing.T) {
	s, a, _ := setup()
	c := NewCollector(s, 3)
	obs := c.Observer()
	for i := 0; i < 10; i++ {
		obs(uint64(i*100), a.Base+uint64(i)*memunits.PageSize, i%2 == 0, uvm.AccessNear)
	}
	// 10 accesses with 1-in-3 sampling: the 1st, 4th, 7th and 10th are
	// kept. Keeping the 1st access (not the 3rd) is load-bearing — it
	// is the opening of the access pattern.
	if len(c.Samples()) != 4 {
		t.Fatalf("samples = %d, want 4", len(c.Samples()))
	}
	if c.Samples()[0].Cycle != 0 {
		t.Fatalf("first sample at cycle %d, want the very first access (cycle 0)", c.Samples()[0].Cycle)
	}
	want := []uint64{0, 300, 600, 900}
	for i, s := range c.Samples() {
		if uint64(s.Cycle) != want[i] {
			t.Fatalf("sample %d at cycle %d, want %d", i, s.Cycle, want[i])
		}
	}
}

func TestSamplingDisabled(t *testing.T) {
	s, a, _ := setup()
	c := NewCollector(s, 0)
	obs := c.Observer()
	for i := 0; i < 5; i++ {
		obs(uint64(i), a.Base, false, uvm.AccessNear)
	}
	if len(c.Samples()) != 0 {
		t.Fatal("sampling not disabled")
	}
	// Disabled sampling must not count accesses toward a period: the
	// frequency view still works, but seen stays zero.
	if c.seen != 0 {
		t.Fatalf("seen = %d with sampling disabled, want 0", c.seen)
	}
}

func TestHotColdRatio(t *testing.T) {
	s, a, _ := setup()
	c := NewCollector(s, 0)
	obs := c.Observer()
	// 20 pages touched once, one page hammered 1000 times.
	for i := 0; i < 20; i++ {
		obs(1, a.Base+uint64(i)*memunits.PageSize, false, uvm.AccessNear)
	}
	for i := 0; i < 1000; i++ {
		obs(2, a.Base, false, uvm.AccessNear)
	}
	af := c.FrequencyByAllocation()[0]
	if r := af.HotColdRatio(); r < 0.9 {
		t.Fatalf("HotColdRatio = %.2f, want > 0.9 for concentrated access", r)
	}
}

func TestHotColdRatioUniform(t *testing.T) {
	s, a, _ := setup()
	c := NewCollector(s, 0)
	obs := c.Observer()
	for i := 0; i < 100; i++ {
		obs(1, a.Base+uint64(i)*memunits.PageSize, false, uvm.AccessNear)
	}
	af := c.FrequencyByAllocation()[0]
	if r := af.HotColdRatio(); r > 0.15 {
		t.Fatalf("HotColdRatio = %.2f, want ~0.1 for uniform access", r)
	}
}

func TestHotColdRatioEmpty(t *testing.T) {
	if (AllocFreq{}).HotColdRatio() != 0 {
		t.Fatal("empty ratio not 0")
	}
}

func TestFormatFrequency(t *testing.T) {
	s, a, b := setup()
	c := NewCollector(s, 0)
	obs := c.Observer()
	obs(1, a.Base, true, uvm.AccessNear)
	obs(1, b.Base, false, uvm.AccessNear)
	out := c.FormatFrequency()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "cold") {
		t.Fatalf("missing allocations:\n%s", out)
	}
	if !strings.Contains(out, "RW") || !strings.Contains(out, "RO") {
		t.Fatalf("missing class labels:\n%s", out)
	}
}

func TestDumpFrequencyCSV(t *testing.T) {
	s, a, _ := setup()
	c := NewCollector(s, 0)
	c.Observer()(1, a.Base, true, uvm.AccessNear)
	out := c.DumpFrequencyCSV()
	if !strings.HasPrefix(out, "allocation,page,reads,writes\n") {
		t.Fatalf("bad header:\n%s", out)
	}
	if !strings.Contains(out, "hot,0,0,1") {
		t.Fatalf("missing row:\n%s", out)
	}
}

func TestDumpSamplesCSVWindow(t *testing.T) {
	s, a, _ := setup()
	c := NewCollector(s, 1)
	obs := c.Observer()
	obs(100, a.Base, false, uvm.AccessNear)
	obs(200, a.Base, true, uvm.AccessNear)
	obs(300, a.Base, false, uvm.AccessNear)
	out := c.DumpSamplesCSV(150, 250)
	lines := strings.Count(out, "\n")
	if lines != 2 { // header + one sample
		t.Fatalf("window dump:\n%s", out)
	}
	if !strings.Contains(out, "200,") {
		t.Fatalf("missing in-window sample:\n%s", out)
	}
}
