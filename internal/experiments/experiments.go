// Package experiments reproduces every figure and table of the paper's
// evaluation (§VI): each FigN function runs the corresponding sweep and
// returns a report.Table whose rows/series match what the paper plots.
// See DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
// measured-vs-paper comparison.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/memunits"
	"uvmsim/internal/obs"
	"uvmsim/internal/report"
	"uvmsim/internal/sim"
	"uvmsim/internal/snapshot"
	"uvmsim/internal/sweep"
	"uvmsim/internal/trace"
	"uvmsim/internal/workloads"
)

// Options configures an experiment sweep.
type Options struct {
	// Scale is the workload scale factor (1.0 = paper size, tens of MB).
	Scale float64
	// Base is the system configuration; policy/capacity fields are
	// overridden per experiment.
	Base config.Config
	// Workloads restricts the sweep (nil = all eight).
	Workloads []string
	// Workers bounds sweep parallelism (0 = one worker per core). Every
	// simulation is deterministic and single-threaded, so parallel
	// sweeps produce identical tables to serial ones.
	Workers int
	// Observe, when non-nil, is called once per simulation cell with a
	// unique run name ("workload/policy/oversub%[/tag]") and may return
	// observability instruments to attach (nil skips the cell). The
	// factory must be safe for concurrent calls — parallel sweeps invoke
	// it from worker goroutines (obs.Suite.NewRun qualifies).
	Observe func(runName string) *obs.Run
	// Snapshot enables prefix sharing across sweep cells that differ
	// only in policy configuration (internal/snapshot): each such group
	// runs its common warmup once and forks per cell. Results are
	// byte-identical either way (the fork-equivalence property test pins
	// this); the knob exists for A/B timing and as an escape hatch.
	// Ignored when Observe is set — tracing hooks pin a run to scratch
	// execution.
	Snapshot bool
	// SnapStats, when non-nil, accumulates prefix-sharing statistics
	// across the sweep (guarded internally; safe with parallel rows).
	SnapStats *snapshot.Stats

	// memo caches workload builds within one sweep so cells sharing a
	// (workload, scale) pair share one immutable Built instead of each
	// rebuilding it (workloads.Memo is safe for the parallel workers).
	memo *workloads.Memo
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Base.NumSMs == 0 {
		o.Base = config.Default()
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workloads.Names()
	}
	if o.memo == nil {
		o.memo = workloads.NewMemo()
	}
	return o
}

// runtimeOf runs one configuration cell. tag disambiguates cells that
// share workload/policy/oversubscription (threshold and penalty sweeps).
func (o Options) runtimeOf(name string, pct uint64, pol config.MigrationPolicy, base config.Config, tag string) *core.Result {
	var r *obs.Run
	if o.Observe != nil {
		runName := fmt.Sprintf("%s/%s/%d%%", name, pol, pct)
		if tag != "" {
			runName += "/" + tag
		}
		// A non-default pipeline changes what the cell measures, so it
		// is part of the cell's identity.
		if ptag := base.MMPipeline.Tag(); ptag != "" {
			runName += "/" + ptag
		}
		r = o.Observe(runName)
	}
	b := o.memo.Get(name, o.Scale)
	s := core.New(b, core.DeriveConfig(b, 1, pct, pol, base))
	s.Observe(r)
	return s.Run()
}

// grid evaluates one simulation per (workload, column) pair in parallel.
func (o Options) grid(cols int, f func(name string, col int) *core.Result) [][]*core.Result {
	return sweep.Grid(len(o.Workloads), cols, o.Workers, func(r, c int) *core.Result {
		return f(o.Workloads[r], c)
	})
}

// policyCell is one column of a policy-style sweep: cells share the
// workload and oversubscription level and differ only in fields the
// snapshot group key tolerates (policy, replacement, thresholds).
type policyCell struct {
	pol  config.MigrationPolicy
	base config.Config
	tag  string
}

// snapStatsMu guards Options.SnapStats accumulation from parallel rows.
var snapStatsMu sync.Mutex

// policyGrid evaluates one simulation per (workload, policy cell) pair.
// With snapshotting enabled each workload row runs as one prefix-shared
// group (parallelism moves from cells to rows); otherwise, and whenever
// observability is attached, every cell runs from scratch.
func (o Options) policyGrid(pct uint64, cells []policyCell) [][]*core.Result {
	if !o.Snapshot || o.Observe != nil {
		return o.grid(len(cells), func(name string, col int) *core.Result {
			return o.runtimeOf(name, pct, cells[col].pol, cells[col].base, cells[col].tag)
		})
	}
	jobs := make([]func() [](*core.Result), len(o.Workloads))
	for i, name := range o.Workloads {
		name := name
		jobs[i] = func() []*core.Result {
			b := o.memo.Get(name, o.Scale)
			cfgs := make([]config.Config, len(cells))
			for c, cell := range cells {
				cfgs[c] = core.DeriveConfig(b, 1, pct, cell.pol, cell.base)
			}
			res, st := snapshot.RunGroup(b, cfgs)
			if o.SnapStats != nil {
				snapStatsMu.Lock()
				o.SnapStats.Add(st)
				snapStatsMu.Unlock()
			}
			return res
		}
	}
	return sweep.Parallel(jobs, o.Workers)
}

// Fig1 reproduces Figure 1: sensitivity of every workload to the degree
// of memory oversubscription under the first-touch baseline. Columns
// are runtimes at 100% (fits), 125% and 150% oversubscription,
// normalized to the fitting run.
func Fig1(o Options) *report.Table {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Figure 1: sensitivity to memory oversubscription (Baseline first-touch)",
		Metric:  "Runtime normalized to no-oversubscription",
		Columns: []string{"NoOversub", "125%Oversub", "150%Oversub"},
	}
	pcts := []uint64{100, 125, 150}
	res := o.grid(len(pcts), func(name string, col int) *core.Result {
		return o.runtimeOf(name, pcts[col], config.PolicyDisabled, o.Base, "")
	})
	for i, name := range o.Workloads {
		base := res[i][0].Runtime()
		t.Add(name, 1.0,
			float64(res[i][1].Runtime())/float64(base),
			float64(res[i][2].Runtime())/float64(base))
	}
	return t
}

// TraceResult bundles the collector and result of a characterization
// run (Figures 2 and 3).
type TraceResult struct {
	Result    *core.Result
	Collector *trace.Collector
}

// RunTrace performs the characterization run behind Figures 2 and 3 for
// one workload under the baseline policy with memory fitting (the paper
// characterizes intrinsic access patterns, not oversubscription
// effects). sampleEvery controls Fig. 3 sampling density.
func RunTrace(workload string, o Options, sampleEvery uint64) *TraceResult {
	o = o.withDefaults()
	b := o.memo.Get(workload, o.Scale)
	cfg := core.DeriveConfig(b, 1, 100, config.PolicyDisabled, o.Base)
	s := core.New(b, cfg)
	if o.Observe != nil {
		s.Observe(o.Observe(workload + "/trace"))
	}
	col := trace.NewCollector(b.Space, sampleEvery)
	s.SetObserver(col.Observer())
	res := s.Run()
	return &TraceResult{Result: res, Collector: col}
}

// Fig2 reproduces Figure 2's summary: the per-allocation access
// distribution (page counts, totals, read-only class, hot/cold skew)
// for the requested workload (the paper shows fdtd and sssp).
func Fig2(workload string, o Options) string {
	tr := RunTrace(workload, o, 0)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (%s): page access distribution per managed allocation\n", workload)
	b.WriteString(tr.Collector.FormatFrequency())
	return b.String()
}

// Fig3 reproduces Figure 3: access-pattern samples (cycle, page, r/w)
// for two iterations of the requested workload. It returns one CSV
// series per requested iteration.
func Fig3(workload string, o Options, iters []int, sampleEvery uint64) map[int]string {
	tr := RunTrace(workload, o, sampleEvery)
	out := make(map[int]string, len(iters))
	for _, it := range iters {
		lo, hi := sim.MaxCycle, sim.Cycle(0)
		for _, sp := range tr.Result.Spans {
			if sp.Iter == it {
				if sp.Start < lo {
					lo = sp.Start
				}
				if sp.End > hi {
					hi = sp.End
				}
			}
		}
		if hi == 0 {
			out[it] = "cycle,page,write\n" // iteration absent at this scale
			continue
		}
		out[it] = tr.Collector.DumpSamplesCSV(lo, hi)
	}
	return out
}

// Fig4 reproduces Figure 4: sensitivity to the static access-counter
// threshold ts under the Always scheme at 125% oversubscription,
// normalized to ts=8.
func Fig4(o Options) *report.Table {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Figure 4: sensitivity to static access counter threshold (Always, 125% oversub)",
		Metric:  "Runtime normalized to ts=8",
		Columns: []string{"ts=8", "ts=16", "ts=32"},
	}
	thresholds := []uint64{8, 16, 32}
	cells := make([]policyCell, len(thresholds))
	for i, ts := range thresholds {
		cfg := o.Base
		cfg.StaticThreshold = ts
		cells[i] = policyCell{config.PolicyAlways, cfg, fmt.Sprintf("ts=%d", ts)}
	}
	res := o.policyGrid(125, cells)
	for i, name := range o.Workloads {
		base := res[i][0].Runtime()
		t.Add(name, 1.0,
			float64(res[i][1].Runtime())/float64(base),
			float64(res[i][2].Runtime())/float64(base))
	}
	return t
}

// Fig5 reproduces Figure 5: Baseline vs Always vs Adaptive under no
// memory oversubscription, normalized to Baseline.
func Fig5(o Options) *report.Table {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Figure 5: policies under no oversubscription",
		Metric:  "Runtime normalized to baseline",
		Columns: []string{"Baseline", "Always", "Adaptive"},
	}
	pols := []config.MigrationPolicy{config.PolicyDisabled, config.PolicyAlways, config.PolicyAdaptive}
	cells := make([]policyCell, len(pols))
	for i, p := range pols {
		cells[i] = policyCell{p, o.Base, ""}
	}
	res := o.policyGrid(100, cells)
	for i, name := range o.Workloads {
		base := res[i][0].Runtime()
		t.Add(name, 1.0,
			float64(res[i][1].Runtime())/float64(base),
			float64(res[i][2].Runtime())/float64(base))
	}
	return t
}

// Fig6And7 reproduces Figures 6 and 7 from one sweep: all four schemes
// at 125% oversubscription with ts=8 and p=8 for Adaptive. The first
// table is runtime, the second is total pages thrashed, both normalized
// to the Disabled baseline.
func Fig6And7(o Options) (runtime, thrash *report.Table) {
	runtime, thrash, _ = Fig6And7Cycles(o)
	return runtime, thrash
}

// Fig6And7Cycles runs the Figure 6/7 sweep once and additionally
// returns the simulated cycles summed over every cell. The sum is a
// deterministic proxy for the sweep's total simulation work — unlike
// wall-clock measurements it is identical across machines and runs —
// which is what the bench-smoke drift check compares against the
// committed baseline.
func Fig6And7Cycles(o Options) (runtime, thrash *report.Table, simCycles uint64) {
	o = o.withDefaults()
	cols := []string{"Disabled", "Always", "Oversub", "Adaptive"}
	runtime = &report.Table{
		Title:   "Figure 6: policies under 125% oversubscription",
		Metric:  "Runtime normalized to baseline",
		Columns: cols,
	}
	thrash = &report.Table{
		Title:   "Figure 7: memory thrashing under 125% oversubscription",
		Metric:  "Total pages thrashed normalized to baseline",
		Columns: cols,
	}
	cfg := o.Base
	cfg.Penalty = 8
	pols := config.Policies()
	cells := make([]policyCell, len(pols))
	for i, p := range pols {
		cells[i] = policyCell{p, cfg, ""}
	}
	res := o.policyGrid(125, cells)
	for i, name := range o.Workloads {
		baseTime := res[i][0].Runtime()
		baseThrash := res[i][0].Counters.ThrashedPages
		var times, thrashes [4]float64
		for c := range pols {
			times[c] = report.Ratio(res[i][c].Runtime(), baseTime)
			thrashes[c] = report.Ratio(res[i][c].Counters.ThrashedPages, baseThrash)
			simCycles += res[i][c].Runtime()
		}
		runtime.Add(name, times[0], times[1], times[2], times[3])
		thrash.Add(name, thrashes[0], thrashes[1], thrashes[2], thrashes[3])
	}
	return runtime, thrash, simCycles
}

// Fig6 returns only the runtime table of the Fig6And7 sweep.
func Fig6(o Options) *report.Table { r, _ := Fig6And7(o); return r }

// Fig7 returns only the thrash table of the Fig6And7 sweep.
func Fig7(o Options) *report.Table { _, t := Fig6And7(o); return t }

// Fig8Penalties are the multiplicative-penalty points of Figure 8.
var Fig8Penalties = []uint64{2, 4, 8, 1048576}

// Fig8 reproduces Figure 8: sensitivity to the multiplicative migration
// penalty p under Adaptive at 125% oversubscription, normalized to the
// Disabled baseline.
func Fig8(o Options) *report.Table {
	o = o.withDefaults()
	cols := []string{"Baseline"}
	for _, p := range Fig8Penalties {
		cols = append(cols, fmt.Sprintf("p=%d", p))
	}
	t := &report.Table{
		Title:   "Figure 8: sensitivity to the multiplicative migration penalty (Adaptive, 125% oversub)",
		Metric:  "Runtime normalized to baseline",
		Columns: cols,
	}
	cells := []policyCell{{config.PolicyDisabled, o.Base, ""}}
	for _, p := range Fig8Penalties {
		cfg := o.Base
		cfg.Penalty = p
		cells = append(cells, policyCell{config.PolicyAdaptive, cfg, fmt.Sprintf("p=%d", p)})
	}
	res := o.policyGrid(125, cells)
	for i, name := range o.Workloads {
		base := res[i][0].Runtime()
		values := []float64{1.0}
		for c := 1; c <= len(Fig8Penalties); c++ {
			values = append(values, float64(res[i][c].Runtime())/float64(base))
		}
		t.Add(name, values...)
	}
	return t
}

// Table1 renders the simulated-system configuration (Table I).
func Table1(cfg config.Config) string {
	var b strings.Builder
	b.WriteString("Table I: configuration parameters of the simulated system\n")
	row := func(k, v string) { fmt.Fprintf(&b, "%-36s %s\n", k, v) }
	row("GPU Architecture", "NVIDIA GeForceGTX 1080Ti Pascal-like")
	row("GPU Cores", fmt.Sprintf("%d SMs, %d cores each @ %d MHz", cfg.NumSMs, cfg.CoresPerSM, cfg.CoreClockMHz))
	row("Shader Core Config", fmt.Sprintf("Max. %d CTA and %d warps per SM, %d threads per warp",
		cfg.MaxCTAsPerSM, cfg.MaxWarpsPerSM, cfg.WarpSize))
	row("Page Size", memunits.HumanBytes(memunits.PageSize))
	row("Page Table Walk Latency", fmt.Sprintf("%d core cycles", cfg.PageWalkLatency))
	row("CPU-GPU Interconnect", fmt.Sprintf("PCI-e 3.0 16x, %.1f bytes/core-cycle/direction, %d cycles latency",
		cfg.PCIeBytesPerCycle, cfg.PCIeLatency))
	row("DRAM Latency", fmt.Sprintf("%d GPU core cycles", cfg.DRAMLatency))
	row("Remote Zero-copy Access Latency", fmt.Sprintf("%d GPU core cycles", cfg.RemoteAccessLatency))
	row("Remote Zero-copy Wire Penalty", fmt.Sprintf("%.1fx (effective BW %.1f bytes/cycle)",
		cfg.RemoteWirePenalty, cfg.PCIeBytesPerCycle/cfg.RemoteWirePenalty))
	row("GMMU TLB", fmt.Sprintf("%d entries, %d-cycle walk on miss", cfg.TLBEntries, cfg.PageWalkLatency))
	row("Eviction Granularity", memunits.HumanBytes(cfg.EvictionGranularity))
	row("Page Replacement Policy", cfg.Replacement.String())
	row("Far-fault Handling Latency", fmt.Sprintf("%dus", cfg.FarFaultLatencyMicros))
	row("Hardware Prefetcher", cfg.Prefetcher.String())
	row("Static Access Counter Threshold", fmt.Sprintf("%d", cfg.StaticThreshold))
	row("Multiplicative Migration Penalty", fmt.Sprintf("%d", cfg.Penalty))
	row("Device Memory", memunits.HumanBytes(cfg.DeviceMemBytes))
	return b.String()
}
