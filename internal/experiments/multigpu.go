package experiments

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/report"
)

// MultiGPUClusterSizes are the cluster sizes the extension experiment
// sweeps.
var MultiGPUClusterSizes = []int{1, 2, 4}

// MultiGPU runs the paper's §VIII future-work study: one irregular
// collaborative workload across increasing cluster sizes, comparing the
// first-touch baseline against the Adaptive dynamic threshold as a
// per-GPU memory throttling mechanism. Every GPU's memory is sized so
// its share of the working set sits at oversubPercent of capacity, so
// the per-GPU pressure is constant across cluster sizes. Columns are
// makespans normalized to the same-size baseline cluster.
func MultiGPU(workload string, o Options, oversubPercent uint64) *report.Table {
	o = o.withDefaults()
	t := &report.Table{
		Title: fmt.Sprintf("Extension (paper §VIII): multi-GPU throttling, %s at %d%% per-GPU oversubscription",
			workload, oversubPercent),
		Metric:  "Adaptive makespan and thrash normalized to same-size baseline cluster",
		Columns: []string{"Runtime", "Thrash", "BaselineThrashPages"},
	}
	b := o.memo.Get(workload, o.Scale)
	for _, n := range MultiGPUClusterSizes {
		base := multigpu.New(b, core.DeriveConfig(b, n, oversubPercent, config.PolicyDisabled, o.Base), n).Run()
		cfg := o.Base
		cfg.Penalty = 8
		adpt := multigpu.New(b, core.DeriveConfig(b, n, oversubPercent, config.PolicyAdaptive, cfg), n).Run()
		t.Add(fmt.Sprintf("%s x%d", workload, n),
			report.Ratio(adpt.Cycles, base.Cycles),
			report.Ratio(adpt.TotalThrashedPages(), base.TotalThrashedPages()),
			float64(base.TotalThrashedPages()))
	}
	return t
}
