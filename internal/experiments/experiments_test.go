package experiments

import (
	"strings"
	"testing"

	"uvmsim/internal/config"
)

// expScale keeps experiment tests fast while staying above the 2-chunk
// capacity floor so oversubscription actually occurs.
const expScale = 0.15

func opts(names ...string) Options {
	return Options{Scale: expScale, Workloads: names}
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1(opts("backprop", "ra"))
	if len(tab.Rows) != 2 || len(tab.Columns) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Column 0 is the normalization base.
	for _, r := range tab.Rows {
		if r.Values[0] != 1.0 {
			t.Fatalf("row %s base not 1.0", r.Label)
		}
		if r.Values[1] < 1.0 || r.Values[2] < 1.0 {
			t.Fatalf("row %s: oversubscription sped things up: %v", r.Label, r.Values)
		}
	}
	// Irregular ra must degrade far more than regular backprop at 125%.
	bp, _ := tab.Get("backprop", 1)
	ra, _ := tab.Get("ra", 1)
	if ra <= bp {
		t.Fatalf("ra (%.2f) not worse than backprop (%.2f) at 125%%", ra, bp)
	}
}

func TestFig2Output(t *testing.T) {
	out := Fig2("sssp", opts())
	for _, frag := range []string{"Figure 2", "edges", "dist", "RO", "RW"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Fig2 missing %q:\n%s", frag, out)
		}
	}
}

func TestFig3Windows(t *testing.T) {
	series := Fig3("fdtd", opts(), []int{2, 4}, 64)
	if len(series) != 2 {
		t.Fatalf("series count %d", len(series))
	}
	for it, csv := range series {
		if !strings.HasPrefix(csv, "cycle,page,write\n") {
			t.Fatalf("iteration %d: bad header", it)
		}
		if strings.Count(csv, "\n") < 2 {
			t.Fatalf("iteration %d: no samples", it)
		}
	}
	// Missing iteration yields the empty header.
	missing := Fig3("fdtd", opts(), []int{99}, 64)
	if strings.Count(missing[99], "\n") != 1 {
		t.Fatal("absent iteration should yield header only")
	}
}

func TestFig4Shape(t *testing.T) {
	// Regular-app ts insensitivity needs enough chunks of slack to be
	// stable; 0.15 scale leaves only ~2 and is noisy, so this test runs
	// a little larger.
	tab := Fig4(Options{Scale: 0.3, Workloads: []string{"hotspot"}})
	if len(tab.Columns) != 3 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	v, _ := tab.Get("hotspot", 0)
	if v != 1.0 {
		t.Fatal("ts=8 column must be the base")
	}
	// Regular apps are insensitive to ts (paper: within ~3% at full
	// scale; the tiny test scale leaves only ~2 chunks of slack, so the
	// tolerance here is wider).
	for c := 1; c < 3; c++ {
		v, _ := tab.Get("hotspot", c)
		if v < 0.8 || v > 1.2 {
			t.Fatalf("hotspot sensitive to ts: col %d = %.3f", c, v)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tab := Fig5(opts("fdtd"))
	if len(tab.Columns) != 3 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	adp, _ := tab.Get("fdtd", 2)
	if adp < 0.9 || adp > 1.1 {
		t.Fatalf("Adaptive at no-oversub = %.3f, want ~1.0", adp)
	}
}

func TestFig6And7Shapes(t *testing.T) {
	rt, th := Fig6And7(opts("backprop", "ra"))
	if len(rt.Rows) != 2 || len(th.Rows) != 2 {
		t.Fatal("row counts wrong")
	}
	// Adaptive must beat baseline for ra and not hurt backprop much.
	raRT, _ := rt.Get("ra", 3)
	if raRT >= 1.0 {
		t.Fatalf("ra Adaptive runtime ratio = %.3f, want < 1", raRT)
	}
	bpRT, _ := rt.Get("backprop", 3)
	if bpRT > 1.15 {
		t.Fatalf("backprop Adaptive runtime ratio = %.3f, want ~1", bpRT)
	}
	// backprop never thrashes: 0/0 = 0 in every column.
	for c := 0; c < 4; c++ {
		v, _ := th.Get("backprop", c)
		if v != 0 {
			t.Fatalf("backprop thrash col %d = %.3f, want 0", c, v)
		}
	}
	raTH, _ := th.Get("ra", 3)
	if raTH >= 1.0 {
		t.Fatalf("ra Adaptive thrash ratio = %.3f, want < 1", raTH)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(opts("ra"))
	if len(tab.Columns) != 5 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	// Larger p must monotonically help ra (paper: strictly linear
	// improvement); allow slack but require p=8 <= p=2 and the giant
	// penalty to be the best or near-best.
	p2, _ := tab.Get("ra", 1)
	p8, _ := tab.Get("ra", 3)
	if p8 > p2 {
		t.Fatalf("ra: p=8 (%.3f) worse than p=2 (%.3f)", p8, p2)
	}
	if p8 >= 1.0 {
		t.Fatalf("ra: p=8 ratio %.3f, want < 1", p8)
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(config.Default())
	for _, frag := range []string{
		"Table I", "28 SMs", "1481 MHz", "4KB", "45us", "Tree", "LRU", "2MB",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table1 missing %q:\n%s", frag, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 || len(o.Workloads) != 8 || o.Base.NumSMs == 0 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}
