package experiments

import (
	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/report"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

// coldDensityDivisor classifies an allocation as cold when its access
// density (accesses per touched page) is below the hottest allocation's
// density divided by this factor — the hot/cold split of Fig. 2b.
const coldDensityDivisor = 8

// ProfileColdAllocations performs the intrusive-profiling step the paper
// says developers must do before placing cudaMemAdvise hints (§III-C):
// it runs the workload once with tracing under fitting memory and
// returns the names of allocations whose page-access density marks them
// as cold.
func ProfileColdAllocations(workload string, o Options) []string {
	tr := RunTrace(workload, o, 0)
	freqs := tr.Collector.FrequencyByAllocation()
	var maxDensity float64
	density := make(map[string]float64, len(freqs))
	for _, af := range freqs {
		if len(af.Pages) == 0 {
			continue
		}
		d := float64(af.TotalAccesses) / float64(len(af.Pages))
		density[af.Name] = d
		if d > maxDensity {
			maxDensity = d
		}
	}
	var cold []string
	for _, af := range freqs {
		if d, ok := density[af.Name]; ok && d < maxDensity/coldDensityDivisor {
			cold = append(cold, af.Name)
		}
	}
	return cold
}

// runWithHints runs the workload under the baseline policy with the
// named allocations hard-pinned to host memory (zero-copy).
func runWithHints(workload string, o Options, pct uint64, pinned []string) *core.Result {
	b := workloads.MustGet(workload)(o.Scale)
	cfg := o.Base.WithPolicy(config.PolicyDisabled).WithOversubscription(b.WorkingSet(), pct)
	s := core.New(b, cfg)
	want := make(map[string]bool, len(pinned))
	for _, n := range pinned {
		want[n] = true
	}
	for _, a := range b.Space.Allocations() {
		if want[a.Name] {
			s.Driver.Advise(a, uvm.AdvicePinHost)
		}
	}
	return s.Run()
}

// OracleHints compares three ways of handling oversubscribed irregular
// workloads: the untouched baseline, the baseline plus profile-derived
// zero-copy hints (the state of the art the paper argues against,
// because it needs per-input profiling and developer intervention), and
// the programmer-agnostic Adaptive policy. Columns are normalized to the
// plain baseline.
func OracleHints(o Options, oversubPercent uint64) *report.Table {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Extension: profile-derived zero-copy hints vs programmer-agnostic Adaptive",
		Metric:  "Runtime normalized to baseline (125% oversubscription)",
		Columns: []string{"Baseline", "ProfiledHints", "Adaptive"},
	}
	for _, name := range o.Workloads {
		cold := ProfileColdAllocations(name, o)
		base := o.runtimeOf(name, oversubPercent, config.PolicyDisabled, o.Base, "")
		hinted := runWithHints(name, o, oversubPercent, cold)
		cfg := o.Base
		cfg.Penalty = 8
		adpt := o.runtimeOf(name, oversubPercent, config.PolicyAdaptive, cfg, "hints")
		t.Add(name, 1.0,
			float64(hinted.Runtime())/float64(base.Runtime()),
			float64(adpt.Runtime())/float64(base.Runtime()))
	}
	return t
}
