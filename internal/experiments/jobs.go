package experiments

import (
	"fmt"

	"uvmsim/internal/mm"
	"uvmsim/internal/serve"
	"uvmsim/internal/workloads"
)

// FigureNames lists the figures expressible as simd job submissions:
// the sweep-shaped figures. (Figures 2 and 3 are characterization
// traces, not config-matrix sweeps, and stay CLI-only.)
func FigureNames() []string { return []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8"} }

// FigureJob expresses one figure sweep as a simd job submission: the
// exact cell set the in-process FigN function simulates, spelled as a
// serve.JobRequest. Submitting the job to a warm server reproduces the
// figure's raw cells entirely from cache; the figure functions and the
// service share the same derivation path (core.DeriveConfig), so their
// per-cell results are identical by construction.
func FigureJob(fig string, o Options) (serve.JobRequest, error) {
	o = o.withDefaults()
	req := serve.JobRequest{
		Name:      fig,
		Scale:     o.Scale,
		Workloads: o.Workloads,
		Base:      &o.Base,
	}
	switch fig {
	case "fig1":
		// Oversubscription sensitivity under the first-touch baseline.
		req.OversubPercents = []uint64{100, 125, 150}
		req.Policies = []string{"disabled"}
	case "fig4":
		// Static-threshold sensitivity: ts is a base-config field, so the
		// sweep needs explicit per-cell bases rather than a matrix axis.
		req.Workloads = nil
		for _, name := range o.Workloads {
			for _, ts := range []uint64{8, 16, 32} {
				base := o.Base
				base.StaticThreshold = ts
				req.Cells = append(req.Cells, serve.CellSpec{
					Workload:       name,
					OversubPercent: 125,
					Policy:         "always",
					Base:           &base,
				})
			}
		}
	case "fig5":
		// Policies with the working set fitting in device memory.
		req.OversubPercents = []uint64{100}
		req.Policies = []string{"disabled", "always", "adaptive"}
	case "fig6", "fig7":
		// One sweep backs both figures: all four schemes at 125% with the
		// paper's p=8 operating point.
		base := o.Base
		base.Penalty = 8
		req.Base = &base
		req.OversubPercents = []uint64{125}
		req.Policies = []string{"disabled", "always", "oversub", "adaptive"}
	case "fig8":
		// Penalty sensitivity: a Disabled baseline column plus one
		// Adaptive cell per penalty point, penalties living in the base.
		req.Workloads = nil
		for _, name := range o.Workloads {
			req.Cells = append(req.Cells, serve.CellSpec{
				Workload:       name,
				OversubPercent: 125,
				Policy:         "disabled",
				Base:           &o.Base,
			})
			for _, p := range Fig8Penalties {
				base := o.Base
				base.Penalty = p
				req.Cells = append(req.Cells, serve.CellSpec{
					Workload:       name,
					OversubPercent: 125,
					Policy:         "adaptive",
					Base:           &base,
				})
			}
		}
	default:
		return serve.JobRequest{}, fmt.Errorf("experiments: no job mapping for figure %q (have %v)", fig, FigureNames())
	}
	if err := jobWorkloads(req); err != nil {
		return serve.JobRequest{}, err
	}
	return req, nil
}

// TournamentJob expresses a pipeline tournament as a simd job
// submission: every planner x prefetcher combination over the workload
// matrix, Adaptive at the configured oversubscription with the paper's
// p=8, exactly the cells Tournament simulates.
func TournamentJob(o TournamentOptions) serve.JobRequest {
	o = o.withDefaults()
	base := o.Base
	base.Penalty = 8
	req := serve.JobRequest{
		Name:            "tournament",
		Scale:           o.Scale,
		Workloads:       o.Options.Workloads,
		OversubPercents: []uint64{o.OversubPercent},
		Policies:        []string{"adaptive"},
		Base:            &base,
	}
	for _, pl := range o.Planners {
		for _, pf := range o.Prefetchers {
			spec := base.MMPipeline
			spec.Planner = pl
			spec.Prefetcher = pf
			req.Pipelines = append(req.Pipelines, spec)
		}
	}
	return req
}

// ColoJobOptions parameterizes a co-location sweep job. The zero value
// selects the canonical BENCH_cxl.json mix: bfs and sssp co-scheduled
// on GPU 0, backprop alone on GPU 1, a 64MB pooled tier, seed 3, every
// registered pool policy.
type ColoJobOptions struct {
	// Tenants is the co-scheduled mix in "workload:gpu:priority" syntax.
	Tenants string
	// GPUs is the number of GPUs sharing the pool.
	GPUs int
	// PoolMB sizes the pooled CXL tier in MiB.
	PoolMB uint64
	// Epochs sizes the run (0 = scenario default).
	Epochs int
	// Seed drives the tenant streams.
	Seed uint64
	// Policies are the pool-policy names to sweep (empty = every
	// registered policy).
	Policies []string
}

func (o ColoJobOptions) withDefaults() ColoJobOptions {
	if o.Tenants == "" {
		o.Tenants = "bfs:0:1,sssp:0:0,backprop:1:1"
		if o.GPUs == 0 {
			o.GPUs = 2
		}
		if o.Seed == 0 {
			o.Seed = 3
		}
	}
	if o.GPUs == 0 {
		o.GPUs = 1
	}
	if o.PoolMB == 0 {
		o.PoolMB = 64
	}
	if len(o.Policies) == 0 {
		o.Policies = mm.PoolPolicyNames()
	}
	return o
}

// ColoJob expresses a CXL co-location pool-policy sweep as a simd job
// submission: the tenant mix run once per pool policy, exactly the
// scenarios `paperbench -bench-cxl-json` simulates. The runs are
// deterministic and content-addressed like every other cell, so
// resubmitting the sweep — or regenerating the benchmark after an
// unrelated sweep warmed the cache — is a pure cache hit.
func ColoJob(o ColoJobOptions) serve.JobRequest {
	o = o.withDefaults()
	req := serve.JobRequest{Name: "colo"}
	for _, policy := range o.Policies {
		req.Colo = append(req.Colo, serve.ColoSpec{
			Tenants:    o.Tenants,
			GPUs:       o.GPUs,
			PoolMB:     o.PoolMB,
			PoolPolicy: policy,
			Epochs:     o.Epochs,
			Seed:       o.Seed,
		})
	}
	return req
}

// jobWorkloads guards the figure-job mappings against workload-set
// drift: a figure job must never reference a workload the registry does
// not know. (The serve package re-validates at submit time; this lets
// tests assert it early.)
func jobWorkloads(req serve.JobRequest) error {
	check := func(name string) error {
		if _, ok := workloads.Get(name); !ok {
			return fmt.Errorf("experiments: job references unknown workload %q", name)
		}
		return nil
	}
	for _, w := range req.Workloads {
		if err := check(w); err != nil {
			return err
		}
	}
	for _, c := range req.Cells {
		if err := check(c.Workload); err != nil {
			return err
		}
	}
	return nil
}
