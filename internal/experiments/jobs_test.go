package experiments

import (
	"net/http/httptest"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/cxl"
	"uvmsim/internal/mm"
	"uvmsim/internal/serve"
)

func runJob(t *testing.T, req serve.JobRequest) (*serve.ResultDoc, serve.JobStatus) {
	t.Helper()
	ts := httptest.NewServer(serve.NewServer(serve.Options{Workers: 4}).Handler())
	t.Cleanup(ts.Close)
	c := &serve.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	st, payload, err := c.RunJob(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := serve.DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	return doc, st
}

// The Fig6 job must simulate exactly the cells the in-process Fig6And7
// sweep does: the summed simulated cycles across the job's cells must
// equal the sweep's deterministic cycle total.
func TestFig6JobMatchesInProcessSweep(t *testing.T) {
	o := Options{Scale: 0.05, Workloads: []string{"bfs", "ra"}}
	_, _, want := Fig6And7Cycles(o)

	req, err := FigureJob("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	doc, st := runJob(t, req)
	if st.TotalCells != 8 {
		t.Fatalf("fig6 job expanded to %d cells, want 2 workloads x 4 policies", st.TotalCells)
	}
	var got uint64
	for _, cell := range doc.Cells {
		got += cell.Record.Counters.Cycles
	}
	if got != want {
		t.Fatalf("job cycles %d != in-process sweep cycles %d", got, want)
	}
}

// Every mapped figure must expand to the sweep shape its FigN function
// simulates.
func TestFigureJobShapes(t *testing.T) {
	o := Options{Scale: 0.05, Workloads: []string{"bfs"}}
	cells := map[string]int{
		"fig1": 3, // 3 oversubscription points
		"fig4": 3, // 3 thresholds
		"fig5": 3, // 3 policies
		"fig6": 4, // 4 policies
		"fig7": 4,
		"fig8": 1 + len(Fig8Penalties),
	}
	for _, fig := range FigureNames() {
		req, err := FigureJob(fig, o)
		if err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		_, st := runJob(t, req)
		if st.State != serve.StateDone {
			t.Fatalf("%s: job ended %s: %s", fig, st.State, st.Error)
		}
		if st.TotalCells != cells[fig] {
			t.Errorf("%s: %d cells, want %d", fig, st.TotalCells, cells[fig])
		}
	}

	if _, err := FigureJob("fig2", o); err == nil {
		t.Error("fig2 (trace characterization) should have no job mapping")
	}
}

// The tournament job must cover every planner x prefetcher combination
// and agree cycle-for-cycle with the in-process tournament.
func TestTournamentJobMatchesInProcessTournament(t *testing.T) {
	to := TournamentOptions{
		Options:     Options{Scale: 0.05, Workloads: []string{"bfs", "ra"}},
		Planners:    []string{"threshold", "thrash-guard"},
		Prefetchers: []string{""},
	}
	res := Tournament(to)
	var want uint64
	for _, e := range res.Entries {
		want += e.TotalCycles
	}

	doc, st := runJob(t, TournamentJob(to))
	if st.TotalCells != 4 {
		t.Fatalf("tournament job expanded to %d cells, want 2 workloads x 2 planners", st.TotalCells)
	}
	var got uint64
	for _, cell := range doc.Cells {
		got += cell.Record.Counters.Cycles
	}
	if got != want {
		t.Fatalf("job cycles %d != tournament cycles %d", got, want)
	}
}

// The colo job must run the tenant mix under every registered pool
// policy, and each entry's result must match a direct in-process
// scenario run — the job submission and `paperbench -bench-cxl-json`
// share one execution path.
func TestColoJobMatchesDirectScenarios(t *testing.T) {
	o := ColoJobOptions{Tenants: "bfs:0:1,ra:0:0", GPUs: 1, PoolMB: 32, Epochs: 3, Seed: 7}
	req := ColoJob(o)
	if len(req.Colo) != len(mm.PoolPolicyNames()) {
		t.Fatalf("job has %d colo cells, want one per policy (%d)", len(req.Colo), len(mm.PoolPolicyNames()))
	}
	doc, st := runJob(t, req)
	if st.State != serve.StateDone || len(doc.Colo) != len(req.Colo) {
		t.Fatalf("status %+v with %d colo entries", st, len(doc.Colo))
	}
	for i, policy := range mm.PoolPolicyNames() {
		entry := doc.Colo[i]
		if entry.Scenario.Policy != policy {
			t.Fatalf("entry %d policy = %q, want %q", i, entry.Scenario.Policy, policy)
		}
		cfg := config.Default()
		cfg.CXLPoolBytes = o.PoolMB << 20
		cfg.PoolPolicy = policy
		tenants, err := cxl.ParseTenants(o.Tenants, o.GPUs)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := cxl.NewScenario(cxl.ScenarioConfig{
			Cfg: cfg, GPUs: o.GPUs, Tenants: tenants,
			Epochs: o.Epochs, Seed: o.Seed, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := entry.Scenario.Result
		if got.Checksum != want.Checksum || got.SimCycles != want.SimCycles {
			t.Fatalf("policy %q: job result %d/%d diverged from direct run %d/%d",
				policy, got.SimCycles, got.Checksum, want.SimCycles, want.Checksum)
		}
	}
}

// The zero-value options select the canonical BENCH_cxl.json mix.
func TestColoJobDefaults(t *testing.T) {
	req := ColoJob(ColoJobOptions{})
	if len(req.Colo) != len(mm.PoolPolicyNames()) {
		t.Fatalf("default job has %d cells, want %d", len(req.Colo), len(mm.PoolPolicyNames()))
	}
	c := req.Colo[0]
	if c.Tenants != "bfs:0:1,sssp:0:0,backprop:1:1" || c.GPUs != 2 || c.PoolMB != 64 || c.Seed != 3 {
		t.Fatalf("default cell = %+v, want the canonical bench mix", c)
	}
}
