package experiments

import (
	"net/http/httptest"
	"testing"

	"uvmsim/internal/serve"
)

func runJob(t *testing.T, req serve.JobRequest) (*serve.ResultDoc, serve.JobStatus) {
	t.Helper()
	ts := httptest.NewServer(serve.NewServer(serve.Options{Workers: 4}).Handler())
	t.Cleanup(ts.Close)
	c := &serve.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	st, payload, err := c.RunJob(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := serve.DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	return doc, st
}

// The Fig6 job must simulate exactly the cells the in-process Fig6And7
// sweep does: the summed simulated cycles across the job's cells must
// equal the sweep's deterministic cycle total.
func TestFig6JobMatchesInProcessSweep(t *testing.T) {
	o := Options{Scale: 0.05, Workloads: []string{"bfs", "ra"}}
	_, _, want := Fig6And7Cycles(o)

	req, err := FigureJob("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	doc, st := runJob(t, req)
	if st.TotalCells != 8 {
		t.Fatalf("fig6 job expanded to %d cells, want 2 workloads x 4 policies", st.TotalCells)
	}
	var got uint64
	for _, cell := range doc.Cells {
		got += cell.Record.Counters.Cycles
	}
	if got != want {
		t.Fatalf("job cycles %d != in-process sweep cycles %d", got, want)
	}
}

// Every mapped figure must expand to the sweep shape its FigN function
// simulates.
func TestFigureJobShapes(t *testing.T) {
	o := Options{Scale: 0.05, Workloads: []string{"bfs"}}
	cells := map[string]int{
		"fig1": 3, // 3 oversubscription points
		"fig4": 3, // 3 thresholds
		"fig5": 3, // 3 policies
		"fig6": 4, // 4 policies
		"fig7": 4,
		"fig8": 1 + len(Fig8Penalties),
	}
	for _, fig := range FigureNames() {
		req, err := FigureJob(fig, o)
		if err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		_, st := runJob(t, req)
		if st.State != serve.StateDone {
			t.Fatalf("%s: job ended %s: %s", fig, st.State, st.Error)
		}
		if st.TotalCells != cells[fig] {
			t.Errorf("%s: %d cells, want %d", fig, st.TotalCells, cells[fig])
		}
	}

	if _, err := FigureJob("fig2", o); err == nil {
		t.Error("fig2 (trace characterization) should have no job mapping")
	}
}

// The tournament job must cover every planner x prefetcher combination
// and agree cycle-for-cycle with the in-process tournament.
func TestTournamentJobMatchesInProcessTournament(t *testing.T) {
	to := TournamentOptions{
		Options:     Options{Scale: 0.05, Workloads: []string{"bfs", "ra"}},
		Planners:    []string{"threshold", "thrash-guard"},
		Prefetchers: []string{""},
	}
	res := Tournament(to)
	var want uint64
	for _, e := range res.Entries {
		want += e.TotalCycles
	}

	doc, st := runJob(t, TournamentJob(to))
	if st.TotalCells != 4 {
		t.Fatalf("tournament job expanded to %d cells, want 2 workloads x 2 planners", st.TotalCells)
	}
	var got uint64
	for _, cell := range doc.Cells {
		got += cell.Record.Counters.Cycles
	}
	if got != want {
		t.Fatalf("job cycles %d != tournament cycles %d", got, want)
	}
}
