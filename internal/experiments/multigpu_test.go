package experiments

import (
	"strings"
	"testing"
)

func TestMultiGPUExperimentShape(t *testing.T) {
	tab := MultiGPU("ra", Options{Scale: 0.15}, 125)
	if len(tab.Rows) != len(MultiGPUClusterSizes) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(MultiGPUClusterSizes))
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	for _, r := range tab.Rows {
		if !strings.HasPrefix(r.Label, "ra x") {
			t.Fatalf("row label %q", r.Label)
		}
		runtime, thrash := r.Values[0], r.Values[1]
		if runtime <= 0 || runtime >= 1.05 {
			t.Fatalf("%s: adaptive runtime ratio %.3f, want < 1.05", r.Label, runtime)
		}
		if thrash > 1.0 {
			t.Fatalf("%s: adaptive thrash ratio %.3f, want <= 1", r.Label, thrash)
		}
	}
	out := tab.Format()
	if !strings.Contains(out, "multi-GPU throttling") {
		t.Fatalf("missing title:\n%s", out)
	}
}
