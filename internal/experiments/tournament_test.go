package experiments

import (
	"strings"
	"testing"

	"uvmsim/internal/resultio"
)

// smallTournament is the cheapest meaningful tournament: two planners
// over two workloads at a tiny scale.
func smallTournament() *TournamentResult {
	return Tournament(TournamentOptions{
		Options:  Options{Scale: 0.05, Workloads: []string{"bfs", "ra"}},
		Planners: []string{"threshold", "reuse-dist"},
	})
}

func TestTournamentLeaderboardShape(t *testing.T) {
	r := smallTournament()
	if len(r.Entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(r.Entries))
	}
	if r.OversubPercent != 125 || r.Scale != 0.05 {
		t.Fatalf("defaults not applied: %+v", r)
	}
	for i, e := range r.Entries {
		if len(e.WorkloadCycles) != len(r.Workloads) {
			t.Fatalf("entry %d has %d workload cycles for %d workloads", i, len(e.WorkloadCycles), len(r.Workloads))
		}
		var sum uint64
		for _, c := range e.WorkloadCycles {
			if c == 0 {
				t.Fatalf("entry %q has a zero-cycle workload", e.Name())
			}
			sum += c
		}
		if sum != e.TotalCycles {
			t.Fatalf("entry %q total %d != workload sum %d", e.Name(), e.TotalCycles, sum)
		}
		if i > 0 && r.Entries[i-1].TotalCycles > e.TotalCycles {
			t.Fatalf("leaderboard not sorted at entry %d", i)
		}
	}
}

// TestTournamentDeterministic pins the leaderboard contract the
// committed BENCH_tournament.json relies on: back-to-back tournaments
// (including a parallel sweep) must produce identical CSVs byte for
// byte.
func TestTournamentDeterministic(t *testing.T) {
	a := smallTournament().CSV()
	b := Tournament(TournamentOptions{
		Options:  Options{Scale: 0.05, Workloads: []string{"bfs", "ra"}, Workers: 4},
		Planners: []string{"threshold", "reuse-dist"},
	}).CSV()
	if a != b {
		t.Fatalf("tournament CSVs differ across runs:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestTournamentLearnedBeatsStaticAdaptive is the headline acceptance
// claim: under real oversubscription pressure, the reuse-distance
// planner must beat the paper's static Adaptive threshold scheme on
// total simulated cycles for the irregular workloads (ra, sssp). Scale
// 0.3 because WithOversubscription's 2-chunk device-memory floor erases
// eviction pressure at smaller scales (see DESIGN.md §13).
func TestTournamentLearnedBeatsStaticAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second tournament at scale 0.3")
	}
	r := Tournament(TournamentOptions{
		Options:  Options{Scale: 0.3, Workloads: []string{"ra", "sssp"}},
		Planners: []string{"threshold", "reuse-dist"},
	})
	byName := map[string]TournamentEntry{}
	for _, e := range r.Entries {
		byName[e.Planner] = e
	}
	learned, static := byName["reuse-dist"], byName["threshold"]
	if learned.TotalCycles >= static.TotalCycles {
		t.Fatalf("reuse-dist (%d cycles) does not beat static threshold (%d cycles)",
			learned.TotalCycles, static.TotalCycles)
	}
}

func TestTournamentTableAndCSV(t *testing.T) {
	r := smallTournament()
	tab := r.Table()
	wantCols := len(r.Workloads) + 1
	if len(tab.Columns) != wantCols || tab.Columns[wantCols-1] != "total" {
		t.Fatalf("table columns = %v", tab.Columns)
	}
	rendered := tab.Format()
	for _, e := range r.Entries {
		if !strings.Contains(rendered, e.Name()) {
			t.Fatalf("table missing entry %q:\n%s", e.Name(), rendered)
		}
	}
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(r.Entries) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 1+len(r.Entries), csv)
	}
	if !strings.HasPrefix(lines[0], "rank,combination,bfs,ra,total") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Fatalf("first data row not rank 1: %q", lines[1])
	}
}

func TestTournamentSuiteConversionValidates(t *testing.T) {
	s := smallTournament().Suite()
	s.GoVersion = "go-test"
	var buf strings.Builder
	if err := resultio.WriteTournamentSuite(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := resultio.ReadTournamentSuite(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("suite produced by Tournament fails its own reader: %v", err)
	}
}
