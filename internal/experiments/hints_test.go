package experiments

import (
	"testing"
)

func TestProfileColdAllocations(t *testing.T) {
	// sssp's cold structures are the read-only edge-sized arrays.
	cold := ProfileColdAllocations("sssp", opts())
	want := map[string]bool{"edges": true, "weights": true}
	for _, n := range cold {
		if n == "dist" || n == "mask" {
			t.Fatalf("hot allocation %q classified cold", n)
		}
	}
	found := 0
	for _, n := range cold {
		if want[n] {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("cold set %v misses edges/weights", cold)
	}
	// fdtd is uniform: nothing is cold.
	if cold := ProfileColdAllocations("fdtd", opts()); len(cold) != 0 {
		t.Fatalf("fdtd cold set %v, want empty", cold)
	}
}

func TestOracleHintsShape(t *testing.T) {
	tab := OracleHints(Options{Scale: expScale, Workloads: []string{"bfs"}}, 125)
	if len(tab.Rows) != 1 || len(tab.Columns) != 3 {
		t.Fatalf("table shape wrong: %+v", tab)
	}
	hinted, _ := tab.Get("bfs", 1)
	adaptive, _ := tab.Get("bfs", 2)
	if hinted <= 0 || adaptive <= 0 {
		t.Fatal("missing ratios")
	}
	// Both the profiled hints and Adaptive must improve on the baseline
	// for an irregular workload under oversubscription.
	if hinted >= 1.0 {
		t.Errorf("profiled hints ratio %.3f, want < 1", hinted)
	}
	if adaptive >= 1.0 {
		t.Errorf("adaptive ratio %.3f, want < 1", adaptive)
	}
}
