package experiments

import (
	"fmt"
	"sort"
	"strings"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/report"
	"uvmsim/internal/resultio"
)

// TournamentOptions configures a pipeline tournament: every requested
// planner x prefetch-governor combination runs the same workload matrix
// under oversubscription and the combinations are ranked by total
// simulated cycles.
type TournamentOptions struct {
	Options
	// OversubPercent is the working-set pressure every cell runs under
	// (0 = the paper's 125%).
	OversubPercent uint64
	// Planners lists the mm planner registry names to enter (nil = the
	// default field: static threshold, thrash-guard and both learned
	// planners).
	Planners []string
	// Prefetchers lists the mm prefetch-governor registry names to
	// cross with the planners (nil = the configured static kind only;
	// include "bandit-pf" to let the governor learn too). The empty
	// string is a valid entry meaning the built-in default governor.
	Prefetchers []string
}

// DefaultTournamentPlanners is the default planner field: the paper's
// static threshold scheme, its thrash-guard variant, and the two
// learned planners.
func DefaultTournamentPlanners() []string {
	return []string{"threshold", "thrash-guard", "reuse-dist", "bandit-ts"}
}

// DefaultTournamentWorkloads is the default workload matrix: the two
// irregular workloads the paper highlights plus the regular bfs — small
// enough to sweep quickly, varied enough that no single heuristic wins
// by construction.
func DefaultTournamentWorkloads() []string {
	return []string{"bfs", "ra", "sssp"}
}

func (o TournamentOptions) withDefaults() TournamentOptions {
	if len(o.Options.Workloads) == 0 {
		o.Options.Workloads = DefaultTournamentWorkloads()
	}
	o.Options = o.Options.withDefaults()
	if o.OversubPercent == 0 {
		o.OversubPercent = 125
	}
	if len(o.Planners) == 0 {
		o.Planners = DefaultTournamentPlanners()
	}
	if len(o.Prefetchers) == 0 {
		o.Prefetchers = []string{""}
	}
	return o
}

// TournamentEntry is one combination's aggregate outcome, plus the
// per-workload cycle counts behind it (aligned with the result's
// Workloads).
type TournamentEntry struct {
	Planner, Prefetcher string
	TotalCycles         uint64
	WorkloadCycles      []uint64
	FarFaults           uint64
	ThrashedPages       uint64
	RemoteAccesses      uint64
}

// Name is the combination's leaderboard identity.
func (e TournamentEntry) Name() string {
	name := "planner=" + e.Planner
	if e.Prefetcher != "" {
		name += ",prefetcher=" + e.Prefetcher
	}
	return name
}

// TournamentResult is a ranked leaderboard over the workload matrix.
type TournamentResult struct {
	Workloads      []string
	Scale          float64
	OversubPercent uint64
	// Entries is sorted best-first: ascending total simulated cycles,
	// ties broken by name so the leaderboard is deterministic.
	Entries []TournamentEntry
}

// Tournament runs every planner x prefetcher combination over the
// workload matrix under the Adaptive policy at the configured
// oversubscription and returns the ranked leaderboard. Cells run in
// parallel (Options.Workers) but the leaderboard is deterministic: every
// simulation is single-threaded and reproducible, and ranking ties
// break lexicographically.
func Tournament(o TournamentOptions) *TournamentResult {
	o = o.withDefaults()
	type combo struct{ planner, prefetcher string }
	var combos []combo
	for _, pl := range o.Planners {
		for _, pf := range o.Prefetchers {
			combos = append(combos, combo{pl, pf})
		}
	}
	// The paper's Fig. 6 operating point: Adaptive with p=8. Every
	// combination shares it, so only the pipeline stages differ.
	base := o.Base
	base.Penalty = 8
	res := o.grid(len(combos), func(name string, col int) *core.Result {
		cfg := base
		cfg.MMPipeline.Planner = combos[col].planner
		cfg.MMPipeline.Prefetcher = combos[col].prefetcher
		return o.runtimeOf(name, o.OversubPercent, config.PolicyAdaptive, cfg, "")
	})
	out := &TournamentResult{
		Workloads:      o.Options.Workloads,
		Scale:          o.Scale,
		OversubPercent: o.OversubPercent,
	}
	for c, cb := range combos {
		e := TournamentEntry{
			Planner:        cb.planner,
			Prefetcher:     cb.prefetcher,
			WorkloadCycles: make([]uint64, len(o.Options.Workloads)),
		}
		for w := range o.Options.Workloads {
			r := res[w][c]
			e.WorkloadCycles[w] = r.Runtime()
			e.TotalCycles += r.Runtime()
			e.FarFaults += r.Counters.FarFaults
			e.ThrashedPages += r.Counters.ThrashedPages
			e.RemoteAccesses += r.Counters.RemoteReads + r.Counters.RemoteWrites
		}
		out.Entries = append(out.Entries, e)
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].TotalCycles != out.Entries[j].TotalCycles {
			return out.Entries[i].TotalCycles < out.Entries[j].TotalCycles
		}
		return out.Entries[i].Name() < out.Entries[j].Name()
	})
	return out
}

// Table renders the leaderboard as a report table: one row per
// combination in rank order, per-workload and total cycles normalized
// to the winner (the winner's row reads 1.00 across).
func (r *TournamentResult) Table() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Pipeline tournament (%d%% oversubscription, scale %g)", r.OversubPercent, r.Scale),
		Metric:  "Simulated cycles normalized to the leaderboard winner",
		Columns: append(append([]string{}, r.Workloads...), "total"),
	}
	if len(r.Entries) == 0 {
		return t
	}
	win := r.Entries[0]
	for _, e := range r.Entries {
		vals := make([]float64, 0, len(r.Workloads)+1)
		for w := range r.Workloads {
			vals = append(vals, report.Ratio(e.WorkloadCycles[w], win.WorkloadCycles[w]))
		}
		vals = append(vals, report.Ratio(e.TotalCycles, win.TotalCycles))
		t.Add(e.Name(), vals...)
	}
	return t
}

// CSV renders the leaderboard with raw cycle counts, one combination
// per row in rank order.
func (r *TournamentResult) CSV() string {
	var b strings.Builder
	b.WriteString("rank,combination")
	for _, w := range r.Workloads {
		b.WriteString(",")
		b.WriteString(w)
	}
	b.WriteString(",total,far_faults,thrashed_pages,remote_accesses\n")
	for i, e := range r.Entries {
		fmt.Fprintf(&b, "%d,%s", i+1, e.Name())
		for _, c := range e.WorkloadCycles {
			fmt.Fprintf(&b, ",%d", c)
		}
		fmt.Fprintf(&b, ",%d,%d,%d,%d\n", e.TotalCycles, e.FarFaults, e.ThrashedPages, e.RemoteAccesses)
	}
	return b.String()
}

// Suite converts the leaderboard to its archival form (goVersion is
// stamped by the caller).
func (r *TournamentResult) Suite() *resultio.TournamentSuite {
	s := &resultio.TournamentSuite{
		Version:        resultio.TournamentFormatVersion,
		Scale:          r.Scale,
		OversubPercent: r.OversubPercent,
		Workloads:      append([]string{}, r.Workloads...),
	}
	for _, e := range r.Entries {
		s.Entries = append(s.Entries, resultio.TournamentEntry{
			Name:           e.Name(),
			Planner:        e.Planner,
			Prefetcher:     e.Prefetcher,
			TotalSimCycles: e.TotalCycles,
			WorkloadCycles: append([]uint64{}, e.WorkloadCycles...),
			FarFaults:      e.FarFaults,
			ThrashedPages:  e.ThrashedPages,
			RemoteAccesses: e.RemoteAccesses,
		})
	}
	return s
}
