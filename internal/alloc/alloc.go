// Package alloc models cudaMallocManaged-style managed allocations: the
// virtual address space shared by host and device, the CUDA size-rounding
// rule, and the decomposition of each allocation into 2MB chunks of 64KB
// basic blocks that the tree prefetcher and the eviction policies operate
// on.
package alloc

import (
	"fmt"
	"sort"

	"uvmsim/internal/memunits"
)

// Allocation is one managed allocation.
type Allocation struct {
	ID   int
	Name string
	// Base is the chunk-aligned virtual base address.
	Base memunits.Addr
	// UserSize is the size the program requested.
	UserSize uint64
	// Size is UserSize rounded per the CUDA rule (next 2^i * 64KB past
	// full 2MB chunks).
	Size uint64
	// ReadOnlyHint marks allocations the workload never writes. The
	// driver does not trust it for correctness — dirty state is tracked
	// per page — but the trace module uses it to label Fig. 2 output.
	ReadOnlyHint bool

	chunks []ChunkInfo
}

// ChunkInfo describes one logical chunk of an allocation.
type ChunkInfo struct {
	// Num is the global chunk number (Base-relative chunks are
	// contiguous because Base is chunk aligned).
	Num memunits.ChunkNum
	// Bytes is the chunk's size: 2MB for all but possibly the last,
	// which holds a power-of-two count of 64KB blocks.
	Bytes uint64
}

// Blocks returns the number of 64KB basic blocks in the chunk.
func (c ChunkInfo) Blocks() uint64 { return c.Bytes / memunits.BlockSize }

// Pages returns the number of 4KB pages in the chunk.
func (c ChunkInfo) Pages() uint64 { return c.Bytes / memunits.PageSize }

// FirstBlock returns the chunk's first global block number.
func (c ChunkInfo) FirstBlock() memunits.BlockNum {
	return memunits.FirstBlockOfChunk(c.Num)
}

// FirstPage returns the chunk's first global page number.
func (c ChunkInfo) FirstPage() memunits.PageNum {
	return c.Num * memunits.PagesPerChunk
}

// Chunks returns the allocation's logical chunk decomposition.
func (a *Allocation) Chunks() []ChunkInfo { return a.chunks }

// End returns the first address past the rounded allocation.
func (a *Allocation) End() memunits.Addr { return a.Base + a.Size }

// Contains reports whether addr falls inside the rounded allocation.
func (a *Allocation) Contains(addr memunits.Addr) bool {
	return addr >= a.Base && addr < a.End()
}

// Addr returns the address of byte offset off, panicking on overflow —
// workloads index allocations through this to catch generator bugs.
func (a *Allocation) Addr(off uint64) memunits.Addr {
	if off >= a.UserSize {
		panic(fmt.Sprintf("alloc: %s offset %d out of user size %d", a.Name, off, a.UserSize))
	}
	return a.Base + off
}

// NumPages returns the rounded size in 4KB pages.
func (a *Allocation) NumPages() uint64 { return a.Size / memunits.PageSize }

// NumBlocks returns the rounded size in 64KB blocks.
func (a *Allocation) NumBlocks() uint64 { return a.Size / memunits.BlockSize }

// FirstPage returns the allocation's first global page number.
func (a *Allocation) FirstPage() memunits.PageNum { return memunits.PageOf(a.Base) }

// FirstBlock returns the allocation's first global block number.
func (a *Allocation) FirstBlock() memunits.BlockNum { return memunits.BlockOf(a.Base) }

// Space is the managed virtual address space of one simulated process.
type Space struct {
	allocs []*Allocation
	// nextBase is the next chunk-aligned base to hand out. A one-chunk
	// guard gap separates allocations so that no 2MB chunk (and hence no
	// prefetch tree) ever spans two allocations, matching the driver.
	nextBase memunits.Addr
}

// NewSpace returns an empty address space. The space starts allocations
// at a nonzero base so that address 0 is never valid.
func NewSpace() *Space {
	return &Space{nextBase: memunits.ChunkSize}
}

// Alloc creates a managed allocation of the given user size.
func (s *Space) Alloc(name string, userSize uint64, readOnlyHint bool) *Allocation {
	if userSize == 0 {
		panic(fmt.Sprintf("alloc: zero-size allocation %q", name))
	}
	rounded := memunits.RoundAllocSize(userSize)
	a := &Allocation{
		ID:           len(s.allocs),
		Name:         name,
		Base:         s.nextBase,
		UserSize:     userSize,
		Size:         rounded,
		ReadOnlyHint: readOnlyHint,
	}
	next := a.Base
	for _, cb := range memunits.ChunkSizes(rounded) {
		a.chunks = append(a.chunks, ChunkInfo{Num: memunits.ChunkOf(next), Bytes: cb})
		next += memunits.ChunkSize // chunk slots are 2MB apart even when partial
	}
	s.nextBase = next + memunits.ChunkSize // guard chunk
	s.allocs = append(s.allocs, a)
	return a
}

// Allocations returns the allocations in creation order.
func (s *Space) Allocations() []*Allocation { return s.allocs }

// TotalUserBytes sums the requested sizes (the paper's "working set").
func (s *Space) TotalUserBytes() uint64 {
	var sum uint64
	for _, a := range s.allocs {
		sum += a.UserSize
	}
	return sum
}

// TotalRoundedBytes sums the rounded sizes (what residency can reach).
func (s *Space) TotalRoundedBytes() uint64 {
	var sum uint64
	for _, a := range s.allocs {
		sum += a.Size
	}
	return sum
}

// Find returns the allocation containing addr, or nil.
func (s *Space) Find(addr memunits.Addr) *Allocation {
	// Allocations are sorted by base; binary search the last base <= addr.
	i := sort.Search(len(s.allocs), func(i int) bool { return s.allocs[i].Base > addr })
	if i == 0 {
		return nil
	}
	if a := s.allocs[i-1]; a.Contains(addr) {
		return a
	}
	return nil
}

// FindChunk returns the allocation owning the chunk and its ChunkInfo.
// ok is false for guard gaps and never-allocated chunks.
func (s *Space) FindChunk(c memunits.ChunkNum) (a *Allocation, info ChunkInfo, ok bool) {
	a = s.Find(memunits.ChunkAddr(c))
	if a == nil {
		return nil, ChunkInfo{}, false
	}
	idx := int(c - memunits.ChunkOf(a.Base))
	if idx < 0 || idx >= len(a.chunks) {
		return nil, ChunkInfo{}, false
	}
	return a, a.chunks[idx], true
}
