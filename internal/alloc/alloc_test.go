package alloc

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/memunits"
)

func TestAllocRoundingAndChunks(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("x", 4<<20+168<<10, false)
	if a.Size != 4<<20+256<<10 {
		t.Fatalf("rounded size = %d, want 4MB+256KB", a.Size)
	}
	chunks := a.Chunks()
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	if chunks[0].Bytes != 2<<20 || chunks[1].Bytes != 2<<20 || chunks[2].Bytes != 256<<10 {
		t.Fatalf("chunk sizes = %v", []uint64{chunks[0].Bytes, chunks[1].Bytes, chunks[2].Bytes})
	}
	if chunks[2].Blocks() != 4 {
		t.Fatalf("trailing chunk blocks = %d, want 4", chunks[2].Blocks())
	}
	// Chunk numbers must be consecutive.
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Num != chunks[i-1].Num+1 {
			t.Fatalf("chunk numbers not consecutive: %d then %d", chunks[i-1].Num, chunks[i].Num)
		}
	}
}

func TestAllocBaseAlignmentAndGuardGap(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 3<<20, false) // 2 chunk slots
	b := s.Alloc("b", 64<<10, false)
	if a.Base%memunits.ChunkSize != 0 || b.Base%memunits.ChunkSize != 0 {
		t.Fatal("allocation bases not chunk aligned")
	}
	if a.Base == 0 {
		t.Fatal("first allocation at address zero")
	}
	// b must start at least one full guard chunk past a's last slot.
	lastSlotEnd := memunits.ChunkAddr(a.Chunks()[len(a.Chunks())-1].Num) + memunits.ChunkSize
	if b.Base < lastSlotEnd+memunits.ChunkSize {
		t.Fatalf("no guard gap: a ends slot at %#x, b at %#x", lastSlotEnd, b.Base)
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size alloc did not panic")
		}
	}()
	NewSpace().Alloc("z", 0, false)
}

func TestAddrBoundsChecked(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100, false)
	if got := a.Addr(99); got != a.Base+99 {
		t.Fatalf("Addr(99) = %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds Addr did not panic")
		}
	}()
	a.Addr(100)
}

func TestFind(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 1<<20, false)
	b := s.Alloc("b", 5<<20, true)
	cases := []struct {
		addr memunits.Addr
		want *Allocation
	}{
		{a.Base, a},
		{a.Base + a.Size - 1, a},
		{a.Base + a.Size, nil}, // guard gap
		{b.Base, b},
		{b.End() - 1, b},
		{b.End(), nil},
		{0, nil},
	}
	for _, tt := range cases {
		if got := s.Find(tt.addr); got != tt.want {
			t.Errorf("Find(%#x) = %v, want %v", tt.addr, got, tt.want)
		}
	}
}

func TestFindChunk(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 4<<20+168<<10, false)
	for i, ci := range a.Chunks() {
		got, info, ok := s.FindChunk(ci.Num)
		if !ok || got != a || info.Num != ci.Num || info.Bytes != ci.Bytes {
			t.Fatalf("FindChunk(chunk %d of a) = %v,%+v,%v", i, got, info, ok)
		}
	}
	// Guard chunk after the allocation must not resolve.
	last := a.Chunks()[len(a.Chunks())-1].Num
	if _, _, ok := s.FindChunk(last + 1); ok {
		t.Fatal("guard chunk resolved to an allocation")
	}
}

func TestTotals(t *testing.T) {
	s := NewSpace()
	s.Alloc("a", 1<<20, false)
	s.Alloc("b", 3<<20, false)
	if got := s.TotalUserBytes(); got != 4<<20 {
		t.Fatalf("TotalUserBytes = %d, want 4MB", got)
	}
	if got := s.TotalRoundedBytes(); got != 4<<20 {
		t.Fatalf("TotalRoundedBytes = %d, want 4MB", got)
	}
	if len(s.Allocations()) != 2 {
		t.Fatal("Allocations count wrong")
	}
}

func TestChunkInfoHelpers(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 2<<20, false)
	c := a.Chunks()[0]
	if c.Blocks() != 32 || c.Pages() != 512 {
		t.Fatalf("full chunk blocks=%d pages=%d", c.Blocks(), c.Pages())
	}
	if c.FirstBlock() != c.Num*memunits.BlocksPerChunk {
		t.Fatal("FirstBlock inconsistent")
	}
	if c.FirstPage() != c.Num*memunits.PagesPerChunk {
		t.Fatal("FirstPage inconsistent")
	}
	if a.FirstPage() != memunits.PageOf(a.Base) || a.FirstBlock() != memunits.BlockOf(a.Base) {
		t.Fatal("allocation first page/block inconsistent")
	}
	if a.NumPages() != 512 || a.NumBlocks() != 32 {
		t.Fatalf("NumPages=%d NumBlocks=%d", a.NumPages(), a.NumBlocks())
	}
}

// Property: for any set of allocation sizes, allocations never overlap,
// every in-range address Finds its allocation, and chunk lookups agree
// with Find.
func TestSpaceDisjointnessProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		s := NewSpace()
		var allocs []*Allocation
		for i, raw := range sizes {
			if i >= 8 {
				break
			}
			size := uint64(raw)%(8<<20) + 1
			allocs = append(allocs, s.Alloc("p", size, false))
		}
		for i, a := range allocs {
			for j, b := range allocs {
				if i != j && a.Base < b.End() && b.Base < a.End() {
					return false
				}
			}
			probes := []memunits.Addr{a.Base, a.Base + a.Size/2, a.End() - 1}
			for _, p := range probes {
				if s.Find(p) != a {
					return false
				}
			}
			for _, ci := range a.Chunks() {
				if got, _, ok := s.FindChunk(ci.Num); !ok || got != a {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
