package core

import (
	"testing"

	"uvmsim/internal/config"
)

// TestRunsAreDeterministic asserts the repository-wide guarantee that
// identical inputs produce bit-identical results: every counter, span
// and timestamp must match across repeated runs. The experiment tables
// and EXPERIMENTS.md rely on this.
func TestRunsAreDeterministic(t *testing.T) {
	for _, name := range []string{"sssp", "ra", "hotspot"} {
		cfg := config.Default()
		cfg.Penalty = 8
		a := RunWorkload(name, 0.1, 125, config.PolicyAdaptive, cfg)
		b := RunWorkload(name, 0.1, 125, config.PolicyAdaptive, cfg)
		if a.Counters != b.Counters {
			t.Fatalf("%s: counters differ across identical runs:\n%+v\n%+v", name, a.Counters, b.Counters)
		}
		if len(a.Spans) != len(b.Spans) {
			t.Fatalf("%s: span counts differ", name)
		}
		for i := range a.Spans {
			if a.Spans[i] != b.Spans[i] {
				t.Fatalf("%s: span %d differs: %+v vs %+v", name, i, a.Spans[i], b.Spans[i])
			}
		}
	}
}
