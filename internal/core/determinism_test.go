package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/sweep"
)

// TestRunsAreDeterministic asserts the repository-wide guarantee that
// identical inputs produce bit-identical results: every counter, span
// and timestamp must match across repeated runs. The experiment tables
// and EXPERIMENTS.md rely on this.
// fullReport renders every observable statistic of a run — all counters
// and every kernel span — so golden comparisons catch divergence in any
// field, not just runtime.
func fullReport(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %+v\n", r.Workload, r.Counters)
	for _, s := range r.Spans {
		fmt.Fprintf(&b, "%+v\n", s)
	}
	return b.String()
}

// TestGoldenDeterminism is the golden regression harness for the engine
// and driver hot-path overhaul: fdtd and sssp under Adaptive at 125%
// oversubscription must produce byte-identical full reports across
// repeated runs and across every sweep.Parallel worker count. Any
// scheduling-order or pooling bug in the optimized paths shows up here
// as a diff in some counter or span timestamp.
func TestGoldenDeterminism(t *testing.T) {
	for _, name := range []string{"fdtd", "sssp"} {
		cfg := config.Default()
		cfg.Penalty = 8
		run := func() string {
			return fullReport(RunWorkload(name, 0.1, 125, config.PolicyAdaptive, cfg))
		}
		golden := run()
		if again := run(); again != golden {
			t.Fatalf("%s: back-to-back runs differ:\n--- first\n%s--- second\n%s", name, golden, again)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			jobs := make([]func() string, 6)
			for i := range jobs {
				jobs[i] = run
			}
			for i, got := range sweep.Parallel(jobs, workers) {
				if got != golden {
					t.Fatalf("%s: job %d with %d workers diverged from golden:\n--- golden\n%s--- got\n%s",
						name, i, workers, golden, got)
				}
			}
		}
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	for _, name := range []string{"sssp", "ra", "hotspot"} {
		cfg := config.Default()
		cfg.Penalty = 8
		a := RunWorkload(name, 0.1, 125, config.PolicyAdaptive, cfg)
		b := RunWorkload(name, 0.1, 125, config.PolicyAdaptive, cfg)
		if a.Counters != b.Counters {
			t.Fatalf("%s: counters differ across identical runs:\n%+v\n%+v", name, a.Counters, b.Counters)
		}
		if len(a.Spans) != len(b.Spans) {
			t.Fatalf("%s: span counts differ", name)
		}
		for i := range a.Spans {
			if a.Spans[i] != b.Spans[i] {
				t.Fatalf("%s: span %d differs: %+v vs %+v", name, i, a.Spans[i], b.Spans[i])
			}
		}
	}
}
