// Package core wires the GPU model, the UVM driver and a workload into a
// complete simulation: kernels launch sequentially with device
// synchronization between them (the cudaDeviceSynchronize model of the
// benchmarks), and the run produces a stats report plus per-kernel
// timing spans.
package core

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/gpu"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

// eventBudget bounds any single simulation run; exceeding it means a
// model livelock and panics loudly rather than hanging.
const eventBudget = 2_000_000_000

// KernelSpan records one kernel launch's window.
type KernelSpan struct {
	Name  string
	Iter  int // logical iteration (1-based)
	Start sim.Cycle
	End   sim.Cycle
}

// Result is the outcome of one simulation run.
type Result struct {
	Workload string
	Config   config.Config
	Counters stats.Counters
	Spans    []KernelSpan
}

// Runtime returns the total kernel execution time in cycles.
func (r *Result) Runtime() uint64 { return r.Counters.Cycles }

// Simulator couples one built workload with one configuration.
type Simulator struct {
	Engine *sim.Engine
	Driver *uvm.Driver
	GPU    *gpu.GPU
	built  *workloads.Built
	cfg    config.Config

	// Observability state (see obs.go); zero when disabled.
	obsRun     *obs.Run
	checker    *obs.Checker
	checkEvery uint64
	checksRun  uint64
}

// New creates a simulator for the workload under the configuration.
func New(b *workloads.Built, cfg config.Config) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(eventBudget)
	drv := uvm.New(eng, cfg, b.Space)
	g := gpu.New(eng, cfg, drv, drv.Stats())
	return &Simulator{Engine: eng, Driver: drv, GPU: g, built: b, cfg: cfg}
}

// SetObserver installs a driver access observer (tracing).
func (s *Simulator) SetObserver(obs uvm.AccessObserver) { s.Driver.SetObserver(obs) }

// Run executes every kernel in order and returns the result. It panics
// if the memory subsystem fails to quiesce (a model deadlock) or if the
// stats invariants do not hold.
func (s *Simulator) Run() *Result {
	res := s.StartResult()
	for i := range s.built.Kernels {
		s.RunKernel(i, res)
	}
	s.FinishRun(res)
	return res
}

// StartResult returns an empty result for a stepwise run (see RunKernel
// and FinishRun). The stepwise surface exists for the prefix-sharing
// fork runner (internal/snapshot), which interleaves kernel execution
// with barrier snapshots; Run is its trivial composition.
func (s *Simulator) StartResult() *Result {
	return &Result{Workload: s.built.Name, Config: s.cfg}
}

// KernelCount returns the number of kernel launches in the workload.
func (s *Simulator) KernelCount() int { return len(s.built.Kernels) }

// RunKernel executes kernel launch i (in order) and appends its span to
// res. Callers must run kernels 0..KernelCount()-1 exactly once each,
// in order, then call FinishRun.
func (s *Simulator) RunKernel(i int, res *Result) {
	k := s.built.Kernels[i]
	start := s.Engine.Now()
	end := s.GPU.RunSync(k)
	span := KernelSpan{Name: k.Name, Iter: s.built.IterOf[i], Start: start, End: end}
	res.Spans = append(res.Spans, span)
	s.observeKernel(span)
}

// FinishRun drains the tail of the simulation, runs the final
// consistency checks and fills in the run counters.
func (s *Simulator) FinishRun(res *Result) {
	// Drain in-flight migrations (prefetches may outlive the last warp).
	s.Engine.Run()
	if s.Driver.PendingWork() {
		panic(fmt.Sprintf("core: %s did not quiesce (stuck migrations)", s.built.Name))
	}
	if s.checkEvery > 0 {
		if err := s.CheckNow(); err != nil {
			panic(err)
		}
		// The run has quiesced, so the strict (non-mid-run) walk applies.
		if err := s.Driver.CheckConsistency(); err != nil {
			panic(&obs.Violation{Cycle: uint64(s.Engine.Now()), Check: "driver-consistency-final", Err: err})
		}
	}
	s.Driver.Finalize()
	res.Counters = *s.Driver.Stats()
	res.Counters.Cycles = uint64(s.Engine.Now())
	if err := res.Counters.Validate(); err != nil {
		panic(fmt.Sprintf("core: %s: %v", s.built.Name, err))
	}
}

// Quiescent reports whether the simulator is at a fork point: no engine
// events pending and no driver work queued. Kernel barriers are not
// automatically quiescent — prefetch and write-back tails may outlive
// the last warp of a kernel — so the fork runner checks before forking.
func (s *Simulator) Quiescent() bool {
	return s.Engine.Pending() == 0 && !s.Driver.PendingWork()
}

// Fork returns an independent simulator continuing from this one's
// current state under cfg, which may differ in policy fields only. It
// is valid only at a quiescent point (see Quiescent) with observability
// detached. The caller owns the equivalence argument: the forked run is
// byte-identical to a from-scratch run under cfg only if every decision
// in the donor's history would have come out the same under cfg — see
// internal/snapshot for the divergence monitor that proves this.
func (s *Simulator) Fork(cfg config.Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: fork config: %w", err)
	}
	if s.obsRun != nil || s.checker != nil {
		return nil, fmt.Errorf("core: fork with observability attached")
	}
	if !s.Quiescent() {
		return nil, fmt.Errorf("core: fork at a non-quiescent point")
	}
	pipe, err := mm.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: fork pipeline: %w", err)
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(eventBudget)
	eng.Restore(s.Engine.Snapshot())
	drv, err := s.Driver.CloneWith(eng, cfg, pipe)
	if err != nil {
		return nil, err
	}
	g, err := s.GPU.CloneFor(eng, cfg, drv, drv.Stats())
	if err != nil {
		return nil, err
	}
	return &Simulator{Engine: eng, Driver: drv, GPU: g, built: s.built, cfg: cfg}, nil
}

// Run builds and runs a workload in one step.
func Run(b *workloads.Built, cfg config.Config) *Result {
	return New(b, cfg).Run()
}

// PrepareWorkload builds the named workload at the given scale and
// derives the run configuration: the migration policy is applied (with
// the paper's replacement-policy pairing) and device memory is sized so
// that a 1/shares share of the working set is oversubPercent of
// capacity (100 = fits exactly). shares is 1 for single-GPU runs; the
// multi-GPU harness passes the cluster size so per-GPU oversubscription
// pressure stays comparable across cluster sizes. This is the single
// source of the workload-to-config plumbing shared by the single-GPU
// and multi-GPU entry points.
func PrepareWorkload(name string, scale float64, shares int, oversubPercent uint64, pol config.MigrationPolicy, base config.Config) (*workloads.Built, config.Config) {
	b := workloads.MustGet(name)(scale)
	return b, DeriveConfig(b, shares, oversubPercent, pol, base)
}

// DeriveConfig is the configuration half of PrepareWorkload, split out
// so callers holding an already-built (possibly memoized and shared)
// workload can derive per-cell configurations without rebuilding it.
// A Built is immutable once constructed, so one instance may back any
// number of concurrent runs, each with its own derived config.
func DeriveConfig(b *workloads.Built, shares int, oversubPercent uint64, pol config.MigrationPolicy, base config.Config) config.Config {
	if shares < 1 {
		panic(fmt.Sprintf("core: invalid share count %d", shares))
	}
	ws := b.WorkingSet() / uint64(shares)
	return base.WithPolicy(pol).WithOversubscription(ws, oversubPercent)
}

// RunWorkload is the experiment-harness entry point: it builds the named
// workload at the given scale, sizes device memory so the working set is
// oversubPercent of capacity (100 = fits exactly), applies the migration
// policy (with the paper's replacement-policy pairing), and runs.
func RunWorkload(name string, scale float64, oversubPercent uint64, pol config.MigrationPolicy, base config.Config) *Result {
	b, cfg := PrepareWorkload(name, scale, 1, oversubPercent, pol, base)
	return Run(b, cfg)
}
