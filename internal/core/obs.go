package core

import (
	"reflect"

	"uvmsim/internal/config"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Observe attaches a run's observability instruments to the simulator:
// driver and GPU metric publication, kernel-track tracing, and — when
// r.CheckEvery > 0 — a periodic invariant sweep that validates the
// driver's cross-structure accounting and every stats counter's
// monotonicity, panicking with a cycle-stamped *obs.Violation on the
// first breach. Call before Run; a nil or disabled Run detaches.
func (s *Simulator) Observe(r *obs.Run) {
	s.obsRun = nil
	s.checker = nil
	s.checkEvery = 0
	s.Engine.SetDaemon(0, nil)
	if !r.Enabled() {
		s.Driver.SetObs(nil)
		s.GPU.SetObs(nil)
		return
	}
	s.obsRun = r
	s.Driver.SetObs(r)
	s.GPU.SetObs(r)
	if r.Reg != nil {
		eng := s.Engine
		r.Reg.RegisterProvider(func(e obs.Emitter) {
			e.Counter("sim.cycles", uint64(eng.Now()))
			e.Counter("sim.events_fired", eng.Fired())
		})
	}
	if r.CheckEvery > 0 {
		s.checker = s.newChecker()
		s.checkEvery = r.CheckEvery
		// The sweep rides on the engine's daemon hook: it observes state
		// at real event boundaries and can never extend the run, so
		// cycle counts are identical with and without checking.
		s.Engine.SetDaemon(sim.Cycle(r.CheckEvery), s.checkTick)
	}
}

// newChecker builds the invariant suite: the driver's full consistency
// walk plus a monotonicity watch on every uint64 field of the stats
// block (built by reflection so new counters are covered automatically).
func (s *Simulator) newChecker() *obs.Checker {
	c := &obs.Checker{}
	c.Add("driver-consistency", s.Driver.CheckConsistencyMidRun)
	v := reflect.ValueOf(s.Driver.Stats()).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			continue
		}
		p := f.Addr().Interface().(*uint64)
		c.AddMonotonic("stats."+t.Field(i).Name, func() uint64 { return *p })
	}
	return c
}

// CheckNow runs the invariant suite at the current cycle, building it on
// first use. Tests use it to validate states directly; Run's periodic
// tick panics on what this returns.
func (s *Simulator) CheckNow() error {
	if s.checker == nil {
		s.checker = s.newChecker()
	}
	return s.checker.RunAll(uint64(s.Engine.Now()))
}

// checkTick is the periodic invariant sweep, driven by the engine
// daemon.
func (s *Simulator) checkTick() {
	s.checksRun++
	if err := s.checker.RunAll(uint64(s.Engine.Now())); err != nil {
		panic(err)
	}
}

// InvariantChecks reports how many periodic invariant sweeps have fired
// (tests assert the checker actually ran).
func (s *Simulator) InvariantChecks() uint64 { return s.checksRun }

// observeKernel emits the kernel's span on the kernel track.
func (s *Simulator) observeKernel(span KernelSpan) {
	r := s.obsRun
	if r == nil || r.Tr == nil {
		return
	}
	r.Tr.Emit(obs.Span{
		Name: span.Name, Cat: "kernel", TID: obs.TrackKernel,
		Start: uint64(span.Start), Dur: uint64(span.End - span.Start),
		Value: uint64(span.Iter),
	})
}

// RunWorkloadObs is RunWorkload with observability attached: the run's
// instruments observe the whole simulation and a final invariant check
// fires after quiescence when checking is enabled.
func RunWorkloadObs(name string, scale float64, oversubPercent uint64, pol config.MigrationPolicy, base config.Config, r *obs.Run) *Result {
	b, cfg := PrepareWorkload(name, scale, 1, oversubPercent, pol, base)
	s := New(b, cfg)
	s.Observe(r)
	return s.Run()
}
