package core

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/sim"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

const testScale = 0.15

func run(t *testing.T, name string, percent uint64, pol config.MigrationPolicy) *Result {
	t.Helper()
	cfg := config.Default()
	cfg.Penalty = 8 // the paper's Fig. 6 setting
	return RunWorkload(name, testScale, percent, pol, cfg)
}

// Every workload must complete under every policy at 100% and 125%
// oversubscription with valid stats — the core integration matrix.
func TestAllWorkloadsAllPoliciesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is slow")
	}
	for _, name := range workloads.Names() {
		for _, pol := range config.Policies() {
			for _, pct := range []uint64{100, 125} {
				name, pol, pct := name, pol, pct
				t.Run(name+"/"+pol.String()+"/"+itoa(pct), func(t *testing.T) {
					res := run(t, name, pct, pol)
					if res.Runtime() == 0 {
						t.Fatal("zero runtime")
					}
					if res.Counters.WarpsRetired == 0 {
						t.Fatal("no warps retired")
					}
					if len(res.Spans) == 0 {
						t.Fatal("no kernel spans")
					}
					for i := 1; i < len(res.Spans); i++ {
						if res.Spans[i].Start < res.Spans[i-1].End {
							t.Fatal("kernel spans overlap (no device sync)")
						}
					}
				})
			}
		}
	}
}

func itoa(v uint64) string {
	if v == 100 {
		return "100"
	}
	return "125"
}

func TestOversubscriptionLatchesOnlyWhenNeeded(t *testing.T) {
	fit := run(t, "fdtd", 100, config.PolicyDisabled)
	if fit.Counters.EvictedPages != 0 {
		t.Fatalf("100%% run evicted %d pages", fit.Counters.EvictedPages)
	}
	over := run(t, "fdtd", 125, config.PolicyDisabled)
	if over.Counters.EvictedPages == 0 {
		t.Fatal("125% run never evicted")
	}
	if over.Runtime() <= fit.Runtime() {
		t.Fatalf("oversubscription did not slow fdtd: %d vs %d", over.Runtime(), fit.Runtime())
	}
}

func TestBackpropHasNoThrash(t *testing.T) {
	for _, pol := range config.Policies() {
		res := run(t, "backprop", 125, pol)
		if res.Counters.ThrashedPages != 0 {
			t.Fatalf("backprop thrashed %d pages under %v", res.Counters.ThrashedPages, pol)
		}
	}
}

func TestAdaptiveMatchesBaselineWhenFits(t *testing.T) {
	// Paper Fig. 5: under no oversubscription Adaptive is equivalent to
	// first-touch migration. Allow 10% slack for second-order effects.
	for _, name := range []string{"fdtd", "bfs"} {
		base := run(t, name, 100, config.PolicyDisabled)
		adpt := run(t, name, 100, config.PolicyAdaptive)
		ratio := float64(adpt.Runtime()) / float64(base.Runtime())
		if ratio > 1.10 {
			t.Errorf("%s: Adaptive/Baseline at 100%% = %.3f, want <= 1.10", name, ratio)
		}
	}
}

func TestAdaptiveReducesThrashForIrregular(t *testing.T) {
	// Paper Fig. 7: Adaptive cuts page thrashing for irregular apps at
	// 125% oversubscription. sssp needs near-paper scale for its edge
	// arrays to stay block-sparse, so the small-scale assertion uses ra
	// and bfs (the full-scale sweep lives in cmd/paperbench and the
	// figure benchmarks).
	for _, name := range []string{"ra", "bfs"} {
		base := run(t, name, 125, config.PolicyDisabled)
		adpt := run(t, name, 125, config.PolicyAdaptive)
		if base.Counters.ThrashedPages == 0 {
			t.Fatalf("%s baseline did not thrash; workload too small", name)
		}
		if adpt.Counters.ThrashedPages >= base.Counters.ThrashedPages {
			t.Errorf("%s: Adaptive thrash %d not below baseline %d",
				name, adpt.Counters.ThrashedPages, base.Counters.ThrashedPages)
		}
	}
}

func TestAdaptiveImprovesIrregularRuntime(t *testing.T) {
	// Paper Fig. 6 headline: 22%-78% improvement for irregular apps at
	// 125% oversubscription. At test scale we only assert improvement.
	for _, name := range []string{"ra"} {
		base := run(t, name, 125, config.PolicyDisabled)
		adpt := run(t, name, 125, config.PolicyAdaptive)
		if adpt.Runtime() >= base.Runtime() {
			t.Errorf("%s: Adaptive runtime %d not below baseline %d",
				name, adpt.Runtime(), base.Runtime())
		}
	}
}

func TestRegularUnaffectedByAdaptive(t *testing.T) {
	// Paper Fig. 6: regular applications stay within a few percent.
	for _, name := range []string{"backprop", "hotspot"} {
		base := run(t, name, 125, config.PolicyDisabled)
		adpt := run(t, name, 125, config.PolicyAdaptive)
		ratio := float64(adpt.Runtime()) / float64(base.Runtime())
		if ratio > 1.15 {
			t.Errorf("%s: Adaptive/Baseline at 125%% = %.3f, want <= 1.15", name, ratio)
		}
	}
}

func TestObserverReceivesAccesses(t *testing.T) {
	b := workloads.MustGet("fdtd")(testScale)
	cfg := config.Default().WithOversubscription(b.WorkingSet(), 100)
	s := New(b, cfg)
	var count int
	s.SetObserver(func(_ sim.Cycle, addr memunits.Addr, _ bool, _ uvm.AccessKind) {
		count++
		if b.Space.Find(addr) == nil {
			t.Fatal("observer saw unmapped address")
		}
	})
	s.Run()
	if count == 0 {
		t.Fatal("observer never called")
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	b := workloads.MustGet("sssp")(testScale)
	cfg := config.Default().WithPolicy(config.PolicyAdaptive).WithOversubscription(b.WorkingSet(), 125)
	s := New(b, cfg)
	res := s.Run()
	if s.Driver.ResidentPages() > s.Driver.Memory().TotalPages() {
		t.Fatal("resident pages exceed capacity")
	}
	if res.Counters.MigratedPages < res.Counters.EvictedPages {
		t.Fatalf("evicted %d > migrated %d", res.Counters.EvictedPages, res.Counters.MigratedPages)
	}
}

func TestExtraWorkloadsRunEndToEnd(t *testing.T) {
	for _, name := range workloads.ExtraNames() {
		for _, pol := range []config.MigrationPolicy{config.PolicyDisabled, config.PolicyAdaptive} {
			res := run(t, name, 125, pol)
			if res.Counters.WarpsRetired == 0 {
				t.Fatalf("%s/%v retired no warps", name, pol)
			}
		}
	}
}

func TestRunWorkloadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown workload did not panic")
		}
	}()
	RunWorkload("nope", 1, 100, config.PolicyDisabled, config.Default())
}
