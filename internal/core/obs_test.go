package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/obs"
	"uvmsim/internal/workloads"
)

// obsSim builds a small simulator with the given instruments attached.
func obsSim(t *testing.T, workload string, pct uint64, r *obs.Run) *Simulator {
	t.Helper()
	b := workloads.MustGet(workload)(testScale)
	cfg := config.Default().WithPolicy(config.PolicyAdaptive).WithOversubscription(b.WorkingSet(), pct)
	cfg.Penalty = 8
	s := New(b, cfg)
	s.Observe(r)
	return s
}

// Attaching the full instrument set must not change simulated behaviour:
// identical counters and kernel spans with observability on and off.
func TestObserveDoesNotPerturbSimulation(t *testing.T) {
	plain := obsSim(t, "fdtd", 125, nil).Run()
	r := &obs.Run{
		Name:       "fdtd",
		Reg:        obs.NewRegistry(),
		Tr:         obs.NewTracer(1),
		CheckEvery: 10_000,
	}
	s := obsSim(t, "fdtd", 125, r)
	instrumented := s.Run()
	if plain.Counters != instrumented.Counters {
		t.Fatalf("counters diverge with observability on:\n  off: %v\n  on:  %v",
			&plain.Counters, &instrumented.Counters)
	}
	if !reflect.DeepEqual(plain.Spans, instrumented.Spans) {
		t.Fatalf("kernel spans diverge with observability on")
	}
	if s.InvariantChecks() == 0 {
		t.Fatal("periodic invariant sweep never fired")
	}
	if r.Tr.Seen() == 0 {
		t.Fatal("tracer saw no spans")
	}
}

// The canonical metrics published by the driver must exactly match the
// stats block of the same run.
func TestMetricsSnapshotMatchesStats(t *testing.T) {
	r := &obs.Run{Name: "sssp", Reg: obs.NewRegistry()}
	res := obsSim(t, "sssp", 125, r).Run()
	snap := r.Collect()
	c := &res.Counters
	want := map[string]uint64{
		"uvm.access.near":              c.NearAccesses,
		"uvm.access.remote_reads":      c.RemoteReads,
		"uvm.access.remote_writes":     c.RemoteWrites,
		"uvm.fault.far":                c.FarFaults,
		"uvm.fault.batches":            c.FaultBatches,
		"uvm.migrate.pages":            c.MigratedPages,
		"uvm.migrate.prefetched_pages": c.PrefetchedPages,
		"uvm.migrate.thrashed_pages":   c.ThrashedPages,
		"uvm.evict.pages":              c.EvictedPages,
		"uvm.evict.writeback_pages":    c.WrittenBackPages,
		"uvm.pcie.h2d_bytes":           c.H2DBytes,
		"uvm.pcie.d2h_bytes":           c.D2HBytes,
		"uvm.tlb.hits":                 c.TLBHits,
		"uvm.tlb.misses":               c.TLBMisses,
		"uvm.tlb.shootdowns":           c.TLBShootdowns,
		"gpu.instructions":             c.Instructions,
		"gpu.mem_instructions":         c.MemInstructions,
		"gpu.warps_retired":            c.WarpsRetired,
		"sim.cycles":                   c.Cycles,
	}
	for name, v := range want {
		if got := snap.Counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if c.EvictedPages == 0 {
		t.Fatal("test needs an oversubscribed run with evictions")
	}
	if snap.Counter("uvm.evict.selections.LFU.strict")+snap.Counter("uvm.evict.selections.LFU.relaxed") == 0 {
		t.Errorf("no victim selections recorded despite %d evicted pages; counters=%v",
			c.EvictedPages, snap.SortedCounterNames())
	}
	if snap.Histograms["uvm.fault.batch_size"].Count != c.FaultBatches {
		t.Errorf("batch-size histogram count %d != fault batches %d",
			snap.Histograms["uvm.fault.batch_size"].Count, c.FaultBatches)
	}
	if snap.Counter("gpu.warp_stall_cycles") == 0 {
		t.Error("no warp stall cycles recorded")
	}
}

// A deliberately injected accounting bug must be caught with a
// cycle-stamped diagnostic.
func TestInjectedAccountingBugCaught(t *testing.T) {
	s := obsSim(t, "fdtd", 100, &obs.Run{CheckEvery: 1000})
	// Skew the device-memory accounting behind the driver's back: one
	// page allocated with no matching residency.
	s.Driver.Memory().Allocate(1)
	err := s.CheckNow()
	if err == nil {
		t.Fatal("skewed accounting not detected")
	}
	var v *obs.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error type %T, want *obs.Violation", err)
	}
	if v.Check != "driver-consistency" {
		t.Fatalf("check = %q", v.Check)
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("diagnostic not cycle-stamped: %q", err)
	}
}

// The periodic sweep must fail fast mid-run, panicking with the
// violation rather than completing on corrupted state.
func TestPeriodicCheckerFailsFastMidRun(t *testing.T) {
	s := obsSim(t, "fdtd", 100, &obs.Run{CheckEvery: 500})
	s.Driver.Memory().Allocate(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("run completed on corrupted state")
		}
		v, ok := r.(*obs.Violation)
		if !ok {
			t.Fatalf("panic value %T, want *obs.Violation", r)
		}
		if v.Check != "driver-consistency" || v.Cycle == 0 {
			t.Fatalf("violation = %+v", v)
		}
	}()
	s.Run()
}

// Full acceptance matrix: every workload under every policy at 100% and
// 125% oversubscription with invariant checking and metrics on.
func TestInvariantMatrixAllWorkloadsAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("invariant matrix is slow")
	}
	for _, name := range workloads.Names() {
		for _, pol := range config.Policies() {
			for _, pct := range []uint64{100, 125} {
				name, pol, pct := name, pol, pct
				t.Run(fmt.Sprintf("%s/%s/%d", name, pol, pct), func(t *testing.T) {
					t.Parallel()
					b := workloads.MustGet(name)(0.1)
					cfg := config.Default().WithPolicy(pol).WithOversubscription(b.WorkingSet(), pct)
					cfg.Penalty = 8
					s := New(b, cfg)
					s.Observe(&obs.Run{Name: t.Name(), Reg: obs.NewRegistry(), CheckEvery: 5_000})
					res := s.Run()
					if res.Runtime() == 0 {
						t.Fatal("zero runtime")
					}
					if s.InvariantChecks() == 0 {
						t.Fatal("invariant sweep never fired")
					}
				})
			}
		}
	}
}
