package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"uvmsim/internal/config"
)

// -update-golden rewrites the committed golden files instead of
// comparing against them. Use only for intentional behaviour changes.
var updateGoldenFlag = flag.Bool("update-golden", false, "rewrite golden files instead of comparing")

func updateGolden(t *testing.T) bool {
	t.Helper()
	return *updateGoldenFlag
}

// banditEpsilonZeroReport runs sssp under the bandit-ts planner with
// exploration disabled. With epsilon 0 the bandit never leaves arm 0,
// and arm 0 is pinned to the configured (threshold, thrash-guard)
// operating point, so the run must collapse to the static threshold
// planner exactly.
func banditEpsilonZeroReport() string {
	cfg := config.Default()
	cfg.Penalty = 8
	cfg.BanditEpsilonPct = 0
	cfg.MMPipeline.Planner = "bandit-ts"
	return fullReport(RunWorkload("sssp", 0.1, 125, config.PolicyAdaptive, cfg))
}

// TestBanditEpsilonZeroMatchesStaticAdaptive is the learned-policy
// golden regression: bandit-ts with BanditEpsilonPct=0 must be
// byte-identical — every counter and every span timestamp — to the
// static Adaptive threshold run it claims to generalize. This is the
// whole-simulator form of the collapse proof in DESIGN.md §13; the
// mm-level unit form lives in internal/mm/mm_test.go.
func TestBanditEpsilonZeroMatchesStaticAdaptive(t *testing.T) {
	cfg := config.Default()
	cfg.Penalty = 8
	static := fullReport(RunWorkload("sssp", 0.1, 125, config.PolicyAdaptive, cfg))
	if got := banditEpsilonZeroReport(); got != static {
		t.Fatalf("bandit-ts epsilon=0 diverged from static Adaptive:\n--- static\n%s--- bandit\n%s", static, got)
	}
}

// TestBanditEpsilonZeroGoldenFile pins the epsilon=0 report against a
// committed golden file, so a silent simultaneous drift of both the
// static and bandit paths (which the equality test above cannot see)
// still fails CI. Regenerate deliberately with
// go test ./internal/core -run TestBanditEpsilonZeroGoldenFile -update-golden
// after an intentional behaviour change.
func TestBanditEpsilonZeroGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "bandit_epsilon0_sssp.golden")
	got := banditEpsilonZeroReport()
	if updateGolden(t) {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("epsilon=0 report drifted from committed golden %s:\n--- golden\n%s--- got\n%s", path, want, got)
	}
}
