package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Track identifiers group spans into timeline rows ("threads" in the
// Chrome trace model). One set is shared by every component so traces
// from different runs align.
const (
	TrackKernel   = 0 // kernel launch windows
	TrackFault    = 1 // fault-batch service windows
	TrackDMA      = 2 // host-to-device migration transfers
	TrackEvict    = 3 // eviction decisions (instantaneous)
	TrackPrefetch = 4 // prefetch batches riding on migrations
)

// trackNames maps track IDs to the row names shown by trace viewers.
var trackNames = map[int32]string{
	TrackKernel:   "kernel",
	TrackFault:    "fault service",
	TrackDMA:      "migration DMA",
	TrackEvict:    "eviction",
	TrackPrefetch: "prefetch",
}

// Span is one cycle-stamped timeline event. Instantaneous events have
// Dur 0. Value carries the span's primary magnitude (blocks, pages,
// bytes — the emitting site documents which).
type Span struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	TID   int32  `json:"tid"`
	Start uint64 `json:"start"`
	Dur   uint64 `json:"dur"`
	Value uint64 `json:"v,omitempty"`
}

// Tracer records spans with optional 1-in-N sampling. A nil *Tracer is a
// no-op receiver, so components emit unconditionally through a possibly
// nil handle. Sampling keeps the 1st, (N+1)th, (2N+1)th... spans —the
// first span is always kept, matching trace.Collector's semantics.
type Tracer struct {
	sampleEvery uint64
	seen        uint64
	spans       []Span
}

// NewTracer creates a tracer keeping one of every sampleEvery spans
// (0 and 1 both mean "keep all").
func NewTracer(sampleEvery uint64) *Tracer {
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	return &Tracer{sampleEvery: sampleEvery}
}

// Emit records one span, subject to sampling.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	if t.seen%t.sampleEvery == 0 {
		t.spans = append(t.spans, s)
	}
	t.seen++
}

// Spans returns the kept spans in emission order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Seen returns the number of spans offered (kept or sampled away).
func (t *Tracer) Seen() uint64 {
	if t == nil {
		return 0
	}
	return t.seen
}

// chromeEvent is one Chrome trace_event entry. Timestamps are emitted in
// simulated cycles; viewers display them as microseconds, so one
// displayed "us" is one GPU core cycle.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeWriter streams a {"traceEvents":[...]} document.
type chromeWriter struct {
	w     *bufio.Writer
	enc   *json.Encoder
	first bool
	err   error
}

func newChromeWriter(w io.Writer) *chromeWriter {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw, first: true}
	_, cw.err = bw.WriteString(`{"traceEvents":[`)
	return cw
}

func (cw *chromeWriter) event(ev chromeEvent) {
	if cw.err != nil {
		return
	}
	if !cw.first {
		if _, cw.err = cw.w.WriteString(",\n"); cw.err != nil {
			return
		}
	}
	cw.first = false
	b, err := json.Marshal(ev)
	if err != nil {
		cw.err = err
		return
	}
	_, cw.err = cw.w.Write(b)
}

func (cw *chromeWriter) close() error {
	if cw.err != nil {
		return cw.err
	}
	if _, err := cw.w.WriteString("]}\n"); err != nil {
		return err
	}
	return cw.w.Flush()
}

// writeChromeRun emits one run's spans under the given pid, preceded by
// process/thread metadata so viewers label the rows.
func writeChromeRun(cw *chromeWriter, pid int, name string, spans []Span) {
	cw.event(chromeEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}})
	emitted := make(map[int32]bool)
	for _, s := range spans {
		if !emitted[s.TID] {
			emitted[s.TID] = true
			if tn, ok := trackNames[s.TID]; ok {
				cw.event(chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: s.TID,
					Args: map[string]any{"name": tn}})
			}
		}
		ev := chromeEvent{Name: s.Name, Cat: s.Cat, PID: pid, TID: s.TID, TS: s.Start}
		if s.Dur > 0 {
			dur := s.Dur
			ev.Ph = "X"
			ev.Dur = &dur
		} else {
			ev.Ph = "i" // instantaneous
		}
		if s.Value != 0 {
			ev.Args = map[string]any{"v": s.Value}
		}
		cw.event(ev)
	}
}

// WriteChromeTrace renders the tracer's spans as a Chrome trace_event
// JSON document loadable in chrome://tracing or ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer, runName string) error {
	cw := newChromeWriter(w)
	writeChromeRun(cw, 0, runName, t.Spans())
	return cw.close()
}

// jsonlSpan is one JSONL trace line: the span plus its run name.
type jsonlSpan struct {
	Run string `json:"run,omitempty"`
	Span
}

// WriteJSONL renders the spans as one compact JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer, runName string) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.Spans() {
		b, err := json.Marshal(jsonlSpan{Run: runName, Span: s})
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders a span compactly for diagnostics.
func (s Span) String() string {
	return fmt.Sprintf("%s/%s [%d +%d] v=%d", s.Cat, s.Name, s.Start, s.Dur, s.Value)
}
