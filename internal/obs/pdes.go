package obs

// Metric names published by the conservative-PDES cluster coordinator
// (internal/multigpu/pdes.go). They live here so the observability
// layer documents one canonical name space and consumers (dashboards,
// tests) need not hard-code strings scattered across packages.
const (
	// MetricPDESSteps counts completed horizon rounds: each round picks
	// a safe horizon (min next event + lookahead) and advances every
	// node engine to it concurrently.
	MetricPDESSteps = "pdes.steps"
	// MetricPDESHorizonStalls counts node-rounds spent idle at a
	// horizon: the node had no event at or before it and waited for the
	// barrier. High stall counts mean the nodes' event streams are
	// skewed relative to the lookahead window.
	MetricPDESHorizonStalls = "pdes.horizon_stalls"
	// MetricPDESWorkers is the worker-thread count the run used.
	MetricPDESWorkers = "pdes.workers"
	// MetricPDESLookahead is the safe-horizon extension in cycles (the
	// host-memory round trip derived from the interconnect model).
	MetricPDESLookahead = "pdes.lookahead_cycles"
	// MetricPDESEfficiency is the busy fraction of node-rounds,
	// 1 - stalls/(steps*nodes): the deterministic (wall-clock-free)
	// parallel-efficiency proxy of the run.
	MetricPDESEfficiency = "pdes.parallel_efficiency"
)
