package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSuiteDisabledReturnsNilRuns(t *testing.T) {
	s := NewSuite(Options{})
	if r := s.NewRun("x"); r != nil {
		t.Fatalf("disabled suite produced run %+v", r)
	}
	if (Options{}).Enabled() {
		t.Fatal("zero options must be disabled")
	}
}

func TestSuiteExportsAreSortedByRunName(t *testing.T) {
	s := NewSuite(Options{Metrics: true, Trace: true})
	// Register out of order, from multiple goroutines, as a sweep would.
	names := []string{"c", "a", "b"}
	var wg sync.WaitGroup
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			r := s.NewRun(n)
			r.Reg.Counter("k").Add(1)
			r.Tr.Emit(Span{Name: n, Start: 1})
		}(n)
	}
	wg.Wait()
	snap := s.Collect()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(snap.Runs) != 3 || snap.Runs[0].Name != "a" || snap.Runs[1].Name != "b" || snap.Runs[2].Name != "c" {
		t.Fatalf("runs = %+v", snap.Runs)
	}

	var buf bytes.Buffer
	if err := s.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SuiteSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged chrome trace invalid: %v", err)
	}
	// Three processes, each with a metadata + span event at least.
	if len(doc.TraceEvents) < 6 {
		t.Fatalf("trace events = %d", len(doc.TraceEvents))
	}
}

func TestSuiteSnapshotValidation(t *testing.T) {
	bad := SuiteSnapshot{Version: MetricsFormatVersion}
	if bad.Validate() == nil {
		t.Fatal("empty runs must fail")
	}
	bad = SuiteSnapshot{Version: 2, Runs: []Snapshot{{Version: MetricsFormatVersion, Name: "a", Counters: map[string]uint64{}}}}
	if bad.Validate() == nil {
		t.Fatal("bad version must fail")
	}
	bad = SuiteSnapshot{Version: MetricsFormatVersion, Runs: []Snapshot{{Version: MetricsFormatVersion, Counters: map[string]uint64{}}}}
	if bad.Validate() == nil {
		t.Fatal("unnamed run must fail")
	}
}

func TestOptionsNewRun(t *testing.T) {
	r := Options{Metrics: true, CheckEvery: 10}.NewRun("n")
	if r == nil || r.Reg == nil || r.Tr != nil || r.CheckEvery != 10 || !r.Enabled() {
		t.Fatalf("run = %+v", r)
	}
	var nilRun *Run
	if nilRun.Enabled() {
		t.Fatal("nil run must be disabled")
	}
	if s := nilRun.Collect(); s.Version != MetricsFormatVersion {
		t.Fatalf("nil run collect = %+v", s)
	}
}
