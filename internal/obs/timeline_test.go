package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerKeepsFirstSpan(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 9; i++ {
		tr.Emit(Span{Name: "s", Start: uint64(i)})
	}
	got := tr.Spans()
	// 1-in-4 sampling keeps the 1st, 5th and 9th spans.
	if len(got) != 3 || got[0].Start != 0 || got[1].Start != 4 || got[2].Start != 8 {
		t.Fatalf("sampled spans = %+v", got)
	}
	if tr.Seen() != 9 {
		t.Fatalf("seen = %d, want 9", tr.Seen())
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Span{Name: "x"})
	if tr.Spans() != nil || tr.Seen() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(1)
	tr.Emit(Span{Name: "fault_batch", Cat: "fault", TID: TrackFault, Start: 100, Dur: 50, Value: 3})
	tr.Emit(Span{Name: "evict", Cat: "evict", TID: TrackEvict, Start: 200}) // instantaneous
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "run-a"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	// Metadata (process + thread names) precede the complete/instant events.
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "X") || !strings.Contains(joined, "i") || !strings.HasPrefix(joined, "M") {
		t.Fatalf("phases = %v", phases)
	}
}

func TestJSONLOneObjectPerLine(t *testing.T) {
	tr := NewTracer(0) // 0 means keep all
	tr.Emit(Span{Name: "a", Start: 1})
	tr.Emit(Span{Name: "b", Start: 2, Dur: 3, Value: 4})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, "r1"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d invalid: %v", lines, err)
		}
		if obj["run"] != "r1" {
			t.Fatalf("line %d missing run tag: %v", lines, obj)
		}
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}
