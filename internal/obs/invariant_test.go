package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckerStampsCycle(t *testing.T) {
	var c Checker
	sentinel := errors.New("resident bytes mismatch")
	c.Add("accounting", func() error { return sentinel })
	err := c.RunAll(12345)
	if err == nil {
		t.Fatal("expected violation")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error type %T", err)
	}
	if v.Cycle != 12345 || v.Check != "accounting" || !errors.Is(err, sentinel) {
		t.Fatalf("violation = %+v", v)
	}
	if msg := err.Error(); !strings.Contains(msg, "cycle 12345") {
		t.Fatalf("diagnostic not cycle-stamped: %q", msg)
	}
}

func TestCheckerOrderAndSuccess(t *testing.T) {
	var c Checker
	c.Add("first", func() error { return errors.New("one") })
	c.Add("second", func() error { return errors.New("two") })
	err := c.RunAll(1)
	if err == nil || !strings.Contains(err.Error(), `"first"`) {
		t.Fatalf("first registered check must win: %v", err)
	}
	var ok Checker
	ok.Add("fine", func() error { return nil })
	if err := ok.RunAll(2); err != nil {
		t.Fatal(err)
	}
}

func TestAddMonotonic(t *testing.T) {
	var c Checker
	v := uint64(5)
	c.AddMonotonic("series", func() uint64 { return v })
	if err := c.RunAll(1); err != nil {
		t.Fatal(err)
	}
	v = 7
	if err := c.RunAll(2); err != nil {
		t.Fatal(err)
	}
	v = 6
	err := c.RunAll(3)
	if err == nil || !strings.Contains(err.Error(), "decreased from 7 to 6") {
		t.Fatalf("monotonicity regression not caught: %v", err)
	}
}
