// Package obs is the simulator-wide observability layer: a metrics
// registry (counters, gauges, power-of-two histograms plus snapshot
// providers), a cycle-stamped timeline tracer exporting Chrome
// trace_event JSON and compact JSONL, and an invariant checker that
// validates cross-component accounting during a run and fails fast with
// a cycle-stamped diagnostic.
//
// Everything here is opt-in and costs nothing when disabled: components
// hold a nil *Run (or nil handles) and skip publication entirely, so the
// simulation hot paths stay allocation-free and byte-identical with
// observability off. When enabled, recording never schedules engine
// events or touches model state — attaching instruments cannot change
// simulated behaviour, only expose it.
//
// A Run bundles the instruments of one simulation; a Suite aggregates
// the Runs of a sweep (one per workload x scheme cell) behind a mutex so
// parallel sweeps can share one output file.
package obs

// MetricsFormatVersion identifies the metrics JSON schema emitted by
// Snapshot/SuiteSnapshot; bump on incompatible changes.
const MetricsFormatVersion = 1

// Run bundles the per-run observability instruments. Any field may be
// nil/zero: components must tolerate partially enabled runs. A Run is
// single-threaded, like the simulation it instruments.
type Run struct {
	// Name identifies the run in multi-run exports (workload/policy/...).
	Name string
	// Reg receives metric publications; nil disables metrics.
	Reg *Registry
	// Tr receives timeline spans; nil disables tracing.
	Tr *Tracer
	// CheckEvery is the invariant-sweep period in cycles; 0 disables the
	// checker.
	CheckEvery uint64
}

// Enabled reports whether any instrument is attached.
func (r *Run) Enabled() bool {
	return r != nil && (r.Reg != nil || r.Tr != nil || r.CheckEvery > 0)
}

// Collect snapshots the run's registry (nil-safe).
func (r *Run) Collect() Snapshot {
	if r == nil || r.Reg == nil {
		return Snapshot{Version: MetricsFormatVersion, Name: nameOf(r)}
	}
	s := r.Reg.Collect()
	s.Name = r.Name
	return s
}

func nameOf(r *Run) string {
	if r == nil {
		return ""
	}
	return r.Name
}
