package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestCounterGaugeHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name returns the same underlying cell.
	r.Counter("a.b").Add(8)
	if got := c.Value(); got != 50 {
		t.Fatalf("counter after aliased add = %d, want 50", got)
	}
	g := r.Gauge("g")
	g.Set(0.5)
	s := r.Collect()
	if s.Counters["a.b"] != 50 || s.Gauges["g"] != 0.5 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestZeroHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h *Histogram
	c.Inc()
	c.Add(10)
	g.Set(1)
	h.Observe(7)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("zero handles must observe nothing")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1024, math.MaxUint64} {
		h.Observe(v)
	}
	s := r.Collect()
	hs := s.Histograms["h"]
	if hs.Count != 7 || hs.Min != 0 || hs.Max != math.MaxUint64 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	// 0 -> bucket le=0; 1 -> le=1; 2,3 -> le=3; 4 -> le=7; 1024 -> le=2047;
	// MaxUint64 -> le=MaxUint64.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 2047: 1, math.MaxUint64: 1}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d (%+v)", len(hs.Buckets), len(want), hs.Buckets)
	}
	for _, b := range hs.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestProvidersEmitAtCollect(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.RegisterProvider(func(e Emitter) {
		calls++
		e.Counter("prov.c", uint64(calls))
		e.Gauge("prov.g", float64(calls)/2)
	})
	s1 := r.Collect()
	s2 := r.Collect()
	if s1.Counters["prov.c"] != 1 || s2.Counters["prov.c"] != 2 {
		t.Fatalf("provider counters: %v then %v", s1.Counters, s2.Counters)
	}
	if s2.Gauges["prov.g"] != 1.0 {
		t.Fatalf("provider gauge = %v", s2.Gauges["prov.g"])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(7)
	r.Histogram("h").Observe(5)
	s := r.Collect()
	s.Name = "run-a"
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Counter("x") != 7 || back.Histograms["h"].Count != 1 || back.Name != "run-a" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	bad := back
	bad.Version = 99
	if bad.Validate() == nil {
		t.Fatal("version mismatch must fail validation")
	}
}
