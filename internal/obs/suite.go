package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Options selects which instruments a Suite attaches to each run; the
// zero value disables everything.
type Options struct {
	// Metrics enables the per-run metric registry.
	Metrics bool
	// Trace enables the timeline tracer.
	Trace bool
	// TraceSample keeps one of every N spans (0/1 = all); only meaningful
	// with Trace.
	TraceSample uint64
	// CheckEvery is the invariant-sweep period in cycles (0 = off).
	CheckEvery uint64
}

// Enabled reports whether any instrument is requested.
func (o Options) Enabled() bool { return o.Metrics || o.Trace || o.CheckEvery > 0 }

// NewRun builds a standalone Run from the options (nil when disabled).
func (o Options) NewRun(name string) *Run {
	if !o.Enabled() {
		return nil
	}
	r := &Run{Name: name, CheckEvery: o.CheckEvery}
	if o.Metrics {
		r.Reg = NewRegistry()
	}
	if o.Trace {
		r.Tr = NewTracer(o.TraceSample)
	}
	return r
}

// Suite aggregates the observability of a multi-run sweep. NewRun is
// safe to call from parallel sweep workers; each returned Run is then
// owned by exactly one single-threaded simulation. Exports must happen
// after the sweep has joined.
type Suite struct {
	opt  Options
	mu   sync.Mutex
	runs []*Run
}

// NewSuite creates a suite with the given per-run options.
func NewSuite(opt Options) *Suite { return &Suite{opt: opt} }

// Options returns the suite's per-run options.
func (s *Suite) Options() Options { return s.opt }

// NewRun registers and returns a new run (nil when the suite observes
// nothing, so callers can pass the result straight to attach points).
func (s *Suite) NewRun(name string) *Run {
	r := s.opt.NewRun(name)
	if r == nil {
		return nil
	}
	s.mu.Lock()
	s.runs = append(s.runs, r)
	s.mu.Unlock()
	return r
}

// sortedRuns returns the registered runs ordered by name (then by
// registration order for duplicates), so exports are deterministic even
// when runs were registered by parallel workers.
func (s *Suite) sortedRuns() []*Run {
	s.mu.Lock()
	runs := make([]*Run, len(s.runs))
	copy(runs, s.runs)
	s.mu.Unlock()
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Name < runs[j].Name })
	return runs
}

// SuiteSnapshot is the metrics JSON document covering every run of a
// sweep. A single-run tool emits the same shape with one entry.
type SuiteSnapshot struct {
	Version int        `json:"version"`
	Runs    []Snapshot `json:"runs"`
}

// Validate checks the document's schema.
func (s *SuiteSnapshot) Validate() error {
	if s.Version != MetricsFormatVersion {
		return fmt.Errorf("obs: unsupported metrics version %d (want %d)", s.Version, MetricsFormatVersion)
	}
	if len(s.Runs) == 0 {
		return fmt.Errorf("obs: metrics document has no runs")
	}
	for i := range s.Runs {
		if s.Runs[i].Name == "" {
			return fmt.Errorf("obs: run %d missing name", i)
		}
		if err := s.Runs[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Collect snapshots every run's registry.
func (s *Suite) Collect() SuiteSnapshot {
	out := SuiteSnapshot{Version: MetricsFormatVersion}
	for _, r := range s.sortedRuns() {
		out.Runs = append(out.Runs, r.Collect())
	}
	return out
}

// WriteMetricsJSON emits the SuiteSnapshot as indented JSON.
func (s *Suite) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Collect())
}

// WriteChromeTrace merges every run's spans into one Chrome trace_event
// document, one process (pid) per run.
func (s *Suite) WriteChromeTrace(w io.Writer) error {
	cw := newChromeWriter(w)
	for pid, r := range s.sortedRuns() {
		if r.Tr == nil {
			continue
		}
		writeChromeRun(cw, pid, r.Name, r.Tr.Spans())
	}
	return cw.close()
}

// WriteTraceJSONL emits every run's spans as one JSON object per line,
// tagged with the run name.
func (s *Suite) WriteTraceJSONL(w io.Writer) error {
	for _, r := range s.sortedRuns() {
		if r.Tr == nil {
			continue
		}
		if err := r.Tr.WriteJSONL(w, r.Name); err != nil {
			return err
		}
	}
	return nil
}
