package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing metric handle. The zero value is
// a no-op, so components can hold unregistered handles when metrics are
// disabled without branching at every increment site.
type Counter struct{ v *uint64 }

// Add increments the counter by n.
func (c Counter) Add(n uint64) {
	if c.v != nil {
		*c.v += n
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the zero handle).
func (c Counter) Value() uint64 {
	if c.v == nil {
		return 0
	}
	return *c.v
}

// Gauge is a point-in-time metric handle. The zero value is a no-op.
type Gauge struct{ v *float64 }

// Set records the gauge's current value.
func (g Gauge) Set(x float64) {
	if g.v != nil {
		*g.v = x
	}
}

// histBuckets is the fixed bucket count of a power-of-two histogram:
// bucket i counts observations v with bits.Len64(v) == i, so bucket 0
// holds zeros, bucket 1 holds {1}, bucket 2 holds {2,3}, bucket i holds
// [2^(i-1), 2^i). 65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram accumulates a distribution over uint64 observations in
// power-of-two buckets. Observing allocates nothing; the bucket array is
// fixed. A nil *Histogram is a no-op receiver.
type Histogram struct {
	count, sum uint64
	min, max   uint64
	buckets    [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Emitter receives metric values from a snapshot provider.
type Emitter interface {
	// Counter emits one monotonic counter value.
	Counter(name string, v uint64)
	// Gauge emits one point-in-time value.
	Gauge(name string, v float64)
}

// Provider publishes a component's metrics at collection time. Providers
// are how hot-path components participate without paying any per-event
// cost: they snapshot counters they already maintain.
type Provider func(e Emitter)

// Registry is the per-run metric store. It is not safe for concurrent
// use; every simulation is single-threaded and owns its registry (see
// Suite for cross-run aggregation).
type Registry struct {
	counters  map[string]*uint64
	gauges    map[string]*float64
	hists     map[string]*Histogram
	providers []Provider
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*uint64),
		gauges:   make(map[string]*float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the handle for the named counter, registering it on
// first use. Handles stay valid for the registry's lifetime.
func (r *Registry) Counter(name string) Counter {
	v := r.counters[name]
	if v == nil {
		v = new(uint64)
		r.counters[name] = v
	}
	return Counter{v: v}
}

// Gauge returns the handle for the named gauge, registering it on first
// use.
func (r *Registry) Gauge(name string) Gauge {
	v := r.gauges[name]
	if v == nil {
		v = new(float64)
		r.gauges[name] = v
	}
	return Gauge{v: v}
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterProvider adds a snapshot provider invoked at every Collect.
func (r *Registry) RegisterProvider(p Provider) {
	if p == nil {
		panic("obs: nil provider")
	}
	r.providers = append(r.providers, p)
}

// BucketCount is one non-empty histogram bucket: Count observations v
// with v <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is the collected state of one run's registry, serializable as
// the metrics JSON block.
type Snapshot struct {
	Version    int                          `json:"version"`
	Name       string                       `json:"name,omitempty"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter's collected value (0 when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Collect runs every provider and returns the merged snapshot of
// incremental and provided metrics. Providers overwrite incremental
// values on name collision — components should not share names.
func (r *Registry) Collect() Snapshot {
	s := Snapshot{
		Version:  MetricsFormatVersion,
		Counters: make(map[string]uint64, len(r.counters)),
	}
	for name, v := range r.counters {
		s.Counters[name] = *v
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, v := range r.gauges {
			s.Gauges[name] = *v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	em := snapshotEmitter{s: &s}
	for _, p := range r.providers {
		p(em)
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: c})
	}
	return hs
}

// snapshotEmitter writes provider output into a snapshot under
// construction.
type snapshotEmitter struct{ s *Snapshot }

func (e snapshotEmitter) Counter(name string, v uint64) { e.s.Counters[name] = v }

func (e snapshotEmitter) Gauge(name string, v float64) {
	if e.s.Gauges == nil {
		e.s.Gauges = make(map[string]float64)
	}
	e.s.Gauges[name] = v
}

// WriteJSON emits the snapshot as indented JSON with deterministically
// ordered keys (encoding/json sorts map keys).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Validate checks the snapshot's schema: version match and a counters
// map (possibly empty but present after decoding).
func (s *Snapshot) Validate() error {
	if s.Version != MetricsFormatVersion {
		return fmt.Errorf("obs: unsupported metrics version %d (want %d)", s.Version, MetricsFormatVersion)
	}
	if s.Counters == nil {
		return fmt.Errorf("obs: metrics snapshot %q missing counters", s.Name)
	}
	return nil
}

// SortedCounterNames returns the snapshot's counter names in ascending
// order (for deterministic reports).
func (s *Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
