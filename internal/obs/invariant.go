package obs

import "fmt"

// Violation is a failed invariant check, stamped with the simulation
// cycle at which it was detected.
type Violation struct {
	Cycle uint64
	Check string
	Err   error
}

// Error renders the cycle-stamped diagnostic.
func (v *Violation) Error() string {
	return fmt.Sprintf("obs: invariant %q violated at cycle %d: %v", v.Check, v.Cycle, v.Err)
}

// Unwrap exposes the underlying check error.
func (v *Violation) Unwrap() error { return v.Err }

// Checker runs a set of named invariant checks. Checks are executed in
// registration order and the first failure wins, so diagnostics are
// deterministic.
type Checker struct {
	checks []namedCheck
}

type namedCheck struct {
	name string
	fn   func() error
}

// Add registers a check. fn returns nil when the invariant holds.
func (c *Checker) Add(name string, fn func() error) {
	if fn == nil {
		panic("obs: nil check")
	}
	c.checks = append(c.checks, namedCheck{name: name, fn: fn})
}

// AddMonotonic registers a check that the named series never decreases
// between sweeps. get is sampled at every RunAll.
func (c *Checker) AddMonotonic(name string, get func() uint64) {
	var prev uint64
	c.Add(name, func() error {
		cur := get()
		if cur < prev {
			return fmt.Errorf("value decreased from %d to %d", prev, cur)
		}
		prev = cur
		return nil
	})
}

// Len reports the number of registered checks.
func (c *Checker) Len() int { return len(c.checks) }

// RunAll executes every check and returns the first *Violation stamped
// with now, or nil when all invariants hold.
func (c *Checker) RunAll(now uint64) error {
	for _, nc := range c.checks {
		if err := nc.fn(); err != nil {
			return &Violation{Cycle: now, Check: nc.name, Err: err}
		}
	}
	return nil
}
