package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"uvmsim/internal/config"
)

// KeyVersion identifies the cache-key derivation. Bump it whenever the
// canonical document below changes meaning — adding a Config field that
// affects results, changing the workload generators, or changing the
// simulator in any behaviour-visible way — so stale entries can never
// be returned for a semantically different cell.
const KeyVersion = 1

// keyDoc is the canonical document whose SHA-256 is the cell's
// content address. It is serialized with encoding/json, which emits
// struct fields in declaration order with deterministic number
// formatting, so equal cells always hash equally.
//
// The hashed Config is the *derived* per-cell configuration — after
// WithPolicy's replacement pairing and WithOversubscription's
// device-memory sizing — so two submissions that spell the same cell
// differently (say, different base DeviceMemBytes that derivation
// overwrites) share one entry. PipelineSpec and PolicySeed ride inside
// Config, covering the (Config, PipelineSpec, workload name+scale,
// seed) identity the cache is specified over.
// OversubPercent is hashed even though it only reaches Config through
// the derived DeviceMemBytes: at tiny scales distinct percents can
// derive identical capacities (the two-unit floor), but the percent is
// recorded verbatim in the cell's result record, so cells differing
// only in percent must not share an entry.
type keyDoc struct {
	KeyVersion     int
	Workload       string
	Scale          float64
	OversubPercent uint64
	Config         config.Config
}

// coloKeyDoc is the canonical key document for a co-location cell. The
// hashed Config is the resolved per-cell configuration (pool size and
// policy applied), and the tenant mix is the canonical
// "workload:gpu:priority" spelling, so equivalent submissions (elided
// default priority, unresolved default policy) share one entry. Epochs
// and Seed are hashed verbatim: zero deterministically selects the
// scenario defaults, so distinct spellings of the same run at worst
// split the cache, never corrupt it.
type coloKeyDoc struct {
	KeyVersion int
	GPUs       int
	Tenants    []string
	Epochs     int
	Seed       uint64
	Config     config.Config
}

// ColoKey returns the canonical content address for one co-location
// cell.
func ColoKey(gpus int, tenants []string, epochs int, seed uint64, derived config.Config) string {
	// Worker count never changes a co-location result (the scenarios are
	// byte-identical under the PDES coordinator at any worker count), so
	// it must not split the key space.
	derived.ClusterWorkers = 0
	doc, err := json.Marshal(coloKeyDoc{
		KeyVersion: KeyVersion,
		GPUs:       gpus,
		Tenants:    tenants,
		Epochs:     epochs,
		Seed:       seed,
		Config:     derived,
	})
	if err != nil {
		// config.Config is a plain value struct; Marshal cannot fail.
		panic(fmt.Sprintf("serve: canonical colo key encoding failed: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// CellKey returns the canonical content address for one cell: the
// hex-encoded SHA-256 of the canonical key document.
func CellKey(workload string, scale float64, oversubPercent uint64, derived config.Config) string {
	// ClusterWorkers selects PDES worker counts for multi-GPU runs and
	// is ignored by the single-GPU cells the service executes; results
	// are identical for every value, so it must not split the key space.
	derived.ClusterWorkers = 0
	doc, err := json.Marshal(keyDoc{
		KeyVersion:     KeyVersion,
		Workload:       workload,
		Scale:          scale,
		OversubPercent: oversubPercent,
		Config:         derived,
	})
	if err != nil {
		// config.Config is a plain value struct; Marshal cannot fail.
		panic(fmt.Sprintf("serve: canonical key encoding failed: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}
