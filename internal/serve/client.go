package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"uvmsim/internal/obs"
	"uvmsim/internal/resultio"
)

// ResultDoc is the decoded form of a job result payload.
type ResultDoc struct {
	Version int                  `json:"version"`
	Cells   []resultio.CellEntry `json:"cells"`
	// Colo holds the job's co-location entries, present only when the
	// submission had colo cells.
	Colo []resultio.CXLEntry `json:"colo,omitempty"`
}

// DecodeResult parses and validates a job result payload: version
// check, strict EOF, and per-entry validation via the resultio rules.
func DecodeResult(payload []byte) (*ResultDoc, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var doc ResultDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("serve: decoding result payload: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("serve: trailing data after result payload")
	}
	if doc.Version != ResultFormatVersion {
		return nil, fmt.Errorf("serve: unsupported result version %d (want %d)", doc.Version, ResultFormatVersion)
	}
	for i := range doc.Cells {
		var buf bytes.Buffer
		if err := resultio.WriteCellEntry(&buf, &doc.Cells[i]); err != nil {
			return nil, fmt.Errorf("serve: result cell %d: %w", i, err)
		}
		if _, err := resultio.ReadCellEntry(&buf); err != nil {
			return nil, fmt.Errorf("serve: result cell %d: %w", i, err)
		}
	}
	for i := range doc.Colo {
		var buf bytes.Buffer
		if err := resultio.WriteCXLEntry(&buf, &doc.Colo[i]); err != nil {
			return nil, fmt.Errorf("serve: result colo cell %d: %w", i, err)
		}
		if _, err := resultio.ReadCXLEntry(&buf); err != nil {
			return nil, fmt.Errorf("serve: result colo cell %d: %w", i, err)
		}
	}
	return &doc, nil
}

// Client is a thin HTTP client for a simd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8642".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// decodeError extracts the server's JSON error document.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return fmt.Errorf("serve: server returned %s: %s", resp.Status, doc.Error)
	}
	return fmt.Errorf("serve: server returned %s", resp.Status)
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("serve: decoding %s response: %w", path, err)
	}
	return nil
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, fmt.Errorf("serve: encoding job request: %w", err)
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return JobStatus{}, decodeError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: decoding job status: %w", err)
	}
	return st, nil
}

// Status fetches one job's current status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON("/v1/jobs/"+id, &st)
	return st, err
}

// Wait follows the job's progress stream until the terminal status,
// invoking onUpdate (when non-nil) for every snapshot including the
// last. It returns the terminal status. The stream is push-based — the
// server writes a line per state change — so Wait never polls.
func (c *Client) Wait(id string, onUpdate func(JobStatus)) (JobStatus, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/jobs/" + id + "/progress")
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var last JobStatus
	seen := false
	for sc.Scan() {
		var st JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return JobStatus{}, fmt.Errorf("serve: decoding progress line: %w", err)
		}
		last, seen = st, true
		if onUpdate != nil {
			onUpdate(st)
		}
		if st.Terminal() {
			return st, nil
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, fmt.Errorf("serve: reading progress stream: %w", err)
	}
	if !seen {
		return JobStatus{}, fmt.Errorf("serve: progress stream ended without any status")
	}
	return last, fmt.Errorf("serve: progress stream ended before job %s finished", id)
}

// Result fetches a finished job's raw result payload.
func (c *Client) Result(id string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RunJob submits a job, waits for it to finish, and returns the
// terminal status plus raw result payload.
func (c *Client) RunJob(req JobRequest, onUpdate func(JobStatus)) (JobStatus, []byte, error) {
	st, err := c.Submit(req)
	if err != nil {
		return JobStatus{}, nil, err
	}
	st, err = c.Wait(st.ID, onUpdate)
	if err != nil {
		return st, nil, err
	}
	if st.State != StateDone {
		return st, nil, fmt.Errorf("serve: job %s %s: %s", st.ID, st.State, st.Error)
	}
	payload, err := c.Result(st.ID)
	if err != nil {
		return st, nil, err
	}
	return st, payload, nil
}

// CacheStats fetches the server's cache statistics.
func (c *Client) CacheStats() (CacheStats, error) {
	var cs CacheStats
	err := c.getJSON("/v1/cache", &cs)
	return cs, err
}

// Metrics fetches and validates the server's obs metrics snapshot.
func (c *Client) Metrics() (obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := c.getJSON("/v1/metrics", &snap); err != nil {
		return obs.Snapshot{}, err
	}
	if err := snap.Validate(); err != nil {
		return obs.Snapshot{}, err
	}
	return snap, nil
}
