package serve

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/workloads"
)

// The cache key must be a pure function of the cell identity: stable
// across calls, sensitive to every identity-bearing dimension, and
// insensitive to fields that cannot affect a single-GPU result.
func TestCellKeyDeterministicAndSensitive(t *testing.T) {
	b := workloads.NewMemo().Get("bfs", 0.05)
	base := config.Default()
	cfg := core.DeriveConfig(b, 1, 125, config.PolicyAdaptive, base)

	k := CellKey("bfs", 0.05, 125, cfg)
	if k2 := CellKey("bfs", 0.05, 125, cfg); k2 != k {
		t.Fatalf("same cell hashed differently: %s vs %s", k, k2)
	}
	if len(k) != 64 {
		t.Fatalf("key %q is not a hex SHA-256", k)
	}

	distinct := map[string]string{"base": k}
	add := func(name, key string) {
		for prev, pk := range distinct {
			if pk == key {
				t.Fatalf("%s collides with %s: %s", name, prev, key)
			}
		}
		distinct[name] = key
	}

	add("workload", CellKey("ra", 0.05, 125, cfg))
	add("scale", CellKey("bfs", 0.1, 125, cfg))
	add("policy", CellKey("bfs", 0.05, 125, core.DeriveConfig(b, 1, 125, config.PolicyDisabled, base)))
	// At tiny scales distinct percents may derive identical device
	// capacities, so this also proves the percent itself is hashed.
	add("oversub", CellKey("bfs", 0.05, 150, core.DeriveConfig(b, 1, 150, config.PolicyAdaptive, base)))

	seeded := base
	seeded.PolicySeed = 7
	add("seed", CellKey("bfs", 0.05, 125, core.DeriveConfig(b, 1, 125, config.PolicyAdaptive, seeded)))

	piped := base
	piped.MMPipeline = config.PipelineSpec{Planner: "threshold"}
	add("pipeline", CellKey("bfs", 0.05, 125, core.DeriveConfig(b, 1, 125, config.PolicyAdaptive, piped)))

	// ClusterWorkers tunes multi-GPU PDES execution only; single-GPU
	// cells are identical for every value, so it must not split keys.
	cw := cfg
	cw.ClusterWorkers = 8
	if CellKey("bfs", 0.05, 125, cw) != k {
		t.Fatal("ClusterWorkers split the key space")
	}
}

func TestCacheFirstWriteWins(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("k", []byte("one"))
	c.Put("k", []byte("two")) // duplicate content-addressed write: no-op
	p, ok := c.Get("k")
	if !ok || string(p) != "one" {
		t.Fatalf("got %q, %v", p, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 3 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Put must copy: mutating the caller's slice must not reach the cache.
	src := []byte("abc")
	c.Put("k2", src)
	src[0] = 'X'
	if p, _ := c.Get("k2"); string(p) != "abc" {
		t.Fatalf("cache shares caller's backing array: %q", p)
	}
}
