package serve

import (
	"fmt"
	"testing"
)

func TestCacheUnboundedByDefault(t *testing.T) {
	c := NewCache()
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	cs := c.Stats()
	if cs.Entries != 100 || cs.Evictions != 0 || cs.MaxEntries != 0 {
		t.Fatalf("stats = %+v, want 100 entries, no evictions", cs)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCacheWithLimit(2)
	c.Put("a", []byte("aa"))
	c.Put("b", []byte("bb"))
	// Touch a so b is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("cc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived — eviction is not LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("fresh c was evicted")
	}
	cs := c.Stats()
	if cs.Entries != 2 || cs.Evictions != 1 || cs.MaxEntries != 2 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction", cs)
	}
	if cs.Bytes != 4 {
		t.Fatalf("bytes = %d after evicting bb, want 4", cs.Bytes)
	}
}

func TestCacheDuplicatePutRefreshesRecency(t *testing.T) {
	c := NewCacheWithLimit(2)
	c.Put("a", []byte("a1"))
	c.Put("b", []byte("b1"))
	// Duplicate Put must not replace the payload but must refresh a's
	// recency, making b the next victim.
	c.Put("a", []byte("XX"))
	c.Put("c", []byte("c1"))
	if p, ok := c.Get("a"); !ok || string(p) != "a1" {
		t.Fatalf("a = %q, %v; want original payload retained", p, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived — duplicate Put did not refresh recency")
	}
}

func TestCacheEvictedKeyIsRecomputable(t *testing.T) {
	// The service-level property behind the bound: an evicted key is a
	// plain miss, and re-Putting it restores the identical payload.
	c := NewCacheWithLimit(1)
	c.Put("a", []byte("payload"))
	c.Put("b", []byte("other")) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived a limit-1 cache")
	}
	c.Put("a", []byte("payload"))
	if p, ok := c.Get("a"); !ok || string(p) != "payload" {
		t.Fatalf("re-put a = %q, %v", p, ok)
	}
	cs := c.Stats()
	if cs.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", cs.Evictions)
	}
}

func TestCacheNegativeLimitMeansUnbounded(t *testing.T) {
	c := NewCacheWithLimit(-5)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if cs := c.Stats(); cs.Entries != 10 || cs.MaxEntries != 0 {
		t.Fatalf("stats = %+v", cs)
	}
}

func TestServerBoundedCachePublishesEvictions(t *testing.T) {
	s := NewServer(Options{CacheMaxEntries: 1})
	s.Cache().Put("k1", []byte("a"))
	s.Cache().Put("k2", []byte("b"))
	snap := s.MetricsSnapshot()
	if got := snap.Counters["serve.cache.evictions"]; got != 1 {
		t.Fatalf("serve.cache.evictions = %d, want 1", got)
	}
	if got := snap.Counters["serve.cache.entries"]; got != 1 {
		t.Fatalf("serve.cache.entries = %d, want 1", got)
	}
}
