package serve

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result store: canonical cell key →
// immutable serialized resultio.CellEntry bytes. Determinism makes the
// payload for a key immutable, so the cache never rewrites an entry:
// the first writer wins and every later Put of the same key is a no-op
// (any two writers computed identical bytes). With a positive entry
// bound the cache evicts in strict least-recently-used order — the
// victim is fully determined by the Get/Put sequence, never by map
// iteration order — and an evicted key is simply recomputed on its next
// miss, with identical bytes. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int // maximum entries; 0 = unbounded
	entries map[string]*list.Element
	// lru orders entries by recency, front = most recently used; each
	// element holds a *cacheEntry.
	lru       *list.List
	bytes     uint64
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key     string
	payload []byte
}

// CacheStats is a point-in-time view of the cache, served by the
// /v1/cache endpoint.
type CacheStats struct {
	Entries int    `json:"entries"`
	Bytes   uint64 `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound; MaxEntries is
	// that bound (0 = unbounded).
	Evictions  uint64 `json:"evictions"`
	MaxEntries int    `json:"maxEntries,omitempty"`
}

// NewCache returns an empty unbounded cache.
func NewCache() *Cache { return NewCacheWithLimit(0) }

// NewCacheWithLimit returns an empty cache holding at most maxEntries
// entries (0 = unbounded), evicting least-recently-used first.
func NewCacheWithLimit(maxEntries int) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the payload stored under key, recording a hit or miss and
// refreshing the entry's recency. The returned slice is shared and must
// not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// Put stores payload under key if absent. Payloads are content-defined
// by the key, so a concurrent duplicate Put carries identical bytes and
// the first write wins (the duplicate still refreshes recency — the key
// was just recomputed, so it is the hottest entry either way). When the
// insert exceeds the entry bound, the least-recently-used entry is
// evicted.
func (c *Cache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, payload: cp})
	c.bytes += uint64(len(cp))
	for c.max > 0 && c.lru.Len() > c.max {
		victim := c.lru.Back()
		e := victim.Value.(*cacheEntry)
		c.lru.Remove(victim)
		delete(c.entries, e.key)
		c.bytes -= uint64(len(e.payload))
		c.evictions++
	}
}

// Stats returns the current cache statistics.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		MaxEntries: c.max,
	}
}
