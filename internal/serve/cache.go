package serve

import "sync"

// Cache is the content-addressed result store: canonical cell key →
// immutable serialized resultio.CellEntry bytes. Determinism makes the
// payload for a key immutable, so the cache is append-only: the first
// writer wins and every later Put of the same key is a no-op (any two
// writers computed identical bytes). Safe for concurrent use.
type Cache struct {
	mu      sync.RWMutex
	entries map[string][]byte
	bytes   uint64
	hits    uint64
	misses  uint64
}

// CacheStats is a point-in-time view of the cache, served by the
// /v1/cache endpoint.
type CacheStats struct {
	Entries int    `json:"entries"`
	Bytes   uint64 `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string][]byte)}
}

// Get returns the payload stored under key, recording a hit or miss.
// The returned slice is shared and must not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

// Put stores payload under key if absent. Payloads are content-defined
// by the key, so a concurrent duplicate Put carries identical bytes and
// the first write wins.
func (c *Cache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	c.entries[key] = cp
	c.bytes += uint64(len(cp))
}

// Stats returns the current cache statistics.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{
		Entries: len(c.entries),
		Bytes:   c.bytes,
		Hits:    c.hits,
		Misses:  c.misses,
	}
}
