package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/cxl"
	"uvmsim/internal/obs"
	"uvmsim/internal/resultio"
	"uvmsim/internal/snapshot"
	"uvmsim/internal/sweep"
	"uvmsim/internal/workloads"
)

// ResultFormatVersion identifies the job result-payload schema; bump on
// incompatible changes.
const ResultFormatVersion = 1

// Job states reported by status and progress endpoints.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the number of cells simulating concurrently across
	// *all* jobs (0 = GOMAXPROCS). Every job's cells run through
	// sweep.Parallel under this shared budget, so one large job cannot
	// monopolize the pool unboundedly and many small jobs still shard
	// across cores.
	Workers int
	// MaxCells rejects jobs expanding to more cells than this
	// (0 = 4096), bounding a single submission's memory footprint.
	MaxCells int
	// CacheMaxEntries bounds the content-addressed result cache
	// (0 = unbounded); past the bound the least-recently-used cell is
	// evicted and recomputed, byte-identically, on its next miss.
	CacheMaxEntries int
	// NoSnapshot disables snapshot/fork prefix sharing: by default the
	// cells of a job that differ only in migration-policy configuration
	// (same workload, scale, oversubscription and base outside the
	// policy fields) run as one group that executes the shared warmup
	// once and forks per policy (internal/snapshot). Results are
	// byte-identical either way — the switch exists for A/B measurement
	// and as an escape hatch.
	NoSnapshot bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 4096
	}
	return o
}

// Server is the sweep service: job intake, the shared worker budget,
// and the content-addressed result cache. Create with NewServer and
// mount Handler on any http.Server.
type Server struct {
	opts  Options
	memo  *workloads.Memo
	cache *Cache
	// sem is the global cell budget: every simulating cell holds one
	// token, across all concurrent jobs.
	sem chan struct{}

	mu    sync.Mutex
	jobs  map[string]*jobState
	order []string // job IDs in submission order, for deterministic listings
	seq   uint64

	// Service counters, published as an obs metrics snapshot.
	jobsSubmitted  atomic.Uint64
	jobsCompleted  atomic.Uint64
	jobsFailed     atomic.Uint64
	cellsCompleted atomic.Uint64
	cellsSimulated atomic.Uint64
	cellsCached    atomic.Uint64
	// Snapshot/fork prefix-sharing totals across all jobs: cells that
	// finished from a fork instead of a scratch warmup, and the kernel
	// launches those forks skipped.
	cellsForked   atomic.Uint64
	sharedKernels atomic.Uint64
}

// NewServer returns a ready-to-mount service with an empty cache.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:  opts,
		memo:  workloads.NewMemo(),
		cache: NewCacheWithLimit(opts.CacheMaxEntries),
		sem:   make(chan struct{}, opts.Workers),
		jobs:  make(map[string]*jobState),
	}
}

// Cache exposes the server's result cache (load tests and stats).
func (s *Server) Cache() *Cache { return s.cache }

// JobStatus is the wire form of one job's progress.
type JobStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// TotalCells and DoneCells drive progress displays; CacheHits counts
	// the done cells served from the content-addressed cache.
	TotalCells int    `json:"totalCells"`
	DoneCells  int    `json:"doneCells"`
	CacheHits  int    `json:"cacheHits"`
	Error      string `json:"error,omitempty"`
}

// Terminal reports whether the status will never change again.
func (st JobStatus) Terminal() bool { return st.State != StateRunning }

// jobState tracks one submitted job. Progress watchers never poll: each
// mutation closes the current update channel (a broadcast) and installs
// a fresh one, so the progress stream advances exactly when the job
// does — no wall-clock timers anywhere in the service.
type jobState struct {
	id   string
	name string

	mu      sync.Mutex
	total   int
	done    int
	hits    int
	state   string
	errMsg  string
	payload []byte
	update  chan struct{}
}

func newJobState(id, name string, total int) *jobState {
	return &jobState{id: id, name: name, total: total, state: StateRunning, update: make(chan struct{})}
}

func (j *jobState) broadcastLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

// wait returns a channel closed at the next state change.
func (j *jobState) wait() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.update
}

func (j *jobState) cellDone(hit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	if hit {
		j.hits++
	}
	j.broadcastLocked()
}

func (j *jobState) finish(payload []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.payload = payload
	j.broadcastLocked()
}

func (j *jobState) fail(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.errMsg = msg
	j.broadcastLocked()
}

func (j *jobState) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:         j.id,
		Name:       j.name,
		State:      j.state,
		TotalCells: j.total,
		DoneCells:  j.done,
		CacheHits:  j.hits,
		Error:      j.errMsg,
	}
}

// result returns the payload when the job is done.
func (j *jobState) result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.payload, j.state == StateDone
}

// Submit expands, registers and starts a job, returning its initial
// status. It is the programmatic equivalent of POST /v1/jobs (the load
// test and in-process tests use it directly).
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	cells, colos, err := req.expand()
	if err != nil {
		return JobStatus{}, err
	}
	total := len(cells) + len(colos)
	if total > s.opts.MaxCells {
		return JobStatus{}, fmt.Errorf("serve: job expands to %d cells (limit %d)", total, s.opts.MaxCells)
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	j := newJobState(id, req.Name, total)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.jobsSubmitted.Add(1)
	go s.runJob(j, cells, colos)
	return j.status(), nil
}

// job looks up a job by ID.
func (s *Server) job(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// prefixKey identifies a snapshot prefix group: cells agreeing on it
// share a (workload, scale, oversubscription) warmup and differ only in
// the policy fields snapshot.GroupKey normalizes away, so they can run
// as one forked group. config.Config is comparable, so the key can
// index a map directly.
type prefixKey struct {
	workload string
	scale    float64
	pct      uint64
	norm     config.Config
}

// runJob executes every cell through sweep.Parallel under the global
// worker budget and assembles the canonical result payload. Unless
// Options.NoSnapshot is set, workload cells are first partitioned into
// snapshot prefix groups — each group is one sweep unit that runs its
// shared warmup once and forks per policy (runCellGroup), producing
// payloads byte-identical to per-cell execution. A panicking cell (an
// invalid derived config, a model bug) aborts the sweep through
// sweep.Parallel's abort path — remaining workers stop claiming units,
// in-flight units finish, no goroutine leaks — and surfaces here as a
// failed job; the shared token pool is returned in full, so later jobs
// are unaffected.
func (s *Server) runJob(j *jobState, cells []cell, colos []coloCell) {
	defer func() {
		if r := recover(); r != nil {
			j.fail(fmt.Sprint(r))
			s.jobsFailed.Add(1)
		}
	}()
	// units[i] lists the payload slots fns[i] fills, in the order its
	// [][]byte return is laid out; scattering through it keeps the
	// payload order — and therefore the result document — independent
	// of the grouping.
	var fns []func() [][]byte
	var units [][]int
	if s.opts.NoSnapshot {
		for i := range cells {
			i := i
			fns = append(fns, func() [][]byte { return [][]byte{s.runCell(j, cells[i])} })
			units = append(units, []int{i})
		}
	} else {
		groups := make(map[prefixKey]int)
		var members [][]int
		for i, c := range cells {
			k := prefixKey{c.workload, c.scale, c.pct, snapshot.GroupKey(c.base)}
			gi, ok := groups[k]
			if !ok {
				gi = len(members)
				groups[k] = gi
				members = append(members, nil)
			}
			members[gi] = append(members[gi], i)
		}
		for _, idxs := range members {
			idxs := idxs
			fns = append(fns, func() [][]byte { return s.runCellGroup(j, cells, idxs) })
			units = append(units, idxs)
		}
	}
	for i := range colos {
		i := i
		fns = append(fns, func() [][]byte { return [][]byte{s.runColoCell(j, colos[i])} })
		units = append(units, []int{len(cells) + i})
	}
	workers := s.opts.Workers
	outs := sweep.Parallel(fns, workers)
	payloads := make([][]byte, len(cells)+len(colos))
	for fi, idxs := range units {
		for k, u := range idxs {
			payloads[u] = outs[fi][k]
		}
	}

	// Entry payloads are newline-terminated JSON documents; splice them
	// verbatim so a cache hit reproduces the bytes exactly. The colo
	// section is emitted only when present, keeping pure workload-sweep
	// payloads byte-identical to the pre-colo format.
	splice := func(buf *bytes.Buffer, ps [][]byte) {
		for i, p := range ps {
			if i > 0 {
				buf.WriteString(",\n")
			}
			buf.Write(bytes.TrimRight(p, "\n"))
		}
	}
	var buf bytes.Buffer
	buf.WriteString("{\n  \"version\": ")
	fmt.Fprintf(&buf, "%d", ResultFormatVersion)
	if len(cells) == 0 {
		buf.WriteString(",\n  \"cells\": []")
	} else {
		buf.WriteString(",\n  \"cells\": [\n")
		splice(&buf, payloads[:len(cells)])
		buf.WriteString("\n  ]")
	}
	if len(colos) > 0 {
		buf.WriteString(",\n  \"colo\": [\n")
		splice(&buf, payloads[len(cells):])
		buf.WriteString("\n  ]")
	}
	buf.WriteString("\n}\n")
	j.finish(buf.Bytes())
	s.jobsCompleted.Add(1)
}

// runCell executes one cell — cache hit or simulation — and returns its
// canonical entry payload.
func (s *Server) runCell(j *jobState, c cell) []byte {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	b := s.memo.Get(c.workload, c.scale)
	cfg := core.DeriveConfig(b, 1, c.pct, c.policy, c.base)
	key := CellKey(c.workload, c.scale, c.pct, cfg)
	if p, ok := s.cache.Get(key); ok {
		s.cellsCached.Add(1)
		s.cellsCompleted.Add(1)
		j.cellDone(true)
		return p
	}
	res := core.Run(b, cfg)
	entry := &resultio.CellEntry{
		Version: resultio.CellFormatVersion,
		Key:     key,
		Record:  *resultio.FromResult(res, c.scale, c.pct),
	}
	var buf bytes.Buffer
	if err := resultio.WriteCellEntry(&buf, entry); err != nil {
		panic(fmt.Sprintf("serve: encoding cell entry: %v", err))
	}
	s.cache.Put(key, buf.Bytes())
	s.cellsSimulated.Add(1)
	s.cellsCompleted.Add(1)
	j.cellDone(false)
	return buf.Bytes()
}

// runCellGroup executes the cells of one snapshot prefix group — cache
// hits, a lone scratch run, or a snapshot.RunGroup that executes the
// shared warmup once and forks per policy when two or more cells miss
// the cache — and returns their canonical entry payloads in member
// order, byte-identical to what per-cell execution would produce. The
// group holds one worker token for its whole run: its cells are a
// leader plus followers forked from it, which cannot run concurrently
// with each other anyway.
func (s *Server) runCellGroup(j *jobState, cells []cell, idxs []int) [][]byte {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	first := cells[idxs[0]]
	b := s.memo.Get(first.workload, first.scale)
	out := make([][]byte, len(idxs))
	cfgs := make([]config.Config, len(idxs))
	keys := make([]string, len(idxs))
	var miss []int // positions in idxs whose cell has no cached entry
	for k, i := range idxs {
		c := cells[i]
		cfgs[k] = core.DeriveConfig(b, 1, c.pct, c.policy, c.base)
		keys[k] = CellKey(c.workload, c.scale, c.pct, cfgs[k])
		if p, ok := s.cache.Get(keys[k]); ok {
			out[k] = p
			s.cellsCached.Add(1)
			s.cellsCompleted.Add(1)
			j.cellDone(true)
			continue
		}
		miss = append(miss, k)
	}
	var results []*core.Result
	switch {
	case len(miss) > 1:
		missCfgs := make([]config.Config, len(miss))
		for mi, k := range miss {
			missCfgs[mi] = cfgs[k]
		}
		var st snapshot.Stats
		results, st = snapshot.RunGroup(b, missCfgs)
		s.cellsForked.Add(uint64(st.Forked))
		s.sharedKernels.Add(uint64(st.SharedKernels))
	case len(miss) == 1:
		results = []*core.Result{core.Run(b, cfgs[miss[0]])}
	}
	for mi, k := range miss {
		c := cells[idxs[k]]
		entry := &resultio.CellEntry{
			Version: resultio.CellFormatVersion,
			Key:     keys[k],
			Record:  *resultio.FromResult(results[mi], c.scale, c.pct),
		}
		var buf bytes.Buffer
		if err := resultio.WriteCellEntry(&buf, entry); err != nil {
			panic(fmt.Sprintf("serve: encoding cell entry: %v", err))
		}
		s.cache.Put(keys[k], buf.Bytes())
		s.cellsSimulated.Add(1)
		s.cellsCompleted.Add(1)
		j.cellDone(false)
		out[k] = buf.Bytes()
	}
	return out
}

// runColoCell executes one co-location cell — cache hit or scenario run
// — and returns its canonical entry payload. Construction and run
// errors abort the job through the sweep.Parallel panic path, exactly
// like an invalid workload-cell config.
func (s *Server) runColoCell(j *jobState, c coloCell) []byte {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	key := ColoKey(c.sc.GPUs, c.tenants, c.sc.Epochs, c.sc.Seed, c.sc.Cfg)
	if p, ok := s.cache.Get(key); ok {
		s.cellsCached.Add(1)
		s.cellsCompleted.Add(1)
		j.cellDone(true)
		return p
	}
	sc, err := cxl.NewScenario(c.sc)
	if err != nil {
		panic(fmt.Sprintf("serve: colo cell: %v", err))
	}
	res, err := sc.Run()
	if err != nil {
		panic(fmt.Sprintf("serve: colo cell: %v", err))
	}
	entry := &resultio.CXLEntry{
		Version: resultio.CXLFormatVersion,
		Key:     key,
		Scenario: resultio.CXLScenario{
			Name:    c.policy,
			Policy:  c.policy,
			GPUs:    c.sc.GPUs,
			Tenants: c.tenants,
			Seed:    c.sc.Seed,
			Result:  *res,
		},
	}
	var buf bytes.Buffer
	if err := resultio.WriteCXLEntry(&buf, entry); err != nil {
		panic(fmt.Sprintf("serve: encoding colo entry: %v", err))
	}
	s.cache.Put(key, buf.Bytes())
	s.cellsSimulated.Add(1)
	s.cellsCompleted.Add(1)
	j.cellDone(false)
	return buf.Bytes()
}

// MetricsSnapshot publishes the service counters in the repo's standard
// observability schema (obs.Snapshot, version 1), so the same tooling
// that reads simulation metrics documents reads the service's.
func (s *Server) MetricsSnapshot() obs.Snapshot {
	cs := s.cache.Stats()
	return obs.Snapshot{
		Version: obs.MetricsFormatVersion,
		Name:    "simd",
		Counters: map[string]uint64{
			"serve.jobs.submitted":          s.jobsSubmitted.Load(),
			"serve.jobs.completed":          s.jobsCompleted.Load(),
			"serve.jobs.failed":             s.jobsFailed.Load(),
			"serve.cells.completed":         s.cellsCompleted.Load(),
			"serve.cells.simulated":         s.cellsSimulated.Load(),
			"serve.cells.cache_hits":        s.cellsCached.Load(),
			"serve.snapshot.forked_cells":   s.cellsForked.Load(),
			"serve.snapshot.shared_kernels": s.sharedKernels.Load(),
			"serve.cache.entries":           uint64(cs.Entries),
			"serve.cache.bytes":             cs.Bytes,
			"serve.cache.hits":              cs.Hits,
			"serve.cache.misses":            cs.Misses,
			"serve.cache.evictions":         cs.Evictions,
		},
	}
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs              submit a JobRequest, returns JobStatus (202)
//	GET  /v1/jobs              list job statuses in submission order
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/jobs/{id}/progress  NDJSON status stream until terminal
//	GET  /v1/jobs/{id}/result  the job's result payload (when done)
//	GET  /v1/cells/{key}       one cached cell entry by content address
//	GET  /v1/cache             cache statistics
//	GET  /v1/metrics           service counters as an obs metrics snapshot
//	GET  /healthz              liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/cells/{key}", s.handleCell)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON emits v as indented JSON with the standard content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// httpError emits a JSON error document.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.order))
	for _, id := range s.order {
		states = append(states, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(states))
	for i, j := range states {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleProgress streams NDJSON JobStatus snapshots: one line now, one
// per subsequent change, ending after the terminal snapshot. Watchers
// ride the job's broadcast channel — the stream advances exactly when
// cells complete, with no polling interval to tune.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		ch := j.wait()
		st := j.status()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.status()
	payload, done := j.result()
	if !done {
		if st.State == StateFailed {
			httpError(w, http.StatusConflict, "job %s failed: %s", st.ID, st.Error)
			return
		}
		httpError(w, http.StatusConflict, "job %s still running (%d/%d cells)", st.ID, st.DoneCells, st.TotalCells)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Cache-Hits", fmt.Sprintf("%d", st.CacheHits))
	w.WriteHeader(http.StatusOK)
	w.Write(payload) //nolint:errcheck // client went away; nothing to do
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	p, ok := s.cache.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no cached cell %q", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(p) //nolint:errcheck // client went away; nothing to do
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.MetricsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	snap.WriteJSON(w) //nolint:errcheck // client went away; nothing to do
}
