// Package serve turns the one-shot sweep CLIs into a long-running
// simulation service: an HTTP/JSON server (simd) that accepts sweep
// jobs — a config matrix crossed with a workload set and pipeline
// specs — shards the resulting cells across a bounded worker pool built
// on sweep.Parallel, and memoizes every completed cell in a
// content-addressed result cache. Every simulation in this repository
// is single-threaded and deterministic, so a (Config, PipelineSpec,
// workload name+scale, seed) cell is perfectly cacheable: repeated or
// overlapping sweeps from concurrent clients are near-free cache hits
// with byte-identical payloads.
//
// The job-spec types here are the shared vocabulary: figures,
// tournaments and CXL co-location sweeps are expressible as submissions
// (internal/experiments FigureJob/TournamentJob/ColoJob) and the CLIs
// are thin clients (Client).
package serve

import (
	"fmt"

	"uvmsim/internal/cliutil"
	"uvmsim/internal/config"
	"uvmsim/internal/cxl"
	"uvmsim/internal/mm"
	"uvmsim/internal/workloads"
)

// JobRequest is one sweep submission: a config matrix (workloads x
// oversubscription points x policies x pipelines x seeds) optionally
// extended with explicit cells for sweeps a rectangular matrix cannot
// express (threshold and penalty sensitivity columns). The matrix
// expands in deterministic order — workload-major, then
// oversubscription, policy, pipeline, seed — followed by the explicit
// cells, so identical requests always produce the identical cell list
// (and therefore byte-identical result payloads).
type JobRequest struct {
	// Name is an optional client-side label echoed in status output; it
	// does not reach the result payload or any cache key.
	Name string `json:"name,omitempty"`
	// Scale is the workload scale factor shared by every cell
	// (0 = 1.0, the paper size).
	Scale float64 `json:"scale,omitempty"`

	// Matrix dimensions. A request may use the matrix, explicit Cells,
	// or both; the matrix is skipped when any dimension is empty after
	// defaulting (Workloads empty with no Cells is an error).
	Workloads       []string `json:"workloads,omitempty"`
	OversubPercents []uint64 `json:"oversubPercents,omitempty"`
	// Policies are migration-policy names (disabled/baseline, always,
	// oversub, adaptive); empty defaults to ["adaptive"].
	Policies []string `json:"policies,omitempty"`
	// Pipelines are mm-registry stage selections crossed with the rest
	// of the matrix; empty defaults to the single zero spec (built-in
	// stages).
	Pipelines []config.PipelineSpec `json:"pipelines,omitempty"`
	// Seeds are PolicySeed values crossed with the matrix; empty
	// defaults to the base config's seed.
	Seeds []uint64 `json:"seeds,omitempty"`

	// Base is the base system configuration for matrix cells
	// (nil = config.Default()). Per-cell derivation applies the paper's
	// policy pairing and sizes device memory from the cell's workload
	// and oversubscription, exactly as the figure sweeps do.
	Base *config.Config `json:"base,omitempty"`

	// Cells are explicit extra cells appended after the matrix.
	Cells []CellSpec `json:"cells,omitempty"`

	// Colo are multi-tenant co-location cells over the pooled CXL tier
	// (DESIGN.md §15), appended after the workload cells. Like every
	// other cell they are deterministic and content-addressed, so
	// repeated co-location sweeps are cache hits.
	Colo []ColoSpec `json:"colo,omitempty"`
}

// CellSpec is one explicit simulation cell.
type CellSpec struct {
	Workload       string `json:"workload"`
	OversubPercent uint64 `json:"oversubPercent"`
	// Policy is the migration-policy name (empty = adaptive).
	Policy string `json:"policy,omitempty"`
	// Base overrides the job-level base configuration for this cell
	// (threshold/penalty sensitivity columns).
	Base *config.Config `json:"base,omitempty"`
}

// ColoSpec is one explicit co-location cell: a tenant mix co-scheduled
// over the pooled CXL tier under one pool policy. The run is
// deterministic (the PDES-equivalence property makes the worker count
// irrelevant, so the service always executes it sequentially) and the
// cache key covers everything behaviour-visible.
type ColoSpec struct {
	// Tenants is the co-scheduled mix in cxl.ParseTenants syntax:
	// "workload:gpu:priority" entries separated by commas.
	Tenants string `json:"tenants"`
	// GPUs is the number of GPUs sharing the pool.
	GPUs int `json:"gpus"`
	// PoolMB sizes the pooled CXL tier in MiB; it overrides the base
	// config's CXLPoolBytes when non-zero. The resulting pool must be
	// non-empty — a co-location cell without a pooled tier is an error.
	PoolMB uint64 `json:"poolMB,omitempty"`
	// PoolPolicy is the pool-policy name (empty = the registry default,
	// cxl-repl).
	PoolPolicy string `json:"poolPolicy,omitempty"`
	// Epochs and Seed size and seed the run (0 = scenario defaults).
	Epochs int    `json:"epochs,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Base overrides the job-level base configuration for this cell.
	Base *config.Config `json:"base,omitempty"`
}

// cell is one fully resolved unit of work.
type cell struct {
	workload string
	scale    float64
	pct      uint64
	policy   config.MigrationPolicy
	base     config.Config
}

// coloCell is one fully resolved co-location unit of work.
type coloCell struct {
	sc cxl.ScenarioConfig
	// policy is the resolved effective pool-policy name (the registry
	// default spelled out), used as the entry's scenario name.
	policy string
	// tenants is the canonical "workload:gpu:priority" spelling recorded
	// in the result entry.
	tenants []string
}

// defaultOversubPercents is the matrix default: the paper's
// oversubscription point.
var defaultOversubPercents = []uint64{125}

// cells validates the request and expands it into its deterministic
// cell list.
func (r *JobRequest) cells() ([]cell, error) {
	scale := r.Scale
	if scale == 0 {
		scale = 1.0
	}
	if scale < 0 {
		return nil, fmt.Errorf("serve: scale %v must be positive", r.Scale)
	}
	base := config.Default()
	if r.Base != nil {
		base = *r.Base
	}

	var cells []cell
	if len(r.Workloads) > 0 {
		pcts := r.OversubPercents
		if len(pcts) == 0 {
			pcts = defaultOversubPercents
		}
		policies := r.Policies
		if len(policies) == 0 {
			policies = []string{"adaptive"}
		}
		pipelines := r.Pipelines
		if len(pipelines) == 0 {
			pipelines = []config.PipelineSpec{{}}
		}
		seeds := r.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{base.PolicySeed}
		}
		for _, w := range r.Workloads {
			for _, pct := range pcts {
				for _, polName := range policies {
					for _, spec := range pipelines {
						for _, seed := range seeds {
							pol, err := cliutil.ParsePolicy(polName)
							if err != nil {
								return nil, fmt.Errorf("serve: %v", err)
							}
							b := base
							b.MMPipeline = spec
							b.PolicySeed = seed
							c := cell{workload: w, scale: scale, pct: pct, policy: pol, base: b}
							if err := c.validate(); err != nil {
								return nil, err
							}
							cells = append(cells, c)
						}
					}
				}
			}
		}
	}
	for i, spec := range r.Cells {
		polName := spec.Policy
		if polName == "" {
			polName = "adaptive"
		}
		pol, err := cliutil.ParsePolicy(polName)
		if err != nil {
			return nil, fmt.Errorf("serve: cell %d: %v", i, err)
		}
		b := base
		if spec.Base != nil {
			b = *spec.Base
		}
		c := cell{workload: spec.Workload, scale: scale, pct: spec.OversubPercent, policy: pol, base: b}
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("serve: cell %d: %v", i, err)
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// coloCells validates and resolves the request's co-location cells.
func (r *JobRequest) coloCells() ([]coloCell, error) {
	base := config.Default()
	if r.Base != nil {
		base = *r.Base
	}
	var cells []coloCell
	for i, spec := range r.Colo {
		b := base
		if spec.Base != nil {
			b = *spec.Base
		}
		if spec.PoolMB > 0 {
			b.CXLPoolBytes = spec.PoolMB << 20
		}
		if b.CXLPoolBytes == 0 {
			return nil, fmt.Errorf("serve: colo cell %d: requires a pooled tier (set poolMB or CXLPoolBytes)", i)
		}
		policy, err := cliutil.ParseComponentName("pool policy", spec.PoolPolicy, mm.PoolPolicyNames())
		if err != nil {
			return nil, fmt.Errorf("serve: colo cell %d: %v", i, err)
		}
		// Canonicalize to the effective policy's registered name (the
		// registry default spelled out), so a defaulted and an explicit
		// spelling of the same cell share one cache entry.
		pol, err := mm.NewPoolPolicy(policy, b)
		if err != nil {
			return nil, fmt.Errorf("serve: colo cell %d: %v", i, err)
		}
		b.PoolPolicy = pol.Name()
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("serve: colo cell %d: %v", i, err)
		}
		if spec.Epochs < 0 {
			return nil, fmt.Errorf("serve: colo cell %d: epochs must be non-negative, got %d", i, spec.Epochs)
		}
		if spec.GPUs < 1 || spec.GPUs > 64 {
			return nil, fmt.Errorf("serve: colo cell %d: %d GPUs out of range (1..64)", i, spec.GPUs)
		}
		tenants, err := cxl.ParseTenants(spec.Tenants, spec.GPUs)
		if err != nil {
			return nil, fmt.Errorf("serve: colo cell %d: %v", i, err)
		}
		strs := make([]string, len(tenants))
		for j, t := range tenants {
			strs[j] = fmt.Sprintf("%s:%d:%d", t.Workload, t.GPU, t.Priority)
		}
		cells = append(cells, coloCell{
			sc: cxl.ScenarioConfig{
				Cfg:     b,
				GPUs:    spec.GPUs,
				Tenants: tenants,
				Epochs:  spec.Epochs,
				Seed:    spec.Seed,
				// The service always runs co-location cells sequentially;
				// the PDES-equivalence property makes results identical at
				// any worker count, so Workers must not split cache keys.
				Workers: 1,
			},
			policy:  pol.Name(),
			tenants: strs,
		})
	}
	return cells, nil
}

// expand validates the request and resolves it into its deterministic
// unit lists: workload cells followed by co-location cells.
func (r *JobRequest) expand() ([]cell, []coloCell, error) {
	cells, err := r.cells()
	if err != nil {
		return nil, nil, err
	}
	colos, err := r.coloCells()
	if err != nil {
		return nil, nil, err
	}
	if len(cells)+len(colos) == 0 {
		return nil, nil, fmt.Errorf("serve: job expands to no cells (empty matrix and no explicit cells)")
	}
	return cells, colos, nil
}

// validate checks the fields submit-time can check cheaply: the
// workload name and oversubscription point. Full config validation
// happens when the cell's simulator is constructed — a failure there
// aborts the job through sweep.Parallel's panic path and surfaces as a
// failed job, never a wedged pool.
func (c *cell) validate() error {
	if _, ok := workloads.Get(c.workload); !ok {
		return fmt.Errorf("serve: unknown workload %q", c.workload)
	}
	if c.pct == 0 {
		return fmt.Errorf("serve: workload %q: oversubscription percent must be positive", c.workload)
	}
	return nil
}
