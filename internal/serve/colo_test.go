package serve

import (
	"bytes"
	"strings"
	"testing"

	"uvmsim/internal/cxl"
)

// A tiny colo sweep: one GPU, two tenants, a small pool, short epochs.
func smallColoJob(name string) JobRequest {
	return JobRequest{
		Name: name,
		Colo: []ColoSpec{
			{Tenants: "bfs:0:1,ra:0:0", GPUs: 1, PoolMB: 32, Epochs: 3, Seed: 7},
			{Tenants: "bfs:0:1,ra:0:0", GPUs: 1, PoolMB: 32, Epochs: 3, Seed: 7, PoolPolicy: "cxl-migrate"},
		},
	}
}

// A colo job must round-trip end to end: accepted, run to "done", its
// payload decoding into validated colo entries whose results match a
// direct in-process scenario run — the service and the CLI share one
// execution path.
func TestColoJobRoundTripMatchesDirectRun(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})

	st, payload, err := c.RunJob(smallColoJob("colo"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.TotalCells != 2 || st.DoneCells != 2 {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	doc, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 0 || len(doc.Colo) != 2 {
		t.Fatalf("got %d cells / %d colo entries, want 0 / 2", len(doc.Cells), len(doc.Colo))
	}
	if doc.Colo[0].Scenario.Policy != "cxl-repl" || doc.Colo[1].Scenario.Policy != "cxl-migrate" {
		t.Fatalf("unexpected policies: %q, %q", doc.Colo[0].Scenario.Policy, doc.Colo[1].Scenario.Policy)
	}

	// Reproduce the first entry directly.
	req := smallColoJob("direct")
	_, colos, err := req.expand()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cxl.NewScenario(colos[0].sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := doc.Colo[0].Scenario.Result
	if got.Checksum != want.Checksum || got.SimCycles != want.SimCycles {
		t.Fatalf("service result diverged from direct run: cycles %d/checksum %d vs %d/%d",
			got.SimCycles, got.Checksum, want.SimCycles, want.Checksum)
	}
}

// Resubmitting an identical colo job must be served entirely from the
// content-addressed cache with a byte-identical payload.
func TestIdenticalColoJobIsCacheHitWithIdenticalBytes(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 2})

	_, p1, err := c.RunJob(smallColoJob("cold"), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, p2, err := c.RunJob(smallColoJob("warm"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 2 {
		t.Fatalf("warm resubmission got %d cache hits, want 2", st.CacheHits)
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("cache hit payload is not byte-identical")
	}
	if hits := s.MetricsSnapshot().Counters["serve.cells.cache_hits"]; hits != 2 {
		t.Fatalf("serve.cells.cache_hits = %d, want 2", hits)
	}
}

// A mixed submission runs workload cells and colo cells in one job; the
// payload carries both sections and stays decodable.
func TestMixedWorkloadAndColoJob(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})

	req := smallJob("mixed")
	req.Colo = smallColoJob("").Colo[:1]
	st, payload, err := c.RunJob(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCells != 2 || st.DoneCells != 2 {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	doc, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 1 || len(doc.Colo) != 1 {
		t.Fatalf("got %d cells / %d colo entries, want 1 / 1", len(doc.Cells), len(doc.Colo))
	}
	if doc.Cells[0].Record.Workload != "bfs" {
		t.Fatalf("unexpected workload cell: %+v", doc.Cells[0].Record)
	}
	if doc.Colo[0].Scenario.Result.SimCycles == 0 {
		t.Fatal("colo cell simulated zero cycles")
	}
}

// Submit-time validation must reject malformed colo cells with errors
// naming the cell, never start the job.
func TestColoSubmitValidation(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	cases := []struct {
		name string
		spec ColoSpec
		want string
	}{
		{"noPool", ColoSpec{Tenants: "bfs:0", GPUs: 1}, "pooled tier"},
		{"badTenants", ColoSpec{Tenants: "bfs", GPUs: 1, PoolMB: 32}, "want workload:gpu"},
		{"unknownWorkload", ColoSpec{Tenants: "nosuch:0", GPUs: 1, PoolMB: 32}, "unknown workload"},
		{"gpuOutOfRange", ColoSpec{Tenants: "bfs:2", GPUs: 2, PoolMB: 32}, "bad GPU"},
		{"gpusOutOfRange", ColoSpec{Tenants: "bfs:0", GPUs: 0, PoolMB: 32}, "GPUs out of range"},
		{"unknownPolicy", ColoSpec{Tenants: "bfs:0", GPUs: 1, PoolMB: 32, PoolPolicy: "nosuch"}, "unknown pool policy"},
		{"negativeEpochs", ColoSpec{Tenants: "bfs:0", GPUs: 1, PoolMB: 32, Epochs: -1}, "epochs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(JobRequest{Colo: []ColoSpec{tc.spec}})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Equivalent spellings of the same colo cell — elided default priority,
// defaulted vs spelled-out pool policy — must share one cache entry.
func TestColoKeyCanonicalization(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 1})

	a := JobRequest{Colo: []ColoSpec{{Tenants: "bfs:0:0,ra:0:1", GPUs: 1, PoolMB: 32, Epochs: 2, Seed: 5}}}
	b := JobRequest{Colo: []ColoSpec{{Tenants: "bfs:0,ra:0:1", GPUs: 1, PoolMB: 32, Epochs: 2, Seed: 5, PoolPolicy: "cxl-repl"}}}
	if _, _, err := c.RunJob(a, nil); err != nil {
		t.Fatal(err)
	}
	st, _, err := c.RunJob(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 {
		t.Fatalf("equivalent spelling missed the cache: %+v", st)
	}
	if n := s.MetricsSnapshot().Counters["serve.cells.simulated"]; n != 1 {
		t.Fatalf("serve.cells.simulated = %d, want 1", n)
	}
}
