package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/resultio"
	"uvmsim/internal/workloads"
)

func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

func smallJob(name string) JobRequest {
	return JobRequest{
		Name:            name,
		Scale:           0.05,
		Workloads:       []string{"bfs"},
		OversubPercents: []uint64{125},
		Policies:        []string{"adaptive"},
	}
}

// A submitted job must round-trip: accepted, progress-streamed to a
// terminal "done" status, and its result payload must decode into valid
// cell entries matching the requested matrix.
func TestJobRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})

	var updates []JobStatus
	st, payload, err := c.RunJob(smallJob("roundtrip"), func(u JobStatus) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.TotalCells != 1 || st.DoneCells != 1 {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	if st.Name != "roundtrip" {
		t.Fatalf("job name lost: %+v", st)
	}
	if len(updates) == 0 || !updates[len(updates)-1].Terminal() {
		t.Fatalf("progress stream did not end on a terminal status: %+v", updates)
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].DoneCells < updates[i-1].DoneCells {
			t.Fatalf("progress went backwards: %+v", updates)
		}
	}

	doc, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(doc.Cells))
	}
	rec := doc.Cells[0].Record
	if rec.Workload != "bfs" || rec.OversubPercent != 125 || rec.Scale != 0.05 {
		t.Fatalf("unexpected cell record: %+v", rec)
	}
	if rec.Counters.Cycles == 0 {
		t.Fatal("cell simulated zero cycles")
	}
}

// Resubmitting an identical job must be served from the
// content-addressed cache — every cell a hit — and must return the
// byte-identical result payload. This is the core cacheability claim:
// determinism makes (config, workload, seed) cells content-addressable.
func TestIdenticalJobIsCacheHitWithIdenticalBytes(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 4})

	job := JobRequest{
		Scale:           0.05,
		Workloads:       []string{"bfs", "ra"},
		OversubPercents: []uint64{110, 125},
		Policies:        []string{"disabled", "adaptive"},
	}
	st1, payload1, err := c.RunJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st1.TotalCells != 8 {
		t.Fatalf("matrix expanded to %d cells, want 8", st1.TotalCells)
	}
	if st1.CacheHits != 0 {
		t.Fatalf("cold job reported %d cache hits", st1.CacheHits)
	}

	st2, payload2, err := c.RunJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHits != st2.TotalCells {
		t.Fatalf("warm job: %d/%d cache hits, want all", st2.CacheHits, st2.TotalCells)
	}
	if !bytes.Equal(payload1, payload2) {
		t.Fatal("warm payload differs from cold payload")
	}

	cs, err := c.CacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Entries != 8 || cs.Hits < 8 {
		t.Fatalf("unexpected cache stats: %+v", cs)
	}

	// A different seed is a different cell: no hits, different payload.
	seeded := job
	seeded.Seeds = []uint64{12345}
	st3, payload3, err := c.RunJob(seeded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHits != 0 {
		t.Fatalf("distinct-seed job reported %d cache hits", st3.CacheHits)
	}
	if bytes.Equal(payload1, payload3) {
		t.Fatal("distinct-seed job returned identical payload")
	}
	_ = s
}

// A cell whose derived config fails validation panics inside the
// simulator; the panic must surface as a failed job — with the pool
// intact, so a subsequent healthy job still completes.
func TestPanicInCellFailsJobWithoutWedgingPool(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})

	bad := config.Default()
	bad.WarpSize = 64 // out of range: core.New panics on Validate
	st, err := c.Submit(JobRequest{
		Scale: 0.05,
		Cells: []CellSpec{{Workload: "bfs", OversubPercent: 125, Base: &bad}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("job state %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "WarpSize") {
		t.Fatalf("failure did not carry the panic message: %q", st.Error)
	}
	if _, err := c.Result(st.ID); err == nil {
		t.Fatal("result endpoint served a failed job")
	}

	// The worker pool must survive the abort.
	if _, _, err := c.RunJob(smallJob("after-failure"), nil); err != nil {
		t.Fatalf("healthy job after failed job: %v", err)
	}
}

// Concurrent clients submitting overlapping jobs must all complete and
// agree byte-for-byte on overlapping cells; exercised under -race.
func TestConcurrentOverlappingJobs(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 4})

	job := smallJob("overlap")
	const clients = 6
	payloads := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, payloads[i], errs[i] = c.RunJob(job, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Fatalf("client %d payload differs", i)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1, MaxCells: 2})

	cases := map[string]JobRequest{
		"empty job":        {},
		"unknown workload": {Workloads: []string{"nope"}},
		"unknown policy":   {Workloads: []string{"bfs"}, Policies: []string{"nope"}},
		"zero oversub":     {Workloads: []string{"bfs"}, OversubPercents: []uint64{0}},
		"negative scale":   {Scale: -1, Workloads: []string{"bfs"}},
		"too many cells":   {Workloads: []string{"bfs", "ra", "nw"}},
	}
	for name, req := range cases {
		if _, err := c.Submit(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Unknown top-level fields must be rejected, not ignored.
	resp, err := c.HTTPClient.Post(c.BaseURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workloads":["bfs"],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: got %s, want 400", resp.Status)
	}

	if _, err := c.Status("job-999"); err == nil {
		t.Error("status of unknown job succeeded")
	}
}

// The cells endpoint serves individual cached entries by content
// address, byte-identical to the entry embedded in the job payload.
func TestCellEndpointServesCachedEntry(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})

	_, payload, err := c.RunJob(smallJob("cells"), nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	key := doc.Cells[0].Key

	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/cells/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cell: %s", resp.Status)
	}
	entry, err := resultio.ReadCellEntry(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Key != key || entry.Record.Workload != "bfs" {
		t.Fatalf("cell entry mismatch: %+v", entry)
	}

	missing, err := c.HTTPClient.Get(c.BaseURL + "/v1/cells/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	defer missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing cell: got %s, want 404", missing.Status)
	}
}

// Service metrics ride the repo's standard obs snapshot schema.
func TestMetricsSnapshotSchema(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})

	if _, _, err := c.RunJob(smallJob("metrics"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunJob(smallJob("metrics"), nil); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name != "simd" {
		t.Fatalf("snapshot name %q", snap.Name)
	}
	if got := snap.Counter("serve.jobs.completed"); got != 2 {
		t.Fatalf("serve.jobs.completed = %d, want 2", got)
	}
	if got := snap.Counter("serve.cells.simulated"); got != 1 {
		t.Fatalf("serve.cells.simulated = %d, want 1", got)
	}
	if got := snap.Counter("serve.cells.cache_hits"); got != 1 {
		t.Fatalf("serve.cells.cache_hits = %d, want 1", got)
	}
}

// The result payload for a cell must byte-match what a direct
// simulation of the same derived config writes — the service adds
// transport, not semantics.
func TestServiceMatchesDirectSimulation(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})

	_, payload, err := c.RunJob(smallJob("direct"), nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}

	b := workloads.NewMemo().Get("bfs", 0.05)
	cfg := core.DeriveConfig(b, 1, 125, config.PolicyAdaptive, config.Default())
	res := core.Run(b, cfg)
	want := resultio.FromResult(res, 0.05, 125)
	if doc.Cells[0].Record.Counters != want.Counters {
		t.Fatalf("service counters diverge from direct run:\n%+v\n%+v",
			doc.Cells[0].Record.Counters, want.Counters)
	}
	if doc.Cells[0].Key != CellKey("bfs", 0.05, 125, cfg) {
		t.Fatal("cell key does not match CellKey of the derived config")
	}
}

// Snapshot prefix grouping is a pure execution strategy: a multi-policy
// job run through the grouped snapshot/fork path must return the
// byte-identical payload a NoSnapshot server produces cell by cell, and
// the grouped server must account every miss as either forked or
// scratch in its metrics.
func TestSnapshotGroupingByteIdenticalToPerCell(t *testing.T) {
	snapSrv, snapC := newTestServer(t, Options{Workers: 2})
	_, plainC := newTestServer(t, Options{Workers: 2, NoSnapshot: true})

	job := JobRequest{
		Scale:           0.05,
		Workloads:       []string{"bfs", "sssp"},
		OversubPercents: []uint64{125},
		Policies:        []string{"disabled", "oversub", "adaptive"},
	}
	stSnap, gotSnap, err := snapC.RunJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	stPlain, gotPlain, err := plainC.RunJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stSnap.TotalCells != 6 || stPlain.TotalCells != 6 {
		t.Fatalf("matrix expanded to %d/%d cells, want 6", stSnap.TotalCells, stPlain.TotalCells)
	}
	if !bytes.Equal(gotSnap, gotPlain) {
		t.Fatal("snapshot-grouped payload differs from per-cell payload")
	}

	snap := snapSrv.MetricsSnapshot()
	forked := snap.Counter("serve.snapshot.forked_cells")
	if sim := snap.Counter("serve.cells.simulated"); forked > sim {
		t.Fatalf("forked cells %d exceed simulated cells %d", forked, sim)
	}
	if forked > 0 && snap.Counter("serve.snapshot.shared_kernels") == 0 {
		t.Fatal("cells forked but no kernel launches were shared")
	}

	// A warm resubmission is all cache hits on both servers — grouping
	// must not bypass the content-addressed cache.
	stWarm, warm, err := snapC.RunJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stWarm.CacheHits != stWarm.TotalCells {
		t.Fatalf("warm grouped job: %d/%d cache hits, want all", stWarm.CacheHits, stWarm.TotalCells)
	}
	if !bytes.Equal(warm, gotSnap) {
		t.Fatal("warm grouped payload differs from cold payload")
	}
}

func TestJobListOrder(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, _, err := c.RunJob(smallJob("list"), nil); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if want := "job-" + string(rune('1'+i)); st.ID != want {
			t.Fatalf("job %d listed as %q, want %q", i, st.ID, want)
		}
	}
}
