package lint

import (
	"go/ast"
	"go/types"
)

// SourceFunc classifies call expressions that introduce taint (wall
// clock, global rand, ...). The string names the source for
// diagnostics ("time.Now", "rand.Intn").
type SourceFunc func(pkg *Package, call *ast.CallExpr) (string, bool)

// Taint is an interprocedural value-taint engine over a Program: it
// computes which declared functions return tainted values (directly or
// through calls to other tainted functions) and, per function body,
// which local objects carry taint. Analyzers use it to follow a
// nondeterministic value — a wall-clock read, a draw from the global
// rand source, a slice built in map-iteration order — across function
// boundaries to a sink they care about.
//
// The analysis is flow-insensitive within a body (an object once
// tainted stays tainted) and tracks named objects, not heap shapes: a
// struct variable becomes tainted as a whole when any tainted value is
// stored into it. Both choices over-approximate locally but keep the
// engine small and predictable; sinks decide how much precision they
// need.
type Taint struct {
	Prog   *Program
	Source SourceFunc
	// MapOrder, when set, additionally taints slice/string
	// accumulators built inside range-over-map loops ("append in map
	// iteration order") unless the accumulator is later passed to a
	// sort call in the same body — the canonical collect-then-sort
	// idiom stays clean.
	MapOrder bool

	returns map[*types.Func]string
	locals  map[*ast.FuncDecl]*LocalTaint
}

// NewTaint computes the engine's function summaries to a fixed point.
func NewTaint(prog *Program, source SourceFunc, mapOrder bool) *Taint {
	t := &Taint{Prog: prog, Source: source, MapOrder: mapOrder}
	t.returns = make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		t.locals = make(map[*ast.FuncDecl]*LocalTaint)
		prog.Funcs(func(fn *types.Func, decl *FuncDecl) {
			if _, done := t.returns[fn]; done {
				return
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return
			}
			lt := t.Local(decl)
			if reason, ok := lt.returnsTaint(); ok {
				t.returns[fn] = reason
				changed = true
			}
		})
	}
	// Summaries are final; drop per-round locals so Local recomputes
	// against the complete returns map.
	t.locals = make(map[*ast.FuncDecl]*LocalTaint)
	return t
}

// Returns reports whether fn's return value carries taint, with the
// chain of reasons.
func (t *Taint) Returns(fn *types.Func) (string, bool) {
	reason, ok := t.returns[fn]
	return reason, ok
}

// LocalTaint is the per-function view: which objects in one body carry
// taint, and why.
type LocalTaint struct {
	t    *Taint
	pkg  *Package
	decl *ast.FuncDecl
	objs map[types.Object]string
}

// Local returns the taint facts for one function body, computing and
// caching them on first use.
func (t *Taint) Local(decl *FuncDecl) *LocalTaint {
	if lt, ok := t.locals[decl.Decl]; ok {
		return lt
	}
	lt := &LocalTaint{t: t, pkg: decl.Pkg, decl: decl.Decl, objs: make(map[types.Object]string)}
	t.locals[decl.Decl] = lt
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if lt.propagateAssign(n) {
					changed = true
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if reason, ok := lt.Expr(v); ok {
						for _, name := range n.Names {
							if lt.mark(name, reason) {
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if lt.propagateRange(n) {
					changed = true
				}
			}
			return true
		})
	}
	if t.MapOrder {
		lt.dropSorted()
	}
	return lt
}

// propagateAssign marks LHS objects when any RHS is tainted. Compound
// assignment (+= etc) keeps existing taint and adds RHS taint.
func (lt *LocalTaint) propagateAssign(as *ast.AssignStmt) bool {
	var reason string
	found := false
	for _, rhs := range as.Rhs {
		if r, ok := lt.Expr(rhs); ok {
			reason, found = r, true
			break
		}
	}
	if !found {
		return false
	}
	changed := false
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if lt.mark(id, reason) {
				changed = true
			}
		}
	}
	return changed
}

// propagateRange handles two flows: `for k, v := range tainted` taints
// k and v, and (with MapOrder) append-accumulation inside a map range
// taints the accumulator with the iteration order.
func (lt *LocalTaint) propagateRange(rng *ast.RangeStmt) bool {
	changed := false
	if reason, ok := lt.Expr(rng.X); ok {
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := ast.Unparen(e).(*ast.Ident); e != nil && ok {
				if lt.mark(id, reason) {
					changed = true
				}
			}
		}
	}
	if !lt.t.MapOrder {
		return changed
	}
	xt := lt.pkg.Info.TypeOf(rng.X)
	if xt == nil {
		return changed
	}
	if _, isMap := xt.Underlying().(*types.Map); !isMap {
		return changed
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, isBuiltin := lt.pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		if lt.mark(id, "is built in map-iteration order") {
			changed = true
		}
		return true
	})
	return changed
}

// dropSorted clears map-order taint from objects later handed to a
// sort call in this body (collect-then-sort).
func (lt *LocalTaint) dropSorted() {
	//simlint:allow maporder -- each entry is tested and deleted independently; the surviving set is the same in every order
	for obj, reason := range lt.objs {
		if reason != "is built in map-iteration order" {
			continue
		}
		sorted := false
		ast.Inspect(lt.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			f := CalleeFunc(lt.pkg.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			if pkg := f.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if MentionsObject(lt.pkg.Info, arg, obj) {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			delete(lt.objs, obj)
		}
	}
}

// mark taints id's object; reports whether that was new.
func (lt *LocalTaint) mark(id *ast.Ident, reason string) bool {
	if id.Name == "_" {
		return false
	}
	obj := lt.pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, done := lt.objs[obj]; done {
		return false
	}
	lt.objs[obj] = reason
	return true
}

// Object reports whether obj carries taint in this body.
func (lt *LocalTaint) Object(obj types.Object) (string, bool) {
	reason, ok := lt.objs[obj]
	return reason, ok
}

// Expr reports whether e's value carries taint: it mentions a tainted
// object, contains a source call, or calls a tainted-returning
// function.
func (lt *LocalTaint) Expr(e ast.Expr) (string, bool) {
	var reason string
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if r, ok := lt.objs[lt.pkg.Info.ObjectOf(n)]; ok {
				reason, found = r, true
			}
		case *ast.CallExpr:
			if r, ok := lt.t.Source(lt.pkg, n); ok {
				reason, found = "derives from "+r, true
				return false
			}
			if fn := CalleeFunc(lt.pkg.Info, n); fn != nil {
				if r, ok := lt.t.returns[fn]; ok {
					reason, found = "flows through "+FuncName(fn)+", which "+r, true
					return false
				}
			}
		case *ast.FuncLit:
			// A closure's body is its own scope; taint does not leak
			// out through the literal value itself.
			return false
		}
		return !found
	})
	return reason, found
}

// returnsTaint reports whether any return path yields a tainted value
// (explicit return expressions, or named results that were tainted by
// assignment).
func (lt *LocalTaint) returnsTaint() (string, bool) {
	ft := lt.decl.Type
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return "", false
	}
	// Named results: tainted by assignment anywhere in the body.
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if reason, ok := lt.objs[lt.pkg.Info.ObjectOf(name)]; ok {
				return "returns a value that " + reason, true
			}
		}
	}
	var reason string
	found := false
	ast.Inspect(lt.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			return false // returns inside closures are not ours
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if r, ok := lt.Expr(res); ok {
				reason, found = "returns a value that "+r, true
				break
			}
		}
		return !found
	})
	return reason, found
}
