package lint

import (
	"go/ast"
	"go/types"
)

// Program is the whole-module view analyzers use for interprocedural
// reasoning: every package loaded into one RunAnalyzers invocation,
// indexed so a *types.Func resolves to its declaration (when the
// declaration is part of the load) and a lightweight call graph can be
// walked without re-traversing ASTs.
//
// The graph is deliberately syntactic: edges come from direct calls
// resolved by the type checker (CalleeFunc). Calls through
// function-typed values, interface method sets and reflection are not
// modeled — analyzers built on the Program must treat "no edge" as
// "unknown", not "cannot call". For the conventions simlint enforces
// (taint reaching sinks, blocking ops under locks, goroutine shutdown)
// that under-approximation is the right default: it misses exotic
// flows instead of drowning real ones in false positives.
type Program struct {
	Packages []*Package

	// decls maps a function object to its syntax and owning package.
	decls map[*types.Func]*FuncDecl
	// callees maps a function object to the distinct functions its body
	// calls directly, in first-call order.
	callees map[*types.Func][]*types.Func
}

// FuncDecl pairs a function declaration with the package that owns it
// (whose Info resolves identifiers inside the body).
type FuncDecl struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// BuildProgram indexes the packages' function declarations and direct
// call edges. RunAnalyzers calls it once per run; linttest builds one
// per fixture load spanning the fixture and its fixture imports.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages: pkgs,
		decls:    make(map[*types.Func]*FuncDecl),
		callees:  make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.decls[obj] = &FuncDecl{Decl: fd, Pkg: pkg}
				seen := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeFunc(pkg.Info, call); callee != nil && !seen[callee] {
						seen[callee] = true
						prog.callees[obj] = append(prog.callees[obj], callee)
					}
					return true
				})
			}
		}
	}
	return prog
}

// Decl returns the declaration of fn when fn was declared in a loaded
// package (nil for imports, interface methods and func literals).
func (p *Program) Decl(fn *types.Func) *FuncDecl {
	if p == nil {
		return nil
	}
	return p.decls[fn]
}

// Callees returns the functions fn's body calls directly.
func (p *Program) Callees(fn *types.Func) []*types.Func {
	if p == nil {
		return nil
	}
	return p.callees[fn]
}

// Funcs calls visit for every declared function in the program, in
// package load order then file order. Iteration is deterministic.
func (p *Program) Funcs(visit func(fn *types.Func, decl *FuncDecl)) {
	if p == nil {
		return
	}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					visit(obj, p.decls[obj])
				}
			}
		}
	}
}

// Fixpoint computes the set of declared functions satisfying a
// property that propagates up the call graph: a function is in the set
// when seed reports it directly, or when any direct callee already in
// the set justifies it. The why map records, for each member, the
// reason string of the seed (for direct members) or of the callee that
// pulled it in (prefixed by via), so diagnostics can narrate the chain.
//
// seed is consulted once per declared function; propagation then
// iterates to a fixed point. The result is deterministic: functions
// are visited in Program order and the first justification wins.
func (p *Program) Fixpoint(seed func(fn *types.Func, decl *FuncDecl) (string, bool)) map[*types.Func]string {
	why := make(map[*types.Func]string)
	p.Funcs(func(fn *types.Func, decl *FuncDecl) {
		if reason, ok := seed(fn, decl); ok {
			why[fn] = reason
		}
	})
	for changed := true; changed; {
		changed = false
		p.Funcs(func(fn *types.Func, _ *FuncDecl) {
			if _, done := why[fn]; done {
				return
			}
			for _, callee := range p.callees[fn] {
				if reason, ok := why[callee]; ok {
					why[fn] = "calls " + FuncName(callee) + ", which " + reason
					changed = true
					return
				}
			}
		})
	}
	return why
}

// FuncName renders fn as package.Name or package.(Recv).Name for
// diagnostics.
func FuncName(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Name() != "" {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
