package eventseq_test

import (
	"testing"

	"uvmsim/internal/lint/eventseq"
	"uvmsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, eventseq.Analyzer, "sim", "eventseqfix")
}
