// Package eventseq checks sim.Engine scheduling call sites for the two
// statically-visible ways to corrupt the event sequence:
//
//   - a cycle argument computed by unsigned subtraction. sim.Cycle is
//     uint64, so "now - latency" underflows to an enormous future cycle
//     instead of going negative, and At panics only for the past — an
//     underflow silently stalls the simulation. Delays must be computed
//     additively (or the subtraction proven safe and annotated).
//
//   - the same event closure variable passed to two schedule calls in
//     one statement sequence with no rebinding in between. Prebound
//     closures (w.stepFn and friends) are scheduled once per completion;
//     scheduling one twice back-to-back fires it twice at
//     indistinguishable (cycle, seq) positions — almost always a
//     copy-paste bug that a deterministic run happily reproduces.
//
// The analyzer recognizes the engine by shape — methods At, After,
// Schedule, ScheduleAfter on a type named Engine in a package named
// sim — so fixtures and any future engine package are both covered.
package eventseq

import (
	"go/ast"
	"go/token"
	"go/types"

	"uvmsim/internal/lint"
)

// Analyzer is the eventseq checker.
var Analyzer = &lint.Analyzer{
	Name: "eventseq",
	Doc:  "rejects sim.Engine schedule calls with underflow-prone cycle math or back-to-back reuse of one event closure",
	Run:  run,
}

// scheduleMethods are the Engine entry points; all take (cycle, fn).
var scheduleMethods = map[string]bool{
	"At": true, "After": true, "Schedule": true, "ScheduleAfter": true,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isScheduleCall(pass, call) || len(call.Args) < 2 {
				return true
			}
			if sub := findUnsignedSub(pass, call.Args[0]); sub != nil {
				pass.Reportf(sub.OpPos, "cycle argument uses unsigned subtraction, which underflows instead of scheduling in the past; compute the target cycle additively")
			}
			return true
		})
		lint.InspectStmtLists(f, func(list []ast.Stmt) {
			checkReuse(pass, list)
		})
	}
}

// isScheduleCall reports whether call invokes a schedule method of a
// sim.Engine.
func isScheduleCall(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "sim" || !scheduleMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// findUnsignedSub returns the first unsigned-typed subtraction inside e.
func findUnsignedSub(pass *lint.Pass, e ast.Expr) *ast.BinaryExpr {
	var found *ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.SUB {
			return true
		}
		if tv, ok := pass.Info.Types[b]; ok && tv.Value != nil {
			return true // constant: checked at compile time
		}
		t := pass.TypeOf(b)
		if t == nil {
			return true
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsUnsigned != 0 {
			found = b
			return false
		}
		return true
	})
	return found
}

// checkReuse scans one statement sequence for the same closure variable
// being scheduled twice without rebinding.
func checkReuse(pass *lint.Pass, list []ast.Stmt) {
	scheduled := map[*types.Var]bool{}
	for _, st := range list {
		// A rebinding of the variable resets its scheduled state.
		if as, ok := st.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok {
						delete(scheduled, v)
					}
				}
			}
		}
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.BlockStmt); ok {
				// Nested blocks are their own statement sequences (handled
				// by their own checkReuse pass), and calls in exclusive
				// branches are not back-to-back.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isScheduleCall(pass, call) || len(call.Args) < 2 {
				return true
			}
			id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
			if !ok {
				return true
			}
			// Only closure *variables* are tracked: scheduling a stateless
			// package-level function twice is a legitimate pattern.
			obj, ok := pass.Info.ObjectOf(id).(*types.Var)
			if !ok {
				return true
			}
			if scheduled[obj] {
				pass.Reportf(call.Args[1].Pos(), "event closure %s is scheduled twice in this sequence without rebinding; scheduled events fire once per schedule call", id.Name)
			}
			scheduled[obj] = true
			return true
		})
	}
}
