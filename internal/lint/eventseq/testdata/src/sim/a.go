// Fixture sim package: the minimal Engine shape the eventseq analyzer
// recognizes (package named sim, type named Engine, schedule methods).
package sim

type Cycle = uint64

type Event func()

type Engine struct{ now Cycle }

func (e *Engine) Now() Cycle { return e.now }

func (e *Engine) At(c Cycle, fn Event)            {}
func (e *Engine) After(d Cycle, fn Event)         {}
func (e *Engine) Schedule(c Cycle, fn Event)      {}
func (e *Engine) ScheduleAfter(d Cycle, fn Event) {}
