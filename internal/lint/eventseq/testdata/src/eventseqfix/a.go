// Fixture for the eventseq analyzer: underflow-prone cycle math and
// back-to-back reuse of one event closure.
package eventseqfix

import "sim"

func badUnderflow(e *sim.Engine, lat sim.Cycle) {
	e.At(e.Now()-lat, func() {}) // want `unsigned subtraction`
}

func badUnderflowNested(e *sim.Engine, lat sim.Cycle) {
	e.ScheduleAfter((e.Now()-lat)/2, func() {}) // want `unsigned subtraction`
}

func additiveOK(e *sim.Engine, lat sim.Cycle) {
	e.At(e.Now()+lat, func() {})
	e.After(lat, func() {})
}

func constOK(e *sim.Engine) {
	const horizon = 10
	e.At(horizon-1, func() {})
}

func badReuse(e *sim.Engine) {
	step := func() {}
	e.After(1, step)
	e.After(2, step) // want `scheduled twice`
}

func rebindOK(e *sim.Engine) {
	step := func() {}
	e.After(1, step)
	step = func() {}
	e.After(2, step)
}

func branchesOK(e *sim.Engine, fast bool) {
	step := func() {}
	if fast {
		e.After(1, step)
	} else {
		e.After(2, step)
	}
}

func tick() {}

func packageFuncOK(e *sim.Engine) {
	// Stateless package-level functions may be scheduled repeatedly.
	e.After(1, tick)
	e.After(2, tick)
}

func suppressed(e *sim.Engine, lat sim.Cycle) {
	e.At(e.Now()-lat, func() {}) //simlint:allow eventseq -- fixture: suppression must silence the finding
}
