// Package lockhelp provides blocking helpers in a *different* fixture
// package, so the lockhold test proves cross-package may-block
// summaries: the critical sections live in lockholdfix, the channel
// operations live here.
package lockhelp

// Drain receives until the channel closes; callers block.
func Drain(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Notify performs a channel send.
func Notify(ch chan<- int, v int) { ch <- v }

// Peek is clean: a non-blocking receive behind a default case.
func Peek(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
