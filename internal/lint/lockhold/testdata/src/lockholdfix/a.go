// Fixture for the lockhold analyzer: blocking operations inside
// mutex-guarded critical sections, directly and through calls.
package lockholdfix

import (
	"sync"
	"time"

	"lockhelp"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// send: a channel send between Lock and Unlock.
func send(b *box, ch chan int) {
	b.mu.Lock()
	ch <- b.n // want `holding b.mu \(locked at line 20\) across a channel send`
	b.mu.Unlock()
}

// deferred: a deferred unlock holds the lock for the whole list.
func deferred(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := <-ch // want `across a channel receive`
	b.n = v
}

// released: the lock is dropped before the receive — clean.
func released(b *box, ch chan int) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	<-ch
}

// selectNoDefault: a default-less select parks the goroutine.
func selectNoDefault(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `across a select with no default case`
	case v := <-ch:
		b.n = v
	}
}

// selectDefault: clean — the select cannot block.
func selectDefault(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-ch:
		b.n = v
	default:
	}
}

// sleepy: sleeping under an RLock stalls writers.
func sleepy(b *box) {
	b.rw.RLock()
	time.Sleep(time.Millisecond) // want `holding b.rw \(locked at line 64\) across a time.Sleep`
	b.rw.RUnlock()
}

// waits: WaitGroup.Wait under a lock is a deadlock seed.
func waits(b *box, wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Wait() // want `across a WaitGroup.Wait call`
}

// drains: interprocedural — the blocking loop hides in lockhelp.
func drains(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = lockhelp.Drain(ch) // want `across a call to lockhelp.Drain, which performs a range over a channel`
}

// notify is a local helper whose send the summary surfaces.
func notify(ch chan int, v int) { ch <- v }

func localHop(b *box, ch chan int) {
	b.mu.Lock()
	notify(ch, b.n) // want `across a call to lockholdfix.notify, which performs a channel send`
	b.mu.Unlock()
}

// relay inherits Notify's summary; chained proves two-hop propagation.
func relay(ch chan int, v int) { lockhelp.Notify(ch, v) }

func chained(b *box, ch chan int) {
	b.mu.Lock()
	relay(ch, b.n) // want `calls lockhelp.Notify, which performs a channel send`
	b.mu.Unlock()
}

// spawns: clean — the goroutine body runs outside the section.
func spawns(b *box, done chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.n
	go func() { done <- n }()
}

// peeks: clean — the helper is non-blocking behind its default case.
func peeks(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v, ok := lockhelp.Peek(ch); ok {
		b.n = v
	}
}

// branchRelease: the unlock inside the taken branch ends the scan.
func branchRelease(b *box, ch chan int, fast bool) {
	b.mu.Lock()
	if fast {
		b.mu.Unlock()
		<-ch
		return
	}
	b.mu.Unlock()
}

// suppressed: a reason-carrying allow silences the finding.
func suppressed(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch <- b.n //simlint:allow lockhold -- fixture: suppression must silence the finding
}
