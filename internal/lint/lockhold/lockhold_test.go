package lockhold_test

import (
	"testing"

	"uvmsim/internal/lint/linttest"
	"uvmsim/internal/lint/lockhold"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, lockhold.Analyzer, "lockholdfix")
}
