// Package lockhold flags blocking operations performed while a sync
// mutex is held. A goroutine that parks inside a critical section —
// on a channel send or receive, a default-less select, a WaitGroup or
// Cond wait, a sleep, or network I/O — stalls every other goroutine
// contending for the lock, and when the unblocking party needs that
// same lock the program deadlocks. The serve and multigpu layers run
// exactly this shape (mutex-guarded job state next to channels), so
// the hazard is one refactor away at all times.
//
// A critical section opens at a statement-list-level `mu.Lock()` or
// `mu.RLock()` call on a sync mutex and closes at the matching plain
// `mu.Unlock()`/`mu.RUnlock()` statement (a *deferred* unlock holds
// the lock to the end of the enclosing list). Within the section the
// analyzer reports, in any nesting:
//
//   - channel sends, receives and range-over-channel loops;
//   - select statements with no default case;
//   - sync.WaitGroup.Wait / sync.Cond.Wait, time.Sleep, and blocking
//     net / net/http calls;
//   - calls to module functions that (transitively) perform one of the
//     above, via a may-block summary computed over the whole load's
//     call graph (lint.Program.Fixpoint).
//
// Mutexes are matched by the printed receiver expression ("s.mu"), so
// aliased locks escape the analysis; func literals, go statements and
// deferred calls are boundaries (their bodies do not run inside the
// section). The may-block summary over-approximates — it cannot see
// that a callee's send targets a buffered channel that never fills —
// so provably bounded waits are suppressed with
// `//simlint:allow lockhold -- reason`.
package lockhold

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"uvmsim/internal/lint"
)

// Analyzer is the lockhold checker.
var Analyzer = &lint.Analyzer{
	Name: "lockhold",
	Doc:  "flags channel operations, waits, sleeps and blocking I/O performed while a sync mutex is held",
	Run:  run,
}

// summaries caches the may-block Fixpoint per Program.
var summaries = make(map[*lint.Program]map[*types.Func]string)

func mayBlock(prog *lint.Program) map[*types.Func]string {
	if s, ok := summaries[prog]; ok {
		return s
	}
	s := prog.Fixpoint(func(fn *types.Func, decl *lint.FuncDecl) (string, bool) {
		var what string
		scanBlocking(decl.Pkg.Info, decl.Decl.Body, nil, nil, func(pos token.Pos, w string) bool {
			what = w
			return true
		})
		if what != "" {
			return "performs " + what, true
		}
		return "", false
	})
	summaries[prog] = s
	return s
}

func run(pass *lint.Pass) {
	blocks := mayBlock(pass.Prog)
	for _, f := range pass.Files {
		lint.InspectStmtLists(f, func(list []ast.Stmt) {
			for i, st := range list {
				recv, unlockName, ok := lockStmt(pass, st)
				if !ok {
					continue
				}
				lockLine := pass.Fset.Position(st.Pos()).Line
				isUnlock := func(call *ast.CallExpr) bool {
					return unlockCall(pass, call, recv, unlockName)
				}
				for j := i + 1; j < len(list); j++ {
					released := scanBlocking(pass.Info, list[j], isUnlock, blocks, func(pos token.Pos, what string) bool {
						pass.Reportf(pos, "holding %s (locked at line %d) across %s; release the lock before blocking", recv, lockLine, what)
						return false
					})
					if released {
						break
					}
				}
			}
		})
	}
}

// lockStmt recognizes a statement-list-level `recv.Lock()` or
// `recv.RLock()` on a sync mutex and returns the printed receiver and
// the matching unlock method name.
func lockStmt(pass *lint.Pass, st ast.Stmt) (recv, unlockName string, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := ast.Unparen(es.X).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock":
		unlockName = "Unlock"
	case "RLock":
		unlockName = "RUnlock"
	default:
		return "", "", false
	}
	return render(pass.Fset, sel.X), unlockName, true
}

// unlockCall reports whether call is `recv.<unlockName>()` on a sync
// mutex.
func unlockCall(pass *lint.Pass, call *ast.CallExpr, recv, unlockName string) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != unlockName {
		return false
	}
	return render(pass.Fset, sel.X) == recv
}

// netBlocking names the net / net/http entry points that park the
// goroutine (pure helpers like net.JoinHostPort are not listed).
var netBlocking = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialContext": true,
	"Listen": true, "ListenPacket": true, "Accept": true,
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
	"Serve": true, "ListenAndServe": true, "ListenAndServeTLS": true,
	"Shutdown": true, "Close": false, // Close is quick; listed for clarity
}

// blockingCallee classifies direct calls into the standard library
// that block.
func blockingCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := lint.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && fn.Name() == "Wait":
		return "a " + lint.FuncName(fn) + " call", true
	case path == "time" && fn.Name() == "Sleep":
		return "a time.Sleep", true
	case (path == "net" || strings.HasPrefix(path, "net/")) && netBlocking[fn.Name()]:
		return "a blocking " + lint.FuncName(fn) + " call", true
	}
	return "", false
}

// scanBlocking walks n reporting blocking operations to onOp. Func
// literals, go statements and deferred calls are boundaries. A select
// with a default case is non-blocking: only its clause bodies are
// scanned. isUnlock, when non-nil, recognizes the tracked lock's
// release: the walk stops there and scanBlocking returns true. onOp
// returns true to stop the walk early (first-match mode). blocks,
// when non-nil, reports calls to module functions with a may-block
// summary.
func scanBlocking(info *types.Info, n ast.Node, isUnlock func(*ast.CallExpr) bool, blocks map[*types.Func]string, onOp func(pos token.Pos, what string) bool) bool {
	stopped := false
	emit := func(pos token.Pos, what string) {
		if onOp(pos, what) {
			stopped = true
		}
	}
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		if n == nil || stopped {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if stopped {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.SelectStmt:
				if hasDefault(m) {
					for _, c := range m.Body.List {
						if cc, ok := c.(*ast.CommClause); ok {
							for _, st := range cc.Body {
								walk(st)
							}
						}
					}
				} else {
					emit(m.Pos(), "a select with no default case")
				}
				return false
			case *ast.SendStmt:
				emit(m.Arrow, "a channel send")
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					emit(m.OpPos, "a channel receive")
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(m.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						emit(m.Pos(), "a range over a channel")
						return false
					}
				}
			case *ast.CallExpr:
				if isUnlock != nil && isUnlock(m) {
					stopped = true
					return false
				}
				if what, ok := blockingCallee(info, m); ok {
					emit(m.Pos(), what)
					return true
				}
				if blocks != nil {
					if fn := lint.CalleeFunc(info, m); fn != nil {
						if reason, ok := blocks[fn]; ok {
							emit(m.Pos(), "a call to "+lint.FuncName(fn)+", which "+reason)
						}
					}
				}
			}
			return true
		})
	}
	walk(n)
	return stopped
}

// hasDefault reports whether the select has a default clause.
func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// render prints e for mutex matching and diagnostics.
func render(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}
