// Fixture for the hotalloc analyzer: //sim:hotpath functions must not
// contain allocation-inducing constructs.
package hotallocfix

import "fmt"

type ring struct {
	buf  []uint64
	tags map[uint64]int
}

// push grows its persistent field in place — the sanctioned amortized
// append form.
//
//sim:hotpath
func (r *ring) push(v uint64) {
	r.buf = append(r.buf, v)
}

//sim:hotpath
func (r *ring) badClosure() func() {
	return func() {} // want `closure literal in hot path badClosure`
}

//sim:hotpath
func (r *ring) badFmt(v uint64) string {
	return fmt.Sprintf("%d", v) // want `fmt\.Sprintf in hot path badFmt`
}

//sim:hotpath
func (r *ring) badMake(n int) {
	r.buf = make([]uint64, n) // want `make in hot path badMake`
}

//sim:hotpath
func (r *ring) badAppend(dst []uint64, v uint64) []uint64 {
	local := append(dst, v) // want `append in hot path badAppend`
	return local
}

//sim:hotpath
func (r *ring) badConcat(a, b string) string {
	return a + b // want `string concatenation in hot path badConcat`
}

//sim:hotpath
func (r *ring) badConvert(s string) []byte {
	return []byte(s) // want `string conversion in hot path badConvert`
}

//sim:hotpath
func (r *ring) badLiterals() {
	r.buf = []uint64{1, 2}  // want `slice/map literal in hot path badLiterals`
	r.tags = map[uint64]int{} // want `slice/map literal in hot path badLiterals`
	_ = &ring{}               // want `address-of composite literal in hot path badLiterals`
}

// panicIsCold may format inside panic: a dead simulator's allocations
// are irrelevant.
//
//sim:hotpath
func (r *ring) panicIsCold(i int) uint64 {
	if i < 0 || i >= len(r.buf) {
		panic(fmt.Sprintf("index %d out of range", i))
	}
	return r.buf[i]
}

//sim:hotpath
func (r *ring) suppressed(n int) {
	//simlint:allow hotalloc -- fixture: suppression must silence the finding
	r.buf = make([]uint64, n)
}

// notAnnotated allocates freely: without the directive nothing applies.
func (r *ring) notAnnotated(n int) []uint64 {
	out := make([]uint64, 0, n)
	return append(out, 1)
}

//sim:hotpath
func (r *ring) constConcatOK() string {
	const pre = "a"
	return pre + "b" // constant-folded: no run-time allocation
}

// chanSyncOK is the PDES coordinator's worker-loop shape: ranging over
// a command channel and handing back struct{}{} completion tokens.
// Channel operations and bare struct composite-literal *values* (not
// slice/map literals, not address-of) allocate nothing and stay clean.
//
//sim:hotpath
func (r *ring) chanSyncOK(cmd chan uint64, done chan struct{}) {
	for v := range cmd {
		r.buf[0] = v
		done <- struct{}{}
	}
}

// batchedRunOK is the batched warp-issue shape: carving sorted
// same-block runs out of a fixed scratch buffer with slice expressions
// and handing each subslice to a batched callee, falling back to
// per-element stepping when the callee declines. Re-slicing an existing
// backing array allocates nothing and must stay clean.
//
//sim:hotpath
func (r *ring) batchedRunOK(consume func([]uint64) bool) {
	s := r.buf[:]
	for i := 0; i < len(s); {
		j := i + 1
		for j < len(s) && s[j]>>8 == s[i]>>8 {
			j++
		}
		if j > i+1 && consume(s[i:j]) {
			i = j
			continue
		}
		for ; i < j; i++ {
			r.buf[0] += s[i]
		}
	}
}
