// Tier-indexed residency fixture: the multi-tier refactor's hot paths
// (residency tests, replica-bitmask updates, per-tier counter bumps)
// are pure integer work, and the analyzer must keep them that way —
// a per-access allocation on the residency path would dominate the
// simulated fault handling it models.
package hotallocfix

// tierIndex mirrors tier.Index: 0 = host, so the zero value of home
// means "not resident on any device tier".
type tierIndex uint8

type tieredBlock struct {
	home     tierIndex
	replicas uint64 // bitmask, one bit per GPU
}

type tierState struct {
	blocks []tieredBlock
	perGPU []uint32 // block*gpus + gpu counter file
	gpus   int
	names  []string
}

// resident is the tier-indexed replacement for the old boolean flag:
// a comparison, never a lookup that could allocate.
//
//sim:hotpath
func (s *tierState) resident(b uint64) bool {
	return s.blocks[b].home != 0
}

// replicate sets the GPU's replica bit — pure bit arithmetic.
//
//sim:hotpath
func (s *tierState) replicate(b uint64, gpu int) {
	s.blocks[b].replicas |= 1 << uint(gpu)
}

// invalidate clears every replica on a write, returning the dropped
// mask so the caller can charge invalidation transfers.
//
//sim:hotpath
func (s *tierState) invalidate(b uint64) uint64 {
	m := s.blocks[b].replicas
	s.blocks[b].replicas = 0
	return m
}

// noteAccess bumps the flat per-GPU counter — index arithmetic only.
//
//sim:hotpath
func (s *tierState) noteAccess(b uint64, gpu int) {
	s.perGPU[int(b)*s.gpus+gpu]++
}

//sim:hotpath
func (s *tierState) badPerTierScratch(n int) []tieredBlock {
	return make([]tieredBlock, n) // want `make in hot path badPerTierScratch`
}

//sim:hotpath
func (s *tierState) badTierLabel(b uint64) string {
	return "tier:" + s.names[s.blocks[b].home] // want `string concatenation in hot path badTierLabel`
}

// grow doubles the residency arrays; the allocation is amortized and
// explicitly waived, matching the counters.PerGPU grow path.
//
//sim:hotpath
func (s *tierState) grow(n int) {
	//simlint:allow hotalloc -- doubling grow path runs O(log n) times, amortized free
	blocks := make([]tieredBlock, n)
	copy(blocks, s.blocks)
	s.blocks = blocks
}
