package hotalloc_test

import (
	"testing"

	"uvmsim/internal/lint/hotalloc"
	"uvmsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hotallocfix")
}
