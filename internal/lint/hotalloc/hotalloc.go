// Package hotalloc protects the zero-allocation hot paths established in
// PR 1. Functions annotated with a `//sim:hotpath` doc-comment directive
// promise not to allocate per call (the engine asserts 0 allocs/op in
// its benchmarks); this analyzer turns that promise into a compile-time
// check instead of a benchmark regression found weeks later.
//
// Inside an annotated function the following are flagged:
//
//   - function literals (a capturing closure allocates at creation; hot
//     paths use closures prebound at construction time),
//   - any fmt.* call (Sprintf and friends allocate; error paths that
//     panic are exempt — see below),
//   - the make and new builtins,
//   - append, except the amortized-growth form `x = append(x, ...)`
//     where x is a struct field (persistent buffers growing toward a
//     steady state, the engine's heap/ring/slot-arena pattern),
//   - slice and map composite literals, and address-of composite
//     literals (&T{} escapes),
//   - string concatenation and string<->[]byte/[]rune conversions.
//
// Subtrees rooted at a panic(...) call are skipped entirely: a panicking
// simulator is already dead, so its formatting cost is irrelevant.
// Individual findings can be waived with
// `//simlint:allow hotalloc -- reason` (e.g. an amortized grow path).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"uvmsim/internal/lint"
)

// Analyzer is the hotalloc checker.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation-inducing constructs inside //sim:hotpath functions",
	Run:  run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !lint.HasDirective(fd.Doc, "sim:hotpath") {
				continue
			}
			checkBody(pass, fd)
		}
	}
}

func checkBody(pass *lint.Pass, fd *ast.FuncDecl) {
	// sanctioned collects append calls in the amortized self-append
	// form; they are skipped when the walk reaches them.
	sanctioned := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if call := sanctionedAppend(pass, as); call != nil {
				sanctioned[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s allocates per call; prebind it at construction time", fd.Name.Name)
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n.X)) {
				if tv, ok := pass.Info.Types[n]; !ok || tv.Value == nil {
					pass.Reportf(n.OpPos, "string concatenation in hot path %s allocates", fd.Name.Name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-of composite literal in hot path %s escapes to the heap; reuse a pooled object", fd.Name.Name)
					return false
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "slice/map literal in hot path %s allocates; preallocate at construction time", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			return checkCall(pass, fd, n, sanctioned)
		}
		return true
	})
}

// checkCall inspects one call in a hot function; its return value tells
// the walk whether to descend into the call's subtree.
func checkCall(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr, sanctioned map[*ast.CallExpr]bool) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // cold path: skip the whole subtree
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot path %s allocates; preallocate at construction time", b.Name(), fd.Name.Name)
			case "append":
				if !sanctioned[call] {
					pass.Reportf(call.Pos(), "append in hot path %s allocates unless it grows a persistent field in place (x = append(x, ...))", fd.Name.Name)
				}
			}
			return true
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte / []rune copies.
		if conversionAllocates(pass, call) {
			pass.Reportf(call.Pos(), "string conversion in hot path %s allocates", fd.Name.Name)
		}
		return true
	}
	if fn := lint.CalleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates; move formatting off the hot path", fn.Name(), fd.Name.Name)
	}
	return true
}

// sanctionedAppend returns the append call of an amortized in-place
// field growth `x.f = append(x.f, ...)`, or nil.
func sanctionedAppend(pass *lint.Pass, as *ast.AssignStmt) *ast.CallExpr {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	lhs := ast.Unparen(as.Lhs[0])
	if _, ok := lhs.(*ast.SelectorExpr); !ok {
		return nil // locals are fresh allocations, only fields persist
	}
	if !sameChain(lhs, ast.Unparen(call.Args[0])) {
		return nil
	}
	return call
}

// sameChain reports whether a and b are the identical ident/selector
// chain (x.f.g == x.f.g).
func sameChain(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameChain(ast.Unparen(a.X), ast.Unparen(b.X))
	}
	return false
}

// conversionAllocates reports whether the conversion call copies memory:
// string([]byte), string([]rune), []byte(string), []rune(string).
func conversionAllocates(pass *lint.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	dst := pass.TypeOf(call.Fun)
	src := pass.TypeOf(call.Args[0])
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
