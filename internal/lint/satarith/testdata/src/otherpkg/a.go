// Fixture for the satarith analyzer: package is neither policy nor
// counters, so raw uint64 arithmetic is out of scope.
package otherpkg

func rawIsFine(a, b uint64) uint64 {
	return a*b + 1
}
