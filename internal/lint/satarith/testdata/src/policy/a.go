// Fixture for the satarith analyzer. The package is named policy, so
// unchecked uint64 multiply/add on variables must go through satmath.
package policy

type cycle = uint64

func badMul(ts, p cycle, r uint64) uint64 {
	return ts * (r + 1) * p // want `satmath\.Mul` `satmath\.Mul` `satmath\.Add`
}

func badAdd(a, b uint64) uint64 {
	return a + b // want `satmath\.Add`
}

func badAssign(a, b uint64) uint64 {
	a += b // want `satmath\.Add`
	a *= b // want `satmath\.Mul`
	return a
}

func constFolded(a uint64) uint64 {
	const scale = 4
	_ = uint64(2 * scale) // fully constant: cannot wrap at run time
	return a - 1          // subtraction is eventseq's concern, not satarith's
}

func intsAreFine(a, b int) int {
	return a*b + 1
}

func suppressed(a, b uint64) uint64 {
	return a * b //simlint:allow satarith -- fixture: suppression must silence the finding
}
