// Package satarith flags unchecked uint64 multiplication and addition
// in the access-counter and threshold packages. PR 2 fixed a real bug of
// this shape: the Adaptive policy's ts*(r+1)*p product wrapped at the
// paper's p=2^20 pinning penalty, collapsing an "effectively infinite"
// threshold to a tiny one and re-enabling migration for exactly the
// blocks the penalty was meant to pin. The rule generalizes that fix:
// counter/threshold arithmetic must go through the saturating helpers in
// internal/satmath (satmath.Mul, satmath.Add), never through raw * or +.
//
// Scope is deliberately narrow — the packages named policy and counters,
// where every uint64 is a count or a threshold. Cycle math in the
// engine, byte math in the interconnect and size math in config are out
// of scope; widening the net there would drown the signal. Compile-time
// constant expressions are exempt (they cannot wrap at run time without
// failing to compile).
package satarith

import (
	"go/ast"
	"go/token"

	"uvmsim/internal/lint"
)

// Analyzer is the satarith checker.
var Analyzer = &lint.Analyzer{
	Name: "satarith",
	Doc:  "requires satmath saturating helpers for uint64 counter/threshold arithmetic in policy and counters",
	Run:  run,
}

// scoped lists the package names whose uint64 arithmetic is
// counter/threshold arithmetic by definition.
var scoped = map[string]bool{"policy": true, "counters": true}

func run(pass *lint.Pass) {
	if !scoped[pass.Pkg.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.MUL && n.Op != token.ADD {
					return true
				}
				if tv, ok := pass.Info.Types[n]; ok && tv.Value != nil {
					return true // constant-folded: cannot wrap at run time
				}
				if lint.IsUint64(pass.TypeOf(n.X)) && lint.IsUint64(pass.TypeOf(n.Y)) {
					pass.Reportf(n.OpPos, "unchecked uint64 %q on counter/threshold values can wrap; use satmath.%s", n.Op, helper(n.Op))
				}
			case *ast.AssignStmt:
				if n.Tok != token.MUL_ASSIGN && n.Tok != token.ADD_ASSIGN {
					return true
				}
				if len(n.Lhs) == 1 && lint.IsUint64(pass.TypeOf(n.Lhs[0])) {
					op := token.MUL
					if n.Tok == token.ADD_ASSIGN {
						op = token.ADD
					}
					pass.Reportf(n.TokPos, "unchecked uint64 %q on counter/threshold values can wrap; use satmath.%s", n.Tok, helper(op))
				}
			}
			return true
		})
	}
}

func helper(op token.Token) string {
	if op == token.MUL {
		return "Mul"
	}
	return "Add"
}
