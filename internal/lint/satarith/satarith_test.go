package satarith_test

import (
	"testing"

	"uvmsim/internal/lint/linttest"
	"uvmsim/internal/lint/satarith"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, satarith.Analyzer, "policy", "otherpkg")
}
