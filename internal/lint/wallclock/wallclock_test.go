package wallclock_test

import (
	"testing"

	"uvmsim/internal/lint/linttest"
	"uvmsim/internal/lint/wallclock"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, wallclock.Analyzer, "internal/wallclockfix", "cmdfix")
}
