// Fixture for the wallclock analyzer: not under internal/, so wall
// clocks and global rand are allowed (CLIs time real execution).
package cmdfix

import (
	"math/rand"
	"time"
)

func timing() time.Duration {
	start := time.Now()
	_ = rand.Intn(4)
	return time.Since(start)
}
