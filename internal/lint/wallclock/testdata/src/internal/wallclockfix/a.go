// Fixture for the wallclock analyzer (import path under internal/, so
// the check applies).
package wallclockfix

import (
	"math/rand"
	"time"
)

func bad() {
	t := time.Now()    // want `time\.Now reads the wall clock`
	_ = time.Since(t)  // want `time\.Since reads the wall clock`
	_ = time.Until(t)  // want `time\.Until reads the wall clock`
	_ = rand.Intn(4)   // want `rand\.Intn draws from the global source`
	_ = rand.Float64() // want `rand\.Float64 draws from the global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the global source`
}

func good() {
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4)
	_ = r.Float64()
	z := rand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
	_ = time.Duration(5) * time.Millisecond
	_ = time.Unix(0, 0)
}

func suppressed() {
	//simlint:allow wallclock -- fixture: suppression must silence the finding
	_ = time.Now()
}
