// Package wallclock bans wall-clock time and the global math/rand
// source from simulator packages. All simulated time must come from the
// sim.Engine clock and all randomness from explicitly seeded
// *rand.Rand sources; time.Now in a model, or a global rand.Intn, makes
// runs unreproducible in a way no golden test reliably catches.
//
// The check applies only to packages under internal/ — CLIs and
// examples may time real execution. Within internal/, calls to
// time.Now, time.Since and time.Until are flagged, as is every
// package-level math/rand function that draws from the process-global
// source (rand.Intn, rand.Float64, rand.Shuffle, ...). Constructors
// that build seeded sources (rand.New, rand.NewSource, rand.NewZipf)
// and methods on an explicit *rand.Rand stay legal.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"uvmsim/internal/lint"
)

// Analyzer is the wallclock checker.
var Analyzer = &lint.Analyzer{
	Name: "wallclock",
	Doc:  "bans time.Now/Since/Until and the global math/rand source inside internal/ simulator packages",
	Run:  run,
}

// bannedTime are the wall-clock entry points of package time.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the math/rand package-level functions that do not
// touch the global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *lint.Pass) {
	if !strings.HasPrefix(pass.Path, "internal/") && !strings.Contains(pass.Path, "/internal/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).Intn) use an explicit
				// source; only package-level functions are global.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulator code must use sim.Engine cycles", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global source; use an explicitly seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
	}
}
