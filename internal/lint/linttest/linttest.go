// Package linttest runs a lint.Analyzer over source fixtures and checks
// its diagnostics against expectations written in the fixtures
// themselves — the same contract as golang.org/x/tools/go/analysis/
// analysistest, reimplemented on the standard library.
//
// Fixtures live under testdata/src/<importpath>/ next to the analyzer's
// test. Each line that should be flagged carries a trailing comment
//
//	// want "regexp"
//
// (multiple quoted or backquoted regexps for multiple findings on one
// line). Fixture packages may import each other by their
// testdata-relative paths and may import the standard library; stdlib
// imports resolve through `go list -export` compiler export data,
// fixture imports are type-checked from source recursively.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"uvmsim/internal/lint"
)

// Run loads each fixture package (an import path under testdata/src),
// applies the analyzer, and reports any mismatch between produced
// diagnostics and // want expectations as test failures.
//
// Interprocedural analyzers see a lint.Program spanning the fixture
// package and every fixture package it (transitively) imports, so a
// fixture can demonstrate cross-package flows; diagnostics are checked
// for the named fixture only.
func Run(t *testing.T, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fix := range fixtures {
		diags, _, fset, files := analyze(t, a, fix)
		checkExpectations(t, fset, fix, files, diags)
	}
}

// RunFix runs the analyzer over each fixture like Run, then applies
// every suggested fix and compares the result against a golden
// <file>.fixed sitting next to each edited fixture file. Setting
// SIMLINT_UPDATE_FIXED=1 rewrites the goldens instead.
func RunFix(t *testing.T, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fix := range fixtures {
		diags, dir, _, _ := analyze(t, a, fix)
		byFile := lint.EditsByFile(diags)
		if len(byFile) == 0 {
			t.Errorf("%s: RunFix expected suggested fixes, analyzer produced none", fix)
		}
		fixed := make(map[string]bool)
		names := make([]string, 0, len(byFile))
		for file := range byFile {
			names = append(names, file)
		}
		sort.Strings(names)
		for _, file := range names {
			edits := byFile[file]
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			got, err := lint.ApplyEdits(src, edits)
			if err != nil {
				t.Errorf("%s: applying fixes to %s: %v", fix, filepath.Base(file), err)
				continue
			}
			golden := file + ".fixed"
			fixed[golden] = true
			if os.Getenv("SIMLINT_UPDATE_FIXED") == "1" {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatalf("linttest: %v", err)
				}
				continue
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Errorf("%s: missing golden %s (run with SIMLINT_UPDATE_FIXED=1 to create)", fix, filepath.Base(golden))
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: fixed output of %s differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
					fix, filepath.Base(file), got, want)
			}
		}
		// Every committed golden must correspond to a produced fix;
		// a stale .fixed means the analyzer stopped suggesting it.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".fixed") && !fixed[filepath.Join(dir, e.Name())] {
				t.Errorf("%s: golden %s exists but the analyzer suggested no fix for it", fix, e.Name())
			}
		}
	}
}

// analyze loads one fixture and runs the analyzer over it with a
// program spanning its fixture imports.
func analyze(t *testing.T, a *lint.Analyzer, fix string) (diags []lint.Diagnostic, dir string, fset *token.FileSet, files []*ast.File) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	ld := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
		lint: make(map[string]*lint.Package),
	}
	fp, err := ld.load(fix)
	if err != nil {
		t.Fatalf("linttest: loading fixture %q: %v", fix, err)
	}
	target := ld.lintPackage(fix)
	var paths []string
	for p := range ld.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	all := make([]*lint.Package, 0, len(paths))
	for _, p := range paths {
		all = append(all, ld.lintPackage(p))
	}
	prog := lint.BuildProgram(all)
	diags = lint.RunOn(prog, []*lint.Package{target}, []*lint.Analyzer{a})
	return diags, filepath.Join(root, filepath.FromSlash(fix)), ld.fset, fp.files
}

// expectation is one // want regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkExpectations matches diagnostics against // want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, fixture string, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", fixture, filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", fixture, w.re, filepath.Base(w.file), w.line)
		}
	}
}

// parseWant extracts the regexps of a `// want "re" "re2"` comment.
func parseWant(text string) ([]*regexp.Regexp, bool) {
	body, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		body, ok = strings.CutPrefix(text, "//want ")
	}
	if !ok {
		return nil, false
	}
	var res []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, false
			}
			raw := rest[:end+2]
			var err error
			lit, err = strconv.Unquote(raw)
			if err != nil {
				return nil, false
			}
			rest = strings.TrimSpace(rest[end+2:])
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return nil, false
			}
			lit = rest[1 : end+1]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, false
		}
		res = append(res, re)
	}
	return res, len(res) > 0
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture-local imports
// from source and everything else from stdlib export data.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
	lint map[string]*lint.Package
}

// lintPackage wraps a loaded fixture as a lint.Package exactly once,
// so the analysis target and the Program share pointers.
func (l *loader) lintPackage(path string) *lint.Package {
	if p, ok := l.lint[path]; ok {
		return p
	}
	fp := l.pkgs[path]
	p := lint.NewPackage(path, l.fset, fp.files, fp.types, fp.info)
	l.lint[path] = p
	return p
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: (*fixtureImporter)(l), Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{files: files, types: tpkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

// fixtureImporter resolves imports during fixture type-checking.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(fi)
	if st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return stdlibImport(l.fset, path)
}

// stdlib export-data importing is shared across all fixture loads in the
// process: `go list -export` is not free, so resolved export files are
// cached per import path.
var stdlib struct {
	sync.Mutex
	exports map[string]string
	// imp must be bound to a single FileSet; positions inside imported
	// stdlib packages are irrelevant to fixtures, so a private one is
	// fine and lets every loader share one importer.
	fset *token.FileSet
	imp  types.Importer
}

func stdlibImport(_ *token.FileSet, path string) (*types.Package, error) {
	stdlib.Lock()
	defer stdlib.Unlock()
	if stdlib.imp == nil {
		stdlib.exports = make(map[string]string)
		stdlib.fset = token.NewFileSet()
		stdlib.imp = importer.ForCompiler(stdlib.fset, "gc", func(p string) (io.ReadCloser, error) {
			file, ok := stdlib.exports[p]
			if !ok {
				return nil, fmt.Errorf("linttest: no export data for %q", p)
			}
			return os.Open(file)
		})
	}
	if _, ok := stdlib.exports[path]; !ok {
		cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("linttest: go list %s: %v\n%s", path, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				stdlib.exports[p.ImportPath] = p.Export
			}
		}
	}
	return stdlib.imp.Import(path)
}
