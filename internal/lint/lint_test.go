package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The tests type-check a small throwaway module through the same
// LoadPackages path cmd/simlint uses, so one load exercises the
// loader, the call graph, the taint engine and the framework plumbing
// against real go/types facts.

const modA = `package a

import (
	"sort"

	"tmod/b"
)

//simlint:allow maporder
var bare int

// Hop returns a wall-clock value through b.
func Hop() int64 { return b.Now() }

// Calls exists to give the call graph a second hop.
func Calls() int64 { return Hop() }

// Keys exports map-iteration order.
func Keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sorted is the clean collect-then-sort idiom.
func Sorted(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

type T struct{ n int }

// Bump is a method, for FuncName's receiver rendering.
func (t *T) Bump() { t.n++ }

//simlint:allow testlint -- suppressed by the comment line above
func Above() {}

func Same() {} //simlint:allow testlint -- suppressed on the same line

func Flagged() {}
`

const modB = `package b

import "time"

// Now reads the wall clock.
func Now() int64 { return time.Now().UnixNano() }

// Clean returns a constant.
func Clean() int64 { return 42 }
`

var shared struct {
	sync.Once
	pkgs []*Package
	prog *Program
	err  error
}

// loadShared loads the throwaway module once per test binary.
func loadShared(t *testing.T) ([]*Package, *Program) {
	t.Helper()
	shared.Do(func() {
		dir, err := os.MkdirTemp("", "linttestmod")
		if err != nil {
			shared.err = err
			return
		}
		files := map[string]string{
			"go.mod": "module tmod\n\ngo 1.23\n",
			"a/a.go": modA,
			"b/b.go": modB,
		}
		for name, content := range files {
			path := filepath.Join(dir, filepath.FromSlash(name))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				shared.err = err
				return
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				shared.err = err
				return
			}
		}
		shared.pkgs, shared.err = LoadPackages(dir, "./...")
		if shared.err == nil {
			shared.prog = BuildProgram(shared.pkgs)
		}
	})
	if shared.err != nil {
		t.Fatalf("loading test module: %v", shared.err)
	}
	return shared.pkgs, shared.prog
}

// fn looks up a declared function by package path and name.
func fn(t *testing.T, pkgs []*Package, path, name string) *types.Func {
	t.Helper()
	for _, p := range pkgs {
		if p.Path != path {
			continue
		}
		if obj, ok := p.Types.Scope().Lookup(name).(*types.Func); ok {
			return obj
		}
	}
	t.Fatalf("function %s.%s not found", path, name)
	return nil
}

func TestLoadPackages(t *testing.T) {
	pkgs, _ := loadShared(t)
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "tmod/a" || pkgs[1].Path != "tmod/b" {
		t.Errorf("paths %q, %q: want tmod/a, tmod/b (sorted)", pkgs[0].Path, pkgs[1].Path)
	}
}

func TestProgramCallGraph(t *testing.T) {
	pkgs, prog := loadShared(t)
	hop := fn(t, pkgs, "tmod/a", "Hop")
	now := fn(t, pkgs, "tmod/b", "Now")
	if prog.Decl(hop) == nil {
		t.Fatal("Decl(Hop) is nil")
	}
	if prog.Decl(nil) != nil {
		t.Error("Decl(nil) should be nil")
	}
	found := false
	for _, c := range prog.Callees(hop) {
		if c == now {
			found = true
		}
	}
	if !found {
		t.Errorf("Callees(Hop) = %v, missing b.Now", prog.Callees(hop))
	}
}

func TestFuncName(t *testing.T) {
	pkgs, _ := loadShared(t)
	if got := FuncName(fn(t, pkgs, "tmod/b", "Now")); got != "b.Now" {
		t.Errorf("FuncName(Now) = %q, want b.Now", got)
	}
	var bump *types.Func
	for _, p := range pkgs {
		if p.Path != "tmod/a" {
			continue
		}
		tObj := p.Types.Scope().Lookup("T")
		named := tObj.Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "Bump" {
				bump = named.Method(i)
			}
		}
	}
	if bump == nil {
		t.Fatal("method T.Bump not found")
	}
	if got := FuncName(bump); got != "T.Bump" {
		t.Errorf("FuncName(Bump) = %q, want T.Bump", got)
	}
	if got := FuncName(nil); got != "<unknown>" {
		t.Errorf("FuncName(nil) = %q", got)
	}
}

func TestFixpointPropagation(t *testing.T) {
	pkgs, prog := loadShared(t)
	why := prog.Fixpoint(func(f *types.Func, decl *FuncDecl) (string, bool) {
		if f.Name() == "Now" {
			return "reads the clock", true
		}
		return "", false
	})
	if why[fn(t, pkgs, "tmod/b", "Now")] != "reads the clock" {
		t.Errorf("seed reason lost: %q", why[fn(t, pkgs, "tmod/b", "Now")])
	}
	if got := why[fn(t, pkgs, "tmod/a", "Hop")]; got != "calls b.Now, which reads the clock" {
		t.Errorf("Hop reason = %q", got)
	}
	if got := why[fn(t, pkgs, "tmod/a", "Calls")]; !strings.HasPrefix(got, "calls a.Hop, which ") {
		t.Errorf("Calls reason = %q, want two-hop chain", got)
	}
	if _, ok := why[fn(t, pkgs, "tmod/b", "Clean")]; ok {
		t.Error("Clean should not be in the fixpoint")
	}
}

func TestTaintSummaries(t *testing.T) {
	pkgs, prog := loadShared(t)
	source := func(pkg *Package, call *ast.CallExpr) (string, bool) {
		f := CalleeFunc(pkg.Info, call)
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Now" {
			return "time.Now", true
		}
		return "", false
	}
	ta := NewTaint(prog, source, true)
	if reason, ok := ta.Returns(fn(t, pkgs, "tmod/b", "Now")); !ok || !strings.Contains(reason, "time.Now") {
		t.Errorf("Returns(b.Now) = %q, %v", reason, ok)
	}
	if reason, ok := ta.Returns(fn(t, pkgs, "tmod/a", "Hop")); !ok || !strings.Contains(reason, "b.Now") {
		t.Errorf("Returns(a.Hop) = %q, %v: want taint through b.Now", reason, ok)
	}
	if reason, ok := ta.Returns(fn(t, pkgs, "tmod/a", "Keys")); !ok || !strings.Contains(reason, "map-iteration order") {
		t.Errorf("Returns(a.Keys) = %q, %v: want map-order taint", reason, ok)
	}
	if reason, ok := ta.Returns(fn(t, pkgs, "tmod/a", "Sorted")); ok {
		t.Errorf("Returns(a.Sorted) = %q: collect-then-sort must stay clean", reason)
	}
	if _, ok := ta.Returns(fn(t, pkgs, "tmod/b", "Clean")); ok {
		t.Error("Returns(b.Clean) should be untainted")
	}
}

// TestAllowReason: an allow comment without "-- reason" still
// suppresses but raises its own framework finding.
func TestAllowReason(t *testing.T) {
	pkgs, _ := loadShared(t)
	diags := RunAnalyzers(pkgs, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the bare-allow finding: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allowreason" {
		t.Errorf("analyzer = %q, want allowreason", d.Analyzer)
	}
	if !strings.Contains(d.Message, "needs a written reason") {
		t.Errorf("message = %q", d.Message)
	}
	if !strings.HasSuffix(d.Pos.Filename, "a.go") {
		t.Errorf("finding at %s, want a.go", d.Pos.Filename)
	}
}

// testlintAnalyzer flags the three suppression-demo functions; only
// the unsuppressed one must survive.
func TestSuppression(t *testing.T) {
	pkgs, _ := loadShared(t)
	a := &Analyzer{
		Name: "testlint",
		Doc:  "test analyzer",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					switch fd.Name.Name {
					case "Above", "Same", "Flagged":
						pass.Reportf(fd.Pos(), "func %s flagged", fd.Name.Name)
					}
				}
			}
		},
	}
	var got []Diagnostic
	for _, d := range RunAnalyzers(pkgs, []*Analyzer{a}) {
		if d.Analyzer == "testlint" {
			got = append(got, d)
		}
	}
	if len(got) != 1 || !strings.Contains(got[0].Message, "Flagged") {
		t.Fatalf("suppression failed: got %v, want only Flagged", got)
	}
}

func TestApplyEdits(t *testing.T) {
	src := []byte("hello cruel world")
	edits := []Edit{
		{Filename: "f", Start: 6, End: 12, NewText: ""},
		{Filename: "f", Start: 6, End: 12, NewText: ""}, // duplicate: deduped
		{Filename: "f", Start: 0, End: 5, NewText: "goodbye"},
	}
	out, err := ApplyEdits(src, edits)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "goodbye world" {
		t.Errorf("ApplyEdits = %q", out)
	}

	if _, err := ApplyEdits(src, []Edit{
		{Start: 0, End: 10, NewText: "x"},
		{Start: 5, End: 12, NewText: "y"},
	}); err == nil {
		t.Error("overlapping edits must error")
	}
	if _, err := ApplyEdits(src, []Edit{{Start: 5, End: 99, NewText: "x"}}); err == nil {
		t.Error("out-of-range edit must error")
	}
}

// TestSortedRangeFix drives ReportfFix end to end: a throwaway
// analyzer suggests the sorted-keys rewrite for a.Keys, and applying
// the resolved edits yields compilable sorted iteration plus the
// import insertions.
func TestSortedRangeFix(t *testing.T) {
	pkgs, _ := loadShared(t)
	a := &Analyzer{
		Name: "fixtest",
		Doc:  "test analyzer",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Name.Name != "Keys" {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						rng, ok := n.(*ast.RangeStmt)
						if !ok {
							return true
						}
						edits, ok := SortedRangeFix(pass, f, rng)
						if !ok {
							t.Error("SortedRangeFix declined the Keys loop")
							return false
						}
						pass.ReportfFix(rng.Pos(), edits, "map order escapes")
						return false
					})
				}
			}
		},
	}
	var diags []Diagnostic
	for _, d := range RunAnalyzers(pkgs, []*Analyzer{a}) {
		if d.Analyzer == "fixtest" {
			diags = append(diags, d)
		}
	}
	if len(diags) != 1 || len(diags[0].Edits) == 0 {
		t.Fatalf("want one diagnostic with edits, got %v", diags)
	}
	byFile := EditsByFile(diags)
	if len(byFile) != 1 {
		t.Fatalf("edits span %d files, want 1", len(byFile))
	}
	for name, edits := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ApplyEdits(src, edits)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"for _, k := range slices.Sorted(maps.Keys(m)) {",
			"\"maps\"",
			"\"slices\"",
		} {
			if !strings.Contains(string(out), want) {
				t.Errorf("fixed source missing %q:\n%s", want, out)
			}
		}
	}
}

func TestHasDirective(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", `package d

//sim:hotpath trailing text
func Hot() {}

// plain comment
func Cold() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var hot, cold *ast.FuncDecl
	for _, decl := range f.Decls {
		fd := decl.(*ast.FuncDecl)
		switch fd.Name.Name {
		case "Hot":
			hot = fd
		case "Cold":
			cold = fd
		}
	}
	if !HasDirective(hot.Doc, "sim:hotpath") {
		t.Error("Hot should carry the directive")
	}
	if HasDirective(cold.Doc, "sim:hotpath") {
		t.Error("Cold should not carry the directive")
	}
	if HasDirective(nil, "sim:hotpath") {
		t.Error("nil doc has no directives")
	}
}

func TestIsUint64(t *testing.T) {
	if !IsUint64(types.Typ[types.Uint64]) {
		t.Error("uint64 not recognized")
	}
	if IsUint64(types.Typ[types.Int64]) || IsUint64(nil) {
		t.Error("non-uint64 accepted")
	}
}
