package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks every package matched by patterns
// (relative to dir), resolving imports through compiler export data
// produced by `go list -export`. Test files are not loaded: the
// invariants simlint enforces are about simulator code, and tests
// legitimately use wall clocks, global rand and unsorted iteration.
//
// The approach mirrors what golang.org/x/tools/go/packages does in
// LoadTypes mode, without the dependency: one `go list -export -deps`
// invocation yields, for every transitive dependency, an export-data
// file that go/importer can read, and each target package is then
// parsed and type-checked from source against those.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := &sourceFirstImporter{
		checked: make(map[string]*types.Package),
		export: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(file)
		}),
	}

	// `go list -deps` emits dependencies before dependents; checking
	// targets in that order lets a target's import of another target
	// resolve to the source-checked package rather than export data, so
	// a *types.Func seen at a call site in one package is the same
	// object as its definition in another — the identity the call graph
	// and taint summaries key on.
	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		imp.checked[t.ImportPath] = tpkg
		pkgs = append(pkgs, NewPackage(t.ImportPath, fset, files, tpkg, info))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// sourceFirstImporter resolves imports of already-source-checked target
// packages to those packages (preserving object identity across the
// load) and everything else through compiler export data.
type sourceFirstImporter struct {
	checked map[string]*types.Package
	export  types.Importer
}

func (si *sourceFirstImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.checked[path]; ok {
		return p, nil
	}
	return si.export.Import(path)
}

// NewTypesInfo returns a types.Info with every fact map analyzers rely
// on allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
