package seedflow_test

import (
	"testing"

	"uvmsim/internal/lint/linttest"
	"uvmsim/internal/lint/seedflow"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, seedflow.Analyzer, "seedflowfix", "seedfloworder")
}

func TestSuggestedFix(t *testing.T) {
	linttest.RunFix(t, seedflow.Analyzer, "seedfloworder")
}
