// Package seedflow is the interprocedural generalization of wallclock
// and maporder: it follows nondeterministic *values* — wall-clock
// reads, draws from the global math/rand source, slices built in
// map-iteration order — across function boundaries (via the
// lint.Taint engine over the load's call graph) and flags them when
// they reach a determinism sink:
//
//   - an argument to any resultio function (result payloads are golden
//     and byte-compared),
//   - an argument to a serve cache-key constructor (content addresses
//     must be pure functions of the configuration),
//   - an argument to a sim/core/config/cxl entry point (simulated
//     state must replay identically from a seed).
//
// wallclock bans the sources inside internal/ outright; seedflow
// closes the remaining gap: a CLI may legitimately read the wall clock
// to time itself, but the moment that value flows into a result file
// or a cache key — however many helper functions deep — determinism is
// gone and every golden, the PDES equivalence property and the simd
// content-addressed cache silently rot.
//
// A function returning a slice built by appending inside a
// range-over-map loop is additionally flagged at the loop (unless the
// slice is sorted before escaping), with a suggested fix rewriting the
// loop to sorted-key iteration; `simlint -fix` applies it.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"uvmsim/internal/lint"
)

// Analyzer is the seedflow checker.
var Analyzer = &lint.Analyzer{
	Name: "seedflow",
	Doc:  "follows wall-clock/global-rand/map-order taint across calls into result, cache-key and simulator-state sinks",
	Run:  run,
}

// bannedTime mirrors wallclock's wall-clock entry points.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand mirrors wallclock's seeded-source constructors.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// source classifies taint-introducing calls.
func source(pkg *lint.Package, call *ast.CallExpr) (string, bool) {
	fn := lint.CalleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // methods on explicit *rand.Rand etc. are seeded
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			return "the global rand." + fn.Name() + " source", true
		}
	}
	return "", false
}

// sinkOf classifies functions whose arguments must stay deterministic.
func sinkOf(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	seg := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		seg = path[i+1:]
	}
	switch seg {
	case "resultio":
		return "a deterministic result value", true
	case "serve":
		if strings.HasSuffix(fn.Name(), "Key") {
			return "a content-addressed cache key", true
		}
	case "sim", "core", "config", "cxl":
		return "simulated state", true
	}
	return "", false
}

// taints caches one Taint engine per Program (analyzers run once per
// package; the summaries are whole-load facts).
var taints = make(map[*lint.Program]*lint.Taint)

func taintFor(prog *lint.Program) *lint.Taint {
	if t, ok := taints[prog]; ok {
		return t
	}
	t := lint.NewTaint(prog, source, true)
	taints[prog] = t
	return t
}

func run(pass *lint.Pass) {
	t := taintFor(pass.Prog)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fdecl := pass.Prog.Decl(obj)
			if fdecl == nil {
				continue
			}
			lt := t.Local(fdecl)
			checkSinks(pass, fd, lt)
			checkEscapingMapOrder(pass, f, fd, lt)
		}
	}
}

// checkSinks flags tainted arguments at sink call sites.
func checkSinks(pass *lint.Pass, fd *ast.FuncDecl, lt *lint.LocalTaint) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lint.CalleeFunc(pass.Info, call)
		what, isSink := sinkOf(callee)
		if !isSink {
			return true
		}
		for _, arg := range call.Args {
			if reason, tainted := lt.Expr(arg); tainted {
				pass.Reportf(arg.Pos(), "argument to %s %s; %s must not depend on wall clock, the global rand source or map iteration order",
					lint.FuncName(callee), reason, what)
				break // one finding per call keeps output readable
			}
		}
		return true
	})
}

// checkEscapingMapOrder flags range-over-map loops whose appended
// slice is returned unsorted — the shape that exports iteration order
// to every caller — and suggests the sorted-keys rewrite.
func checkEscapingMapOrder(pass *lint.Pass, f *ast.File, fd *ast.FuncDecl, lt *lint.LocalTaint) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		xt := pass.TypeOf(rng.X)
		if xt == nil {
			return true
		}
		if _, isMap := xt.Underlying().(*types.Map); !isMap {
			return true
		}
		obj := appendTarget(pass, rng.Body)
		if obj == nil {
			return true
		}
		if !stillTainted(lt, obj) || !returns(pass, fd, obj) {
			return true
		}
		var edits []lint.TextEdit
		if e, ok := lint.SortedRangeFix(pass, f, rng); ok {
			edits = e
		}
		pass.ReportfFix(rng.Pos(), edits,
			"%s is built in map-iteration order and returned; callers inherit a nondeterministic order — iterate sorted keys", obj.Name())
		return true
	})
}

// appendTarget returns the object x of an `x = append(x, ...)` inside
// the loop body, or nil.
func appendTarget(pass *lint.Pass, body *ast.BlockStmt) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || obj != nil || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return obj == nil
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		obj = pass.Info.ObjectOf(id)
		return false
	})
	return obj
}

// stillTainted reports whether obj kept its map-order taint (i.e. was
// not sorted later in the body).
func stillTainted(lt *lint.LocalTaint, obj types.Object) bool {
	_, ok := lt.Object(obj)
	return ok
}

// returns reports whether fd returns obj (directly or as part of an
// expression).
func returns(pass *lint.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if lint.MentionsObject(pass.Info, res, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
