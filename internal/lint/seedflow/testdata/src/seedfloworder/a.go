// Fixture for seedflow's suggested fix: functions exporting
// map-iteration order via returned slices. The golden a.go.fixed
// asserts the sorted-keys rewrite simlint -fix applies.
package seedfloworder

import (
	"sort"
)

// Keys exports the map's iteration order to every caller.
func Keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m { // want `out is built in map-iteration order and returned`
		out = append(out, k)
	}
	return out
}

// Values needs the value binding re-established by the rewrite.
func Values(m map[string]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	for k, v := range m { // want `out is built in map-iteration order and returned`
		if k != "" {
			out = append(out, v)
		}
	}
	return out
}

// SortedKeys is clean: the canonical collect-then-sort idiom.
func SortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
