// Package seedhelpers provides tainted helpers in a *different*
// fixture package, so the seedflow test proves cross-package
// interprocedural flow: the sink call sites live in seedflowfix, the
// sources live here.
package seedhelpers

import "time"

// Stamp returns a wall-clock reading; callers inherit its taint.
func Stamp() int64 { return time.Now().UnixNano() }

// Elapsed launders a wall-clock duration through two calls.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// ElapsedNs adds one more hop to the chain.
func ElapsedNs(t0 time.Time) int64 { return int64(Elapsed(t0)) }

// Sorted is clean: the map order never escapes.
func Sorted(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
