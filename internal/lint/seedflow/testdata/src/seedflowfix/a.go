// Fixture for the seedflow analyzer: nondeterministic values flowing
// into result/cache-key sinks, directly and across function calls.
package seedflowfix

import (
	"math/rand"
	"sort"
	"time"

	"resultio"
	"seedhelpers"
	"serve"
)

// direct taint: a wall-clock read passed straight to a result writer.
func direct() {
	resultio.WriteValue(time.Now().UnixNano()) // want `argument to resultio.WriteValue derives from time.Now`
}

// local interprocedural taint: the source hides one call away.
func stamp() int64 { return time.Now().UnixNano() }

func localHop() {
	v := stamp()
	resultio.WriteValue(v) // want `flows through seedflowfix.stamp`
}

// cross-package interprocedural taint: source lives in seedhelpers.
func crossPackage() {
	resultio.WriteValue(seedhelpers.Stamp()) // want `flows through seedhelpers.Stamp`
}

// chained cross-package taint: two hops through seedhelpers.
func chained(t0 time.Time) {
	ns := seedhelpers.ElapsedNs(t0)
	resultio.WriteValue(ns) // want `flows through seedhelpers.ElapsedNs`
}

// taint through a struct: the suite as a whole becomes tainted.
func viaStruct(t0 time.Time) {
	el := time.Since(t0)
	s := resultio.Suite{Cycles: 1, WallNs: int64(el)}
	resultio.WriteSuite(s) // want `argument to resultio.WriteSuite`
}

// global rand into a cache key.
func randKey() string {
	return serve.CellKey(int64(rand.Intn(10))) // want `argument to serve.CellKey derives from the global rand.Intn source`
}

// map order into a result writer.
func mapOrder(m map[int]int) {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	resultio.WriteSuite(resultio.Suite{Keys: ks}) // want `argument to resultio.WriteSuite is built in map-iteration order`
}

// mapOrder's loop is also flagged because ks escapes via return.
func mapOrderReturn(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m { // want `ks is built in map-iteration order and returned`
		ks = append(ks, k)
	}
	return ks
}

// suppression must silence the finding (reason present).
func suppressed() {
	resultio.WriteValue(time.Now().UnixNano()) //simlint:allow seedflow -- fixture: suppression must silence the finding
}

// clean: seeded rand is fine.
func seeded() {
	r := rand.New(rand.NewSource(42))
	resultio.WriteValue(int64(r.Intn(10)))
}

// clean: collect-then-sort drops the map-order taint.
func sortedKeys(m map[int]int) {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	resultio.WriteSuite(resultio.Suite{Keys: ks})
}

// clean: order-insensitive reduction in a helper is not taint.
func cleanHelper(m map[int]int) {
	resultio.WriteValue(int64(seedhelpers.Sorted(m)))
}

// clean: wall clock that never reaches a sink is the CLI's business.
func cleanTiming(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// clean: non-sink callee in the serve package.
func cleanServe() {
	serve.Submit(time.Now().UnixNano())
}
