// Package resultio is a fixture stand-in for the repo's result-file
// writers: seedflow treats every function here as a determinism sink.
package resultio

// Suite mimics a benchmark-suite document.
type Suite struct {
	Cycles uint64
	WallNs int64
	Keys   []int
}

// WriteSuite mimics a result writer.
func WriteSuite(s Suite) {}

// WriteValue mimics a scalar result writer.
func WriteValue(v int64) {}
