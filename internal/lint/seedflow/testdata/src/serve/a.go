// Package serve is a fixture stand-in for the sweep service: functions
// ending in Key build content addresses, which seedflow treats as
// determinism sinks.
package serve

import "fmt"

// CellKey mimics the content-addressed cache-key constructor.
func CellKey(parts ...int64) string { return fmt.Sprint(parts) }

// Submit is not a sink: only key constructors are.
func Submit(v int64) {}
