package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// TextEdit is one suggested replacement: the half-open source range
// [Pos, End) becomes NewText. Pos == End inserts. Analyzers attach
// edits to a finding via Pass.ReportfFix; cmd/simlint -fix applies
// them and linttest.RunFix asserts golden .fixed outputs.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Edit is a TextEdit resolved to a file and byte offsets — the form
// stored on a Diagnostic, independent of any FileSet.
type Edit struct {
	Filename   string
	Start, End int
	NewText    string
}

// ApplyEdits returns src with the file's edits applied. Edits are
// deduplicated (two findings may suggest the identical import
// insertion) and applied right-to-left so earlier offsets stay valid;
// overlapping edits abort with an error since applying either would
// corrupt the other's anchor.
func ApplyEdits(src []byte, edits []Edit) ([]byte, error) {
	uniq := make([]Edit, 0, len(edits))
	seen := make(map[Edit]bool)
	for _, e := range edits {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].Start != uniq[j].Start {
			return uniq[i].Start > uniq[j].Start
		}
		return uniq[i].End > uniq[j].End
	})
	for i := 1; i < len(uniq); i++ {
		if uniq[i].End > uniq[i-1].Start {
			return nil, fmt.Errorf("lint: overlapping fixes at offsets %d and %d", uniq[i].Start, uniq[i-1].Start)
		}
	}
	out := append([]byte(nil), src...)
	for _, e := range uniq {
		if e.Start < 0 || e.End > len(out) || e.Start > e.End {
			return nil, fmt.Errorf("lint: fix range [%d,%d) outside file of %d bytes", e.Start, e.End, len(out))
		}
		out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out, nil
}

// EditsByFile groups every suggested edit in diags by filename.
func EditsByFile(diags []Diagnostic) map[string][]Edit {
	byFile := make(map[string][]Edit)
	for _, d := range diags {
		for _, e := range d.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	return byFile
}

// SortedRangeFix builds the canonical determinism fix for a
// range-over-map loop: iterate the keys in sorted order instead.
//
//	for k, v := range m {         for _, k := range slices.Sorted(maps.Keys(m)) {
//	        use(k, v)        =>           v := m[k]
//	}                                     use(k, v)
//	                              }
//
// plus "maps"/"slices" import insertions when the file lacks them. The
// rewrite is offered only when it is provably faithful: the key is an
// ident of an ordered basic type (cmp.Ordered), the value (if bound)
// is an ident, and the map operand is a plain ident or field selector
// (no side effects to duplicate). ok reports whether a fix applies.
func SortedRangeFix(pass *Pass, f *ast.File, rng *ast.RangeStmt) ([]TextEdit, bool) {
	if rng.Tok != token.DEFINE {
		return nil, false
	}
	key, ok := ast.Unparen(rng.Key).(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil, false
	}
	kt := pass.TypeOf(rng.Key)
	if kt == nil {
		return nil, false
	}
	if b, ok := kt.Underlying().(*types.Basic); !ok || b.Info()&types.IsOrdered == 0 {
		return nil, false
	}
	if !plainOperand(rng.X) {
		return nil, false
	}
	var valName string
	if rng.Value != nil {
		v, ok := ast.Unparen(rng.Value).(*ast.Ident)
		if !ok {
			return nil, false
		}
		if v.Name != "_" {
			valName = v.Name
		}
	}

	var x bytes.Buffer
	if err := printer.Fprint(&x, pass.Fset, rng.X); err != nil {
		return nil, false
	}
	header := fmt.Sprintf("for _, %s := range slices.Sorted(maps.Keys(%s)) ", key.Name, x.String())
	edits := []TextEdit{{Pos: rng.Pos(), End: rng.Body.Lbrace, NewText: header}}
	if valName != "" {
		// Rebind the value on the first body line, matching the body's
		// indentation (gofmt'ed sources indent with tabs).
		indent := "\t"
		if len(rng.Body.List) > 0 {
			if col := pass.Fset.Position(rng.Body.List[0].Pos()).Column; col > 1 {
				indent = strings.Repeat("\t", col-1)
			}
		}
		bind := fmt.Sprintf("\n%s%s := %s[%s]", indent, valName, x.String(), key.Name)
		edits = append(edits, TextEdit{Pos: rng.Body.Lbrace + 1, End: rng.Body.Lbrace + 1, NewText: bind})
	}
	edits = append(edits, ImportEdits(pass, f, "maps", "slices")...)
	return edits, true
}

// plainOperand accepts expressions that are safe to evaluate twice:
// identifiers and field-selector chains.
func plainOperand(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return plainOperand(e.X)
	}
	return false
}

// ImportEdits returns the insertions needed for f to import the given
// stdlib paths (empty when all are already imported). Insertions go
// into the first parenthesized import block, or a new import statement
// after the package clause when the file has none.
func ImportEdits(pass *Pass, f *ast.File, paths ...string) []TextEdit {
	var missing []string
	for _, path := range paths {
		found := false
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, path)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			var b strings.Builder
			for _, p := range missing {
				fmt.Fprintf(&b, "\n\t%q", p)
			}
			return []TextEdit{{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: b.String()}}
		}
	}
	var b strings.Builder
	b.WriteString("\n\nimport (")
	for _, p := range missing {
		fmt.Fprintf(&b, "\n\t%q", p)
	}
	b.WriteString("\n)")
	pos := f.Name.End()
	return []TextEdit{{Pos: pos, End: pos, NewText: b.String()}}
}
