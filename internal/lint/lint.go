// Package lint is a small, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast and go/types. It exists because the repository's
// correctness story rests on conventions a compiler never checks —
// deterministic iteration, simulated time only, saturating counter
// arithmetic, allocation-free hot paths — and conventions rot unless a
// machine enforces them.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics through its Pass. The cmd/simlint multichecker loads every
// package in the module (see LoadPackages) and runs the full suite;
// per-analyzer tests run fixtures through the same code path via
// internal/lint/linttest.
//
// # Suppressions
//
// A finding can be silenced at the exact line it occurs (or the line
// immediately below a standalone comment) with
//
//	//simlint:allow <name>[,<name>...] -- reason
//
// The reason is mandatory and machine-enforced: an allow comment
// without a trailing "-- reason" clause still suppresses (so the tree
// stays fixable one finding at a time) but raises its own
// "allowreason" diagnostic until a reason is written. Suppressions are
// deliberately line-scoped: there is no file- or package-wide escape
// hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //simlint:allow
	// suppressions. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass's package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// Diagnostic is one finding, resolved to a file position. Edits, when
// present, are the analyzer's suggested fix (applied by simlint -fix).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Edits    []Edit
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset resolves token positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression, object and selection
	// facts for Files.
	Info *types.Info

	// allow maps filename -> line -> analyzer names suppressed on that
	// line (built once from //simlint:allow comments).
	allow map[string]map[int][]string
	// bareAllows are the positions of allow comments missing the
	// mandatory "-- reason" clause; RunOn reports each as an
	// "allowreason" finding.
	bareAllows []token.Position
}

// NewPackage assembles a Package from already type-checked parts and
// indexes its suppression comments. linttest uses this for fixture
// packages; LoadPackages uses it for real ones.
func NewPackage(path string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	p := &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info,
		allow: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, hasReason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if !hasReason {
					p.bareAllows = append(p.bareAllows, pos)
				}
				lines := p.allow[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					p.allow[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return p
}

// parseAllow extracts the analyzer names of a //simlint:allow comment
// and whether the mandatory "-- reason" clause is present and
// non-empty.
func parseAllow(text string) (names []string, hasReason, ok bool) {
	body, ok := strings.CutPrefix(text, "//simlint:allow")
	if !ok {
		body, ok = strings.CutPrefix(text, "// simlint:allow")
	}
	if !ok {
		return nil, false, false
	}
	if i := strings.Index(body, "--"); i >= 0 {
		hasReason = strings.TrimSpace(body[i+2:]) != ""
		body = body[:i]
	}
	for _, n := range strings.Split(body, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, hasReason, len(names) > 0
}

// suppressed reports whether analyzer name is allowed at pos: by a
// comment on the same line, or on the line directly above.
func (p *Package) suppressed(pos token.Position, name string) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Pass carries one analyzer's view of one package plus the diagnostic
// sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path (Pkg.Path() for real loads; the
	// fixture-relative path in tests).
	Path string
	// Prog is the whole-load view for interprocedural analyzers: every
	// package in this run plus the call graph over them.
	Prog *Program

	pkg   *Package
	sink  *[]Diagnostic
	count int
}

// Reportf records a finding at pos unless a //simlint:allow suppression
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix records a finding carrying a suggested fix: edits that
// simlint -fix applies mechanically. A suppression drops the fix along
// with the finding.
func (p *Pass) ReportfFix(pos token.Pos, edits []TextEdit, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(position, p.Analyzer.Name) {
		return
	}
	d := Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)}
	for _, e := range edits {
		start, end := p.Fset.Position(e.Pos), p.Fset.Position(e.End)
		d.Edits = append(d.Edits, Edit{Filename: start.Filename, Start: start.Offset, End: end.Offset, NewText: e.NewText})
	}
	*p.sink = append(*p.sink, d)
	p.count++
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics in deterministic (file, line, column, analyzer)
// order. The packages double as the interprocedural Program: taint and
// call-graph queries see exactly this load.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunOn(BuildProgram(pkgs), pkgs, analyzers)
}

// RunOn applies the analyzers to the target packages with prog as the
// interprocedural view; targets may be a subset of prog's packages
// (linttest analyzes one fixture package against a program spanning
// its fixture imports). Framework-level findings — allow comments
// missing their mandatory reason — are reported here too, once per
// target package, under the "allowreason" name.
func RunOn(prog *Program, targets []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, pos := range pkg.bareAllows {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "allowreason",
				Message:  `//simlint:allow needs a written reason: append " -- <why this finding is acceptable>"`,
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Prog:     prog,
				pkg:      pkg,
				sink:     &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// CalleeFunc resolves the function object a call expression invokes
// (package-level functions and methods; nil for builtins, conversions,
// and calls through function-typed values).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// HasDirective reports whether the comment group contains the given
// machine directive (e.g. "sim:hotpath") as a whole "//"-comment, with
// or without trailing text.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	want := "//" + directive
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// InspectStmtLists calls fn for every statement list in the file (block
// bodies, case clauses, comm clauses). Analyzers that need ordering
// context — "is the slice sorted after the loop", "was this event
// rescheduled before reuse" — work on statement lists rather than lone
// nodes.
func InspectStmtLists(f *ast.File, fn func([]ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// IsUint64 reports whether t's underlying type is exactly uint64.
func IsUint64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// MentionsObject reports whether the expression tree references obj.
func MentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
