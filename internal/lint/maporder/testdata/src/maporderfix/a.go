// Fixture for the maporder analyzer: flagged loops carry want comments,
// the rest demonstrate the accepted order-insensitive shapes.
package maporderfix

import (
	"fmt"
	"slices"
	"sort"
)

func bad(m map[string]int) {
	for k := range m { // want "map iteration order is nondeterministic"
		fmt.Println(k)
	}
}

func badCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSlicesSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

func collectThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func condInsert(m map[string]int) map[string]bool {
	out := make(map[string]bool)
	for k, v := range m {
		if v > 0 {
			out[k] = true
		}
	}
	return out
}

func sum(m map[string]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func sumFloatsBad(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration order is nondeterministic"
		s += v
	}
	return s
}

func suppressed(m map[string]int) {
	//simlint:allow maporder -- fixture: suppression must silence the finding
	for k := range m {
		fmt.Println(k)
	}
}

func sliceIsFine(s []int) {
	for _, v := range s {
		fmt.Println(v)
	}
}
