package maporder_test

import (
	"testing"

	"uvmsim/internal/lint/linttest"
	"uvmsim/internal/lint/maporder"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "maporderfix")
}
