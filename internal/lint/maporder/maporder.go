// Package maporder flags `for range` iteration over maps whose
// visitation order can leak into simulator results. Go randomizes map
// iteration order per run; any map-ordered loop that produces output,
// schedules work, or mutates order-sensitive state is a determinism bug
// of exactly the kind golden-file tests only catch when they get lucky.
//
// A range over a map is accepted when the analyzer can prove the loop is
// order-insensitive:
//
//   - the body only writes through map index expressions (building
//     another map), accumulates with commutative integer ops (+=, |=,
//     &=, ^=, ++, --), or branches into such writes; or
//   - the body only appends keys/values to slices that are passed to a
//     sort call (sort.* or slices.Sort*) later in the same statement
//     list — the canonical collect-then-sort idiom.
//
// Anything else needs an explicit line-scoped
// `//simlint:allow maporder -- reason`.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"uvmsim/internal/lint"
)

// Analyzer is the maporder checker.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops whose nondeterministic order can reach results or scheduling",
	Run:  run,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		lint.InspectStmtLists(f, func(list []ast.Stmt) {
			for i, st := range list {
				rng, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if orderInsensitive(pass, rng.Body.List) {
					continue
				}
				if appendThenSort(pass, rng, list[i+1:]) {
					continue
				}
				pass.Reportf(rng.Pos(), "map iteration order is nondeterministic here; sort the keys first, make the body order-insensitive, or annotate //simlint:allow maporder")
			}
		})
	}
}

// orderInsensitive reports whether every statement in the loop body is
// provably independent of iteration order.
func orderInsensitive(pass *lint.Pass, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(pass, st) {
				return false
			}
		case *ast.IncDecStmt:
			if !integerTarget(pass, st.X) {
				return false
			}
		case *ast.IfStmt:
			// The condition only reads; reads are deterministic per key.
			if !orderInsensitive(pass, st.Body.List) {
				return false
			}
			switch e := st.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitive(pass, e.List) {
					return false
				}
			case *ast.IfStmt:
				if !orderInsensitive(pass, []ast.Stmt{e}) {
					return false
				}
			default:
				return false
			}
		case *ast.BlockStmt:
			if !orderInsensitive(pass, st.List) {
				return false
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// orderInsensitiveAssign accepts map-index stores (m[k] = v) and
// commutative integer accumulation (x += v, x |= v, x &= v, x ^= v).
func orderInsensitiveAssign(pass *lint.Pass, st *ast.AssignStmt) bool {
	switch st.Tok {
	case token.ASSIGN:
		for _, lhs := range st.Lhs {
			lhs = ast.Unparen(lhs)
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			xt := pass.TypeOf(idx.X)
			if xt == nil {
				return false
			}
			if _, isMap := xt.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return len(st.Lhs) == 1 && integerTarget(pass, st.Lhs[0])
	}
	return false
}

// integerTarget reports whether e has an integer type (commutative
// accumulation is order-insensitive for integers, but not for floats,
// whose rounding depends on summation order).
func integerTarget(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// appendThenSort recognizes the collect-then-sort idiom: the body only
// appends to local slices (x = append(x, ...)) or does otherwise
// order-insensitive work, and every appended slice is handed to a sort
// call somewhere in the remainder of the enclosing statement list.
func appendThenSort(pass *lint.Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	var appended []types.Object
	for _, st := range rng.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if ok && as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if obj := selfAppendTarget(pass, as); obj != nil {
				appended = append(appended, obj)
				continue
			}
		}
		if !orderInsensitive(pass, []ast.Stmt{st}) {
			return false
		}
	}
	if len(appended) == 0 {
		return false
	}
	for _, obj := range appended {
		if !sortedLater(pass, obj, rest) {
			return false
		}
	}
	return true
}

// selfAppendTarget returns the object of x in `x = append(x, ...)`, or
// nil when the statement has another shape.
func selfAppendTarget(pass *lint.Pass, as *ast.AssignStmt) types.Object {
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || arg0.Name != id.Name {
		return nil
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil || obj != pass.Info.ObjectOf(arg0) {
		return nil
	}
	return obj
}

// sortNames are the sorting entry points of sort and slices whose
// presence sanctions a collected slice.
var sortNames = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedLater reports whether some statement in rest calls a sort
// function on obj.
func sortedLater(pass *lint.Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			f := lint.CalleeFunc(pass.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			if pkg := f.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			if !sortNames[f.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lint.MentionsObject(pass.Info, arg, obj) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
