// Package goroleak flags `go` statements that launch goroutines with
// no provable shutdown path. A leaked goroutine pins its stack, its
// captured references and — in this repository — often a channel the
// rest of the pipeline still selects on; under `go test -race` and in
// the long-running serve daemon the leaks compound until the process
// is mostly dead weight.
//
// A goroutine is accepted when its body provably finishes:
//
//   - it terminates structurally (no infinite `for` loop), e.g. a
//     bounded loop, a one-shot send, or a range over a channel that
//     ends when the sender closes it;
//   - every infinite loop has an exit: a return, a (possibly labeled)
//     break or goto, a panic, or an os.Exit/runtime.Goexit/log.Fatal
//     call — the shape a `case <-ctx.Done(): return` select produces.
//
// The check is interprocedural: `go w.loop()` is traced into loop's
// declaration and, depth-limited, into its direct callees anywhere in
// the load. Two launch shapes cannot be traced and are flagged
// outright: calls to functions declared outside the load (e.g.
// `go srv.Serve(ln)`) and calls through function-typed values. When
// the surrounding code guarantees termination by other means — the
// process exits with the daemon, the value is always a terminating
// closure — say so with `//simlint:allow goroleak -- reason`.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"uvmsim/internal/lint"
)

// Analyzer is the goroleak checker.
var Analyzer = &lint.Analyzer{
	Name: "goroleak",
	Doc:  "flags goroutine launches with no provable shutdown path (infinite loops without exits, untraceable targets)",
	Run:  run,
}

// maxDepth bounds the callee trace from a go statement.
const maxDepth = 5

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, g)
			return true
		})
	}
}

func check(pass *lint.Pass, g *ast.GoStmt) {
	advice := "add a shutdown path (a context Done case, a closed channel, or a bound)"
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if reason, ok := leaky(pass.Prog, pass.Info, fun.Body, maxDepth, nil); ok {
			pass.Reportf(g.Pos(), "goroutine %s; %s", reason, advice)
		}
		return
	case *ast.Ident:
		if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
			return // go close(ch) and friends terminate immediately
		}
	}
	fn := lint.CalleeFunc(pass.Info, g.Call)
	if fn == nil {
		pass.Reportf(g.Pos(), "goroutine target is a function value; cannot prove a shutdown path — launch a named function or allow with a reason")
		return
	}
	decl := pass.Prog.Decl(fn)
	if decl == nil {
		pass.Reportf(g.Pos(), "goroutine runs %s, which is declared outside this load; cannot prove a shutdown path — wrap it so cancellation stops it, or allow with a reason", lint.FuncName(fn))
		return
	}
	visited := map[*types.Func]bool{fn: true}
	if reason, ok := leaky(pass.Prog, decl.Pkg.Info, decl.Decl.Body, maxDepth, visited); ok {
		pass.Reportf(g.Pos(), "goroutine runs %s, which %s; %s", lint.FuncName(fn), reason, advice)
	}
}

// leaky reports whether body — or, transitively, a declared direct
// callee — contains an infinite for loop with no exit. The returned
// reason narrates the call chain.
func leaky(prog *lint.Program, info *types.Info, body *ast.BlockStmt, depth int, visited map[*types.Func]bool) (string, bool) {
	if loopsForever(info, body) {
		return "loops forever without a return, break or exit", true
	}
	if depth == 0 {
		return "", false
	}
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			// A closure may never run here; a nested go statement is its
			// own launch, checked where it appears.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(info, call)
		if fn == nil || visited[fn] {
			return true
		}
		decl := prog.Decl(fn)
		if decl == nil {
			return true // external callees are assumed to return
		}
		if visited == nil {
			visited = make(map[*types.Func]bool)
		}
		visited[fn] = true
		if r, ok := leaky(prog, decl.Pkg.Info, decl.Decl.Body, depth-1, visited); ok {
			reason = "calls " + lint.FuncName(fn) + ", which " + r
			return false
		}
		return true
	})
	return reason, reason != ""
}

// loopsForever reports whether body contains a `for { ... }` loop
// (nil condition) with no exit statement.
func loopsForever(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !hasExit(info, n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasExit reports whether the infinite loop can stop: a return, a
// break/goto binding to it (unlabeled at its own level, or any labeled
// one), or a never-returning call (panic, os.Exit, runtime.Goexit,
// log.Fatal*). Unlabeled breaks inside nested loops, switches and
// selects bind to those constructs and do not count.
func hasExit(info *types.Info, loop *ast.ForStmt) bool {
	exit := false
	var scan func(n ast.Node, breakable bool)
	scan = func(n ast.Node, breakable bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if exit {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.ReturnStmt:
				exit = true
				return false
			case *ast.BranchStmt:
				if m.Tok == token.BREAK || m.Tok == token.GOTO {
					if m.Label != nil || breakable {
						exit = true
					}
				}
				return false
			case *ast.ForStmt:
				scan(m.Body, false)
				return false
			case *ast.RangeStmt:
				scan(m.Body, false)
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				scan(switchBody(m), false)
				return false
			case *ast.CallExpr:
				if neverReturns(info, m) {
					exit = true
					return false
				}
			}
			return true
		})
	}
	scan(loop.Body, true)
	return exit
}

// switchBody returns the clause block of a switch/select statement.
func switchBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.SwitchStmt:
		return n.Body
	case *ast.TypeSwitchStmt:
		return n.Body
	case *ast.SelectStmt:
		return n.Body
	}
	return nil
}

// neverReturns recognizes calls that terminate the goroutine or the
// process.
func neverReturns(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return b.Name() == "panic"
		}
	}
	fn := lint.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}
