package goroleak_test

import (
	"testing"

	"uvmsim/internal/lint/goroleak"
	"uvmsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, goroleak.Analyzer, "goroleakfix")
}
