// Fixture for the goroleak analyzer: goroutine launches with and
// without provable shutdown paths.
package goroleakfix

import (
	"context"
	"net/http"

	"gorohelp"
)

// forever: an infinite loop with no exit leaks the goroutine.
func forever(ch chan int) {
	go func() { // want `goroutine loops forever without a return, break or exit`
		for {
			ch <- 1
		}
	}()
}

// worker loops forever; runsWorker launches it by name.
func worker(ch chan int) {
	for {
		ch <- 1
	}
}

func runsWorker(ch chan int) {
	go worker(ch) // want `goroutine runs goroleakfix.worker, which loops forever`
}

// runsHelper: the loop hides two calls away in another package.
func runsHelper(ch chan int) {
	go gorohelp.Run(ch) // want `runs gorohelp.Run, which calls gorohelp.Spin, which loops forever`
}

// external: a callee declared outside the load cannot be traced.
func external(srv *http.Server) {
	go srv.ListenAndServe() // want `declared outside this load`
}

// funcValue: a function-typed value cannot be traced either.
func funcValue(fn func()) {
	go fn() // want `function value; cannot prove`
}

// clean: context cancellation provides the exit.
func withContext(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// clean: the helper ends when its input channel closes.
func drains(in, out chan int) {
	go gorohelp.Pump(in, out)
}

// clean: a bounded loop terminates on its own.
func bounded(ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			ch <- i
		}
	}()
}

// clean: a labeled break exits the outer loop.
func labeled(done, ch chan int) {
	go func() {
	loop:
		for {
			select {
			case <-done:
				break loop
			case ch <- 1:
			}
		}
	}()
}

// clean: builtins terminate immediately.
func closes(ch chan int) {
	go close(ch)
}

// suppressed: a reason-carrying allow silences the finding.
func suppressed(ch chan int) {
	go func() { //simlint:allow goroleak -- fixture: suppression must silence the finding
		for {
			ch <- 1
		}
	}()
}
