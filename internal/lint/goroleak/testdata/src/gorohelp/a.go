// Package gorohelp provides goroutine bodies in a *different* fixture
// package, so the goroleak test proves cross-package tracing: the go
// statements live in goroleakfix, the loops live here.
package gorohelp

// Spin loops forever with no exit; goroutines running it never stop.
func Spin(ch chan int) {
	for {
		ch <- 1
	}
}

// Run hides Spin one call deeper.
func Run(ch chan int) { Spin(ch) }

// Pump is clean: it ends when the sender closes in.
func Pump(in, out chan int) {
	for v := range in {
		out <- v
	}
}
