// Fixture obs package: observability state only obs may mutate.
package obs

type Snapshot struct {
	Count  uint64
	Values map[string]uint64
}

func (s *Snapshot) Record(name string, v uint64) {
	s.Count++
	s.Values[name] = v
}
