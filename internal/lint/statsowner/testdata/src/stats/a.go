// Fixture stats package: mirrors the repo's stats.Counters shape. The
// owning package mutates its own state freely.
package stats

type Counters struct {
	Cycles       uint64
	FarFaults    uint64
	Instructions uint64
	Bogus        uint64 // deliberately absent from the owners table
}

func (c *Counters) Reset() {
	c.Cycles = 0
	c.FarFaults = 0
	c.Instructions = 0
	c.Bogus = 0
}
