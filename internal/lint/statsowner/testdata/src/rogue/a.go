// Fixture rogue package: no ownership of anything; every counter write
// here is a double-count bug.
package rogue

import (
	"obs"
	"stats"
)

func meddle(c *stats.Counters, s *obs.Snapshot) {
	c.FarFaults++            // want `owned by \[uvm\]`
	s.Count++                // want `may only be mutated inside obs`
	s.Values["faults"] = 1   // want `may only be mutated inside obs`
}

type local struct{ Cycles uint64 }

func ownStructIsFine(l *local) {
	l.Cycles++ // same field name, but not defined in a stats package
}
