// Fixture uvm package: owns the fault counters, nothing else.
package uvm

import "stats"

func handleFault(c *stats.Counters) {
	c.FarFaults++ // uvm owns FarFaults
	c.Cycles++    // want `owned by \[core multigpu\]`
	c.Instructions += 2 // want `owned by \[gpu\]`
	c.Bogus = 1   // want `no declared owner`
}

func suppressed(c *stats.Counters) {
	c.Cycles++ //simlint:allow statsowner -- fixture: suppression must silence the finding
}
