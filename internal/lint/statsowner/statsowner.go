// Package statsowner enforces write ownership of the run-statistics
// counters. Every field of stats.Counters has exactly one component that
// is allowed to increment it (declared in the owners table below, which
// doubles as the authoritative ownership map); a second writer means
// double counting, and double-counted golden CSVs are the kind of bug
// that survives until someone cross-checks a figure against the paper.
//
// Rules, applied to every assignment, op-assignment and ++/--:
//
//   - a field of a struct defined in a package named "stats" may be
//     mutated only by its declared owner package (or by stats itself);
//     fields with no declared owner are flagged everywhere, so adding a
//     counter forces declaring its owner here;
//   - state of structs defined in a package named "obs" (snapshots,
//     registries, histograms) may be mutated only by obs itself —
//     components publish through the Counter/Gauge/Provider API.
package statsowner

import (
	"go/ast"
	"go/types"

	"uvmsim/internal/lint"
)

// Analyzer is the statsowner checker.
var Analyzer = &lint.Analyzer{
	Name: "statsowner",
	Doc:  "restricts mutation of stats.Counters fields to their declared owning package and obs state to obs",
	Run:  run,
}

// owners maps each stats.Counters field to the package names allowed to
// write it. Cycles is stamped by the single-GPU harness (core) and the
// multi-GPU cluster; everything else has a single writer.
var owners = map[string][]string{
	"Cycles": {"core", "multigpu"},

	"NearAccesses": {"uvm"},
	"RemoteReads":  {"uvm"},
	"RemoteWrites": {"uvm"},

	"FarFaults":    {"uvm"},
	"FaultBatches": {"uvm"},

	"MigratedPages":    {"uvm"},
	"PrefetchedPages":  {"uvm"},
	"ThrashedPages":    {"uvm"},
	"EvictedPages":     {"uvm"},
	"WrittenBackPages": {"uvm"},

	"H2DBytes": {"uvm"},
	"D2HBytes": {"uvm"},

	"TLBHits":       {"uvm"},
	"TLBMisses":     {"uvm"},
	"TLBShootdowns": {"uvm"},

	"Instructions":    {"gpu"},
	"MemInstructions": {"gpu"},
	"WarpsRetired":    {"gpu"},
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkTarget(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkTarget(pass, n.X)
			}
			return true
		})
	}
}

// checkTarget flags lhs when it writes counter state owned elsewhere.
func checkTarget(pass *lint.Pass, lhs ast.Expr) {
	e := ast.Unparen(lhs)
	if idx, ok := e.(*ast.IndexExpr); ok {
		// Writing into a map/slice field (snap.Counters[k] = v) mutates
		// the struct's state just the same.
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	if field.Pkg() == nil {
		return
	}
	defPkg := field.Pkg().Name()
	if defPkg != "stats" && defPkg != "obs" {
		return
	}
	if pass.Pkg.Name() == defPkg {
		return // the owning package maintains its own state freely
	}
	if defPkg == "obs" {
		pass.Reportf(lhs.Pos(), "obs state (%s.%s) may only be mutated inside obs; publish through Counter/Gauge/Provider", named(selection), field.Name())
		return
	}
	allowed, declared := owners[field.Name()]
	if !declared {
		pass.Reportf(lhs.Pos(), "stats field %s.%s has no declared owner; add it to the statsowner owners table", named(selection), field.Name())
		return
	}
	for _, pkg := range allowed {
		if pass.Pkg.Name() == pkg {
			return
		}
	}
	pass.Reportf(lhs.Pos(), "stats field %s.%s is owned by %v; mutating it from %s double-counts", named(selection), field.Name(), allowed, pass.Pkg.Name())
}

// named returns the receiver struct's type name for diagnostics.
func named(sel *types.Selection) string {
	t := sel.Recv()
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		default:
			return t.String()
		}
	}
}
