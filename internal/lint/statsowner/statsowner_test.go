package statsowner_test

import (
	"testing"

	"uvmsim/internal/lint/linttest"
	"uvmsim/internal/lint/statsowner"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, statsowner.Analyzer, "stats", "obs", "uvm", "rogue")
}
