package floatdet_test

import (
	"testing"

	"uvmsim/internal/lint/floatdet"
	"uvmsim/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, floatdet.Analyzer, "floatdetfix", "floatdetorder")
}

func TestSuggestedFix(t *testing.T) {
	linttest.RunFix(t, floatdet.Analyzer, "floatdetorder")
}
