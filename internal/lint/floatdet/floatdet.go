// Package floatdet flags floating-point accumulation whose result
// depends on a nondeterministic iteration order. Float addition is not
// associative: summing the same values in a different order yields a
// different rounding, so an accumulator fed from a range-over-map loop
// or a channel-receive loop drifts run to run even though every input
// is identical. In this repository such drift breaks byte-identical
// goldens, the PDES sequential-equivalence property and the simd
// content-addressed cache.
//
// Two shapes are reported inside an unordered loop (range over a map or
// over a channel):
//
//   - a direct float accumulation: `sum += v`, `sum = sum + v`,
//     `*p -= v`, `s.total *= v`, when the target outlives one iteration;
//   - a call to a function that (transitively) accumulates floats into
//     state shared across calls — a pointer/receiver target or a
//     package-level variable. Summaries are computed over the whole
//     load's call graph (lint.Program.Fixpoint), so the accumulation
//     may hide any number of calls deep, in any package.
//
// The callee summary deliberately over-approximates: a caller that
// confines the accumulator to its own locals still inherits its
// callee's summary. When a call is provably order-insensitive, say so
// with `//simlint:allow floatdet -- reason`.
//
// Integer accumulation is exempt (exact, commutative), as is any
// accumulator declared inside the loop body (re-initialized per
// iteration) and ordered iteration over slices, arrays and strings.
// For map loops the analyzer attaches the sorted-keys rewrite as a
// suggested fix; `simlint -fix` applies it.
package floatdet

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"uvmsim/internal/lint"
)

// Analyzer is the floatdet checker.
var Analyzer = &lint.Analyzer{
	Name: "floatdet",
	Doc:  "flags float accumulation in map-range or channel-receive loops, including through calls that accumulate into shared state",
	Run:  run,
}

// loopCtx is the innermost unordered loop enclosing the node being
// visited.
type loopCtx struct {
	rng  *ast.RangeStmt
	kind string // "range-over-map" or "range-over-channel"
}

// summaries caches the accumulator Fixpoint per Program (the analyzer
// runs once per package; the summaries are whole-load facts).
var summaries = make(map[*lint.Program]map[*types.Func]string)

func accumulators(prog *lint.Program) map[*types.Func]string {
	if s, ok := summaries[prog]; ok {
		return s
	}
	s := prog.Fixpoint(func(fn *types.Func, decl *lint.FuncDecl) (string, bool) {
		if accumulatesShared(decl) {
			return "accumulates floating-point values into state shared across calls", true
		}
		return "", false
	})
	summaries[prog] = s
	return s
}

func run(pass *lint.Pass) {
	accs := accumulators(pass.Prog)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(pass, f, fd.Body, nil, accs)
		}
	}
}

// walk visits n tracking the innermost unordered-loop context. Func
// literals are boundaries: their bodies run on their own schedule, not
// per loop iteration the analyzer can see.
func walk(pass *lint.Pass, f *ast.File, n ast.Node, ctx *loopCtx, accs map[*types.Func]string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			nctx := ctx
			if t := pass.TypeOf(m.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					nctx = &loopCtx{rng: m, kind: "range-over-map"}
				case *types.Chan:
					nctx = &loopCtx{rng: m, kind: "range-over-channel"}
				}
			}
			walk(pass, f, m.X, ctx, accs)
			walk(pass, f, m.Body, nctx, accs)
			return false
		case *ast.AssignStmt:
			if ctx != nil {
				checkAccum(pass, f, m, ctx)
			}
		case *ast.CallExpr:
			if ctx != nil {
				checkCall(pass, f, m, ctx, accs)
			}
		}
		return true
	})
}

// checkAccum flags a direct float accumulation whose target outlives
// one iteration of the unordered loop.
func checkAccum(pass *lint.Pass, f *ast.File, as *ast.AssignStmt, ctx *loopCtx) {
	lhs, ok := floatAccumLHS(pass.Info, as)
	if !ok {
		return
	}
	obj := rootObject(pass.Info, lhs)
	if obj == nil {
		return
	}
	// Declared inside the loop body: re-initialized per iteration, so
	// the accumulation order within one iteration is the caller's own.
	if obj.Pos() >= ctx.rng.Pos() && obj.Pos() < ctx.rng.End() {
		return
	}
	pass.ReportfFix(as.Pos(), mapFix(pass, f, ctx),
		"floating-point accumulation into %s inside a %s loop depends on iteration order; iterate sorted keys, use integer arithmetic, or reduce in a fixed order",
		render(pass.Fset, lhs), ctx.kind)
}

// checkCall flags calls to functions that transitively accumulate
// floats into shared state.
func checkCall(pass *lint.Pass, f *ast.File, call *ast.CallExpr, ctx *loopCtx, accs map[*types.Func]string) {
	callee := lint.CalleeFunc(pass.Info, call)
	if callee == nil {
		return
	}
	reason, ok := accs[callee]
	if !ok {
		return
	}
	pass.ReportfFix(call.Pos(), mapFix(pass, f, ctx),
		"call to %s inside a %s loop %s; the accumulated value depends on iteration order",
		lint.FuncName(callee), ctx.kind, reason)
}

// mapFix returns the sorted-keys rewrite for map loops (channels have
// no fixable order).
func mapFix(pass *lint.Pass, f *ast.File, ctx *loopCtx) []lint.TextEdit {
	if ctx.kind != "range-over-map" {
		return nil
	}
	if edits, ok := lint.SortedRangeFix(pass, f, ctx.rng); ok {
		return edits
	}
	return nil
}

// floatAccumLHS returns the accumulation target when as is a float
// compound assignment (+=, -=, *=, /=) or the spelled-out
// `x = x op v` form.
func floatAccumLHS(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := ast.Unparen(as.Lhs[0])
	if !isFloat(info.TypeOf(lhs)) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return nil, false
		}
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, false
		}
		if lint.MentionsObject(info, bin, obj) {
			return lhs, true
		}
	}
	return nil, false
}

// rootObject resolves the variable an accumulation target hangs off:
// the base identifier of selector/deref chains, or the package-level
// variable of a pkg.Var selector. Index expressions return nil — keyed
// accumulation (`m[k] += v` with distinct keys) is order-insensitive
// per key and out of scope here.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					return info.ObjectOf(x.Sel)
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// accumulatesShared reports whether decl's body performs a float
// accumulation into state that outlives the call: a package-level
// variable, a pointer-receiver or pointer-parameter target.
func accumulatesShared(decl *lint.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if lhs, ok := floatAccumLHS(decl.Pkg.Info, as); ok && escapesCallee(decl, lhs) {
			found = true
		}
		return !found
	})
	return found
}

// escapesCallee reports whether the accumulation target lhs outlives a
// call of decl: it is a package-level variable (of this or another
// package) or reached through a pointer receiver/parameter. Targets
// local to the body — including value receivers and value parameters,
// which are copies — do not escape.
func escapesCallee(decl *lint.FuncDecl, lhs ast.Expr) bool {
	info := decl.Pkg.Info
	deref := false
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.StarExpr:
			deref = true
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					return true
				}
			}
			e = x.X
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return false
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == decl.Pkg.Types.Scope() {
				return true
			}
			body := decl.Decl.Body
			if obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
				return false
			}
			if deref {
				return true
			}
			_, isPtr := obj.Type().Underlying().(*types.Pointer)
			return isPtr
		default:
			return false
		}
	}
}

// isFloat reports whether t is a floating-point or complex basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// render prints e for diagnostics.
func render(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "the target"
	}
	return b.String()
}
