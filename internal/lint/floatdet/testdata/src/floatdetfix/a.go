// Fixture for the floatdet analyzer: order-sensitive float
// accumulation in unordered loops, directly and through calls.
package floatdetfix

import "floathelp"

type acc struct{ total float64 }

func (a *acc) add(v float64) { a.total += v }

// direct: float compound-assign in a map-range loop.
func direct(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside a range-over-map loop`
	}
	return sum
}

// assignForm: the spelled-out x = x + v shape.
func assignForm(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation into sum`
	}
	return sum
}

// fromChannel: receive order across senders is scheduling-dependent.
func fromChannel(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want `inside a range-over-channel loop`
	}
	return sum
}

// viaMethod: the accumulation hides behind a pointer-receiver method.
func viaMethod(m map[string]float64) float64 {
	var a acc
	for _, v := range m {
		a.add(v) // want `call to acc.add inside a range-over-map loop accumulates floating-point values into state shared across calls`
	}
	return a.total
}

// crossPackage: the accumulator helper lives in floathelp.
func crossPackage(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		floathelp.AddTo(&sum, v) // want `call to floathelp.AddTo`
	}
	return sum
}

// addBoth inherits AddTo's summary; chained proves two-hop propagation.
func addBoth(p *float64, v float64) { floathelp.AddTo(p, v) }

func chained(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		addBoth(&sum, v) // want `calls floathelp.AddTo, which accumulates`
	}
	return sum
}

// globalSink: package-level accumulation in another package.
func globalSink(m map[string]float64) {
	for _, v := range m {
		floathelp.Record(v) // want `call to floathelp.Record`
	}
}

// suppressed: a reason-carrying allow silences the finding.
func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //simlint:allow floatdet -- fixture: suppression must silence the finding
	}
	return sum
}

// clean: integer accumulation commutes exactly.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// clean: slice iteration is ordered.
func sliceSum(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// clean: the accumulator resets every key, so per-key results are
// order-independent even though the inner loop runs under a map range.
func perKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// clean: a float *assignment* that is not an accumulation (max over a
// map commutes), calling a helper with no escaping accumulation.
func cleanHelper(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if w := floathelp.Mean([]float64{v}); w > best {
			best = w
		}
	}
	return best
}
