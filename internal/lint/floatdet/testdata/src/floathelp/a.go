// Package floathelp provides accumulator helpers in a *different*
// fixture package, so the floatdet test proves cross-package
// interprocedural summaries: the unordered loops live in floatdetfix,
// the shared-state accumulation lives here.
package floathelp

// Total is a package-level accumulator; Record escapes through it.
var Total float64

// AddTo accumulates into the caller's accumulator through a pointer.
func AddTo(p *float64, v float64) { *p += v }

// Record accumulates into package state.
func Record(v float64) { Total += v }

// Mean is clean: the accumulation never leaves its locals, and the
// slice iteration is ordered.
func Mean(vs []float64) float64 {
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	if len(vs) == 0 {
		return 0
	}
	return sum / float64(len(vs))
}
