// Fixture for floatdet's suggested fix: float accumulation over map
// ranges rewritten to sorted-key iteration. The golden a.go.fixed also
// asserts the new-import-block path (this file imports nothing).
package floatdetorder

// Sum accumulates in map order; the fix iterates sorted keys.
func Sum(m map[int]float64) float64 {
	var sum float64
	for k := range m {
		sum += m[k] // want `floating-point accumulation into sum`
	}
	return sum
}

// Weighted needs the value binding re-established by the rewrite.
func Weighted(m map[string]float64) float64 {
	var total float64
	for k, v := range m {
		if k > "a" {
			total += v // want `floating-point accumulation into total`
		}
	}
	return total
}
