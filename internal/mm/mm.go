// Package mm defines the staged memory-management pipeline of the UVM
// driver: four narrow, independently replaceable stages that together
// express every policy decision the driver makes, plus a name-keyed
// registry so command-line tools, sweeps and experiments can select
// implementations by string.
//
// The stages mirror the life of a memory transaction that misses device
// memory:
//
//	MigrationPlanner  — migrate or serve remotely? (wraps policy.Decider)
//	FaultBatcher      — batch formation for far-faults awaiting the
//	                    45us driver handling latency
//	PrefetchGovernor  — which neighbour blocks ride along with a
//	                    migrating fault (wraps prefetch.Chunk)
//	EvictionEngine    — victim selection under capacity pressure (wraps
//	                    evict.Policy via an EvictionHost view of driver
//	                    state)
//
// The uvm.Driver composes one instance of each and owns only page-table
// state and event sequencing. The built-in implementations reproduce the
// paper's heuristics bit-for-bit; alternatives (a thrash-guard planner,
// a deduplicating batcher, a refusing evictor) register under their own
// names and drop in without touching the driver core.
//
// Stage instances are per driver: a FaultBatcher is stateful and must
// never be shared between drivers (multi-GPU clusters build one
// Pipeline per GPU). Planners, governors and the built-in evictors are
// stateless, but the contract is per-driver ownership throughout.
package mm

import (
	"uvmsim/internal/config"
	"uvmsim/internal/evict"
	"uvmsim/internal/memunits"
	"uvmsim/internal/policy"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
)

// Access describes one host-resident block access for the planner: the
// block, the direction, its counter state and the device-memory state
// the threshold schemes depend on.
type Access struct {
	// Block is the 64KB basic block being accessed.
	Block memunits.BlockNum
	// Write reports the access direction.
	Write bool
	// Count is the block's access-counter value including this access.
	Count uint64
	// RoundTrips is the block's eviction round-trip count r.
	RoundTrips uint64
	// Mem is the device-memory occupancy snapshot.
	Mem policy.MemState
	// Now is the simulated time of the access. Learned planners measure
	// their epochs against it; basing any planner state on wall clock
	// instead would break the byte-identical determinism guarantee.
	Now sim.Cycle
}

// MigrationPlanner decides, per access to a non-resident block, whether
// the block migrates to device memory or the access is served remotely
// (zero-copy) from host memory. Implementations must be deterministic
// functions of the Access sequence and their own configuration: the
// built-in threshold planners are pure, while the learned planners
// (reuse-dist, bandit-ts) carry state that evolves only from the
// accesses they have seen and the configured seed — never from wall
// clock or unseeded randomness.
type MigrationPlanner interface {
	// Name identifies the planner (registry key).
	Name() string
	// ShouldMigrate reports whether the access triggers a migration.
	ShouldMigrate(a Access) bool
}

// FaultBatcher accumulates far-faulting blocks into the batch the
// driver processes after the fault-handling latency. Implementations
// own the returned slices and may recycle them across rounds.
type FaultBatcher interface {
	// Name identifies the batcher (registry key).
	Name() string
	// Add records a far-faulting block. opened reports whether this
	// fault opened a new batch round, in which case the driver
	// schedules the round's close after the fault-handling latency.
	Add(b memunits.BlockNum) (opened bool)
	// Close returns the batch accumulated since the last Close and
	// opens the next round. The slice is valid until the next Add.
	Close() []memunits.BlockNum
	// Open reports whether a batch is currently accumulating (a close
	// event is scheduled).
	Open() bool
}

// ChunkPrefetcher is the per-chunk state a PrefetchGovernor hands the
// driver: the fault-time migration grouping plus the occupancy tree the
// eviction machinery keeps in sync with block residency.
type ChunkPrefetcher interface {
	// OnFault records that block index i (chunk-relative) faulted and
	// returns the complete ascending list of chunk-relative block
	// indices to migrate together, always including i. Returned blocks
	// are marked occupied in the tree.
	OnFault(i int) []int
	// Tree exposes the chunk's occupancy tree. The driver clears and
	// re-marks it on eviction, and the 2MB replacement policy reads
	// Full() from it, so every implementation must keep it accurate.
	Tree() *prefetch.Tree
}

// PrefetchGovernor creates the per-chunk prefetch state when a chunk is
// first touched.
type PrefetchGovernor interface {
	// Name identifies the governor (registry key).
	Name() string
	// NewChunk returns fresh prefetch state for a chunk of nBlocks
	// 64KB basic blocks (a power of two in [1, 32]).
	NewChunk(nBlocks int) ChunkPrefetcher
}

// EvictionHost is the view of driver state an EvictionEngine works
// against: candidate enumeration and victim application. The driver
// implements it; engines never touch page tables directly.
//
// Protocol: collect candidates (as often as needed), then Evict exactly
// one of them by index. Any candidate slice is invalidated by the next
// host call. The chunk currently being migrated into is never listed.
type EvictionHost interface {
	// ChunkCandidates returns the resident 2MB chunks eligible for
	// eviction, ascending by chunk number. strict applies the standard
	// pinning rules (queued or in-flight migrations pin a chunk) and
	// the recency guard; relaxed (strict=false) pins only chunks with
	// blocks on the wire, guaranteeing forward progress.
	ChunkCandidates(strict bool) []evict.Candidate
	// BlockCandidates is the 64KB-granularity equivalent: every
	// resident basic block outside the destination chunk, ascending by
	// block number. strict applies the recency guard.
	BlockCandidates(strict bool) []evict.Candidate
	// Evict evicts the idx-th candidate of the most recent collection,
	// handling residency teardown, TLB shootdowns, accounting and dirty
	// write-back. strict tags which selection pass chose the victim
	// (observability and the no-pinned-victim invariant).
	Evict(idx int, strict bool)
}

// EvictionEngine frees device memory one eviction unit at a time.
type EvictionEngine interface {
	// Name identifies the engine. For the built-in engines this is the
	// replacement policy name ("LRU", "LFU"), which keys the
	// observability metrics.
	Name() string
	// EvictOne selects and evicts one unit via the host. It returns
	// false when no victim is available right now; the driver then
	// retries when in-flight work completes, or — if nothing is in
	// flight — demotes the stalled migration to remote access.
	EvictOne(h EvictionHost) bool
}

// MetricPublisher is optionally implemented by pipeline stages that
// expose internal state to the observability layer (internal/obs). The
// driver discovers it by type assertion when instruments attach and
// registers a provider calling PublishMetrics at collection time, so
// publication never perturbs simulated behaviour. Learned stages use it
// to surface epoch counts, arm pulls and exploration draws.
type MetricPublisher interface {
	// PublishMetrics emits the stage's current metric values. Names
	// should be dotted and stage-prefixed (e.g. "mm.bandit_ts.epochs").
	PublishMetrics(emit func(name string, value uint64))
}

// Pipeline bundles one instance of every stage for one driver.
type Pipeline struct {
	Batcher  FaultBatcher
	Planner  MigrationPlanner
	Evictor  EvictionEngine
	Prefetch PrefetchGovernor
}

// Build resolves cfg.MMPipeline against the registry, returning a fresh
// per-driver Pipeline. Empty names select the built-in stages derived
// from cfg.Policy, cfg.Replacement and cfg.Prefetcher, reproducing the
// pre-pipeline driver exactly.
func Build(cfg config.Config) (Pipeline, error) {
	var (
		p   Pipeline
		err error
	)
	if p.Batcher, err = NewBatcher(cfg.MMPipeline.Batcher, cfg); err != nil {
		return Pipeline{}, err
	}
	if p.Planner, err = NewPlanner(cfg.MMPipeline.Planner, cfg); err != nil {
		return Pipeline{}, err
	}
	if p.Evictor, err = NewEvictor(cfg.MMPipeline.Evictor, cfg); err != nil {
		return Pipeline{}, err
	}
	if p.Prefetch, err = NewPrefetchGovernor(cfg.MMPipeline.Prefetcher, cfg); err != nil {
		return Pipeline{}, err
	}
	return p, nil
}
