package mm

import (
	"sort"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/evict"
	"uvmsim/internal/memunits"
	"uvmsim/internal/policy"
	"uvmsim/internal/sim"
)

func TestDefaultsMatchConfiguration(t *testing.T) {
	cfg := config.Default()
	b, err := NewBatcher("", cfg)
	if err != nil || b.Name() != "accumulate" {
		t.Fatalf("default batcher = %v, %v; want accumulate", b, err)
	}
	p, err := NewPlanner("", cfg)
	if err != nil || p.Name() != "threshold" {
		t.Fatalf("default planner = %v, %v; want threshold", p, err)
	}
	for _, rp := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		cfg.Replacement = rp
		e, err := NewEvictor("", cfg)
		if err != nil || e.Name() != rp.String() {
			t.Fatalf("default evictor under %v = %v, %v", rp, e, err)
		}
	}
	g, err := NewPrefetchGovernor("", cfg)
	if err != nil || g.Name() != "tree" {
		t.Fatalf("default governor = %v, %v; want tree", g, err)
	}
}

func TestUnknownNamesError(t *testing.T) {
	cfg := config.Default()
	if _, err := NewPlanner("nope", cfg); err == nil || !strings.Contains(err.Error(), "unknown migration planner") {
		t.Fatalf("NewPlanner(nope) err = %v", err)
	}
	if _, err := NewBatcher("nope", cfg); err == nil {
		t.Fatal("NewBatcher(nope) succeeded")
	}
	if _, err := NewEvictor("nope", cfg); err == nil {
		t.Fatal("NewEvictor(nope) succeeded")
	}
	if _, err := NewPrefetchGovernor("nope", cfg); err == nil {
		t.Fatal("NewPrefetchGovernor(nope) succeeded")
	}
	// The error names the registered alternatives.
	_, err := NewEvictor("mru", cfg)
	for _, want := range EvictorNames() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
}

func TestNamesAreCaseInsensitiveAndTrimmed(t *testing.T) {
	cfg := config.Default()
	p, err := NewPlanner(" Thrash-Guard ", cfg)
	if err != nil || p.Name() != "thrash-guard" {
		t.Fatalf("NewPlanner(' Thrash-Guard ') = %v, %v", p, err)
	}
}

func TestNameListsAreSorted(t *testing.T) {
	for kind, names := range map[string][]string{
		"batcher":    BatcherNames(),
		"planner":    PlannerNames(),
		"evictor":    EvictorNames(),
		"prefetcher": PrefetchGovernorNames(),
	} {
		if len(names) == 0 {
			t.Fatalf("no registered %ss", kind)
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("%s names not sorted: %v", kind, names)
		}
	}
}

func TestBuildResolvesSpec(t *testing.T) {
	cfg := config.Default()
	cfg.MMPipeline = config.PipelineSpec{
		Batcher:    "dedup",
		Planner:    "thrash-guard",
		Evictor:    "none",
		Prefetcher: "sequential",
	}
	pipe, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := pipe.Batcher.Name(); got != "dedup" {
		t.Fatalf("batcher = %q", got)
	}
	if got := pipe.Planner.Name(); got != "thrash-guard" {
		t.Fatalf("planner = %q", got)
	}
	if got := pipe.Evictor.Name(); got != "none" {
		t.Fatalf("evictor = %q", got)
	}
	if got := pipe.Prefetch.Name(); got != "sequential" {
		t.Fatalf("prefetcher = %q", got)
	}

	cfg.MMPipeline.Planner = "bogus"
	if _, err := Build(cfg); err == nil {
		t.Fatal("Build with unknown planner succeeded")
	}
}

func TestAccumBatcherRounds(t *testing.T) {
	b, _ := NewBatcher("accumulate", config.Default())
	if b.Open() {
		t.Fatal("fresh batcher is open")
	}
	if !b.Add(3) {
		t.Fatal("first Add did not open the round")
	}
	if b.Add(7) || b.Add(3) {
		t.Fatal("later Adds re-opened the round")
	}
	if !b.Open() {
		t.Fatal("batcher not open after Add")
	}
	got := b.Close()
	want := []memunits.BlockNum{3, 7, 3}
	if len(got) != len(want) {
		t.Fatalf("batch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v, want %v", got, want)
		}
	}
	if b.Open() {
		t.Fatal("batcher still open after Close")
	}
	if !b.Add(1) {
		t.Fatal("Add after Close did not open a new round")
	}
}

func TestDedupBatcherDropsDuplicates(t *testing.T) {
	b, _ := NewBatcher("dedup", config.Default())
	if !b.Add(3) {
		t.Fatal("first Add did not open the round")
	}
	if b.Add(3) {
		t.Fatal("duplicate Add reported a new round")
	}
	b.Add(7)
	b.Add(7)
	got := b.Close()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("batch = %v, want [3 7]", got)
	}
	// The filter resets between rounds.
	b.Add(3)
	if got := b.Close(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("second round = %v, want [3]", got)
	}
}

func TestThresholdPlannerWriteMigrates(t *testing.T) {
	cfg := config.Default().WithPolicy(config.PolicyAlways)
	cfg.WriteMigrates = true
	cfg.StaticThreshold = 100 // only the write path can trigger below 100
	p, _ := NewPlanner("threshold", cfg)
	a := Access{Count: 1, Mem: policy.MemState{TotalPages: 100, AllocatedPages: 0}}
	if p.ShouldMigrate(a) {
		t.Fatal("read below threshold migrated")
	}
	a.Write = true
	if !p.ShouldMigrate(a) {
		t.Fatal("write did not migrate with WriteMigrates on")
	}
}

func TestThrashGuardPinsChronicThrashers(t *testing.T) {
	// The first-touch baseline migrates on every first access, so the
	// only reason the guard returns false is the round-trip bound.
	cfg := config.Default().WithPolicy(config.PolicyDisabled)
	inner, _ := NewPlanner("threshold", cfg)
	guard, _ := NewPlanner("thrash-guard", cfg)
	a := Access{Count: 1, Mem: policy.MemState{TotalPages: 100}}
	for r := uint64(0); r < ThrashGuardRoundTrips; r++ {
		a.RoundTrips = r
		if !guard.ShouldMigrate(a) {
			t.Fatalf("guard refused below the bound (r=%d)", r)
		}
	}
	a.RoundTrips = ThrashGuardRoundTrips
	if guard.ShouldMigrate(a) {
		t.Fatal("guard migrated at the bound")
	}
	if !inner.ShouldMigrate(a) {
		t.Fatal("inner planner refused — the guard case proves nothing")
	}
}

func TestKindGovernorCreatesConfiguredKind(t *testing.T) {
	cfg := config.Default()
	g, _ := NewPrefetchGovernor("none", cfg)
	pf := g.NewChunk(32)
	leaves := pf.OnFault(5)
	if len(leaves) != 1 || leaves[0] != 5 {
		t.Fatalf("none governor prefetched: %v", leaves)
	}
	if pf.Tree() == nil {
		t.Fatal("chunk prefetcher has no tree")
	}
}

// Stage contract tests: every registered implementation — built-in and
// learned — must satisfy the same behavioural contract, checked
// table-driven over the registry so a new registration is tested the
// moment it exists.

// contractAccessSeq generates a fixed pseudo-random access sequence
// spanning enough simulated time to close several bandit epochs. The
// generator is self-contained so the sequence is identical on every
// run.
func contractAccessSeq(n int) []Access {
	s := uint64(0x123456789)
	next := func() uint64 { s ^= s << 13; s ^= s >> 7; s ^= s << 17; return s }
	seq := make([]Access, 0, n)
	var now sim.Cycle
	for i := 0; i < n; i++ {
		now += sim.Cycle(next() % 50_000)
		seq = append(seq, Access{
			Block:      memunits.BlockNum(next() % 512),
			Write:      next()%4 == 0,
			Count:      next()%64 + 1,
			RoundTrips: next() % 6,
			Mem: policy.MemState{
				AllocatedPages: next() % 1000,
				TotalPages:     1000,
				Oversubscribed: next()%2 == 0,
			},
			Now: now,
		})
	}
	return seq
}

func TestPlannerContractDeterministicReplay(t *testing.T) {
	// Two fresh instances of every registered planner fed the same
	// access sequence must make identical decisions — the planner-level
	// core of the repo's byte-identical determinism guarantee. The
	// sequence spans ~250M cycles so the learned planners cross many
	// epoch boundaries and exploration draws.
	cfg := config.Default().WithPolicy(config.PolicyAdaptive)
	seq := contractAccessSeq(5000)
	for _, name := range PlannerNames() {
		a, err := NewPlanner(name, cfg)
		if err != nil {
			t.Fatalf("NewPlanner(%s): %v", name, err)
		}
		b, _ := NewPlanner(name, cfg)
		if a.Name() != name {
			t.Fatalf("planner %q round-trips as %q", name, a.Name())
		}
		for i, acc := range seq {
			if a.ShouldMigrate(acc) != b.ShouldMigrate(acc) {
				t.Fatalf("planner %s diverged from its twin at access %d", name, i)
			}
		}
	}
}

func TestPlannerContractSeedChangesLearnedDecisions(t *testing.T) {
	// The learned planners must actually consume the seed: two seeds
	// giving identical decision sequences over 5000 varied accesses
	// would mean the "seeded" randomness is dead code.
	cfg := config.Default().WithPolicy(config.PolicyAdaptive)
	seq := contractAccessSeq(5000)
	cfg2 := cfg
	cfg2.PolicySeed = cfg.PolicySeed + 1
	p1, _ := NewPlanner("reuse-dist", cfg)
	p2, _ := NewPlanner("reuse-dist", cfg2)
	same := true
	for _, acc := range seq {
		if p1.ShouldMigrate(acc) != p2.ShouldMigrate(acc) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reuse-dist decisions identical under different seeds")
	}
}

func TestReuseDistPlannerOnlyVetoesUnderOversubscription(t *testing.T) {
	// Post-oversubscription reuse-dist is a filter on the threshold
	// decision: it must never migrate a block the static scheme would
	// keep host-side (its exploration draws only fire on
	// threshold-approved blocks).
	cfg := config.Default().WithPolicy(config.PolicyAdaptive)
	rd, _ := NewPlanner("reuse-dist", cfg)
	th, _ := NewPlanner("threshold", cfg)
	for i, acc := range contractAccessSeq(5000) {
		if !acc.Mem.Oversubscribed {
			// Keep the two planners' internal state in sync: reuse-dist
			// mirrors threshold exactly before oversubscription.
			if rd.ShouldMigrate(acc) != th.ShouldMigrate(acc) {
				t.Fatalf("reuse-dist diverged from threshold pre-oversub at access %d", i)
			}
			continue
		}
		if rd.ShouldMigrate(acc) && !th.ShouldMigrate(acc) {
			t.Fatalf("reuse-dist migrated a threshold-vetoed block at access %d", i)
		}
	}
}

func TestBanditPlannerEpsilonZeroMatchesThreshold(t *testing.T) {
	// The decision-level form of the epsilon=0 golden: with exploration
	// off, bandit-ts never leaves arm 0 (the configured ts/p pair), so
	// its decisions are identical to the static threshold planner's
	// even across epoch closes.
	cfg := config.Default().WithPolicy(config.PolicyAdaptive)
	cfg.BanditEpsilonPct = 0
	bp, _ := NewPlanner("bandit-ts", cfg)
	th, _ := NewPlanner("threshold", cfg)
	for i, acc := range contractAccessSeq(5000) {
		if bp.ShouldMigrate(acc) != th.ShouldMigrate(acc) {
			t.Fatalf("bandit-ts(eps=0) diverged from threshold at access %d", i)
		}
	}
}

func TestBanditArmsAnchorAndDedup(t *testing.T) {
	cfg := config.Default().WithPolicy(config.PolicyAdaptive)
	arms := banditArms(cfg)
	if arms[0].ts != cfg.StaticThreshold || arms[0].p != cfg.Penalty {
		t.Fatalf("arm 0 = (%d, %d), want the configured (%d, %d)",
			arms[0].ts, arms[0].p, cfg.StaticThreshold, cfg.Penalty)
	}
	seen := map[[2]uint64]bool{}
	for _, a := range arms {
		k := [2]uint64{a.ts, a.p}
		if seen[k] {
			t.Fatalf("duplicate arm (%d, %d)", a.ts, a.p)
		}
		seen[k] = true
		if a.ts == 0 || a.p == 0 {
			t.Fatalf("arm (%d, %d) has a zero knob", a.ts, a.p)
		}
	}
	// At the degenerate corner every variant collapses toward (1, 1);
	// construction must dedup rather than panic or emit twins.
	cfg.StaticThreshold, cfg.Penalty = 1, 1
	if got := banditArms(cfg); len(got) != 4 {
		t.Fatalf("degenerate arm set has %d arms, want 4", len(got))
	}
}

// emptyHost is an EvictionHost with nothing evictable: the state of a
// driver whose resident units are all pinned or in flight.
type emptyHost struct{ evictions int }

func (h *emptyHost) ChunkCandidates(bool) []evict.Candidate { return nil }
func (h *emptyHost) BlockCandidates(bool) []evict.Candidate { return nil }
func (h *emptyHost) Evict(int, bool)                        { h.evictions++ }

func TestEvictorContractRefusesGracefullyWithoutCandidates(t *testing.T) {
	// Every engine must return false — not panic, not call Evict — when
	// both the strict and relaxed passes come up empty. The driver
	// relies on the false to demote the stalled migration to remote
	// access.
	for _, name := range EvictorNames() {
		for _, gran := range []uint64{memunits.ChunkSize, memunits.BlockSize} {
			cfg := config.Default()
			cfg.EvictionGranularity = gran
			e, err := NewEvictor(name, cfg)
			if err != nil {
				t.Fatalf("NewEvictor(%s): %v", name, err)
			}
			h := &emptyHost{}
			if e.EvictOne(h) {
				t.Fatalf("evictor %s (gran %d) claimed success with no candidates", name, gran)
			}
			if h.evictions != 0 {
				t.Fatalf("evictor %s (gran %d) called Evict with no candidates", name, gran)
			}
		}
	}
}

func TestBatcherContractEmptyCloseIsNoOp(t *testing.T) {
	for _, name := range BatcherNames() {
		b, err := NewBatcher(name, config.Default())
		if err != nil {
			t.Fatalf("NewBatcher(%s): %v", name, err)
		}
		if got := b.Close(); len(got) != 0 {
			t.Fatalf("batcher %s returned %v from an empty Close", name, got)
		}
		if b.Open() {
			t.Fatalf("batcher %s open after an empty Close", name)
		}
		// An empty Close must not have corrupted round tracking.
		if !b.Add(9) {
			t.Fatalf("batcher %s did not open a round after empty Close", name)
		}
		if got := b.Close(); len(got) != 1 || got[0] != 9 {
			t.Fatalf("batcher %s round after empty Close = %v, want [9]", name, got)
		}
	}
}

func TestGovernorContractFaultListsAscendingAndInclusive(t *testing.T) {
	for _, name := range PrefetchGovernorNames() {
		g, err := NewPrefetchGovernor(name, config.Default())
		if err != nil {
			t.Fatalf("NewPrefetchGovernor(%s): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("governor %q round-trips as %q", name, g.Name())
		}
		pf := g.NewChunk(32)
		if pf.Tree() == nil {
			t.Fatalf("governor %s chunk has no tree", name)
		}
		for _, fault := range []int{0, 5, 31} {
			leaves := pf.OnFault(fault)
			if !sort.IntsAreSorted(leaves) {
				t.Fatalf("governor %s OnFault(%d) not ascending: %v", name, fault, leaves)
			}
			found := false
			for _, l := range leaves {
				if l == fault {
					found = true
				}
			}
			if !found {
				t.Fatalf("governor %s OnFault(%d) omitted the faulting block: %v", name, fault, leaves)
			}
		}
	}
}

func TestLearnedStagesPublishMetrics(t *testing.T) {
	cfg := config.Default().WithPolicy(config.PolicyAdaptive)
	for _, name := range []string{"reuse-dist", "bandit-ts"} {
		p, _ := NewPlanner(name, cfg)
		pub, ok := p.(MetricPublisher)
		if !ok {
			t.Fatalf("planner %s does not publish metrics", name)
		}
		for _, acc := range contractAccessSeq(1000) {
			p.ShouldMigrate(acc)
		}
		got := map[string]uint64{}
		pub.PublishMetrics(func(n string, v uint64) { got[n] = v })
		if len(got) == 0 {
			t.Fatalf("planner %s published no metrics", name)
		}
		for n := range got {
			if !strings.HasPrefix(n, "mm.") {
				t.Fatalf("planner %s metric %q not mm-prefixed", name, n)
			}
		}
	}
	g, _ := NewPrefetchGovernor("bandit-pf", cfg)
	pub := g.(MetricPublisher)
	g.NewChunk(32).OnFault(3)
	count := 0
	pub.PublishMetrics(func(n string, v uint64) { count++ })
	if count == 0 {
		t.Fatal("bandit-pf published no metrics")
	}
}

func TestBanditGovernorEpsilonZeroMatchesConfiguredKind(t *testing.T) {
	// Without exploration the governor must pick the configured kind
	// for every chunk and behave identically to the static governor.
	cfg := config.Default()
	cfg.Prefetcher = config.PrefetchSequential
	cfg.BanditEpsilonPct = 0
	bg, _ := NewPrefetchGovernor("bandit-pf", cfg)
	kg, _ := NewPrefetchGovernor("", cfg)
	for chunk := 0; chunk < 8; chunk++ {
		a, b := bg.NewChunk(32), kg.NewChunk(32)
		for _, fault := range []int{1, 30, 2} {
			la, lb := a.OnFault(fault), b.OnFault(fault)
			if len(la) != len(lb) {
				t.Fatalf("chunk %d fault %d: bandit-pf %v vs static %v", chunk, fault, la, lb)
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("chunk %d fault %d: bandit-pf %v vs static %v", chunk, fault, la, lb)
				}
			}
		}
	}
}
