package mm

import (
	"sort"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/policy"
)

func TestDefaultsMatchConfiguration(t *testing.T) {
	cfg := config.Default()
	b, err := NewBatcher("", cfg)
	if err != nil || b.Name() != "accumulate" {
		t.Fatalf("default batcher = %v, %v; want accumulate", b, err)
	}
	p, err := NewPlanner("", cfg)
	if err != nil || p.Name() != "threshold" {
		t.Fatalf("default planner = %v, %v; want threshold", p, err)
	}
	for _, rp := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		cfg.Replacement = rp
		e, err := NewEvictor("", cfg)
		if err != nil || e.Name() != rp.String() {
			t.Fatalf("default evictor under %v = %v, %v", rp, e, err)
		}
	}
	g, err := NewPrefetchGovernor("", cfg)
	if err != nil || g.Name() != "tree" {
		t.Fatalf("default governor = %v, %v; want tree", g, err)
	}
}

func TestUnknownNamesError(t *testing.T) {
	cfg := config.Default()
	if _, err := NewPlanner("nope", cfg); err == nil || !strings.Contains(err.Error(), "unknown migration planner") {
		t.Fatalf("NewPlanner(nope) err = %v", err)
	}
	if _, err := NewBatcher("nope", cfg); err == nil {
		t.Fatal("NewBatcher(nope) succeeded")
	}
	if _, err := NewEvictor("nope", cfg); err == nil {
		t.Fatal("NewEvictor(nope) succeeded")
	}
	if _, err := NewPrefetchGovernor("nope", cfg); err == nil {
		t.Fatal("NewPrefetchGovernor(nope) succeeded")
	}
	// The error names the registered alternatives.
	_, err := NewEvictor("mru", cfg)
	for _, want := range EvictorNames() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
}

func TestNamesAreCaseInsensitiveAndTrimmed(t *testing.T) {
	cfg := config.Default()
	p, err := NewPlanner(" Thrash-Guard ", cfg)
	if err != nil || p.Name() != "thrash-guard" {
		t.Fatalf("NewPlanner(' Thrash-Guard ') = %v, %v", p, err)
	}
}

func TestNameListsAreSorted(t *testing.T) {
	for kind, names := range map[string][]string{
		"batcher":    BatcherNames(),
		"planner":    PlannerNames(),
		"evictor":    EvictorNames(),
		"prefetcher": PrefetchGovernorNames(),
	} {
		if len(names) == 0 {
			t.Fatalf("no registered %ss", kind)
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("%s names not sorted: %v", kind, names)
		}
	}
}

func TestBuildResolvesSpec(t *testing.T) {
	cfg := config.Default()
	cfg.MMPipeline = config.PipelineSpec{
		Batcher:    "dedup",
		Planner:    "thrash-guard",
		Evictor:    "none",
		Prefetcher: "sequential",
	}
	pipe, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := pipe.Batcher.Name(); got != "dedup" {
		t.Fatalf("batcher = %q", got)
	}
	if got := pipe.Planner.Name(); got != "thrash-guard" {
		t.Fatalf("planner = %q", got)
	}
	if got := pipe.Evictor.Name(); got != "none" {
		t.Fatalf("evictor = %q", got)
	}
	if got := pipe.Prefetch.Name(); got != "sequential" {
		t.Fatalf("prefetcher = %q", got)
	}

	cfg.MMPipeline.Planner = "bogus"
	if _, err := Build(cfg); err == nil {
		t.Fatal("Build with unknown planner succeeded")
	}
}

func TestAccumBatcherRounds(t *testing.T) {
	b, _ := NewBatcher("accumulate", config.Default())
	if b.Open() {
		t.Fatal("fresh batcher is open")
	}
	if !b.Add(3) {
		t.Fatal("first Add did not open the round")
	}
	if b.Add(7) || b.Add(3) {
		t.Fatal("later Adds re-opened the round")
	}
	if !b.Open() {
		t.Fatal("batcher not open after Add")
	}
	got := b.Close()
	want := []memunits.BlockNum{3, 7, 3}
	if len(got) != len(want) {
		t.Fatalf("batch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v, want %v", got, want)
		}
	}
	if b.Open() {
		t.Fatal("batcher still open after Close")
	}
	if !b.Add(1) {
		t.Fatal("Add after Close did not open a new round")
	}
}

func TestDedupBatcherDropsDuplicates(t *testing.T) {
	b, _ := NewBatcher("dedup", config.Default())
	if !b.Add(3) {
		t.Fatal("first Add did not open the round")
	}
	if b.Add(3) {
		t.Fatal("duplicate Add reported a new round")
	}
	b.Add(7)
	b.Add(7)
	got := b.Close()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("batch = %v, want [3 7]", got)
	}
	// The filter resets between rounds.
	b.Add(3)
	if got := b.Close(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("second round = %v, want [3]", got)
	}
}

func TestThresholdPlannerWriteMigrates(t *testing.T) {
	cfg := config.Default().WithPolicy(config.PolicyAlways)
	cfg.WriteMigrates = true
	cfg.StaticThreshold = 100 // only the write path can trigger below 100
	p, _ := NewPlanner("threshold", cfg)
	a := Access{Count: 1, Mem: policy.MemState{TotalPages: 100, AllocatedPages: 0}}
	if p.ShouldMigrate(a) {
		t.Fatal("read below threshold migrated")
	}
	a.Write = true
	if !p.ShouldMigrate(a) {
		t.Fatal("write did not migrate with WriteMigrates on")
	}
}

func TestThrashGuardPinsChronicThrashers(t *testing.T) {
	// The first-touch baseline migrates on every first access, so the
	// only reason the guard returns false is the round-trip bound.
	cfg := config.Default().WithPolicy(config.PolicyDisabled)
	inner, _ := NewPlanner("threshold", cfg)
	guard, _ := NewPlanner("thrash-guard", cfg)
	a := Access{Count: 1, Mem: policy.MemState{TotalPages: 100}}
	for r := uint64(0); r < ThrashGuardRoundTrips; r++ {
		a.RoundTrips = r
		if !guard.ShouldMigrate(a) {
			t.Fatalf("guard refused below the bound (r=%d)", r)
		}
	}
	a.RoundTrips = ThrashGuardRoundTrips
	if guard.ShouldMigrate(a) {
		t.Fatal("guard migrated at the bound")
	}
	if !inner.ShouldMigrate(a) {
		t.Fatal("inner planner refused — the guard case proves nothing")
	}
}

func TestKindGovernorCreatesConfiguredKind(t *testing.T) {
	cfg := config.Default()
	g, _ := NewPrefetchGovernor("none", cfg)
	pf := g.NewChunk(32)
	leaves := pf.OnFault(5)
	if len(leaves) != 1 || leaves[0] != 5 {
		t.Fatalf("none governor prefetched: %v", leaves)
	}
	if pf.Tree() == nil {
		t.Fatal("chunk prefetcher has no tree")
	}
}
