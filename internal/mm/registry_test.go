package mm

import (
	"sort"
	"testing"

	"uvmsim/internal/config"
)

// TestRegistryOutputIsStable pins the determinism contract the maporder
// analyzer enforces structurally: every registry output derived from the
// name-keyed maps — the sorted name listings and the "unknown name"
// error that embeds them — must be byte-identical across calls. Map
// iteration order changes per run and per iteration, so repeating the
// calls genuinely exercises the nondeterminism a missing sort would
// reintroduce.
func TestRegistryOutputIsStable(t *testing.T) {
	// Extra registrations so the maps have enough keys for an unsorted
	// iteration to be visibly unstable.
	reg := &registry[FaultBatcher]{kind: "fault batcher", def: newAccumBatcher}
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega", "kappa", "nu"} {
		reg.register(name, func(cfg config.Config) (FaultBatcher, error) {
			return newAccumBatcher(cfg)
		})
	}

	firstNames := reg.names()
	if !sort.StringsAreSorted(firstNames) {
		t.Fatalf("names() not sorted: %v", firstNames)
	}
	_, err := reg.build("nosuch", config.Default())
	if err == nil {
		t.Fatal("expected error for unknown name")
	}
	firstErr := err.Error()

	for i := 0; i < 100; i++ {
		if got := reg.names(); !equal(got, firstNames) {
			t.Fatalf("iteration %d: names() unstable:\n%v\nvs\n%v", i, got, firstNames)
		}
		_, err := reg.build("nosuch", config.Default())
		if err == nil || err.Error() != firstErr {
			t.Fatalf("iteration %d: unknown-name error unstable:\n%q\nvs\n%q", i, err, firstErr)
		}
	}
}

// TestPackageRegistriesSorted covers the package-level listings used in
// CLI error messages and reports.
func TestPackageRegistriesSorted(t *testing.T) {
	for name, names := range map[string]func() []string{
		"BatcherNames":          BatcherNames,
		"PlannerNames":          PlannerNames,
		"EvictorNames":          EvictorNames,
		"PrefetchGovernorNames": PrefetchGovernorNames,
	} {
		if got := names(); !sort.StringsAreSorted(got) {
			t.Errorf("%s() not sorted: %v", name, got)
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
