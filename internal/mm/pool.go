package mm

import (
	"uvmsim/internal/config"
	"uvmsim/internal/counters"
	"uvmsim/internal/sim"
)

// PoolAccess describes one GPU access to a block resident in the CXL
// pooled tier, as seen by the pool controller (internal/cxl) when it
// consults the PoolPolicy stage.
type PoolAccess struct {
	// Block is the pool block number (64KB basic-block granularity,
	// same unit as the driver's residency state).
	Block uint64
	// GPU is the dense id of the accessing GPU.
	GPU int
	// Write reports the access direction.
	Write bool
	// Replicated reports whether the accessing GPU already holds a
	// read-only replica of the block.
	Replicated bool
	// Now is the simulated time of the access. As with MigrationPlanner
	// accesses, any policy state must evolve from the access sequence
	// and configuration only — never wall clock.
	Now sim.Cycle
}

// PoolDecision is the controller action a PoolPolicy selects for one
// pooled-block access.
type PoolDecision int

const (
	// PoolRemote serves the access over the CXL port and leaves the
	// block in the pool.
	PoolRemote PoolDecision = iota
	// PoolReplicate grants the accessing GPU a read-only replica: the
	// block is copied into the GPU's device tier but stays valid in the
	// pool, and any later write from any GPU invalidates every replica.
	// Only meaningful for reads.
	PoolReplicate
	// PoolPromote migrates the block exclusively to the accessing GPU's
	// device tier, removing it from the pool (and invalidating replicas
	// elsewhere).
	PoolPromote
)

// String names the decision.
func (d PoolDecision) String() string {
	switch d {
	case PoolRemote:
		return "remote"
	case PoolReplicate:
		return "replicate"
	case PoolPromote:
		return "promote"
	default:
		return "PoolDecision(?)"
	}
}

// PoolPolicy decides, per GPU access to a pool-resident block, whether
// the block is served remotely, replicated read-only into the accessor,
// or promoted (migrated) to it. The controller bumps the per-GPU
// counter file before consulting the policy, so the counts already
// include the current access. Implementations must be deterministic
// functions of the access sequence, the counter state and their
// configuration.
type PoolPolicy interface {
	// Name identifies the policy (registry key).
	Name() string
	// Decide selects the action for the access given the pool's per-GPU
	// counter file.
	Decide(a PoolAccess, ctrs *counters.PerGPU) PoolDecision
}

// cxlReplPolicy is the default counter-arbitrated policy, implementing
// the SNIPPETS.md cxl_page_controller agreement: a read whose counter
// clears the threshold with no live writers earns a read-only replica;
// a sole writer whose write count exceeds every other GPU's read count
// by the threshold wins a writable (exclusive) promotion; everything
// else stays remote.
type cxlReplPolicy struct {
	threshold uint64
}

func newCXLReplPolicy(cfg config.Config) (PoolPolicy, error) {
	return &cxlReplPolicy{threshold: cfg.CXLThreshold()}, nil
}

func (p *cxlReplPolicy) Name() string { return "cxl-repl" }

func (p *cxlReplPolicy) Decide(a PoolAccess, ctrs *counters.PerGPU) PoolDecision {
	if a.Write {
		if ctrs.WriteWinner(a.Block, a.GPU, p.threshold) {
			return PoolPromote
		}
		return PoolRemote
	}
	if !a.Replicated && ctrs.ReadOnly(a.Block, a.GPU, p.threshold) {
		return PoolReplicate
	}
	return PoolRemote
}

// cxlMigratePolicy is the naive first-touch baseline: every access
// promotes the block to the touching GPU, replicating nothing. It is
// what BENCH_cxl.json compares cxl-repl against — under shared
// read-mostly data it ping-pongs pages between GPUs.
type cxlMigratePolicy struct{}

func newCXLMigratePolicy(config.Config) (PoolPolicy, error) {
	return cxlMigratePolicy{}, nil
}

func (cxlMigratePolicy) Name() string { return "cxl-migrate" }

func (cxlMigratePolicy) Decide(a PoolAccess, _ *counters.PerGPU) PoolDecision {
	return PoolPromote
}

// poolRemotePolicy never moves anything: the pool serves every access
// over the CXL port (the zero-copy-only ablation).
type poolRemotePolicy struct{}

func newPoolRemotePolicy(config.Config) (PoolPolicy, error) {
	return poolRemotePolicy{}, nil
}

func (poolRemotePolicy) Name() string { return "pool-remote" }

func (poolRemotePolicy) Decide(PoolAccess, *counters.PerGPU) PoolDecision {
	return PoolRemote
}

func init() {
	RegisterPoolPolicy("cxl-repl", newCXLReplPolicy)
	RegisterPoolPolicy("cxl-migrate", newCXLMigratePolicy)
	RegisterPoolPolicy("pool-remote", newPoolRemotePolicy)
}
