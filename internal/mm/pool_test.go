package mm

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/counters"
)

func TestPoolPolicyRegistry(t *testing.T) {
	cfg := config.Default()
	names := PoolPolicyNames()
	want := []string{"cxl-migrate", "cxl-repl", "pool-remote"}
	if len(names) != len(want) {
		t.Fatalf("pool policies = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("pool policies = %v, want %v", names, want)
		}
	}
	for _, n := range append(names, "", " CXL-Repl ") {
		p, err := NewPoolPolicy(n, cfg)
		if err != nil {
			t.Fatalf("NewPoolPolicy(%q): %v", n, err)
		}
		if p.Name() == "" {
			t.Fatalf("policy %q has no name", n)
		}
	}
	if p, _ := NewPoolPolicy("", cfg); p.Name() != "cxl-repl" {
		t.Fatalf("default pool policy = %s, want cxl-repl", p.Name())
	}
	if _, err := NewPoolPolicy("nvlink", cfg); err == nil {
		t.Fatal("unknown pool policy accepted")
	}
}

func TestCXLReplPolicyArbitration(t *testing.T) {
	cfg := config.Default()
	cfg.CXLPoolBytes = 1 << 20
	cfg.CXLReadThreshold = 2
	p, err := NewPoolPolicy("cxl-repl", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrs := counters.NewPerGPU(2)

	// Cold read: remote.
	ctrs.NoteRead(0, 0)
	if d := p.Decide(PoolAccess{Block: 0, GPU: 0}, ctrs); d != PoolRemote {
		t.Fatalf("cold read -> %v, want remote", d)
	}
	// Third read clears threshold 2 with no writers: replicate.
	ctrs.NoteRead(0, 0)
	ctrs.NoteRead(0, 0)
	if d := p.Decide(PoolAccess{Block: 0, GPU: 0}, ctrs); d != PoolReplicate {
		t.Fatalf("hot read -> %v, want replicate", d)
	}
	// Already holding a replica: stays remote (no re-grant).
	if d := p.Decide(PoolAccess{Block: 0, GPU: 0, Replicated: true}, ctrs); d != PoolRemote {
		t.Fatalf("replicated read -> %v, want remote", d)
	}
	// A writer appears on block 1 and out-writes GPU 0's reads: promote.
	ctrs.NoteRead(1, 0)
	for i := 0; i < 5; i++ {
		ctrs.NoteWrite(1, 1)
	}
	if d := p.Decide(PoolAccess{Block: 1, GPU: 1, Write: true}, ctrs); d != PoolPromote {
		t.Fatalf("dominant writer -> %v, want promote", d)
	}
	// A write without the margin stays remote.
	ctrs.NoteWrite(2, 0)
	ctrs.NoteRead(2, 1)
	ctrs.NoteRead(2, 1)
	ctrs.NoteRead(2, 1)
	if d := p.Decide(PoolAccess{Block: 2, GPU: 0, Write: true}, ctrs); d != PoolRemote {
		t.Fatalf("marginal writer -> %v, want remote", d)
	}
}

func TestNaivePolicies(t *testing.T) {
	cfg := config.Default()
	ctrs := counters.NewPerGPU(1)
	mig, _ := NewPoolPolicy("cxl-migrate", cfg)
	if d := mig.Decide(PoolAccess{Block: 0, GPU: 0}, ctrs); d != PoolPromote {
		t.Fatalf("cxl-migrate -> %v, want promote", d)
	}
	rem, _ := NewPoolPolicy("pool-remote", cfg)
	if d := rem.Decide(PoolAccess{Block: 0, GPU: 0, Write: true}, ctrs); d != PoolRemote {
		t.Fatalf("pool-remote -> %v, want remote", d)
	}
	for _, d := range []PoolDecision{PoolRemote, PoolReplicate, PoolPromote, PoolDecision(9)} {
		if d.String() == "" {
			t.Fatal("empty decision name")
		}
	}
}
