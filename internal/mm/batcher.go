package mm

import (
	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
)

func init() {
	RegisterBatcher("accumulate", newAccumBatcher)
	RegisterBatcher("dedup", func(config.Config) (FaultBatcher, error) {
		return &dedupBatcher{}, nil
	})
}

func newAccumBatcher(config.Config) (FaultBatcher, error) { return &accumBatcher{}, nil }

// accumBatcher is the default fault batcher: a plain accumulator with a
// spare buffer swapped in at Close so the batch never reallocates in
// steady state. It relies on the driver's merge-on-pending semantics
// for uniqueness: a block only ever faults once per round because later
// accesses join its waiter list instead of re-faulting.
type accumBatcher struct {
	batch, spare []memunits.BlockNum
	open         bool
}

// Name identifies the batcher.
func (a *accumBatcher) Name() string { return "accumulate" }

// Add appends the fault; the first Add of a round opens the batch.
func (a *accumBatcher) Add(b memunits.BlockNum) (opened bool) {
	opened = !a.open
	a.open = true
	a.batch = append(a.batch, b)
	return opened
}

// Close swaps in the spare buffer and returns the accumulated batch.
func (a *accumBatcher) Close() []memunits.BlockNum {
	batch := a.batch
	a.batch, a.spare = a.spare[:0], batch
	a.open = false
	return batch
}

// Open reports whether a batch is accumulating.
func (a *accumBatcher) Open() bool { return a.open }

// dedupBatcher drops duplicate block numbers within the open batch. It
// behaves identically to accumBatcher under the stock driver (which
// never re-faults a pending block) but keeps custom front-ends honest:
// a driver variant that replays faults instead of merging them still
// produces singleton batch entries.
type dedupBatcher struct {
	inner accumBatcher
	seen  map[memunits.BlockNum]struct{}
}

// Name identifies the batcher.
func (d *dedupBatcher) Name() string { return "dedup" }

// Add appends the fault unless the open batch already holds it. A
// duplicate never opens a round: the round it merged into is already
// scheduled.
func (d *dedupBatcher) Add(b memunits.BlockNum) (opened bool) {
	if d.seen == nil {
		d.seen = make(map[memunits.BlockNum]struct{})
	}
	if _, dup := d.seen[b]; dup {
		return false
	}
	d.seen[b] = struct{}{}
	return d.inner.Add(b)
}

// Close returns the deduplicated batch and resets the filter.
func (d *dedupBatcher) Close() []memunits.BlockNum {
	clear(d.seen)
	return d.inner.Close()
}

// Open reports whether a batch is accumulating.
func (d *dedupBatcher) Open() bool { return d.inner.Open() }
