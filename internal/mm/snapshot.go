package mm

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/prefetch"
)

// This file is the pipeline's side of simulator forking (see
// internal/snapshot): which stage configurations a fork can reproduce,
// and how per-chunk prefetch state is duplicated.
//
// A fork rebuilds the pipeline stages fresh from the (possibly
// different) target configuration, so forkability requires that a
// fresh stage at a quiescent point behaves identically to the donor's:
// pure stages trivially, batchers because a drained driver's batch is
// empty, evictors because the built-ins are stateless views over driver
// state. The learned stages (reuse-dist, bandit-ts, bandit-pf) carry
// history that a fresh instance lacks, so they are excluded and runs
// using them fall back to from-scratch execution.

// forkableStages lists, per stage namespace, the registered names whose
// instances a fork may rebuild from configuration. The empty name (the
// config-derived default) resolves to a listed implementation in every
// namespace.
var forkableStages = map[string]map[string]bool{
	"batcher":    {"": true, "accumulate": true, "dedup": true},
	"planner":    {"": true, "threshold": true, "thrash-guard": true},
	"evictor":    {"": true, "lru": true, "lfu": true, "none": true},
	"prefetcher": {"": true, "tree": true, "none": true, "sequential": true},
}

// ForkablePipeline reports whether a driver built from spec can be
// forked at a quiescent point: every stage must be rebuildable from
// configuration alone. A nil error means yes; otherwise the error names
// the offending stage.
func ForkablePipeline(spec config.PipelineSpec) error {
	for _, kv := range [][2]string{
		{"batcher", spec.Batcher}, {"planner", spec.Planner},
		{"evictor", spec.Evictor}, {"prefetcher", spec.Prefetcher},
	} {
		if !forkableStages[kv[0]][canon(kv[1])] {
			return fmt.Errorf("mm: %s %q carries state a fork cannot rebuild", kv[0], kv[1])
		}
	}
	return nil
}

// CloneChunkPrefetcher deep-copies per-chunk prefetch state for a fork.
// ok is false when the implementation is not clonable (a learned
// metered chunk), in which case the driver cannot be forked.
func CloneChunkPrefetcher(p ChunkPrefetcher) (ChunkPrefetcher, bool) {
	switch c := p.(type) {
	case *prefetch.Chunk:
		return c.Clone(), true
	case interface{ CloneChunkPrefetcher() ChunkPrefetcher }:
		return c.CloneChunkPrefetcher(), true
	}
	return nil, false
}
