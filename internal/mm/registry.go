package mm

import (
	"fmt"
	"sort"
	"strings"

	"uvmsim/internal/config"
)

// Factory constructs one pipeline stage for a driver from its
// configuration. Factories must return a fresh instance per call —
// stateful stages (batchers) are never shared between drivers.
type Factory[T any] func(cfg config.Config) (T, error)

// registry is one name-keyed stage namespace.
type registry[T any] struct {
	kind      string
	factories map[string]Factory[T]
	// def builds the stage when no name is given: the built-in
	// behaviour derived from the enum fields of the configuration.
	def Factory[T]
}

func (r *registry[T]) register(name string, f Factory[T]) {
	name = canon(name)
	if name == "" {
		panic(fmt.Sprintf("mm: empty %s name", r.kind))
	}
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("mm: duplicate %s %q", r.kind, name))
	}
	if r.factories == nil {
		r.factories = make(map[string]Factory[T])
	}
	r.factories[name] = f
}

func (r *registry[T]) build(name string, cfg config.Config) (T, error) {
	name = canon(name)
	if name == "" {
		return r.def(cfg)
	}
	f, ok := r.factories[name]
	if !ok {
		var zero T
		return zero, fmt.Errorf("mm: unknown %s %q (want one of %s)",
			r.kind, name, strings.Join(r.names(), ", "))
	}
	return f(cfg)
}

func (r *registry[T]) names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// canon normalizes a registry key: lower-case, trimmed.
func canon(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

var (
	batchers   = &registry[FaultBatcher]{kind: "fault batcher", def: newAccumBatcher}
	planners   = &registry[MigrationPlanner]{kind: "migration planner", def: newThresholdPlanner}
	evictors   = &registry[EvictionEngine]{kind: "eviction engine", def: newConfiguredEvictor}
	prefetches = &registry[PrefetchGovernor]{kind: "prefetch governor", def: newConfiguredGovernor}
	pools      = &registry[PoolPolicy]{kind: "pool policy", def: newCXLReplPolicy}
)

// RegisterBatcher adds a FaultBatcher factory under name. Panics on
// duplicates; call from package init.
func RegisterBatcher(name string, f Factory[FaultBatcher]) { batchers.register(name, f) }

// RegisterPlanner adds a MigrationPlanner factory under name.
func RegisterPlanner(name string, f Factory[MigrationPlanner]) { planners.register(name, f) }

// RegisterEvictor adds an EvictionEngine factory under name.
func RegisterEvictor(name string, f Factory[EvictionEngine]) { evictors.register(name, f) }

// RegisterPrefetchGovernor adds a PrefetchGovernor factory under name.
func RegisterPrefetchGovernor(name string, f Factory[PrefetchGovernor]) {
	prefetches.register(name, f)
}

// NewBatcher builds the named FaultBatcher ("" = default).
func NewBatcher(name string, cfg config.Config) (FaultBatcher, error) {
	return batchers.build(name, cfg)
}

// NewPlanner builds the named MigrationPlanner ("" = default).
func NewPlanner(name string, cfg config.Config) (MigrationPlanner, error) {
	return planners.build(name, cfg)
}

// NewEvictor builds the named EvictionEngine ("" = default).
func NewEvictor(name string, cfg config.Config) (EvictionEngine, error) {
	return evictors.build(name, cfg)
}

// NewPrefetchGovernor builds the named PrefetchGovernor ("" = default).
func NewPrefetchGovernor(name string, cfg config.Config) (PrefetchGovernor, error) {
	return prefetches.build(name, cfg)
}

// BatcherNames lists the registered FaultBatcher names, sorted.
func BatcherNames() []string { return batchers.names() }

// PlannerNames lists the registered MigrationPlanner names, sorted.
func PlannerNames() []string { return planners.names() }

// EvictorNames lists the registered EvictionEngine names, sorted.
func EvictorNames() []string { return evictors.names() }

// PrefetchGovernorNames lists the registered PrefetchGovernor names,
// sorted.
func PrefetchGovernorNames() []string { return prefetches.names() }

// RegisterPoolPolicy adds a PoolPolicy factory under name.
func RegisterPoolPolicy(name string, f Factory[PoolPolicy]) { pools.register(name, f) }

// NewPoolPolicy builds the named PoolPolicy ("" = default cxl-repl).
func NewPoolPolicy(name string, cfg config.Config) (PoolPolicy, error) {
	return pools.build(name, cfg)
}

// PoolPolicyNames lists the registered PoolPolicy names, sorted.
func PoolPolicyNames() []string { return pools.names() }
