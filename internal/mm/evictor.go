package mm

import (
	"uvmsim/internal/config"
	"uvmsim/internal/evict"
	"uvmsim/internal/memunits"
)

func init() {
	RegisterEvictor("lru", func(cfg config.Config) (EvictionEngine, error) {
		return newUnitEngine(config.ReplaceLRU, cfg), nil
	})
	RegisterEvictor("lfu", func(cfg config.Config) (EvictionEngine, error) {
		return newUnitEngine(config.ReplaceLFU, cfg), nil
	})
	RegisterEvictor("none", func(config.Config) (EvictionEngine, error) {
		return refusingEngine{}, nil
	})
}

func newConfiguredEvictor(cfg config.Config) (EvictionEngine, error) {
	return newUnitEngine(cfg.Replacement, cfg), nil
}

func newUnitEngine(kind config.ReplacementPolicy, cfg config.Config) *unitEngine {
	return &unitEngine{
		replace: evict.New(kind),
		blocks:  cfg.EvictionGranularity == memunits.BlockSize,
	}
}

// unitEngine is the default eviction engine: it runs the configured
// replacement policy (LRU or counter-driven LFU) over the candidates of
// the configured granularity, first under the strict pinning rules and,
// only when nothing is eligible, under the relaxed rules that guarantee
// forward progress.
type unitEngine struct {
	replace evict.Policy
	blocks  bool
}

// Name returns the replacement policy name ("LRU", "LFU"); it keys the
// per-policy selection metrics.
func (e *unitEngine) Name() string { return e.replace.Name() }

// EvictOne selects and evicts one unit: strict pass first, relaxed pass
// as the forward-progress fallback.
func (e *unitEngine) EvictOne(h EvictionHost) bool {
	collect := h.ChunkCandidates
	if e.blocks {
		collect = h.BlockCandidates
	}
	strict := true
	cands := collect(true)
	idx, ok := e.replace.SelectVictim(cands)
	if !ok {
		strict = false
		cands = collect(false)
		idx, ok = e.replace.SelectVictim(cands)
	}
	if !ok {
		return false
	}
	h.Evict(idx, strict)
	return true
}

// refusingEngine never evicts: it models a driver without replacement,
// where capacity misses past the first fill degrade to remote access
// instead of recycling device memory. It doubles as the canonical
// exercise of the driver's demotion fallback (a stalled migration with
// nothing in flight is re-served remotely rather than hanging).
type refusingEngine struct{}

// Name identifies the engine.
func (refusingEngine) Name() string { return "none" }

// EvictOne always refuses.
func (refusingEngine) EvictOne(EvictionHost) bool { return false }
