package mm

import (
	"uvmsim/internal/config"
	"uvmsim/internal/prefetch"
)

func init() {
	for _, k := range []config.PrefetcherKind{
		config.PrefetchTree, config.PrefetchNone, config.PrefetchSequential,
	} {
		kind := k
		RegisterPrefetchGovernor(canon(kind.String()), func(config.Config) (PrefetchGovernor, error) {
			return kindGovernor{kind: kind}, nil
		})
	}
}

func newConfiguredGovernor(cfg config.Config) (PrefetchGovernor, error) {
	return kindGovernor{kind: cfg.Prefetcher}, nil
}

// kindGovernor adapts the built-in prefetcher kinds (tree, none,
// sequential) to the PrefetchGovernor seam: each chunk gets a
// prefetch.Chunk of the selected kind.
type kindGovernor struct {
	kind config.PrefetcherKind
}

// Name identifies the governor.
func (g kindGovernor) Name() string { return canon(g.kind.String()) }

// NewChunk returns per-chunk prefetch state of the configured kind.
func (g kindGovernor) NewChunk(nBlocks int) ChunkPrefetcher {
	return prefetch.NewChunk(g.kind, nBlocks)
}
