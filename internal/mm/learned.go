package mm

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/learn"
	"uvmsim/internal/policy"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/satmath"
	"uvmsim/internal/sim"
)

// This file holds the learned pipeline stages: planners and a prefetch
// governor whose decisions adapt online to the fault stream. They are
// deterministic by construction — state evolves only from the Access
// sequence and Config.PolicySeed (see internal/learn) — so they ride
// the repository's byte-identical reproducibility guarantee unchanged.

func init() {
	RegisterPlanner("reuse-dist", newReuseDistPlanner)
	RegisterPlanner("bandit-ts", newBanditPlanner)
	RegisterPrefetchGovernor("bandit-pf", newBanditGovernor)
}

// Seed salts separate the draw streams of the learned stages: a run
// composing several learned stages under one PolicySeed must not have
// them consume correlated randomness. XOR with PolicySeed can yield
// zero; learn.NewRNG remaps that to a fixed constant.
const (
	seedSaltReuse  = 0x7265757365646973 // "reusedis"
	seedSaltBandit = 0x62616e6469747473 // "banditts"
	seedSaltPF     = 0x62616e6469747066 // "banditpf"
)

// Reuse-distance planner tuning. The window covers the last 256 planner
// misses; a block re-missing within migrateBelow effective distance
// (reuse distance scaled by its thrash history) migrates, everything
// else stays host-side except a seeded 1-in-exploreOneIn admission that
// keeps the estimator from starving cold-but-hot-tomorrow blocks.
const (
	reuseWindow       = 256
	reuseMigrateBelow = 32
	reuseExploreOneIn = 512
)

func newReuseDistPlanner(cfg config.Config) (MigrationPlanner, error) {
	return &reuseDistPlanner{
		est:           learn.NewReuseEstimator(reuseWindow),
		dec:           policy.NewDecider(cfg),
		rng:           learn.NewRNG(cfg.PolicySeed ^ seedSaltReuse),
		writeMigrates: cfg.WriteMigrates,
	}, nil
}

// reuseDistPlanner migrates only blocks whose estimated reuse beats the
// migration round-trip cost. Planner calls are exactly the miss stream
// (resident blocks take the fast path and never reach the planner), so
// the estimator's touch distance is "misses since this block last
// missed": short distances mark blocks that keep paying remote latency
// and would amortize a migration, long or unknown distances mark blocks
// cheaper to serve remotely than to thrash through device memory.
//
// Before oversubscription there is nothing to ration and the planner
// defers to the configured threshold scheme; the learned rule engages
// only once capacity pressure makes migration a gamble.
type reuseDistPlanner struct {
	est           *learn.ReuseEstimator
	dec           *policy.Decider
	rng           *learn.RNG
	writeMigrates bool

	decisions  uint64
	windowHits uint64
	migrations uint64
	explores   uint64
}

// Name identifies the planner.
func (p *reuseDistPlanner) Name() string { return "reuse-dist" }

// ShouldMigrate applies the reuse-distance rule.
func (p *reuseDistPlanner) ShouldMigrate(a Access) bool {
	p.decisions++
	dist, known := p.est.Touch(uint64(a.Block))
	if known {
		p.windowHits++
	}
	base := (a.Write && p.writeMigrates) || p.dec.ShouldMigrate(a.Count, a.Mem, a.RoundTrips)
	if !a.Mem.Oversubscribed {
		if base {
			p.migrations++
		}
		return base
	}
	// Post-oversubscription the planner only ever *vetoes*: a block the
	// threshold scheme would keep host-side stays host-side, and a block
	// it would migrate additionally needs a short effective reuse
	// distance to earn the trip. The effective distance scales the
	// observed one by the block's own thrash history — a block already
	// bounced r times must look r+1 times hotter. Saturating arithmetic
	// so an extreme round-trip count can never wrap into eligibility.
	if !base {
		return false
	}
	if known && satmath.Mul(dist, satmath.Add(a.RoundTrips, 1)) <= reuseMigrateBelow {
		p.migrations++
		return true
	}
	// Seeded escape hatch: without it a block absent from the window
	// could never migrate again and the estimator would observe a frozen
	// policy. One admission in reuseExploreOneIn keeps the feedback loop
	// alive; the draw comes from the run's seeded stream.
	if p.rng.Next()%reuseExploreOneIn == 0 {
		p.explores++
		p.migrations++
		return true
	}
	return false
}

// PublishMetrics implements MetricPublisher.
func (p *reuseDistPlanner) PublishMetrics(emit func(name string, value uint64)) {
	emit("mm.reuse_dist.decisions", p.decisions)
	emit("mm.reuse_dist.window_hits", p.windowHits)
	emit("mm.reuse_dist.migrations", p.migrations)
	emit("mm.reuse_dist.explores", p.explores)
}

// defaultBanditEpochCycles is the epoch length when the configuration
// leaves BanditEpochCycles zero: ~1.35ms of simulated time at the
// default clock, long enough to see hundreds of misses per epoch at
// paper fault rates, short enough to adapt within a kernel.
const defaultBanditEpochCycles = 2_000_000

// banditCostScale fixes the cost resolution of the per-epoch reward:
// cost = pressure * scale / elapsed, so epochs of different lengths
// compare on equal footing without losing the integer signal.
const banditCostScale = 1 << 20

// banditArm is one discretized (ts, p) operating point.
type banditArm struct {
	ts, p uint64
	dec   *policy.Decider
}

func newBanditPlanner(cfg config.Config) (MigrationPlanner, error) {
	arms := banditArms(cfg)
	epoch := cfg.BanditEpochCycles
	if epoch == 0 {
		epoch = defaultBanditEpochCycles
	}
	return &banditPlanner{
		arms:          arms,
		bandit:        learn.NewBandit(len(arms), cfg.BanditEpsilonPct, cfg.PolicySeed^seedSaltBandit),
		writeMigrates: cfg.WriteMigrates,
		epochCycles:   sim.Cycle(epoch),
	}, nil
}

// banditArms discretizes the (ts, p) space around the configured
// operating point. Arm 0 is exactly the configured pair — the epsilon=0
// anchor — and the remaining arms double or halve each knob (clamped to
// 1, deduplicated) so the bandit explores one octave in each direction.
func banditArms(cfg config.Config) []banditArm {
	halve := func(v uint64) uint64 {
		if v <= 1 {
			return 1
		}
		return v / 2
	}
	pairs := [][2]uint64{
		{cfg.StaticThreshold, cfg.Penalty},
		{satmath.Mul(cfg.StaticThreshold, 2), cfg.Penalty},
		{halve(cfg.StaticThreshold), cfg.Penalty},
		{cfg.StaticThreshold, satmath.Mul(cfg.Penalty, 2)},
		{satmath.Mul(cfg.StaticThreshold, 2), satmath.Mul(cfg.Penalty, 2)},
		{cfg.StaticThreshold, halve(cfg.Penalty)},
	}
	var arms []banditArm
	for _, pr := range pairs {
		dup := false
		for _, a := range arms {
			if a.ts == pr[0] && a.p == pr[1] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		armCfg := cfg
		armCfg.StaticThreshold, armCfg.Penalty = pr[0], pr[1]
		arms = append(arms, banditArm{ts: pr[0], p: pr[1], dec: policy.NewDecider(armCfg)})
	}
	return arms
}

// banditPlanner tunes the (ts, p) threshold pair online: one bandit arm
// per discretized pair, re-selected once per epoch of simulated time.
// The per-epoch cost is miss pressure — misses plus 4x-weighted
// thrashing re-migrations, normalized by epoch length — so the bandit
// minimizes exactly the interconnect traffic the thresholds exist to
// control. Epochs are measured on Access.Now (simulated cycles), never
// wall clock, and exploration draws from the seeded stream, keeping
// runs bit-reproducible.
//
// With BanditEpsilonPct zero the bandit never leaves arm 0 (see
// learn.Bandit), and arm 0 is the configured (ts, p), so the planner is
// byte-identical to the static threshold planner — pinned by the
// epsilon=0 golden regression in internal/core.
type banditPlanner struct {
	arms          []banditArm
	bandit        *learn.Bandit
	cur           int
	writeMigrates bool

	epochCycles sim.Cycle
	epochStart  sim.Cycle
	started     bool
	misses      uint64 // planner calls this epoch
	thrash      uint64 // re-migrations (RoundTrips > 0) this epoch
	epochs      uint64
}

// Name identifies the planner.
func (b *banditPlanner) Name() string { return "bandit-ts" }

// ShouldMigrate applies the current arm's threshold scheme, closing the
// learning epoch first when it has elapsed.
func (b *banditPlanner) ShouldMigrate(a Access) bool {
	if !b.started {
		b.started = true
		b.epochStart = a.Now
	}
	if a.Now-b.epochStart >= b.epochCycles {
		b.closeEpoch(a.Now)
	}
	b.misses++
	m := (a.Write && b.writeMigrates) || b.arms[b.cur].dec.ShouldMigrate(a.Count, a.Mem, a.RoundTrips)
	if m && a.RoundTrips > 0 {
		b.thrash++
	}
	return m
}

// closeEpoch charges the elapsed epoch to the current arm and selects
// the next one.
func (b *banditPlanner) closeEpoch(now sim.Cycle) {
	elapsed := uint64(now - b.epochStart)
	pressure := satmath.Add(b.misses, satmath.Mul(4, b.thrash))
	cost := satmath.Mul(pressure, banditCostScale) / elapsed
	b.bandit.Reward(b.cur, cost, 1)
	b.cur = b.bandit.Select()
	b.epochStart = now
	b.misses, b.thrash = 0, 0
	b.epochs++
}

// PublishMetrics implements MetricPublisher.
func (b *banditPlanner) PublishMetrics(emit func(name string, value uint64)) {
	emit("mm.bandit_ts.epochs", b.epochs)
	emit("mm.bandit_ts.explores", b.bandit.Explores())
	emit("mm.bandit_ts.current_arm", uint64(b.cur))
	for i, a := range b.arms {
		emit(fmt.Sprintf("mm.bandit_ts.arm.%d.ts%d_p%d.pulls", i, a.ts, a.p), b.bandit.Pulls(i))
	}
}

func newBanditGovernor(cfg config.Config) (PrefetchGovernor, error) {
	// The configured kind is arm 0 so that an unexplored (or epsilon=0)
	// governor reproduces the static configuration exactly.
	kinds := []config.PrefetcherKind{cfg.Prefetcher}
	for _, k := range []config.PrefetcherKind{
		config.PrefetchTree, config.PrefetchSequential, config.PrefetchNone,
	} {
		if k != cfg.Prefetcher {
			kinds = append(kinds, k)
		}
	}
	return &banditGovernor{
		kinds:  kinds,
		bandit: learn.NewBandit(len(kinds), cfg.BanditEpsilonPct, cfg.PolicySeed^seedSaltPF),
	}, nil
}

// banditGovernor selects the prefetcher kind per 2MB chunk with a
// bandit: each chunk creation pulls an arm, and every far fault the
// chunk later takes charges that arm one unit of cost. The mean cost is
// therefore faults-per-chunk — the governor learns which neighbourhood
// grouping keeps chunks from faulting repeatedly. Arm 0 is the
// configured kind, so without exploration the governor is the static
// kind governor.
type banditGovernor struct {
	kinds  []config.PrefetcherKind
	bandit *learn.Bandit
	chunks uint64
}

// Name identifies the governor.
func (g *banditGovernor) Name() string { return "bandit-pf" }

// NewChunk pulls an arm and returns prefetch state of that kind,
// instrumented to charge its faults back to the arm.
func (g *banditGovernor) NewChunk(nBlocks int) ChunkPrefetcher {
	arm := g.bandit.Select()
	g.bandit.Reward(arm, 0, 1)
	g.chunks++
	return &meteredChunk{inner: prefetch.NewChunk(g.kinds[arm], nBlocks), gov: g, arm: arm}
}

// PublishMetrics implements MetricPublisher.
func (g *banditGovernor) PublishMetrics(emit func(name string, value uint64)) {
	emit("mm.bandit_pf.chunks", g.chunks)
	emit("mm.bandit_pf.explores", g.bandit.Explores())
	for i, k := range g.kinds {
		emit("mm.bandit_pf.arm."+canon(k.String())+".pulls", g.bandit.Pulls(i))
	}
}

// meteredChunk wraps a prefetch.Chunk, charging each fault to the
// bandit arm that chose the chunk's kind. The wrapped behaviour is
// otherwise unchanged, so a never-exploring governor is byte-identical
// to the static one.
type meteredChunk struct {
	inner ChunkPrefetcher
	gov   *banditGovernor
	arm   int
}

// OnFault charges the arm and delegates.
func (c *meteredChunk) OnFault(i int) []int {
	c.gov.bandit.Reward(c.arm, 1, 0)
	return c.inner.OnFault(i)
}

// Tree exposes the wrapped chunk's occupancy tree.
func (c *meteredChunk) Tree() *prefetch.Tree { return c.inner.Tree() }
