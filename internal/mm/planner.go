package mm

import (
	"uvmsim/internal/config"
	"uvmsim/internal/policy"
)

func init() {
	RegisterPlanner("threshold", newThresholdPlanner)
	RegisterPlanner("thrash-guard", func(cfg config.Config) (MigrationPlanner, error) {
		inner, err := newThresholdPlanner(cfg)
		if err != nil {
			return nil, err
		}
		return &thrashGuard{inner: inner, bound: ThrashGuardRoundTrips}, nil
	})
}

func newThresholdPlanner(cfg config.Config) (MigrationPlanner, error) {
	return &thresholdPlanner{
		dec:           policy.NewDecider(cfg),
		writeMigrates: cfg.WriteMigrates,
	}, nil
}

// thresholdPlanner is the default planner: the paper's delayed-migration
// threshold schemes (policy.Decider) plus the Volta write-migrates-
// immediately semantics when enabled.
type thresholdPlanner struct {
	dec           *policy.Decider
	writeMigrates bool
}

// Name identifies the planner.
func (p *thresholdPlanner) Name() string { return "threshold" }

// ShouldMigrate applies the configured threshold scheme.
func (p *thresholdPlanner) ShouldMigrate(a Access) bool {
	return (a.Write && p.writeMigrates) || p.dec.ShouldMigrate(a.Count, a.Mem, a.RoundTrips)
}

// ThrashGuardRoundTrips is the round-trip bound of the thrash-guard
// planner: once a block has been evicted and re-migrated this many
// times, the guard pins it host-side for the rest of the run. Three
// round trips is past the point where the paper's adaptive penalty term
// already dominates, so the guard only fires on blocks the threshold
// scheme itself keeps re-admitting.
const ThrashGuardRoundTrips = 3

// thrashGuard hard-pins chronic thrashers: a block whose eviction
// round-trip count reaches the bound is never migrated again, in the
// spirit of the paper's §IV discussion of pinning pages that bounce
// between host and device. All other blocks defer to the inner planner.
// It demonstrates the planner seam: a new heuristic ships through the
// registry without touching the driver core.
type thrashGuard struct {
	inner MigrationPlanner
	bound uint64
}

// Name identifies the planner.
func (p *thrashGuard) Name() string { return "thrash-guard" }

// ShouldMigrate pins chronic thrashers host-side, otherwise delegates.
func (p *thrashGuard) ShouldMigrate(a Access) bool {
	if a.RoundTrips >= p.bound {
		return false
	}
	return p.inner.ShouldMigrate(a)
}
