package uvm

import (
	"math/rand"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/tier"
)

// TestConsistencyDuringRandomTraffic fires randomized access streams at
// the driver under every policy and checks the full state invariants
// both mid-flight (at every quiescent point) and at the end. This is
// the driver's main stress/property test.
func TestConsistencyDuringRandomTraffic(t *testing.T) {
	for _, pol := range config.Policies() {
		for _, gran := range []uint64{memunits.ChunkSize, memunits.BlockSize} {
			pol, gran := pol, gran
			name := pol.String() + "/" + memunits.HumanBytes(gran)
			t.Run(name, func(t *testing.T) {
				r := newRig(t, func(c *config.Config) {
					*c = c.WithPolicy(pol)
					c.DeviceMemBytes = 4 << 20 // 2 chunks: heavy pressure
					c.EvictionGranularity = gran
					c.Penalty = 4
				}, 16<<20)
				rng := rand.New(rand.NewSource(int64(pol)*7 + int64(gran)))
				pages := r.a.UserSize / memunits.PageSize
				pending := 0
				for i := 0; i < 3000; i++ {
					addr := r.a.Base + uint64(rng.Int63n(int64(pages)))*memunits.PageSize +
						uint64(rng.Intn(memunits.PageSize/128))*128
					write := rng.Intn(3) == 0
					if at, ok := r.d.TryFastAccess(addr, write); ok {
						_ = at
					} else {
						pending++
						r.d.Access(addr, write, func() { pending-- })
					}
					if i%97 == 0 {
						// Drain to a quiescent point and check everything.
						r.eng.Run()
						if pending != 0 {
							t.Fatalf("iteration %d: %d accesses never completed", i, pending)
						}
						if err := r.d.CheckConsistency(); err != nil {
							t.Fatalf("iteration %d: %v", i, err)
						}
					}
				}
				r.eng.Run()
				if pending != 0 {
					t.Fatalf("%d accesses never completed", pending)
				}
				if err := r.d.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
				r.d.Finalize()
				if err := r.d.Stats().Validate(); err != nil {
					t.Fatal(err)
				}
				if r.d.ResidentPages() > r.d.Memory().TotalPages() {
					t.Fatal("capacity exceeded")
				}
			})
		}
	}
}

// TestConsistencyCleanDriver verifies the checker accepts a fresh driver
// and one after simple traffic.
func TestConsistencyCleanDriver(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	if err := r.d.CheckConsistency(); err != nil {
		t.Fatalf("fresh driver inconsistent: %v", err)
	}
	r.syncAccess(t, r.a.Base, true)
	if err := r.d.CheckConsistency(); err != nil {
		t.Fatalf("after access: %v", err)
	}
}

// TestConsistencyDetectsCorruption corrupts internal state and expects
// the checker to object — guarding against the checker rotting into a
// no-op.
func TestConsistencyDetectsCorruption(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	r.syncAccess(t, r.a.Base, false)
	// Corrupt: flip residency without fixing the tree or accounting.
	bs := r.d.block(memunits.BlockOf(r.a.Base))
	bs.home = tier.HostIndex
	if err := r.d.CheckConsistency(); err == nil {
		t.Fatal("checker accepted corrupted state")
	}
	bs.home = r.d.devTier
	// Corrupt the chunk counter instead.
	cs := r.d.chunk(memunits.ChunkOf(r.a.Base))
	cs.residentBlocks++
	if err := r.d.CheckConsistency(); err == nil {
		t.Fatal("checker accepted corrupted residentBlocks")
	}
	cs.residentBlocks--
	if err := r.d.CheckConsistency(); err != nil {
		t.Fatalf("restored state still inconsistent: %v", err)
	}
}
