package uvm

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
)

func TestTLBHitMiss(t *testing.T) {
	tl := newTLB(4)
	if tl.lookup(1) {
		t.Fatal("cold lookup hit")
	}
	if !tl.lookup(1) {
		t.Fatal("warm lookup missed")
	}
	if tl.size() != 1 {
		t.Fatalf("size = %d", tl.size())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tl := newTLB(2)
	tl.lookup(1)
	tl.lookup(2)
	tl.lookup(1) // touch 1: 2 becomes LRU
	tl.lookup(3) // evicts 2
	if !tl.lookup(1) {
		t.Fatal("recently used entry evicted")
	}
	if tl.lookup(2) {
		t.Fatal("LRU entry survived")
	}
	if tl.size() != 2 {
		t.Fatalf("size = %d, want cap 2", tl.size())
	}
}

func TestTLBInvalidateRange(t *testing.T) {
	tl := newTLB(16)
	for p := memunits.PageNum(0); p < 8; p++ {
		tl.lookup(p)
	}
	dropped := tl.invalidateRange(2, 4)
	if dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
	for p := memunits.PageNum(0); p < 8; p++ {
		present := tl.idx[p] != 0
		want := p < 2 || p >= 6
		if present != want {
			t.Fatalf("page %d presence = %v, want %v", p, present, want)
		}
	}
	// Re-invalidating is a no-op.
	if tl.invalidateRange(2, 4) != 0 {
		t.Fatal("double invalidate dropped entries")
	}
}

func TestTLBDisabled(t *testing.T) {
	tl := newTLB(0)
	if !tl.lookup(9) {
		t.Fatal("disabled TLB missed")
	}
	if tl.invalidateRange(0, 100) != 0 {
		t.Fatal("disabled TLB dropped entries")
	}
}

// Property: the TLB never exceeds capacity and a lookup immediately
// after another lookup of the same page always hits.
func TestTLBBoundsProperty(t *testing.T) {
	f := func(pages []uint16, capRaw uint8) bool {
		cap := int(capRaw)%64 + 1
		tl := newTLB(cap)
		for _, p := range pages {
			tl.lookup(memunits.PageNum(p))
			if tl.size() > cap {
				return false
			}
			if !tl.lookup(memunits.PageNum(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDriverCountsTranslations(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	r.syncAccess(t, r.a.Base, false) // migrate block 0
	st := r.d.Stats()
	if st.TLBMisses == 0 {
		t.Fatal("no TLB misses recorded")
	}
	// Second access to the same page: hit.
	preHits := st.TLBHits
	r.syncAccess(t, r.a.Base, false)
	if st.TLBHits != preHits+1 {
		t.Fatalf("hits = %d, want %d", st.TLBHits, preHits+1)
	}
}

func TestTLBMissAddsWalkLatency(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	r.syncAccess(t, r.a.Base, false)
	// Hit: DRAM latency only.
	at1, _ := r.d.TryFastAccess(r.a.Base, false)
	hitLat := at1 - r.eng.Now()
	// Miss (different page of the same resident block): +PageWalkLatency.
	at2, _ := r.d.TryFastAccess(r.a.Base+8*memunits.PageSize, false)
	missLat := at2 - r.eng.Now()
	if missLat != hitLat+simCycle(r.d.cfg.PageWalkLatency) {
		t.Fatalf("miss latency %d, want hit %d + walk %d", missLat, hitLat, r.d.cfg.PageWalkLatency)
	}
}

func simCycle(v uint64) uint64 { return v }

func TestEvictionShootsDownTLB(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20
	}, 12<<20)
	touchChunk := func(chunk uint64) {
		for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
			r.syncAccess(t, r.a.Base+chunk*(2<<20)+b*memunits.BlockSize, false)
		}
	}
	touchChunk(0)
	touchChunk(1)
	touchChunk(2) // evicts chunk 0 -> shootdowns
	if r.d.Stats().TLBShootdowns == 0 {
		t.Fatal("eviction produced no shootdowns")
	}
	if err := r.d.Stats().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDriverTLBDisabled(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.TLBEntries = 0 }, 4<<20)
	r.syncAccess(t, r.a.Base, false)
	st := r.d.Stats()
	if st.TLBMisses != 0 {
		t.Fatalf("disabled TLB recorded %d misses", st.TLBMisses)
	}
	if st.TLBHits == 0 {
		t.Fatal("disabled TLB should count everything as hits")
	}
}
