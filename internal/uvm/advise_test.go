package uvm

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
)

func TestAdvicePinHostNeverMigrates(t *testing.T) {
	r := newRig(t, nil, 4<<20) // Disabled policy: would normally migrate at first touch
	r.d.Advise(r.a, AdvicePinHost)
	for i := 0; i < 50; i++ {
		r.syncAccess(t, r.a.Base, i%2 == 0)
	}
	st := r.d.Stats()
	if st.MigratedPages != 0 || st.FarFaults != 0 {
		t.Fatalf("pinned allocation migrated: %s", st.String())
	}
	if st.RemoteAccesses() != 50 {
		t.Fatalf("remote = %d, want 50", st.RemoteAccesses())
	}
}

func TestAdvicePreferHostDelaysMigration(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.StaticThreshold = 4 }, 4<<20)
	r.d.Advise(r.a, AdvicePreferHost)
	// Three reads remote, fourth crosses ts and migrates.
	for i := 0; i < 3; i++ {
		r.syncAccess(t, r.a.Base, false)
	}
	if st := r.d.Stats(); st.RemoteReads != 3 || st.FarFaults != 0 {
		t.Fatalf("before threshold: %s", st.String())
	}
	r.syncAccess(t, r.a.Base, false)
	if st := r.d.Stats(); st.FarFaults != 1 {
		t.Fatalf("after threshold: %s", st.String())
	}
}

func TestAdvicePreferHostWriteMigrates(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		// Even under Adaptive (which normally keeps writes remote), the
		// soft-pin advice uses Volta semantics: writes migrate.
		*c = c.WithPolicy(config.PolicyAdaptive)
		c.StaticThreshold = 1 << 20
	}, 4<<20)
	r.d.Advise(r.a, AdvicePreferHost)
	r.syncAccess(t, r.a.Base, true)
	if st := r.d.Stats(); st.FarFaults != 1 || st.RemoteWrites != 0 {
		t.Fatalf("write under PreferHost: %s", st.String())
	}
}

func TestAdviceScopedToAllocation(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	b := r.space.Alloc("other", 1<<20, false)
	r.d.Advise(r.a, AdvicePinHost)
	// The unadvised allocation migrates normally.
	var fired bool
	r.d.Access(b.Base, false, func() { fired = true })
	r.eng.Run()
	if !fired {
		t.Fatal("access never completed")
	}
	if r.d.Stats().MigratedPages == 0 {
		t.Fatal("unadvised allocation did not migrate")
	}
	if _, ok := r.d.TryFastAccess(b.Base, false); !ok {
		t.Fatal("unadvised allocation not resident")
	}
	if _, ok := r.d.TryFastAccess(r.a.Base, false); ok {
		t.Fatal("pinned allocation resident")
	}
}

func TestAdviseAfterTouchPanics(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	r.syncAccess(t, r.a.Base, false)
	defer func() {
		if recover() == nil {
			t.Error("advising touched allocation did not panic")
		}
	}()
	r.d.Advise(r.a, AdvicePinHost)
}

func TestAdviseValidation(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	for _, fn := range []func(){
		func() { r.d.Advise(nil, AdvicePinHost) },
		func() { r.d.Advise(r.a, Advice(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Advise did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestAdviceStrings(t *testing.T) {
	if AdviceNone.String() != "None" || AdvicePreferHost.String() != "PreferHost" || AdvicePinHost.String() != "PinHost" {
		t.Error("advice names wrong")
	}
}

func TestPinnedAllocationNeverConsumesDeviceMemory(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.DeviceMemBytes = 4 << 20 }, 12<<20)
	r.d.Advise(r.a, AdvicePinHost)
	for b := uint64(0); b < 3*memunits.BlocksPerChunk; b++ {
		r.syncAccess(t, r.a.Base+b*memunits.BlockSize, false)
	}
	if r.d.ResidentPages() != 0 {
		t.Fatalf("pinned run left %d resident pages", r.d.ResidentPages())
	}
	if r.d.Memory().Oversubscribed() {
		t.Fatal("pinned run latched oversubscription")
	}
}
