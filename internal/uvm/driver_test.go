package uvm

import (
	"testing"

	"uvmsim/internal/alloc"
	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/sim"
)

// testRig bundles a driver with its engine and one allocation.
type testRig struct {
	eng   *sim.Engine
	d     *Driver
	space *alloc.Space
	a     *alloc.Allocation
}

func newRig(t *testing.T, mut func(*config.Config), allocBytes uint64) *testRig {
	t.Helper()
	cfg := config.Default()
	cfg.DeviceMemBytes = 8 << 20 // 4 chunks by default
	if mut != nil {
		mut(&cfg)
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(50_000_000)
	space := alloc.NewSpace()
	a := space.Alloc("data", allocBytes, false)
	return &testRig{eng: eng, d: New(eng, cfg, space), space: space, a: a}
}

// syncAccess issues one access and runs the engine until it completes,
// returning the completion cycle.
func (r *testRig) syncAccess(t *testing.T, addr memunits.Addr, write bool) sim.Cycle {
	t.Helper()
	var at sim.Cycle
	fired := false
	r.d.Access(addr, write, func() { fired = true; at = r.eng.Now() })
	r.eng.Run()
	if !fired {
		t.Fatalf("access to %#x never completed", addr)
	}
	return at
}

func TestFirstTouchMigration(t *testing.T) {
	r := newRig(t, nil, 4<<20) // Disabled policy
	start := r.eng.Now()
	at := r.syncAccess(t, r.a.Base, false)
	// Completion must include the fault latency, the 64KB transfer and
	// the DRAM access.
	faultLat := sim.Cycle(r.d.cfg.FarFaultLatencyCycles())
	if at < start+faultLat {
		t.Fatalf("completion %d earlier than fault latency %d", at, faultLat)
	}
	st := r.d.Stats()
	if st.FarFaults != 1 || st.FaultBatches != 1 {
		t.Fatalf("faults=%d batches=%d, want 1,1", st.FarFaults, st.FaultBatches)
	}
	if st.MigratedPages != memunits.PagesPerBlock {
		t.Fatalf("migrated %d pages, want %d", st.MigratedPages, memunits.PagesPerBlock)
	}
	if st.PrefetchedPages != 0 {
		t.Fatalf("first touch prefetched %d pages", st.PrefetchedPages)
	}
	if r.d.ResidentPages() != memunits.PagesPerBlock {
		t.Fatalf("resident %d pages", r.d.ResidentPages())
	}
}

func TestNearAccessAfterMigration(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	r.syncAccess(t, r.a.Base, false)
	before := r.eng.Now()
	at, ok := r.d.TryFastAccess(r.a.Base, false)
	if !ok {
		t.Fatal("resident block not served by fast path")
	}
	if at != before+sim.Cycle(r.d.cfg.DRAMLatency) {
		t.Fatalf("near access completes at %d, want %d", at, before+100)
	}
	if r.d.Stats().NearAccesses == 0 {
		t.Fatal("near access not counted")
	}
}

func TestFastPathMissesNonResident(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	if _, ok := r.d.TryFastAccess(r.a.Base, false); ok {
		t.Fatal("fast path hit for non-resident block")
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	defer func() {
		if recover() == nil {
			t.Error("unmapped access did not panic")
		}
	}()
	r.d.Access(0, false, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	r.d.Access(r.a.Base, false, nil)
}

func TestConcurrentFaultsMergeOnBlock(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	completions := 0
	for i := 0; i < 4; i++ {
		r.d.Access(r.a.Base+uint64(i)*memunits.SectorSize, false, func() { completions++ })
	}
	r.eng.Run()
	if completions != 4 {
		t.Fatalf("completions = %d, want 4", completions)
	}
	st := r.d.Stats()
	if st.FarFaults != 1 {
		t.Fatalf("FarFaults = %d, want 1 (merged)", st.FarFaults)
	}
	if st.MigratedPages != memunits.PagesPerBlock {
		t.Fatalf("migrated %d pages, want one block", st.MigratedPages)
	}
}

func TestBatchingSharesFaultLatency(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	// Two faults to different chunks in the same cycle: one batch.
	r.d.Access(r.a.Base, false, func() {})
	r.d.Access(r.a.Base+2<<20, false, func() {})
	r.eng.Run()
	st := r.d.Stats()
	if st.FarFaults != 2 || st.FaultBatches != 1 {
		t.Fatalf("faults=%d batches=%d, want 2,1", st.FarFaults, st.FaultBatches)
	}
}

func TestTreePrefetchThroughDriver(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	// Sequentially touch each 64KB block of the first chunk; the tree
	// prefetcher must bring blocks in bulk, producing fewer faults than
	// blocks and nonzero prefetched pages.
	for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
		r.syncAccess(t, r.a.Base+b*memunits.BlockSize, false)
	}
	st := r.d.Stats()
	if st.FarFaults >= memunits.BlocksPerChunk {
		t.Fatalf("faults = %d, prefetcher ineffective", st.FarFaults)
	}
	if st.PrefetchedPages == 0 {
		t.Fatal("no prefetched pages")
	}
	if st.MigratedPages != memunits.PagesPerChunk {
		t.Fatalf("migrated %d pages, want full chunk %d", st.MigratedPages, memunits.PagesPerChunk)
	}
}

func TestPrefetchNoneMigratesSingleBlocks(t *testing.T) {
	r := newRig(t, func(c *config.Config) { c.Prefetcher = config.PrefetchNone }, 4<<20)
	for b := uint64(0); b < 8; b++ {
		r.syncAccess(t, r.a.Base+b*memunits.BlockSize, false)
	}
	st := r.d.Stats()
	if st.FarFaults != 8 || st.PrefetchedPages != 0 {
		t.Fatalf("faults=%d prefetched=%d, want 8,0", st.FarFaults, st.PrefetchedPages)
	}
}

func TestAlwaysPolicyDelaysMigration(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		*c = c.WithPolicy(config.PolicyAlways)
		c.StaticThreshold = 4
	}, 4<<20)
	// First three reads stay remote.
	for i := 0; i < 3; i++ {
		r.syncAccess(t, r.a.Base, false)
	}
	st := r.d.Stats()
	if st.RemoteReads != 3 || st.FarFaults != 0 {
		t.Fatalf("remote=%d faults=%d, want 3,0", st.RemoteReads, st.FarFaults)
	}
	// Fourth access crosses ts and migrates.
	r.syncAccess(t, r.a.Base, false)
	st = r.d.Stats()
	if st.FarFaults != 1 {
		t.Fatalf("faults=%d after threshold crossing, want 1", st.FarFaults)
	}
	if st.MigratedPages == 0 {
		t.Fatal("no migration after threshold crossing")
	}
}

func TestWriteMigratesImmediatelyUnderAlways(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		*c = c.WithPolicy(config.PolicyAlways)
		c.StaticThreshold = 64
	}, 4<<20)
	r.syncAccess(t, r.a.Base, true) // first write
	st := r.d.Stats()
	if st.FarFaults != 1 || st.RemoteWrites != 0 {
		t.Fatalf("write did not migrate immediately: faults=%d remoteW=%d", st.FarFaults, st.RemoteWrites)
	}
}

func TestAdaptiveWriteStaysRemoteBelowThreshold(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		*c = c.WithPolicy(config.PolicyAdaptive)
		c.StaticThreshold = 8
		// Pre-fill occupancy so threshold > 1: simulate by allocating
		// memory via another allocation's migration below.
	}, 4<<20)
	// With an empty device the adaptive threshold is 1, so instead force
	// occupancy first: touch a different chunk until resident.
	r.syncAccess(t, r.a.Base+2<<20, false)
	// Occupancy is now 16 pages of 2048: threshold still 1. Write to a
	// fresh block migrates (threshold 1). This documents the boundary:
	// adaptive at low occupancy behaves like first touch even for writes.
	r.syncAccess(t, r.a.Base, true)
	if r.d.Stats().RemoteWrites != 0 {
		t.Fatal("adaptive at low occupancy should migrate writes (td=1)")
	}
}

func TestRemoteWriteUnderAdaptiveOversubscription(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		*c = c.WithPolicy(config.PolicyAdaptive)
		c.StaticThreshold = 8
		c.Penalty = 8
		c.DeviceMemBytes = 4 << 20 // 2 chunks
	}, 12<<20)
	// Fill device memory (2 chunks) and push one block past capacity.
	// The adaptive pre-oversubscription threshold peaks at ts+1 = 9, so
	// ten touches per block guarantee migration regardless of occupancy;
	// the chunk past capacity then forces the first eviction, which
	// latches the oversubscription regime.
	for chunk := uint64(0); chunk < 3; chunk++ {
		for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
			for i := 0; i < 10; i++ {
				r.syncAccess(t, r.a.Base+chunk*(2<<20)+b*memunits.BlockSize, false)
			}
		}
	}
	if !r.d.Memory().Oversubscribed() {
		t.Fatal("oversubscription not latched")
	}
	preW := r.d.Stats().RemoteWrites
	// A write to a never-touched block: td = ts*(r+1)*p = 64, so the
	// write must be served remotely.
	r.syncAccess(t, r.a.Base+5<<20, true)
	if r.d.Stats().RemoteWrites != preW+1 {
		t.Fatal("write under adaptive oversubscription did not stay remote")
	}
}

func TestEvictionAndThrashAccounting(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20 // 2 chunks
	}, 12<<20)
	touchChunk := func(chunk uint64) {
		for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
			r.syncAccess(t, r.a.Base+chunk*(2<<20)+b*memunits.BlockSize, false)
		}
	}
	touchChunk(0)
	touchChunk(1)
	if r.d.Stats().EvictedPages != 0 {
		t.Fatal("eviction before capacity pressure")
	}
	touchChunk(2) // must evict chunk 0 (LRU)
	st := r.d.Stats()
	if st.EvictedPages != memunits.PagesPerChunk {
		t.Fatalf("evicted %d pages, want one chunk", st.EvictedPages)
	}
	if !r.d.Memory().Oversubscribed() {
		t.Fatal("oversubscription not latched")
	}
	if st.ThrashedPages != 0 {
		t.Fatal("thrash counted before any re-migration")
	}
	preMigrated := st.MigratedPages
	touchChunk(0) // re-migrate previously evicted chunk: thrash
	st = r.d.Stats()
	if st.ThrashedPages != st.MigratedPages-preMigrated {
		t.Fatalf("thrashed %d != re-migrated %d", st.ThrashedPages, st.MigratedPages-preMigrated)
	}
	if st.ThrashedPages == 0 {
		t.Fatal("no thrash recorded for re-migration")
	}
	// Clean (read-only) evictions must not write back.
	if st.WrittenBackPages != 0 {
		t.Fatalf("read-only run wrote back %d pages", st.WrittenBackPages)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20
	}, 12<<20)
	touchChunk := func(chunk uint64, write bool) {
		for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
			r.syncAccess(t, r.a.Base+chunk*(2<<20)+b*memunits.BlockSize, write)
		}
	}
	touchChunk(0, true)
	touchChunk(1, true)
	touchChunk(2, true) // evicts dirty chunk
	st := r.d.Stats()
	if st.WrittenBackPages == 0 {
		t.Fatal("dirty eviction did not write back")
	}
	if st.WrittenBackPages > st.EvictedPages {
		t.Fatalf("wb %d > evicted %d", st.WrittenBackPages, st.EvictedPages)
	}
	r.d.Finalize()
	if st.D2HBytes == 0 {
		t.Fatal("no device-to-host bytes despite write-back")
	}
}

func TestLFUKeepsHotChunk(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20
		c.Replacement = config.ReplaceLFU
	}, 12<<20)
	touchChunk := func(chunk uint64) {
		for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
			r.syncAccess(t, r.a.Base+chunk*(2<<20)+b*memunits.BlockSize, false)
		}
	}
	touchChunk(0)
	// Hammer chunk 0 so its counters dwarf chunk 1's.
	for i := 0; i < 50; i++ {
		touchChunk(0)
	}
	touchChunk(1)
	// Re-touch chunk 0 so both chunks are inside the eviction recency
	// guard: victim selection then falls through to pure LFU, which must
	// pick the cold chunk regardless of recency.
	touchChunk(0)
	touchChunk(2) // eviction: LFU must pick cold chunk 1, not hot chunk 0
	// Chunk 0 must still be resident: a fresh access is a near access.
	if _, ok := r.d.TryFastAccess(r.a.Base, false); !ok {
		t.Fatal("LFU evicted the hot chunk")
	}
	if _, ok := r.d.TryFastAccess(r.a.Base+2<<20, false); ok {
		t.Fatal("cold chunk still resident; nothing was evicted?")
	}
}

func TestBlockGranularityEviction(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20
		c.EvictionGranularity = memunits.BlockSize
		c.Prefetcher = config.PrefetchNone
	}, 12<<20)
	// Fill 2 chunks block by block (no prefetch), then one more block.
	for i := uint64(0); i < 2*memunits.BlocksPerChunk; i++ {
		r.syncAccess(t, r.a.Base+i*memunits.BlockSize, false)
	}
	r.syncAccess(t, r.a.Base+4<<20, false)
	st := r.d.Stats()
	if st.EvictedPages != memunits.PagesPerBlock {
		t.Fatalf("evicted %d pages, want one 64KB block", st.EvictedPages)
	}
}

func TestQuiescenceAndValidation(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20
	}, 12<<20)
	for i := uint64(0); i < 3*memunits.BlocksPerChunk; i++ {
		r.syncAccess(t, r.a.Base+i*memunits.BlockSize, false)
	}
	if r.d.PendingWork() {
		t.Fatal("driver reports pending work after quiescence")
	}
	r.d.Finalize()
	if err := r.d.Stats().Validate(); err != nil {
		t.Fatalf("stats invariants violated: %v", err)
	}
	if r.d.ResidentPages() > r.d.Memory().TotalPages() {
		t.Fatal("resident pages exceed capacity")
	}
}

func TestObserverSeesAllKinds(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		*c = c.WithPolicy(config.PolicyAlways)
		c.StaticThreshold = 3
	}, 4<<20)
	kinds := map[AccessKind]int{}
	r.d.SetObserver(func(_ sim.Cycle, _ memunits.Addr, _ bool, k AccessKind) { kinds[k]++ })
	r.syncAccess(t, r.a.Base, false) // remote
	r.syncAccess(t, r.a.Base, false) // remote
	r.syncAccess(t, r.a.Base, false) // crosses ts: fault
	r.syncAccess(t, r.a.Base, false) // near
	if kinds[AccessRemote] != 2 || kinds[AccessFault] != 1 || kinds[AccessNear] != 1 {
		t.Fatalf("observer kinds = %v", kinds)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessNear.String() != "near" || AccessRemote.String() != "remote" || AccessFault.String() != "fault" {
		t.Error("access kind names wrong")
	}
}

func TestRemoteAccessSlowerThanNear(t *testing.T) {
	rRemote := newRig(t, func(c *config.Config) {
		*c = c.WithPolicy(config.PolicyAlways)
		c.StaticThreshold = 1 << 20
	}, 4<<20)
	t0 := rRemote.eng.Now()
	remoteDone := rRemote.syncAccess(t, rRemote.a.Base, false) - t0

	rNear := newRig(t, nil, 4<<20)
	rNear.syncAccess(t, rNear.a.Base, false) // migrate
	start := rNear.eng.Now()
	at, _ := rNear.d.TryFastAccess(rNear.a.Base, false)
	nearLat := at - start
	if remoteDone <= nearLat {
		t.Fatalf("remote access (%d) not slower than near (%d)", remoteDone, nearLat)
	}
}

func TestCountersTrackRoundTrips(t *testing.T) {
	r := newRig(t, func(c *config.Config) {
		c.DeviceMemBytes = 4 << 20
	}, 12<<20)
	touchChunk := func(chunk uint64) {
		for b := uint64(0); b < memunits.BlocksPerChunk; b++ {
			r.syncAccess(t, r.a.Base+chunk*(2<<20)+b*memunits.BlockSize, false)
		}
	}
	touchChunk(0)
	touchChunk(1)
	touchChunk(2) // evicts chunk 0
	firstBlock := memunits.BlockOf(r.a.Base)
	if r.d.Counters().RoundTrips(firstBlock) != 1 {
		t.Fatalf("round trips = %d, want 1", r.d.Counters().RoundTrips(firstBlock))
	}
}
