package uvm

import (
	"testing"

	"uvmsim/internal/alloc"
	"uvmsim/internal/config"
	"uvmsim/internal/memunits"
	"uvmsim/internal/mm"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
)

// newPipelineRig is newRig with explicit pipeline stages (nil stages
// fall back to the configured defaults) — the mock seam of the contract
// tests.
func newPipelineRig(t *testing.T, mut func(*config.Config), allocBytes uint64, pipe mm.Pipeline) *testRig {
	t.Helper()
	cfg := config.Default()
	cfg.DeviceMemBytes = 8 << 20 // 4 chunks by default
	if mut != nil {
		mut(&cfg)
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(50_000_000)
	space := alloc.NewSpace()
	a := space.Alloc("data", allocBytes, false)
	return &testRig{eng: eng, d: NewWithPipeline(eng, cfg, space, pipe), space: space, a: a}
}

// touchAll issues one synchronous read to the first sector of every
// block of the rig's allocation and asserts each one completes.
func touchAll(t *testing.T, r *testRig) int {
	t.Helper()
	n := 0
	for off := uint64(0); off < r.a.Size; off += memunits.BlockSize {
		r.syncAccess(t, r.a.Base+memunits.Addr(off), false)
		n++
	}
	return n
}

// refusingEvictor is a mock EvictionEngine that never frees memory.
type refusingEvictor struct{ calls int }

func (e *refusingEvictor) Name() string                  { return "refusing-mock" }
func (e *refusingEvictor) EvictOne(mm.EvictionHost) bool { e.calls++; return false }

// The central EvictionEngine contract: an engine that refuses to evict
// must degrade stalled migrations to remote accesses — every access
// completes, the driver quiesces (PendingWork false), and the refusal
// surfaces in the remote-access counters rather than as a hang.
func TestRefusingEvictionEngineDegradesToRemote(t *testing.T) {
	ev := &refusingEvictor{}
	// 2 chunks of device memory, an 8-chunk allocation: most blocks can
	// never obtain capacity once the first two chunks fill.
	r := newPipelineRig(t, func(cfg *config.Config) {
		cfg.DeviceMemBytes = 2 * memunits.ChunkSize
	}, 8*memunits.ChunkSize, mm.Pipeline{Evictor: ev})

	touchAll(t, r)

	if r.d.PendingWork() {
		t.Fatal("driver did not quiesce with a refusing eviction engine")
	}
	st := r.d.Stats()
	if st.RemoteReads == 0 {
		t.Fatal("no access degraded to remote")
	}
	if st.MigratedPages == 0 {
		t.Fatal("nothing migrated before memory filled — the refusal path was never under pressure")
	}
	if st.EvictedPages != 0 {
		t.Fatalf("refusing engine evicted %d pages", st.EvictedPages)
	}
	if ev.calls == 0 {
		t.Fatal("eviction engine was never consulted")
	}
	if err := r.d.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent state after demotion: %v", err)
	}
	// The driver must remain usable: resident blocks still serve near.
	if _, ok := r.d.TryFastAccess(r.a.Base, false); !ok {
		t.Fatal("resident block lost after demotions")
	}
}

// The registry route to the same contract: the "none" engine selected
// purely by configuration string, without touching driver construction.
func TestRefusingEvictorByNameDegradesToRemote(t *testing.T) {
	r := newRigWithSpec(t, config.PipelineSpec{Evictor: "none"})
	touchAll(t, r)
	if r.d.PendingWork() {
		t.Fatal("driver did not quiesce")
	}
	if st := r.d.Stats(); st.RemoteReads == 0 || st.EvictedPages != 0 {
		t.Fatalf("remote=%d evicted=%d; want remote>0, evicted=0", st.RemoteReads, st.EvictedPages)
	}
	if err := r.d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func newRigWithSpec(t *testing.T, spec config.PipelineSpec) *testRig {
	t.Helper()
	cfg := config.Default()
	cfg.DeviceMemBytes = 2 * memunits.ChunkSize
	cfg.MMPipeline = spec
	eng := sim.NewEngine()
	eng.SetEventBudget(50_000_000)
	space := alloc.NewSpace()
	a := space.Alloc("data", 8*memunits.ChunkSize, false)
	return &testRig{eng: eng, d: New(eng, cfg, space), space: space, a: a}
}

// denyPlanner is a mock MigrationPlanner that never migrates.
type denyPlanner struct{}

func (denyPlanner) Name() string                 { return "deny-mock" }
func (denyPlanner) ShouldMigrate(mm.Access) bool { return false }

// The MigrationPlanner contract: the planner alone decides migrate vs
// remote — a planner that always refuses turns every access into a
// remote access and nothing ever migrates.
func TestDenyPlannerServesEverythingRemotely(t *testing.T) {
	r := newPipelineRig(t, nil, 4<<20, mm.Pipeline{Planner: denyPlanner{}})
	n := touchAll(t, r)
	st := r.d.Stats()
	if st.MigratedPages != 0 || st.FarFaults != 0 {
		t.Fatalf("migrated=%d faults=%d with a deny planner", st.MigratedPages, st.FarFaults)
	}
	if st.RemoteReads != uint64(n) {
		t.Fatalf("remote reads = %d, want %d", st.RemoteReads, n)
	}
	if r.d.PendingWork() {
		t.Fatal("pending work without any migration")
	}
}

// soloGovernor is a mock PrefetchGovernor whose chunks never group
// neighbours: every fault migrates exactly its own block.
type soloGovernor struct{}

func (soloGovernor) Name() string { return "solo-mock" }
func (soloGovernor) NewChunk(nBlocks int) mm.ChunkPrefetcher {
	return prefetch.NewChunk(config.PrefetchNone, nBlocks)
}

// The PrefetchGovernor contract: migration grouping comes only from the
// governor's chunks, so a single-block governor yields zero prefetched
// pages while demand migration still works.
func TestSoloGovernorDisablesPrefetch(t *testing.T) {
	r := newPipelineRig(t, nil, 4<<20, mm.Pipeline{Prefetch: soloGovernor{}})
	n := touchAll(t, r)
	st := r.d.Stats()
	if st.PrefetchedPages != 0 {
		t.Fatalf("solo governor prefetched %d pages", st.PrefetchedPages)
	}
	if st.MigratedPages != uint64(n)*memunits.PagesPerBlock {
		t.Fatalf("migrated %d pages, want %d", st.MigratedPages, uint64(n)*memunits.PagesPerBlock)
	}
}

// The FaultBatcher contract under the stock driver: the driver never
// re-adds a pending block, so the deduplicating batcher must produce
// exactly the same statistics as the accumulating default.
func TestDedupBatcherMatchesAccumulate(t *testing.T) {
	run := func(name string) *testRig {
		cfg := config.Default().WithPolicy(config.PolicyAdaptive)
		cfg.DeviceMemBytes = 2 * memunits.ChunkSize
		cfg.MMPipeline.Batcher = name
		eng := sim.NewEngine()
		eng.SetEventBudget(50_000_000)
		space := alloc.NewSpace()
		a := space.Alloc("data", 4*memunits.ChunkSize, false)
		r := &testRig{eng: eng, d: New(eng, cfg, space), space: space, a: a}
		// A write-heavy strided pass plus a re-read pass, to exercise
		// batching, eviction and write-back.
		for pass := 0; pass < 3; pass++ {
			for off := uint64(0); off < r.a.Size; off += memunits.BlockSize {
				r.syncAccess(t, r.a.Base+memunits.Addr(off), pass%2 == 0)
			}
		}
		r.d.Finalize()
		return r
	}
	accum := run("accumulate")
	dedup := run("dedup")
	if *accum.d.Stats() != *dedup.d.Stats() {
		t.Fatalf("stats diverged:\naccumulate: %+v\ndedup:      %+v", *accum.d.Stats(), *dedup.d.Stats())
	}
}

// Pipeline() exposes the composed stages, and New fills defaults from
// the configuration.
func TestPipelineIntrospection(t *testing.T) {
	r := newRig(t, nil, 4<<20)
	p := r.d.Pipeline()
	if p.Batcher == nil || p.Planner == nil || p.Evictor == nil || p.Prefetch == nil {
		t.Fatalf("incomplete pipeline: %+v", p)
	}
	if p.Planner.Name() != "threshold" {
		t.Fatalf("default planner = %q", p.Planner.Name())
	}
	// config.Default pairs no migration policy with LRU replacement.
	if p.Evictor.Name() != "LRU" {
		t.Fatalf("default evictor = %q", p.Evictor.Name())
	}
}

// The thrash-guard planner ships through the registry seam: selecting
// it by name changes behaviour (chronic thrashers stop migrating)
// without any driver-core hook.
func TestThrashGuardStopsChronicThrashing(t *testing.T) {
	run := func(planner string) *runTally {
		cfg := config.Default().WithPolicy(config.PolicyDisabled)
		cfg.DeviceMemBytes = 2 * memunits.ChunkSize
		cfg.MMPipeline.Planner = planner
		eng := sim.NewEngine()
		eng.SetEventBudget(200_000_000)
		space := alloc.NewSpace()
		a := space.Alloc("data", 4*memunits.ChunkSize, false)
		r := &testRig{eng: eng, d: New(eng, cfg, space), space: space, a: a}
		// Cyclic passes over 2x capacity under first-touch: the classic
		// thrashing pattern.
		for pass := 0; pass < 6; pass++ {
			for off := uint64(0); off < r.a.Size; off += memunits.BlockSize {
				r.syncAccess(t, r.a.Base+memunits.Addr(off), false)
			}
		}
		st := r.d.Stats()
		return &runTally{thrashed: st.ThrashedPages, remote: st.RemoteReads + st.RemoteWrites}
	}
	base := run("")
	guarded := run("thrash-guard")
	if base.thrashed == 0 {
		t.Fatal("baseline did not thrash — the pattern proves nothing")
	}
	if guarded.thrashed >= base.thrashed {
		t.Fatalf("thrash-guard did not reduce thrashing: %d vs %d", guarded.thrashed, base.thrashed)
	}
	if guarded.remote == 0 {
		t.Fatal("thrash-guard never served pinned blocks remotely")
	}
}

type runTally struct{ thrashed, remote uint64 }
