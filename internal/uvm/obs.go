package uvm

import (
	"fmt"

	"uvmsim/internal/evict"
	"uvmsim/internal/interconnect"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// driverObs bundles the driver's observability handles. The driver holds
// a nil *driverObs when observability is off, so every hook below hides
// behind a single pointer test and the fault/migration/eviction paths
// stay byte-identical with instrumentation disabled. All handles are
// individually nil-safe, so a Run with only a tracer (or only metrics)
// works without further branching.
type driverObs struct {
	tr    *obs.Tracer
	check bool // enforce the no-pinned-victim invariant at selection time

	// selStrict/selRelaxed count victim selections by pass
	// (uvm.evict.selections.<POLICY>.{strict,relaxed}).
	selStrict  obs.Counter
	selRelaxed obs.Counter
	// thrashEvents counts block re-migrations (a previously evicted
	// block coming back), the per-event form of stats.ThrashedPages.
	thrashEvents obs.Counter

	batchSize      *obs.Histogram // faults per batch round
	dmaBlocks      *obs.Histogram // blocks per host-to-device DMA
	prefetchBlocks *obs.Histogram // prefetched blocks per faulting leaf
	victimTrips    *obs.Histogram // max round-trip count of evicted units

	// batchOpenedAt stamps the cycle the pending fault batch opened, so
	// the fault_batch span covers the full handling latency.
	batchOpenedAt sim.Cycle
}

// SetObs attaches (or with a disabled Run detaches) the run's
// observability instruments to the driver. Call before the simulation
// starts; attaching instruments never changes simulated behaviour.
func (d *Driver) SetObs(r *obs.Run) {
	d.o = nil
	if !r.Enabled() {
		return
	}
	o := &driverObs{tr: r.Tr, check: r.CheckEvery > 0}
	if r.Reg != nil {
		pol := d.evictor.Name()
		o.selStrict = r.Reg.Counter("uvm.evict.selections." + pol + ".strict")
		o.selRelaxed = r.Reg.Counter("uvm.evict.selections." + pol + ".relaxed")
		o.thrashEvents = r.Reg.Counter("uvm.thrash.block_remigrations")
		o.batchSize = r.Reg.Histogram("uvm.fault.batch_size")
		o.dmaBlocks = r.Reg.Histogram("uvm.migrate.blocks_per_dma")
		o.prefetchBlocks = r.Reg.Histogram("uvm.prefetch.blocks_per_fault")
		o.victimTrips = r.Reg.Histogram("uvm.evict.victim_round_trips")
		d.publishSnapshots(r.Reg)
		d.link.PublishMetrics(r.Reg)
		d.publishStageMetrics(r.Reg)
	}
	d.o = o
}

// publishStageMetrics registers a provider for every pipeline stage that
// implements mm.MetricPublisher (the learned stages do), exposing their
// internal state — epoch counts, arm pulls, exploration draws — as
// counters read at collection time.
func (d *Driver) publishStageMetrics(reg *obs.Registry) {
	for _, stage := range []any{d.batcher, d.planner, d.evictor, d.pfgov} {
		pub, ok := stage.(mm.MetricPublisher)
		if !ok {
			continue
		}
		reg.RegisterProvider(func(e obs.Emitter) {
			pub.PublishMetrics(func(name string, value uint64) {
				e.Counter(name, value)
			})
		})
	}
}

// publishSnapshots registers the provider exposing the driver's canonical
// counters (the same values stats.Counters reports) plus access-counter
// file and device-memory state. Values are read at collection time only.
func (d *Driver) publishSnapshots(reg *obs.Registry) {
	reg.RegisterProvider(func(e obs.Emitter) {
		st := d.st
		e.Counter("uvm.access.near", st.NearAccesses)
		e.Counter("uvm.access.remote_reads", st.RemoteReads)
		e.Counter("uvm.access.remote_writes", st.RemoteWrites)
		e.Counter("uvm.fault.far", st.FarFaults)
		e.Counter("uvm.fault.batches", st.FaultBatches)
		e.Counter("uvm.migrate.pages", st.MigratedPages)
		e.Counter("uvm.migrate.prefetched_pages", st.PrefetchedPages)
		e.Counter("uvm.migrate.thrashed_pages", st.ThrashedPages)
		e.Counter("uvm.evict.pages", st.EvictedPages)
		e.Counter("uvm.evict.writeback_pages", st.WrittenBackPages)
		e.Counter("uvm.tlb.hits", st.TLBHits)
		e.Counter("uvm.tlb.misses", st.TLBMisses)
		e.Counter("uvm.tlb.shootdowns", st.TLBShootdowns)
		e.Counter("gpu.instructions", st.Instructions)
		e.Counter("gpu.mem_instructions", st.MemInstructions)
		e.Counter("gpu.warps_retired", st.WarpsRetired)
		// Byte totals come from the link directly so they are correct
		// even before Finalize folds them into stats.
		e.Counter("uvm.pcie.h2d_bytes", d.link.Stats(interconnect.HostToDevice).Bytes)
		e.Counter("uvm.pcie.d2h_bytes", d.link.Stats(interconnect.DeviceToHost).Bytes)
		accessHalvings, tripHalvings := d.ctrs.Halvings()
		e.Counter("uvm.counters.total_accesses", d.ctrs.TotalAccesses())
		e.Counter("uvm.counters.halvings_access", accessHalvings)
		e.Counter("uvm.counters.halvings_trips", tripHalvings)
		e.Gauge("uvm.counters.tracked", float64(d.ctrs.Tracked()))
		e.Counter("devmem.total_pages", d.mem.TotalPages())
		e.Counter("devmem.peak_pages", d.mem.PeakPages())
		oversub := uint64(0)
		if d.mem.Oversubscribed() {
			oversub = 1
		}
		e.Counter("devmem.oversubscribed", oversub)
		e.Gauge("devmem.allocated_pages", float64(d.mem.AllocatedPages()))
		e.Gauge("devmem.occupancy", d.mem.Occupancy())
	})
}

// noteVictim enforces the no-pinned-victim invariant and counts the
// selection pass. cand is the winning candidate; strict tells which pass
// chose it. Panics with a cycle-stamped *obs.Violation when the
// replacement policy returned a pinned unit while invariant checking is
// on — that is a policy bug, never a legal outcome.
func (d *Driver) noteVictim(cand evict.Candidate, strict bool) {
	o := d.o
	if o == nil {
		return
	}
	if strict {
		o.selStrict.Inc()
	} else {
		o.selRelaxed.Inc()
	}
	if o.check && cand.Pinned {
		panic(&obs.Violation{
			Cycle: uint64(d.eng.Now()),
			Check: "no-pinned-victim",
			Err: fmt.Errorf("eviction engine %s selected pinned unit %d (strict=%v)",
				d.evictor.Name(), cand.Unit, strict),
		})
	}
}
