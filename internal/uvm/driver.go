// Package uvm implements the Unified Memory driver model: GMMU residency
// tracking, replayable far-fault batching with the 45us handling latency,
// migration over the PCIe link with tree-based prefetching, capacity
// management with LRU/LFU eviction at 2MB or 64KB granularity, remote
// zero-copy access, and the delayed-migration threshold schemes of the
// paper (including the Adaptive dynamic threshold, Equation 1).
//
// The driver is the meeting point of every substrate package: it consumes
// memory transactions from the GPU model and turns them into near
// accesses, remote accesses, or far-faults with migrations and evictions.
//
// Every policy decision is delegated to a staged pipeline of narrow
// interfaces (internal/mm): the MigrationPlanner decides migrate versus
// remote, the FaultBatcher forms fault batches, the PrefetchGovernor
// groups neighbour blocks into migrations, and the EvictionEngine picks
// victims under capacity pressure through the EvictionHost view
// implemented in evictionhost.go. The Driver itself owns only
// page-table state (block/chunk slots, the GMMU TLB, access counters)
// and event sequencing (batch close, migration dispatch and landing,
// the capacity-wait queue). Alternative heuristics plug in by registry
// name via config.PipelineSpec, or programmatically via
// NewWithPipeline, without touching this file.
//
// The per-block and per-chunk state lives in dense slices indexed by
// block/chunk number rather than maps: the managed address space starts
// at the first chunk boundary and stays small and contiguous, so direct
// indexing makes the dominant near-access path a couple of array loads,
// and index-order iteration replaces the map-order-plus-sort dance the
// eviction paths previously needed for determinism.
package uvm

import (
	"fmt"

	"uvmsim/internal/alloc"
	"uvmsim/internal/config"
	"uvmsim/internal/counters"
	"uvmsim/internal/devmem"
	"uvmsim/internal/evict"
	"uvmsim/internal/interconnect"
	"uvmsim/internal/memunits"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
	"uvmsim/internal/policy"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/tier"
)

// AccessKind classifies how an access was served, for trace observers.
type AccessKind int

const (
	// AccessNear was served from resident device memory.
	AccessNear AccessKind = iota
	// AccessRemote was served by zero-copy access to host memory.
	AccessRemote
	// AccessFault raised (or joined) a far-fault and waited for
	// migration.
	AccessFault
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessNear:
		return "near"
	case AccessRemote:
		return "remote"
	case AccessFault:
		return "fault"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// AccessObserver receives every memory transaction the driver serves.
// Trace collection (Figs. 2 and 3) hangs off this hook.
type AccessObserver func(now sim.Cycle, addr memunits.Addr, write bool, kind AccessKind)

// blockState tracks one 64KB basic block. The zero value means "never
// touched": home on the host tier, not pending, no waiters — exactly
// the semantics an absent map entry used to have, which is what lets
// block state live in a plain value slice.
type blockState struct {
	// home is the tier the block's data currently lives on.
	// tier.HostIndex (the zero value) is the backing store — what the
	// old boolean "not resident" meant; any other index is a
	// capacity-bounded tier the SMs reach at local latency.
	home tier.Index
	// pending is true from the moment a fault is raised (or the block is
	// claimed by a prefetch) until its migration lands; accesses merge
	// onto waiters during that window.
	pending bool
	// scheduled marks pending blocks whose migration has been enqueued,
	// so later fault entries in the same batch do not double-migrate.
	scheduled bool
	dirty     bool
	// pendingDirty records a write observed while the block was in
	// flight; applied to dirty when the migration lands.
	pendingDirty bool
	everEvicted  bool
	lastAccess   sim.Cycle
	waiters      []func()
}

// resident reports whether the block lives on a device tier — the fast
// "served at DRAM latency" predicate every access consults first.
//
//sim:hotpath
func (bs *blockState) resident() bool { return bs.home != tier.HostIndex }

// chunkState tracks one 2MB chunk slot of a managed allocation.
type chunkState struct {
	info alloc.ChunkInfo
	pf   mm.ChunkPrefetcher
	// residentBlocks counts blocks currently resident.
	residentBlocks int
	// queuedBlocks counts blocks in enqueued-but-undispatched
	// migrations; inFlightBlocks counts blocks on the wire. Both pin the
	// chunk against standard eviction.
	queuedBlocks   int
	inFlightBlocks int
	lastAccess     sim.Cycle
}

func (cs *chunkState) pinnedStandard() bool { return cs.queuedBlocks > 0 || cs.inFlightBlocks > 0 }

// migration is one queued host-to-device copy of a block set within a
// single chunk.
type migration struct {
	cs     *chunkState
	blocks []memunits.BlockNum
	demand memunits.BlockNum // the faulting block; others are prefetch
	// dispatchedAt stamps when the DMA went on the wire (observability
	// only).
	dispatchedAt sim.Cycle
}

// Driver is the UVM driver model: page-table state, event sequencing,
// and the composed memory-management pipeline.
type Driver struct {
	eng   *sim.Engine
	cfg   config.Config
	space *alloc.Space
	mem   *devmem.Memory
	link  *interconnect.Link
	// topo is the driver's tier topology and devTier the tier this
	// driver's device memory occupies in it — what blockState.home is
	// set to when a migration lands. The classic configuration is the
	// two-tier host+gpu0 pair; richer topologies (CXL pool) are modeled
	// above the driver (internal/cxl) but share the same Index space.
	topo    tier.Topology
	devTier tier.Index
	ctrs    *counters.File
	st      stats.Counters

	// The memory-management pipeline stages (see internal/mm). Each is
	// owned exclusively by this driver.
	batcher mm.FaultBatcher
	planner mm.MigrationPlanner
	evictor mm.EvictionEngine
	pfgov   mm.PrefetchGovernor
	// ehost is the EvictionHost view handed to the eviction engine; it
	// lives on the driver so victim selection allocates nothing.
	ehost evictionHost

	// blockArr is indexed by global block number; entries are values, so
	// a *blockState from block/blockAt must never be held across another
	// block() call — growth moves the array. chunkArr holds pointers
	// (chunkState outlives events via queued migrations) and is indexed
	// by chunk number; nil means not yet materialized.
	blockArr []blockState
	chunkArr []*chunkState

	processBatchFn sim.Event

	// waiting is the FIFO of migrations blocked on device capacity,
	// drained in place through waitHead and compacted between drains.
	waiting  []migration
	waitHead int
	drainFn  func()

	// inFlightTotal counts blocks on the wire across all chunks;
	// wbInFlight counts outstanding dirty write-back transfers. Together
	// they tell drainWaiting whether a stalled migration will ever be
	// retried by a completion event — when both are zero and eviction
	// refuses, the head migration is demoted to remote access instead
	// of hanging the run.
	inFlightTotal int
	wbInFlight    int

	// Free lists recycling the two per-migration allocations of the
	// fault path: block lists (migration.blocks) and waiter lists
	// (blockState.waiters).
	blockListFree [][]memunits.BlockNum
	waiterFree    [][]func()
	// wakeFree recycles the batched-wake records of landMigration (one
	// engine event per block instead of one per waiter).
	wakeFree []*wake

	// Eviction-path scratch, reused across victim selections (see
	// evictionhost.go).
	candScratch  []evict.Candidate
	chunkScratch []*chunkState
	numScratch   []memunits.BlockNum
	ownerScratch []*chunkState

	// advice holds per-allocation placement hints (see advise.go),
	// keyed by allocation ID.
	advice map[int]Advice

	faultLatency sim.Cycle
	gmmuTLB      *tlb
	// mon mirrors policy-relevant decisions to the fork runner's
	// divergence detector (see snapshot.go); nil when detached.
	mon DecisionMonitor
	obs AccessObserver
	// o holds the observability hooks (see obs.go); nil when disabled.
	o         *driverObs
	finalized bool
}

// New creates a driver for the given configuration and address space,
// resolving the memory-management pipeline from cfg.MMPipeline (empty
// spec = the built-in stages).
func New(eng *sim.Engine, cfg config.Config, space *alloc.Space) *Driver {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("uvm: %v", err))
	}
	pipe, err := mm.Build(cfg)
	if err != nil {
		panic(fmt.Sprintf("uvm: %v", err))
	}
	return NewWithPipeline(eng, cfg, space, pipe)
}

// NewWithPipeline creates a driver composed of the given pipeline
// stages. Nil stages fall back to the built-ins derived from cfg. The
// stages become owned by this driver: stateful stages (FaultBatcher)
// must not be shared with another driver.
func NewWithPipeline(eng *sim.Engine, cfg config.Config, space *alloc.Space, pipe mm.Pipeline) *Driver {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("uvm: %v", err))
	}
	fillDefaults(&pipe, cfg)
	topo := tier.TwoTier(cfg.DeviceMemBytes, cfg.DRAMLatency)
	d := &Driver{
		eng:          eng,
		cfg:          cfg,
		space:        space,
		mem:          devmem.New(cfg.DeviceMemBytes),
		link:         interconnect.New(eng, cfg.PCIeBytesPerCycle, cfg.PCIeLatency, cfg.PCIeHeaderBytes, cfg.RemoteWirePenalty),
		topo:         topo,
		devTier:      topo.Devices()[0],
		batcher:      pipe.Batcher,
		planner:      pipe.Planner,
		evictor:      pipe.Evictor,
		pfgov:        pipe.Prefetch,
		ctrs:         counters.New(),
		faultLatency: cfg.FarFaultLatencyCycles(),
		gmmuTLB:      newTLB(cfg.TLBEntries),
	}
	d.ehost.d = d
	d.processBatchFn = d.processBatch
	d.drainFn = func() {
		d.wbInFlight--
		d.drainWaiting()
	}
	return d
}

// fillDefaults replaces nil pipeline stages with the built-ins the
// configuration selects.
func fillDefaults(pipe *mm.Pipeline, cfg config.Config) {
	var err error
	if pipe.Batcher == nil {
		if pipe.Batcher, err = mm.NewBatcher("", cfg); err != nil {
			panic(fmt.Sprintf("uvm: %v", err))
		}
	}
	if pipe.Planner == nil {
		if pipe.Planner, err = mm.NewPlanner("", cfg); err != nil {
			panic(fmt.Sprintf("uvm: %v", err))
		}
	}
	if pipe.Evictor == nil {
		if pipe.Evictor, err = mm.NewEvictor("", cfg); err != nil {
			panic(fmt.Sprintf("uvm: %v", err))
		}
	}
	if pipe.Prefetch == nil {
		if pipe.Prefetch, err = mm.NewPrefetchGovernor("", cfg); err != nil {
			panic(fmt.Sprintf("uvm: %v", err))
		}
	}
}

// translate performs the GMMU TLB lookup for the page containing addr
// and returns the page-walk latency to charge (zero on a hit).
func (d *Driver) translate(addr memunits.Addr) sim.Cycle {
	if d.gmmuTLB.lookup(memunits.PageOf(addr)) {
		d.st.TLBHits++
		return 0
	}
	d.st.TLBMisses++
	return sim.Cycle(d.cfg.PageWalkLatency)
}

// SetObserver installs the access observer (nil to disable).
func (d *Driver) SetObserver(obs AccessObserver) { d.obs = obs }

// Stats returns the driver's counters. Call Finalize first to fold in
// the interconnect byte totals.
func (d *Driver) Stats() *stats.Counters { return &d.st }

// Counters exposes the access-counter file (used by traces and tests).
func (d *Driver) Counters() *counters.File { return d.ctrs }

// Memory exposes the device memory model.
func (d *Driver) Memory() *devmem.Memory { return d.mem }

// Link exposes the interconnect model.
func (d *Driver) Link() *interconnect.Link { return d.link }

// Topology returns the driver's tier topology (the two-tier host+device
// pair for classic configurations) and DeviceTier the index residency
// points at when a block is device-resident.
func (d *Driver) Topology() tier.Topology { return d.topo }

// DeviceTier returns the tier index of this driver's device memory.
func (d *Driver) DeviceTier() tier.Index { return d.devTier }

// Pipeline returns the composed memory-management stages (for
// introspection and tests; the stages remain owned by the driver).
func (d *Driver) Pipeline() mm.Pipeline {
	return mm.Pipeline{Batcher: d.batcher, Planner: d.planner, Evictor: d.evictor, Prefetch: d.pfgov}
}

// Finalize folds interconnect statistics into the counters. Idempotent.
func (d *Driver) Finalize() {
	if d.finalized {
		return
	}
	d.finalized = true
	d.st.H2DBytes = d.link.Stats(interconnect.HostToDevice).Bytes
	d.st.D2HBytes = d.link.Stats(interconnect.DeviceToHost).Bytes
}

// PendingWork reports whether any migrations are queued or in flight —
// used by integration tests to assert clean quiescence.
func (d *Driver) PendingWork() bool {
	if len(d.waiting) > d.waitHead || d.batcher.Open() {
		return true
	}
	for _, cs := range d.chunkArr {
		if cs != nil && (cs.queuedBlocks > 0 || cs.inFlightBlocks > 0) {
			return true
		}
	}
	return false
}

// block returns the state slot for b, growing the array to cover it.
// The pointer is only valid until the next block() call.
func (d *Driver) block(b memunits.BlockNum) *blockState {
	if b >= memunits.BlockNum(len(d.blockArr)) {
		n := uint64(b) + 1
		if m := uint64(2 * len(d.blockArr)); m > n {
			n = m
		}
		grown := make([]blockState, n)
		copy(grown, d.blockArr)
		d.blockArr = grown
	}
	return &d.blockArr[b]
}

// blockAt returns the state slot for b without growing, or nil when the
// array does not cover it (equivalent to a never-touched block).
func (d *Driver) blockAt(b memunits.BlockNum) *blockState {
	if b < memunits.BlockNum(len(d.blockArr)) {
		return &d.blockArr[b]
	}
	return nil
}

// chunk returns the chunk state, materializing it on first touch.
func (d *Driver) chunk(c memunits.ChunkNum) *chunkState {
	if cs := d.chunkAt(c); cs != nil {
		return cs
	}
	_, info, ok := d.space.FindChunk(c)
	if !ok {
		panic(fmt.Sprintf("uvm: access to unallocated chunk %d", c))
	}
	cs := &chunkState{info: info, pf: d.pfgov.NewChunk(int(info.Blocks()))}
	if c >= memunits.ChunkNum(len(d.chunkArr)) {
		n := uint64(c) + 1
		if m := uint64(2 * len(d.chunkArr)); m > n {
			n = m
		}
		grown := make([]*chunkState, n)
		copy(grown, d.chunkArr)
		d.chunkArr = grown
	}
	d.chunkArr[c] = cs
	return cs
}

// chunkAt returns the chunk state or nil when not materialized.
func (d *Driver) chunkAt(c memunits.ChunkNum) *chunkState {
	if c < memunits.ChunkNum(len(d.chunkArr)) {
		return d.chunkArr[c]
	}
	return nil
}

// takeBlockList pops a recycled migration block list with at least the
// given capacity.
func (d *Driver) takeBlockList(capHint int) []memunits.BlockNum {
	if k := len(d.blockListFree); k > 0 {
		l := d.blockListFree[k-1]
		d.blockListFree = d.blockListFree[:k-1]
		return l[:0]
	}
	return make([]memunits.BlockNum, 0, capHint)
}

func (d *Driver) putBlockList(l []memunits.BlockNum) {
	if cap(l) > 0 {
		d.blockListFree = append(d.blockListFree, l[:0])
	}
}

// takeWaiterList pops a recycled waiter list.
func (d *Driver) takeWaiterList() []func() {
	if k := len(d.waiterFree); k > 0 {
		l := d.waiterFree[k-1]
		d.waiterFree = d.waiterFree[:k-1]
		return l
	}
	return make([]func(), 0, 4)
}

func (d *Driver) putWaiterList(l []func()) {
	if cap(l) == 0 {
		return
	}
	for i := range l {
		l[i] = nil // drop closure references before recycling
	}
	d.waiterFree = append(d.waiterFree, l[:0])
}

func (d *Driver) memState() policy.MemState {
	return policy.MemState{
		AllocatedPages: d.mem.AllocatedPages(),
		TotalPages:     d.mem.TotalPages(),
		Oversubscribed: d.mem.Oversubscribed(),
	}
}

// TryFastAccess serves the access synchronously when the block is
// resident in device memory, returning the completion cycle. ok is false
// when the slow path (Access) must be used instead. The fast path exists
// so that the dominant near-access case costs no event-queue traffic.
//
//sim:hotpath
func (d *Driver) TryFastAccess(addr memunits.Addr, write bool) (sim.Cycle, bool) {
	b := memunits.BlockOf(addr)
	bs := d.blockAt(b)
	if bs == nil || !bs.resident() {
		return 0, false
	}
	walk := d.translate(addr)
	d.ctrs.Access(uint64(b))
	now := d.eng.Now()
	bs.lastAccess = now
	if write {
		bs.dirty = true
	}
	if cs := d.chunkAt(memunits.ChunkOf(addr)); cs != nil {
		cs.lastAccess = now
	}
	d.st.NearAccesses++
	if d.obs != nil {
		d.obs(now, addr, write, AccessNear)
	}
	return now + walk + sim.Cycle(d.cfg.DRAMLatency), true
}

// TryFastAccessRun serves a run of sector accesses that all fall in the
// same 64KB block, returning the latest completion cycle. It is exactly
// equivalent to calling TryFastAccess on each address in order — the
// TLB is still walked per sector, in sequence, because sectors of one
// block can span pages and translation order is architectural state —
// but the residency check, counter bumps, recency stamps and stats are
// batched into one pass. ok is false when the block is not resident and
// the caller must fall back to per-sector processing.
//
//sim:hotpath
func (d *Driver) TryFastAccessRun(addrs []memunits.Addr, write bool) (sim.Cycle, bool) {
	b := memunits.BlockOf(addrs[0])
	bs := d.blockAt(b)
	if bs == nil || !bs.resident() {
		return 0, false
	}
	// Sectors arrive sorted, so same-page sectors are consecutive. After
	// the first lookup of a page the entry sits at the LRU front and every
	// further lookup is a guaranteed hit that touch() no-ops, so one
	// translate per page plus a hit-counter bump is exactly equivalent to
	// walking the TLB per sector.
	var maxWalk sim.Cycle
	for i := 0; i < len(addrs); {
		p := memunits.PageOf(addrs[i])
		j := i + 1
		for j < len(addrs) && memunits.PageOf(addrs[j]) == p {
			j++
		}
		if w := d.translate(addrs[i]); w > maxWalk {
			maxWalk = w
		}
		d.st.TLBHits += uint64(j - i - 1)
		i = j
	}
	d.ctrs.AccessRun(uint64(b), uint64(len(addrs)))
	now := d.eng.Now()
	bs.lastAccess = now
	if write {
		bs.dirty = true
	}
	if cs := d.chunkAt(memunits.ChunkOf(addrs[0])); cs != nil {
		cs.lastAccess = now
	}
	d.st.NearAccesses += uint64(len(addrs))
	if d.obs != nil {
		for _, a := range addrs {
			d.obs(now, a, write, AccessNear)
		}
	}
	return now + maxWalk + sim.Cycle(d.cfg.DRAMLatency), true
}

// Access serves one 128B-sector transaction asynchronously; done fires
// when the data is available to the SM. Residency, the migration
// planner and fault batching decide whether this becomes a near access,
// a remote zero-copy access, or a far-fault.
func (d *Driver) Access(addr memunits.Addr, write bool, done func()) {
	if done == nil {
		panic("uvm: nil completion callback")
	}
	owner := d.space.Find(addr)
	if owner == nil {
		panic(fmt.Sprintf("uvm: access to unmapped address %#x", addr))
	}
	if at, ok := d.TryFastAccess(addr, write); ok {
		d.eng.At(at, done)
		return
	}
	b := memunits.BlockOf(addr)
	bs := d.block(b)
	now := d.eng.Now()
	bs.lastAccess = now
	// The translation attempt happens (and is counted) regardless of how
	// the access is ultimately served; only the remote path charges the
	// walk latency explicitly — the far-fault handling latency subsumes
	// it on the fault path.
	walk := d.translate(addr)

	if bs.pending {
		// Migration already underway: merge.
		d.ctrs.Access(uint64(b))
		if write {
			bs.pendingDirty = true
		}
		if bs.waiters == nil {
			bs.waiters = d.takeWaiterList()
		}
		bs.waiters = append(bs.waiters, done)
		if d.obs != nil {
			d.obs(now, addr, write, AccessFault)
		}
		return
	}

	count := d.ctrs.Access(uint64(b))
	var migrate bool
	switch d.adviceFor(owner) {
	case AdvicePinHost:
		// Hard-pinned zero-copy allocation: never migrated.
		migrate = false
		if d.mon != nil {
			d.mon.OnUnforkable("pin-host advice bypasses the planner")
		}
	case AdvicePreferHost:
		// Soft pin: Volta semantics regardless of the global policy.
		migrate = write || count >= d.cfg.StaticThreshold
		if d.mon != nil {
			d.mon.OnUnforkable("prefer-host advice bypasses the planner")
		}
	default:
		a := mm.Access{
			Block:      b,
			Write:      write,
			Count:      count,
			RoundTrips: d.ctrs.RoundTrips(uint64(b)),
			Mem:        d.memState(),
			Now:        now,
		}
		migrate = d.planner.ShouldMigrate(a)
		if d.mon != nil {
			d.mon.OnPlan(a, migrate)
		}
	}
	if !migrate {
		d.remoteAccess(addr, write, walk, done)
		return
	}
	d.raiseFault(b, write, done)
	if d.obs != nil {
		d.obs(now, addr, write, AccessFault)
	}
}

// remoteAccess serves the transaction from host-pinned memory over the
// interconnect. Read data flows host-to-device; write data flows
// device-to-host. The configured remote-access latency is added on top
// of the link's occupancy and initiation latency.
func (d *Driver) remoteAccess(addr memunits.Addr, write bool, walk sim.Cycle, done func()) {
	dir := interconnect.HostToDevice
	if write {
		dir = interconnect.DeviceToHost
		d.st.RemoteWrites++
	} else {
		d.st.RemoteReads++
	}
	if d.obs != nil {
		d.obs(d.eng.Now(), addr, write, AccessRemote)
	}
	finish := d.link.RemoteAccess(dir, memunits.SectorSize, nil)
	d.eng.At(finish+walk+sim.Cycle(d.cfg.RemoteAccessLatency), done)
}

// raiseFault registers a far-fault for block b and adds it to the fault
// batcher, scheduling a processing round when this fault opened a new
// batch. The batch is processed after the fault handling latency,
// modelling the driver walking the fault buffer.
func (d *Driver) raiseFault(b memunits.BlockNum, write bool, done func()) {
	bs := d.block(b)
	bs.pending = true
	if write {
		bs.pendingDirty = true
	}
	if bs.waiters == nil {
		bs.waiters = d.takeWaiterList()
	}
	bs.waiters = append(bs.waiters, done)
	d.st.FarFaults++
	if d.batcher.Add(b) {
		d.st.FaultBatches++
		if d.o != nil {
			d.o.batchOpenedAt = d.eng.Now()
		}
		d.eng.After(d.faultLatency, d.processBatchFn)
	}
}

// processBatch closes the fault batch and runs the prefetch governor
// over every fault accumulated in it, queueing one migration per
// faulting chunk neighbourhood.
func (d *Driver) processBatch() {
	batch := d.batcher.Close()
	if o := d.o; o != nil {
		o.batchSize.Observe(uint64(len(batch)))
		o.tr.Emit(obs.Span{
			Name: "fault_batch", Cat: "fault", TID: obs.TrackFault,
			Start: uint64(o.batchOpenedAt),
			Dur:   uint64(d.eng.Now() - o.batchOpenedAt),
			Value: uint64(len(batch)),
		})
	}
	for _, b := range batch {
		bs := d.block(b)
		if bs.resident() || bs.scheduled {
			// Swept in by an earlier entry's prefetch.
			continue
		}
		cs := d.chunk(memunits.ChunkOfBlock(b))
		first := cs.info.FirstBlock()
		leaves := cs.pf.OnFault(int(b - first))
		blocks := d.takeBlockList(len(leaves))
		for _, leaf := range leaves {
			blk := first + memunits.BlockNum(uint64(leaf))
			ebs := d.block(blk)
			if ebs.resident() || ebs.scheduled {
				// The governor can re-report blocks that are already being
				// handled; skip them.
				continue
			}
			ebs.pending = true
			ebs.scheduled = true
			blocks = append(blocks, blk)
		}
		if len(blocks) == 0 {
			d.putBlockList(blocks)
			continue
		}
		if o := d.o; o != nil && len(blocks) > 1 {
			o.prefetchBlocks.Observe(uint64(len(blocks) - 1))
			o.tr.Emit(obs.Span{
				Name: "prefetch_batch", Cat: "prefetch", TID: obs.TrackPrefetch,
				Start: uint64(d.eng.Now()), Value: uint64(len(blocks) - 1),
			})
		}
		cs.queuedBlocks += len(blocks)
		d.waiting = append(d.waiting, migration{cs: cs, blocks: blocks, demand: b})
	}
	d.drainWaiting()
}

// drainWaiting dispatches queued migrations in FIFO order, evicting as
// needed. When the head migration cannot obtain capacity even after
// eviction it is retried on the next completion event — or, when no
// completion event is outstanding (the eviction engine refused with
// nothing in flight), demoted to remote access so the run degrades
// instead of hanging.
func (d *Driver) drainWaiting() {
	for d.waitHead < len(d.waiting) {
		m := d.waiting[d.waitHead]
		need := uint64(len(m.blocks)) * memunits.PagesPerBlock
		if need > d.mem.TotalPages() {
			panic(fmt.Sprintf("uvm: migration of %d pages exceeds device capacity %d", need, d.mem.TotalPages()))
		}
		stuck := false
		for !d.mem.CanAllocate(need) {
			if !d.evictOne(m.cs) {
				stuck = true
				break
			}
		}
		if stuck {
			if d.inFlightTotal > 0 || d.wbInFlight > 0 {
				break // retried when the in-flight work completes
			}
			// Nothing in flight will ever retry this migration: demote
			// it to remote access and keep draining.
			d.waiting[d.waitHead] = migration{}
			d.waitHead++
			d.demoteMigration(m)
			continue
		}
		d.waiting[d.waitHead] = migration{}
		d.waitHead++
		d.dispatch(m)
	}
	// Compact so appends reuse the backing array and PendingWork can
	// test len alone.
	if d.waitHead > 0 {
		n := copy(d.waiting, d.waiting[d.waitHead:])
		for i := n; i < len(d.waiting); i++ {
			d.waiting[i] = migration{}
		}
		d.waiting = d.waiting[:n]
		d.waitHead = 0
	}
}

// dispatch allocates frames and puts the migration on the wire.
func (d *Driver) dispatch(m migration) {
	pages := uint64(len(m.blocks)) * memunits.PagesPerBlock
	d.mem.Allocate(pages)
	o := d.o
	for _, b := range m.blocks {
		bs := d.block(b)
		d.st.MigratedPages += memunits.PagesPerBlock
		if b != m.demand {
			d.st.PrefetchedPages += memunits.PagesPerBlock
		}
		if bs.everEvicted {
			d.st.ThrashedPages += memunits.PagesPerBlock
			if o != nil {
				o.thrashEvents.Inc()
			}
		}
	}
	m.cs.queuedBlocks -= len(m.blocks)
	m.cs.inFlightBlocks += len(m.blocks)
	d.inFlightTotal += len(m.blocks)
	if o != nil {
		o.dmaBlocks.Observe(uint64(len(m.blocks)))
	}
	m.dispatchedAt = d.eng.Now()
	bytes := uint64(len(m.blocks)) * memunits.BlockSize
	d.link.Transfer(interconnect.HostToDevice, bytes, func() { d.landMigration(m) })
}

// wake is a pooled batched-wake record: one engine event that fires a
// whole waiter list in its original append order. The per-waiter events
// it replaces were scheduled back-to-back (consecutive seqs at one
// cycle, nothing interleaved), so firing the callbacks consecutively
// from one event preserves the exact same execution order.
type wake struct {
	d  *Driver
	ws []func()
	fn sim.Event
}

//sim:hotpath
func (k *wake) fire() {
	d, ws := k.d, k.ws
	k.ws = nil
	d.wakeFree = append(d.wakeFree, k)
	for _, w := range ws {
		w()
	}
	d.putWaiterList(ws)
}

// wakeAll schedules one event that runs every waiter after the DRAM
// access latency, recycling the list once fired.
//
//sim:hotpath
func (d *Driver) wakeAll(ws []func()) {
	var k *wake
	if n := len(d.wakeFree); n > 0 {
		k = d.wakeFree[n-1]
		d.wakeFree = d.wakeFree[:n-1]
	} else {
		//simlint:allow hotalloc -- pool-miss path; each wake object is recycled via wakeFree, so allocations stop once the pool covers peak concurrency
		k = &wake{d: d}
		k.fn = k.fire
	}
	k.ws = ws
	d.eng.After(sim.Cycle(d.cfg.DRAMLatency), k.fn)
}

// landMigration marks the blocks resident and wakes their waiters.
func (d *Driver) landMigration(m migration) {
	now := d.eng.Now()
	for _, b := range m.blocks {
		bs := d.block(b)
		bs.home = d.devTier
		bs.pending = false
		bs.scheduled = false
		bs.dirty = bs.pendingDirty
		bs.pendingDirty = false
		bs.lastAccess = now
		waiters := bs.waiters
		bs.waiters = nil
		if len(waiters) > 0 {
			d.st.NearAccesses += uint64(len(waiters))
			d.wakeAll(waiters)
		} else {
			d.putWaiterList(waiters)
		}
	}
	m.cs.inFlightBlocks -= len(m.blocks)
	d.inFlightTotal -= len(m.blocks)
	m.cs.residentBlocks += len(m.blocks)
	m.cs.lastAccess = now
	if o := d.o; o != nil {
		o.tr.Emit(obs.Span{
			Name: "migrate_dma", Cat: "dma", TID: obs.TrackDMA,
			Start: uint64(m.dispatchedAt), Dur: uint64(now - m.dispatchedAt),
			Value: uint64(len(m.blocks)),
		})
	}
	d.putBlockList(m.blocks)
	d.drainWaiting()
}

// demoteMigration unwinds a migration that can never obtain device
// capacity (the eviction engine refused with no completion event
// outstanding) and re-serves its merged accesses as remote zero-copy
// transactions. The merge does not retain per-waiter direction, so a
// block that observed any write re-serves all of its waiters as remote
// writes; read-only blocks re-serve as remote reads.
//
// This path is unreachable under the built-in eviction engines — their
// relaxed selection pass only refuses when blocks are on the wire, and
// on-the-wire blocks schedule the retry — so stock configurations are
// unaffected. It exists so that partial pipelines (a refusing or
// overly conservative EvictionEngine) degrade to remote access instead
// of deadlocking the simulation.
func (d *Driver) demoteMigration(m migration) {
	m.cs.queuedBlocks -= len(m.blocks)
	first := m.cs.info.FirstBlock()
	tree := m.cs.pf.Tree()
	for _, b := range m.blocks {
		bs := d.block(b)
		bs.pending = false
		bs.scheduled = false
		write := bs.pendingDirty
		bs.pendingDirty = false
		tree.MarkEmpty(int(b - first))
		waiters := bs.waiters
		bs.waiters = nil
		addr := memunits.BlockAddr(b)
		for _, w := range waiters {
			d.remoteAccess(addr, write, 0, w)
		}
		d.putWaiterList(waiters)
	}
	d.putBlockList(m.blocks)
}

// ResidentPages returns the number of device-resident pages (for
// invariant checks).
func (d *Driver) ResidentPages() uint64 { return d.mem.AllocatedPages() }
