package uvm

import (
	"uvmsim/internal/evict"
	"uvmsim/internal/interconnect"
	"uvmsim/internal/memunits"
	"uvmsim/internal/obs"
	"uvmsim/internal/tier"
)

// evictOne frees one eviction unit through the pipeline's eviction
// engine. dest is the chunk currently being migrated into; it is never
// victimized. Returns false when the engine declined to evict right now.
func (d *Driver) evictOne(dest *chunkState) bool {
	d.mem.NoteOversubscribed()
	if d.mon != nil {
		d.mon.OnEvict()
	}
	d.ehost.dest = dest
	ok := d.evictor.EvictOne(&d.ehost)
	d.ehost.dest = nil
	return ok
}

// evictionHost is the driver's implementation of mm.EvictionHost: the
// capacity-management view an EvictionEngine sees. It exposes candidate
// collection at both granularities and applies the engine's choice,
// keeping all residency bookkeeping (TLB shootdowns, counters, tree
// occupancy, write-back) inside the driver. The host is embedded in the
// Driver and reuses its scratch slices, so victim selection allocates
// nothing in steady state.
//
// Candidates returned by ChunkCandidates/BlockCandidates are valid only
// until the next collection call, and an Evict index refers to the most
// recent collection.
type evictionHost struct {
	d *Driver
	// dest is the chunk being migrated into during the current EvictOne
	// call; excluded from candidacy.
	dest *chunkState
	// blockMode records which granularity the last collection used, so
	// Evict applies the choice to the right scratch set.
	blockMode bool
}

// ChunkCandidates collects the 2MB-granularity eviction candidates.
// Strict collection pins chunks with queued or in-flight migrations and
// recently touched chunks (the recency guard); the relaxed pass pins
// only chunks with blocks on the wire, guaranteeing forward progress
// when the FIFO head blocks everything.
func (h *evictionHost) ChunkCandidates(strict bool) []evict.Candidate {
	d := h.d
	h.blockMode = false
	// Index-order iteration keeps the candidate list sorted by unit
	// number, which is what victim selection's determinism relies on.
	cands := d.candScratch[:0]
	states := d.chunkScratch[:0]
	now := d.eng.Now()
	for num, cs := range d.chunkArr {
		if cs == nil || cs.residentBlocks == 0 || cs == h.dest {
			continue
		}
		pinned := cs.inFlightBlocks > 0
		if strict {
			// Freshly landed or recently touched chunks are protected in
			// the strict pass: their counters have not caught up yet and
			// evicting them re-faults the active working set (LFU
			// cold-start). The relaxed pass ignores the guard.
			recent := d.cfg.EvictionRecencyGuard > 0 &&
				now-cs.lastAccess < d.cfg.EvictionRecencyGuard
			pinned = cs.pinnedStandard() || recent
		}
		first := cs.info.FirstBlock()
		n := cs.info.Blocks()
		cands = append(cands, evict.Candidate{
			Unit:       uint64(num),
			LastAccess: cs.lastAccess,
			Score:      d.ctrs.SumCounts(uint64(first), n),
			Dirty:      d.chunkDirty(cs),
			Full:       cs.pf.Tree().Full(),
			Pinned:     pinned,
		})
		states = append(states, cs)
	}
	d.candScratch, d.chunkScratch = cands, states
	return cands
}

// BlockCandidates collects the 64KB-granularity eviction candidates
// (the block-granularity ablation). Only the recency guard pins blocks,
// and only in the strict pass.
func (h *evictionHost) BlockCandidates(strict bool) []evict.Candidate {
	d := h.d
	h.blockMode = true
	now := d.eng.Now()
	cands := d.candScratch[:0]
	nums := d.numScratch[:0]
	owners := d.ownerScratch[:0]
	// Chunk-index order implies ascending block numbers: a chunk's
	// blocks are contiguous, so the candidate list comes out sorted
	// by unit without any extra work.
	for _, cs := range d.chunkArr {
		if cs == nil || cs.residentBlocks == 0 || cs == h.dest {
			continue
		}
		first := cs.info.FirstBlock()
		for b := first; b < first+memunits.BlockNum(cs.info.Blocks()); b++ {
			bs := d.blockAt(b)
			if bs == nil || !bs.resident() {
				continue
			}
			recent := strict && d.cfg.EvictionRecencyGuard > 0 &&
				now-bs.lastAccess < d.cfg.EvictionRecencyGuard
			cands = append(cands, evict.Candidate{
				Unit:       uint64(b),
				LastAccess: bs.lastAccess,
				Score:      d.ctrs.Count(uint64(b)),
				Dirty:      bs.dirty,
				Full:       true,
				Pinned:     recent,
			})
			nums = append(nums, b)
			owners = append(owners, cs)
		}
	}
	d.candScratch, d.numScratch, d.ownerScratch = cands, nums, owners
	return cands
}

// Evict applies the engine's choice: idx indexes the most recent
// collection, strict tells which pass chose it (for the selection
// metrics and the no-pinned-victim invariant).
func (h *evictionHost) Evict(idx int, strict bool) {
	d := h.d
	d.noteVictim(d.candScratch[idx], strict)
	if !h.blockMode {
		d.evictChunk(d.chunkScratch[idx])
		return
	}
	b, cs := d.numScratch[idx], d.ownerScratch[idx]
	bs := d.blockAt(b)
	bs.home = tier.HostIndex
	d.ctrs.NoteEviction(uint64(b))
	bs.everEvicted = true
	d.st.TLBShootdowns += d.gmmuTLB.invalidateRange(memunits.FirstPageOfBlock(b), memunits.PagesPerBlock)
	dirty := uint64(0)
	if bs.dirty {
		dirty = 1
		bs.dirty = false
	}
	cs.residentBlocks--
	cs.pf.Tree().MarkEmpty(int(b - cs.info.FirstBlock()))
	if o := d.o; o != nil {
		o.victimTrips.Observe(d.ctrs.RoundTrips(uint64(b)))
		o.tr.Emit(obs.Span{
			Name: "evict_block", Cat: "evict", TID: obs.TrackEvict,
			Start: uint64(d.eng.Now()), Value: 1,
		})
	}
	d.finishEviction(1, dirty)
}

// chunkDirty reports whether any resident block of the chunk is dirty.
func (d *Driver) chunkDirty(cs *chunkState) bool {
	first := cs.info.FirstBlock()
	for b := first; b < first+memunits.BlockNum(cs.info.Blocks()); b++ {
		if bs := d.blockAt(b); bs != nil && bs.resident() && bs.dirty {
			return true
		}
	}
	return false
}

// evictChunk evicts every resident block of the chunk, writing dirty
// data back over the device-to-host channel.
func (d *Driver) evictChunk(cs *chunkState) {
	first := cs.info.FirstBlock()
	var evictedBlocks, dirtyBlocks uint64
	for b := first; b < first+memunits.BlockNum(cs.info.Blocks()); b++ {
		bs := d.blockAt(b)
		if bs == nil || !bs.resident() {
			continue
		}
		bs.home = tier.HostIndex
		d.ctrs.NoteEviction(uint64(b))
		bs.everEvicted = true
		evictedBlocks++
		if bs.dirty {
			dirtyBlocks++
			bs.dirty = false
		}
		d.st.TLBShootdowns += d.gmmuTLB.invalidateRange(memunits.FirstPageOfBlock(b), memunits.PagesPerBlock)
	}
	if evictedBlocks == 0 {
		panic("uvm: evicting chunk with no resident blocks")
	}
	cs.residentBlocks = 0
	// Rebuild tree occupancy: only pending (queued/in-flight) blocks
	// remain claimed.
	tree := cs.pf.Tree()
	tree.Clear()
	for b := first; b < first+memunits.BlockNum(cs.info.Blocks()); b++ {
		if bs := d.blockAt(b); bs != nil && bs.pending {
			tree.MarkOccupied(int(b - first))
		}
	}
	if o := d.o; o != nil {
		o.victimTrips.Observe(d.ctrs.MaxRoundTrips(uint64(first), uint64(cs.info.Blocks())))
		o.tr.Emit(obs.Span{
			Name: "evict_chunk", Cat: "evict", TID: obs.TrackEvict,
			Start: uint64(d.eng.Now()), Value: evictedBlocks,
		})
	}
	d.finishEviction(evictedBlocks, dirtyBlocks)
}

// finishEviction accounts for evicted blocks and schedules the dirty
// write-back on the device-to-host channel. The write-back completion
// re-drains the capacity-wait queue.
func (d *Driver) finishEviction(evictedBlocks, dirtyBlocks uint64) {
	d.st.EvictedPages += evictedBlocks * memunits.PagesPerBlock
	d.mem.Release(evictedBlocks * memunits.PagesPerBlock)
	if dirtyBlocks > 0 {
		d.st.WrittenBackPages += dirtyBlocks * memunits.PagesPerBlock
		d.wbInFlight++
		d.link.Transfer(interconnect.DeviceToHost, dirtyBlocks*memunits.BlockSize, d.drainFn)
	}
}
