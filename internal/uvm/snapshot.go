package uvm

import (
	"errors"
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/mm"
	"uvmsim/internal/sim"
)

// This file implements the driver's side of simulator forking: a deep
// state copy at a quiescent point (a kernel barrier — engine drained,
// no migrations queued or in flight), plus the decision-monitor hook
// the prefix-sharing runner (internal/snapshot) uses to prove that a
// forked run with a different policy configuration is byte-identical
// to a from-scratch run up to the fork point.

// DecisionMonitor observes every policy-relevant decision the driver
// makes. The prefix-sharing fork runner mirrors each planner
// consultation into shadow planners built from the follower
// configurations and downgrades a follower to a from-scratch run the
// moment its shadow would have decided differently — or the moment a
// decision is taken on a seam the shadows cannot replicate (placement
// advice, eviction under a different replacement policy).
type DecisionMonitor interface {
	// OnPlan mirrors one planner consultation: the access and the
	// decision the live planner took.
	OnPlan(a mm.Access, migrate bool)
	// OnEvict fires when capacity pressure invokes the eviction engine
	// (including the oversubscription latch). Victim choice depends on
	// the replacement configuration, so followers configured with a
	// different replacement policy diverge here.
	OnEvict()
	// OnUnforkable fires when the driver takes a decision outside the
	// planner seam that shadows cannot replicate; all followers
	// diverge.
	OnUnforkable(reason string)
}

// SetDecisionMonitor installs the decision monitor (nil to detach).
func (d *Driver) SetDecisionMonitor(m DecisionMonitor) { d.mon = m }

// clone deep-copies the TLB (arena, LRU chain and page index).
func (t *tlb) clone() *tlb {
	c := *t
	c.idx = append([]int32(nil), t.idx...)
	c.nodes = append([]tlbNode(nil), t.nodes...)
	c.free = append([]int32(nil), t.free...)
	return &c
}

// CloneWith returns an independent deep copy of the driver attached to
// eng, running cfg with the given pipeline stages (nil stages resolve
// to cfg's built-ins). It is only valid at a quiescent point and only
// for configurations that preserve the memory geometry; policy fields
// (Policy, Replacement, WriteMigrates, thresholds) may differ — that is
// the point of forking — but the caller owns the proof that the donor's
// history is decision-identical under the new configuration (see
// internal/snapshot).
func (d *Driver) CloneWith(eng *sim.Engine, cfg config.Config, pipe mm.Pipeline) (*Driver, error) {
	if d.finalized {
		return nil, errors.New("uvm: clone after Finalize")
	}
	if d.o != nil || d.obs != nil {
		return nil, errors.New("uvm: clone with observability attached")
	}
	if d.eng.Pending() != 0 || d.PendingWork() || d.inFlightTotal != 0 || d.wbInFlight != 0 {
		return nil, errors.New("uvm: clone at a non-quiescent point")
	}
	if err := mm.ForkablePipeline(d.cfg.MMPipeline); err != nil {
		return nil, err
	}
	if cfg.DeviceMemBytes != d.cfg.DeviceMemBytes || cfg.TLBEntries != d.cfg.TLBEntries {
		return nil, errors.New("uvm: clone must preserve memory geometry")
	}
	nd := NewWithPipeline(eng, cfg, d.space, pipe)
	nd.mem = d.mem.Clone()
	nd.link = d.link.CloneFor(eng)
	nd.ctrs = d.ctrs.Clone()
	nd.gmmuTLB = d.gmmuTLB.clone()
	nd.st = d.st

	nd.blockArr = make([]blockState, len(d.blockArr))
	copy(nd.blockArr, d.blockArr)
	for i := range nd.blockArr {
		if nd.blockArr[i].pending || nd.blockArr[i].waiters != nil {
			return nil, fmt.Errorf("uvm: clone with block %d in flight", i)
		}
	}

	nd.chunkArr = make([]*chunkState, len(d.chunkArr))
	for i, cs := range d.chunkArr {
		if cs == nil {
			continue
		}
		if cs.queuedBlocks != 0 || cs.inFlightBlocks != 0 {
			return nil, fmt.Errorf("uvm: clone with chunk %d in flight", i)
		}
		pf, ok := mm.CloneChunkPrefetcher(cs.pf)
		if !ok {
			return nil, fmt.Errorf("uvm: chunk %d prefetch state is not clonable", i)
		}
		nc := *cs
		nc.pf = pf
		nd.chunkArr[i] = &nc
	}

	if d.advice != nil {
		nd.advice = make(map[int]Advice, len(d.advice))
		for k, v := range d.advice {
			nd.advice[k] = v
		}
	}
	return nd, nil
}
