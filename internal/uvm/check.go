package uvm

import (
	"fmt"

	"uvmsim/internal/memunits"
)

// CheckConsistency walks the driver's entire state and verifies the
// cross-structure invariants that every reachable state must satisfy at
// a quiescent point (no event mid-flight). Integration and property
// tests call it after runs; it returns the first violation found.
//
// Invariants:
//  1. Tree occupancy mirrors block state: a chunk-tree leaf is occupied
//     iff its block is resident or pending.
//  2. Chunk residentBlocks equals the number of resident blocks.
//  3. Device memory accounting equals resident plus in-flight pages
//     (frames are reserved at dispatch, before the transfer lands).
//  4. Pending bookkeeping: scheduled implies pending; a resident block
//     is never pending; waiters only exist on pending blocks.
//  5. Queued/in-flight counters are non-negative and zero when idle.
func (d *Driver) CheckConsistency() error { return d.checkConsistency(false) }

// CheckConsistencyMidRun verifies the same invariants between arbitrary
// events of a running simulation. One relaxation applies: a block whose
// fault has been raised but whose batch has not been processed yet
// (pending, not scheduled) may not have its tree leaf marked — the tree
// is updated when the batch closes, one fault-handling latency later.
// The periodic observability sweep uses this form.
func (d *Driver) CheckConsistencyMidRun() error { return d.checkConsistency(true) }

func (d *Driver) checkConsistency(midRun bool) error {
	var residentPages, inFlightPages uint64
	for num, cs := range d.chunkArr {
		if cs == nil {
			continue
		}
		first := cs.info.FirstBlock()
		n := cs.info.Blocks()
		tree := cs.pf.Tree()
		var resident int
		for b := first; b < first+n; b++ {
			bs := d.blockAt(b)
			var isResident, isPending, isScheduled bool
			if bs != nil {
				isResident, isPending, isScheduled = bs.resident(), bs.pending, bs.scheduled
			}
			leaf := int(b - first)
			occ := tree.Occupied(leaf)
			mismatch := occ != (isResident || isPending)
			if midRun && mismatch && !occ && isPending && !isScheduled {
				// Fault raised, batch not yet processed: legal window.
				mismatch = false
			}
			if mismatch {
				return fmt.Errorf("uvm: chunk %d leaf %d occupancy=%v but resident=%v pending=%v",
					num, leaf, occ, isResident, isPending)
			}
			if isResident {
				resident++
				residentPages += memunits.PagesPerBlock
			}
			if bs != nil {
				if bs.scheduled && !bs.pending {
					return fmt.Errorf("uvm: block %d scheduled but not pending", b)
				}
				if bs.resident() && bs.pending {
					return fmt.Errorf("uvm: block %d both resident and pending", b)
				}
				if len(bs.waiters) > 0 && !bs.pending {
					return fmt.Errorf("uvm: block %d has %d waiters but is not pending", b, len(bs.waiters))
				}
			}
		}
		if resident != cs.residentBlocks {
			return fmt.Errorf("uvm: chunk %d residentBlocks=%d but counted %d", num, cs.residentBlocks, resident)
		}
		if cs.queuedBlocks < 0 || cs.inFlightBlocks < 0 {
			return fmt.Errorf("uvm: chunk %d negative pending counters (%d queued, %d in flight)",
				num, cs.queuedBlocks, cs.inFlightBlocks)
		}
		inFlightPages += uint64(cs.inFlightBlocks) * memunits.PagesPerBlock
	}
	if residentPages+inFlightPages != d.mem.AllocatedPages() {
		return fmt.Errorf("uvm: device accounting %d pages but %d resident + %d in flight",
			d.mem.AllocatedPages(), residentPages, inFlightPages)
	}
	if !d.PendingWork() {
		for b := range d.blockArr {
			if d.blockArr[b].pending {
				return fmt.Errorf("uvm: idle driver but block %d still pending", b)
			}
		}
	}
	return nil
}
