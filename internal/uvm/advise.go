package uvm

import (
	"fmt"

	"uvmsim/internal/alloc"
)

// Advice mirrors the user-hint APIs the paper discusses in §III-C:
// cudaMemAdviseSetPreferredLocation (soft-pin to host with
// counter-delayed migration) and cudaHostRegister-style zero-copy
// hard pinning. The paper's point is that choosing these hints demands
// intrusive profiling; the Adaptive policy exists to make them
// unnecessary. The driver implements them so the two approaches can be
// compared head-to-head (see experiments.OracleHints).
type Advice int

const (
	// AdviceNone leaves placement to the active migration policy.
	AdviceNone Advice = iota
	// AdvicePreferHost soft-pins the allocation to host memory: reads
	// migrate only after the static access-counter threshold, writes
	// migrate immediately (Volta semantics), regardless of the global
	// policy.
	AdvicePreferHost
	// AdvicePinHost hard-pins the allocation to host memory (zero-copy):
	// its pages are never migrated; every access is remote.
	AdvicePinHost
)

// String names the advice.
func (a Advice) String() string {
	switch a {
	case AdviceNone:
		return "None"
	case AdvicePreferHost:
		return "PreferHost"
	case AdvicePinHost:
		return "PinHost"
	default:
		return fmt.Sprintf("Advice(%d)", int(a))
	}
}

// Advise attaches placement advice to a managed allocation. It must be
// called before the allocation is touched: advising data that is already
// (partially) device-resident is a usage error the driver rejects,
// matching the "advise right after allocation" discipline of the real
// API.
func (d *Driver) Advise(a *alloc.Allocation, adv Advice) {
	if a == nil {
		panic("uvm: advising nil allocation")
	}
	switch adv {
	case AdviceNone, AdvicePreferHost, AdvicePinHost:
	default:
		panic(fmt.Sprintf("uvm: unknown advice %d", int(adv)))
	}
	first := a.FirstBlock()
	for b := first; b < first+a.NumBlocks(); b++ {
		if bs := d.blockAt(b); bs != nil && (bs.resident() || bs.pending) {
			panic(fmt.Sprintf("uvm: advising %q after its data was touched", a.Name))
		}
	}
	if d.advice == nil {
		d.advice = make(map[int]Advice)
	}
	d.advice[a.ID] = adv
}

// adviceFor returns the advice covering addr (AdviceNone when unset).
func (d *Driver) adviceFor(a *alloc.Allocation) Advice {
	if d.advice == nil || a == nil {
		return AdviceNone
	}
	return d.advice[a.ID]
}
