package uvm

import "uvmsim/internal/memunits"

// tlb models the GMMU's shared translation lookaside buffer: an
// LRU-replaced set of 4KB translations. A miss pays the page table walk
// latency of Table I on top of the access; evicting device pages
// invalidates their entries (the TLB shootdown that makes oversubscribed
// irregular workloads pay translation overhead on top of migration, cf.
// Vesely et al. [28]).
//
// The implementation is allocation-free in steady state: nodes live in a
// fixed arena recycled through a free list, the LRU chain links nodes by
// arena index, and the page lookup is a dense slice (the simulated
// address space is small and contiguous) instead of a map.
type tlb struct {
	cap int
	// idx maps page number -> arena index + 1; 0 means absent. Grown on
	// demand; the managed address space is dense and starts near zero, so
	// this stays small.
	idx   []int32
	nodes []tlbNode
	free  []int32 // recycled arena slots
	head  int32   // most recently used (-1 = empty)
	tail  int32   // least recently used (-1 = empty)
	count int
}

type tlbNode struct {
	page       memunits.PageNum
	prev, next int32 // arena indices; -1 terminates
}

// newTLB creates a TLB with the given entry capacity; cap <= 0 disables
// translation modelling (every lookup hits).
func newTLB(cap int) *tlb {
	t := &tlb{cap: cap, head: -1, tail: -1}
	if cap > 0 {
		// cap+1 because insertion precedes the over-capacity eviction.
		t.nodes = make([]tlbNode, 0, cap+1)
	}
	return t
}

// slot returns a pointer into idx for page p, growing the table to cover
// it.
func (t *tlb) slot(p memunits.PageNum) *int32 {
	if p >= uint64(len(t.idx)) {
		grown := make([]int32, max(p+1, uint64(2*len(t.idx))))
		copy(grown, t.idx)
		t.idx = grown
	}
	return &t.idx[p]
}

// lookup reports whether the page's translation is cached, touching the
// entry on hit and inserting it (with LRU eviction) on miss.
func (t *tlb) lookup(p memunits.PageNum) bool {
	if t.cap <= 0 {
		return true
	}
	s := t.slot(p)
	if *s != 0 {
		t.touch(*s - 1)
		return true
	}
	var n int32
	if k := len(t.free); k > 0 {
		n = t.free[k-1]
		t.free = t.free[:k-1]
	} else {
		t.nodes = append(t.nodes, tlbNode{})
		n = int32(len(t.nodes) - 1)
	}
	t.nodes[n].page = p
	*s = n + 1
	t.pushFront(n)
	t.count++
	if t.count > t.cap {
		lru := t.tail
		t.unlink(lru)
		t.idx[t.nodes[lru].page] = 0
		t.free = append(t.free, lru)
		t.count--
	}
	return false
}

// invalidateRange drops translations for pages [first, first+count)
// (TLB shootdown on eviction).
func (t *tlb) invalidateRange(first memunits.PageNum, count uint64) uint64 {
	if t.cap <= 0 {
		return 0
	}
	var dropped uint64
	end := first + count
	if lim := uint64(len(t.idx)); end > lim {
		end = lim
	}
	for p := first; p < end; p++ {
		if n := t.idx[p]; n != 0 {
			t.unlink(n - 1)
			t.idx[p] = 0
			t.free = append(t.free, n-1)
			t.count--
			dropped++
		}
	}
	return dropped
}

// size returns the populated entry count.
func (t *tlb) size() int { return t.count }

func (t *tlb) pushFront(n int32) {
	t.nodes[n].prev = -1
	t.nodes[n].next = t.head
	if t.head >= 0 {
		t.nodes[t.head].prev = n
	}
	t.head = n
	if t.tail < 0 {
		t.tail = n
	}
}

func (t *tlb) unlink(n int32) {
	prev, next := t.nodes[n].prev, t.nodes[n].next
	if prev >= 0 {
		t.nodes[prev].next = next
	} else {
		t.head = next
	}
	if next >= 0 {
		t.nodes[next].prev = prev
	} else {
		t.tail = prev
	}
	t.nodes[n].prev, t.nodes[n].next = -1, -1
}

func (t *tlb) touch(n int32) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}
