package uvm

import "uvmsim/internal/memunits"

// tlb models the GMMU's shared translation lookaside buffer: an
// LRU-replaced set of 4KB translations. A miss pays the page table walk
// latency of Table I on top of the access; evicting device pages
// invalidates their entries (the TLB shootdown that makes oversubscribed
// irregular workloads pay translation overhead on top of migration, cf.
// Vesely et al. [28]).
type tlb struct {
	cap     int
	entries map[memunits.PageNum]*tlbNode
	head    *tlbNode // most recently used
	tail    *tlbNode // least recently used
}

type tlbNode struct {
	page       memunits.PageNum
	prev, next *tlbNode
}

// newTLB creates a TLB with the given entry capacity; cap <= 0 disables
// translation modelling (every lookup hits).
func newTLB(cap int) *tlb {
	return &tlb{cap: cap, entries: make(map[memunits.PageNum]*tlbNode)}
}

// lookup reports whether the page's translation is cached, touching the
// entry on hit and inserting it (with LRU eviction) on miss.
func (t *tlb) lookup(p memunits.PageNum) bool {
	if t.cap <= 0 {
		return true
	}
	if n := t.entries[p]; n != nil {
		t.touch(n)
		return true
	}
	n := &tlbNode{page: p}
	t.entries[p] = n
	t.pushFront(n)
	if len(t.entries) > t.cap {
		lru := t.tail
		t.unlink(lru)
		delete(t.entries, lru.page)
	}
	return false
}

// invalidateRange drops translations for pages [first, first+count)
// (TLB shootdown on eviction).
func (t *tlb) invalidateRange(first memunits.PageNum, count uint64) uint64 {
	if t.cap <= 0 {
		return 0
	}
	var dropped uint64
	for p := first; p < first+count; p++ {
		if n := t.entries[p]; n != nil {
			t.unlink(n)
			delete(t.entries, p)
			dropped++
		}
	}
	return dropped
}

// size returns the populated entry count.
func (t *tlb) size() int { return len(t.entries) }

func (t *tlb) pushFront(n *tlbNode) {
	n.prev = nil
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *tlb) unlink(n *tlbNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *tlb) touch(n *tlbNode) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}
