package uvm

import (
	"sort"

	"uvmsim/internal/evict"
	"uvmsim/internal/memunits"
)

// sortCandidates orders chunk candidates (and their parallel state slice)
// by unit number so that victim selection is deterministic despite map
// iteration order.
func sortCandidates(cands []evict.Candidate, states []*chunkState) {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cands[idx[a]].Unit < cands[idx[b]].Unit })
	permuteCandidates(cands, idx)
	permuted := make([]*chunkState, len(states))
	for i, j := range idx {
		permuted[i] = states[j]
	}
	copy(states, permuted)
}

// sortBlockCandidates is the block-granularity analogue.
func sortBlockCandidates(cands []evict.Candidate, nums []memunits.BlockNum, owners []*chunkState) {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cands[idx[a]].Unit < cands[idx[b]].Unit })
	permuteCandidates(cands, idx)
	pn := make([]memunits.BlockNum, len(nums))
	po := make([]*chunkState, len(owners))
	for i, j := range idx {
		pn[i] = nums[j]
		po[i] = owners[j]
	}
	copy(nums, pn)
	copy(owners, po)
}

func permuteCandidates(cands []evict.Candidate, idx []int) {
	out := make([]evict.Candidate, len(cands))
	for i, j := range idx {
		out[i] = cands[j]
	}
	copy(cands, out)
}
