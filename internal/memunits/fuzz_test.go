package memunits

import "testing"

// FuzzRoundAllocSize explores the CUDA size-rounding rule: the result
// must dominate the request, stay 64KB-aligned, keep a power-of-two
// block remainder, and decompose consistently.
func FuzzRoundAllocSize(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(4<<20 + 168<<10))
	f.Add(uint64(ChunkSize))
	f.Add(uint64(ChunkSize + 1))
	f.Add(uint64(1<<40 - 1))
	f.Fuzz(func(t *testing.T, n uint64) {
		n %= 1 << 44
		r := RoundAllocSize(n)
		if r < n {
			t.Fatalf("RoundAllocSize(%d) = %d shrank", n, r)
		}
		if r%BlockSize != 0 {
			t.Fatalf("RoundAllocSize(%d) = %d not 64KB aligned", n, r)
		}
		if rem := r % ChunkSize; rem != 0 {
			blocks := rem / BlockSize
			if blocks&(blocks-1) != 0 {
				t.Fatalf("RoundAllocSize(%d) remainder %d blocks not a power of two", n, blocks)
			}
		}
		var sum uint64
		for _, c := range ChunkSizes(r) {
			sum += c
		}
		if sum != r {
			t.Fatalf("ChunkSizes(%d) sums to %d", r, sum)
		}
	})
}
