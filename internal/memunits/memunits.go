// Package memunits centralizes the address arithmetic shared by the whole
// memory hierarchy: 4KB small pages (the GMMU translation unit), 64KB
// basic blocks (the prefetch and access-counter unit), and 2MB chunks
// (the large-page eviction unit), plus the CUDA managed-allocation size
// rounding rule (next 2^i * 64KB).
package memunits

import "fmt"

// Fundamental granularities of the UVM hierarchy (bytes).
const (
	PageSize  = 4 << 10  // 4KB   — GMMU translation and residency unit
	BlockSize = 64 << 10 // 64KB  — prefetch basic block / access counter unit
	ChunkSize = 2 << 20  // 2MB   — large-page eviction unit

	PagesPerBlock  = BlockSize / PageSize  // 16
	BlocksPerChunk = ChunkSize / BlockSize // 32
	PagesPerChunk  = ChunkSize / PageSize  // 512

	SectorSize = 128 // bytes; DRAM/L2 transaction size used by the coalescer
)

// Addr is a virtual or physical byte address in the simulated system.
type Addr = uint64

// PageNum identifies a 4KB page (address / PageSize).
type PageNum = uint64

// BlockNum identifies a 64KB basic block (address / BlockSize).
type BlockNum = uint64

// ChunkNum identifies a 2MB chunk (address / ChunkSize).
type ChunkNum = uint64

// PageOf returns the page number containing addr.
func PageOf(addr Addr) PageNum { return addr / PageSize }

// BlockOf returns the basic-block number containing addr.
func BlockOf(addr Addr) BlockNum { return addr / BlockSize }

// ChunkOf returns the chunk number containing addr.
func ChunkOf(addr Addr) ChunkNum { return addr / ChunkSize }

// BlockOfPage returns the basic-block number containing page p.
func BlockOfPage(p PageNum) BlockNum { return p / PagesPerBlock }

// ChunkOfPage returns the chunk number containing page p.
func ChunkOfPage(p PageNum) ChunkNum { return p / PagesPerChunk }

// ChunkOfBlock returns the chunk number containing block b.
func ChunkOfBlock(b BlockNum) ChunkNum { return b / BlocksPerChunk }

// PageAddr returns the base address of page p.
func PageAddr(p PageNum) Addr { return p * PageSize }

// BlockAddr returns the base address of block b.
func BlockAddr(b BlockNum) Addr { return b * BlockSize }

// ChunkAddr returns the base address of chunk c.
func ChunkAddr(c ChunkNum) Addr { return c * ChunkSize }

// FirstPageOfBlock returns the first page number of block b.
func FirstPageOfBlock(b BlockNum) PageNum { return b * PagesPerBlock }

// FirstBlockOfChunk returns the first block number of chunk c.
func FirstBlockOfChunk(c ChunkNum) BlockNum { return c * BlocksPerChunk }

// RoundUp rounds n up to the next multiple of unit. unit must be a power
// of two.
func RoundUp(n, unit uint64) uint64 {
	if unit == 0 || unit&(unit-1) != 0 {
		panic(fmt.Sprintf("memunits: RoundUp unit %d is not a power of two", unit))
	}
	return (n + unit - 1) &^ (unit - 1)
}

// RoundAllocSize applies the CUDA managed-allocation rounding rule: the
// user-requested size is rounded up to the next 2^i * 64KB (i >= 0). For
// example 4MB+168KB rounds to 4MB+256KB (not a single power of two: the
// rule rounds to the next multiple of 64KB whose 64KB-block count is
// itself rounded to a power of two only when below one block).
//
// Per the paper (§II-B), a request of 4MB+168KB yields chunks of
// 2MB + 2MB + 256KB, i.e. the size is rounded to 4MB+256KB. The observed
// driver behaviour is: round the size up to the next 2^i * 64KB where the
// remainder past the last full 2MB chunk is rounded to a power-of-two
// number of 64KB blocks.
func RoundAllocSize(size uint64) uint64 {
	if size == 0 {
		return 0
	}
	full := size / ChunkSize * ChunkSize
	rem := size - full
	if rem == 0 {
		return full
	}
	// Round the remainder up to 2^i * 64KB.
	blocks := RoundUp(rem, BlockSize) / BlockSize
	p := uint64(1)
	for p < blocks {
		p <<= 1
	}
	return full + p*BlockSize
}

// ChunkSizes decomposes a rounded allocation size into its logical chunk
// sizes: as many full 2MB chunks as fit, plus one trailing chunk with the
// power-of-two 64KB remainder (if any).
func ChunkSizes(rounded uint64) []uint64 {
	if rounded%BlockSize != 0 {
		panic(fmt.Sprintf("memunits: ChunkSizes size %d not 64KB-aligned", rounded))
	}
	var out []uint64
	for rounded >= ChunkSize {
		out = append(out, ChunkSize)
		rounded -= ChunkSize
	}
	if rounded > 0 {
		out = append(out, rounded)
	}
	return out
}

// HumanBytes renders a byte count with a binary-unit suffix for reports.
func HumanBytes(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
