package memunits

import (
	"testing"
	"testing/quick"
)

func TestGranularityRelations(t *testing.T) {
	if PagesPerBlock != 16 {
		t.Errorf("PagesPerBlock = %d, want 16", PagesPerBlock)
	}
	if BlocksPerChunk != 32 {
		t.Errorf("BlocksPerChunk = %d, want 32", BlocksPerChunk)
	}
	if PagesPerChunk != 512 {
		t.Errorf("PagesPerChunk = %d, want 512", PagesPerChunk)
	}
}

func TestAddressMapping(t *testing.T) {
	tests := []struct {
		addr  Addr
		page  PageNum
		block BlockNum
		chunk ChunkNum
	}{
		{0, 0, 0, 0},
		{PageSize - 1, 0, 0, 0},
		{PageSize, 1, 0, 0},
		{BlockSize, 16, 1, 0},
		{ChunkSize, 512, 32, 1},
		{3*ChunkSize + 5*BlockSize + 2*PageSize + 17, 3*512 + 5*16 + 2, 3*32 + 5, 3},
	}
	for _, tt := range tests {
		if got := PageOf(tt.addr); got != tt.page {
			t.Errorf("PageOf(%#x) = %d, want %d", tt.addr, got, tt.page)
		}
		if got := BlockOf(tt.addr); got != tt.block {
			t.Errorf("BlockOf(%#x) = %d, want %d", tt.addr, got, tt.block)
		}
		if got := ChunkOf(tt.addr); got != tt.chunk {
			t.Errorf("ChunkOf(%#x) = %d, want %d", tt.addr, got, tt.chunk)
		}
	}
}

func TestHierarchyConsistencyProperty(t *testing.T) {
	f := func(a Addr) bool {
		a %= 1 << 40
		p := PageOf(a)
		return BlockOfPage(p) == BlockOf(a) &&
			ChunkOfPage(p) == ChunkOf(a) &&
			ChunkOfBlock(BlockOf(a)) == ChunkOf(a) &&
			PageOf(PageAddr(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundUp(t *testing.T) {
	tests := []struct{ n, unit, want uint64 }{
		{0, 4096, 0},
		{1, 4096, 4096},
		{4096, 4096, 4096},
		{4097, 4096, 8192},
		{100, 64, 128},
	}
	for _, tt := range tests {
		if got := RoundUp(tt.n, tt.unit); got != tt.want {
			t.Errorf("RoundUp(%d,%d) = %d, want %d", tt.n, tt.unit, got, tt.want)
		}
	}
}

func TestRoundUpNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RoundUp with non-power-of-two unit did not panic")
		}
	}()
	RoundUp(10, 3)
}

func TestRoundAllocSizePaperExample(t *testing.T) {
	// Paper §II-B: 4MB+168KB becomes chunks 2MB, 2MB, 256KB.
	got := RoundAllocSize(4<<20 + 168<<10)
	want := uint64(4<<20 + 256<<10)
	if got != want {
		t.Fatalf("RoundAllocSize(4MB+168KB) = %d, want %d", got, want)
	}
	chunks := ChunkSizes(got)
	wantChunks := []uint64{2 << 20, 2 << 20, 256 << 10}
	if len(chunks) != len(wantChunks) {
		t.Fatalf("ChunkSizes = %v, want %v", chunks, wantChunks)
	}
	for i := range chunks {
		if chunks[i] != wantChunks[i] {
			t.Fatalf("ChunkSizes = %v, want %v", chunks, wantChunks)
		}
	}
}

func TestRoundAllocSizeEdges(t *testing.T) {
	tests := []struct{ in, want uint64 }{
		{0, 0},
		{1, 64 << 10},
		{64 << 10, 64 << 10},
		{65 << 10, 128 << 10},
		{129 << 10, 256 << 10},
		{2 << 20, 2 << 20},
		{2<<20 + 1, 2<<20 + 64<<10},
		{1<<20 + 1, 2 << 20}, // 1MB+1 -> remainder rounds to 2MB worth? no: 17 blocks -> 32 blocks = 2MB
	}
	for _, tt := range tests {
		if got := RoundAllocSize(tt.in); got != tt.want {
			t.Errorf("RoundAllocSize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

// Property: rounded size is always >= requested, 64KB aligned, and the
// remainder past full chunks is a power-of-two count of 64KB blocks.
func TestRoundAllocSizeProperty(t *testing.T) {
	f := func(n uint64) bool {
		n %= 1 << 33
		r := RoundAllocSize(n)
		if r < n || r%BlockSize != 0 {
			return false
		}
		rem := r % ChunkSize
		if rem == 0 {
			return true
		}
		blocks := rem / BlockSize
		return blocks&(blocks-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ChunkSizes always sums back to the rounded size and every
// chunk except possibly the last is exactly 2MB.
func TestChunkSizesProperty(t *testing.T) {
	f := func(n uint64) bool {
		n %= 1 << 33
		r := RoundAllocSize(n)
		chunks := ChunkSizes(r)
		var sum uint64
		for i, c := range chunks {
			sum += c
			if i < len(chunks)-1 && c != ChunkSize {
				return false
			}
		}
		return sum == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumanBytes(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{4 << 10, "4KB"},
		{2 << 20, "2MB"},
		{3 << 30, "3GB"},
		{2<<20 + 1, fmt2MBPlus1},
	}
	for _, tt := range tests {
		if got := HumanBytes(tt.in); got != tt.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

const fmt2MBPlus1 = "2097153B"
