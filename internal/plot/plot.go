// Package plot renders experiment data as plain-text graphics: scatter
// plots for the access-pattern figures (page vs. time, Fig. 3) and
// horizontal bar charts for the normalized-runtime figures. The output
// needs nothing but a monospace terminal, keeping the whole toolchain
// dependency-free.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one scatter sample.
type Point struct {
	X, Y float64
	// Mark selects the glyph ('.' when zero).
	Mark rune
}

// Scatter renders points into a w x h character grid with min/max axis
// annotations. Later points overwrite earlier ones on collision.
func Scatter(title string, pts []Point, w, h int) string {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, p := range pts {
		c := int((p.X - minX) / spanX * float64(w-1))
		r := h - 1 - int((p.Y-minY)/spanY*float64(h-1))
		mark := p.Mark
		if mark == 0 {
			mark = '.'
		}
		grid[r][c] = mark
	}
	topLabel := fmt.Sprintf("%.3g", maxY)
	botLabel := fmt.Sprintf("%.3g", minY)
	pad := len(topLabel)
	if len(botLabel) > pad {
		pad = len(botLabel)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, topLabel)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", pad, botLabel)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", pad))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", w))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", pad+2))
	xl := fmt.Sprintf("%.3g", minX)
	xr := fmt.Sprintf("%.3g", maxX)
	gap := w - len(xl) - len(xr)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s%s%s\n", xl, strings.Repeat(" ", gap), xr)
	return b.String()
}

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// Bars renders horizontal bars scaled to the maximum value, annotating
// each with its value as a percentage (values are ratios, 1.0 = 100%).
func Bars(title string, bars []Bar, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(bars) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	var max float64
	labelW := 0
	for _, bar := range bars {
		if bar.Value > max {
			max = bar.Value
		}
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	if max == 0 {
		max = 1
	}
	for _, bar := range bars {
		n := int(bar.Value / max * float64(width))
		if n == 0 && bar.Value > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s%s %7.2f%%\n",
			labelW, bar.Label, strings.Repeat("#", n), strings.Repeat(" ", width-n), bar.Value*100)
	}
	return b.String()
}

// NamedRow is one row of a table to render.
type NamedRow struct {
	Label  string
	Values []float64
}

// GroupedBars renders a workload x scheme table as grouped bar charts,
// one group per row (the callers adapt report.Table into cols/rows).
func GroupedBars(title string, cols []string, rows []NamedRow, width int) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for _, row := range rows {
		n := len(row.Values)
		if n > len(cols) {
			n = len(cols)
		}
		bars := make([]Bar, n)
		for i := 0; i < n; i++ {
			bars[i] = Bar{Label: cols[i], Value: row.Values[i]}
		}
		b.WriteString(Bars(row.Label, bars, width))
		b.WriteByte('\n')
	}
	return b.String()
}
