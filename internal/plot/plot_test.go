package plot

import (
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Mark: 'r'},
		{X: 100, Y: 50, Mark: 'w'},
		{X: 50, Y: 25},
	}
	out := Scatter("pattern", pts, 40, 10)
	if !strings.Contains(out, "pattern") {
		t.Fatal("missing title")
	}
	for _, mark := range []string{"r", "w", "."} {
		if !strings.Contains(out, mark) {
			t.Fatalf("missing mark %q:\n%s", mark, out)
		}
	}
	// Axis labels for both extremes.
	if !strings.Contains(out, "50") || !strings.Contains(out, "100") {
		t.Fatalf("missing axis labels:\n%s", out)
	}
	// Grid height: title + h rows + axis + x labels.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+1+1 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestScatterCornerPlacement(t *testing.T) {
	// A min point must land bottom-left, a max point top-right.
	out := Scatter("t", []Point{{X: 0, Y: 0, Mark: 'a'}, {X: 1, Y: 1, Mark: 'b'}}, 20, 5)
	lines := strings.Split(out, "\n")
	top := lines[1]
	bottom := lines[5]
	if !strings.Contains(top, "b") {
		t.Fatalf("max point not on top row:\n%s", out)
	}
	if !strings.Contains(bottom, "a") {
		t.Fatalf("min point not on bottom row:\n%s", out)
	}
	if strings.Index(bottom, "a") >= strings.Index(top, "b") {
		t.Fatalf("x ordering wrong:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter("empty", nil, 20, 5)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty scatter:\n%s", out)
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	// All points identical: must not divide by zero.
	out := Scatter("t", []Point{{X: 5, Y: 5}, {X: 5, Y: 5}}, 20, 5)
	if !strings.Contains(out, ".") {
		t.Fatalf("degenerate scatter lost points:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("fig", []Bar{
		{Label: "Disabled", Value: 1.0},
		{Label: "Adaptive", Value: 0.25},
	}, 20)
	if !strings.Contains(out, "Disabled") || !strings.Contains(out, "Adaptive") {
		t.Fatalf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "100.00%") || !strings.Contains(out, "25.00%") {
		t.Fatalf("missing values:\n%s", out)
	}
	// The full bar must be 4x the quarter bar.
	lines := strings.Split(out, "\n")
	full := strings.Count(lines[1], "#")
	quarter := strings.Count(lines[2], "#")
	if full != 20 || quarter != 5 {
		t.Fatalf("bar lengths %d/%d, want 20/5:\n%s", full, quarter, out)
	}
}

func TestBarsZeroAndTiny(t *testing.T) {
	out := Bars("z", []Bar{{Label: "zero", Value: 0}, {Label: "tiny", Value: 0.001}, {Label: "big", Value: 1}}, 30)
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "#") != 0 {
		t.Fatal("zero bar rendered")
	}
	if strings.Count(lines[2], "#") != 1 {
		t.Fatal("tiny nonzero bar invisible")
	}
}

func TestBarsEmpty(t *testing.T) {
	if !strings.Contains(Bars("e", nil, 10), "(no data)") {
		t.Fatal("empty bars")
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("Figure 6", []string{"Disabled", "Adaptive"}, []NamedRow{
		{Label: "ra", Values: []float64{1.0, 0.13}},
		{Label: "nw", Values: []float64{1.0, 0.49}},
	}, 25)
	for _, frag := range []string{"Figure 6", "ra", "nw", "Disabled", "Adaptive", "13.00%", "49.00%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q:\n%s", frag, out)
		}
	}
}
