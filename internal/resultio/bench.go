package resultio

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchFormatVersion identifies the benchmark-suite schema; bump on
// incompatible changes.
const BenchFormatVersion = 1

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	// SimCycles is the deterministic simulated-cycle total of the
	// benchmark's sweep (0 when the benchmark does not simulate, e.g.
	// the engine microbenchmarks). Unlike the wall-clock fields it is
	// machine-independent, so drift checks compare it exactly.
	SimCycles uint64 `json:"simCycles,omitempty"`
}

// BenchSuite is an archived set of benchmark measurements — the perf
// trajectory of the simulator. Suites carry enough environment context
// (Go version, host parallelism, workload scale) to judge whether two
// measurements are comparable before comparing them.
type BenchSuite struct {
	Version    int     `json:"version"`
	GoVersion  string  `json:"goVersion"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	// Workloads is the sweep's workload subset (empty = the full paper
	// suite); simulated-cycle totals are only comparable between suites
	// measured over the same subset.
	Workloads []string      `json:"workloads,omitempty"`
	Results   []BenchResult `json:"results"`
}

// WriteBenchSuite emits the suite as indented JSON without mutating
// the caller's struct (an unset Version is defaulted on a copy).
func WriteBenchSuite(w io.Writer, s *BenchSuite) error {
	cp := *s
	if cp.Version == 0 {
		cp.Version = BenchFormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// ReadBenchSuite parses and validates one suite.
func ReadBenchSuite(r io.Reader) (*BenchSuite, error) {
	var s BenchSuite
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("resultio: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	if s.Version != BenchFormatVersion {
		return nil, fmt.Errorf("resultio: unsupported bench suite version %d (want %d)", s.Version, BenchFormatVersion)
	}
	if len(s.Results) == 0 {
		return nil, fmt.Errorf("resultio: bench suite has no results")
	}
	for i, b := range s.Results {
		if b.Name == "" {
			return nil, fmt.Errorf("resultio: bench result %d missing name", i)
		}
		if b.NsPerOp < 0 || b.AllocsPerOp < 0 || b.BytesPerOp < 0 || b.Iterations <= 0 {
			return nil, fmt.Errorf("resultio: bench result %q has invalid measurements", b.Name)
		}
	}
	return &s, nil
}
