package resultio

import (
	"bytes"
	"strings"
	"testing"

	"uvmsim/internal/cxl"
)

func sampleCXLSuite() *CXLSuite {
	res := cxl.Result{
		SimCycles: 1234, Checksum: 99, Fairness: 0.8, Replications: 3,
		Tenants: []cxl.TenantResult{
			{Workload: "bfs", GPU: 0, Accesses: 100},
			{Workload: "sssp", GPU: 0, Accesses: 90},
		},
	}
	return &CXLSuite{
		GoVersion: "go0.test",
		Scenarios: []CXLScenario{
			{Name: "cxl-repl", Policy: "cxl-repl", GPUs: 2,
				Tenants: []string{"bfs:0:1", "sssp:0:0"}, Seed: 7, Result: res},
		},
	}
}

func TestCXLSuiteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := sampleCXLSuite()
	if err := WriteCXLSuite(&buf, s); err != nil {
		t.Fatal(err)
	}
	if s.Version != 0 {
		t.Fatal("WriteCXLSuite mutated its input")
	}
	got, err := ReadCXLSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != CXLFormatVersion || len(got.Scenarios) != 1 {
		t.Fatalf("round-trip = %+v", got)
	}
	sc := got.Scenario("cxl-repl")
	if sc == nil || sc.Result.SimCycles != 1234 || sc.Result.Checksum != 99 {
		t.Fatalf("scenario = %+v", sc)
	}
	if got.Scenario("nope") != nil {
		t.Fatal("unknown scenario resolved")
	}
}

func TestCXLSuiteRejects(t *testing.T) {
	cases := map[string]func(*CXLSuite){
		"no scenarios":    func(s *CXLSuite) { s.Scenarios = nil },
		"missing name":    func(s *CXLSuite) { s.Scenarios[0].Name = "" },
		"missing policy":  func(s *CXLSuite) { s.Scenarios[0].Policy = "" },
		"zero gpus":       func(s *CXLSuite) { s.Scenarios[0].GPUs = 0 },
		"no tenants":      func(s *CXLSuite) { s.Scenarios[0].Tenants = nil },
		"zero cycles":     func(s *CXLSuite) { s.Scenarios[0].Result.SimCycles = 0 },
		"tenant mismatch": func(s *CXLSuite) { s.Scenarios[0].Result.Tenants = s.Scenarios[0].Result.Tenants[:1] },
		"bad version":     func(s *CXLSuite) { s.Version = 99 },
		"duplicate name":  func(s *CXLSuite) { s.Scenarios = append(s.Scenarios, s.Scenarios[0]) },
	}
	for name, mut := range cases {
		s := sampleCXLSuite()
		// Deep-enough copy for the mutations used above.
		s.Scenarios = append([]CXLScenario(nil), s.Scenarios...)
		mut(s)
		var buf bytes.Buffer
		if err := WriteCXLSuite(&buf, s); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if _, err := ReadCXLSuite(&buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadCXLSuite(strings.NewReader(`{"version":1,"bogus":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	var buf bytes.Buffer
	if err := WriteCXLSuite(&buf, sampleCXLSuite()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("{}")
	if _, err := ReadCXLSuite(&buf); err == nil {
		t.Error("trailing data accepted")
	}
}

func sampleCXLEntry() *CXLEntry {
	return &CXLEntry{Key: "deadbeef", Scenario: sampleCXLSuite().Scenarios[0]}
}

func TestCXLEntryRoundTrip(t *testing.T) {
	e := sampleCXLEntry()
	var buf bytes.Buffer
	if err := WriteCXLEntry(&buf, e); err != nil {
		t.Fatal(err)
	}
	if e.Version != 0 {
		t.Fatal("WriteCXLEntry mutated its input")
	}
	got, err := ReadCXLEntry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != CXLFormatVersion || got.Key != "deadbeef" {
		t.Fatalf("round-trip = %+v", got)
	}
	if got.Scenario.Result.Checksum != 99 || len(got.Scenario.Tenants) != 2 {
		t.Fatalf("scenario = %+v", got.Scenario)
	}
}

func TestCXLEntryWriteDeterministic(t *testing.T) {
	e := sampleCXLEntry()
	var a, b bytes.Buffer
	if err := WriteCXLEntry(&a, e); err != nil {
		t.Fatal(err)
	}
	if err := WriteCXLEntry(&b, e); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of one entry differ")
	}
}

func TestCXLEntryRejects(t *testing.T) {
	cases := map[string]func(*CXLEntry){
		"missing key":     func(e *CXLEntry) { e.Key = "" },
		"missing name":    func(e *CXLEntry) { e.Scenario.Name = "" },
		"missing policy":  func(e *CXLEntry) { e.Scenario.Policy = "" },
		"zero cycles":     func(e *CXLEntry) { e.Scenario.Result.SimCycles = 0 },
		"tenant mismatch": func(e *CXLEntry) { e.Scenario.Result.Tenants = e.Scenario.Result.Tenants[:1] },
		"bad version":     func(e *CXLEntry) { e.Version = 99 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			e := sampleCXLEntry()
			mutate(e)
			var buf bytes.Buffer
			enc := *e
			if enc.Version == 0 {
				enc.Version = CXLFormatVersion
			}
			if err := WriteCXLEntry(&buf, &enc); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadCXLEntry(&buf); err == nil {
				t.Fatal("mutated entry accepted")
			}
		})
	}
	t.Run("unknown field", func(t *testing.T) {
		if _, err := ReadCXLEntry(strings.NewReader(`{"version":1,"key":"k","scenario":{},"bogus":1}`)); err == nil {
			t.Fatal("unknown field accepted")
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteCXLEntry(&buf, sampleCXLEntry()); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("{}")
		if _, err := ReadCXLEntry(&buf); err == nil {
			t.Fatal("trailing data accepted")
		}
	})
}
