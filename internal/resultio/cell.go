package resultio

import (
	"encoding/json"
	"fmt"
	"io"
)

// CellFormatVersion identifies the content-addressed cache-entry
// schema; bump on incompatible changes. The sweep service's cache key
// derivation carries its own version (serve.KeyVersion) — this one
// covers only the stored payload.
const CellFormatVersion = 1

// CellEntry is one archived sweep cell in the content-addressed result
// cache of the sweep service (internal/serve): the full self-describing
// record of the run plus the canonical key it is stored under. Entries
// are written once and never rewritten — every simulation is
// deterministic, so a key's payload is immutable — which makes the
// strict read path below (exact version, required key, EOF after the
// document) the cache's integrity check.
type CellEntry struct {
	Version int `json:"version"`
	// Key is the canonical content hash of (workload name+scale, derived
	// Config including PipelineSpec and PolicySeed) the entry is stored
	// under.
	Key    string `json:"key"`
	Record Record `json:"record"`
}

// WriteCellEntry emits the entry as indented JSON without mutating the
// caller's struct: unset versions (entry and embedded record) are
// defaulted on a copy, mirroring the other resultio writers.
func WriteCellEntry(w io.Writer, e *CellEntry) error {
	cp := *e
	if cp.Version == 0 {
		cp.Version = CellFormatVersion
	}
	if cp.Record.Version == 0 {
		cp.Record.Version = FormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// ReadCellEntry parses and validates one cache entry. Trailing bytes
// after the JSON document are an error: a truncated-then-concatenated
// or corrupted cache file must not parse as its leading prefix.
func ReadCellEntry(r io.Reader) (*CellEntry, error) {
	var e CellEntry
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("resultio: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	if e.Version != CellFormatVersion {
		return nil, fmt.Errorf("resultio: unsupported cell entry version %d (want %d)", e.Version, CellFormatVersion)
	}
	if e.Key == "" {
		return nil, fmt.Errorf("resultio: cell entry missing key")
	}
	if err := validateRecord(&e.Record); err != nil {
		return nil, err
	}
	return &e, nil
}
