package resultio

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTournamentSuite() *TournamentSuite {
	return &TournamentSuite{
		Version:        TournamentFormatVersion,
		GoVersion:      "go1.23.0",
		Scale:          0.3,
		OversubPercent: 125,
		Workloads:      []string{"bfs", "ra"},
		Entries: []TournamentEntry{
			{
				Name: "planner=thrash-guard", Planner: "thrash-guard",
				TotalSimCycles: 100, WorkloadCycles: []uint64{40, 60},
				FarFaults: 7, ThrashedPages: 3, RemoteAccesses: 11,
			},
			{
				Name: "planner=threshold", Planner: "threshold",
				TotalSimCycles: 150, WorkloadCycles: []uint64{70, 80},
				FarFaults: 9, ThrashedPages: 5, RemoteAccesses: 13,
			},
		},
	}
}

func TestTournamentSuiteRoundTrip(t *testing.T) {
	want := sampleTournamentSuite()
	var buf bytes.Buffer
	if err := WriteTournamentSuite(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTournamentSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.Scale != want.Scale ||
		got.OversubPercent != want.OversubPercent || len(got.Entries) != len(want.Entries) {
		t.Fatalf("round trip changed suite header: %+v", got)
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		if g.Name != w.Name || g.TotalSimCycles != w.TotalSimCycles ||
			g.FarFaults != w.FarFaults || g.ThrashedPages != w.ThrashedPages ||
			g.RemoteAccesses != w.RemoteAccesses || len(g.WorkloadCycles) != len(w.WorkloadCycles) {
			t.Fatalf("entry %d changed in round trip:\nwant %+v\ngot  %+v", i, w, g)
		}
	}
}

func TestWriteTournamentSuiteDefaultsVersion(t *testing.T) {
	s := sampleTournamentSuite()
	s.Version = 0
	var buf bytes.Buffer
	if err := WriteTournamentSuite(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTournamentSuite(&buf); err != nil {
		t.Fatalf("version was not defaulted on write: %v", err)
	}
}

// TestReadTournamentSuiteRejectsMalformed exercises every validation
// branch: the reader must refuse anything that would silently corrupt a
// committed leaderboard comparison.
func TestReadTournamentSuiteRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*TournamentSuite)
		wantErr string
	}{
		{"future version", func(s *TournamentSuite) { s.Version = TournamentFormatVersion + 1 }, "version"},
		{"no workloads", func(s *TournamentSuite) { s.Workloads = nil }, "no workloads"},
		{"no entries", func(s *TournamentSuite) { s.Entries = nil }, "no entries"},
		{"missing name", func(s *TournamentSuite) { s.Entries[0].Name = "" }, "missing name"},
		{"misaligned workload cycles", func(s *TournamentSuite) {
			s.Entries[1].WorkloadCycles = []uint64{70}
		}, "workload cycles"},
		{"not in leaderboard order", func(s *TournamentSuite) {
			s.Entries[0].TotalSimCycles = 999
		}, "leaderboard order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sampleTournamentSuite()
			tc.mutate(s)
			var buf bytes.Buffer
			if err := WriteTournamentSuite(&buf, s); err != nil {
				t.Fatal(err)
			}
			_, err := ReadTournamentSuite(&buf)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestReadTournamentSuiteRejectsUnknownFields(t *testing.T) {
	_, err := ReadTournamentSuite(strings.NewReader(
		`{"version":1,"workloads":["bfs"],"entries":[],"surprise":true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}
