package resultio

import (
	"bytes"
	"strings"
	"testing"
)

func sampleCellEntry(t *testing.T) *CellEntry {
	t.Helper()
	rec := FromResult(sampleResult(t), 0.05, 100)
	return &CellEntry{Version: CellFormatVersion, Key: "deadbeef", Record: *rec}
}

func TestCellEntryRoundTrip(t *testing.T) {
	e := sampleCellEntry(t)
	var buf bytes.Buffer
	if err := WriteCellEntry(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCellEntry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != e.Key || got.Record.Workload != e.Record.Workload {
		t.Fatalf("entry lost fields: %+v", got)
	}
	if got.Record.Counters != e.Record.Counters {
		t.Fatalf("counters differ:\n%+v\n%+v", got.Record.Counters, e.Record.Counters)
	}
}

// Writes of the same entry must be byte-identical — the property the
// content-addressed cache's "second submission returns identical
// payload bytes" guarantee rests on.
func TestCellEntryWriteDeterministic(t *testing.T) {
	e := sampleCellEntry(t)
	var a, b bytes.Buffer
	if err := WriteCellEntry(&a, e); err != nil {
		t.Fatal(err)
	}
	if err := WriteCellEntry(&b, e); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same entry produced different bytes")
	}
}

func TestCellEntryRejectsBadInputs(t *testing.T) {
	e := sampleCellEntry(t)
	var buf bytes.Buffer
	if err := WriteCellEntry(&buf, e); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	cases := map[string]string{
		"empty":           "",
		"missing key":     strings.Replace(valid, `"key": "deadbeef"`, `"key": ""`, 1),
		"bad version":     strings.Replace(valid, `"version": 1`, `"version": 9`, 1),
		"unknown field":   `{"version":1,"key":"k","record":{},"extra":1}`,
		"trailing doc":    valid + valid,
		"trailing bytes":  valid + "garbage",
		"trailing object": valid + "{}",
	}
	for name, in := range cases {
		if _, err := ReadCellEntry(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Every resultio reader must reject trailing bytes after the JSON
// document: a truncated-then-concatenated or corrupted file must not
// parse as its leading prefix. Regression for the silently-accepting
// readers the content-addressed cache exposed.
func TestReadersRejectTrailingData(t *testing.T) {
	rec := FromResult(sampleResult(t), 0.05, 100)
	var recBuf bytes.Buffer
	if err := Write(&recBuf, rec); err != nil {
		t.Fatal(err)
	}
	bench := &BenchSuite{
		Results: []BenchResult{{Name: "x", Iterations: 1, NsPerOp: 1}},
	}
	var benchBuf bytes.Buffer
	if err := WriteBenchSuite(&benchBuf, bench); err != nil {
		t.Fatal(err)
	}
	tour := &TournamentSuite{
		Workloads: []string{"bfs"},
		Entries:   []TournamentEntry{{Name: "planner=threshold", WorkloadCycles: []uint64{1}}},
	}
	var tourBuf bytes.Buffer
	if err := WriteTournamentSuite(&tourBuf, tour); err != nil {
		t.Fatal(err)
	}

	for name, rd := range map[string]struct {
		valid string
		read  func(r *strings.Reader) error
	}{
		"Record": {recBuf.String(), func(r *strings.Reader) error {
			_, err := Read(r)
			return err
		}},
		"BenchSuite": {benchBuf.String(), func(r *strings.Reader) error {
			_, err := ReadBenchSuite(r)
			return err
		}},
		"TournamentSuite": {tourBuf.String(), func(r *strings.Reader) error {
			_, err := ReadTournamentSuite(r)
			return err
		}},
	} {
		if err := rd.read(strings.NewReader(rd.valid)); err != nil {
			t.Errorf("%s: rejected valid document: %v", name, err)
		}
		// Trailing whitespace is not data; it must stay accepted.
		if err := rd.read(strings.NewReader(rd.valid + "\n  \n")); err != nil {
			t.Errorf("%s: rejected trailing whitespace: %v", name, err)
		}
		for _, trailer := range []string{"garbage", "{}", rd.valid} {
			if err := rd.read(strings.NewReader(rd.valid + trailer)); err == nil {
				t.Errorf("%s: accepted document with trailing %q", name, trailer[:min(len(trailer), 16)])
			}
		}
	}
}

// Writers must not mutate their input: defaulting Version happens on a
// copy. Regression for WriteTournamentSuite writing s.Version in place.
func TestWritersDoNotMutateInput(t *testing.T) {
	rec := FromResult(sampleResult(t), 0.05, 100)
	rec.Version = 0
	if err := Write(&bytes.Buffer{}, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Version != 0 {
		t.Errorf("Write mutated rec.Version to %d", rec.Version)
	}

	bench := &BenchSuite{Results: []BenchResult{{Name: "x", Iterations: 1}}}
	if err := WriteBenchSuite(&bytes.Buffer{}, bench); err != nil {
		t.Fatal(err)
	}
	if bench.Version != 0 {
		t.Errorf("WriteBenchSuite mutated s.Version to %d", bench.Version)
	}

	tour := &TournamentSuite{
		Workloads: []string{"bfs"},
		Entries:   []TournamentEntry{{Name: "planner=threshold", WorkloadCycles: []uint64{1}}},
	}
	if err := WriteTournamentSuite(&bytes.Buffer{}, tour); err != nil {
		t.Fatal(err)
	}
	if tour.Version != 0 {
		t.Errorf("WriteTournamentSuite mutated s.Version to %d", tour.Version)
	}

	entry := sampleCellEntry(t)
	entry.Version = 0
	entry.Record.Version = 0
	if err := WriteCellEntry(&bytes.Buffer{}, entry); err != nil {
		t.Fatal(err)
	}
	if entry.Version != 0 || entry.Record.Version != 0 {
		t.Errorf("WriteCellEntry mutated versions: %d/%d", entry.Version, entry.Record.Version)
	}
}
