package resultio

import (
	"encoding/json"
	"fmt"
	"io"

	"uvmsim/internal/cxl"
)

// CXLFormatVersion identifies the co-location benchmark schema; bump on
// incompatible changes.
const CXLFormatVersion = 1

// CXLScenario is one co-location run archived in a CXLSuite: the same
// tenant mix executed under one pool policy, with the scenario's
// deterministic result (cycles, controller counters, per-tenant
// accounting and the reproducibility checksum) attached verbatim.
type CXLScenario struct {
	// Name labels the run inside the suite (conventionally the pool
	// policy, since the suite holds one tenant mix under several
	// policies).
	Name   string `json:"name"`
	Policy string `json:"policy"`
	GPUs   int    `json:"gpus"`
	// Tenants is the co-scheduled mix in ParseTenants syntax
	// ("workload:gpu:priority"), one entry per tenant.
	Tenants []string   `json:"tenants"`
	Seed    uint64     `json:"seed"`
	Result  cxl.Result `json:"result"`
}

// CXLSuite is an archived co-location benchmark: one tenant mix run
// under each pool policy so the policies' simulated-cycle totals can be
// compared directly. Like BenchSuite it carries the Go version for
// provenance, but unlike wall-clock benchmarks every field here is
// deterministic — a regenerated suite must be byte-identical.
type CXLSuite struct {
	Version   int           `json:"version"`
	GoVersion string        `json:"goVersion"`
	Scenarios []CXLScenario `json:"scenarios"`
}

// Scenario returns the named scenario, or nil when absent.
func (s *CXLSuite) Scenario(name string) *CXLScenario {
	for i := range s.Scenarios {
		if s.Scenarios[i].Name == name {
			return &s.Scenarios[i]
		}
	}
	return nil
}

// WriteCXLSuite emits the suite as indented JSON without mutating the
// caller's struct (an unset Version is defaulted on a copy).
func WriteCXLSuite(w io.Writer, s *CXLSuite) error {
	cp := *s
	if cp.Version == 0 {
		cp.Version = CXLFormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// ReadCXLSuite parses and validates one suite.
func ReadCXLSuite(r io.Reader) (*CXLSuite, error) {
	var s CXLSuite
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("resultio: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	if s.Version != CXLFormatVersion {
		return nil, fmt.Errorf("resultio: unsupported cxl suite version %d (want %d)", s.Version, CXLFormatVersion)
	}
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("resultio: cxl suite has no scenarios")
	}
	seen := make(map[string]bool, len(s.Scenarios))
	for i := range s.Scenarios {
		sc := &s.Scenarios[i]
		if sc.Name == "" {
			return nil, fmt.Errorf("resultio: cxl scenario %d missing name", i)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("resultio: duplicate cxl scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := validateCXLScenario(sc); err != nil {
			return nil, err
		}
	}
	return &s, nil
}

// validateCXLScenario applies the per-scenario rules shared by suite
// files and standalone cache entries.
func validateCXLScenario(sc *CXLScenario) error {
	if sc.Policy == "" || sc.GPUs <= 0 || len(sc.Tenants) == 0 {
		return fmt.Errorf("resultio: cxl scenario %q missing policy/gpus/tenants", sc.Name)
	}
	if sc.Result.SimCycles == 0 {
		return fmt.Errorf("resultio: cxl scenario %q has no simulated cycles", sc.Name)
	}
	if len(sc.Result.Tenants) != len(sc.Tenants) {
		return fmt.Errorf("resultio: cxl scenario %q: %d tenant results for %d tenants",
			sc.Name, len(sc.Result.Tenants), len(sc.Tenants))
	}
	return nil
}

// CXLEntry is one archived co-location run in the content-addressed
// result cache: the scenario (policy, tenant mix, seed and its
// deterministic result) under the cell's canonical key. It is the
// co-location counterpart of CellEntry, produced when a simd job's
// colo cells run.
type CXLEntry struct {
	Version int `json:"version"`
	// Key is the hex SHA-256 content address (serve.ColoKey).
	Key      string      `json:"key"`
	Scenario CXLScenario `json:"scenario"`
}

// WriteCXLEntry emits the entry as indented JSON without mutating the
// caller's struct (an unset Version is defaulted on a copy). The
// encoding is deterministic, so equal entries produce byte-identical
// payloads — the property the content-addressed cache relies on.
func WriteCXLEntry(w io.Writer, e *CXLEntry) error {
	cp := *e
	if cp.Version == 0 {
		cp.Version = CXLFormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// ReadCXLEntry parses and validates one co-location cache entry.
// Trailing bytes after the document are rejected.
func ReadCXLEntry(r io.Reader) (*CXLEntry, error) {
	var e CXLEntry
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("resultio: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	if e.Version != CXLFormatVersion {
		return nil, fmt.Errorf("resultio: unsupported cxl entry version %d (want %d)", e.Version, CXLFormatVersion)
	}
	if e.Key == "" {
		return nil, fmt.Errorf("resultio: cxl entry missing key")
	}
	if e.Scenario.Name == "" {
		return nil, fmt.Errorf("resultio: cxl entry scenario missing name")
	}
	if err := validateCXLScenario(&e.Scenario); err != nil {
		return nil, err
	}
	return &e, nil
}
