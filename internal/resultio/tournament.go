package resultio

import (
	"encoding/json"
	"fmt"
	"io"
)

// TournamentFormatVersion identifies the tournament-suite schema; bump
// on incompatible changes.
const TournamentFormatVersion = 1

// TournamentEntry is one pipeline combination's aggregate outcome over
// the tournament's workload matrix.
type TournamentEntry struct {
	// Name is the combination's leaderboard identity
	// (e.g. "planner=reuse-dist,prefetcher=bandit-pf").
	Name string `json:"name"`
	// Planner and Prefetcher are the mm registry names of the varied
	// stages (empty = the built-in default stage).
	Planner    string `json:"planner,omitempty"`
	Prefetcher string `json:"prefetcher,omitempty"`
	// TotalSimCycles sums simulated cycles over every workload — the
	// leaderboard metric, deterministic and machine-independent.
	TotalSimCycles uint64 `json:"totalSimCycles"`
	// WorkloadCycles holds the per-workload simulated cycles, aligned
	// with the suite's Workloads slice.
	WorkloadCycles []uint64 `json:"workloadCycles"`
	// Aggregate fault-path counters over the matrix.
	FarFaults      uint64 `json:"farFaults"`
	ThrashedPages  uint64 `json:"thrashedPages"`
	RemoteAccesses uint64 `json:"remoteAccesses"`
}

// TournamentSuite is an archived tournament leaderboard: every
// registered pipeline combination ranked by total simulated cycles over
// the same workload matrix. Like BenchSuite it carries enough context
// (scale, oversubscription, workload subset) to judge comparability.
type TournamentSuite struct {
	Version        int     `json:"version"`
	GoVersion      string  `json:"goVersion"`
	Scale          float64 `json:"scale"`
	OversubPercent uint64  `json:"oversubPercent"`
	// Workloads is the matrix's workload set, in column order.
	Workloads []string `json:"workloads"`
	// Entries is the leaderboard, best (lowest total cycles) first.
	Entries []TournamentEntry `json:"entries"`
}

// WriteTournamentSuite emits the suite as indented JSON without
// mutating the caller's struct (an unset Version is defaulted on a
// copy).
func WriteTournamentSuite(w io.Writer, s *TournamentSuite) error {
	cp := *s
	if cp.Version == 0 {
		cp.Version = TournamentFormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// ReadTournamentSuite parses and validates one suite.
func ReadTournamentSuite(r io.Reader) (*TournamentSuite, error) {
	var s TournamentSuite
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("resultio: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	if s.Version != TournamentFormatVersion {
		return nil, fmt.Errorf("resultio: unsupported tournament suite version %d (want %d)", s.Version, TournamentFormatVersion)
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("resultio: tournament suite has no workloads")
	}
	if len(s.Entries) == 0 {
		return nil, fmt.Errorf("resultio: tournament suite has no entries")
	}
	for i, e := range s.Entries {
		if e.Name == "" {
			return nil, fmt.Errorf("resultio: tournament entry %d missing name", i)
		}
		if len(e.WorkloadCycles) != len(s.Workloads) {
			return nil, fmt.Errorf("resultio: tournament entry %q has %d workload cycles for %d workloads",
				e.Name, len(e.WorkloadCycles), len(s.Workloads))
		}
		if i > 0 && s.Entries[i-1].TotalSimCycles > e.TotalSimCycles {
			return nil, fmt.Errorf("resultio: tournament entries not in leaderboard order at %q", e.Name)
		}
	}
	return &s, nil
}
