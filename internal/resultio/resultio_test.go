package resultio

import (
	"bytes"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
)

func sampleResult(t *testing.T) *core.Result {
	t.Helper()
	return core.RunWorkload("backprop", 0.05, 100, config.PolicyDisabled, config.Default())
}

func TestRoundTrip(t *testing.T) {
	res := sampleResult(t)
	rec := FromResult(res, 0.05, 100)
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "backprop" || got.Scale != 0.05 || got.OversubPercent != 100 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if got.Counters != rec.Counters {
		t.Fatalf("counters differ:\n%+v\n%+v", got.Counters, rec.Counters)
	}
	if len(got.Spans) != len(rec.Spans) {
		t.Fatalf("spans lost: %d vs %d", len(got.Spans), len(rec.Spans))
	}
	if got.Config.Policy != rec.Config.Policy || got.Config.DeviceMemBytes != rec.Config.DeviceMemBytes {
		t.Fatal("config fields lost")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	res := sampleResult(t)
	rec := FromResult(res, 1, 100)
	rec.Version = 99
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"version":1}`,                        // missing workload
		`{"version":1,"workload":"x","bad":1}`, // unknown field
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadValidatesCounters(t *testing.T) {
	res := sampleResult(t)
	rec := FromResult(res, 1, 100)
	rec.Counters.PrefetchedPages = rec.Counters.MigratedPages + 1
	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("accepted inconsistent counters")
	}
}

func TestCSV(t *testing.T) {
	res := sampleResult(t)
	rec := FromResult(res, 0.05, 100)
	header := CSVHeader()
	row := CSVRow(rec)
	if strings.Count(header, ",") != strings.Count(row, ",") {
		t.Fatalf("column mismatch:\n%s\n%s", header, row)
	}
	if !strings.HasPrefix(row, "backprop,Disabled,0.05,100,") {
		t.Fatalf("row = %s", row)
	}
	if !strings.HasPrefix(header, "workload,policy,scale,") {
		t.Fatalf("header = %s", header)
	}
}
