package resultio

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func sampleSuite() *BenchSuite {
	return &BenchSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      0.25,
		Results: []BenchResult{
			{Name: "Fig6And7", Iterations: 2, NsPerOp: 1.5e9, AllocsPerOp: 1000, BytesPerOp: 4096},
			{Name: "EngineSchedule", Iterations: 1e6, NsPerOp: 120, AllocsPerOp: 0, BytesPerOp: 0},
		},
	}
}

func TestBenchSuiteRoundTrip(t *testing.T) {
	s := sampleSuite()
	var buf bytes.Buffer
	if err := WriteBenchSuite(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != BenchFormatVersion || got.Scale != 0.25 || len(got.Results) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Results[0] != s.Results[0] || got.Results[1] != s.Results[1] {
		t.Fatalf("results differ: %+v vs %+v", got.Results, s.Results)
	}
}

func TestBenchSuiteRejectsBadVersion(t *testing.T) {
	s := sampleSuite()
	s.Version = BenchFormatVersion + 1
	var buf bytes.Buffer
	if err := WriteBenchSuite(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchSuite(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
}

func TestBenchSuiteRejectsInvalidResults(t *testing.T) {
	for name, mutate := range map[string]func(*BenchSuite){
		"empty":     func(s *BenchSuite) { s.Results = nil },
		"noName":    func(s *BenchSuite) { s.Results[0].Name = "" },
		"negative":  func(s *BenchSuite) { s.Results[0].NsPerOp = -1 },
		"zeroIters": func(s *BenchSuite) { s.Results[1].Iterations = 0 },
	} {
		s := sampleSuite()
		mutate(s)
		var buf bytes.Buffer
		if err := WriteBenchSuite(&buf, s); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBenchSuite(&buf); err == nil {
			t.Fatalf("%s: invalid suite accepted", name)
		}
	}
}
