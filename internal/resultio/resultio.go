// Package resultio persists simulation results as JSON records and CSV
// rows so sweeps can be post-processed outside the simulator (plotting,
// regression tracking, archival). Records are self-describing: they
// carry the full configuration alongside the measured counters.
package resultio

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/obs"
	"uvmsim/internal/stats"
)

// FormatVersion identifies the record schema; bump on incompatible
// changes.
const FormatVersion = 1

// Record is one archived simulation run.
type Record struct {
	Version  int    `json:"version"`
	Workload string `json:"workload"`
	// Scale and OversubPercent describe how the run was derived; zero
	// when the caller sized things manually.
	Scale          float64           `json:"scale,omitempty"`
	OversubPercent uint64            `json:"oversubPercent,omitempty"`
	Config         config.Config     `json:"config"`
	Counters       stats.Counters    `json:"counters"`
	Spans          []core.KernelSpan `json:"spans,omitempty"`
	// Metrics is the run's observability snapshot when the run was
	// executed with metrics collection on (absent otherwise).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// FromResult builds a record from a finished run.
func FromResult(res *core.Result, scale float64, oversubPercent uint64) *Record {
	return &Record{
		Version:        FormatVersion,
		Workload:       res.Workload,
		Scale:          scale,
		OversubPercent: oversubPercent,
		Config:         res.Config,
		Counters:       res.Counters,
		Spans:          res.Spans,
	}
}

// Write emits the record as indented JSON. The caller's record is
// never mutated: an unset Version is defaulted on a copy (writers must
// be side-effect-free — see TestWritersDoNotMutateInput).
func Write(w io.Writer, rec *Record) error {
	cp := *rec
	if cp.Version == 0 {
		cp.Version = FormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cp)
}

// requireEOF rejects any non-whitespace bytes after the decoded JSON
// document. Every resultio reader enforces this: a truncated write that
// was later concatenated with another document, or a corrupted
// content-addressed cache entry, must fail loudly instead of parsing
// "successfully" as its leading prefix.
func requireEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("resultio: trailing data after JSON document")
	}
	return nil
}

// Read parses one record and validates its schema version and counters.
func Read(r io.Reader) (*Record, error) {
	var rec Record
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("resultio: %w", err)
	}
	if err := requireEOF(dec); err != nil {
		return nil, err
	}
	if err := validateRecord(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// validateRecord checks a decoded record's schema version, counters and
// optional metrics block (shared by Read and ReadCellEntry).
func validateRecord(rec *Record) error {
	if rec.Version != FormatVersion {
		return fmt.Errorf("resultio: unsupported record version %d (want %d)", rec.Version, FormatVersion)
	}
	if rec.Workload == "" {
		return fmt.Errorf("resultio: record missing workload")
	}
	if err := rec.Counters.Validate(); err != nil {
		return fmt.Errorf("resultio: %w", err)
	}
	if rec.Metrics != nil {
		if err := rec.Metrics.Validate(); err != nil {
			return fmt.Errorf("resultio: %w", err)
		}
		if err := checkMetricsAgainstCounters(rec.Metrics, &rec.Counters); err != nil {
			return fmt.Errorf("resultio: %w", err)
		}
	}
	return nil
}

// metricForCounter maps the canonical metric names the driver publishes
// to the stats.Counters fields they must mirror exactly.
var metricForCounter = []struct {
	metric string
	field  func(*stats.Counters) uint64
}{
	{"sim.cycles", func(c *stats.Counters) uint64 { return c.Cycles }},
	{"uvm.access.near", func(c *stats.Counters) uint64 { return c.NearAccesses }},
	{"uvm.access.remote_reads", func(c *stats.Counters) uint64 { return c.RemoteReads }},
	{"uvm.access.remote_writes", func(c *stats.Counters) uint64 { return c.RemoteWrites }},
	{"uvm.fault.far", func(c *stats.Counters) uint64 { return c.FarFaults }},
	{"uvm.fault.batches", func(c *stats.Counters) uint64 { return c.FaultBatches }},
	{"uvm.migrate.pages", func(c *stats.Counters) uint64 { return c.MigratedPages }},
	{"uvm.migrate.prefetched_pages", func(c *stats.Counters) uint64 { return c.PrefetchedPages }},
	{"uvm.migrate.thrashed_pages", func(c *stats.Counters) uint64 { return c.ThrashedPages }},
	{"uvm.evict.pages", func(c *stats.Counters) uint64 { return c.EvictedPages }},
	{"uvm.evict.writeback_pages", func(c *stats.Counters) uint64 { return c.WrittenBackPages }},
	{"uvm.pcie.h2d_bytes", func(c *stats.Counters) uint64 { return c.H2DBytes }},
	{"uvm.pcie.d2h_bytes", func(c *stats.Counters) uint64 { return c.D2HBytes }},
	{"uvm.tlb.hits", func(c *stats.Counters) uint64 { return c.TLBHits }},
	{"uvm.tlb.misses", func(c *stats.Counters) uint64 { return c.TLBMisses }},
	{"uvm.tlb.shootdowns", func(c *stats.Counters) uint64 { return c.TLBShootdowns }},
	{"gpu.instructions", func(c *stats.Counters) uint64 { return c.Instructions }},
	{"gpu.mem_instructions", func(c *stats.Counters) uint64 { return c.MemInstructions }},
	{"gpu.warps_retired", func(c *stats.Counters) uint64 { return c.WarpsRetired }},
}

// checkMetricsAgainstCounters cross-validates a metrics snapshot against
// the stats block of the same run: every canonical metric present in the
// snapshot must equal its counters field.
func checkMetricsAgainstCounters(m *obs.Snapshot, c *stats.Counters) error {
	for _, mc := range metricForCounter {
		got, ok := m.Counters[mc.metric]
		if !ok {
			continue // partially instrumented snapshots are fine
		}
		if want := mc.field(c); got != want {
			return fmt.Errorf("metric %q = %d disagrees with counters value %d", mc.metric, got, want)
		}
	}
	return nil
}

// csvColumns is the flat metric schema shared by CSVHeader and CSVRow.
var csvColumns = []string{
	"workload", "policy", "scale", "oversubPercent", "cycles",
	"nearAccesses", "remoteReads", "remoteWrites", "farFaults",
	"faultBatches", "migratedPages", "prefetchedPages", "thrashedPages",
	"evictedPages", "writtenBackPages", "tlbHits", "tlbMisses",
	"tlbShootdowns", "h2dBytes", "d2hBytes", "instructions",
	"warpsRetired",
}

// CSVHeader returns the header row for CSVRow records.
func CSVHeader() string { return strings.Join(csvColumns, ",") }

// CSVRow renders the record as one CSV line matching CSVHeader.
func CSVRow(rec *Record) string {
	c := rec.Counters
	vals := []interface{}{
		rec.Workload, rec.Config.Policy, rec.Scale, rec.OversubPercent, c.Cycles,
		c.NearAccesses, c.RemoteReads, c.RemoteWrites, c.FarFaults,
		c.FaultBatches, c.MigratedPages, c.PrefetchedPages, c.ThrashedPages,
		c.EvictedPages, c.WrittenBackPages, c.TLBHits, c.TLBMisses,
		c.TLBShootdowns, c.H2DBytes, c.D2HBytes, c.Instructions,
		c.WarpsRetired,
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}
