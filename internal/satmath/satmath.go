// Package satmath provides saturating uint64 arithmetic for access
// counters and migration thresholds. The paper's Adaptive policy
// multiplies a static threshold by a round-trip count and a penalty of
// p=2^20 ("effectively infinite"); a wrapped product collapses such a
// threshold to a small number and silently re-enables migration for
// exactly the blocks the penalty was supposed to pin host-side (fixed in
// PR 2). Counter and threshold math must therefore saturate at
// MaxUint64 instead of wrapping — the satarith analyzer in
// internal/lint enforces that these helpers are used.
package satmath

import (
	"math"
	"math/bits"
)

// Mul returns a*b, saturating at MaxUint64 on overflow.
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi != 0 {
		return math.MaxUint64
	}
	return lo
}

// Add returns a+b, saturating at MaxUint64 on overflow.
func Add(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		return math.MaxUint64
	}
	return s
}
