package satmath

import (
	"math"
	"testing"
)

func TestMul(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{0, math.MaxUint64, 0},
		{1, math.MaxUint64, math.MaxUint64},
		{3, 5, 15},
		{1 << 32, 1 << 31, 1 << 63},
		{1 << 32, 1 << 32, math.MaxUint64},          // exactly 2^64
		{math.MaxUint64, 2, math.MaxUint64},         // wraps to MaxUint64-1 unclamped
		{math.MaxUint64, math.MaxUint64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAdd(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxUint64, 0, math.MaxUint64},
		{math.MaxUint64, 1, math.MaxUint64}, // wraps to 0 unclamped
		{math.MaxUint64 - 1, 1, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
