// Package tier describes the simulated memory hierarchy as an explicit
// tier topology instead of the baked-in host/device pair the paper
// models. A Topology is an ordered list of tiers — one host tier,
// one or more per-GPU device tiers, and optionally one pooled tier
// (CXL-attached memory shared by every GPU) — each carrying its own
// capacity, access latency and bandwidth.
//
// Tiers are identified two ways: by name (stable, user-facing — CLI
// flags and metrics use names) and by Index (dense, zero-based — the
// UVM driver's residency state and the devmem pools are indexed by it).
// The host tier is always index 0, so a residency value of tier.HostIndex
// preserves the meaning the old boolean "not device-resident" had.
package tier

import (
	"fmt"
	"strings"

	"uvmsim/internal/memunits"
)

// Kind classifies a tier's role in the hierarchy.
type Kind int

const (
	// Host is CPU-attached memory reachable over the host link (PCIe).
	// It is capacity-unbounded in the model: the backing store.
	Host Kind = iota
	// Device is one GPU's local DRAM: the only tier the SMs access at
	// DRAM latency, and the tier capacity pressure evicts from.
	Device
	// Pool is a CXL-attached memory pool shared by every GPU: cheaper
	// to reach than host memory, arbitrated by the pool's page
	// controller (internal/cxl).
	Pool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Device:
		return "device"
	case Pool:
		return "pool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a tier-kind name ("host", "device", "pool").
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "host":
		return Host, nil
	case "device":
		return Device, nil
	case "pool":
		return Pool, nil
	default:
		return 0, fmt.Errorf("tier: unknown tier %q (want host, device or pool)", s)
	}
}

// Index identifies a tier within its Topology. The host tier is always
// HostIndex; device tiers follow in GPU order; the pool tier (when
// present) is last. Residency state in the UVM driver stores an Index
// per block, so the type is deliberately a small unsigned integer.
type Index uint8

// HostIndex is the host tier's position in every valid topology.
const HostIndex Index = 0

// MaxTiers bounds a topology so Index never overflows its uint8
// representation (and residency state stays one byte per block).
const MaxTiers = 255

// Spec describes one tier.
type Spec struct {
	// Name is the unique, user-facing tier name ("host", "gpu0",
	// "cxl-pool"). Metrics and CLI selections refer to tiers by name.
	Name string
	// Kind is the tier's role.
	Kind Kind
	// CapacityBytes bounds the tier's frame pool. Zero means unbounded
	// and is only legal for the host tier (the backing store).
	CapacityBytes uint64
	// LatencyCycles is the tier's access latency in core cycles, as
	// seen by an SM once data is resident there (DRAM latency for
	// device tiers, the CXL load-to-use latency for the pool).
	LatencyCycles uint64
	// BytesPerCycle is the per-direction bandwidth of the link that
	// fronts the tier (ignored for device tiers, which the SMs reach
	// through the on-chip fabric).
	BytesPerCycle float64
}

// Topology is a validated, immutable tier list.
type Topology struct {
	tiers []Spec
}

// New validates the specs and returns the topology. Rules: at most
// MaxTiers tiers; unique non-empty names; exactly one host tier and it
// must be first; at least one device tier; at most one pool tier;
// capacities of device and pool tiers positive and page aligned.
func New(specs ...Spec) (Topology, error) {
	if len(specs) > MaxTiers {
		return Topology{}, fmt.Errorf("tier: %d tiers exceed the maximum of %d", len(specs), MaxTiers)
	}
	seen := make(map[string]bool, len(specs))
	hosts, devices, pools := 0, 0, 0
	for i, s := range specs {
		if s.Name == "" {
			return Topology{}, fmt.Errorf("tier: tier %d has no name", i)
		}
		if seen[s.Name] {
			return Topology{}, fmt.Errorf("tier: duplicate tier name %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Kind {
		case Host:
			hosts++
			if i != int(HostIndex) {
				return Topology{}, fmt.Errorf("tier: host tier %q must be first", s.Name)
			}
		case Device:
			devices++
		case Pool:
			pools++
		default:
			return Topology{}, fmt.Errorf("tier: tier %q has unknown kind %d", s.Name, int(s.Kind))
		}
		if s.Kind != Host {
			if s.CapacityBytes == 0 {
				return Topology{}, fmt.Errorf("tier: %s tier %q needs a capacity", s.Kind, s.Name)
			}
			if s.CapacityBytes%memunits.PageSize != 0 {
				return Topology{}, fmt.Errorf("tier: %s tier %q capacity %d not page aligned", s.Kind, s.Name, s.CapacityBytes)
			}
		}
	}
	switch {
	case hosts != 1:
		return Topology{}, fmt.Errorf("tier: want exactly one host tier, have %d", hosts)
	case devices == 0:
		return Topology{}, fmt.Errorf("tier: want at least one device tier")
	case pools > 1:
		return Topology{}, fmt.Errorf("tier: want at most one pool tier, have %d", pools)
	}
	t := Topology{tiers: make([]Spec, len(specs))}
	copy(t.tiers, specs)
	return t, nil
}

// MustNew is New for statically known-good topologies; it panics on
// validation failure.
func MustNew(specs ...Spec) Topology {
	t, err := New(specs...)
	if err != nil {
		panic(err)
	}
	return t
}

// TwoTier returns the classic host+device pair the paper models: the
// unbounded host tier and one device tier of the given capacity and
// DRAM latency. This is the topology every pre-existing configuration
// resolves to, which is what keeps the default path byte-identical.
func TwoTier(deviceBytes, dramLatency uint64) Topology {
	return MustNew(
		Spec{Name: "host", Kind: Host},
		Spec{Name: "gpu0", Kind: Device, CapacityBytes: deviceBytes, LatencyCycles: dramLatency},
	)
}

// Len returns the number of tiers.
func (t Topology) Len() int { return len(t.tiers) }

// Spec returns tier i's description.
func (t Topology) Spec(i Index) Spec {
	return t.tiers[i]
}

// Lookup resolves a tier name to its index.
func (t Topology) Lookup(name string) (Index, bool) {
	for i, s := range t.tiers {
		if s.Name == name {
			return Index(i), true
		}
	}
	return 0, false
}

// Devices returns the device-tier indices in order.
func (t Topology) Devices() []Index {
	var out []Index
	for i, s := range t.tiers {
		if s.Kind == Device {
			out = append(out, Index(i))
		}
	}
	return out
}

// PoolTier returns the pool tier's index, ok=false when the topology
// has none (the two-tier default).
func (t Topology) PoolTier() (Index, bool) {
	for i, s := range t.tiers {
		if s.Kind == Pool {
			return Index(i), true
		}
	}
	return 0, false
}

// String renders the topology compactly ("host + gpu0(12GiB) +
// cxl-pool(4GiB)") for logs and run banners.
func (t Topology) String() string {
	var b strings.Builder
	for i, s := range t.tiers {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(s.Name)
		if s.CapacityBytes > 0 {
			fmt.Fprintf(&b, "(%s)", memunits.HumanBytes(s.CapacityBytes))
		}
	}
	return b.String()
}
