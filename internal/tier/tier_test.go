package tier

import (
	"strings"
	"testing"

	"uvmsim/internal/memunits"
)

func TestTwoTierDefaultShape(t *testing.T) {
	topo := TwoTier(12<<30, 100)
	if topo.Len() != 2 {
		t.Fatalf("two-tier topology has %d tiers", topo.Len())
	}
	if got := topo.Spec(HostIndex); got.Kind != Host || got.Name != "host" {
		t.Fatalf("tier 0 = %+v, want the host tier", got)
	}
	devs := topo.Devices()
	if len(devs) != 1 || devs[0] != 1 {
		t.Fatalf("device tiers = %v, want [1]", devs)
	}
	if _, ok := topo.PoolTier(); ok {
		t.Fatal("two-tier topology reports a pool tier")
	}
	if got := topo.Spec(1).CapacityBytes; got != 12<<30 {
		t.Fatalf("device capacity = %d", got)
	}
}

func TestThreeTierWithPool(t *testing.T) {
	topo, err := New(
		Spec{Name: "host", Kind: Host},
		Spec{Name: "gpu0", Kind: Device, CapacityBytes: memunits.ChunkSize, LatencyCycles: 100},
		Spec{Name: "gpu1", Kind: Device, CapacityBytes: memunits.ChunkSize, LatencyCycles: 100},
		Spec{Name: "cxl-pool", Kind: Pool, CapacityBytes: 4 * memunits.ChunkSize, LatencyCycles: 300},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := topo.PoolTier()
	if !ok || p != 3 {
		t.Fatalf("pool tier = %d,%v want 3,true", p, ok)
	}
	if devs := topo.Devices(); len(devs) != 2 || devs[0] != 1 || devs[1] != 2 {
		t.Fatalf("device tiers = %v", devs)
	}
	if idx, ok := topo.Lookup("gpu1"); !ok || idx != 2 {
		t.Fatalf("Lookup(gpu1) = %d,%v", idx, ok)
	}
	if _, ok := topo.Lookup("gpu7"); ok {
		t.Fatal("Lookup of unknown tier succeeded")
	}
	if s := topo.String(); !strings.Contains(s, "cxl-pool(8MB)") {
		t.Fatalf("String() = %q", s)
	}
}

func TestValidationRejectsMalformedTopologies(t *testing.T) {
	dev := Spec{Name: "gpu0", Kind: Device, CapacityBytes: memunits.ChunkSize}
	cases := []struct {
		name  string
		specs []Spec
		want  string
	}{
		{"no host", []Spec{dev}, "exactly one host"},
		{"two hosts", []Spec{{Name: "h1", Kind: Host}, {Name: "h2", Kind: Host}, dev}, "must be first"},
		{"host not first", []Spec{dev, {Name: "host", Kind: Host}}, "must be first"},
		{"no device", []Spec{{Name: "host", Kind: Host}}, "at least one device"},
		{"duplicate name", []Spec{{Name: "host", Kind: Host}, dev, dev}, "duplicate"},
		{"empty name", []Spec{{Name: "host", Kind: Host}, {Kind: Device, CapacityBytes: memunits.ChunkSize}}, "no name"},
		{"zero capacity", []Spec{{Name: "host", Kind: Host}, {Name: "gpu0", Kind: Device}}, "needs a capacity"},
		{"unaligned capacity", []Spec{{Name: "host", Kind: Host}, {Name: "gpu0", Kind: Device, CapacityBytes: 4097}}, "not page aligned"},
		{"two pools", []Spec{{Name: "host", Kind: Host}, dev,
			{Name: "p1", Kind: Pool, CapacityBytes: memunits.ChunkSize},
			{Name: "p2", Kind: Pool, CapacityBytes: memunits.ChunkSize}}, "at most one pool"},
		{"bad kind", []Spec{{Name: "host", Kind: Host}, {Name: "x", Kind: Kind(9), CapacityBytes: memunits.ChunkSize}}, "unknown kind"},
	}
	for _, tc := range cases {
		if _, err := New(tc.specs...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"host": Host, "Device": Device, " pool ": Pool} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("l2"); err == nil {
		t.Fatal("ParseKind accepted an unknown tier name")
	}
}

func TestKindString(t *testing.T) {
	if Host.String() != "host" || Device.String() != "device" || Pool.String() != "pool" {
		t.Fatal("kind names drifted")
	}
	if s := Kind(7).String(); !strings.Contains(s, "7") {
		t.Fatalf("unknown kind renders %q", s)
	}
}
