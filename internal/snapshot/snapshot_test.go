package snapshot

import (
	"fmt"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/workloads"
)

// report renders every observable statistic of a run — all counters and
// every kernel span — so the equivalence comparison catches divergence
// in any field, not just runtime.
func report(r *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %+v\n", r.Workload, r.Counters)
	for _, s := range r.Spans {
		fmt.Fprintf(&b, "%+v\n", s)
	}
	return b.String()
}

// TestRunGroupMatchesScratch is the fork-equivalence golden property:
// for every workload class and oversubscription level, running the four
// policies as one prefix-shared group must produce byte-identical
// results to running each cell from scratch. This is the contract that
// makes snapshot sharing a pure optimization.
func TestRunGroupMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep comparison")
	}
	for _, name := range []string{"fdtd", "bfs", "ra"} {
		for _, pct := range []uint64{100, 125} {
			t.Run(fmt.Sprintf("%s/%d", name, pct), func(t *testing.T) {
				base := config.Default()
				base.Penalty = 8
				b := workloads.MustGet(name)(0.1)
				var cfgs []config.Config
				for _, pol := range config.Policies() {
					cfgs = append(cfgs, core.DeriveConfig(b, 1, pct, pol, base))
				}
				got, st := RunGroup(b, cfgs)
				if st.Cells != len(cfgs) || st.Scratch+st.Forked != st.Cells {
					t.Errorf("inconsistent stats: %+v", st)
				}
				for i, cfg := range cfgs {
					want := report(core.Run(b, cfg))
					if r := report(got[i]); r != want {
						t.Errorf("%v: forked run diverged from scratch:\n--- scratch\n%s--- forked\n%s",
							cfg.Policy, want, r)
					}
				}
				t.Logf("%s/%d: %+v", name, pct, st)
			})
		}
	}
}

// TestRunGroupSharesWork asserts the mechanism actually fires: the
// memory-fill warmup is first-touch under Disabled, Oversub and
// Adaptive alike, so a policy sweep group must complete at least one
// follower from a fork with a non-trivial shared prefix.
func TestRunGroupSharesWork(t *testing.T) {
	base := config.Default()
	base.Penalty = 8
	b := workloads.MustGet("fdtd")(0.1)
	var cfgs []config.Config
	for _, pol := range config.Policies() {
		cfgs = append(cfgs, core.DeriveConfig(b, 1, 125, pol, base))
	}
	_, st := RunGroup(b, cfgs)
	if st.Forked == 0 || st.SharedKernels == 0 {
		t.Fatalf("no prefix sharing on a policy sweep: %+v", st)
	}
}

// TestRunGroupUnsharableFallsBack pins the scratch fallbacks: a learned
// pipeline stage and a non-groupable configuration mix must both run
// every cell from scratch and still return correct results.
func TestRunGroupUnsharableFallsBack(t *testing.T) {
	base := config.Default()
	base.Penalty = 8
	b := workloads.MustGet("ra")(0.05)
	cfgA := core.DeriveConfig(b, 1, 125, config.PolicyAdaptive, base)
	cfgB := core.DeriveConfig(b, 1, 125, config.PolicyOversub, base)

	learned := cfgA
	learned.MMPipeline.Planner = "reuse-dist"
	slower := cfgB
	slower.PCIeLatency *= 2
	for _, tc := range []struct {
		name string
		cfgs []config.Config
	}{
		{"learned-stage", []config.Config{learned, cfgB}},
		{"non-policy-field-differs", []config.Config{cfgA, slower}},
		{"single-cell", []config.Config{cfgA}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, st := RunGroup(b, tc.cfgs)
			if st.Scratch != len(tc.cfgs) || st.Forked != 0 {
				t.Fatalf("expected all-scratch fallback, got %+v", st)
			}
			for i, cfg := range tc.cfgs {
				want := report(core.Run(b, cfg))
				if r := report(got[i]); r != want {
					t.Errorf("cell %d: fallback result differs from scratch:\n--- want\n%s--- got\n%s", i, want, r)
				}
			}
		})
	}
}
