// Package snapshot runs a group of simulation cells that share a
// workload and differ only in migration-policy configuration, executing
// the shared prefix of their histories once.
//
// The leader (first configuration) runs normally while a decision
// monitor mirrors every policy-relevant driver decision into shadow
// planners built from the follower configurations. As long as a
// follower's shadow agrees with every decision the leader has taken,
// the two runs are state-identical — the planner consultation is the
// only seam where the policy configuration can influence the
// simulation, so identical decisions imply identical state
// trajectories. At each quiescent kernel barrier every
// still-in-agreement follower replaces its stored fork with a fresh
// deep copy of the leader; when a follower's shadow first disagrees
// (or a decision is taken on a seam shadows cannot replicate —
// placement advice, or eviction under a different replacement policy),
// that follower finishes from its last fork, re-running only the
// divergent suffix. Followers that never reached a usable fork point
// run from scratch.
//
// The scheme is exact, not approximate: a forked run is byte-identical
// to the same cell run from scratch (the equivalence property test
// pins this). Learned pipeline stages carry history a fresh fork
// cannot rebuild, so runs using them fall back to scratch execution
// (see mm.ForkablePipeline).
package snapshot

import (
	"fmt"
	"reflect"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/mm"
	"uvmsim/internal/workloads"
)

// Stats reports how much work prefix sharing saved for one group.
type Stats struct {
	Cells         int // cells in the group
	TotalKernels  int // kernel launches the group would run from scratch
	SharedKernels int // kernel launches skipped by finishing from forks
	Forked        int // cells completed from a fork
	Scratch       int // cells run from scratch (the leader included)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cells += other.Cells
	s.TotalKernels += other.TotalKernels
	s.SharedKernels += other.SharedKernels
	s.Forked += other.Forked
	s.Scratch += other.Scratch
}

// GroupKey normalizes away the fields a policy sweep varies; two
// configurations are groupable exactly when their keys are equal (the
// key is comparable, so it can index a map of prefix groups). Besides
// the policy triple this includes the planner's threshold inputs
// (StaticThreshold, Penalty): outside learned stages — which are not
// forkable anyway — they reach decisions only through the planner
// seam the shadow monitors, and through the prefer-host advice branch,
// which conservatively diverges every follower.
func GroupKey(c config.Config) config.Config {
	c.Policy = 0
	c.Replacement = 0
	c.WriteMigrates = false
	c.StaticThreshold = 0
	c.Penalty = 0
	return c
}

// Groupable reports whether two configurations may share a prefix:
// they must be identical outside the migration-policy fields (Policy,
// Replacement, WriteMigrates) and planner thresholds (StaticThreshold,
// Penalty).
func Groupable(a, b config.Config) bool { return GroupKey(a) == GroupKey(b) }

// follower tracks one non-leader cell during the leader's run.
type follower struct {
	cfg config.Config
	// shadow is the planner a from-scratch run under cfg would consult;
	// it must be pure (see mm.ForkablePipeline), so feeding it the
	// leader's decision stream costs nothing and mutates nothing.
	shadow mm.MigrationPlanner
	// evictsLikeLeader: eviction outcomes depend on the replacement
	// policy, so a follower configured differently diverges at the
	// first eviction even if its shadow still agrees.
	evictsLikeLeader bool
	diverged         bool
	fork             *core.Simulator
	forkKernels      int // kernels completed at the fork point
}

// monitor receives the leader driver's decision stream.
type monitor struct {
	followers []*follower
}

func (m *monitor) OnPlan(a mm.Access, migrate bool) {
	for _, f := range m.followers {
		if !f.diverged && f.shadow.ShouldMigrate(a) != migrate {
			f.diverged = true
		}
	}
}

func (m *monitor) OnEvict() {
	for _, f := range m.followers {
		if !f.evictsLikeLeader {
			f.diverged = true
		}
	}
}

func (m *monitor) OnUnforkable(string) {
	for _, f := range m.followers {
		f.diverged = true
	}
}

// RunGroup runs one cell per configuration against the shared workload
// and returns the results in input order. All configurations must be
// mutually Groupable. Cells whose pipeline is not forkable, and groups
// of one, run from scratch. The leader is chosen to carry the group's
// majority replacement policy: eviction outcomes depend on replacement,
// so a minority-replacement leader (Disabled's LRU in a standard policy
// sweep) would diverge every follower at the first eviction.
func RunGroup(b *workloads.Built, cfgs []config.Config) ([]*core.Result, Stats) {
	if len(cfgs) > 1 {
		counts := make(map[config.ReplacementPolicy]int)
		for _, c := range cfgs {
			counts[c.Replacement]++
		}
		lead := 0
		for i, c := range cfgs {
			if leaderScore(c, counts, len(cfgs)) < leaderScore(cfgs[lead], counts, len(cfgs)) {
				lead = i
			}
		}
		if lead != 0 {
			order := make([]config.Config, 0, len(cfgs))
			order = append(order, cfgs[lead])
			order = append(order, cfgs[:lead]...)
			order = append(order, cfgs[lead+1:]...)
			res, st := runGroupOrdered(b, order)
			out := make([]*core.Result, len(cfgs))
			out[lead] = res[0]
			copy(out[:lead], res[1:1+lead])
			copy(out[lead+1:], res[1+lead:])
			return out, st
		}
	}
	return runGroupOrdered(b, cfgs)
}

// leaderScore ranks a configuration's fitness to lead its group; lower
// is better. A minority-replacement leader loses the majority at the
// first eviction, and a leader whose planner migrates eagerly from the
// start (Always) loses the first-touch policies at the first access —
// whereas Oversub and Disabled behave first-touch through the whole
// memory-fill warmup, the largest shareable prefix in a policy sweep.
func leaderScore(c config.Config, counts map[config.ReplacementPolicy]int, total int) int {
	s := (total - counts[c.Replacement]) * 8
	switch c.Policy {
	case config.PolicyOversub:
		// Best: first-touch until the capacity wall, majority replacement.
	case config.PolicyDisabled:
		s += 1
	case config.PolicyAdaptive:
		s += 2
	default:
		s += 3
	}
	return s
}

// runGroupOrdered is RunGroup with cfgs[0] as the leader.
func runGroupOrdered(b *workloads.Built, cfgs []config.Config) ([]*core.Result, Stats) {
	st := Stats{Cells: len(cfgs)}
	results := make([]*core.Result, len(cfgs))
	scratch := func(i int) {
		results[i] = core.Run(b, cfgs[i])
		st.Scratch++
	}

	leader := cfgs[0]
	sharable := len(cfgs) > 1 && mm.ForkablePipeline(leader.MMPipeline) == nil
	for _, c := range cfgs[1:] {
		if !Groupable(leader, c) {
			sharable = false
		}
	}
	if !sharable {
		for i := range cfgs {
			scratch(i)
		}
		return results, st
	}

	followers := make([]*follower, len(cfgs)-1)
	for i, c := range cfgs[1:] {
		pipe, err := mm.Build(c)
		if err != nil {
			panic(err) // leader's pipeline built; groupable cfg cannot fail
		}
		followers[i] = &follower{
			cfg:              c,
			shadow:           pipe.Planner,
			evictsLikeLeader: c.Replacement == leader.Replacement,
		}
	}

	sim := core.New(b, leader)
	sim.Driver.SetDecisionMonitor(&monitor{followers: followers})
	leaderRes := sim.StartResult()
	n := sim.KernelCount()
	st.TotalKernels = n * len(cfgs)
	for i := 0; i < n; i++ {
		sim.RunKernel(i, leaderRes)
		if !sim.Quiescent() {
			continue // migration tail still in flight: not a fork point
		}
		for _, f := range followers {
			if f.diverged {
				continue
			}
			// Forking at every quiescent barrier would spend more time
			// deep-copying state than the shared prefix saves on long
			// kernel sequences. Geometric backoff caps the copies at
			// O(log n) per follower while keeping the stored prefix at
			// least half of what eager forking would give; the final
			// barrier always forks, so a follower that never diverges
			// skips the entire kernel sequence.
			if f.fork != nil && i+1 < n && i+1 < 2*f.forkKernels {
				continue
			}
			fk, err := sim.Fork(f.cfg)
			if err != nil {
				// Conservative: treat an unforkable barrier as divergence
				// so the follower finishes from its previous fork.
				f.diverged = true
				continue
			}
			f.fork, f.forkKernels = fk, i+1
		}
	}
	sim.Driver.SetDecisionMonitor(nil)
	sim.FinishRun(leaderRes)
	results[0] = leaderRes
	st.Scratch++

	for fi, f := range followers {
		if f.fork == nil {
			scratch(1 + fi)
			continue
		}
		res := f.fork.StartResult()
		// The shared prefix is decision-identical, so the leader's spans
		// for the skipped kernels are the follower's spans.
		res.Spans = append(res.Spans, leaderRes.Spans[:f.forkKernels]...)
		for i := f.forkKernels; i < n; i++ {
			f.fork.RunKernel(i, res)
		}
		f.fork.FinishRun(res)
		results[1+fi] = res
		st.Forked++
		st.SharedKernels += f.forkKernels
	}
	return results, st
}

// SelfCheck proves the fork machinery on one configuration: it runs the
// cell from scratch and as the follower of a two-cell group under the
// identical configuration — the follower's shadow can never disagree
// with the leader, so it finishes from a fork taken at the last
// quiescent kernel barrier — and verifies the two results are
// identical. It returns the (scratch) result and the group's sharing
// stats; Stats.Forked == 0 means no barrier was forkable (placement
// advice in play, or no kernel quiesced) and the check was vacuous but
// still passed. A non-forkable pipeline is an error, not a silent
// scratch fallback: the caller asked for the check.
func SelfCheck(b *workloads.Built, cfg config.Config) (*core.Result, Stats, error) {
	if err := mm.ForkablePipeline(cfg.MMPipeline); err != nil {
		return nil, Stats{}, fmt.Errorf("snapshot: %w", err)
	}
	res, st := runGroupOrdered(b, []config.Config{cfg, cfg})
	if !reflect.DeepEqual(res[0], res[1]) {
		return nil, st, fmt.Errorf("snapshot: forked run diverged from the scratch run (simulator state not fully captured)")
	}
	return res[0], st, nil
}
