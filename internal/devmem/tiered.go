package devmem

import (
	"fmt"

	"uvmsim/internal/tier"
)

// Tiered is the frame accounting for a multi-tier topology: one Memory
// pool per capacity-bounded tier (devices and the CXL pool), indexed by
// tier.Index. The host tier is the unbounded backing store and has no
// pool; asking for it panics, mirroring how Memory treats misuse as a
// model bug.
type Tiered struct {
	topo  tier.Topology
	pools []*Memory // nil for the host tier
}

// NewTiered builds one pool per non-host tier of the topology.
func NewTiered(topo tier.Topology) *Tiered {
	t := &Tiered{topo: topo, pools: make([]*Memory, topo.Len())}
	for i := 0; i < topo.Len(); i++ {
		s := topo.Spec(tier.Index(i))
		if s.Kind == tier.Host {
			continue
		}
		t.pools[i] = New(s.CapacityBytes)
	}
	return t
}

// Topology returns the topology the pools were built from.
func (t *Tiered) Topology() tier.Topology { return t.topo }

// Pool returns the frame pool of a capacity-bounded tier. It panics for
// the host tier, which is unbounded by construction.
func (t *Tiered) Pool(i tier.Index) *Memory {
	p := t.pools[i]
	if p == nil {
		panic(fmt.Sprintf("devmem: tier %q has no frame pool (host tier is unbounded)", t.topo.Spec(i).Name))
	}
	return p
}

// Bounded reports whether tier i has a frame pool (everything but host).
func (t *Tiered) Bounded(i tier.Index) bool { return t.pools[i] != nil }

// TotalPages sums the capacity of every bounded tier.
func (t *Tiered) TotalPages() uint64 {
	var n uint64
	for _, p := range t.pools {
		if p != nil {
			n += p.TotalPages()
		}
	}
	return n
}

// TenantID identifies one co-scheduled tenant. IDs are dense and
// assigned in tenant declaration order, so per-tenant state lives in
// slices and every iteration over tenants is deterministic.
type TenantID int

// Accounts tracks per-tenant resident pages on one tier — the
// accounting substrate for co-location: priority-aware eviction reads
// it to find the over-quota tenant, and the fairness metric reads the
// peaks. Charges must balance: releasing more than a tenant holds is a
// model bug and panics, exactly like Memory.Release.
type Accounts struct {
	resident []uint64
	peak     []uint64
	evicted  []uint64 // pages taken from the tenant by eviction
}

// NewAccounts creates accounting for n tenants.
func NewAccounts(n int) *Accounts {
	if n <= 0 {
		panic(fmt.Sprintf("devmem: %d tenants", n))
	}
	return &Accounts{
		resident: make([]uint64, n),
		peak:     make([]uint64, n),
		evicted:  make([]uint64, n),
	}
}

// Tenants returns the number of tenants.
func (a *Accounts) Tenants() int { return len(a.resident) }

// Charge records n pages becoming resident on behalf of the tenant.
func (a *Accounts) Charge(id TenantID, n uint64) {
	a.resident[id] += n
	if a.resident[id] > a.peak[id] {
		a.peak[id] = a.resident[id]
	}
}

// Release returns n of the tenant's pages. evicted marks the release as
// involuntary (taken by the eviction engine rather than freed by the
// tenant), which feeds the fairness accounting.
func (a *Accounts) Release(id TenantID, n uint64, evicted bool) {
	if n > a.resident[id] {
		panic(fmt.Sprintf("devmem: tenant %d releasing %d pages with only %d resident", id, n, a.resident[id]))
	}
	a.resident[id] -= n
	if evicted {
		a.evicted[id] += n
	}
}

// Resident returns the tenant's currently resident pages.
func (a *Accounts) Resident(id TenantID) uint64 { return a.resident[id] }

// Peak returns the tenant's resident-page high-water mark.
func (a *Accounts) Peak(id TenantID) uint64 { return a.peak[id] }

// Evicted returns the pages eviction has taken from the tenant.
func (a *Accounts) Evicted(id TenantID) uint64 { return a.evicted[id] }

// Share returns the tenant's fraction of all currently resident pages
// (0 when nothing is resident): the instantaneous occupancy share the
// fairness metric aggregates.
func (a *Accounts) Share(id TenantID) float64 {
	var total uint64
	for _, r := range a.resident {
		total += r
	}
	if total == 0 {
		return 0
	}
	return float64(a.resident[id]) / float64(total)
}
