package devmem

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/memunits"
)

func TestNewCapacity(t *testing.T) {
	m := New(8 << 20)
	if m.TotalPages() != 2048 {
		t.Fatalf("TotalPages = %d, want 2048", m.TotalPages())
	}
	if m.AllocatedPages() != 0 || m.FreePages() != 2048 {
		t.Fatal("new memory not empty")
	}
}

func TestNewUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned capacity did not panic")
		}
	}()
	New(memunits.PageSize + 1)
}

func TestNewZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	New(0)
}

func TestAllocateRelease(t *testing.T) {
	m := New(16 * memunits.PageSize)
	m.Allocate(10)
	if m.AllocatedPages() != 10 || m.FreePages() != 6 {
		t.Fatalf("after alloc: allocated=%d free=%d", m.AllocatedPages(), m.FreePages())
	}
	if !m.CanAllocate(6) || m.CanAllocate(7) {
		t.Fatal("CanAllocate wrong at boundary")
	}
	m.Release(4)
	if m.AllocatedPages() != 6 {
		t.Fatalf("after release: allocated=%d, want 6", m.AllocatedPages())
	}
	if m.PeakPages() != 10 {
		t.Fatalf("peak = %d, want 10", m.PeakPages())
	}
}

func TestAllocateOverCapacityPanics(t *testing.T) {
	m := New(4 * memunits.PageSize)
	defer func() {
		if recover() == nil {
			t.Error("over-capacity allocation did not panic")
		}
	}()
	m.Allocate(5)
}

func TestReleaseUnderflowPanics(t *testing.T) {
	m := New(4 * memunits.PageSize)
	m.Allocate(2)
	defer func() {
		if recover() == nil {
			t.Error("release underflow did not panic")
		}
	}()
	m.Release(3)
}

func TestOccupancy(t *testing.T) {
	m := New(8 * memunits.PageSize)
	if m.Occupancy() != 0 {
		t.Fatal("empty occupancy not 0")
	}
	m.Allocate(2)
	if m.Occupancy() != 0.25 {
		t.Fatalf("Occupancy = %v, want 0.25", m.Occupancy())
	}
	m.Allocate(6)
	if m.Occupancy() != 1 {
		t.Fatalf("Occupancy = %v, want 1", m.Occupancy())
	}
}

func TestOversubscriptionLatch(t *testing.T) {
	m := New(4 * memunits.PageSize)
	if m.Oversubscribed() {
		t.Fatal("fresh memory claims oversubscription")
	}
	m.NoteOversubscribed()
	if !m.Oversubscribed() {
		t.Fatal("latch did not stick")
	}
	// Releasing everything must not clear the latch (sticky regime).
	m.Release(0)
	if !m.Oversubscribed() {
		t.Fatal("latch cleared by release")
	}
}

// Property: any interleaving of valid allocate/release keeps
// allocated+free == total and never exceeds capacity.
func TestConservationProperty(t *testing.T) {
	f := func(ops []int8) bool {
		m := New(64 * memunits.PageSize)
		for _, op := range ops {
			n := uint64(op&0x0f) + 1
			if op >= 0 {
				if m.CanAllocate(n) {
					m.Allocate(n)
				}
			} else if m.AllocatedPages() >= n {
				m.Release(n)
			}
			if m.AllocatedPages()+m.FreePages() != m.TotalPages() {
				return false
			}
			if m.AllocatedPages() > m.TotalPages() {
				return false
			}
			if m.PeakPages() < m.AllocatedPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
