// Package devmem models device-local memory as a pool of 4KB frames with
// a hard capacity limit. It exposes the occupancy queries that drive the
// no-oversubscription branch of the paper's dynamic threshold (Equation 1)
// and the oversubscription detector that flips the driver into its
// constrained-memory regime.
package devmem

import (
	"fmt"

	"uvmsim/internal/memunits"
)

// Memory is the device-local DRAM frame pool.
//
// The simulator never models physical frame numbers: residency is tracked
// by the page table. Memory only accounts capacity, so Allocate/Release
// operate on frame counts.
type Memory struct {
	totalPages     uint64
	allocatedPages uint64
	// everOversubscribed latches once an allocation request could not be
	// satisfied from free capacity: the paper's "after oversubscription"
	// regime is sticky for the rest of the run.
	everOversubscribed bool
	peakPages          uint64
}

// New creates a device memory with the given byte capacity, which must be
// page aligned.
func New(capacityBytes uint64) *Memory {
	if capacityBytes%memunits.PageSize != 0 {
		panic(fmt.Sprintf("devmem: capacity %d not page aligned", capacityBytes))
	}
	if capacityBytes == 0 {
		panic("devmem: zero capacity")
	}
	return &Memory{totalPages: capacityBytes / memunits.PageSize}
}

// Clone returns an independent copy of the accounting state, used when
// forking a simulator at a kernel barrier.
func (m *Memory) Clone() *Memory {
	c := *m
	return &c
}

// TotalPages returns the capacity in 4KB pages.
func (m *Memory) TotalPages() uint64 { return m.totalPages }

// AllocatedPages returns the number of resident pages.
func (m *Memory) AllocatedPages() uint64 { return m.allocatedPages }

// FreePages returns the number of unoccupied frames.
func (m *Memory) FreePages() uint64 { return m.totalPages - m.allocatedPages }

// PeakPages returns the high-water mark of resident pages.
func (m *Memory) PeakPages() uint64 { return m.peakPages }

// Occupancy returns allocatedPages/totalPages in [0,1].
func (m *Memory) Occupancy() float64 {
	return float64(m.allocatedPages) / float64(m.totalPages)
}

// CanAllocate reports whether n pages fit in the current free space.
func (m *Memory) CanAllocate(n uint64) bool { return n <= m.FreePages() }

// Allocate reserves n frames. It panics if the capacity would be
// exceeded: the UVM driver must evict first, and failing to do so is a
// model bug, not a recoverable condition.
func (m *Memory) Allocate(n uint64) {
	if !m.CanAllocate(n) {
		panic(fmt.Sprintf("devmem: allocating %d pages with only %d free", n, m.FreePages()))
	}
	m.allocatedPages += n
	if m.allocatedPages > m.peakPages {
		m.peakPages = m.allocatedPages
	}
}

// Release returns n frames to the pool.
func (m *Memory) Release(n uint64) {
	if n > m.allocatedPages {
		panic(fmt.Sprintf("devmem: releasing %d pages with only %d allocated", n, m.allocatedPages))
	}
	m.allocatedPages -= n
}

// NoteOversubscribed latches the oversubscription state. The UVM driver
// calls this the first time a migration cannot proceed without eviction.
func (m *Memory) NoteOversubscribed() { m.everOversubscribed = true }

// Oversubscribed reports whether the run has ever hit the capacity wall.
func (m *Memory) Oversubscribed() bool { return m.everOversubscribed }
