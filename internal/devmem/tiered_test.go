package devmem

import (
	"testing"

	"uvmsim/internal/memunits"
	"uvmsim/internal/tier"
)

func testTopo(t *testing.T) tier.Topology {
	t.Helper()
	topo, err := tier.New(
		tier.Spec{Name: "host", Kind: tier.Host},
		tier.Spec{Name: "gpu0", Kind: tier.Device, CapacityBytes: 4 * memunits.PageSize},
		tier.Spec{Name: "cxl-pool", Kind: tier.Pool, CapacityBytes: 8 * memunits.PageSize},
	)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTieredPools(t *testing.T) {
	td := NewTiered(testTopo(t))
	if td.Bounded(tier.HostIndex) {
		t.Fatal("host tier reports a bounded pool")
	}
	if !td.Bounded(1) || !td.Bounded(2) {
		t.Fatal("device/pool tiers not bounded")
	}
	if got := td.TotalPages(); got != 12 {
		t.Fatalf("total pages = %d, want 12", got)
	}
	td.Pool(1).Allocate(4)
	if td.Pool(1).FreePages() != 0 || td.Pool(2).FreePages() != 8 {
		t.Fatal("allocations crossed tier pools")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pool(host) did not panic")
		}
	}()
	td.Pool(tier.HostIndex)
}

func TestAccountsChargeReleaseShare(t *testing.T) {
	a := NewAccounts(2)
	if a.Tenants() != 2 {
		t.Fatalf("tenants = %d", a.Tenants())
	}
	a.Charge(0, 6)
	a.Charge(1, 2)
	if got := a.Share(0); got != 0.75 {
		t.Fatalf("share(0) = %v, want 0.75", got)
	}
	a.Release(0, 4, true)
	a.Release(1, 1, false)
	if a.Resident(0) != 2 || a.Resident(1) != 1 {
		t.Fatalf("resident = %d,%d", a.Resident(0), a.Resident(1))
	}
	if a.Evicted(0) != 4 || a.Evicted(1) != 0 {
		t.Fatalf("evicted = %d,%d", a.Evicted(0), a.Evicted(1))
	}
	if a.Peak(0) != 6 || a.Peak(1) != 2 {
		t.Fatalf("peaks = %d,%d", a.Peak(0), a.Peak(1))
	}
	a.Release(0, 2, false)
	a.Release(1, 1, false)
	if got := a.Share(0); got != 0 {
		t.Fatalf("share of empty accounts = %v", got)
	}
}

func TestAccountsOverReleasePanics(t *testing.T) {
	a := NewAccounts(1)
	a.Charge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	a.Release(0, 2, false)
}
