package interconnect

import (
	"strings"
	"testing"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

func newCXL(eng *sim.Engine) *CXL {
	// 8 bytes/cycle, 50 cycle latency, default 64B flits.
	return NewCXL(eng, 8, 50, 0)
}

func TestCXLFlitRounding(t *testing.T) {
	eng := sim.NewEngine()
	c := newCXL(eng)
	// 100B payload -> 2 flits + 1 header flit = 192 wire bytes ->
	// 192/8 = 24 cycles occupancy + 50 latency = 74.
	if finish := c.Transfer(HostToDevice, 100, nil); finish != 74 {
		t.Fatalf("finish = %d, want 74", finish)
	}
	st := c.Stats(HostToDevice)
	if st.Transfers != 1 || st.Bytes != 100 || st.WireBytes != 192 || st.BusyCycles != 24 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCXLRemoteAccessSameCostModel(t *testing.T) {
	eng := sim.NewEngine()
	c := newCXL(eng)
	// A 64B load is exactly one flit + header: 128 wire bytes -> 16
	// cycles + 50 latency = 66. RemoteAccess and Transfer agree.
	if finish := c.RemoteAccess(DeviceToHost, 64, nil); finish != 66 {
		t.Fatalf("remote access finish = %d, want 66", finish)
	}
	eng2 := sim.NewEngine()
	c2 := newCXL(eng2)
	if finish := c2.Transfer(DeviceToHost, 64, nil); finish != 66 {
		t.Fatalf("transfer finish = %d, want 66", finish)
	}
}

func TestCXLSerializationAndDuplex(t *testing.T) {
	eng := sim.NewEngine()
	c := newCXL(eng)
	f1 := c.Transfer(HostToDevice, 64, nil) // wire 0..16, done 66
	f2 := c.Transfer(HostToDevice, 64, nil) // wire 16..32, done 82
	f3 := c.Transfer(DeviceToHost, 64, nil) // independent wire: done 66
	if f1 != 66 || f2 != 82 || f3 != 66 {
		t.Fatalf("finishes = %d,%d,%d want 66,82,66", f1, f2, f3)
	}
	if c.FreeAt(HostToDevice) != 32 {
		t.Fatalf("FreeAt = %d, want 32", c.FreeAt(HostToDevice))
	}
}

func TestCXLLookahead(t *testing.T) {
	eng := sim.NewEngine()
	c := newCXL(eng)
	if la := c.Lookahead(); la != 51 {
		t.Fatalf("lookahead = %d, want 51", la)
	}
}

func TestCXLDoneCallbackFires(t *testing.T) {
	eng := sim.NewEngine()
	c := newCXL(eng)
	var doneAt sim.Cycle
	c.Transfer(HostToDevice, 64, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 66 {
		t.Fatalf("done fired at %d, want 66", doneAt)
	}
}

func TestCXLPanicsMirrorLink(t *testing.T) {
	eng := sim.NewEngine()
	c := newCXL(eng)
	mustPanic(t, "zero-byte transfer", func() { c.Transfer(HostToDevice, 0, nil) })
	mustPanic(t, "zero-byte remote access", func() { c.RemoteAccess(HostToDevice, 0, nil) })
	mustPanic(t, "non-positive bandwidth", func() { NewCXL(eng, 0, 1, 0) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestFabricResolvesAndOrders(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric()
	pcie := newLink(eng)
	cxl := newCXL(eng)
	f.Add("pcie0", pcie)
	f.Add("cxl0", cxl)
	if f.Len() != 2 {
		t.Fatalf("len = %d", f.Len())
	}
	if got := f.Names(); len(got) != 2 || got[0] != "cxl0" || got[1] != "pcie0" {
		t.Fatalf("names = %v, want sorted [cxl0 pcie0]", got)
	}
	if c, ok := f.Link("cxl0"); !ok || c != Conn(cxl) {
		t.Fatal("Link(cxl0) did not resolve")
	}
	if _, ok := f.Link("nvlink9"); ok {
		t.Fatal("Link resolved an unknown name")
	}
	if f.MustLink("pcie0") != Conn(pcie) {
		t.Fatal("MustLink(pcie0) did not resolve")
	}
	// pcie lookahead = 101, cxl = 51: fabric takes the minimum.
	if la := f.Lookahead(); la != 51 {
		t.Fatalf("fabric lookahead = %d, want 51", la)
	}
}

func TestFabricPanics(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric()
	f.Add("a", newLink(eng))
	mustPanic(t, "duplicate name", func() { f.Add("a", newCXL(eng)) })
	mustPanic(t, "empty name", func() { f.Add("", newLink(eng)) })
	mustPanic(t, "nil link", func() { f.Add("b", nil) })
	mustPanic(t, "empty-fabric lookahead", func() { NewFabric().Lookahead() })
}

func TestFabricPublishMetrics(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric()
	f.Add("pcie0", newLink(eng))
	f.Add("cxl0", newCXL(eng))
	f.MustLink("cxl0").Transfer(HostToDevice, 64, nil)
	reg := obs.NewRegistry()
	f.PublishMetrics(reg)
	snap := reg.Collect()
	if got := snap.Counter("link.cxl0.h2d.bytes"); got != 64 {
		t.Fatalf("link.cxl0.h2d.bytes = %d, want 64", got)
	}
	var sawPCIe bool
	for name := range snap.Counters {
		if strings.HasPrefix(name, "link.pcie0.") {
			sawPCIe = true
		}
	}
	if !sawPCIe {
		t.Fatalf("no link.pcie0.* counters in %v", snap.Counters)
	}
}
