package interconnect

import (
	"fmt"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// DefaultFlitBytes is the CXL.mem flit size: every message on the link
// occupies a whole number of 64-byte flits.
const DefaultFlitBytes = 64

// CXL models one GPU's port into the pooled memory tier. It reuses the
// same full-duplex serialized-channel machinery as the PCIe Link but
// differs in its wire accounting: traffic is flit-granular (payloads
// round up to whole 64B flits) and every transaction — bulk or small —
// carries a one-flit protocol header, reflecting CXL.mem's
// request/response message framing. There is no remote-access penalty
// factor: CXL.mem is load/store-native, so fine-grained access is only
// penalized by its framing overhead, not by a non-posted-request
// ceiling. That asymmetry against PCIe is what makes a pooled tier
// attractive for fragmented access patterns in the first place.
type CXL struct {
	eng       *sim.Engine
	flitBytes uint64
	chans     [2]channel
}

// NewCXL creates a CXL port attached to the engine with the given
// per-direction bandwidth (bytes per core cycle), initiation latency
// (cycles) and flit size (0 selects DefaultFlitBytes).
func NewCXL(eng *sim.Engine, bytesPerCycle float64, latency sim.Cycle, flitBytes uint64) *CXL {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("interconnect: non-positive CXL bandwidth %v", bytesPerCycle))
	}
	if flitBytes == 0 {
		flitBytes = DefaultFlitBytes
	}
	c := &CXL{eng: eng, flitBytes: flitBytes}
	for i := range c.chans {
		c.chans[i] = channel{eng: eng, bytesPerCycle: bytesPerCycle, latency: latency}
	}
	return c
}

// flits rounds payload bytes up to whole flits and adds the header flit.
func (c *CXL) flits(payload uint64) uint64 {
	n := (payload + c.flitBytes - 1) / c.flitBytes
	return (n + 1) * c.flitBytes
}

// Transfer schedules a bulk move of payload bytes toward (HostToDevice:
// pool→GPU fill) or from (DeviceToHost: GPU→pool writeback) the pool and
// invokes done when it lands, returning the completion cycle.
func (c *CXL) Transfer(dir Direction, payload uint64, done func()) sim.Cycle {
	if payload == 0 {
		panic("interconnect: zero-byte CXL transfer")
	}
	return c.chans[dir].transfer(payload, c.flits(payload), done)
}

// RemoteAccess schedules one load/store-sized transaction against the
// pool. On CXL the cost model is identical to Transfer — flit rounding
// plus the header flit — because the link is load/store-native.
func (c *CXL) RemoteAccess(dir Direction, payload uint64, done func()) sim.Cycle {
	if payload == 0 {
		panic("interconnect: zero-byte CXL remote access")
	}
	return c.chans[dir].transfer(payload, c.flits(payload), done)
}

// Lookahead returns the minimum cycles between initiating a transfer and
// its completion becoming visible on the far side (see Link.Lookahead).
func (c *CXL) Lookahead() sim.Cycle {
	min := c.chans[HostToDevice].latency
	if c.chans[DeviceToHost].latency < min {
		min = c.chans[DeviceToHost].latency
	}
	return min + 1
}

// FreeAt reports when the given direction's wire next becomes idle.
func (c *CXL) FreeAt(dir Direction) sim.Cycle { return c.chans[dir].freeAt }

// Stats returns a copy of the per-direction usage counters.
func (c *CXL) Stats(dir Direction) ChannelStats { return c.chans[dir].stats }

// Utilization reports the busy fraction of the given direction over the
// elapsed simulation time (0 when no time has passed).
func (c *CXL) Utilization(dir Direction) float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(c.chans[dir].stats.BusyCycles) / float64(now)
}

// PublishMetrics registers a snapshot provider exposing per-direction
// usage under the cxl.* prefix, mirroring Link.PublishMetrics.
func (c *CXL) PublishMetrics(reg *obs.Registry) {
	PublishConnMetrics(reg, "cxl", c)
}
