package interconnect

import (
	"testing"

	"uvmsim/internal/learn"
	"uvmsim/internal/sim"
)

// statsModel is an independent reference accounting of what one
// directional channel should have recorded: it re-derives wire bytes
// and occupancy from first principles (the link's published cost
// model) and tracks the busy intervals the engine should observe.
type statsModel struct {
	bytesPerCycle float64
	latency       sim.Cycle
	freeAt        sim.Cycle
	want          ChannelStats
}

func (m *statsModel) occupancy(wire uint64) sim.Cycle {
	cycles := sim.Cycle(float64(wire) / m.bytesPerCycle)
	if float64(cycles)*m.bytesPerCycle < float64(wire) {
		cycles++
	}
	if cycles == 0 {
		cycles = 1
	}
	return cycles
}

// note records one transfer initiated at cycle now and returns the
// completion cycle the link must report.
func (m *statsModel) note(now sim.Cycle, payload, wire uint64) sim.Cycle {
	start := now
	if m.freeAt > start {
		start = m.freeAt
	}
	occ := m.occupancy(wire)
	m.freeAt = start + occ
	m.want.Transfers++
	m.want.Bytes += payload
	m.want.WireBytes += wire
	m.want.BusyCycles += uint64(occ)
	return m.freeAt + m.latency
}

// TestChannelStatsSumToOccupancyProperty drives both link types with
// randomized transfer sequences (sizes, directions, bulk vs remote,
// idle gaps) and checks that per-direction ChannelStats exactly match
// an independently maintained reference model: transfer and byte
// counts sum, busy cycles equal the summed wire occupancies, and the
// wire-busy intervals agree with what the engine observes (freeAt and
// completion cycles). This is the conservation law the utilization
// metrics and the PDES lookahead argument both lean on.
func TestChannelStatsSumToOccupancyProperty(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1 << 40} {
		rng := learn.NewRNG(seed)

		eng := sim.NewEngine()
		pcie := New(eng, 10, 100, 24, 3)
		cxl := NewCXL(eng, 8, 50, 0)

		type linkCase struct {
			name string
			conn Conn
			// model re-derives the wire bytes for a payload under the
			// link's cost model for bulk and remote transfers.
			bulkWire   func(payload uint64) uint64
			remoteWire func(payload uint64) uint64
			models     [2]*statsModel
		}
		cxlWire := func(payload uint64) uint64 {
			flits := (payload + DefaultFlitBytes - 1) / DefaultFlitBytes
			return (flits + 1) * DefaultFlitBytes
		}
		cases := []*linkCase{
			{
				name: "pcie", conn: pcie,
				bulkWire:   func(p uint64) uint64 { return p },
				remoteWire: func(p uint64) uint64 { return uint64(float64(p+24) * 3) },
				models: [2]*statsModel{
					{bytesPerCycle: 10, latency: 100},
					{bytesPerCycle: 10, latency: 100},
				},
			},
			{
				name: "cxl", conn: cxl,
				bulkWire:   cxlWire,
				remoteWire: cxlWire,
				models: [2]*statsModel{
					{bytesPerCycle: 8, latency: 50},
					{bytesPerCycle: 8, latency: 50},
				},
			},
		}

		pending := 0
		for i := 0; i < 400; i++ {
			lc := cases[rng.Intn(2)]
			dir := Direction(rng.Intn(2))
			m := lc.models[dir]
			var got, want sim.Cycle
			if rng.Intn(3) == 0 {
				payload := uint64(1 + rng.Intn(128)) // sector-sized
				want = m.note(eng.Now(), payload, lc.remoteWire(payload))
				pending++
				got = lc.conn.RemoteAccess(dir, payload, func() { pending-- })
			} else {
				payload := uint64(1 + rng.Intn(1<<16)) // up to 64KB bulk
				want = m.note(eng.Now(), payload, lc.bulkWire(payload))
				pending++
				got = lc.conn.Transfer(dir, payload, func() { pending-- })
			}
			if got != want {
				t.Fatalf("seed %d %s: completion = %d, want %d", seed, lc.name, got, want)
			}
			if fa := lc.conn.FreeAt(dir); fa != m.freeAt {
				t.Fatalf("seed %d %s: FreeAt = %d, model says %d", seed, lc.name, fa, m.freeAt)
			}
			// Occasionally let simulated time advance so transfers start
			// against a moving engine clock, not always a contended wire.
			if rng.Intn(4) == 0 {
				eng.At(eng.Now()+sim.Cycle(1+rng.Intn(500)), func() {})
				eng.Run()
			}
		}
		eng.Run()
		if pending != 0 {
			t.Fatalf("seed %d: %d completion callbacks never fired", seed, pending)
		}

		for _, lc := range cases {
			for _, dir := range []Direction{HostToDevice, DeviceToHost} {
				got, want := lc.conn.Stats(dir), lc.models[dir].want
				if got != want {
					t.Fatalf("seed %d %s %s: stats = %+v, model = %+v", seed, lc.name, dir, got, want)
				}
				// Busy cycles can never exceed the span the wire has been
				// in use for, and utilization must agree with the ratio.
				if got.BusyCycles > uint64(lc.conn.FreeAt(dir)) {
					t.Fatalf("seed %d %s %s: busy %d exceeds freeAt %d", seed, lc.name, dir, got.BusyCycles, lc.conn.FreeAt(dir))
				}
				wantUtil := float64(got.BusyCycles) / float64(eng.Now())
				if u := lc.conn.Utilization(dir); u != wantUtil {
					t.Fatalf("seed %d %s %s: utilization = %v, want %v", seed, lc.name, dir, u, wantUtil)
				}
			}
		}
	}
}
