package interconnect

import (
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Conn is the common interface of every interconnect in the model: the
// host PCIe link and the CXL port fronting the pooled tier both
// implement it, so the driver, the PDES lookahead derivation and the
// fabric graph are written against one vocabulary.
//
// All implementations share the channel contract: two independent
// directional wires, each serializing its transfers, with completion one
// initiation latency after wire occupancy ends.
type Conn interface {
	// Transfer schedules a bulk DMA of payload bytes and invokes done
	// (if non-nil) when the data has fully landed, returning the
	// completion cycle.
	Transfer(dir Direction, payload uint64, done func()) sim.Cycle
	// RemoteAccess schedules one small (sector-sized) transaction,
	// paying the link's per-transaction overhead.
	RemoteAccess(dir Direction, payload uint64, done func()) sim.Cycle
	// Lookahead returns the minimum cycles between initiating a
	// transfer and its completion becoming visible on the far side —
	// the conservative-PDES horizon contribution of this link.
	Lookahead() sim.Cycle
	// FreeAt reports when the direction's wire next becomes idle.
	FreeAt(dir Direction) sim.Cycle
	// Stats returns a copy of the per-direction usage counters.
	Stats(dir Direction) ChannelStats
	// Utilization reports the busy fraction of the direction over
	// elapsed simulated time.
	Utilization(dir Direction) float64
}

// Both built-in links satisfy the interface; keep them honest at
// compile time.
var (
	_ Conn = (*Link)(nil)
	_ Conn = (*CXL)(nil)
)

// PublishConnMetrics registers a snapshot provider exposing a link's
// per-direction usage under the given metric prefix
// ("<prefix>.{h2d,d2h}.{transfers,bytes,wire_bytes,busy_cycles}"
// counters plus utilization gauges). It is the Conn-generic form of
// Link.PublishMetrics, used by the fabric so every named link —
// whatever its concrete type — reports the same schema.
func PublishConnMetrics(reg *obs.Registry, prefix string, c Conn) {
	if reg == nil {
		return
	}
	reg.RegisterProvider(func(e obs.Emitter) {
		for _, dir := range []Direction{HostToDevice, DeviceToHost} {
			p := prefix + ".h2d."
			if dir == DeviceToHost {
				p = prefix + ".d2h."
			}
			st := c.Stats(dir)
			e.Counter(p+"transfers", st.Transfers)
			e.Counter(p+"bytes", st.Bytes)
			e.Counter(p+"wire_bytes", st.WireBytes)
			e.Counter(p+"busy_cycles", st.BusyCycles)
			e.Gauge(p+"utilization", c.Utilization(dir))
		}
	})
}
