package interconnect

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/sim"
)

func newLink(eng *sim.Engine) *Link {
	// 10 bytes/cycle, 100 cycle latency, 24B headers: round numbers for
	// hand-checked arithmetic.
	return New(eng, 10, 100, 24, 1)
}

func TestTransferTiming(t *testing.T) {
	eng := sim.NewEngine()
	l := newLink(eng)
	var doneAt sim.Cycle
	finish := l.Transfer(HostToDevice, 1000, func() { doneAt = eng.Now() })
	// occupancy = 1000/10 = 100 cycles, + 100 latency = 200.
	if finish != 200 {
		t.Fatalf("finish = %d, want 200", finish)
	}
	eng.Run()
	if doneAt != 200 {
		t.Fatalf("done fired at %d, want 200", doneAt)
	}
}

func TestTransferSerialization(t *testing.T) {
	eng := sim.NewEngine()
	l := newLink(eng)
	f1 := l.Transfer(HostToDevice, 1000, nil) // wire busy 0..100, done 200
	f2 := l.Transfer(HostToDevice, 1000, nil) // wire busy 100..200, done 300
	if f1 != 200 || f2 != 300 {
		t.Fatalf("finishes = %d,%d want 200,300", f1, f2)
	}
	if l.FreeAt(HostToDevice) != 200 {
		t.Fatalf("FreeAt = %d, want 200", l.FreeAt(HostToDevice))
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	eng := sim.NewEngine()
	l := newLink(eng)
	f1 := l.Transfer(HostToDevice, 1000, nil)
	f2 := l.Transfer(DeviceToHost, 1000, nil)
	if f1 != 200 || f2 != 200 {
		t.Fatalf("duplex transfers serialized: %d,%d want 200,200", f1, f2)
	}
}

func TestRemoteAccessHeaderOverhead(t *testing.T) {
	eng := sim.NewEngine()
	l := newLink(eng)
	// 128B payload + 24B header = 152B -> ceil(152/10)=16 cycles + 100.
	finish := l.RemoteAccess(DeviceToHost, 128, nil)
	if finish != 116 {
		t.Fatalf("finish = %d, want 116", finish)
	}
	st := l.Stats(DeviceToHost)
	if st.Bytes != 128 || st.WireBytes != 152 {
		t.Fatalf("stats = %+v, want payload 128 wire 152", st)
	}
}

func TestBulkBeatsFragmentedBandwidth(t *testing.T) {
	// Moving 64KB as one burst must take far less wire time than moving it
	// as 512 x 128B remote transactions — the core trade-off of the paper.
	engBulk := sim.NewEngine()
	bulk := newLink(engBulk)
	bulk.Transfer(HostToDevice, 64<<10, nil)
	bulkBusy := bulk.Stats(HostToDevice).BusyCycles

	engFrag := sim.NewEngine()
	frag := newLink(engFrag)
	for i := 0; i < 512; i++ {
		frag.RemoteAccess(HostToDevice, 128, nil)
	}
	fragBusy := frag.Stats(HostToDevice).BusyCycles
	if fragBusy <= bulkBusy {
		t.Fatalf("fragmented busy %d not worse than bulk busy %d", fragBusy, bulkBusy)
	}
}

func TestZeroByteTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-byte transfer did not panic")
		}
	}()
	newLink(sim.NewEngine()).Transfer(HostToDevice, 0, nil)
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	l := newLink(eng)
	l.Transfer(HostToDevice, 1000, func() {}) // 100 busy cycles
	eng.Run()                                 // now = 200
	got := l.Utilization(HostToDevice)
	if got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if l.Utilization(DeviceToHost) != 0 {
		t.Fatal("idle direction shows utilization")
	}
}

// Property: transfers on one channel never overlap and complete in issue
// order; total busy time equals the sum of individual occupancies.
func TestSerializationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine()
		l := newLink(eng)
		var lastFinish sim.Cycle
		var wantBusy uint64
		for _, s := range sizes {
			n := uint64(s)%4096 + 1
			fin := l.Transfer(HostToDevice, n, nil)
			if fin < lastFinish {
				return false
			}
			lastFinish = fin
			occ := (n + 9) / 10
			if occ == 0 {
				occ = 1
			}
			wantBusy += occ
		}
		return l.Stats(HostToDevice).BusyCycles == wantBusy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" {
		t.Error("direction names wrong")
	}
}
