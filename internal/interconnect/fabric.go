package interconnect

import (
	"fmt"
	"sort"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Fabric is the named-link graph of a multi-tier topology: every
// interconnect in the machine — the per-GPU PCIe links to the host and
// the per-GPU CXL ports into the pool — registered under a unique name
// ("pcie0", "cxl0", ...). The fabric is what generalizes the
// single-Link world: components resolve the link they need by name, the
// PDES coordinator derives its horizon from the minimum lookahead of
// every link crossing a partition boundary, and metrics publication
// walks the graph once instead of each link wiring itself up.
//
// Iteration order is always name-sorted, never map order, so every walk
// of the fabric is deterministic.
type Fabric struct {
	links map[string]Conn
	names []string // sorted; rebuilt on Add
}

// NewFabric returns an empty link graph.
func NewFabric() *Fabric {
	return &Fabric{links: make(map[string]Conn)}
}

// Add registers a link under its name. Names must be unique and
// non-empty; violations panic, since the topology is assembled once at
// construction time from validated configuration.
func (f *Fabric) Add(name string, c Conn) {
	if name == "" {
		panic("interconnect: fabric link with no name")
	}
	if c == nil {
		panic(fmt.Sprintf("interconnect: fabric link %q is nil", name))
	}
	if _, dup := f.links[name]; dup {
		panic(fmt.Sprintf("interconnect: duplicate fabric link %q", name))
	}
	f.links[name] = c
	f.names = append(f.names, name)
	sort.Strings(f.names)
}

// Link resolves a named link, ok=false when absent.
func (f *Fabric) Link(name string) (Conn, bool) {
	c, ok := f.links[name]
	return c, ok
}

// MustLink resolves a named link and panics when absent — for callers
// whose configuration already guarantees the link exists.
func (f *Fabric) MustLink(name string) Conn {
	c, ok := f.links[name]
	if !ok {
		panic(fmt.Sprintf("interconnect: no fabric link %q", name))
	}
	return c
}

// Names returns the link names in sorted order.
func (f *Fabric) Names() []string {
	out := make([]string, len(f.names))
	copy(out, f.names)
	return out
}

// Len returns the number of links.
func (f *Fabric) Len() int { return len(f.links) }

// Lookahead returns the minimum lookahead across every link in the
// fabric — the conservative bound a PDES coordinator must respect when
// partitions interact over any of them. It panics on an empty fabric,
// where no horizon is derivable.
func (f *Fabric) Lookahead() sim.Cycle {
	if len(f.names) == 0 {
		panic("interconnect: lookahead of an empty fabric")
	}
	min := sim.Cycle(0)
	for i, name := range f.names {
		la := f.links[name].Lookahead()
		if i == 0 || la < min {
			min = la
		}
	}
	return min
}

// PublishMetrics registers snapshot providers for every link, each
// under "link.<name>." — e.g. link.cxl0.h2d.bytes. Links are walked in
// name order so provider registration (and hence snapshot layout) is
// deterministic.
func (f *Fabric) PublishMetrics(reg *obs.Registry) {
	for _, name := range f.names {
		PublishConnMetrics(reg, "link."+name, f.links[name])
	}
}
