// Package interconnect models the CPU-GPU PCIe link as two independent
// directional channels (host-to-device and device-to-host, full duplex)
// with finite bandwidth and a fixed initiation latency.
//
// Each channel serializes its transfers: a transfer occupies the wire for
// bytes/bandwidth cycles and completes one link latency after its
// occupancy ends. Small remote zero-copy transactions pay an additional
// per-transaction header overhead, which is what makes fragmented remote
// access so much less bandwidth-efficient than bulk migration — the trade
// at the heart of the paper.
package interconnect

import (
	"fmt"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Direction selects a PCIe channel.
type Direction int

const (
	// HostToDevice carries page migrations and remote store traffic.
	HostToDevice Direction = iota
	// DeviceToHost carries eviction write-backs and remote load traffic.
	DeviceToHost
)

// String names the direction.
func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// ChannelStats aggregates per-direction link usage.
type ChannelStats struct {
	Transfers  uint64 // completed transfers
	Bytes      uint64 // payload bytes moved (excluding headers)
	WireBytes  uint64 // bytes including per-transaction headers
	BusyCycles uint64 // cycles the wire was occupied
}

// channel is one direction of the link.
type channel struct {
	eng           *sim.Engine
	bytesPerCycle float64
	latency       sim.Cycle
	freeAt        sim.Cycle
	stats         ChannelStats
}

// Link is the full-duplex PCIe interconnect.
type Link struct {
	eng           *sim.Engine
	headerBytes   uint64
	remotePenalty float64
	chans         [2]channel
}

// New creates a link attached to the engine with the given per-direction
// bandwidth (bytes per core cycle), initiation latency (cycles) and
// per-transaction header size used for small remote accesses.
// remotePenalty scales the wire occupancy of remote zero-copy
// transactions: unlike bulk DMA, fine-grained remote access is bound by
// the small number of outstanding non-posted requests the endpoint
// sustains, so its effective bandwidth is a fraction of the link's (on
// real PCIe 3.0 x16 roughly one third). Values below 1 are clamped to 1.
func New(eng *sim.Engine, bytesPerCycle float64, latency sim.Cycle, headerBytes uint64, remotePenalty float64) *Link {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("interconnect: non-positive bandwidth %v", bytesPerCycle))
	}
	if remotePenalty < 1 {
		remotePenalty = 1
	}
	l := &Link{eng: eng, headerBytes: headerBytes, remotePenalty: remotePenalty}
	for i := range l.chans {
		l.chans[i] = channel{eng: eng, bytesPerCycle: bytesPerCycle, latency: latency}
	}
	return l
}

// CloneFor returns an independent copy of the link — wire occupancy and
// per-direction statistics included — attached to eng, used when
// forking a simulator at a kernel barrier. No transfer may be in
// flight: completions are engine events and a fork point is drained by
// definition, so only freeAt and the stats carry over.
func (l *Link) CloneFor(eng *sim.Engine) *Link {
	c := *l
	c.eng = eng
	for i := range c.chans {
		c.chans[i].eng = eng
	}
	return &c
}

// occupancy returns the wire time for n bytes, at least one cycle.
func (c *channel) occupancy(n uint64) sim.Cycle {
	cycles := sim.Cycle(float64(n) / c.bytesPerCycle)
	if float64(cycles)*c.bytesPerCycle < float64(n) {
		cycles++
	}
	if cycles == 0 {
		cycles = 1
	}
	return cycles
}

// transfer reserves the wire for wireBytes and schedules done at the
// completion time. It returns the completion cycle.
func (c *channel) transfer(payload, wireBytes uint64, done func()) sim.Cycle {
	start := c.eng.Now()
	if c.freeAt > start {
		start = c.freeAt
	}
	occ := c.occupancy(wireBytes)
	c.freeAt = start + occ
	c.stats.Transfers++
	c.stats.Bytes += payload
	c.stats.WireBytes += wireBytes
	c.stats.BusyCycles += uint64(occ)
	finish := c.freeAt + c.latency
	if done != nil {
		c.eng.At(finish, done)
	}
	return finish
}

// Transfer schedules a bulk transfer (page migration or write-back) of
// payload bytes in the given direction and invokes done when the data has
// fully landed. It returns the completion cycle. Bulk transfers pay no
// per-transaction header: the driver moves data in large DMA bursts.
func (l *Link) Transfer(dir Direction, payload uint64, done func()) sim.Cycle {
	if payload == 0 {
		panic("interconnect: zero-byte transfer")
	}
	return l.chans[dir].transfer(payload, payload, done)
}

// RemoteAccess schedules a small zero-copy transaction of payload bytes
// (a 128B sector or less) in the given direction. It pays the header
// overhead on the wire and invokes done at completion, returning the
// completion cycle.
func (l *Link) RemoteAccess(dir Direction, payload uint64, done func()) sim.Cycle {
	if payload == 0 {
		panic("interconnect: zero-byte remote access")
	}
	wire := uint64(float64(payload+l.headerBytes) * l.remotePenalty)
	return l.chans[dir].transfer(payload, wire, done)
}

// Lookahead returns the minimum number of cycles that must elapse
// between initiating a transfer on this link and its completion
// becoming visible on the far side: the smaller directional initiation
// latency plus the one-cycle minimum wire occupancy. This is the
// model's cross-partition interaction delay, which conservative PDES
// uses to derive its safe horizon — no GPU can be affected by host
// memory (and hence, transitively, by any other GPU) sooner than one
// link traversal from now, so all partitions may advance at least this
// far beyond the earliest pending event without risking a causality
// violation.
func (l *Link) Lookahead() sim.Cycle {
	min := l.chans[HostToDevice].latency
	if l.chans[DeviceToHost].latency < min {
		min = l.chans[DeviceToHost].latency
	}
	return min + 1 // occupancy() never returns less than one cycle
}

// FreeAt reports when the given direction's wire next becomes idle.
func (l *Link) FreeAt(dir Direction) sim.Cycle { return l.chans[dir].freeAt }

// Stats returns a copy of the per-direction usage counters.
func (l *Link) Stats(dir Direction) ChannelStats { return l.chans[dir].stats }

// Utilization reports the busy fraction of the given direction over the
// elapsed simulation time (0 when no time has passed).
func (l *Link) Utilization(dir Direction) float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(l.chans[dir].stats.BusyCycles) / float64(now)
}

// PublishMetrics registers a snapshot provider exposing per-direction
// link usage (pcie.{h2d,d2h}.{transfers,bytes,wire_bytes,busy_cycles}
// counters and pcie.*.utilization gauges). Publication happens at
// collection time only, so the transfer hot path is untouched.
func (l *Link) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterProvider(func(e obs.Emitter) {
		for _, dir := range []Direction{HostToDevice, DeviceToHost} {
			prefix := "pcie.h2d."
			if dir == DeviceToHost {
				prefix = "pcie.d2h."
			}
			st := l.chans[dir].stats
			e.Counter(prefix+"transfers", st.Transfers)
			e.Counter(prefix+"bytes", st.Bytes)
			e.Counter(prefix+"wire_bytes", st.WireBytes)
			e.Counter(prefix+"busy_cycles", st.BusyCycles)
			e.Gauge(prefix+"utilization", l.Utilization(dir))
		}
	})
}
