package config

import "testing"

func TestPresetsValid(t *testing.T) {
	for _, name := range PresetNames() {
		c, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
}

func TestPresetPascalIsDefault(t *testing.T) {
	c, err := Preset("pascal")
	if err != nil {
		t.Fatal(err)
	}
	if c != Default() {
		t.Fatal("pascal preset diverged from Default()")
	}
}

func TestPresetVolta(t *testing.T) {
	c, err := Preset("Volta") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSMs != 80 || c.CoreClockMHz != 1530 || c.DeviceMemBytes != 16<<30 {
		t.Fatalf("volta preset wrong: %+v", c)
	}
	if c.TLBEntries <= Default().TLBEntries {
		t.Fatal("volta TLB not larger than pascal")
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("turing"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetNamesSorted(t *testing.T) {
	names := PresetNames()
	if len(names) < 2 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}
