package config

import (
	"strings"
	"testing"

	"uvmsim/internal/memunits"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if c.NumSMs != 28 || c.CoresPerSM != 128 || c.CoreClockMHz != 1481 {
		t.Errorf("GPU architecture mismatch: %+v", c)
	}
	if c.MaxCTAsPerSM != 32 || c.MaxWarpsPerSM != 64 || c.WarpSize != 32 {
		t.Errorf("shader core config mismatch: %+v", c)
	}
	if c.PageWalkLatency != 100 || c.DRAMLatency != 100 {
		t.Errorf("memory latency mismatch: %+v", c)
	}
	if c.RemoteAccessLatency != 200 {
		t.Errorf("RemoteAccessLatency = %d, want 200", c.RemoteAccessLatency)
	}
	if c.FarFaultLatencyMicros != 45 {
		t.Errorf("FarFaultLatencyMicros = %d, want 45", c.FarFaultLatencyMicros)
	}
	if c.EvictionGranularity != memunits.ChunkSize {
		t.Errorf("EvictionGranularity = %d, want 2MB", c.EvictionGranularity)
	}
	if c.Replacement != ReplaceLRU || c.Prefetcher != PrefetchTree {
		t.Errorf("policy defaults mismatch: %+v", c)
	}
	if c.StaticThreshold != 8 {
		t.Errorf("StaticThreshold = %d, want 8", c.StaticThreshold)
	}
}

func TestFarFaultLatencyCycles(t *testing.T) {
	c := Default()
	// 45us at 1481 MHz = 45 * 1481 = 66645 cycles.
	if got := c.FarFaultLatencyCycles(); got != 66645 {
		t.Fatalf("FarFaultLatencyCycles = %d, want 66645", got)
	}
}

func TestWithPolicyPairsReplacement(t *testing.T) {
	base := Default()
	if got := base.WithPolicy(PolicyDisabled); got.Replacement != ReplaceLRU || !got.WriteMigrates {
		t.Errorf("Disabled pairing wrong: %+v", got)
	}
	for _, p := range []MigrationPolicy{PolicyAlways, PolicyOversub} {
		got := base.WithPolicy(p)
		if got.Replacement != ReplaceLFU || !got.WriteMigrates {
			t.Errorf("%v pairing wrong: %+v", p, got)
		}
	}
	got := base.WithPolicy(PolicyAdaptive)
	if got.Replacement != ReplaceLFU || got.WriteMigrates {
		t.Errorf("Adaptive pairing wrong: %+v", got)
	}
}

func TestWithOversubscription(t *testing.T) {
	c := Default()
	ws := uint64(40 << 20)
	o := c.WithOversubscription(ws, 125)
	// capacity = 40MB/1.25 = 32MB.
	if o.DeviceMemBytes != 32<<20 {
		t.Fatalf("125%% oversub capacity = %d, want 32MB", o.DeviceMemBytes)
	}
	o = c.WithOversubscription(ws, 100)
	if o.DeviceMemBytes != 40<<20 {
		t.Fatalf("100%% capacity = %d, want 40MB", o.DeviceMemBytes)
	}
	o = c.WithOversubscription(ws, 150)
	// 40MB/1.5 = 26.67MB -> rounds DOWN to 26MB at 2MB granularity so
	// that rounding never erases the oversubscription.
	if o.DeviceMemBytes != 26<<20 {
		t.Fatalf("150%% capacity = %d, want 26MB", o.DeviceMemBytes)
	}
	if o.DeviceMemBytes%memunits.ChunkSize != 0 {
		t.Fatal("capacity not chunk aligned")
	}
}

func TestWithOversubscriptionNeverErased(t *testing.T) {
	// A working set barely above capacity must still end up
	// oversubscribed after rounding (regression: round-up used to hand
	// back the full working set).
	c := Default()
	ws := uint64(8<<20 + 400<<10)
	o := c.WithOversubscription(ws, 125)
	if o.DeviceMemBytes >= ws {
		t.Fatalf("capacity %d >= working set %d; oversubscription erased", o.DeviceMemBytes, ws)
	}
}

func TestWithOversubscriptionMinimum(t *testing.T) {
	c := Default()
	o := c.WithOversubscription(64<<10, 1000)
	if o.DeviceMemBytes < 2*memunits.ChunkSize {
		t.Fatalf("capacity %d below the two-chunk floor", o.DeviceMemBytes)
	}
}

func TestValidateErrors(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := Default()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		c    Config
		frag string
	}{
		{"sms", mod(func(c *Config) { c.NumSMs = 0 }), "NumSMs"},
		{"clock", mod(func(c *Config) { c.CoreClockMHz = 0 }), "CoreClockMHz"},
		{"warps", mod(func(c *Config) { c.MaxWarpsPerSM = 0 }), "MaxWarpsPerSM"},
		{"warpsize", mod(func(c *Config) { c.WarpSize = 64 }), "WarpSize"},
		{"mem", mod(func(c *Config) { c.DeviceMemBytes = 4096 }), "DeviceMemBytes"},
		{"bw", mod(func(c *Config) { c.PCIeBytesPerCycle = 0 }), "PCIeBytesPerCycle"},
		{"ts", mod(func(c *Config) { c.StaticThreshold = 0 }), "StaticThreshold"},
		{"p", mod(func(c *Config) { c.Penalty = 0 }), "Penalty"},
		{"gran", mod(func(c *Config) { c.EvictionGranularity = 4096 }), "EvictionGranularity"},
		{"policy", mod(func(c *Config) { c.Policy = MigrationPolicy(99) }), "policy"},
		{"replace", mod(func(c *Config) { c.Replacement = ReplacementPolicy(9) }), "replacement"},
		{"prefetch", mod(func(c *Config) { c.Prefetcher = PrefetcherKind(9) }), "prefetcher"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid config")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tt.frag)) {
				t.Fatalf("error %q does not mention %q", err, tt.frag)
			}
		})
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[MigrationPolicy]string{
		PolicyDisabled: "Disabled",
		PolicyAlways:   "Always",
		PolicyOversub:  "Oversub",
		PolicyAdaptive: "Adaptive",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if len(Policies()) != 4 {
		t.Errorf("Policies() returned %d entries, want 4", len(Policies()))
	}
	if ReplaceLRU.String() != "LRU" || ReplaceLFU.String() != "LFU" {
		t.Error("replacement policy names wrong")
	}
	if PrefetchTree.String() != "Tree" || PrefetchNone.String() != "None" || PrefetchSequential.String() != "Sequential" {
		t.Error("prefetcher names wrong")
	}
}
