// Package config defines the simulated-system configuration corresponding
// to Table I of the paper, with validation and derived quantities used by
// the timing models.
package config

import (
	"errors"
	"fmt"
	"strings"

	"uvmsim/internal/memunits"
)

// MigrationPolicy selects the delayed-migration scheme under evaluation.
// These are the four schemes compared throughout §VI of the paper.
type MigrationPolicy int

const (
	// PolicyDisabled is the state-of-the-art baseline: remote access is
	// disabled and every first touch migrates data (with prefetching).
	PolicyDisabled MigrationPolicy = iota
	// PolicyAlways delays migration behind the static access-counter
	// threshold from the start of execution (Volta behaviour).
	PolicyAlways
	// PolicyOversub enables the static threshold only once device memory
	// becomes oversubscribed; before that it behaves like PolicyDisabled.
	PolicyOversub
	// PolicyAdaptive is the paper's contribution: the dynamic threshold of
	// Equation 1, growing with memory occupancy before oversubscription
	// and with round trips and the multiplicative penalty after it.
	PolicyAdaptive
)

// String returns the name the paper uses for the policy.
func (p MigrationPolicy) String() string {
	switch p {
	case PolicyDisabled:
		return "Disabled"
	case PolicyAlways:
		return "Always"
	case PolicyOversub:
		return "Oversub"
	case PolicyAdaptive:
		return "Adaptive"
	default:
		return fmt.Sprintf("MigrationPolicy(%d)", int(p))
	}
}

// Policies lists all four schemes in the order the paper plots them.
func Policies() []MigrationPolicy {
	return []MigrationPolicy{PolicyDisabled, PolicyAlways, PolicyOversub, PolicyAdaptive}
}

// ReplacementPolicy selects the page replacement scheme.
type ReplacementPolicy int

const (
	// ReplaceLRU is the default 2MB least-recently-used queue.
	ReplaceLRU ReplacementPolicy = iota
	// ReplaceLFU is the paper's access-counter-driven simplified LFU with
	// read-only priority and LRU fallback for uniform counters.
	ReplaceLFU
)

// String returns the policy name.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceLRU:
		return "LRU"
	case ReplaceLFU:
		return "LFU"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// PrefetcherKind selects the hardware prefetcher model.
type PrefetcherKind int

const (
	// PrefetchTree is the CUDA tree-based neighborhood prefetcher
	// (default; §II-B).
	PrefetchTree PrefetcherKind = iota
	// PrefetchNone disables prefetching: only the faulting 64KB basic
	// block migrates (ablation).
	PrefetchNone
	// PrefetchSequential prefetches the next basic block after the
	// faulting one (ablation; Zheng et al. style locality prefetch).
	PrefetchSequential
)

// String returns the prefetcher name.
func (p PrefetcherKind) String() string {
	switch p {
	case PrefetchTree:
		return "Tree"
	case PrefetchNone:
		return "None"
	case PrefetchSequential:
		return "Sequential"
	default:
		return fmt.Sprintf("PrefetcherKind(%d)", int(p))
	}
}

// PipelineSpec names the memory-management pipeline components of the
// UVM driver by registry key (see internal/mm). Empty fields select the
// built-in defaults derived from Policy, Replacement and Prefetcher, so
// the zero value reproduces the monolithic driver's behaviour exactly.
//
// Names are resolved against the internal/mm registry when the driver
// is constructed; config deliberately does not validate them (that
// would invert the dependency between the registry and its key space).
type PipelineSpec struct {
	// Batcher selects the fault-batch formation stage
	// (e.g. "accumulate", "dedup").
	Batcher string
	// Planner selects the migrate-vs-remote decision stage
	// (e.g. "threshold", "thrash-guard").
	Planner string
	// Evictor selects the victim-selection stage (e.g. "lru", "lfu",
	// "none"). Unlike Replacement, a named evictor survives
	// Config.WithPolicy's paper pairing.
	Evictor string
	// Prefetcher selects the prefetch-governor stage
	// (e.g. "tree", "none", "sequential").
	Prefetcher string
}

// Tag renders the non-default components as a compact
// "stage=name,stage=name" identity string, empty when every stage is
// the default. Experiment run names embed it so cells running a custom
// pipeline are distinguishable from stock cells.
func (p PipelineSpec) Tag() string {
	var parts []string
	for _, kv := range [][2]string{
		{"batcher", p.Batcher}, {"planner", p.Planner},
		{"evictor", p.Evictor}, {"prefetcher", p.Prefetcher},
	} {
		if kv[1] != "" {
			parts = append(parts, kv[0]+"="+kv[1])
		}
	}
	return strings.Join(parts, ",")
}

// Config mirrors Table I. All latencies are in GPU core cycles unless
// stated otherwise.
type Config struct {
	// GPU architecture (GeForce GTX 1080 Ti, Pascal-like).
	NumSMs        int    // streaming multiprocessors
	CoresPerSM    int    // CUDA cores per SM (occupancy model only)
	CoreClockMHz  uint64 // GPU core clock
	MaxCTAsPerSM  int    // max resident thread blocks per SM
	MaxWarpsPerSM int    // max resident warps per SM
	WarpSize      int    // threads per warp

	// Memory system.
	PageWalkLatency uint64 // page table walk, core cycles
	// TLBEntries sizes the shared GMMU TLB (4KB translations, LRU). A
	// miss pays PageWalkLatency; evictions shoot down entries. Zero
	// disables translation modelling.
	TLBEntries     int
	DRAMLatency    uint64 // local DRAM access, core cycles
	DeviceMemBytes uint64 // device memory capacity (controls oversubscription)

	// CPU-GPU interconnect (PCIe 3.0 16x).
	PCIeLatency       uint64  // one-way transfer initiation latency, core cycles
	PCIeBytesPerCycle float64 // per-direction bandwidth in bytes per core cycle
	PCIeHeaderBytes   uint64  // per-transaction overhead for small remote accesses
	// RemoteWirePenalty scales the wire occupancy of zero-copy
	// transactions relative to bulk DMA: fine-grained remote access is
	// bound by the endpoint's outstanding-request limit, reaching only a
	// fraction of link bandwidth (~1/3 on PCIe 3.0 x16).
	RemoteWirePenalty float64

	// Remote zero-copy access.
	RemoteAccessLatency uint64 // core cycles, on top of PCIe occupancy

	// UVM driver model.
	FarFaultLatencyMicros uint64 // fault batch handling latency, microseconds
	EvictionGranularity   uint64 // bytes: 2MB (default) or 64KB
	Replacement           ReplacementPolicy
	Prefetcher            PrefetcherKind

	// EvictionRecencyGuard protects chunks accessed within this many
	// cycles from counter-based (LFU) eviction: freshly migrated blocks
	// have not yet accumulated counts and would otherwise look cold and
	// be evicted immediately (the classic LFU cold-start pathology).
	// The guard is ignored when every candidate is recent, so it can
	// never deadlock replacement. Zero disables it.
	EvictionRecencyGuard uint64

	// Delayed-migration heuristic.
	Policy          MigrationPolicy
	StaticThreshold uint64 // ts: static access counter threshold
	Penalty         uint64 // p: multiplicative migration penalty
	// WriteMigrates reproduces the Volta semantics where a write to a
	// host-resident page migrates it immediately regardless of counters.
	// It is forced off under PolicyAdaptive (see DESIGN.md §2).
	WriteMigrates bool

	// MMPipeline optionally overrides the driver's memory-management
	// pipeline stages by registry name. The zero value keeps the
	// built-in stages selected by Policy/Replacement/Prefetcher.
	MMPipeline PipelineSpec

	// PolicySeed seeds the deterministic generators of the learned
	// pipeline stages (internal/mm "reuse-dist", "bandit-ts",
	// "bandit-pf"). Runs with equal seeds are byte-identical; zero is a
	// valid seed (remapped internally to a fixed constant). The built-in
	// static stages ignore it.
	PolicySeed uint64
	// BanditEpsilonPct is the exploration probability, in percent
	// [0, 100], of the bandit-driven stages. Zero disables exploration
	// entirely, collapsing bandit-ts to the static threshold planner it
	// starts from (the epsilon=0 golden regression).
	BanditEpsilonPct uint64
	// BanditEpochCycles is the learning-epoch length in simulated core
	// cycles: bandit-ts re-evaluates its arm once per epoch. Epochs are
	// measured on simulated time only — never wall clock — so epoch
	// boundaries are part of the reproducible run state. Zero selects
	// the built-in default.
	BanditEpochCycles uint64

	// ClusterWorkers bounds the worker threads a multi-GPU cluster run
	// may use for conservative parallel discrete-event simulation
	// (internal/multigpu): each GPU+driver node gets its own engine and
	// nodes advance concurrently up to a lookahead-derived horizon.
	// Results are byte-identical to the sequential path for every value.
	// 0 or 1 selects the sequential single-engine path; values above
	// the cluster size are clamped to it. Single-GPU runs ignore it.
	ClusterWorkers int

	// CXL pooled tier (internal/cxl). Zero CXLPoolBytes disables the
	// pool entirely, keeping the classic two-tier topology — the
	// byte-identical default. The remaining fields then have no effect.
	CXLPoolBytes uint64 // pooled tier capacity; must be page aligned
	// CXLBytesPerCycle and CXLLatency describe each GPU's CXL port
	// (per-direction bandwidth in bytes per core cycle, one-way
	// initiation latency in core cycles). Zero selects the defaults
	// (half PCIe bandwidth headroom is NOT assumed: CXL.mem on x8 gen5
	// is comparable to PCIe but with far lower small-access overhead).
	CXLBytesPerCycle float64
	CXLLatency       uint64
	// CXLReadThreshold is the per-GPU read-counter threshold above
	// which the pool controller grants a read-only replica (and the
	// margin a sole writer must clear to win a writable migration).
	// Zero selects the default.
	CXLReadThreshold uint64
	// PoolPolicy selects the pool-management stage by internal/mm
	// registry name ("cxl-repl" counter-arbitrated replication,
	// "cxl-migrate" naive migrate-on-touch, "pool-remote" never
	// migrate). Empty selects the default (cxl-repl).
	PoolPolicy string
}

// CXLEnabled reports whether the configuration carries a pooled tier.
func (c Config) CXLEnabled() bool { return c.CXLPoolBytes > 0 }

// CXL port defaults applied when the pool is enabled and a field is
// zero: bandwidth comparable to the PCIe link but with a lower
// initiation latency (load/store-native CXL.mem), and the paper's
// static threshold spirit for the replication agreement.
const (
	DefaultCXLBytesPerCycle = 10.6
	DefaultCXLLatency       = 60
	DefaultCXLReadThreshold = 4
)

// CXLPortBytesPerCycle returns the effective CXL port bandwidth.
func (c Config) CXLPortBytesPerCycle() float64 {
	if c.CXLBytesPerCycle > 0 {
		return c.CXLBytesPerCycle
	}
	return DefaultCXLBytesPerCycle
}

// CXLPortLatency returns the effective CXL port latency in core cycles.
func (c Config) CXLPortLatency() uint64 {
	if c.CXLLatency > 0 {
		return c.CXLLatency
	}
	return DefaultCXLLatency
}

// CXLThreshold returns the effective replication threshold.
func (c Config) CXLThreshold() uint64 {
	if c.CXLReadThreshold > 0 {
		return c.CXLReadThreshold
	}
	return DefaultCXLReadThreshold
}

// Default returns the boldface configuration of Table I: a Pascal-like
// GTX 1080 Ti with tree prefetcher, 2MB LRU eviction, ts=8 and p=2,
// first-touch migration policy and 12GB of device memory.
func Default() Config {
	return Config{
		NumSMs:        28,
		CoresPerSM:    128,
		CoreClockMHz:  1481,
		MaxCTAsPerSM:  32,
		MaxWarpsPerSM: 64,
		WarpSize:      32,

		PageWalkLatency: 100,
		TLBEntries:      512,
		DRAMLatency:     100,
		DeviceMemBytes:  12 << 30,

		PCIeLatency:       100,
		PCIeBytesPerCycle: 10.6, // ~15.75 GB/s effective at 1481 MHz
		PCIeHeaderBytes:   24,
		RemoteWirePenalty: 3,

		RemoteAccessLatency: 200,

		FarFaultLatencyMicros: 45,
		EvictionGranularity:   memunits.ChunkSize,
		Replacement:           ReplaceLRU,
		Prefetcher:            PrefetchTree,
		EvictionRecencyGuard:  200_000,

		Policy:          PolicyDisabled,
		StaticThreshold: 8,
		Penalty:         2,
		WriteMigrates:   true,

		PolicySeed:        1,
		BanditEpsilonPct:  10,
		BanditEpochCycles: 2_000_000,
	}
}

// FarFaultLatencyCycles converts the microsecond fault handling latency to
// core cycles at the configured clock.
func (c Config) FarFaultLatencyCycles() uint64 {
	return c.FarFaultLatencyMicros * c.CoreClockMHz
}

// DevicePages returns the device memory capacity in 4KB pages.
func (c Config) DevicePages() uint64 {
	return c.DeviceMemBytes / memunits.PageSize
}

// WithPolicy returns a copy configured for the given migration policy,
// applying the paper's pairing of replacement policies (§VI): LRU for the
// Disabled baseline, the counter-driven LFU for the other three schemes,
// and disabling immediate write migration under Adaptive.
func (c Config) WithPolicy(p MigrationPolicy) Config {
	c.Policy = p
	if p == PolicyDisabled {
		c.Replacement = ReplaceLRU
	} else {
		c.Replacement = ReplaceLFU
	}
	c.WriteMigrates = p != PolicyAdaptive
	return c
}

// WithOversubscription sizes device memory so that a working set of
// wsBytes occupies the given percentage of it. percent=125 reproduces the
// paper's "125% oversubscription": capacity = wsBytes/1.25. percent<=100
// means the working set fits (capacity rounds up); above 100 the capacity
// rounds *down* to a whole number of eviction-granularity units so that
// rounding can never erase the oversubscription pressure. At least two
// units of capacity are always provided.
func (c Config) WithOversubscription(wsBytes uint64, percent uint64) Config {
	if percent == 0 {
		panic("config: oversubscription percent must be positive")
	}
	capBytes := wsBytes * 100 / percent
	gran := c.EvictionGranularity
	if gran == 0 {
		gran = memunits.ChunkSize
	}
	if percent > 100 {
		capBytes = capBytes / gran * gran
	} else {
		capBytes = memunits.RoundUp(capBytes, gran)
	}
	if capBytes < 2*gran {
		capBytes = 2 * gran
	}
	c.DeviceMemBytes = capBytes
	return c
}

// Validate checks internal consistency and returns a descriptive error for
// the first problem found.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case c.CoreClockMHz == 0:
		return errors.New("config: CoreClockMHz must be positive")
	case c.MaxWarpsPerSM <= 0:
		return errors.New("config: MaxWarpsPerSM must be positive")
	case c.MaxCTAsPerSM <= 0:
		return errors.New("config: MaxCTAsPerSM must be positive")
	case c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("config: WarpSize %d out of range (1..32)", c.WarpSize)
	case c.DeviceMemBytes < memunits.ChunkSize:
		return fmt.Errorf("config: DeviceMemBytes %d smaller than one 2MB chunk", c.DeviceMemBytes)
	case c.DeviceMemBytes%memunits.PageSize != 0:
		return errors.New("config: DeviceMemBytes must be page aligned")
	case c.TLBEntries < 0:
		return errors.New("config: TLBEntries must be non-negative")
	case c.PCIeBytesPerCycle <= 0:
		return errors.New("config: PCIeBytesPerCycle must be positive")
	case c.RemoteWirePenalty < 1:
		return errors.New("config: RemoteWirePenalty must be at least 1")
	case c.StaticThreshold == 0:
		return errors.New("config: StaticThreshold must be at least 1")
	case c.Penalty == 0:
		return errors.New("config: Penalty must be at least 1")
	case c.ClusterWorkers < 0:
		return errors.New("config: ClusterWorkers must be non-negative")
	case c.BanditEpsilonPct > 100:
		return fmt.Errorf("config: BanditEpsilonPct %d above 100", c.BanditEpsilonPct)
	case c.CXLPoolBytes%memunits.PageSize != 0:
		return errors.New("config: CXLPoolBytes must be page aligned")
	case c.CXLBytesPerCycle < 0:
		return errors.New("config: CXLBytesPerCycle must be non-negative")
	case !c.CXLEnabled() && c.PoolPolicy != "":
		return fmt.Errorf("config: PoolPolicy %q set without a CXL pool (CXLPoolBytes=0)", c.PoolPolicy)
	}
	if c.EvictionGranularity != memunits.ChunkSize && c.EvictionGranularity != memunits.BlockSize {
		return fmt.Errorf("config: EvictionGranularity %d must be 2MB or 64KB", c.EvictionGranularity)
	}
	switch c.Policy {
	case PolicyDisabled, PolicyAlways, PolicyOversub, PolicyAdaptive:
	default:
		return fmt.Errorf("config: unknown migration policy %d", int(c.Policy))
	}
	switch c.Replacement {
	case ReplaceLRU, ReplaceLFU:
	default:
		return fmt.Errorf("config: unknown replacement policy %d", int(c.Replacement))
	}
	switch c.Prefetcher {
	case PrefetchTree, PrefetchNone, PrefetchSequential:
	default:
		return fmt.Errorf("config: unknown prefetcher %d", int(c.Prefetcher))
	}
	return nil
}
