package config

import (
	"fmt"
	"sort"
	"strings"
)

// Architecture presets. Default() models the paper's GTX 1080 Ti
// (Pascal-like); VoltaLike scales the compute side up to a V100-class
// part — the generation that actually shipped the hardware access
// counters the paper builds on — with a faster interconnect and a larger
// TLB. The memory-system policies are identical: the paper's framework
// is deliberately architecture-agnostic.

// presets maps preset names to constructors.
var presets = map[string]func() Config{
	"pascal": Default,
	"volta":  VoltaLike,
}

// VoltaLike returns a V100-class configuration: 80 SMs at 1530 MHz,
// 16GB of device memory, a ~1.5x faster host interconnect (NVLink-ish
// effective bandwidth expressed in bytes per core cycle) and a larger
// GMMU TLB.
func VoltaLike() Config {
	c := Default()
	c.NumSMs = 80
	c.CoresPerSM = 64
	c.CoreClockMHz = 1530
	c.DeviceMemBytes = 16 << 30
	c.PCIeBytesPerCycle = 16.0
	c.TLBEntries = 1024
	return c
}

// Preset returns the named architecture configuration.
func Preset(name string) (Config, error) {
	f, ok := presets[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Config{}, fmt.Errorf("config: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	return f(), nil
}

// PresetNames lists the available presets in sorted order.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
