// Package evict implements victim selection for device memory
// replacement: the default 2MB least-recently-used queue of the CUDA
// driver (paper §II-C) and the paper's access-counter-driven simplified
// LFU (§IV, "Access Counter Based Page Replacement"), which prioritizes
// cold and read-only chunks and automatically degenerates to LRU when
// access counters are uniform (the regular-application case).
//
// The policies are expressed over Candidate values so the same code
// serves both eviction granularities (2MB chunks and 64KB basic blocks).
package evict

import (
	"fmt"

	"uvmsim/internal/config"
)

// Candidate describes one resident eviction unit.
type Candidate struct {
	// Unit identifies the chunk (or block) to the caller.
	Unit uint64
	// LastAccess is the timestamp of the most recent access or
	// migration, in cycles (the LRU key).
	LastAccess uint64
	// Score is the aggregate access-counter value (the LFU key).
	Score uint64
	// Dirty reports whether any page of the unit has been written and
	// would need a write-back. Clean (read-only) units are preferred
	// victims.
	Dirty bool
	// Full reports whether the unit is fully populated. The 2MB policy
	// only evicts full chunks while any exist, preserving the tree
	// prefetcher's semantics.
	Full bool
	// Pinned marks units that must not be evicted right now (pages being
	// migrated or addressed by in-flight accesses).
	Pinned bool
}

// uniformSpreadDivisor controls the LFU→LRU fallback: when
// (max-min) <= max/uniformSpreadDivisor over the eligible candidates'
// scores, the counters are considered uniform — dense sequential
// applications touch every page with almost the same frequency — and the
// policy falls back to pure LRU ordering. The band is deliberately wide
// (a 2x spread still counts as uniform): historic counters of a dense
// cyclic sweep drift apart by up to one iteration's worth of accesses,
// while the hot/cold split of irregular applications spans orders of
// magnitude, so the wide band keeps regular workloads stably on LRU
// without ever misclassifying a genuine hot/cold mix.
const uniformSpreadDivisor = 2

// Policy selects an eviction victim.
type Policy interface {
	// SelectVictim returns the index into cands of the unit to evict.
	// ok is false when no candidate is eligible (all pinned).
	SelectVictim(cands []Candidate) (idx int, ok bool)
	// Name returns the policy name.
	Name() string
}

// New returns the policy implementation for the configured kind.
func New(kind config.ReplacementPolicy) Policy {
	switch kind {
	case config.ReplaceLRU:
		return lru{}
	case config.ReplaceLFU:
		return lfu{}
	default:
		panic(fmt.Sprintf("evict: unknown replacement policy %v", kind))
	}
}

// eligible reports whether the candidate may be considered in this pass.
// fullOnly restricts to fully-populated units.
func eligible(c Candidate, fullOnly bool) bool {
	if c.Pinned {
		return false
	}
	return !fullOnly || c.Full
}

// forEachEligible invokes f over eligible candidates, first restricting
// to full units and, only if none exist, relaxing to partial ones (the
// driver must still make room when no chunk is fully populated).
func forEachEligible(cands []Candidate, f func(i int, c Candidate)) bool {
	any := false
	for i, c := range cands {
		if eligible(c, true) {
			f(i, c)
			any = true
		}
	}
	if any {
		return true
	}
	for i, c := range cands {
		if eligible(c, false) {
			f(i, c)
			any = true
		}
	}
	return any
}

// lru is the driver default: evict the unit with the oldest last access.
type lru struct{}

func (lru) Name() string { return "LRU" }

func (lru) SelectVictim(cands []Candidate) (int, bool) {
	best := -1
	forEachEligible(cands, func(i int, c Candidate) {
		if best == -1 || less(lruKey(c), lruKey(cands[best])) {
			best = i
		}
	})
	return best, best != -1
}

// lfu is the paper's simplified least-frequently-used policy: coldest
// first (lowest aggregate counter), clean before dirty among equals,
// oldest as the final tie-break; with a fallback to LRU when scores are
// uniform.
type lfu struct{}

func (lfu) Name() string { return "LFU" }

func (lfu) SelectVictim(cands []Candidate) (int, bool) {
	// First pass: establish score spread over eligible candidates.
	var (
		minScore, maxScore uint64
		seen               bool
	)
	ok := forEachEligible(cands, func(i int, c Candidate) {
		if !seen {
			minScore, maxScore, seen = c.Score, c.Score, true
			return
		}
		if c.Score < minScore {
			minScore = c.Score
		}
		if c.Score > maxScore {
			maxScore = c.Score
		}
	})
	if !ok {
		return -1, false
	}
	if maxScore == 0 {
		// No eligible unit has ever been counted (fresh counters, or a
		// halving sweep just zeroed everything). That is the uniform
		// case by definition — state it explicitly instead of relying
		// on 0-0 <= 0/2 falling through the spread test below.
		return lru{}.SelectVictim(cands)
	}
	if maxScore-minScore <= maxScore/uniformSpreadDivisor {
		// Uniform counters: regular access pattern, fall back to LRU.
		return lru{}.SelectVictim(cands)
	}
	best := -1
	forEachEligible(cands, func(i int, c Candidate) {
		if best == -1 || less(lfuKey(c), lfuKey(cands[best])) {
			best = i
		}
	})
	return best, best != -1
}

// lruKey orders by last access time, tie-broken by unit number so fully
// equal candidates resolve deterministically regardless of slice order.
func lruKey(c Candidate) [4]uint64 { return [4]uint64{c.LastAccess, 0, 0, c.Unit} }

// lfuKey orders by (score, dirtiness, last access, unit): coldest, then
// clean (read-only pages are preferred victims because written-to hot
// pages would migrate back exclusively anyway), then oldest, then the
// lowest unit number. The final component makes selection a total order:
// candidates equal on (score, LastAccess) pick the same victim whether
// the caller's list is sorted or not.
func lfuKey(c Candidate) [4]uint64 {
	dirty := uint64(0)
	if c.Dirty {
		dirty = 1
	}
	return [4]uint64{c.Score, dirty, c.LastAccess, c.Unit}
}

func less(a, b [4]uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
