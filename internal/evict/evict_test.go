package evict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uvmsim/internal/config"
)

func TestNewDispatch(t *testing.T) {
	if New(config.ReplaceLRU).Name() != "LRU" {
		t.Error("LRU dispatch wrong")
	}
	if New(config.ReplaceLFU).Name() != "LFU" {
		t.Error("LFU dispatch wrong")
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	New(config.ReplacementPolicy(42))
}

func TestLRUPicksOldest(t *testing.T) {
	p := New(config.ReplaceLRU)
	cands := []Candidate{
		{Unit: 0, LastAccess: 300, Full: true},
		{Unit: 1, LastAccess: 100, Full: true},
		{Unit: 2, LastAccess: 200, Full: true},
	}
	idx, ok := p.SelectVictim(cands)
	if !ok || idx != 1 {
		t.Fatalf("SelectVictim = %d,%v want 1,true", idx, ok)
	}
}

func TestLRUPrefersFullChunks(t *testing.T) {
	p := New(config.ReplaceLRU)
	cands := []Candidate{
		{Unit: 0, LastAccess: 10, Full: false}, // oldest but partial
		{Unit: 1, LastAccess: 500, Full: true},
	}
	idx, ok := p.SelectVictim(cands)
	if !ok || idx != 1 {
		t.Fatalf("full chunk not preferred: got %d", idx)
	}
}

func TestLRURelaxesToPartialWhenNoFull(t *testing.T) {
	p := New(config.ReplaceLRU)
	cands := []Candidate{
		{Unit: 0, LastAccess: 10, Full: false},
		{Unit: 1, LastAccess: 5, Full: false},
	}
	idx, ok := p.SelectVictim(cands)
	if !ok || idx != 1 {
		t.Fatalf("partial fallback wrong: got %d,%v", idx, ok)
	}
}

func TestPinnedNeverSelected(t *testing.T) {
	for _, kind := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		p := New(kind)
		cands := []Candidate{
			{Unit: 0, LastAccess: 1, Full: true, Pinned: true},
			{Unit: 1, LastAccess: 2, Full: true},
		}
		idx, ok := p.SelectVictim(cands)
		if !ok || idx != 1 {
			t.Fatalf("%v picked pinned candidate: %d,%v", kind, idx, ok)
		}
		allPinned := []Candidate{{Full: true, Pinned: true}}
		if _, ok := p.SelectVictim(allPinned); ok {
			t.Fatalf("%v selected from all-pinned set", kind)
		}
	}
}

func TestLFUPicksColdest(t *testing.T) {
	p := New(config.ReplaceLFU)
	cands := []Candidate{
		{Unit: 0, Score: 1000, LastAccess: 1, Full: true},
		{Unit: 1, Score: 5, LastAccess: 900, Full: true}, // cold despite recent
		{Unit: 2, Score: 400, LastAccess: 2, Full: true},
	}
	idx, ok := p.SelectVictim(cands)
	if !ok || idx != 1 {
		t.Fatalf("LFU did not pick coldest: got %d", idx)
	}
}

func TestLFUPrefersCleanAmongEqualScores(t *testing.T) {
	p := New(config.ReplaceLFU)
	cands := []Candidate{
		{Unit: 0, Score: 10, Dirty: true, LastAccess: 1, Full: true},
		{Unit: 1, Score: 10, Dirty: false, LastAccess: 2, Full: true},
		{Unit: 2, Score: 900, Dirty: false, LastAccess: 3, Full: true},
	}
	idx, ok := p.SelectVictim(cands)
	if !ok || idx != 1 {
		t.Fatalf("LFU did not prefer clean unit: got %d", idx)
	}
}

func TestLFUUniformFallsBackToLRU(t *testing.T) {
	p := New(config.ReplaceLFU)
	// Scores within 12.5% of each other: regular application. The pick
	// must follow LastAccess (unit 2), not the marginally lowest score
	// (unit 0).
	cands := []Candidate{
		{Unit: 0, Score: 95, LastAccess: 500, Full: true},
		{Unit: 1, Score: 100, LastAccess: 400, Full: true},
		{Unit: 2, Score: 98, LastAccess: 100, Full: true},
	}
	idx, ok := p.SelectVictim(cands)
	if !ok || idx != 2 {
		t.Fatalf("uniform fallback wrong: got %d", idx)
	}
}

func TestLFUHotColdSplitIgnoresRecency(t *testing.T) {
	// Irregular application shape: one hot chunk touched constantly, one
	// cold chunk touched long ago. LRU would evict the cold one too —
	// but make the cold chunk the *recent* one to show LFU differs.
	cands := []Candidate{
		{Unit: 0, Score: 100000, LastAccess: 50, Full: true}, // hot, old
		{Unit: 1, Score: 3, LastAccess: 900, Full: true},     // cold, recent
	}
	lfuIdx, _ := New(config.ReplaceLFU).SelectVictim(cands)
	lruIdx, _ := New(config.ReplaceLRU).SelectVictim(cands)
	if lfuIdx != 1 {
		t.Fatalf("LFU evicted the hot chunk")
	}
	if lruIdx != 0 {
		t.Fatalf("LRU should have evicted the old (hot) chunk")
	}
}

func TestEmptyCandidates(t *testing.T) {
	for _, kind := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		if _, ok := New(kind).SelectVictim(nil); ok {
			t.Fatalf("%v selected from empty set", kind)
		}
	}
}

// Property: the selected victim is always eligible (not pinned; full if
// any full candidate exists), for both policies and arbitrary inputs.
func TestVictimEligibilityProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%12 + 1
		cands := make([]Candidate, count)
		anyFullUnpinned := false
		anyUnpinned := false
		for i := range cands {
			cands[i] = Candidate{
				Unit:       uint64(i),
				LastAccess: uint64(rng.Intn(1000)),
				Score:      uint64(rng.Intn(1000)),
				Dirty:      rng.Intn(2) == 0,
				Full:       rng.Intn(2) == 0,
				Pinned:     rng.Intn(3) == 0,
			}
			if !cands[i].Pinned {
				anyUnpinned = true
				if cands[i].Full {
					anyFullUnpinned = true
				}
			}
		}
		for _, kind := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
			idx, ok := New(kind).SelectVictim(cands)
			if ok != anyUnpinned {
				return false
			}
			if !ok {
				continue
			}
			v := cands[idx]
			if v.Pinned {
				return false
			}
			if anyFullUnpinned && !v.Full {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LRU's victim has the minimum LastAccess among same-class
// (full/partial) eligible candidates.
func TestLRUMinimalityProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		cands := make([]Candidate, len(times))
		for i, tm := range times {
			cands[i] = Candidate{Unit: uint64(i), LastAccess: uint64(tm), Full: true}
		}
		idx, ok := New(config.ReplaceLRU).SelectVictim(cands)
		if !ok {
			return false
		}
		for _, c := range cands {
			if c.LastAccess < cands[idx].LastAccess {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Table tests for the fallback and tie-break edge cases the driver can
// reach: all candidates pinned, all scores zero, and fully tied keys.
func TestSelectVictimEdgeCases(t *testing.T) {
	for name, tc := range map[string]struct {
		policy config.ReplacementPolicy
		cands  []Candidate
		want   int  // expected index, -1 when ok must be false
	}{
		"allPinnedLRU": {
			policy: config.ReplaceLRU,
			cands: []Candidate{
				{Unit: 0, LastAccess: 5, Full: true, Pinned: true},
				{Unit: 1, LastAccess: 1, Full: true, Pinned: true},
			},
			want: -1,
		},
		"allPinnedLFU": {
			policy: config.ReplaceLFU,
			cands: []Candidate{
				{Unit: 0, Score: 9, Full: true, Pinned: true},
				{Unit: 1, Score: 1, Full: true, Pinned: true},
			},
			want: -1,
		},
		// All-zero scores must be treated as explicitly uniform: the
		// LFU policy falls back to LRU and picks the oldest, not the
		// first zero-score entry its cold-first pass happens to see.
		"allZeroScoresFallBackToLRU": {
			policy: config.ReplaceLFU,
			cands: []Candidate{
				{Unit: 0, Score: 0, LastAccess: 50, Full: true},
				{Unit: 1, Score: 0, LastAccess: 10, Full: true},
				{Unit: 2, Score: 0, LastAccess: 30, Full: true},
			},
			want: 1,
		},
		// Candidates equal on (score, dirty, LastAccess) tie-break by
		// the lowest unit number — even when the list is not sorted.
		"fullTieBreaksByUnitLFU": {
			policy: config.ReplaceLFU,
			cands: []Candidate{
				{Unit: 7, Score: 2, LastAccess: 10, Full: true},
				{Unit: 3, Score: 2, LastAccess: 10, Full: true},
				{Unit: 5, Score: 100, LastAccess: 10, Full: true},
			},
			want: 1,
		},
		"fullTieBreaksByUnitLRU": {
			policy: config.ReplaceLRU,
			cands: []Candidate{
				{Unit: 9, LastAccess: 10, Full: true},
				{Unit: 2, LastAccess: 10, Full: true},
				{Unit: 4, LastAccess: 10, Full: true},
			},
			want: 1,
		},
	} {
		t.Run(name, func(t *testing.T) {
			idx, ok := New(tc.policy).SelectVictim(tc.cands)
			if tc.want == -1 {
				if ok {
					t.Fatalf("selected %d from all-pinned candidates", idx)
				}
				return
			}
			if !ok || idx != tc.want {
				t.Fatalf("SelectVictim = (%d, %v), want (%d, true)", idx, ok, tc.want)
			}
		})
	}
}

// Property: selection is order-independent — shuffling the candidate
// list never changes the chosen unit (the Unit tie-break makes the
// ordering total).
func TestSelectionOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64, scores []uint8, pol bool) bool {
		if len(scores) == 0 {
			return true
		}
		policy := config.ReplaceLRU
		if pol {
			policy = config.ReplaceLFU
		}
		cands := make([]Candidate, len(scores))
		for i, sc := range scores {
			cands[i] = Candidate{
				Unit:       uint64(i),
				Score:      uint64(sc),
				LastAccess: uint64(sc % 4), // force frequent ties
				Dirty:      sc%2 == 0,
				Full:       true,
			}
		}
		idx, ok := New(policy).SelectVictim(cands)
		if !ok {
			return false
		}
		wantUnit := cands[idx].Unit
		rng := rand.New(rand.NewSource(seed))
		shuffled := append([]Candidate(nil), cands...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		idx2, ok2 := New(policy).SelectVictim(shuffled)
		return ok2 && shuffled[idx2].Unit == wantUnit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
