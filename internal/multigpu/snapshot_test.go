package multigpu

import (
	"fmt"
	"reflect"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/obs"
)

// TestClusterForkMatchesScratch is the cluster half of the
// snapshot-equivalence golden: a cluster forked at the first quiescent
// kernel barrier and finished from the fork must produce a Result
// byte-identical to a from-scratch run, and the parent must be
// unperturbed by having been forked. Property-tested across policies ×
// seeds × ClusterWorkers ∈ {1, 2} (sequential shared-engine vs PDES
// per-node engines), and run under -race by the CI concurrency step.
func TestClusterForkMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster fork equivalence sweep is slow; skipping in -short")
	}
	const (
		nGPUs = 2
		scale = 0.05
		pct   = 125
	)
	for _, workers := range []int{1, 2} {
		for _, pol := range []config.MigrationPolicy{config.PolicyDisabled, config.PolicyAdaptive} {
			for _, seed := range []uint64{1, 7} {
				t.Run(fmt.Sprintf("workers=%d/%v/seed=%d", workers, pol, seed), func(t *testing.T) {
					base := config.Default()
					base.ClusterWorkers = workers
					base.PolicySeed = seed
					b, cfg := core.PrepareWorkload("sssp", scale, nGPUs, pct, pol, base)

					want := New(b, cfg, nGPUs).Run()

					cl := New(b, cfg, nGPUs)
					n := cl.KernelCount()
					var fork *Cluster
					forkAt := 0
					for i := 0; i < n; i++ {
						cl.RunKernel(i)
						if fork == nil && i+1 < n && cl.Quiescent() {
							f, err := cl.Fork(cfg)
							if err != nil {
								t.Fatalf("Fork at barrier %d: %v", i+1, err)
							}
							fork, forkAt = f, i+1
						}
					}
					parent := cl.Finish()
					if !reflect.DeepEqual(parent, want) {
						t.Fatalf("parent run perturbed by forking:\n got %+v\nwant %+v", parent, want)
					}
					if fork == nil {
						t.Fatalf("no quiescent barrier in %d kernels", n)
					}
					for i := forkAt; i < n; i++ {
						fork.RunKernel(i)
					}
					got := fork.Finish()
					if !reflect.DeepEqual(got, want) {
						t.Errorf("fork at barrier %d diverged from scratch:\n got %+v\nwant %+v", forkAt, got, want)
					}
				})
			}
		}
	}
}

// TestClusterForkGuards pins the refusal paths: observability and an
// execution-mode change must be rejected, never silently mis-forked.
func TestClusterForkGuards(t *testing.T) {
	base := config.Default()
	b, cfg := core.PrepareWorkload("ra", 0.05, 2, 125, config.PolicyAdaptive, base)

	t.Run("mode-change", func(t *testing.T) {
		cl := New(b, cfg, 2)
		cl.RunKernel(0)
		par := cfg
		par.ClusterWorkers = 2
		if _, err := cl.Fork(par); err == nil {
			t.Fatal("fork from sequential parent into PDES mode succeeded, want error")
		}
	})

	t.Run("observability", func(t *testing.T) {
		cl := New(b, cfg, 2)
		suite := obs.NewSuite(obs.Options{CheckEvery: 1000})
		cl.Observe(func(idx int) *obs.Run { return suite.NewRun(fmt.Sprintf("gpu%d", idx)) })
		cl.RunKernel(0)
		if _, err := cl.Fork(cfg); err == nil {
			t.Fatal("fork with observability attached succeeded, want error")
		}
	})
}
