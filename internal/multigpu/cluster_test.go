package multigpu

import (
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/gpu"
	"uvmsim/internal/workloads"
)

const testScale = 0.15

func TestSplitKernelCoversAllCTAs(t *testing.T) {
	seen := make(map[int]int)
	k := gpu.Kernel{
		Name: "k", CTAs: 10, WarpsPerCTA: 2,
		NewWarp: func(cta, w int) gpu.WarpProgram {
			if w == 0 {
				seen[cta]++
			}
			return nil
		},
	}
	total := 0
	for idx := 0; idx < 4; idx++ {
		sub, ok := splitKernel(k, 4, idx)
		if !ok {
			continue
		}
		total += sub.CTAs
		for cta := 0; cta < sub.CTAs; cta++ {
			sub.NewWarp(cta, 0)
		}
	}
	if total != 10 {
		t.Fatalf("split covers %d CTAs, want 10", total)
	}
	for cta := 0; cta < 10; cta++ {
		if seen[cta] != 1 {
			t.Fatalf("CTA %d instantiated %d times", cta, seen[cta])
		}
	}
}

func TestSplitKernelMoreGPUsThanCTAs(t *testing.T) {
	k := gpu.Kernel{Name: "k", CTAs: 2, WarpsPerCTA: 1, NewWarp: func(_, _ int) gpu.WarpProgram { return nil }}
	var withWork int
	for idx := 0; idx < 8; idx++ {
		if _, ok := splitKernel(k, 8, idx); ok {
			withWork++
		}
	}
	if withWork != 2 {
		t.Fatalf("%d GPUs got work, want 2", withWork)
	}
}

func TestSingleGPUMatchesCoreShape(t *testing.T) {
	// A 1-GPU cluster must retire the same warp count as the workload
	// demands and produce valid stats.
	res := RunWorkload("hotspot", testScale, 1, 100, config.PolicyDisabled, config.Default())
	if res.Cycles == 0 {
		t.Fatal("zero makespan")
	}
	if len(res.PerGPU) != 1 {
		t.Fatalf("PerGPU = %d", len(res.PerGPU))
	}
	if err := res.PerGPU[0].Validate(); err != nil {
		t.Fatal(err)
	}
	b := workloads.MustGet("hotspot")(testScale)
	var wantWarps uint64
	for _, k := range b.Kernels {
		wantWarps += uint64(k.CTAs * k.WarpsPerCTA)
	}
	if res.PerGPU[0].WarpsRetired != wantWarps {
		t.Fatalf("retired %d warps, want %d", res.PerGPU[0].WarpsRetired, wantWarps)
	}
}

func TestMultiGPUSplitsWork(t *testing.T) {
	single := RunWorkload("fdtd", testScale, 1, 100, config.PolicyDisabled, config.Default())
	quad := RunWorkload("fdtd", testScale, 4, 100, config.PolicyDisabled, config.Default())
	var quadWarps uint64
	for i := range quad.PerGPU {
		quadWarps += quad.PerGPU[i].WarpsRetired
		if err := quad.PerGPU[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if quadWarps != single.PerGPU[0].WarpsRetired {
		t.Fatalf("cluster retired %d warps, single %d", quadWarps, single.PerGPU[0].WarpsRetired)
	}
	// Four GPUs with proportional memory must be faster than one (the
	// compute and fault handling parallelize).
	if quad.Cycles >= single.Cycles {
		t.Fatalf("4 GPUs (%d cycles) not faster than 1 (%d)", quad.Cycles, single.Cycles)
	}
}

func TestThrottlingReducesClusterThrash(t *testing.T) {
	// The future-work claim: the dynamic threshold throttles memory per
	// GPU, cutting thrash for irregular collaborative workloads.
	base := RunWorkload("ra", testScale, 2, 125, config.PolicyDisabled, config.Default())
	cfg := config.Default()
	cfg.Penalty = 8
	adpt := RunWorkload("ra", testScale, 2, 125, config.PolicyAdaptive, cfg)
	if base.TotalThrashedPages() == 0 {
		t.Fatal("baseline cluster did not thrash; scale too small")
	}
	if adpt.TotalThrashedPages() >= base.TotalThrashedPages() {
		t.Fatalf("Adaptive cluster thrash %d not below baseline %d",
			adpt.TotalThrashedPages(), base.TotalThrashedPages())
	}
	if adpt.Cycles >= base.Cycles {
		t.Fatalf("Adaptive cluster (%d) not faster than baseline (%d)", adpt.Cycles, base.Cycles)
	}
	if adpt.TotalRemoteAccesses() == 0 {
		t.Fatal("Adaptive cluster performed no remote accesses")
	}
}

func TestNewValidation(t *testing.T) {
	b := workloads.MustGet("backprop")(0.05)
	defer func() {
		if recover() == nil {
			t.Error("zero GPUs did not panic")
		}
	}()
	New(b, config.Default(), 0)
}
