// Package multigpu implements the paper's proposed future work (§VIII):
// running collaborative applications across a multi-GPU cluster and
// using the dynamic-threshold heuristic as a per-GPU memory throttling
// mechanism.
//
// A Cluster couples N GPU+driver replicas on one discrete-event engine.
// Each kernel of a workload is split into contiguous CTA ranges, one per
// GPU, and executed bulk-synchronously: all GPUs launch their share,
// and the next kernel starts only after every GPU finishes (the barrier
// of collaborative UVM applications). Every GPU has its own device
// memory and its own PCIe link to host memory, so each driver's
// Adaptive threshold responds to its *local* occupancy — the throttling
// behaviour the paper wants to study.
//
// Host-side coherence between GPUs is not modelled: collaborative
// workloads partition their writes, and the policies under study see
// only access streams (see DESIGN.md §7).
package multigpu

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/gpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

// node is one GPU with its private UVM driver.
type node struct {
	drv *uvm.Driver
	g   *gpu.GPU
}

// Cluster runs one workload across several GPUs.
type Cluster struct {
	eng   *sim.Engine
	nodes []*node
	built *workloads.Built
	cfg   config.Config

	// Observability (see Observe); zero when disabled.
	checkers   []*obs.Checker
	checkEvery uint64
}

// Observe attaches per-GPU observability: mk is called once per GPU and
// may return nil to skip that GPU. A shared CheckEvery (the maximum over
// the returned runs) drives one cluster-wide invariant sweep that walks
// every driver's consistency check, panicking with a cycle-stamped
// *obs.Violation on the first breach. Call before Run.
func (c *Cluster) Observe(mk func(gpuIdx int) *obs.Run) {
	c.checkers = nil
	c.checkEvery = 0
	c.eng.SetDaemon(0, nil)
	for idx, n := range c.nodes {
		r := mk(idx)
		n.drv.SetObs(r)
		n.g.SetObs(r)
		if !r.Enabled() {
			continue
		}
		if r.CheckEvery > c.checkEvery {
			c.checkEvery = r.CheckEvery
		}
		if r.Reg != nil {
			eng := c.eng
			r.Reg.RegisterProvider(func(e obs.Emitter) {
				e.Counter("sim.cycles", uint64(eng.Now()))
				e.Counter("sim.events_fired", eng.Fired())
			})
		}
		ck := &obs.Checker{}
		drv := n.drv
		ck.Add(fmt.Sprintf("gpu%d-driver-consistency", idx), drv.CheckConsistencyMidRun)
		c.checkers = append(c.checkers, ck)
	}
	if c.checkEvery > 0 {
		// The sweep rides on the engine daemon so it observes every
		// driver at real event boundaries and never extends the run.
		c.eng.SetDaemon(sim.Cycle(c.checkEvery), c.checkTick)
	}
}

// checkTick is the cluster-wide invariant sweep, driven by the engine
// daemon.
func (c *Cluster) checkTick() {
	now := uint64(c.eng.Now())
	for _, ck := range c.checkers {
		if err := ck.RunAll(now); err != nil {
			panic(err)
		}
	}
}

// Result aggregates a cluster run.
type Result struct {
	// Cycles is the makespan: the cycle at which the last GPU finished
	// the last kernel.
	Cycles uint64
	// PerGPU holds each GPU's driver counters.
	PerGPU []stats.Counters
}

// TotalThrashedPages sums thrashing across GPUs.
func (r *Result) TotalThrashedPages() uint64 {
	var sum uint64
	for i := range r.PerGPU {
		sum += r.PerGPU[i].ThrashedPages
	}
	return sum
}

// TotalRemoteAccesses sums zero-copy traffic across GPUs.
func (r *Result) TotalRemoteAccesses() uint64 {
	var sum uint64
	for i := range r.PerGPU {
		sum += r.PerGPU[i].RemoteAccesses()
	}
	return sum
}

// New creates a cluster of nGPUs over the workload. cfg.DeviceMemBytes
// is the per-GPU memory capacity.
func New(b *workloads.Built, cfg config.Config, nGPUs int) *Cluster {
	if nGPUs < 1 {
		panic(fmt.Sprintf("multigpu: %d GPUs", nGPUs))
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("multigpu: %v", err))
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(4_000_000_000)
	c := &Cluster{eng: eng, built: b, cfg: cfg}
	for i := 0; i < nGPUs; i++ {
		drv := uvm.New(eng, cfg, b.Space)
		c.nodes = append(c.nodes, &node{drv: drv, g: gpu.New(eng, cfg, drv, drv.Stats())})
	}
	return c
}

// splitKernel returns GPU idx's contiguous CTA share of k, or ok=false
// when the GPU has no work for this kernel.
func splitKernel(k gpu.Kernel, nGPUs, idx int) (gpu.Kernel, bool) {
	per := (k.CTAs + nGPUs - 1) / nGPUs
	lo := idx * per
	hi := lo + per
	if hi > k.CTAs {
		hi = k.CTAs
	}
	if lo >= hi {
		return gpu.Kernel{}, false
	}
	return gpu.Kernel{
		Name:        fmt.Sprintf("%s@gpu%d", k.Name, idx),
		CTAs:        hi - lo,
		WarpsPerCTA: k.WarpsPerCTA,
		NewWarp: func(cta, w int) gpu.WarpProgram {
			return k.NewWarp(lo+cta, w)
		},
	}, true
}

// Run executes the workload bulk-synchronously and returns the result.
func (c *Cluster) Run() *Result {
	for _, k := range c.built.Kernels {
		remaining := 0
		for idx, n := range c.nodes {
			sub, ok := splitKernel(k, len(c.nodes), idx)
			if !ok {
				continue
			}
			remaining++
			n.g.Launch(sub, func(sim.Cycle) { remaining-- })
		}
		c.eng.Run()
		if remaining != 0 {
			panic(fmt.Sprintf("multigpu: kernel %s left %d GPUs unfinished", k.Name, remaining))
		}
	}
	c.eng.Run() // drain trailing prefetch transfers
	res := &Result{Cycles: uint64(c.eng.Now())}
	for _, n := range c.nodes {
		if n.drv.PendingWork() {
			panic("multigpu: driver did not quiesce")
		}
		if err := n.drv.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("multigpu: %v", err))
		}
		n.drv.Finalize()
		st := *n.drv.Stats()
		st.Cycles = res.Cycles
		res.PerGPU = append(res.PerGPU, st)
	}
	return res
}

// RunWorkload is the convenience entry point: it builds the named
// workload, gives each of nGPUs capacity so that the *per-GPU share* of
// the working set is oversubPercent of its memory, applies the policy,
// and runs. With contiguous CTA splitting each GPU's hot footprint is
// roughly workingSet/nGPUs, so oversubscription pressure per GPU stays
// comparable across cluster sizes.
func RunWorkload(name string, scale float64, nGPUs int, oversubPercent uint64, pol config.MigrationPolicy, base config.Config) *Result {
	b, cfg := core.PrepareWorkload(name, scale, nGPUs, oversubPercent, pol, base)
	return New(b, cfg, nGPUs).Run()
}
