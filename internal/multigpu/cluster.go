// Package multigpu implements the paper's proposed future work (§VIII):
// running collaborative applications across a multi-GPU cluster and
// using the dynamic-threshold heuristic as a per-GPU memory throttling
// mechanism.
//
// A Cluster couples N GPU+driver replicas on one discrete-event engine.
// Each kernel of a workload is split into contiguous CTA ranges, one per
// GPU, and executed bulk-synchronously: all GPUs launch their share,
// and the next kernel starts only after every GPU finishes (the barrier
// of collaborative UVM applications). Every GPU has its own device
// memory and its own PCIe link to host memory, so each driver's
// Adaptive threshold responds to its *local* occupancy — the throttling
// behaviour the paper wants to study.
//
// Host-side coherence between GPUs is not modelled: collaborative
// workloads partition their writes, and the policies under study see
// only access streams (see DESIGN.md §7).
package multigpu

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/gpu"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

// node is one GPU with its private UVM driver.
type node struct {
	drv *uvm.Driver
	g   *gpu.GPU
}

// Cluster runs one workload across several GPUs.
type Cluster struct {
	eng   *sim.Engine
	nodes []*node
	built *workloads.Built
	cfg   config.Config
}

// Result aggregates a cluster run.
type Result struct {
	// Cycles is the makespan: the cycle at which the last GPU finished
	// the last kernel.
	Cycles uint64
	// PerGPU holds each GPU's driver counters.
	PerGPU []stats.Counters
}

// TotalThrashedPages sums thrashing across GPUs.
func (r *Result) TotalThrashedPages() uint64 {
	var sum uint64
	for i := range r.PerGPU {
		sum += r.PerGPU[i].ThrashedPages
	}
	return sum
}

// TotalRemoteAccesses sums zero-copy traffic across GPUs.
func (r *Result) TotalRemoteAccesses() uint64 {
	var sum uint64
	for i := range r.PerGPU {
		sum += r.PerGPU[i].RemoteAccesses()
	}
	return sum
}

// New creates a cluster of nGPUs over the workload. cfg.DeviceMemBytes
// is the per-GPU memory capacity.
func New(b *workloads.Built, cfg config.Config, nGPUs int) *Cluster {
	if nGPUs < 1 {
		panic(fmt.Sprintf("multigpu: %d GPUs", nGPUs))
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("multigpu: %v", err))
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(4_000_000_000)
	c := &Cluster{eng: eng, built: b, cfg: cfg}
	for i := 0; i < nGPUs; i++ {
		drv := uvm.New(eng, cfg, b.Space)
		c.nodes = append(c.nodes, &node{drv: drv, g: gpu.New(eng, cfg, drv, drv.Stats())})
	}
	return c
}

// splitKernel returns GPU idx's contiguous CTA share of k, or ok=false
// when the GPU has no work for this kernel.
func splitKernel(k gpu.Kernel, nGPUs, idx int) (gpu.Kernel, bool) {
	per := (k.CTAs + nGPUs - 1) / nGPUs
	lo := idx * per
	hi := lo + per
	if hi > k.CTAs {
		hi = k.CTAs
	}
	if lo >= hi {
		return gpu.Kernel{}, false
	}
	return gpu.Kernel{
		Name:        fmt.Sprintf("%s@gpu%d", k.Name, idx),
		CTAs:        hi - lo,
		WarpsPerCTA: k.WarpsPerCTA,
		NewWarp: func(cta, w int) gpu.WarpProgram {
			return k.NewWarp(lo+cta, w)
		},
	}, true
}

// Run executes the workload bulk-synchronously and returns the result.
func (c *Cluster) Run() *Result {
	for _, k := range c.built.Kernels {
		remaining := 0
		for idx, n := range c.nodes {
			sub, ok := splitKernel(k, len(c.nodes), idx)
			if !ok {
				continue
			}
			remaining++
			n.g.Launch(sub, func(sim.Cycle) { remaining-- })
		}
		c.eng.Run()
		if remaining != 0 {
			panic(fmt.Sprintf("multigpu: kernel %s left %d GPUs unfinished", k.Name, remaining))
		}
	}
	c.eng.Run() // drain trailing prefetch transfers
	res := &Result{Cycles: uint64(c.eng.Now())}
	for _, n := range c.nodes {
		if n.drv.PendingWork() {
			panic("multigpu: driver did not quiesce")
		}
		if err := n.drv.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("multigpu: %v", err))
		}
		n.drv.Finalize()
		st := *n.drv.Stats()
		st.Cycles = res.Cycles
		res.PerGPU = append(res.PerGPU, st)
	}
	return res
}

// RunWorkload is the convenience entry point: it builds the named
// workload, gives each of nGPUs capacity so that the *per-GPU share* of
// the working set is oversubPercent of its memory, applies the policy,
// and runs. With contiguous CTA splitting each GPU's hot footprint is
// roughly workingSet/nGPUs, so oversubscription pressure per GPU stays
// comparable across cluster sizes.
func RunWorkload(name string, scale float64, nGPUs int, oversubPercent uint64, pol config.MigrationPolicy, base config.Config) *Result {
	b := workloads.MustGet(name)(scale)
	share := b.WorkingSet() / uint64(nGPUs)
	cfg := base.WithPolicy(pol).WithOversubscription(share, oversubPercent)
	return New(b, cfg, nGPUs).Run()
}
