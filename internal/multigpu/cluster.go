// Package multigpu implements the paper's proposed future work (§VIII):
// running collaborative applications across a multi-GPU cluster and
// using the dynamic-threshold heuristic as a per-GPU memory throttling
// mechanism.
//
// A Cluster couples N GPU+driver replicas. Each kernel of a workload is
// split into contiguous CTA ranges, one per GPU, and executed
// bulk-synchronously: all GPUs launch their share, and the next kernel
// starts only after every GPU finishes (the barrier of collaborative
// UVM applications). Every GPU has its own device memory and its own
// PCIe link to host memory, so each driver's Adaptive threshold
// responds to its *local* occupancy — the throttling behaviour the
// paper wants to study.
//
// By default all replicas share one discrete-event engine and the run
// is single-threaded. When cfg.ClusterWorkers > 1 the cluster instead
// runs in conservative parallel discrete-event (PDES) mode — one engine
// per GPU+driver node, advanced concurrently up to a lookahead-derived
// horizon (see pdes.go) — producing byte-identical results at a
// fraction of the wall-clock time.
//
// Host-side coherence between GPUs is not modelled: collaborative
// workloads partition their writes, and the policies under study see
// only access streams (see DESIGN.md §7).
package multigpu

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/gpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

// eventBudget bounds any single engine; exceeding it means a model
// livelock and panics loudly rather than hanging.
const eventBudget = 4_000_000_000

// node is one GPU with its private UVM driver. In sequential mode every
// node's eng field aliases the cluster's shared engine; in PDES mode
// each node owns its engine and all of the node's mutable simulation
// state (driver, GPU, engine) is touched by exactly one worker at a
// time (see pdes.go for the synchronization argument).
type node struct {
	eng *sim.Engine
	drv *uvm.Driver
	g   *gpu.GPU

	// Per-kernel bulk-synchronous bookkeeping (PDES mode): launched is
	// set by the coordinator at launch time, finished by the kernel's
	// completion event on whichever worker drains this node.
	launched bool
	finished bool
}

// onKernelDone is the prebound kernel-completion callback (PDES mode).
func (n *node) onKernelDone(sim.Cycle) { n.finished = true }

// Cluster runs one workload across several GPUs.
type Cluster struct {
	eng   *sim.Engine // shared engine; nil when par drives per-node engines
	par   *Coordinator
	nodes []*node
	built *workloads.Built
	cfg   config.Config

	// Observability (see Observe); zero when disabled.
	checkers   []*obs.Checker
	checkEvery uint64
}

// Workers reports the PDES worker count the cluster will use (1 =
// sequential single-engine mode).
func (c *Cluster) Workers() int {
	if c.par == nil {
		return 1
	}
	return c.par.workers
}

// Observe attaches per-GPU observability: mk is called once per GPU and
// may return nil to skip that GPU. A shared CheckEvery (the maximum over
// the returned runs) drives one cluster-wide invariant sweep that walks
// every driver's consistency check, panicking with a cycle-stamped
// *obs.Violation on the first breach. In sequential mode the sweep
// rides on the engine daemon; in PDES mode it runs at horizon
// boundaries, with every worker parked, in fixed node order. Call
// before Run.
func (c *Cluster) Observe(mk func(gpuIdx int) *obs.Run) {
	c.checkers = nil
	c.checkEvery = 0
	if c.eng != nil {
		c.eng.SetDaemon(0, nil)
	} else {
		c.par.SetSweep(0, nil)
	}
	for idx, n := range c.nodes {
		r := mk(idx)
		n.drv.SetObs(r)
		n.g.SetObs(r)
		if !r.Enabled() {
			continue
		}
		if r.CheckEvery > c.checkEvery {
			c.checkEvery = r.CheckEvery
		}
		if r.Reg != nil {
			r.Reg.RegisterProvider(func(e obs.Emitter) {
				// Cluster-wide totals, identical between the sequential
				// and PDES modes: the barrier clock and the union of
				// every node's event stream.
				e.Counter("sim.cycles", c.clusterNow())
				e.Counter("sim.events_fired", c.clusterFired())
			})
			if c.par != nil {
				c.par.Publish(r.Reg)
			}
		}
		ck := &obs.Checker{}
		drv := n.drv
		ck.Add(fmt.Sprintf("gpu%d-driver-consistency", idx), drv.CheckConsistencyMidRun)
		c.checkers = append(c.checkers, ck)
	}
	if c.checkEvery == 0 {
		return
	}
	if c.eng != nil {
		// The sweep rides on the engine daemon so it observes every
		// driver at real event boundaries and never extends the run.
		c.eng.SetDaemon(sim.Cycle(c.checkEvery), c.checkTick)
	} else {
		c.par.SetSweep(sim.Cycle(c.checkEvery), c.checkSweep)
	}
}

// clusterNow returns the cluster-wide clock: the shared engine's in
// sequential mode, the latest node clock in PDES mode (after a run all
// node clocks sit on the final barrier, so this is the makespan).
func (c *Cluster) clusterNow() uint64 {
	if c.eng != nil {
		return uint64(c.eng.Now())
	}
	var max sim.Cycle
	for _, n := range c.nodes {
		if now := n.eng.Now(); now > max {
			max = now
		}
	}
	return uint64(max)
}

// clusterFired returns the total events fired across the cluster. The
// per-node engines of PDES mode fire exactly the events the shared
// engine fires sequentially, so the sum matches eng.Fired() there.
func (c *Cluster) clusterFired() uint64 {
	if c.eng != nil {
		return c.eng.Fired()
	}
	var sum uint64
	for _, n := range c.nodes {
		sum += n.eng.Fired()
	}
	return sum
}

// checkTick is the cluster-wide invariant sweep, driven by the engine
// daemon (sequential mode).
func (c *Cluster) checkTick() { c.checkSweep(c.eng.Now()) }

// checkSweep walks every checker in fixed node order, stamping
// violations with the given cycle.
func (c *Cluster) checkSweep(now sim.Cycle) {
	for _, ck := range c.checkers {
		if err := ck.RunAll(uint64(now)); err != nil {
			panic(err)
		}
	}
}

// Result aggregates a cluster run.
type Result struct {
	// Cycles is the makespan: the cycle at which the last GPU finished
	// the last kernel.
	Cycles uint64
	// PerGPU holds each GPU's driver counters.
	PerGPU []stats.Counters
}

// TotalThrashedPages sums thrashing across GPUs.
func (r *Result) TotalThrashedPages() uint64 {
	var sum uint64
	for i := range r.PerGPU {
		sum += r.PerGPU[i].ThrashedPages
	}
	return sum
}

// TotalRemoteAccesses sums zero-copy traffic across GPUs.
func (r *Result) TotalRemoteAccesses() uint64 {
	var sum uint64
	for i := range r.PerGPU {
		sum += r.PerGPU[i].RemoteAccesses()
	}
	return sum
}

// New creates a cluster of nGPUs over the workload. cfg.DeviceMemBytes
// is the per-GPU memory capacity. cfg.ClusterWorkers > 1 selects the
// conservative-PDES execution mode (pdes.go); results are byte-identical
// either way.
func New(b *workloads.Built, cfg config.Config, nGPUs int) *Cluster {
	if nGPUs < 1 {
		panic(fmt.Sprintf("multigpu: %d GPUs", nGPUs))
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("multigpu: %v", err))
	}
	c := &Cluster{built: b, cfg: cfg}
	workers := cfg.ClusterWorkers
	if workers > nGPUs {
		workers = nGPUs
	}
	if workers > 1 {
		// PDES mode: one engine per node, advanced concurrently.
		for i := 0; i < nGPUs; i++ {
			eng := sim.NewEngine()
			eng.SetEventBudget(eventBudget)
			drv := uvm.New(eng, cfg, b.Space)
			c.nodes = append(c.nodes, &node{eng: eng, drv: drv, g: gpu.New(eng, cfg, drv, drv.Stats())})
		}
		// The safe horizon extends one host-memory round trip (two link
		// traversals) beyond the earliest pending event: no node can
		// observe another's activity any sooner. A zero lookahead would
		// force lockstep, so it falls back to the sequential path.
		if la := 2 * c.nodes[0].drv.Link().Lookahead(); la > 0 {
			c.par = newCoordinator(c.nodes, workers, la)
			return c
		}
		c.nodes = nil
	}
	eng := sim.NewEngine()
	eng.SetEventBudget(eventBudget)
	c.eng = eng
	for i := 0; i < nGPUs; i++ {
		drv := uvm.New(eng, cfg, b.Space)
		c.nodes = append(c.nodes, &node{eng: eng, drv: drv, g: gpu.New(eng, cfg, drv, drv.Stats())})
	}
	return c
}

// splitKernel returns GPU idx's contiguous CTA share of k, or ok=false
// when the GPU has no work for this kernel.
func splitKernel(k gpu.Kernel, nGPUs, idx int) (gpu.Kernel, bool) {
	per := (k.CTAs + nGPUs - 1) / nGPUs
	lo := idx * per
	hi := lo + per
	if hi > k.CTAs {
		hi = k.CTAs
	}
	if lo >= hi {
		return gpu.Kernel{}, false
	}
	return gpu.Kernel{
		Name:        fmt.Sprintf("%s@gpu%d", k.Name, idx),
		CTAs:        hi - lo,
		WarpsPerCTA: k.WarpsPerCTA,
		NewWarp: func(cta, w int) gpu.WarpProgram {
			return k.NewWarp(lo+cta, w)
		},
	}, true
}

// Run executes the workload bulk-synchronously and returns the result.
// It is the composition of the stepwise API (snapshot.go): one
// RunKernel per kernel, then Finish.
func (c *Cluster) Run() *Result {
	for i := range c.built.Kernels {
		c.RunKernel(i)
	}
	return c.Finish()
}

// RunKernel runs kernel i bulk-synchronously across the GPUs: every
// GPU launches its CTA share, and the call returns only after the
// whole cluster drains (the kernel barrier). Kernels must run in
// order; interleave Fork calls between them to snapshot at barriers.
func (c *Cluster) RunKernel(i int) {
	k := c.built.Kernels[i]
	if c.par != nil {
		c.runKernelParallel(k)
		return
	}
	remaining := 0
	for idx, n := range c.nodes {
		sub, ok := splitKernel(k, len(c.nodes), idx)
		if !ok {
			continue
		}
		remaining++
		n.g.Launch(sub, func(sim.Cycle) { remaining-- })
	}
	c.eng.Run()
	if remaining != 0 {
		panic(fmt.Sprintf("multigpu: kernel %s left %d GPUs unfinished", k.Name, remaining))
	}
}

// Finish validates quiescence, collects the per-GPU counters and
// finalizes the drivers. Call once, after the last RunKernel.
func (c *Cluster) Finish() *Result {
	if c.eng != nil {
		c.eng.Run() // drain trailing prefetch transfers
		return c.finish(c.eng.Now())
	}
	var barrier sim.Cycle
	for _, n := range c.nodes {
		if n.eng.Now() > barrier {
			barrier = n.eng.Now()
		}
	}
	return c.finish(barrier)
}

// finish validates quiescence and collects the per-GPU counters; shared
// by the sequential and PDES paths, which by construction reach it with
// identical driver states and makespan.
func (c *Cluster) finish(makespan sim.Cycle) *Result {
	res := &Result{Cycles: uint64(makespan)}
	for _, n := range c.nodes {
		if n.drv.PendingWork() {
			panic("multigpu: driver did not quiesce")
		}
		if err := n.drv.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("multigpu: %v", err))
		}
		n.drv.Finalize()
		st := *n.drv.Stats()
		st.Cycles = res.Cycles
		res.PerGPU = append(res.PerGPU, st)
	}
	return res
}

// RunWorkload is the convenience entry point: it builds the named
// workload, gives each of nGPUs capacity so that the *per-GPU share* of
// the working set is oversubPercent of its memory, applies the policy,
// and runs. With contiguous CTA splitting each GPU's hot footprint is
// roughly workingSet/nGPUs, so oversubscription pressure per GPU stays
// comparable across cluster sizes.
func RunWorkload(name string, scale float64, nGPUs int, oversubPercent uint64, pol config.MigrationPolicy, base config.Config) *Result {
	b, cfg := core.PrepareWorkload(name, scale, nGPUs, oversubPercent, pol, base)
	return New(b, cfg, nGPUs).Run()
}
